// Incremental re-verification speedup (ROADMAP item 2; docs/incremental.md).
//
// Workload: the synthetic S-1 Mark IIA-scale design (src/gen/s1_design)
// with a control-pinning case list, and a mixed edit script touching well
// under 1% of the primitives -- a handful of gate-delay tweaks inside one
// pipeline stage, a wire-delay override, and one control-assertion rename.
// That is the thesis' day-by-day loop: a designer changes a few delays and
// connections, then re-verifies the whole machine.
//
// Two ways to get the post-edit report:
//
//   * cold       -- apply the delta to a fresh netlist, build a fresh
//                   Verifier, verify() from scratch (base + every case);
//   * reverify   -- Verifier::reverify(delta) against the resident
//                   fixpoint: re-propagate only the dirty cone, re-check
//                   only the affected assertions, splice untouched case
//                   blocks from the prior report.
//
// Both must render byte-identical reports (excluding the cumulative
// base_events/base_evals counters -- the speedup itself). Each reverify
// sample applies the delta and then its recorded inverse, so the resident
// baseline is restored between samples; both directions count as samples.
//
//   $ ./bench_incremental            # full S-1 scale (EXPERIMENTS.md)
//   $ ./bench_incremental --quick    # small workload for the CI perf-smoke
//
// Emits one JSON document on stdout (saved as bench/BENCH_incremental.json).
// Exit status: 0 when every reverify ran incrementally and rendered the
// cold bytes, 1 otherwise. The CI floor on the speedup is asserted by the
// perf-smoke job from the JSON, not here.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "core/verifier.hpp"
#include "gen/s1_design.hpp"

namespace {

using namespace tv;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::size_t n = xs.size();
  return n == 0 ? 0.0 : (n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]));
}

struct Workload {
  hdl::ElaboratedDesign design;
  std::vector<CaseSpec> cases;
};

Workload build_workload(int stages, int ctls_per_stage) {
  gen::S1Params p;
  p.stages = stages;
  p.clock_tree_bufs = 8;
  Workload w;
  w.design = gen::build_s1_design(p);
  const Netlist& nl = w.design.netlist;
  for (int s = 0; s < stages; s += 4) {
    for (int j = 0; j < ctls_per_stage; ++j) {
      std::string name = "S" + std::to_string(s) + " CTL" + std::to_string(j) + " .S4-8.5";
      SignalId id = nl.find(name);
      if (id == kNoSignal) continue;
      for (Value v : {Value::Zero, Value::One}) {
        CaseSpec c;
        c.name = "S" + std::to_string(s) + ".CTL" + std::to_string(j) + "=" +
                 (v == Value::Zero ? "0" : "1");
        c.pins = {{id, v}};
        w.cases.push_back(std::move(c));
      }
    }
  }
  return w;
}

/// The designer's edit: `n_delay` gate-delay tweaks drawn from the middle
/// of the primitive array (one stage's worth of logic), one wire-delay
/// override on the first edited gate's output, and one control-assertion
/// rename. Well under 1% of primitives on the full design.
NetlistDelta build_delta(const Netlist& nl, std::size_t n_delay) {
  NetlistDelta delta;
  std::size_t start = nl.num_prims() / 2;
  for (std::size_t pid = start; pid < nl.num_prims() && delta.prims.size() < n_delay;
       ++pid) {
    const Primitive& p = nl.prim(pid);
    if (prim_is_checker(p.kind) || p.output == kNoSignal) continue;
    NetlistDelta::PrimEdit e;
    e.prim = static_cast<PrimId>(pid);
    e.delay = std::make_pair(p.dmin, p.dmax + from_ns(0.1));
    delta.prims.push_back(e);
  }
  if (!delta.prims.empty()) {
    NetlistDelta::WireEdit we;
    we.sig = nl.prim(delta.prims.front().prim).output;
    we.wire = WireDelay{0, from_ns(0.5)};
    delta.wires.push_back(we);
  }
  SignalId ctl = nl.find("S1 CTL0 .S4-8.5");
  if (ctl != kNoSignal) {
    Assertion a;
    a.kind = Assertion::Kind::Stable;
    a.ranges.push_back({4.0, 8.0, std::nullopt});
    NetlistDelta::AssertionEdit ae;
    ae.sig = ctl;
    ae.assertion = a;
    ae.base_name = "S1 CTL0";
    ae.full_name = "S1 CTL0 " + assertion_to_text(a);
    delta.assertions.push_back(ae);
  }
  return delta;
}

/// Everything observable except the cumulative evaluation-effort counters.
std::string render(const Netlist& nl, const VerifyResult& r) {
  std::ostringstream os;
  os << (r.converged ? "C" : "c") << (r.partial ? "P" : "p") << "\n"
     << timing_summary(nl) << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << c.name << ":" << c.events << (c.converged ? "+c" : "-c")
       << (c.degraded ? "+d" : "-d") << "\n" << violations_report(c.violations);
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const int stages = quick ? 12 : 93;
  const int repeats = quick ? 3 : 5;
  Workload w = build_workload(stages, 2);
  Netlist& nl = w.design.netlist;
  const VerifierOptions& opts = w.design.options;
  NetlistDelta delta = build_delta(nl, quick ? 8 : 24);
  const std::size_t edits =
      delta.prims.size() + delta.pins.size() + delta.wires.size() +
      delta.assertions.size() + delta.cases.size();

  // Cold side: apply the delta to a pristine copy once, render the target
  // report, and time from-scratch verifies of the edited design.
  std::vector<double> cold_samples;
  std::string cold_report;
  {
    Workload cw = build_workload(stages, 2);
    apply_delta(cw.design.netlist, cw.cases, delta);
    if (!cw.design.netlist.finalized()) cw.design.netlist.finalize();
    for (int rep = 0; rep < repeats; ++rep) {
      Verifier v(cw.design.netlist, cw.design.options);
      auto t0 = Clock::now();
      VerifyResult r = v.verify(cw.cases);
      cold_samples.push_back(seconds_since(t0));
      if (rep == 0) cold_report = render(cw.design.netlist, r);
    }
  }

  // Incremental side: one resident Verifier; each sample applies the delta
  // or its inverse against the previous fixpoint.
  Verifier v(nl, opts);
  v.verify(w.cases);
  std::vector<double> incr_samples;
  std::string incr_report;
  bool all_incremental = true;
  std::size_t dirty_prims = 0, touched = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    ReverifyStats st;
    auto t0 = Clock::now();
    VerifyResult r = v.reverify(delta, &st);
    incr_samples.push_back(seconds_since(t0));
    all_incremental = all_incremental && st.incremental;
    dirty_prims = st.dirty_prims.size();
    touched = st.touched_signals;
    if (rep == 0) incr_report = render(nl, r);
    ReverifyStats undo;
    auto t1 = Clock::now();
    v.reverify(st.inverse, &undo);
    incr_samples.push_back(seconds_since(t1));
    all_incremental = all_incremental && undo.incremental;
  }

  const bool identical = incr_report == cold_report;
  const double cold_med = median(cold_samples);
  const double incr_med = median(incr_samples);
  const double speedup = incr_med > 0 ? cold_med / incr_med : 0.0;

  std::printf("{\n");
  std::printf("  \"bench\": \"incremental\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"primitives\": %zu,\n", nl.num_prims());
  std::printf("  \"signals\": %zu,\n", nl.num_signals());
  std::printf("  \"cases\": %zu,\n", w.cases.size());
  std::printf("  \"delta_edits\": %zu,\n", edits);
  std::printf("  \"delta_fraction_of_prims\": %.5f,\n",
              static_cast<double>(edits) / static_cast<double>(nl.num_prims()));
  std::printf("  \"dirty_prims\": %zu,\n", dirty_prims);
  std::printf("  \"touched_signals\": %zu,\n", touched);
  std::printf("  \"cold_median_seconds\": %.6f,\n", cold_med);
  std::printf("  \"reverify_median_seconds\": %.6f,\n", incr_med);
  std::printf("  \"speedup\": %.2f,\n", speedup);
  std::printf("  \"all_incremental\": %s,\n", all_incremental ? "true" : "false");
  std::printf("  \"identical_reports\": %s\n", identical ? "true" : "false");
  std::printf("}\n");
  return (identical && all_incremental) ? 0 : 1;
}
