// Shared formatting for the reproduction benchmarks: every bench prints the
// rows the thesis reports next to our measured values.
#pragma once

#include <cstdio>
#include <string>

namespace tv::bench {

inline void header(const std::string& title) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("=====================================================================\n");
  std::printf("  %-44s %14s %14s\n", "quantity", "paper", "measured");
  std::printf("  %-44s %14s %14s\n", "--------", "-----", "--------");
}

inline void row(const char* label, const std::string& paper, const std::string& measured) {
  std::printf("  %-44s %14s %14s\n", label, paper.c_str(), measured.c_str());
}

inline void row(const char* label, double paper, double measured, const char* fmt = "%.2f") {
  char a[64], b[64];
  std::snprintf(a, sizeof a, fmt, paper);
  std::snprintf(b, sizeof b, fmt, measured);
  row(label, a, b);
}

inline void note(const char* text) { std::printf("  note: %s\n", text); }

inline std::string fmt_count(std::size_t n) {
  char b[32];
  std::snprintf(b, sizeof b, "%zu", n);
  return b;
}

}  // namespace tv::bench
