// Reproduces Fig 1-5: hazard on a clock input to a register. CLOCK is high
// 20-30 ns; ENABLE wants to inhibit the gated clock but only reaches its
// value 25 ns into the cycle, so a spurious pulse of up to 5 ns can reach
// the register clock. The "&A" directive detects the hazard; the
// minimum-pulse-width view shows the 5 ns pulse against the register's
// requirement.
#include "bench_util.hpp"
#include "core/verifier.hpp"

using namespace tv;

namespace {

VerifyResult run(const char* enable_assertion, std::size_t& hazards) {
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Ref clock = nl.ref("CLOCK .P20-30 &A");
  Ref enable = nl.ref(enable_assertion);
  Ref reg_clock = nl.ref("REG CLOCK");
  nl.and_gate("CLOCK GATE", 0, 0, {clock, enable}, reg_clock);
  nl.reg("REG", from_ns(1), from_ns(3), nl.ref("DATA .S0-45"), reg_clock, nl.ref("Q"));
  nl.finalize();
  Verifier v(nl, opts);
  VerifyResult r = v.verify();
  hazards = 0;
  for (const auto& viol : r.violations) {
    if (viol.type == Violation::Type::Hazard) ++hazards;
  }
  return r;
}

}  // namespace

int main() {
  std::size_t hazards_late = 0, hazards_ok = 0;
  run("ENABLE .S25-70", hazards_late);  // stable only from 25 ns: the bug
  run("ENABLE .S15-65", hazards_ok);    // stable from 15 ns: fixed design

  // The concrete spurious pulse: CLOCK & ENABLE where ENABLE (buggy,
  // value-level view) stays enabling until 25 ns -> REG CLOCK high 20-25.
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Ref clock = nl.ref("CLOCK .P20-30");
  Ref enable = nl.ref("ENABLE .P0-25");  // high (enabling) until 25 ns
  Ref reg_clock = nl.ref("REG CLOCK");
  nl.and_gate("CLOCK GATE", 0, 0, {clock, enable}, reg_clock);
  nl.min_pulse_width_chk("REG CK WIDTH", from_ns(8.0), 0, reg_clock);
  nl.finalize();
  Verifier v(nl, opts);
  VerifyResult r = v.verify();
  double pulse_missed = r.violations.empty() ? -1 : to_ns(r.violations[0].missed_by);

  bench::header("Fig 1-5: hazard on a gated register clock");
  bench::row("hazards flagged, ENABLE late (25 ns)", 1, static_cast<double>(hazards_late),
             "%.0f");
  bench::row("hazards flagged, ENABLE early (15 ns)", 0, static_cast<double>(hazards_ok),
             "%.0f");
  bench::row("spurious pulse width [ns]", 5.0, 8.0 - pulse_missed, "%.1f");
  bench::note("the paper's scenario: \"the signal REG CLOCK is a short, 5 nsec");
  bench::note("pulse, which may clock the register, rather than staying zero\".");
  return 0;
}
