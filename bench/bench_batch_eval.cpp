// Batch case-evaluation throughput (ROADMAP item 3; docs/batch_eval.md).
//
// Workload: the synthetic S-1 Mark IIA-scale design (src/gen/s1_design),
// with a case list synthesized the way sec. 2.7.1 prescribes -- every
// sampled STABLE control signal pinned to 0 and to 1. The same case list is
// run through both engines at equal thread counts:
//
//   * per-case -- PR 1's thread pool: one cone-scoped worklist pass per
//     case (`VerifierOptions::batch_eval = false`);
//   * batch    -- the SoA lane sweep: one topological walk evaluating a
//     whole block of case instances in lockstep (`batch_eval = true`).
//
// Emits a single JSON document on stdout: instances/sec per (engine, jobs)
// pair, the batch/per-case speedup at equal jobs, and whether the two
// engines' reports were byte-identical (they must be).
//
//   $ ./bench_batch_eval            # full workload (EXPERIMENTS.md numbers)
//   $ ./bench_batch_eval --quick    # small workload for the CI perf-smoke
//
// Exit status: 0 when reports are identical across engines and job counts,
// 1 otherwise. The CI floor on the speedup itself is asserted by the
// perf-smoke job from the JSON, not here.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/verifier.hpp"
#include "gen/s1_design.hpp"

namespace {

using namespace tv;
using Clock = std::chrono::steady_clock;

struct Workload {
  std::shared_ptr<Netlist> nl;
  VerifierOptions opts;
  std::vector<CaseSpec> cases;
};

/// S-1-style design plus a control-pinning case list: for each stage, the
/// first `ctls_per_stage` decode controls are pinned both ways.
Workload build_workload(int stages, int ctls_per_stage) {
  gen::S1Params p;
  p.stages = stages;
  p.clock_tree_bufs = 8;
  hdl::ElaboratedDesign d = gen::build_s1_design(p);
  Workload w;
  w.nl = std::make_shared<Netlist>(std::move(d.netlist));
  w.opts = d.options;
  for (int s = 0; s < stages; ++s) {
    for (int j = 0; j < ctls_per_stage; ++j) {
      std::string name = "S" + std::to_string(s) + " CTL" + std::to_string(j) + " .S4-8.5";
      SignalId id = w.nl->find(name);
      if (id == kNoSignal) continue;
      for (Value v : {Value::Zero, Value::One}) {
        CaseSpec c;
        c.name = "S" + std::to_string(s) + ".CTL" + std::to_string(j) + "=" +
                 (v == Value::Zero ? "0" : "1");
        c.pins = {{id, v}};
        w.cases.push_back(std::move(c));
      }
    }
  }
  return w;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Byte-level fingerprint of a verify result: per-case disturbed-signal
/// counts, convergence/degradation flags, and every violation message.
std::string fingerprint(const VerifyResult& r) {
  std::string fp;
  for (const auto& c : r.cases) {
    fp += c.name + ":" + std::to_string(c.events) + (c.converged ? "+c" : "-c") +
          (c.degraded ? "+d" : "-d") + "\n";
    for (const auto& v : c.violations) fp += v.message;
  }
  return fp;
}

/// Best-of-`repeats` base-evaluation time on a fresh Verifier: the shared
/// work both engines pay before any case runs.
double measure_base(const Workload& w, int repeats) {
  double best = 1e100;
  for (int rep = 0; rep < repeats; ++rep) {
    Verifier v(*w.nl, w.opts);
    auto t0 = Clock::now();
    v.verify();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

/// Best-of-`repeats` case-analysis time for one engine configuration. Each
/// repetition uses a fresh Verifier (cold intern table and memo), so the
/// numbers measure the engines, not a warmed cache, and the base time is
/// subtracted to isolate the case phase.
double measure_cases(const Workload& w, bool batch, unsigned jobs, int repeats,
                     double base_secs, std::string& fp_out) {
  VerifierOptions opts = w.opts;
  opts.batch_eval = batch;
  opts.jobs = jobs;
  double best = 1e100;
  for (int rep = 0; rep < repeats; ++rep) {
    Verifier v(*w.nl, opts);
    auto t0 = Clock::now();
    VerifyResult r = v.verify(w.cases);
    best = std::min(best, seconds_since(t0));
    fp_out = fingerprint(r);
  }
  return std::max(best - base_secs, 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const int stages = quick ? 8 : 16;
  const int ctls_per_stage = 4;
  const int repeats = quick ? 3 : 5;
  Workload w = build_workload(stages, ctls_per_stage);

  unsigned hw = std::thread::hardware_concurrency();
  unsigned jobs_n = std::clamp(hw, 2u, 8u);
  const unsigned job_counts[2] = {1, jobs_n};

  double base_secs = measure_base(w, repeats);

  struct Row {
    unsigned jobs;
    double per_case_secs, batch_secs;
    std::string per_case_fp, batch_fp;
  };
  Row rows[2];
  for (int i = 0; i < 2; ++i) {
    rows[i].jobs = job_counts[i];
    rows[i].per_case_secs =
        measure_cases(w, false, job_counts[i], repeats, base_secs, rows[i].per_case_fp);
    rows[i].batch_secs =
        measure_cases(w, true, job_counts[i], repeats, base_secs, rows[i].batch_fp);
  }

  bool identical = true;
  for (const Row& r : rows) {
    identical = identical && r.per_case_fp == rows[0].per_case_fp && r.batch_fp == rows[0].per_case_fp;
  }

  const double n = static_cast<double>(w.cases.size());
  std::printf("{\n");
  std::printf("  \"bench\": \"batch_eval\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"primitives\": %zu,\n", w.nl->num_prims());
  std::printf("  \"signals\": %zu,\n", w.nl->num_signals());
  std::printf("  \"cases\": %zu,\n", w.cases.size());
  std::printf("  \"hardware_concurrency\": %u,\n", hw);
  std::printf("  \"base_eval_seconds\": %.6f,\n", base_secs);
  std::printf("  \"results\": [\n");
  for (int i = 0; i < 2; ++i) {
    const Row& r = rows[i];
    std::printf("    {\"jobs\": %u, "
                "\"per_case_seconds\": %.6f, \"per_case_instances_per_sec\": %.1f, "
                "\"batch_seconds\": %.6f, \"batch_instances_per_sec\": %.1f, "
                "\"batch_speedup\": %.2f}%s\n",
                r.jobs, r.per_case_secs, n / r.per_case_secs, r.batch_secs,
                n / r.batch_secs, r.per_case_secs / r.batch_secs, i == 0 ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"identical_reports\": %s\n", identical ? "true" : "false");
  std::printf("}\n");
  return identical ? 0 : 1;
}
