// Interning + memoization benchmark: whole-run evaluation with the
// hash-consed waveform table and evaluation memo-cache on versus off, the
// memo hit rates backing the CI cache-stats floor, and the unique-waveform
// sharing numbers against the Table 3-3 storage claim.
//
//   $ ./bench_interning            # human-readable report
//   $ ./bench_interning --json     # machine-readable (CI cache-stats job)
//
// Scenarios:
//   * regfile  -- the thesis' Fig 2-5 register-file pipeline, verified
//                 twice on one Verifier (a re-verification is served almost
//                 entirely from the memo; its hit rate is the CI floor).
//   * s1/N     -- the synthetic S-1 pipeline at N stages: repeated
//                 identical stage macros are where cross-primitive memo
//                 sharing pays off within a single cold run.
#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/storage_stats.hpp"
#include "core/verifier.hpp"
#include "example_designs.hpp"
#include "gen/s1_design.hpp"

using namespace tv;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct ModeTiming {
  double cold_ms = 0;    // first verify() on a fresh Verifier
  double reverify_ms = 0;  // second verify() on the same Verifier
  std::size_t events = 0;
  InternStats stats;  // zeroed when interning off
};

template <class BuildFn>
ModeTiming run_mode(BuildFn&& build_design, bool interning) {
  auto d = build_design();
  d.options.interning = interning;
  Verifier v(*d.netlist, d.options);
  auto t0 = Clock::now();
  VerifyResult r = v.verify(d.cases);
  ModeTiming m;
  m.cold_ms = ms_since(t0);
  m.events = r.base_events;
  t0 = Clock::now();
  v.verify(d.cases);
  m.reverify_ms = ms_since(t0);
  if (v.evaluator().intern_context()) {
    m.stats = collect_intern_stats(*v.evaluator().intern_context());
  }
  return m;
}

struct S1Design {
  std::shared_ptr<Netlist> netlist;
  VerifierOptions options;
  std::vector<CaseSpec> cases;
};

S1Design build_s1(int stages) {
  gen::S1Params p;
  p.stages = stages;
  p.clock_tree_bufs = 0;
  hdl::ElaboratedDesign d = gen::build_s1_design(p);
  S1Design out;
  out.netlist = std::make_shared<Netlist>(std::move(d.netlist));
  out.options = d.options;
  out.cases = std::move(d.cases);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  // Best-of-3 to keep the JSON stable under scheduler noise.
  auto best = [](auto&& fn, bool interning) {
    ModeTiming best_m = fn(interning);
    for (int i = 0; i < 2; ++i) {
      ModeTiming m = fn(interning);
      if (m.cold_ms < best_m.cold_ms) {
        m.reverify_ms = std::min(m.reverify_ms, best_m.reverify_ms);
        best_m = m;
      } else {
        best_m.reverify_ms = std::min(best_m.reverify_ms, m.reverify_ms);
      }
    }
    return best_m;
  };

  auto regfile = [&](bool interning) {
    return run_mode([] { return examples::regfile_pipeline(); }, interning);
  };
  ModeTiming reg_on = best(regfile, true);
  ModeTiming reg_off = best(regfile, false);

  struct S1Row {
    int stages;
    ModeTiming on, off;
    StorageBreakdown storage;
  };
  std::vector<S1Row> s1_rows;
  for (int stages : {16, 48, 96}) {
    auto s1 = [&](bool interning) {
      return run_mode([&] { return build_s1(stages); }, interning);
    };
    S1Row row;
    row.stages = stages;
    row.on = best(s1, true);
    row.off = best(s1, false);
    {
      // Storage snapshot from a verified design (unique-waveform figures).
      auto d = build_s1(stages);
      Verifier v(*d.netlist, d.options);
      v.verify(d.cases);
      row.storage = compute_storage(*d.netlist);
    }
    s1_rows.push_back(std::move(row));
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"bench\": \"interning\",\n");
    std::printf("  \"regfile\": {\"memo_hits\": %zu, \"memo_misses\": %zu, "
                "\"hit_rate\": %.4f, \"unique_waveforms\": %zu, "
                "\"cold_ms\": %.3f, \"reverify_ms\": %.3f, "
                "\"cold_ms_off\": %.3f, \"reverify_ms_off\": %.3f},\n",
                reg_on.stats.memo_hits, reg_on.stats.memo_misses,
                reg_on.stats.memo_hit_rate(), reg_on.stats.unique_waveforms,
                reg_on.cold_ms, reg_on.reverify_ms, reg_off.cold_ms,
                reg_off.reverify_ms);
    std::printf("  \"s1\": [");
    for (std::size_t i = 0; i < s1_rows.size(); ++i) {
      const S1Row& r = s1_rows[i];
      std::printf("%s\n    {\"stages\": %d, \"cold_ms_on\": %.3f, \"cold_ms_off\": %.3f, "
                  "\"cold_speedup\": %.3f, \"reverify_ms_on\": %.3f, "
                  "\"reverify_ms_off\": %.3f, \"reverify_speedup\": %.3f, "
                  "\"memo_hits\": %zu, \"memo_misses\": %zu, \"hit_rate\": %.4f, "
                  "\"unique_waveforms\": %zu, \"signals\": %zu, "
                  "\"signals_per_unique_waveform\": %.2f}",
                  i ? "," : "", r.stages, r.on.cold_ms, r.off.cold_ms,
                  r.off.cold_ms / r.on.cold_ms, r.on.reverify_ms, r.off.reverify_ms,
                  r.off.reverify_ms / r.on.reverify_ms, r.on.stats.memo_hits,
                  r.on.stats.memo_misses, r.on.stats.memo_hit_rate(),
                  r.on.stats.unique_waveforms,
                  static_cast<std::size_t>(r.storage.unique_waveforms
                                               ? r.storage.unique_waveforms *
                                                     r.storage.signals_per_unique_waveform
                                               : 0),
                  r.storage.signals_per_unique_waveform);
    }
    std::printf("\n  ]\n}\n");
    return 0;
  }

  std::printf("Waveform interning + evaluation memo-cache\n\n");
  std::printf("regfile pipeline (Fig 2-5):\n");
  std::printf("  cold verify:      %.3f ms interned vs %.3f ms plain (%.2fx)\n",
              reg_on.cold_ms, reg_off.cold_ms, reg_off.cold_ms / reg_on.cold_ms);
  std::printf("  re-verify:        %.3f ms interned vs %.3f ms plain (%.2fx)\n",
              reg_on.reverify_ms, reg_off.reverify_ms,
              reg_off.reverify_ms / reg_on.reverify_ms);
  std::printf("  memo:             %zu hits / %zu misses (%.1f%% hit rate)\n",
              reg_on.stats.memo_hits, reg_on.stats.memo_misses,
              100.0 * reg_on.stats.memo_hit_rate());
  std::printf("  unique waveforms: %zu (%zu intern lookups)\n\n",
              reg_on.stats.unique_waveforms, reg_on.stats.intern_lookups);

  std::printf("synthetic S-1 pipeline (identical stage macros):\n");
  std::printf("  %7s %12s %12s %9s %12s %12s %9s %10s %9s\n", "stages", "cold on",
              "cold off", "speedup", "reverify on", "reverify off", "speedup",
              "hit rate", "uniq wf");
  for (const S1Row& r : s1_rows) {
    std::printf("  %7d %10.2fms %10.2fms %8.2fx %10.2fms %10.2fms %8.2fx %9.1f%% %9zu\n",
                r.stages, r.on.cold_ms, r.off.cold_ms, r.off.cold_ms / r.on.cold_ms,
                r.on.reverify_ms, r.off.reverify_ms,
                r.off.reverify_ms / r.on.reverify_ms,
                100.0 * r.on.stats.memo_hit_rate(), r.on.stats.unique_waveforms);
  }
  std::printf("\n  sharing (Table 3-3 claim: value lists are massively shared):\n");
  for (const S1Row& r : s1_rows) {
    std::printf("    %3d stages: %zu unique waveforms across %.0f signals "
                "(%.1f signals per waveform)\n",
                r.stages, r.storage.unique_waveforms,
                r.storage.unique_waveforms * r.storage.signals_per_unique_waveform,
                r.storage.signals_per_unique_waveform);
  }
  return 0;
}
