// Reproduces the comparative claims of secs. 1.4 and 4.1:
//
//  (a) vs. gate-level logic simulation (TEGAS-style min/max baseline):
//      the Timing Verifier checks all value combinations in ONE symbolic
//      cycle, while the simulator must be driven with the input pattern
//      that exercises the failing path -- over K independent control bits
//      that is up to 2^K vectors ("the resulting savings ... are clearly of
//      factorial (i.e., exponential) order").
//
//  (b) vs. worst-case path searching (GRASP/RAS baseline): value-blind path
//      enumeration reports slow paths that mutually-exclusive multiplexer
//      selects can never exercise; the Timing Verifier's case analysis
//      proves them impossible ("numerous irrelevant error messages").
#include <vector>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "pathsearch/path_search.hpp"
#include "sim/logic_sim.hpp"

using namespace tv;

namespace {

// K cascaded fast(1 ns)/slow(6 ns) path selections; the register's set-up
// constraint fails only when every select picks the slow path.
struct SelectChain {
  Netlist nl;
  VerifierOptions opts;
  std::vector<SignalId> sels;
  SignalId in = kNoSignal, ck = kNoSignal;
  PrimId checker = kNoPrim;
  Time budget = 0;  // clock edge time
};

SelectChain build_chain(int k) {
  SelectChain c;
  c.opts.period = from_ns(200.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Netlist& nl = c.nl;

  Ref stage_in = nl.ref("IN .S10-205");  // settles at 10 ns
  c.in = stage_in.id;
  for (int i = 0; i < k; ++i) {
    std::string n = std::to_string(i);
    Ref fast = nl.ref("FAST" + n);
    Ref slow = nl.ref("SLOW" + n);
    nl.buf("FB" + n, from_ns(1), from_ns(1), stage_in, fast);
    nl.buf("SB" + n, from_ns(6), from_ns(6), stage_in, slow);
    Ref sel = nl.ref("SEL" + n);
    c.sels.push_back(sel.id);
    Ref out = nl.ref("STG" + n);
    nl.mux2("MX" + n, 0, 0, sel, fast, slow, out);
    stage_in = out;
  }
  // Clock so that only the all-slow path (10 + 6K ns) misses set-up; the
  // next-worst path (10 + 6(K-1) + 1) meets it.
  c.budget = from_ns(12.0) + from_ns(6.0) * k;
  double units = to_ns(c.budget);
  Ref ck = nl.ref("CK .P" + std::to_string(units) + "+5.0");
  c.ck = ck.id;
  c.checker = nl.setup_hold_chk("CHK", from_ns(4.0), 0, stage_in, ck);
  nl.finalize();
  return c;
}

}  // namespace

int main() {
  bench::header("Sec. 1.4/4.1 (a): Timing Verifier vs exhaustive logic simulation");
  std::printf("  %4s %10s %12s %12s %12s %8s\n", "K", "vectors", "sim events", "tv events",
              "sim/tv", "found");
  for (int k = 2; k <= 10; k += 2) {
    SelectChain c = build_chain(k);

    // Timing Verifier: one symbolic cycle, no vectors. The worst case
    // (all-slow) is covered automatically; a violation must be reported.
    Verifier v(c.nl, c.opts);
    VerifyResult r = v.verify();
    std::size_t tv_events = r.base_events;
    bool tv_found = !r.violations.empty();

    // Logic simulator: enumerate select vectors until the violation shows.
    sim::LogicSimulator simlt(c.nl);
    std::size_t sim_events = 0;
    std::size_t vectors = 0;
    bool sim_found = false;
    for (std::size_t pattern = 0; pattern < (1u << k) && !sim_found; ++pattern) {
      simlt.reset();
      std::vector<sim::Stimulus> stim;
      for (int i = 0; i < k; ++i) {
        // Count up so the failing all-slow (all-ones) vector comes last:
        // the adversarial ordering the thesis worries about.
        stim.push_back({c.sels[static_cast<std::size_t>(i)], 0,
                        (pattern >> i) & 1 ? sim::LV::One : sim::LV::Zero});
      }
      stim.push_back({c.in, 0, sim::LV::Zero});
      stim.push_back({c.ck, 0, sim::LV::Zero});
      stim.push_back({c.in, from_ns(10), sim::LV::One});  // the data toggle
      stim.push_back({c.ck, c.budget, sim::LV::One});
      auto viols = simlt.run(stim, c.budget + from_ns(20));
      sim_events += simlt.stats().events_processed;
      ++vectors;
      sim_found = !viols.empty();
    }
    std::printf("  %4d %10zu %12zu %12zu %12.1f %8s\n", k, vectors, sim_events, tv_events,
                static_cast<double>(sim_events) / tv_events,
                (tv_found && sim_found) ? "both" : (tv_found ? "tv only" : "?"));
  }
  bench::note("sim events grow ~2^K (every distinct select pattern must be driven);");
  bench::note("tv events stay linear in K: the exponential-order savings claim.");

  std::printf("\n");
  bench::header("Sec. 1.4/4.1 (b): path search vs case analysis (Fig 2-6 circuits)");
  std::printf("  %6s %16s %16s %16s\n", "pairs", "spurious paths", "ps errors", "tv errors");
  for (int m = 1; m <= 8; m *= 2) {
    // m independent Fig 2-6 sub-circuits feeding one register.
    Netlist nl;
    VerifierOptions opts;
    opts.period = from_ns(100.0);
    opts.units = ClockUnits::from_ns_per_unit(1.0);
    opts.default_wire = WireDelay{0, 0};
    opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
    std::vector<CaseSpec> cases(2);
    cases[0].name = "controls=0";
    cases[1].name = "controls=1";
    std::vector<Ref> outs;
    for (int i = 0; i < m; ++i) {
      std::string n = std::to_string(i);
      Ref in = nl.ref("INPUT" + n + " .S10-105");
      Ref control = nl.ref("CTL" + n);
      Ref slow1 = nl.ref("SL1 " + n);
      nl.buf("E1 " + n, from_ns(10), from_ns(10), in, slow1);
      Ref m1 = nl.ref("M1 " + n);
      nl.mux2("MXA " + n, from_ns(10), from_ns(10), control, in, slow1, m1);
      Ref slow2 = nl.ref("SL2 " + n);
      nl.buf("E2 " + n, from_ns(10), from_ns(10), m1, slow2);
      Ref out = nl.ref("OUT" + n);
      nl.mux2("MXB " + n, from_ns(10), from_ns(10), nl.ref("- CTL" + n), m1, slow2, out);
      outs.push_back(out);
      cases[0].pins.emplace_back(control.id, Value::Zero);
      cases[1].pins.emplace_back(control.id, Value::One);
    }
    Ref ck = nl.ref("CK .P45+5.0");  // capture at 45 ns: 30 ns paths fit, 40 ns do not
    for (Ref& out : outs) {
      nl.setup_hold_chk("CHK " + std::to_string(out.id), from_ns(4.0), 0, out, ck);
    }
    nl.finalize();

    pathsearch::PathSearcher ps(nl);
    auto pr = ps.analyze();
    // Paths slower than the 31 ns real worst case are impossible.
    std::size_t spurious = pr.slower_than(from_ns(31)).size();
    // Path-search "errors": paths that do not fit the 45-10-4 ns window.
    std::size_t ps_errors = pr.slower_than(from_ns(31)).size();

    Verifier v(nl, opts);
    VerifyResult r = v.verify(cases);
    std::size_t tv_errors = 0;
    for (const auto& cr : r.cases) tv_errors += cr.violations.size();

    std::printf("  %6d %16zu %16zu %16zu\n", m, spurious, ps_errors, tv_errors);
  }
  bench::note("each mutually-exclusive mux pair yields one impossible 40 ns path the");
  bench::note("path searcher reports; case analysis proves every real path is 30 ns");
  bench::note("and emits zero errors (the thesis' irrelevant-error-message claim).");
  return 0;
}
