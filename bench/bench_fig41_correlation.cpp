// Reproduces Figs 4-1 and 4-2: the correlation limitation. A register
// reloads from its own output through a multiplexer while its clock passes
// a buffer with large skew. Working in absolute times, the verifier cannot
// see that the data-change time and the clock-edge time are correlated
// (same edge), so it reports false errors; the documented workaround is a
// "CORR" fictitious delay in the feedback path at least as long as the
// clock skew.
#include "bench_util.hpp"
#include "core/verifier.hpp"

using namespace tv;

namespace {

std::size_t run(bool with_corr) {
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Ref clk = nl.ref("CLK .P10-20");
  Ref reg_clk = nl.ref("REG CLK");
  nl.buf("CLK BUF", 0, from_ns(4.0), clk, reg_clk);
  Ref q = nl.ref("Q");
  Ref fb = q;
  if (with_corr) {
    Ref corr = nl.ref("Q CORR");
    nl.buf("CORR", from_ns(4.0), from_ns(4.0), q, corr);
    fb = corr;
  }
  Ref d = nl.ref("REG DATA");
  nl.mux2("IN MUX", from_ns(1), from_ns(2), nl.ref("LOAD SEL"), fb, nl.ref("NEW VALUE"), d);
  nl.reg("FB REG", from_ns(1), from_ns(2), d, reg_clk, q);
  nl.setup_hold_chk("FB REG CHK", from_ns(1), from_ns(2), d, reg_clk);
  nl.finalize();
  Verifier v(nl, opts);
  return v.verify().violations.size();
}

}  // namespace

int main() {
  std::size_t without = run(false);
  std::size_t with = run(true);
  bench::header("Fig 4-1 / 4-2: correlation false error and the CORR fix");
  bench::row("false errors without CORR delay (>0)", 2, static_cast<double>(without), "%.0f");
  bench::row("errors with CORR delay inserted", 0, static_cast<double>(with), "%.0f");
  bench::note("the real circuit is safe: register min delay + mux min delay exceed");
  bench::note("the hold time *relative to the same clock edge*. The verifier's");
  bench::note("absolute-time analysis cannot use that correlation (sec. 4.2.3).");
  return 0;
}
