// Ablation studies of the design choices the thesis argues for:
//
//   A. the separate skew field (sec. 2.8) vs always folding skew into the
//      value list -- measured as spurious minimum-pulse-width errors on a
//      clock distribution chain;
//   B. polarity-dependent rise/fall delays (sec. 4.2.2) vs the single
//      worst-case delay -- pessimism on inverting chains;
//   C. min/max vs probability-based analysis (sec. 4.2.4) -- predicted
//      critical path at 3 sigma vs worst case, validated by Monte Carlo,
//      across correlation assumptions;
//   D. the default interconnection rule vs calculated per-net delays
//      (sec. 2.5.3) -- what routing-aware delays change.
#include <cmath>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "physical/interconnect.hpp"
#include "stat/stat_timing.hpp"

using namespace tv;

namespace {

void ablation_skew() {
  bench::header("Ablation A (sec. 2.8): separate skew field vs always-folded");
  std::printf("  %6s %16s %16s %16s\n", "depth", "true width [ns]", "kept width [ns]",
              "folded width [ns]");
  const Time P = from_ns(50);
  for (int depth : {1, 2, 4, 8}) {
    Waveform w(P, Value::Zero);
    w.set(from_ns(20), from_ns(30), Value::One);  // a 10 ns clock pulse
    for (int i = 0; i < depth; ++i) w = w.delayed(from_ns(0.5), from_ns(1.5));  // 1 ns skew each
    Time kept = 0;
    for (const auto& s : w.segments())
      if (s.value == Value::One) kept += s.width;
    Waveform folded = w.with_skew_incorporated();
    Time guaranteed = 0;
    for (const auto& s : folded.segments())
      if (s.value == Value::One) guaranteed += s.width;
    std::printf("  %6d %16.1f %16.1f %16.1f%s\n", depth, 10.0, to_ns(kept), to_ns(guaranteed),
                to_ns(guaranteed) < 8.0 ? "   <- would flag an 8 ns min-width" : "");
  }
  bench::note("the pulse is physically 10 ns at any depth (both edges shift");
  bench::note("together); folding early would spuriously fail an 8 ns check at");
  bench::note("depth 4 -- the thesis' stated reason for the separate field.");
}

void ablation_rise_fall() {
  std::printf("\n");
  bench::header("Ablation B (sec. 4.2.2): rise/fall delays vs single worst-case");
  std::printf("  %6s %18s %18s %12s\n", "chain", "single-delay [ns]", "rise/fall [ns]",
              "pessimism");
  for (int depth : {2, 4, 8, 16}) {
    // Inverter chain, rise 2 ns / fall 7 ns. The worst path alternates
    // edge polarities: depth/2 * (2 + 7); the single model charges 7 each.
    VerifierOptions opts;
    opts.period = from_ns(400);
    opts.units = ClockUnits::from_ns_per_unit(1.0);
    opts.default_wire = {0, 0};
    opts.assertion_defaults = {0, 0, 0, 0};

    auto settle = [&](bool rf) {
      Netlist nl;
      Ref cur = nl.ref("IN .P50-200");
      for (int i = 0; i < depth; ++i) {
        Ref next = nl.ref("N" + std::to_string(i));
        PrimId g = nl.not_gate("I" + std::to_string(i), from_ns(7), from_ns(7), cur, next);
        if (rf) {
          nl.set_rise_fall(g, RiseFallDelay{from_ns(2), from_ns(2), from_ns(7), from_ns(7)});
        }
        cur = next;
      }
      nl.finalize();
      Evaluator ev(nl, opts);
      ev.initialize();
      ev.propagate();
      // Arrival of the edge launched by the input rise at 50 ns.
      const Waveform& w = ev.wave(cur.id);
      for (Time t = from_ns(50); t < from_ns(200); t += from_ns(0.5)) {
        if (w.at(t) != w.at(t - from_ns(0.5))) return to_ns(t) - 50.0;
      }
      return -1.0;
    };
    double plain = settle(false);
    double rf = settle(true);
    std::printf("  %6d %18.1f %18.1f %11.0f%%\n", depth, plain, rf,
                100.0 * (plain - rf) / rf);
  }
  bench::note("even chains alternate rise/fall, so the true worst path is");
  bench::note("depth/2 * (rise + fall); the single-delay model charges max() each");
  bench::note("level -- overly pessimistic for nMOS-style asymmetric gates.");
}

void ablation_statistical() {
  std::printf("\n");
  bench::header("Ablation C (sec. 4.2.4): min/max vs probability-based analysis");
  std::printf("  %6s %6s %14s %14s %14s\n", "depth", "rho", "worst [ns]", "3-sigma [ns]",
              "MC 99.87%");
  for (int depth : {8, 32}) {
    for (double rho : {0.0, 0.5, 1.0}) {
      Netlist nl;
      Ref ck = nl.ref("CK .P0-2");
      Ref q = nl.ref("Q0");
      nl.reg("R0", 0, 0, nl.ref("D0 .S0-8"), ck, q);
      Ref cur = q;
      for (int i = 0; i < depth; ++i) {
        Ref next = nl.ref("N" + std::to_string(i));
        nl.buf("G" + std::to_string(i), from_ns(2), from_ns(8), cur, next);
        cur = next;
      }
      nl.reg("R1", 0, 0, cur, ck, nl.ref("Q1"));
      nl.finalize();

      stat::StatOptions opts;
      opts.rho = rho;
      stat::StatResult r = stat::analyze_statistical(nl, opts);
      double mc = stat::monte_carlo_critical_ns(nl, opts, 2000, 0.9987, 13);
      std::printf("  %6d %6.1f %14.1f %14.1f %14.1f\n", depth, rho,
                  r.worst_case_critical_ns, r.predicted_critical_ns, mc);
    }
  }
  bench::note("rho=0 (DIGSIM independence): 3-sigma sits well under the worst case");
  bench::note("and Monte Carlo confirms it. rho=1 (one production run): the");
  bench::note("3-sigma prediction collapses back to the min/max worst case --");
  bench::note("exactly the correlation hazard the thesis raises, and why it kept");
  bench::note("min/max analysis for the S-1.");
}

void ablation_wire_rule() {
  std::printf("\n");
  bench::header("Ablation D (sec. 2.5.3): default wire rule vs calculated delays");
  // A data path that meets timing under the 0/2 ns default rule; the routed
  // board has a mix of short and long nets.
  std::printf("  %10s %14s %14s\n", "net", "rule [ns]", "routed [ns]");
  struct NetCase {
    const char* name;
    physical::NetGeometry geo;
  };
  NetCase nets[] = {
      {"short", {0.5, 1.5, 1, 3.0, true}},
      {"medium", {2.0, 5.0, 2, 3.0, true}},
      {"long", {6.0, 14.0, 4, 3.0, true}},
      {"unterminated", {4.0, 9.0, 2, 3.0, false}},
  };
  for (const NetCase& n : nets) {
    physical::WireAnalysis a = physical::analyze_net(n.geo);
    std::printf("  %10s %9s0.0-2.0 %14s%s\n", n.name, "",
                (format_ns(a.delay.dmin) + "-" + format_ns(a.delay.dmax)).c_str(),
                a.reflection_risk ? "  REFLECTION RISK" : "");
  }
  bench::note("the default rule under-charges long runs (the thesis: interconnect");
  bench::note("is 'as much as half the delay in current large systems') and cannot");
  bench::note("see reflection risk on unterminated lines; feeding calculated");
  bench::note("delays back in changes verification outcomes (test_interconnect).");
}

}  // namespace

int main() {
  ablation_skew();
  ablation_rise_fall();
  ablation_statistical();
  ablation_wire_rule();
  return 0;
}
