// Micro-benchmarks (google-benchmark) of the engine's hot paths: waveform
// combination, skew incorporation, primitive evaluation, and end-to-end
// verification throughput. Not a paper table; used to track performance of
// the reproduction itself.
#include <benchmark/benchmark.h>

#include "core/primitives.hpp"
#include "core/verifier.hpp"
#include "gen/regfile_example.hpp"
#include "gen/s1_design.hpp"

using namespace tv;

namespace {

Waveform busy_wave(Time period, int changes) {
  Waveform w(period, Value::Stable);
  for (int i = 0; i < changes; ++i) {
    Time b = period * (2 * i) / (2 * changes);
    Time e = period * (2 * i + 1) / (2 * changes);
    w.set(b, e, Value::Change);
  }
  return w;
}

void BM_WaveformBinaryOr(benchmark::State& state) {
  const Time P = from_ns(50);
  Waveform a = busy_wave(P, static_cast<int>(state.range(0)));
  Waveform b = busy_wave(P, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Waveform::binary(a, b, value_or));
  }
}
BENCHMARK(BM_WaveformBinaryOr)->Arg(2)->Arg(8)->Arg(32);

void BM_SkewIncorporation(benchmark::State& state) {
  const Time P = from_ns(50);
  Waveform a = busy_wave(P, static_cast<int>(state.range(0)));
  a.set_skew(from_ns(1.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.with_skew_incorporated());
  }
}
BENCHMARK(BM_SkewIncorporation)->Arg(2)->Arg(8)->Arg(32);

void BM_RegisterEvaluation(benchmark::State& state) {
  const Time P = from_ns(50);
  Primitive p;
  p.kind = PrimKind::Reg;
  p.dmin = from_ns(1.5);
  p.dmax = from_ns(4.5);
  PreparedInput data;
  data.wave = busy_wave(P, 3);
  PreparedInput ck;
  ck.wave = Waveform(P, Value::Zero);
  ck.wave.set(from_ns(10), from_ns(20), Value::One);
  ck.wave.set_skew(from_ns(2));
  std::vector<PreparedInput> ins = {data, ck};
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_primitive(p, ins, P));
  }
}
BENCHMARK(BM_RegisterEvaluation);

void BM_VerifyRegfileExample(benchmark::State& state) {
  Netlist nl;
  gen::RegfileExample ex = gen::build_regfile_example(nl);
  Verifier v(nl, ex.options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.verify());
  }
}
BENCHMARK(BM_VerifyRegfileExample);

void BM_VerifyS1Pipeline(benchmark::State& state) {
  gen::S1Params p;
  p.stages = static_cast<int>(state.range(0));
  p.clock_tree_bufs = 0;
  hdl::ElaboratedDesign d = gen::build_s1_design(p);
  Verifier v(d.netlist, d.options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.verify());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d.summary.primitives));
}
BENCHMARK(BM_VerifyS1Pipeline)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
