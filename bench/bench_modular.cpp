// Modular (section-by-section) verification at scale (thesis secs. 1.1 and
// 2.5.2): "This ability to verify designs by modules permits much larger
// designs to be verified than would otherwise be possible because of
// limitations on the amount of memory available."
//
// The synthetic S-1 pipeline is cut into K sections at its asserted stage
// boundaries; each section is verified independently, the interface
// assertions are checked for consistency, and the peak storage (Table 3-3
// record model) of the largest single section is compared with the
// monolithic run. On a 1980 machine the peak is what had to fit in core.
#include <algorithm>

#include "bench_util.hpp"
#include "core/modular.hpp"
#include "core/storage_stats.hpp"
#include "core/verifier.hpp"
#include "gen/s1_design.hpp"
#include "hdl/parser.hpp"

using namespace tv;

int main() {
  gen::S1Params p;
  p.stages = 48;
  p.clock_tree_bufs = 0;

  // Monolithic baseline.
  hdl::ElaboratedDesign mono = gen::build_s1_design(p);
  Verifier vm(mono.netlist, mono.options);
  VerifyResult rm = vm.verify();
  std::size_t mono_storage = compute_storage(mono.netlist).total();

  bench::header("Sec. 2.5.2: verification by sections (48-stage pipeline)");
  std::printf("  %9s %10s %12s %14s %16s %10s\n", "sections", "errors", "interface",
              "peak KB", "peak/mono", "composed");
  std::printf("  %9s %10zu %12s %14zu %16s %10s\n", "1 (mono)", rm.total_violations(), "-",
              mono_storage >> 10, "100.0%", rm.total_violations() == 0 ? "yes" : "no");

  for (int k : {2, 4, 8, 16}) {
    int per = p.stages / k;
    std::vector<hdl::ElaboratedDesign> designs;
    designs.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      std::string src = gen::generate_s1_section_shdl(p, i * per, per, false);
      designs.push_back(hdl::elaborate(hdl::parse(src)));
    }
    std::size_t errors = 0;
    std::size_t peak = 0;
    std::vector<Section> sections;
    for (int i = 0; i < k; ++i) {
      Verifier v(designs[static_cast<std::size_t>(i)].netlist, mono.options);
      VerifyResult r = v.verify();
      errors += r.total_violations();
      peak = std::max(peak,
                      compute_storage(designs[static_cast<std::size_t>(i)].netlist).total());
      sections.push_back(Section{"SECTION " + std::to_string(i),
                                 &designs[static_cast<std::size_t>(i)].netlist,
                                 {}});
    }
    auto issues = check_interfaces(sections);
    bool composed = errors == 0 && issues.empty();
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.1f%%",
                  100.0 * static_cast<double>(peak) / mono_storage);
    std::printf("  %9d %10zu %12zu %14zu %16s %10s\n", k, errors, issues.size(), peak >> 10,
                ratio, composed ? "yes" : "no");
  }
  bench::note("every section is clean and all interface assertions agree, so the");
  bench::note("sec. 2.5.2 theorem applies: the whole design is free of timing");
  bench::note("errors -- while peak memory drops roughly by the section factor.");

  // Negative control: corrupt one section's interface assertion and show
  // the consistency check catches it.
  {
    std::string a = gen::generate_s1_section_shdl(p, 0, 2, false);
    std::string b = gen::generate_s1_section_shdl(p, 2, 2, false);
    auto pos = b.find("S2 IN<0:35> .S1.2-8");
    if (pos != std::string::npos) {
      b.replace(pos, std::string("S2 IN<0:35> .S1.2-8").size(), "S2 IN<0:35> .S1.0-8");
    }
    hdl::ElaboratedDesign da = hdl::elaborate(hdl::parse(a));
    hdl::ElaboratedDesign db = hdl::elaborate(hdl::parse(b));
    std::vector<Section> sections = {{"A", &da.netlist, {}}, {"B", &db.netlist, {}}};
    auto issues = check_interfaces(sections);
    std::printf("\n  negative control: consumer assumes .S1.0-8 on a .S1.2-8 bus -> "
                "%zu interface issue(s) detected\n",
                issues.size());
  }
  return 0;
}
