// Warm-pool serving throughput (docs/serving.md): the same compiled-design
// job stream pushed through scaldtvd's two worker backends --
//
//   * fork/exec -- the classic crash-isolated path: every job pays a fresh
//     process spawn, artifact load, and intern-table warm-up;
//   * warm      -- the resident in-process pool: one worker per design
//     loads the artifact once and serves every following job with its
//     wave table and evaluation memo already hot.
//
// The design is compiled once (scaldtvc's library path) into a temp
// artifact, mirroring the intended compile-then-serve deployment. Both
// backends load the artifact through load_compiled_file's mmap path
// (read() fallback on filesystems without mmap), so the fork/exec column
// prices a page-cache-shared artifact map per attempt rather than a full
// buffered read -- the remaining warm speedup is the resident process and
// intern table, not I/O. Emits a single JSON document on stdout: wall
// seconds and jobs/sec per backend, the warm/fork-exec speedup, and
// whether the two manifests were byte-identical (they must be -- the
// backend is an execution strategy, not a semantic change).
//
//   $ ./bench_serve_warm            # full stream (EXPERIMENTS.md numbers)
//   $ ./bench_serve_warm --quick    # small stream for the CI smoke job
//
// Exit status: 0 when the manifests agree byte-for-byte, 1 otherwise. The
// CI floor on the speedup itself is asserted from the JSON, not here.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/compiled.hpp"
#include "example_designs.hpp"
#include "serve/supervisor.hpp"

namespace {

using namespace tv;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  // Compile once: the regfile pipeline (the thesis' worked example) frozen
  // into a serve-ready artifact.
  examples::ExampleDesign ex = examples::regfile_pipeline();
  CompiledDesign design = compile_design(ex.name, *ex.netlist, ex.options,
                                         ex.cases, CompiledSummary{});
  std::string artifact = "/tmp/bench_serve_warm_regfile.tvc";
  std::string error;
  if (!write_compiled_file(design, artifact, &error)) {
    std::fprintf(stderr, "cannot write %s: %s\n", artifact.c_str(), error.c_str());
    return 1;
  }

  const int stream = quick ? 20 : 50;
  const int repeats = quick ? 2 : 3;
  std::vector<serve::JobSpec> jobs;
  for (int i = 0; i < stream; ++i) {
    serve::JobSpec j;
    j.id = "job-" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    j.design = artifact;
    j.compiled = true;
    jobs.push_back(std::move(j));
  }

  unsigned hw = std::thread::hardware_concurrency();
  unsigned workers = std::clamp(hw, 2u, 4u);
  serve::SupervisorOptions base;
  base.scaldtv_path = TV_SCALDTV_PATH;
  base.workers = static_cast<int>(workers);
  base.default_timeout = 30;

  struct Row {
    double secs = 1e100;
    std::string manifest;
  };
  Row cold, warm;
  for (int rep = 0; rep < repeats; ++rep) {
    {
      serve::SupervisorOptions opts = base;
      opts.warm = false;
      auto t0 = Clock::now();
      serve::Manifest m = serve::run_jobs(jobs, opts);
      cold.secs = std::min(cold.secs, seconds_since(t0));
      cold.manifest = m.to_json();
    }
    {
      serve::SupervisorOptions opts = base;
      opts.warm = true;
      auto t0 = Clock::now();
      serve::Manifest m = serve::run_jobs(jobs, opts);
      warm.secs = std::min(warm.secs, seconds_since(t0));
      warm.manifest = m.to_json();
    }
  }
  std::remove(artifact.c_str());

  bool identical = cold.manifest == warm.manifest;
  const double n = stream;
  std::printf("{\n");
  std::printf("  \"bench\": \"serve_warm\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"design\": \"%s\",\n", ex.name.c_str());
  std::printf("  \"jobs_in_stream\": %d,\n", stream);
  std::printf("  \"artifact_load\": \"mmap (read fallback)\",\n");
  std::printf("  \"workers\": %u,\n", workers);
  std::printf("  \"hardware_concurrency\": %u,\n", hw);
  std::printf("  \"results\": [\n");
  std::printf("    {\"backend\": \"fork-exec\", \"seconds\": %.6f, \"jobs_per_sec\": %.1f},\n",
              cold.secs, n / cold.secs);
  std::printf("    {\"backend\": \"warm\", \"seconds\": %.6f, \"jobs_per_sec\": %.1f, "
              "\"speedup_vs_fork_exec\": %.2f}\n",
              warm.secs, n / warm.secs, cold.secs / warm.secs);
  std::printf("  ],\n");
  std::printf("  \"identical_manifests\": %s\n", identical ? "true" : "false");
  std::printf("}\n");
  return identical ? 0 : 1;
}
