// Scaling behaviour (secs. 2.7, 3.3.2, 4.1): verification cost is linear in
// design size (events ~ primitives), each additional case costs only the
// affected cone, and memory follows the Table 3-3 record model. Sweeps the
// synthetic S-1 pipeline from 8 to 128 stages.
#include <chrono>

#include "bench_util.hpp"
#include "core/storage_stats.hpp"
#include "core/verifier.hpp"
#include "gen/s1_design.hpp"

using namespace tv;
using Clock = std::chrono::steady_clock;

int main() {
  std::printf("Scaling sweep: synthetic S-1 pipeline\n");
  std::printf("  %7s %8s %8s %10s %12s %12s %12s %14s\n", "stages", "chips", "prims",
              "events", "evts/prim", "verify ms", "no-memo ms", "storage KB");
  for (int stages : {8, 16, 32, 64, 128}) {
    gen::S1Params p;
    p.stages = stages;
    p.clock_tree_bufs = 0;
    hdl::ElaboratedDesign d = gen::build_s1_design(p);
    Verifier v(d.netlist, d.options);
    v.verify();  // warmup: touch all allocations once, populate the memo
    auto t0 = Clock::now();
    VerifyResult r = v.verify();
    auto t1 = Clock::now();
    // The same re-verification without the interning/memo layer, for the
    // speedup column (EXPERIMENTS.md).
    hdl::ElaboratedDesign d2 = gen::build_s1_design(p);
    d2.options.interning = false;
    Verifier v2(d2.netlist, d2.options);
    v2.verify();
    auto t2 = Clock::now();
    v2.verify();
    auto t3 = Clock::now();
    StorageBreakdown b = compute_storage(d.netlist);
    std::printf("  %7d %8zu %8zu %10zu %12.2f %12.2f %12.2f %14zu\n", stages,
                gen::s1_chip_count(p), d.summary.primitives, r.base_events,
                static_cast<double>(r.base_events) / d.summary.primitives,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                std::chrono::duration<double, std::milli>(t3 - t2).count(),
                b.total() >> 10);
  }

  std::printf("\nIncremental case analysis vs full reevaluation (32 stages)\n");
  {
    gen::S1Params p;
    p.stages = 32;
    p.clock_tree_bufs = 0;
    hdl::ElaboratedDesign d = gen::build_s1_design(p);
    Evaluator ev(d.netlist, d.options);
    ev.initialize();
    std::size_t base = ev.propagate();

    // Case on one stage's control input: only its cone reevaluates.
    SignalId ctl = d.netlist.find("S10 CTL0 .S4-8.5");
    std::size_t case_events =
        ev.apply_case(CaseSpec{"S10 CTL0 = 1", {{ctl, Value::One}}});
    std::printf("  base evaluation events:        %zu\n", base);
    std::printf("  incremental case events:       %zu (%.2f%% of base)\n", case_events,
                100.0 * static_cast<double>(case_events) / base);
    std::printf("  (sec. 2.7: \"only those parts of the circuit that are affected by\n"
                "   the case analysis are reevaluated\"; the Mark IIA rarely needed\n"
                "   case analysis at all, sec. 3.3.2)\n");
  }
  return 0;
}
