// Reproduces Fig 2-6: the circuit requiring case analysis. Analyzed with
// CONTROL SIGNAL symbolic (STABLE) the input-to-output delay reads 40 ns;
// analyzed case-by-case (CONTROL = 0, CONTROL = 1) both cases give 30 ns,
// because the complementary multiplexer selects can never route the two
// slow paths at once. Also measures the incremental cost of case-to-case
// reevaluation (sec. 2.7: "only those parts of the circuit that are
// affected by the case analysis are reevaluated").
#include "bench_util.hpp"
#include "core/verifier.hpp"

using namespace tv;

namespace {

struct Circuit {
  Netlist nl;
  VerifierOptions opts;
  SignalId control, output;
};

Circuit build() {
  Circuit c;
  c.opts.period = from_ns(100.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Netlist& nl = c.nl;
  Ref in = nl.ref("INPUT .S10-105");
  Ref control = nl.ref("CONTROL SIGNAL");
  Ref slow1 = nl.ref("SLOW1");
  nl.buf("EXTRA DELAY 1", from_ns(10), from_ns(10), in, slow1);
  Ref m1 = nl.ref("M1");
  nl.mux2("MUX 1", from_ns(10), from_ns(10), control, in, slow1, m1);
  Ref slow2 = nl.ref("SLOW2");
  nl.buf("EXTRA DELAY 2", from_ns(10), from_ns(10), m1, slow2);
  Ref out = nl.ref("OUTPUT");
  nl.mux2("MUX 2", from_ns(10), from_ns(10), nl.ref("- CONTROL SIGNAL"), m1, slow2, out);
  c.control = control.id;
  c.output = out.id;
  nl.finalize();
  return c;
}

double settle_delay(const Waveform& w) {
  Time t = 0;
  if (!w.settles(from_ns(10), from_ns(90), t)) return -1;
  return to_ns(t) - 10.0;  // the input settles at 10 ns
}

}  // namespace

int main() {
  Circuit c = build();
  Evaluator ev(c.nl, c.opts);
  ev.initialize();
  std::size_t base_events = ev.propagate();
  double no_cases = settle_delay(ev.wave(c.output));

  std::size_t ev1 = ev.apply_case(CaseSpec{"CONTROL=1", {{c.control, Value::One}}});
  double case1 = settle_delay(ev.wave(c.output));
  std::size_t ev0 = ev.apply_case(CaseSpec{"CONTROL=0", {{c.control, Value::Zero}}});
  double case0 = settle_delay(ev.wave(c.output));

  bench::header("Fig 2-6: circuit requiring case analysis");
  bench::row("delay without case analysis [ns]", 40.0, no_cases, "%.0f");
  bench::row("delay, case CONTROL=1 [ns]", 30.0, case1, "%.0f");
  bench::row("delay, case CONTROL=0 [ns]", 30.0, case0, "%.0f");
  bench::row("events, base evaluation", -1, static_cast<double>(base_events), "%.0f");
  bench::row("events, incremental case 1", -1, static_cast<double>(ev1), "%.0f");
  bench::row("events, incremental case 0", -1, static_cast<double>(ev0), "%.0f");
  bench::note("the paper gives the 40 vs 30 ns delays; event counts (-1) are ours,");
  bench::note("showing each case costs a fraction of the base evaluation.");
  return 0;
}
