// Reproduces the worked example of Fig 2-5 and its outputs:
//   Fig 3-10 -- the timing summary listing of signal values;
//   Fig 3-11 -- the two set-up errors, with the paper's exact numbers
//               (address set-up missed by the full 3.5 ns with data stable
//               and clock rising at 11.5 ns; output-register set-up of
//               2.5 ns missed by 1.0 ns with data stable at 47.5 ns and
//               clock rising at 49.0 ns).
#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "gen/regfile_example.hpp"

using namespace tv;

int main() {
  Netlist nl;
  gen::RegfileExample ex = gen::build_regfile_example(nl);
  Verifier v(nl, ex.options);
  VerifyResult r = v.verify();

  std::printf("%s\n", timing_summary(nl).c_str());
  std::printf("%s\n", violations_report(r.violations).c_str());

  bench::header("Fig 2-5 / 3-10 / 3-11: register-file verification example");
  bench::row("timing errors found", 2, static_cast<double>(r.violations.size()), "%.0f");
  double miss0 = r.violations.size() > 0 ? to_ns(r.violations[0].missed_by) : -1;
  double miss1 = r.violations.size() > 1 ? to_ns(r.violations[1].missed_by) : -1;
  bench::row("RAM address setup missed by [ns]", 3.5, miss0, "%.1f");
  bench::row("output register setup missed by [ns]", 1.0, miss1, "%.1f");

  // The Fig 3-10 headline entry: ADR<0:3> changing 0.5-5.5 and 25.5-30.5.
  Waveform adr = nl.signal(ex.adr).wave.with_skew_incorporated();
  auto bs = adr.boundaries();
  bench::row("ADR first change begins [ns]", 0.5, bs.size() > 0 ? to_ns(bs[0].time) : -1,
             "%.1f");
  bench::row("ADR first change ends [ns]", 5.5, bs.size() > 1 ? to_ns(bs[1].time) : -1,
             "%.1f");
  bench::row("ADR second change begins [ns]", 25.5, bs.size() > 2 ? to_ns(bs[2].time) : -1,
             "%.1f");
  bench::row("ADR second change ends [ns]", 30.5, bs.size() > 3 ? to_ns(bs[3].time) : -1,
             "%.1f");
  bench::row("events processed (one symbolic cycle)", -1,
             static_cast<double>(r.base_events), "%.0f");
  bench::note("paper value -1 means the thesis does not state the number.");
  return 0;
}
