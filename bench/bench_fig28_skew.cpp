// Reproduces Figs 2-8 and 2-9: the skew representation. A gate with a
// 5.0/10.0 ns delay shifts its input by the minimum delay and keeps the
// 5 ns residual in the separate skew field, preserving the pulse width
// (Fig 2-8); when the signal must be combined with another changing signal
// the skew is folded into the value list using RISE/FALL (Fig 2-9). Also
// demonstrates *why*: with skew folded too early, a minimum-pulse-width
// check would fire spuriously.
#include "bench_util.hpp"
#include "core/primitives.hpp"
#include "core/verifier.hpp"

using namespace tv;

int main() {
  const Time P = from_ns(50.0);

  // Input pulse high 10-20 ns through the Fig 2-8 OR gate (5/10 ns).
  Waveform in(P, Value::Zero);
  in.set(from_ns(10), from_ns(20), Value::One);
  Primitive gate;
  gate.kind = PrimKind::Or;
  gate.name = "OR 5/10";
  gate.dmin = from_ns(5);
  gate.dmax = from_ns(10);
  PreparedInput pin;
  pin.wave = in;
  PreparedInput pzero;
  pzero.wave = Waveform(P, Value::Zero);
  Waveform z = evaluate_primitive(gate, {pin, pzero}, P).wave;

  std::printf("input  X: %s\n", in.to_string().c_str());
  std::printf("output Z (skew separate, Fig 2-8): %s\n", z.to_string().c_str());
  Waveform folded = z.with_skew_incorporated();
  std::printf("output Z (skew in value, Fig 2-9): %s\n\n", folded.to_string().c_str());

  // Solid-1 width with skew separate vs folded.
  Time high_sep = 0, high_folded = 0;
  for (const auto& s : z.segments())
    if (s.value == Value::One) high_sep += s.width;
  for (const auto& s : folded.segments())
    if (s.value == Value::One) high_folded += s.width;

  bench::header("Fig 2-8 / 2-9: skew kept separate vs folded into the value");
  bench::row("output skew field [ns]", 5.0, to_ns(z.skew()), "%.1f");
  bench::row("pulse width, skew separate [ns]", 10.0, to_ns(high_sep), "%.1f");
  bench::row("guaranteed width, skew folded [ns]", 5.0, to_ns(high_folded), "%.1f");
  bench::row("folded rise window = RISE [ns wide]", 5.0,
             to_ns([&] {
               Time w = 0;
               for (const auto& s : folded.segments())
                 if (s.value == Value::Rise) w += s.width;
               return w;
             }()),
             "%.1f");

  // Why it matters: a 10 ns minimum-pulse-width requirement against this
  // output passes with the skew discipline (the full 10 ns pulse width is
  // preserved through the delay)...
  {
    Netlist nl;
    VerifierOptions opts;
    opts.period = P;
    opts.default_wire = WireDelay{0, 0};
    opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
    Ref x = nl.ref("X .P2+10.0");  // high at 10 ns for 10 ns (5 ns units)
    opts.units = ClockUnits::from_ns_per_unit(5.0);
    Ref zref = nl.ref("Z");
    nl.or_gate("OR 5/10", from_ns(5), from_ns(10), {x}, zref);
    nl.min_pulse_width_chk("Z WIDTH", from_ns(9.0), 0, zref);
    nl.finalize();
    Verifier v(nl, opts);
    VerifyResult r = v.verify();
    bench::row("pulse-width errors w/ skew discipline", 0,
               static_cast<double>(r.violations.size()), "%.0f");
  }
  bench::note("folding the 5 ns skew naively would leave only a 5 ns guaranteed");
  bench::note("pulse and a spurious minimum-pulse-width error -- the motivation");
  bench::note("given in sec. 2.8 for the separate skew field.");
  return 0;
}
