// Reproduces Table 3-2: "Primitive definitions generated for 6357 chip
// example". The thesis reports 22 primitive types, 8282 primitives in
// total (mean 376 uses per type), 1.3 primitives per chip, mean primitive
// width 6.5 bits, and 53 833 primitives had the vector symmetry NOT been
// exploited.
#include "bench_util.hpp"
#include "gen/s1_design.hpp"

using namespace tv;

int main() {
  gen::S1Params p;
  hdl::ElaboratedDesign d = gen::build_s1_design(p);
  const hdl::ExpandSummary& s = d.summary;

  std::size_t chips = gen::s1_chip_count(p);
  double mean_width = static_cast<double>(s.total_bits) / s.primitives;

  bench::header("Table 3-2: primitive definitions generated");
  bench::row("chips in design", 6357, static_cast<double>(chips), "%.0f");
  bench::row("primitive types used", 22, static_cast<double>(s.prims_by_kind.size()), "%.0f");
  bench::row("total primitives", 8282, static_cast<double>(s.primitives), "%.0f");
  bench::row("mean uses per type", 376.0,
             static_cast<double>(s.primitives) / s.prims_by_kind.size(), "%.0f");
  bench::row("primitives per chip", 1.3,
             static_cast<double>(s.primitives) / chips);
  bench::row("mean primitive width (bits)", 6.5, mean_width, "%.1f");
  bench::row("primitives if not vectorized", 53833, static_cast<double>(s.total_bits), "%.0f");

  std::printf("\n  primitive histogram (engine primitive types):\n");
  for (const auto& [kind, count] : s.prims_by_kind) {
    std::printf("    %-26s %8zu\n", kind.c_str(), count);
  }
  bench::note("the thesis counts SCALD-level primitive names (REG RS, 8 MUX, ...);");
  bench::note("we report the engine primitive kinds the HDL lowers to.");
  return 0;
}
