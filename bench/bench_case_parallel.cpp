// Parallel case-analysis throughput (thesis sec. 2.7 at scale).
//
// Workload: a design with many independent control cones -- each a deep
// combinational chain from an asserted control signal into a setup checker
// -- and a case file sweeping every control both ways. Each case disturbs
// one cone, so the engine's cone-scoped snapshots evaluate and re-check
// only ~1/K of the design per case, and the worker pool spreads the cases
// across threads.
//
// Measures, and emits as a single JSON document on stdout (same envelope as
// bench_interning --json and bench_batch_eval: a top-level "bench" tag and
// instances/sec figures, so the three benches are directly comparable):
//   * instances/sec for jobs = 1, 2, 4, 8 and the speedup vs jobs = 1;
//   * the legacy engine (sequential shared-netlist apply_case + full-design
//     recheck per case, what Verifier::verify did before cone snapshots)
//     as the "how much the engine itself gained" baseline;
//   * whether the violation reports were bit-identical across all job
//     counts (they must be).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/verifier.hpp"

namespace {

using namespace tv;

constexpr int kCones = 16;        // independent control cones
constexpr int kChainDepth = 500;  // primitives per cone
constexpr int kRepeats = 5;       // timing runs; best-of is reported

struct Workload {
  Netlist nl;
  VerifierOptions opts;
  std::vector<CaseSpec> cases;
};

Workload build_workload() {
  Workload w;
  w.opts.period = from_ns(100.0);
  w.opts.units = ClockUnits::from_ns_per_unit(1.0);

  for (int k = 0; k < kCones; ++k) {
    std::string tag = std::to_string(k);
    // Control is stable mid-cycle, changing across the wrap: pinning it to
    // 0/1 genuinely moves every waveform in its chain.
    Ref ctl = w.nl.ref("CTL" + tag + " .S5-90");
    Ref data = w.nl.ref("DATA" + tag + " .S10-95");
    Ref prev = ctl;
    for (int d = 0; d < kChainDepth; ++d) {
      Ref out = w.nl.ref("N" + tag + "_" + std::to_string(d));
      if (d % 3 == 2) {
        w.nl.and_gate("G" + tag + "_" + std::to_string(d), from_ns(0.5), from_ns(1.0),
                      {prev, data}, out);
      } else {
        w.nl.buf("G" + tag + "_" + std::to_string(d), from_ns(0.5), from_ns(1.0), prev, out);
      }
      prev = out;
    }
    Ref ck = w.nl.ref("CK" + tag + " .P70-71");
    w.nl.setup_hold_chk("CHK" + tag, from_ns(10), from_ns(2), prev, ck);

    for (Value v : {Value::Zero, Value::One}) {
      CaseSpec c;
      c.name = "CTL" + tag + "=" + (v == Value::Zero ? "0" : "1");
      c.pins = {{ctl.id, v}};
      w.cases.push_back(std::move(c));
    }
  }
  w.nl.finalize();
  return w;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One fingerprint string per verify result: per-case events + every
/// violation message, so job-count comparisons are byte-level.
std::string fingerprint(const VerifyResult& r) {
  std::string fp;
  for (const auto& c : r.cases) {
    fp += c.name + ":" + std::to_string(c.events) + "\n";
    for (const auto& v : c.violations) fp += v.message;
  }
  return fp;
}

// The pre-snapshot engine: every case mutates the shared netlist and the
// entire design is re-checked afterwards.
double run_legacy(Workload& w, std::string& fp_out) {
  double best = 1e100;
  for (int rep = 0; rep < kRepeats; ++rep) {
    Evaluator ev(w.nl, w.opts);
    ev.initialize();
    ev.propagate();
    run_checks(ev);
    auto t0 = std::chrono::steady_clock::now();
    std::string fp;
    for (const CaseSpec& c : w.cases) {
      std::size_t events = ev.apply_case(c);
      std::vector<Violation> violations = run_checks(ev);
      sort_violations(violations);
      fp += c.name + ":" + std::to_string(events) + "\n";
      for (const auto& v : violations) fp += v.message;
    }
    best = std::min(best, seconds_since(t0));
    ev.clear_case();
    fp_out = std::move(fp);
  }
  return best;
}

double run_snapshot(Workload& w, unsigned jobs, std::string& fp_out) {
  VerifierOptions opts = w.opts;
  opts.jobs = jobs;
  // This bench pins down the PR 1 per-case thread-pool engine; the lockstep
  // lane engine has its own bench (bench_batch_eval) that compares the two.
  opts.batch_eval = false;
  Verifier v(w.nl, opts);
  // Base evaluation is shared work; isolate the case-analysis phase by
  // subtracting the best-of case-free verify time from the best-of full
  // verify time (subtracting minima is far more stable than subtracting
  // per-iteration pairs).
  double best_base = 1e100, best_full = 1e100;
  for (int rep = 0; rep < kRepeats; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    v.verify();
    best_base = std::min(best_base, seconds_since(t0));
  }
  for (int rep = 0; rep < kRepeats; ++rep) {
    auto t1 = std::chrono::steady_clock::now();
    VerifyResult r = v.verify(w.cases);
    best_full = std::min(best_full, seconds_since(t1));
    fp_out = fingerprint(r);
  }
  return std::max(best_full - best_base, 1e-9);
}

}  // namespace

int main() {
  Workload w = build_workload();

  std::string legacy_fp;
  double legacy_secs = run_legacy(w, legacy_fp);

  const unsigned job_counts[] = {1, 2, 4, 8};
  double secs[4] = {0, 0, 0, 0};
  std::string fps[4];
  for (int i = 0; i < 4; ++i) secs[i] = run_snapshot(w, job_counts[i], fps[i]);

  bool identical = true;
  for (int i = 1; i < 4; ++i) identical = identical && fps[i] == fps[0];

  std::printf("{\n");
  std::printf("  \"bench\": \"case_parallel\",\n");
  std::printf("  \"primitives\": %zu,\n", w.nl.num_prims());
  std::printf("  \"signals\": %zu,\n", w.nl.num_signals());
  std::printf("  \"cases\": %zu,\n", w.cases.size());
  std::printf("  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"legacy_full_recheck\": {\"seconds\": %.6f, \"instances_per_sec\": %.1f},\n",
              legacy_secs, w.cases.size() / legacy_secs);
  std::printf("  \"results\": [\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("    {\"jobs\": %u, \"seconds\": %.6f, \"instances_per_sec\": %.1f, "
                "\"speedup_vs_jobs1\": %.2f, \"speedup_vs_legacy\": %.2f}%s\n",
                job_counts[i], secs[i], w.cases.size() / secs[i], secs[0] / secs[i],
                legacy_secs / secs[i], i + 1 < 4 ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"identical_reports_across_jobs\": %s\n", identical ? "true" : "false");
  std::printf("}\n");
  return identical ? 0 : 1;
}
