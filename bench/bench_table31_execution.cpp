// Reproduces Table 3-1: "Execution statistics for 6357 chip design example".
//
// The thesis breaks the processing of a 6357-chip portion of the S-1 Mark
// IIA into Macro Expander phases (read input 1.92 min, pass 1 8.42 min,
// pass 2 6.18 min) and Timing Verifier phases (read + build 4.45 min,
// cross-reference 0.72 min, verify 6.75 min = ~49 ms/primitive processing
// 20 052 events at ~20 ms/event, summary 0.22 min). Absolute 1980 times on
// an IBM 370/168-class machine are not comparable; what must reproduce is
// the *structure*: the same phases on a same-shape design, events of the
// same order per primitive, and verification cost comparable to (not
// exponentially worse than) the expansion cost.
#include <chrono>

#include "bench_util.hpp"
#include "core/verifier.hpp"
#include "gen/s1_design.hpp"
#include "hdl/parser.hpp"

using namespace tv;
using Clock = std::chrono::steady_clock;

static double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

int main() {
  gen::S1Params p;  // defaults: 93 stages + 33 tree buffers = 6357 chips

  auto t0 = Clock::now();
  std::string src = gen::generate_s1_shdl(p);
  hdl::File file = hdl::parse(src);
  auto t1 = Clock::now();
  hdl::ExpandSummary pass1 = hdl::expand_summary(file);
  auto t2 = Clock::now();
  hdl::ElaboratedDesign design = hdl::elaborate(file);
  auto t3 = Clock::now();

  Verifier verifier(design.netlist, design.options);
  auto t4 = Clock::now();  // "reading input files and building data structures"
  VerifyResult r = verifier.verify();
  auto t5 = Clock::now();
  std::string xref = cross_reference_listing(design.netlist, r.cross_reference);
  std::string summary = timing_summary(design.netlist);
  auto t6 = Clock::now();

  bench::header("Table 3-1: execution statistics, 6357-chip design example");
  bench::row("chips", 6357, static_cast<double>(gen::s1_chip_count(p)), "%.0f");
  bench::row("primitives after expansion", 8282,
             static_cast<double>(design.summary.primitives), "%.0f");

  std::printf("\n  MACRO EXPANSION (paper minutes on a 370/168; ours seconds)\n");
  bench::row("read input + build data structures [min|s]", 1.92, secs(t0, t1));
  bench::row("pass 1 of macro expansion [min|s]", 8.42, secs(t1, t2));
  bench::row("pass 2 of macro expansion [min|s]", 6.18, secs(t2, t3));

  std::printf("\n  TIMING VERIFIER\n");
  bench::row("build verifier structures [min|s]", 4.45, secs(t3, t4));
  bench::row("verify circuit [min|s]", 6.75, secs(t4, t5));
  bench::row("listings (xref + summary) [min|s]", 0.94, secs(t5, t6));
  bench::row("events processed", 20052, static_cast<double>(r.base_events), "%.0f");
  bench::row("events per primitive", 20052.0 / 8282.0,
             static_cast<double>(r.base_events) / design.summary.primitives);
  bench::row("verify ms per primitive", 49.0,
             1000.0 * secs(t4, t5) / design.summary.primitives, "%.4f");
  bench::row("verify ms per event", 20.0, 1000.0 * secs(t4, t5) / r.base_events, "%.4f");
  bench::row("timing violations (mature design)", 0,
             static_cast<double>(r.total_violations()), "%.0f");
  bench::note("paper times are minutes on an IBM 370/168-class machine; ours are");
  bench::note("seconds on modern hardware -- the per-phase *structure* and the");
  bench::note("events-per-primitive shape are the reproduced quantities.");
  std::printf("  xref/summary bytes generated: %zu / %zu\n", xref.size(), summary.size());
  return 0;
}
