// Reproduces Table 3-3: "Storage required by Timing Verifier for 6357 chip
// example". The thesis' breakdown (unpacked 4-byte PASCAL fields):
//   CIRCUIT DESCRIPTION   37.8 %   (~260 bytes per primitive)
//   SIGNAL VALUES                 (33 152 value lists, mean 2.97 records,
//                                  ~56 bytes per signal)
//   SIGNAL NAMES          11.6 %
//   STRING SPACE          10.6 %
//   CALL LIST ARRAY        6.9 %
//   MISCELLANEOUS          0.7 %
#include "bench_util.hpp"
#include "core/storage_stats.hpp"
#include "core/verifier.hpp"
#include "gen/s1_design.hpp"

using namespace tv;

int main() {
  gen::S1Params p;
  hdl::ElaboratedDesign d = gen::build_s1_design(p);
  Verifier v(d.netlist, d.options);
  v.verify();  // populate the signal value lists

  StorageBreakdown b = compute_storage(d.netlist);
  double total = static_cast<double>(b.total());

  bench::header("Table 3-3: storage required by the Timing Verifier");
  bench::row("CIRCUIT DESCRIPTION   [% of total]", 37.8, 100.0 * b.circuit_description / total,
             "%.1f");
  bench::row("SIGNAL VALUES         [% of total]", 31.8, 100.0 * b.signal_values / total,
             "%.1f");
  bench::row("SIGNAL NAMES          [% of total]", 11.6, 100.0 * b.signal_names / total,
             "%.1f");
  bench::row("STRING SPACE          [% of total]", 10.6, 100.0 * b.string_space / total,
             "%.1f");
  bench::row("CALL LIST ARRAY       [% of total]", 6.9, 100.0 * b.call_list / total, "%.1f");
  bench::row("MISCELLANEOUS         [% of total]", 0.7, 100.0 * b.misc / total, "%.1f");
  std::printf("\n");
  bench::row("bytes per primitive (circuit descr.)", 260.0, b.mean_prim_bytes, "%.0f");
  bench::row("mean VALUE records per signal", 2.97, b.mean_value_records);
  bench::row("mean bytes per signal value list", 56.0, b.mean_value_bytes, "%.0f");
  bench::row("signal value lists", 33152, static_cast<double>(d.netlist.num_signals()),
             "%.0f");

  std::printf("\n  full ledger (thesis record-size model):\n%s",
              b.to_ledger().to_table().c_str());

  // The sec. 2.8 sharing claim made concrete: how many *unique* canonical
  // waveforms the whole design's signal population collapses to, and what
  // the evaluation memo-cache did for this run.
  std::printf("\n  waveform sharing and evaluation memo (core/wave_table.hpp):\n");
  std::printf("    unique waveforms          %zu (of %zu signals, %.1f signals/waveform)\n",
              b.unique_waveforms, static_cast<std::size_t>(d.netlist.num_signals()),
              b.signals_per_unique_waveform);
  std::printf("    VALUE storage if interned %zu bytes (owned: %zu bytes, %.1fx smaller)\n",
              b.interned_value_bytes, b.signal_values,
              b.interned_value_bytes
                  ? static_cast<double>(b.signal_values) / b.interned_value_bytes
                  : 0.0);
  if (v.evaluator().intern_context()) {
    std::printf("%s", intern_stats_report(
                          collect_intern_stats(*v.evaluator().intern_context()))
                          .c_str());
  }
  bench::note("SIGNAL VALUES %% in the paper is the remainder after the listed");
  bench::note("categories (not printed explicitly); 31.8%% is that remainder.");
  bench::note("our design has fewer unique vector signals (9k vs 33k) because the");
  bench::note("synthetic netlist shares buses more aggressively than the real CPU.");
  return 0;
}
