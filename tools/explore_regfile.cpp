#include <cstdio>
#include "core/verifier.hpp"
#include "gen/regfile_example.hpp"
using namespace tv;
int main() {
  Netlist nl;
  auto ex = gen::build_regfile_example(nl);
  Verifier v(nl, ex.options);
  VerifyResult r = v.verify();
  std::printf("events=%zu converged=%d\n", r.base_events, (int)r.converged);
  std::printf("%s\n", timing_summary(nl).c_str());
  std::printf("%s\n", violations_report(r.violations).c_str());
  return 0;
}
