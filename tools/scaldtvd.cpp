// scaldtvd -- batch/daemon front end for the SCALD Timing Verifier.
//
// Runs a queue of verification jobs, each in a crash-isolated scaldtv
// worker process, and writes a byte-stable JSON run manifest. Jobs come
// from newline-JSON job files (one object per line; see docs/serving.md)
// given on the command line, and/or from a watched directory of *.jobs
// files in --watch mode.
//
// Usage:
//   scaldtvd [options] <jobs-file>...
//     --watch DIR        poll DIR for *.jobs files; each file is one batch,
//                        renamed to *.jobs.done (or *.jobs.failed) after its
//                        manifest is written next to it as *.manifest.json
//     --workers N        max jobs in flight (default 1)
//     --max-attempts N   worker launches per job before it is declared
//                        crashed (default 3)
//     --backoff-ms N     first retry delay (default 100)
//     --backoff-max-ms N retry delay cap (default 5000)
//     --job-timeout S    watchdog for jobs without a time_limit, and the
//                        slack added on top of a job's time_limit budget
//                        before the watchdog SIGKILLs it (default 2.0 slack,
//                        no default watchdog)
//     --manifest FILE    write the run manifest here (default stdout)
//     --journal FILE     write-ahead job journal (docs/recovery.md): every
//                        launch/outcome/settle transition is appended and
//                        fsync'd before the batch proceeds, so a killed
//                        daemon can be restarted with --resume. Command-line
//                        batches only (not --watch)
//     --resume           replay FILE (from --journal) before running: jobs
//                        whose journaled attempts already settle them are
//                        carried into the manifest without relaunching, the
//                        rest re-enter the queue where they left off. The
//                        resumed manifest is byte-identical to the one an
//                        uninterrupted run would have written. A missing
//                        journal file is a fresh start, so "--journal J
//                        --resume" is idempotent across any number of kills
//     --scaldtv PATH     worker binary (default $TV_SCALDTV or "scaldtv")
//     --fault SPEC       daemon-level fault plan: applied to scaldtvd's own
//                        io.read/serve.spawn sites AND injected into every
//                        worker that has no job-level fault of its own
//     --seed N           keys the deterministic retry jitter (default 0)
//     --warm             keep one resident worker per design alive across
//                        jobs (serve/warm_pool.hpp): the design stays
//                        loaded and the waveform-intern table stays warm,
//                        while crash isolation, watchdogs, and retry
//                        semantics are unchanged
//     --max-resident N   bound the warm pool: keep at most N idle resident
//                        workers, retiring the least-recently-used past the
//                        cap (the manifest's "evictions" field counts the
//                        retirements). Capped workers persist each design's
//                        fixpoint snapshot (<design>.tvf), so a re-spawned
//                        worker warm-starts from the sidecar instead of
//                        re-verifying cold. Requires --warm
//     --mem-limit-mb N   per-job memory budget (docs/serving.md): an RSS
//                        watchdog samples /proc/<pid>/statm and SIGKILLs a
//                        worker past N MiB; the breach settles the job as
//                        "resource-exhausted" (exit 6), never an anonymous
//                        crash. Fork/exec workers also get a setrlimit
//                        backstop
//     --mem-retry        treat mem-limit breaches as transient: retry up to
//                        --max-attempts, settling resource-exhausted only if
//                        the final attempt still breaches
//     --max-queue N      bounded admission: only the first N jobs (input
//                        order) are admitted; the rest settle as "shed"
//                        (exit 7) without running
//     --quarantine-after K
//                        poison-design breaker: after K consecutive
//                        crashed/resource-exhausted settlements of one
//                        design (keyed by artifact content hash + front-end
//                        mode), fast-fail its remaining jobs as
//                        "quarantined" (exit 8). Jobs sharing a design are
//                        serialized so "consecutive" is deterministic
//     --no-quarantine    force the breaker off (overrides --quarantine-after)
//     -v                 per-attempt progress on stderr
//
// Exit status: worst terminal job state across all batches --
//   0 all clean, 1 violations, 2 input errors (bad job file or design),
//   3 degraded, 4 at least one job crashed after all retries,
//   6 resource-exhausted, 7 shed, 8 quarantined
//   (precedence 2 > 4 > 6 > 8 > 7 > 3 > 1 > 0).
// Requeued jobs (graceful shutdown) do not affect the exit status.
//
// SIGTERM/SIGINT trigger a graceful shutdown: running workers drain (their
// watchdogs stay armed), pending and backing-off jobs are recorded as
// "requeued" in the manifest, and the daemon exits.
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/manifest.hpp"
#include "serve/supervisor.hpp"
#include "util/atomic_file.hpp"
#include "util/fault.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: scaldtvd [--watch DIR] [--workers N] [--max-attempts N] "
               "[--backoff-ms N] [--backoff-max-ms N] [--job-timeout S] "
               "[--manifest FILE] [--journal FILE] [--resume] [--scaldtv PATH] "
               "[--fault SPEC] [--seed N] [--warm] [--max-resident N] "
               "[--mem-limit-mb N] [--mem-retry] [--max-queue N] "
               "[--quarantine-after K] [--no-quarantine] [-v] "
               "<jobs-file>...\n");
  return 2;
}

bool write_manifest(const tv::serve::Manifest& m, const char* path) {
  if (!path) {
    std::fputs(m.to_json().c_str(), stdout);
    return true;
  }
  std::string error;
  if (!tv::util::atomic_write_file(path, m.to_json(), &error)) {
    std::fprintf(stderr, "scaldtvd: cannot write %s (%s)\n", path, error.c_str());
    return false;
  }
  return true;
}

bool has_suffix(const std::string& s, const char* suffix) {
  std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// One pass over the watch directory: returns the sorted list of ready
/// *.jobs files (sorted so pickup order is deterministic).
std::vector<std::string> scan_watch_dir(const std::string& dir) {
  std::vector<std::string> found;
  DIR* d = opendir(dir.c_str());
  if (!d) return found;
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (has_suffix(name, ".jobs")) found.push_back(dir + "/" + name);
  }
  closedir(d);
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  tv::fault::configure_from_env();

  tv::serve::SupervisorOptions opts;
  opts.shutdown = &g_shutdown;
  if (const char* env = std::getenv("TV_SCALDTV")) opts.scaldtv_path = env;
  const char* watch_dir = nullptr;
  const char* manifest_path = nullptr;
  const char* journal_path = nullptr;
  bool resume = false;
  bool slack_set = false;
  bool no_quarantine = false;
  std::vector<std::string> job_files;
  for (int i = 1; i < argc; ++i) {
    auto long_num = [&](const char* flag, long lo, long& out) {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return false;
      char* end = nullptr;
      out = std::strtol(argv[++i], &end, 10);
      if (!end || *end != '\0' || out < lo) out = lo - 1;
      return true;
    };
    long n = 0;
    if (std::strcmp(argv[i], "--watch") == 0 && i + 1 < argc) {
      watch_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--manifest") == 0 && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--scaldtv") == 0 && i + 1 < argc) {
      opts.scaldtv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
      std::string error;
      opts.fault_spec = argv[++i];
      if (!tv::fault::configure(opts.fault_spec, &error)) {
        std::fprintf(stderr, "scaldtvd: %s\n", error.c_str());
        return usage();
      }
    } else if (long_num("--workers", 1, n)) {
      if (n < 1) return usage();
      opts.workers = static_cast<unsigned>(n);
    } else if (long_num("--max-attempts", 1, n)) {
      if (n < 1) return usage();
      opts.max_attempts = static_cast<int>(n);
    } else if (long_num("--backoff-ms", 0, n)) {
      if (n < 0) return usage();
      opts.backoff_base_ms = static_cast<std::uint64_t>(n);
    } else if (long_num("--backoff-max-ms", 0, n)) {
      if (n < 0) return usage();
      opts.backoff_max_ms = static_cast<std::uint64_t>(n);
    } else if (long_num("--seed", 0, n)) {
      if (n < 0) return usage();
      opts.jitter_seed = static_cast<std::uint64_t>(n);
    } else if (std::strcmp(argv[i], "--job-timeout") == 0 && i + 1 < argc) {
      char* end = nullptr;
      double v = std::strtod(argv[++i], &end);
      if (!end || *end != '\0' || v <= 0) return usage();
      opts.default_timeout = v;
      opts.watchdog_slack = v;
      slack_set = true;
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      opts.warm = true;
    } else if (long_num("--max-resident", 1, n)) {
      if (n < 1) return usage();
      opts.max_resident = static_cast<std::size_t>(n);
    } else if (long_num("--mem-limit-mb", 1, n)) {
      if (n < 1) return usage();
      opts.mem_limit_mb = n;
    } else if (std::strcmp(argv[i], "--mem-retry") == 0) {
      opts.mem_retry = true;
    } else if (long_num("--max-queue", 1, n)) {
      if (n < 1) return usage();
      opts.max_queue = n;
    } else if (long_num("--quarantine-after", 1, n)) {
      if (n < 1) return usage();
      if (!no_quarantine) opts.quarantine_after = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--no-quarantine") == 0) {
      no_quarantine = true;
      opts.quarantine_after = 0;
    } else if (std::strcmp(argv[i], "-v") == 0 || std::strcmp(argv[i], "--verbose") == 0) {
      opts.verbose = true;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      job_files.push_back(argv[i]);
    }
  }
  (void)slack_set;
  if (job_files.empty() && !watch_dir) return usage();
  if (opts.max_resident > 0 && !opts.warm) {
    std::fprintf(stderr, "scaldtvd: --max-resident requires --warm\n");
    return usage();
  }
  if (resume && !journal_path) {
    std::fprintf(stderr, "scaldtvd: --resume requires --journal FILE\n");
    return usage();
  }
  if (journal_path && (watch_dir || job_files.empty())) {
    std::fprintf(stderr, "scaldtvd: --journal applies to command-line batches only\n");
    return usage();
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  // A dying worker closing its pipe end must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  int worst = 0;
  auto fold = [&](int code) {
    // Worst-wins precedence: 2 > 4 > 6 > 8 > 7 > 3 > 1 > 0.
    static const int rank[] = {0, 2, 8, 3, 7, 1, 6, 4, 5};
    auto r = [](int c) { return (c >= 0 && c <= 8) ? rank[c] : 8; };
    if (r(code) > r(worst)) worst = code;
  };

  // Command-line batches first: all named job files load up front so a bad
  // file fails the run before any worker launches.
  if (!job_files.empty()) {
    std::vector<tv::serve::JobSpec> jobs;
    for (const std::string& file : job_files) {
      std::string error;
      auto batch = tv::serve::parse_job_file(file, &error);
      if (!batch) {
        std::fprintf(stderr, "scaldtvd: %s\n", error.c_str());
        return 2;
      }
      for (auto& j : *batch) jobs.push_back(std::move(j));
    }
    std::unique_ptr<tv::serve::Journal> journal;
    tv::serve::JournalReplay replay;
    tv::serve::BatchPolicy policy;
    policy.mem_limit_mb = opts.mem_limit_mb;
    policy.mem_retry = opts.mem_retry;
    policy.max_queue = opts.max_queue;
    policy.quarantine_after = opts.quarantine_after;
    if (journal_path) {
      std::string jerror;
      bool journal_exists = access(journal_path, F_OK) == 0;
      if (resume && journal_exists) {
        // A journal file with no newline at all -- empty, or one torn
        // header line -- is the only artifact of a crash during the very
        // first append. Nothing durable was recorded, so it is a fresh
        // start, which keeps "--journal J --resume" idempotent even when
        // the first kill lands inside the header write.
        std::ifstream jin(journal_path, std::ios::binary);
        std::stringstream jbuf;
        jbuf << jin.rdbuf();
        journal_exists = jbuf.str().find('\n') != std::string::npos;
      }
      if (resume && journal_exists) {
        auto replayed = tv::serve::replay_journal(journal_path, &jerror);
        if (!replayed) {
          std::fprintf(stderr, "scaldtvd: %s\n", jerror.c_str());
          return 2;
        }
        // The journal must describe *this* batch: replaying one batch's
        // attempts into a different job list (or under a different retry /
        // overload policy) would fabricate results.
        if (replayed->digest != tv::serve::jobs_digest(jobs) ||
            replayed->num_jobs != jobs.size() ||
            replayed->seed != opts.jitter_seed ||
            replayed->max_attempts != opts.max_attempts ||
            replayed->policy.mem_limit_mb != policy.mem_limit_mb ||
            replayed->policy.mem_retry != policy.mem_retry ||
            replayed->policy.max_queue != policy.max_queue ||
            replayed->policy.quarantine_after != policy.quarantine_after) {
          std::fprintf(stderr,
                       "scaldtvd: %s was written for a different batch or "
                       "retry configuration; refusing to resume\n", journal_path);
          return 2;
        }
        replay = std::move(*replayed);
        opts.resume = &replay;
        journal = tv::serve::Journal::reopen(journal_path, &jerror);
      } else {
        journal = tv::serve::Journal::create(journal_path, jobs, opts.jitter_seed,
                                             opts.max_attempts, policy, &jerror);
      }
      if (!journal) {
        std::fprintf(stderr, "scaldtvd: %s\n", jerror.c_str());
        return 2;
      }
      opts.journal = journal.get();
    }
    tv::serve::Manifest m = tv::serve::run_jobs(jobs, opts);
    if (journal && !journal->ok()) {
      // The batch itself finished, but its durable record is broken: a
      // later --resume would replay a lie. Loud failure beats that.
      std::fprintf(stderr, "scaldtvd: %s\n", journal->error().c_str());
      fold(2);
    }
    if (!write_manifest(m, manifest_path)) return 2;
    fold(m.exit_code());
  }

  // Watch mode: poll for *.jobs batches until shutdown. Each batch gets its
  // own manifest written next to it; the batch file is renamed so it is
  // never picked up twice (rename is atomic on the same filesystem).
  while (watch_dir && !g_shutdown) {
    for (const std::string& file : scan_watch_dir(watch_dir)) {
      if (g_shutdown) break;
      std::string error;
      auto batch = tv::serve::parse_job_file(file, &error);
      std::string base = file.substr(0, file.size() - std::strlen(".jobs"));
      if (!batch) {
        std::fprintf(stderr, "scaldtvd: %s\n", error.c_str());
        std::rename(file.c_str(), (file + ".failed").c_str());
        fold(2);
        continue;
      }
      tv::serve::Manifest m = tv::serve::run_jobs(*batch, opts);
      std::string werror;
      if (!tv::util::atomic_write_file(base + ".manifest.json", m.to_json(), &werror)) {
        std::fprintf(stderr, "scaldtvd: cannot write %s.manifest.json (%s)\n",
                     base.c_str(), werror.c_str());
      }
      std::rename(file.c_str(), (file + ".done").c_str());
      fold(m.exit_code());
      if (opts.verbose) {
        std::fprintf(stderr, "scaldtvd: batch %s done (exit %d)\n", file.c_str(),
                     m.exit_code());
      }
    }
    if (!g_shutdown) usleep(200 * 1000);
  }

  return worst;
}
