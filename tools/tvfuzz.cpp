// tvfuzz: differential self-checking fuzzer for the Timing Verifier.
//
// Runs two oracles over seeded random inputs:
//   * conservatism: every violation the value-level logic simulator exposes
//     under sampled realities must be covered by a symbolic violation
//     (src/check/oracles.hpp);
//   * wave-algebra: structural and refinement invariants of the sec. 2.8
//     waveform algebra, including a concrete-replay check of
//     delayed_rise_fall.
//
// On failure the counterexample is shrunk and printed as a paste-into-gtest
// repro; the exit code is nonzero.
//
// A third mode, --memo-diff, runs each random circuit twice -- waveform
// interning + evaluation memo-cache on, then off -- and fails on any
// divergence in waveforms, reports, or event counts (the optimization must
// be bit-exact).
//
// A fourth mode, --parser-fuzz, mutates valid SHDL sources (byte- and
// token-level, seeded) and feeds them to the diagnostic front end: it must
// never crash, never let an exception escape, and always report at least
// one error diagnostic when it rejects an input.
//
// A sixth mode, --batch-diff, runs each random circuit's case analysis
// through both the per-case snapshot path and the structure-of-arrays
// batch path (VerifierOptions::batch_eval) and fails on any divergence in
// reports, waveforms, or counts (the lockstep sweep must be bit-exact).
//
// A seventh mode, --compile-diff, round-trips each random circuit through
// the scaldtvc compiled-design artifact (serialize -> reload -> verify) and
// fails on any divergence from the in-memory original, or on a
// non-deterministic serialization (the artifact must be byte-stable).
//
// An eighth mode, --incr-diff, replays a K-step random edit script against
// each random circuit both incrementally (Verifier::reverify, one long-lived
// verifier) and cold (fresh build + delta prefix + from-scratch verify) on
// both the source and the compiled front ends, and fails on any divergence
// outside the sanctioned evaluation-effort counters (the reverify report
// must be byte-identical to a cold run of the edited design).
//
// A ninth mode, --snapshot-diff, snapshots each random circuit's baseline
// fixpoint (core/fixpoint.hpp), restores it into a fresh verifier over a
// freshly built world, and replays a K-step random edit script on both: the
// restored world must match byte-for-byte after every step -- effort
// counters included -- and re-serialize to identical snapshot bytes, on
// both the source and compiled front ends.
//
// A fifth mode, --serve-chaos, pushes seeded batches of generated designs
// with random fault specs through a real scaldtvd worker pool and asserts
// every job ends in a terminal state, retries are visible in attempt
// counts, and the manifest is byte-stable across identical runs. The mode
// also runs the overload scenarios (memory-budget breach, bounded
// admission, poison-design quarantine + kill/resume, and the ENOSPC sweep
// over every durable write) once per backend. Binaries come from
// --scaldtvd/--scaldtv or TV_SCALDTVD/TV_SCALDTV.
//
// Usage:
//   tvfuzz [--seeds N] [--wave N] [--start S] [--smoke] [--memo-diff]
//          [--batch-diff] [--compile-diff] [--incr-diff] [--incr-steps K]
//          [--snapshot-diff] [--parser-fuzz] [--serve-chaos]
//          [--scaldtvd PATH] [--scaldtv PATH] [--no-shrink] [-v]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/incr_diff.hpp"
#include "check/oracles.hpp"
#include "check/snapshot_diff.hpp"
#include "check/parser_fuzz.hpp"
#include "check/serve_chaos.hpp"
#include "check/shrinker.hpp"

namespace {

struct Options {
  std::uint64_t start = 1;
  int circuit_seeds = 500;
  int wave_seeds = 500;
  bool memo_diff = false;
  bool batch_diff = false;
  bool compile_diff = false;
  bool incr_diff = false;
  int incr_steps = 4;
  bool snapshot_diff = false;
  bool parser_fuzz = false;
  bool serve_chaos = false;
  bool seeds_set = false;
  std::string scaldtvd_path;
  std::string scaldtv_path;
  bool shrink = true;
  bool verbose = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--wave N] [--start S] [--smoke] [--memo-diff] "
               "[--batch-diff] [--compile-diff] [--parser-fuzz] [--no-shrink] [-v]\n"
               "  --seeds N     differential circuit cases to run (default 500)\n"
               "  --wave N      waveform-algebra cases to run (default 500)\n"
               "  --start S     first seed (default 1)\n"
               "  --smoke       quick CI gate: 120 circuit + 250 wave cases\n"
               "  --memo-diff   run each circuit spec twice (interning/memo on vs\n"
               "                off) and fail on any report or waveform divergence\n"
               "  --batch-diff  run each circuit's case analysis through the per-case\n"
               "                and batch engines and fail on any divergence\n"
               "  --compile-diff round-trip each circuit through the compiled-design\n"
               "                artifact and fail on any divergence or instability\n"
               "  --incr-diff   replay a K-step random edit script incrementally\n"
               "                (Verifier::reverify) and cold per step, on both the\n"
               "                source and compiled front ends; fail on divergence\n"
               "  --incr-steps K edits per script in --incr-diff (default 4)\n"
               "  --snapshot-diff snapshot each circuit's baseline fixpoint, restore\n"
               "                it into a fresh verifier, and replay an edit script on\n"
               "                both; fail on any byte divergence (counters included)\n"
               "  --parser-fuzz mutate valid SHDL sources and assert the front end\n"
               "                never crashes and always diagnoses rejected input\n"
               "  --serve-chaos run seeded faulted batches through scaldtvd and assert\n"
               "                every job ends terminal with retries observable\n"
               "  --scaldtvd P  daemon binary for --serve-chaos (or TV_SCALDTVD)\n"
               "  --scaldtv P   worker binary for --serve-chaos (or TV_SCALDTV)\n"
               "  --no-shrink   print raw failing specs without minimizing\n"
               "  -v            per-case progress output\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      out = std::atoi(argv[++i]);
    };
    if (a == "--seeds") {
      next_int(opt.circuit_seeds);
      opt.seeds_set = true;
    } else if (a == "--wave") {
      next_int(opt.wave_seeds);
    } else if (a == "--start") {
      int s = 0;
      next_int(s);
      opt.start = static_cast<std::uint64_t>(s);
    } else if (a == "--smoke") {
      opt.circuit_seeds = 120;
      opt.wave_seeds = 250;
    } else if (a == "--memo-diff") {
      opt.memo_diff = true;
    } else if (a == "--batch-diff") {
      opt.batch_diff = true;
    } else if (a == "--compile-diff") {
      opt.compile_diff = true;
    } else if (a == "--incr-diff") {
      opt.incr_diff = true;
    } else if (a == "--snapshot-diff") {
      opt.snapshot_diff = true;
    } else if (a == "--incr-steps") {
      next_int(opt.incr_steps);
      if (opt.incr_steps < 1) {
        usage(argv[0]);
        return 2;
      }
    } else if (a == "--parser-fuzz") {
      opt.parser_fuzz = true;
    } else if (a == "--serve-chaos") {
      opt.serve_chaos = true;
    } else if (a == "--scaldtvd" && i + 1 < argc) {
      opt.scaldtvd_path = argv[++i];
    } else if (a == "--scaldtv" && i + 1 < argc) {
      opt.scaldtv_path = argv[++i];
    } else if (a == "--no-shrink") {
      opt.shrink = false;
    } else if (a == "-v" || a == "--verbose") {
      opt.verbose = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  int failures = 0;
  long long sim_runs = 0, sim_violating = 0;
  int tv_found = 0;

  if (opt.serve_chaos) {
    // Serving-layer chaos mode: each "case" is one full batch of faulted
    // jobs through a real scaldtvd + worker pool (run twice for the
    // byte-stability check), so the default count is small.
    int batches = opt.seeds_set ? opt.circuit_seeds : 2;
    tv::check::ServeChaosOptions sc;
    sc.scaldtvd_path = opt.scaldtvd_path;
    sc.scaldtv_path = opt.scaldtv_path;
    if (sc.scaldtvd_path.empty()) {
      if (const char* env = std::getenv("TV_SCALDTVD")) sc.scaldtvd_path = env;
    }
    if (sc.scaldtv_path.empty()) {
      if (const char* env = std::getenv("TV_SCALDTV")) sc.scaldtv_path = env;
    }
    sc.verbose = opt.verbose;
    // Graceful-shutdown scenarios first (SIGTERM mid-hang and mid-backoff
    // must requeue, not crash), once per backend.
    for (bool warm : {false, true}) {
      sc.warm = warm;
      auto fail = tv::check::check_drain_requeue(sc);
      if (opt.verbose) {
        std::printf("serve-chaos drain-requeue (%s): %s\n",
                    warm ? "warm" : "fork/exec", fail ? "FAIL" : "ok");
      }
      if (!fail) continue;
      ++failures;
      std::printf("FAIL serve-chaos drain-requeue (%s) [%s]\n  %s\n",
                  warm ? "warm" : "fork/exec", fail->kind.c_str(),
                  fail->detail.c_str());
    }
    // Kill/restart chaos: SIGKILL the daemon itself at every write-ahead
    // journal transition and assert --resume always finishes the batch
    // with a manifest byte-identical to the uninterrupted run's.
    for (bool warm : {false, true}) {
      sc.warm = warm;
      sc.seed = opt.start;
      auto fail = tv::check::check_kill_restart(sc);
      if (opt.verbose) {
        std::printf("serve-chaos kill-restart (%s): %s\n",
                    warm ? "warm" : "fork/exec", fail ? "FAIL" : "ok");
      }
      if (fail) {
        ++failures;
        std::printf("FAIL serve-chaos kill-restart (%s) [%s]\n  %s\n",
                    warm ? "warm" : "fork/exec", fail->kind.c_str(),
                    fail->detail.c_str());
      }
    }
    // Overload scenarios: bounded admission (shed past --max-queue), the
    // poison-design quarantine breaker with its kill/resume sweep, and the
    // ENOSPC sweep over every durable write -- once per backend.
    for (bool warm : {false, true}) {
      sc.warm = warm;
      sc.seed = opt.start;
      const struct {
        const char* name;
        std::optional<tv::check::ServeChaosFailure> (*run)(
            const tv::check::ServeChaosOptions&);
      } overload[] = {
          {"shed", tv::check::check_shed},
          {"quarantine-resume", tv::check::check_quarantine_resume},
          {"write-fail", tv::check::check_write_fail},
      };
      for (const auto& sc_case : overload) {
        auto fail = sc_case.run(sc);
        if (opt.verbose) {
          std::printf("serve-chaos %s (%s): %s\n", sc_case.name,
                      warm ? "warm" : "fork/exec", fail ? "FAIL" : "ok");
        }
        if (fail) {
          ++failures;
          std::printf("FAIL serve-chaos %s (%s) [%s]\n  %s\n", sc_case.name,
                      warm ? "warm" : "fork/exec", fail->kind.c_str(),
                      fail->detail.c_str());
        }
      }
    }
    // Memory budgets: the RSS watchdog's resource-exhausted classification
    // and the --mem-retry policy (the scenario runs both backends
    // internally and compares their manifests byte for byte).
    {
      auto fail = tv::check::check_mem_breach(sc);
      if (opt.verbose) {
        std::printf("serve-chaos mem-breach: %s\n", fail ? "FAIL" : "ok");
      }
      if (fail) {
        ++failures;
        std::printf("FAIL serve-chaos mem-breach [%s]\n  %s\n", fail->kind.c_str(),
                    fail->detail.c_str());
      }
    }
    // Incremental-reverification chaos: faulted delta applications must
    // retry byte-identically and never corrupt a warm worker's resident
    // fixpoint (the scenario runs both backends internally).
    {
      auto fail = tv::check::check_reverify_chaos(sc);
      if (opt.verbose) {
        std::printf("serve-chaos reverify: %s\n", fail ? "FAIL" : "ok");
      }
      if (fail) {
        ++failures;
        std::printf("FAIL serve-chaos reverify [%s]\n  %s\n", fail->kind.c_str(),
                    fail->detail.c_str());
      }
    }
    // Seeded chaos batches, alternating backends so both the fork/exec and
    // the warm-pool supervisors face the same fault mix.
    for (int i = 0; i < batches; ++i) {
      sc.seed = opt.start + static_cast<std::uint64_t>(i);
      sc.warm = (i % 2) == 1;
      auto fail = tv::check::check_serve_chaos(sc);
      if (opt.verbose) {
        std::printf("serve-chaos seed %llu (%s): %s\n",
                    static_cast<unsigned long long>(sc.seed),
                    sc.warm ? "warm" : "fork/exec", fail ? "FAIL" : "ok");
      }
      if (!fail) continue;
      ++failures;
      std::printf("FAIL serve-chaos seed %llu (%s) [%s]\n  %s\n",
                  static_cast<unsigned long long>(sc.seed),
                  sc.warm ? "warm" : "fork/exec", fail->kind.c_str(),
                  fail->detail.c_str());
    }
    std::printf("tvfuzz --serve-chaos: %d batch(es) + drain/overload scenarios, "
                "%d failure%s\n",
                batches, failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
  }

  if (opt.parser_fuzz) {
    // Front-end robustness mode: mutated SHDL must never crash the parser
    // stack and every rejection must carry at least one error diagnostic.
    for (int i = 0; i < opt.circuit_seeds; ++i) {
      std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
      auto fail = tv::check::check_parser_robustness(seed);
      if (opt.verbose) {
        std::printf("parser seed %llu: %s\n", static_cast<unsigned long long>(seed),
                    fail ? "FAIL" : "ok");
      }
      if (!fail) continue;
      ++failures;
      std::printf("FAIL parser seed %llu [%s]\n  %s\ninput:\n%s\n<<<end of input>>>\n",
                  static_cast<unsigned long long>(seed), fail->kind.c_str(),
                  fail->detail.c_str(), fail->input.c_str());
    }
    std::printf("tvfuzz --parser-fuzz: %d cases, %d failure%s\n", opt.circuit_seeds,
                failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
  }

  if (opt.snapshot_diff) {
    // Differential snapshot mode: every random circuit's baseline fixpoint
    // is serialized, restored into a fresh verifier, and edited K times on
    // both sides; the restored world must stay byte-identical -- effort
    // counters included -- once per front end.
    for (int i = 0; i < opt.circuit_seeds; ++i) {
      std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
      tv::check::CircuitSpec spec = tv::check::random_spec(seed);
      for (bool compiled : {false, true}) {
        tv::check::SnapshotDiffOptions so;
        so.compiled = compiled;
        auto fail = tv::check::check_snapshot_equivalence(spec, so);
        if (opt.verbose) {
          std::printf("snapshot-diff seed %llu (%s): %s\n",
                      static_cast<unsigned long long>(seed),
                      compiled ? "compiled" : "source", fail ? "FAIL" : "ok");
        }
        if (!fail) continue;
        ++failures;
        std::printf("FAIL snapshot-diff seed %llu (%s) [%s]\n  %s\n",
                    static_cast<unsigned long long>(seed),
                    compiled ? "compiled" : "source", fail->kind.c_str(),
                    fail->detail.c_str());
        if (opt.shrink) {
          // Pin the edit script (a pure function of the circuit seed) so it
          // stays fixed while the circuit shrinks around it.
          tv::check::SnapshotDiffOptions pinned = so;
          pinned.edit_seed =
              spec.seed * 0x9E3779B97F4A7C15ULL + 0x6C62272E07BB0142ULL;
          std::string kind = fail->kind;
          tv::check::CircuitSpec small = tv::check::shrink_circuit(
              spec, [&](const tv::check::CircuitSpec& s) {
                auto f = tv::check::check_snapshot_equivalence(s, pinned);
                return f && f->kind == kind;
              });
          std::printf("shrunk repro (edit_seed %llu, %s front end):\n%s\n",
                      static_cast<unsigned long long>(pinned.edit_seed),
                      compiled ? "compiled" : "source",
                      tv::check::gtest_repro(small, kind).c_str());
        } else {
          std::printf("repro:\n%s\n",
                      tv::check::gtest_repro(spec, fail->kind).c_str());
        }
      }
    }
    std::printf("tvfuzz --snapshot-diff: %d circuit cases x 2 front ends, "
                "%d failure%s\n",
                opt.circuit_seeds, failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
  }

  if (opt.incr_diff) {
    // Differential incremental mode: every random circuit is edited K times
    // and re-verified both incrementally and cold after each step, once per
    // front end (source build and compiled-artifact round trip). The
    // incremental report must be byte-identical each time, counters aside.
    for (int i = 0; i < opt.circuit_seeds; ++i) {
      std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
      tv::check::CircuitSpec spec = tv::check::random_spec(seed);
      for (bool compiled : {false, true}) {
        tv::check::IncrDiffOptions io;
        io.steps = opt.incr_steps;
        io.compiled = compiled;
        auto fail = tv::check::check_incr_equivalence(spec, io);
        if (opt.verbose) {
          std::printf("incr-diff seed %llu (%s): %s\n",
                      static_cast<unsigned long long>(seed),
                      compiled ? "compiled" : "source", fail ? "FAIL" : "ok");
        }
        if (!fail) continue;
        ++failures;
        std::printf("FAIL incr-diff seed %llu (%s) [%s]\n  %s\n",
                    static_cast<unsigned long long>(seed),
                    compiled ? "compiled" : "source", fail->kind.c_str(),
                    fail->detail.c_str());
        if (opt.shrink) {
          // The edit script is a pure function of the circuit seed; pin it
          // so the script stays fixed while the circuit shrinks around it.
          tv::check::IncrDiffOptions pinned = io;
          pinned.edit_seed =
              spec.seed * 0x9E3779B97F4A7C15ULL + 0x6C62272E07BB0142ULL;
          std::string kind = fail->kind;
          tv::check::CircuitSpec small = tv::check::shrink_circuit(
              spec, [&](const tv::check::CircuitSpec& s) {
                auto f = tv::check::check_incr_equivalence(s, pinned);
                return f && f->kind == kind;
              });
          std::printf("shrunk repro (edit_seed %llu, %s front end):\n%s\n",
                      static_cast<unsigned long long>(pinned.edit_seed),
                      compiled ? "compiled" : "source",
                      tv::check::gtest_repro(small, kind).c_str());
        } else {
          std::printf("repro:\n%s\n",
                      tv::check::gtest_repro(spec, fail->kind).c_str());
        }
      }
    }
    std::printf("tvfuzz --incr-diff: %d circuit cases x 2 front ends x %d steps, "
                "%d failure%s\n",
                opt.circuit_seeds, opt.incr_steps, failures,
                failures == 1 ? "" : "s");
    return failures ? 1 : 0;
  }

  if (opt.compile_diff) {
    // Differential artifact mode: every random circuit is serialized to the
    // compiled-design format, reloaded, and verified; the round trip must
    // be bit-identical to the in-memory original.
    for (int i = 0; i < opt.circuit_seeds; ++i) {
      std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
      tv::check::CircuitSpec spec = tv::check::random_spec(seed);
      auto fail = tv::check::check_compile_equivalence(spec);
      if (opt.verbose) {
        std::printf("compile-diff seed %llu: %s\n", static_cast<unsigned long long>(seed),
                    fail ? "FAIL" : "ok");
      }
      if (!fail) continue;
      ++failures;
      std::printf("FAIL compile-diff seed %llu [%s]\n  %s\n",
                  static_cast<unsigned long long>(seed), fail->kind.c_str(),
                  fail->detail.c_str());
      if (opt.shrink) {
        std::string kind = fail->kind;
        tv::check::CircuitSpec small = tv::check::shrink_circuit(
            spec, [&](const tv::check::CircuitSpec& s) {
              auto f = tv::check::check_compile_equivalence(s);
              return f && f->kind == kind;
            });
        std::printf("shrunk repro:\n%s\n", tv::check::gtest_repro(small, kind).c_str());
      } else {
        std::printf("repro:\n%s\n", tv::check::gtest_repro(spec, fail->kind).c_str());
      }
    }
    std::printf("tvfuzz --compile-diff: %d circuit cases, %d failure%s\n",
                opt.circuit_seeds, failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
  }

  if (opt.batch_diff) {
    // Differential batch mode: every random circuit's case analysis runs on
    // the lockstep batch engine and the per-case reference path; the two
    // runs must be bit-identical.
    for (int i = 0; i < opt.circuit_seeds; ++i) {
      std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
      tv::check::CircuitSpec spec = tv::check::random_spec(seed);
      auto fail = tv::check::check_batch_equivalence(spec);
      if (opt.verbose) {
        std::printf("batch-diff seed %llu: %s\n", static_cast<unsigned long long>(seed),
                    fail ? "FAIL" : "ok");
      }
      if (!fail) continue;
      ++failures;
      std::printf("FAIL batch-diff seed %llu [%s]\n  %s\n",
                  static_cast<unsigned long long>(seed), fail->kind.c_str(),
                  fail->detail.c_str());
      if (opt.shrink) {
        std::string kind = fail->kind;
        tv::check::CircuitSpec small = tv::check::shrink_circuit(
            spec, [&](const tv::check::CircuitSpec& s) {
              auto f = tv::check::check_batch_equivalence(s);
              return f && f->kind == kind;
            });
        std::printf("shrunk repro:\n%s\n", tv::check::gtest_repro(small, kind).c_str());
      } else {
        std::printf("repro:\n%s\n", tv::check::gtest_repro(spec, fail->kind).c_str());
      }
    }
    std::printf("tvfuzz --batch-diff: %d circuit cases, %d failure%s\n", opt.circuit_seeds,
                failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
  }

  if (opt.memo_diff) {
    // Differential interning mode: every random circuit is verified with the
    // memo/interning layer on and off; the two runs must be bit-identical.
    for (int i = 0; i < opt.circuit_seeds; ++i) {
      std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
      tv::check::CircuitSpec spec = tv::check::random_spec(seed);
      auto fail = tv::check::check_memo_equivalence(spec);
      if (opt.verbose) {
        std::printf("memo-diff seed %llu: %s\n", static_cast<unsigned long long>(seed),
                    fail ? "FAIL" : "ok");
      }
      if (!fail) continue;
      ++failures;
      std::printf("FAIL memo-diff seed %llu [%s]\n  %s\n",
                  static_cast<unsigned long long>(seed), fail->kind.c_str(),
                  fail->detail.c_str());
      if (opt.shrink) {
        std::string kind = fail->kind;
        tv::check::CircuitSpec small = tv::check::shrink_circuit(
            spec, [&](const tv::check::CircuitSpec& s) {
              auto f = tv::check::check_memo_equivalence(s);
              return f && f->kind == kind;
            });
        std::printf("shrunk repro:\n%s\n", tv::check::gtest_repro(small, kind).c_str());
      } else {
        std::printf("repro:\n%s\n", tv::check::gtest_repro(spec, fail->kind).c_str());
      }
    }
    std::printf("tvfuzz --memo-diff: %d circuit cases, %d failure%s\n", opt.circuit_seeds,
                failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
  }

  for (int i = 0; i < opt.circuit_seeds; ++i) {
    std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
    tv::check::CircuitSpec spec = tv::check::random_spec(seed);
    tv::check::ConservatismStats stats;
    auto fail = tv::check::check_conservatism(spec, &stats);
    sim_runs += stats.sim_runs;
    sim_violating += stats.sim_violating_runs;
    if (stats.tv_found) ++tv_found;
    if (opt.verbose) {
      std::printf("circuit seed %llu: %d sim runs, %d violating, tv %s\n",
                  static_cast<unsigned long long>(seed), stats.sim_runs,
                  stats.sim_violating_runs, stats.tv_found ? "flags" : "clean");
    }
    if (!fail) continue;
    ++failures;
    std::printf("FAIL circuit seed %llu [%s]\n  %s\n",
                static_cast<unsigned long long>(seed), fail->kind.c_str(),
                fail->detail.c_str());
    if (opt.shrink) {
      std::string kind = fail->kind;
      tv::check::CircuitSpec small = tv::check::shrink_circuit(
          spec, [&](const tv::check::CircuitSpec& s) {
            auto f = tv::check::check_conservatism(s);
            return f && f->kind == kind;
          });
      std::printf("shrunk repro:\n%s\n", tv::check::gtest_repro(small, kind).c_str());
    } else {
      std::printf("repro:\n%s\n", tv::check::gtest_repro(spec, fail->kind).c_str());
    }
  }

  for (int i = 0; i < opt.wave_seeds; ++i) {
    std::uint64_t seed = opt.start + static_cast<std::uint64_t>(i);
    tv::check::WaveCase wc = tv::check::random_wave_case(seed);
    auto fail = tv::check::check_wave_algebra(wc);
    if (opt.verbose) {
      std::printf("wave seed %llu: %s\n", static_cast<unsigned long long>(seed),
                  fail ? "FAIL" : "ok");
    }
    if (!fail) continue;
    ++failures;
    std::printf("FAIL wave seed %llu [%s]\n  %s\n", static_cast<unsigned long long>(seed),
                fail->kind.c_str(), fail->detail.c_str());
    if (opt.shrink) {
      std::string kind = fail->kind;
      tv::check::WaveCase small =
          tv::check::shrink_wave(wc, [&](const tv::check::WaveCase& w) {
            auto f = tv::check::check_wave_algebra(w);
            return f && f->kind == kind;
          });
      std::printf("shrunk repro:\n%s\n", tv::check::gtest_repro(small, kind).c_str());
    } else {
      std::printf("repro:\n%s\n", tv::check::gtest_repro(wc, fail->kind).c_str());
    }
  }

  std::printf(
      "tvfuzz: %d circuit cases (%lld sim runs, %lld violating, verifier flagged %d), "
      "%d wave cases, %d failure%s\n",
      opt.circuit_seeds, sim_runs, sim_violating, tv_found, opt.wave_seeds, failures,
      failures == 1 ? "" : "s");
  return failures ? 1 : 0;
}
