// scaldtvc -- compile a SHDL design into a binary compiled-design artifact.
//
// Runs the front end once (parse, macro expansion, elaboration, finalize)
// and writes the artifact `scaldtv --compiled` and the scaldtvd warm workers
// load without re-running it (format spec: docs/serving.md).
//
// Usage:
//   scaldtvc [options] <design.shdl>
//     -o FILE          output path (default: the design path with the
//                      extension replaced by .tvc)
//     --stdlib         prepend the standard chip-macro library
//     --max-errors N   stop after N front-end errors (0 = unlimited)
//     --werror         treat warnings as errors
//     --diag-json FILE write collected diagnostics as JSON
//
// Exit status: 0 compiled, 2 usage or input errors. Two compiles of the
// same source produce byte-identical artifacts (no timestamps; CI checks
// this).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/compiled.hpp"
#include "diag/render.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/stdlib.hpp"
#include "util/fault.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: scaldtvc [-o FILE] [--stdlib] [--max-errors N] [--werror] "
               "[--diag-json FILE] <design.shdl>\n");
  return 2;
}

std::string default_output(const std::string& design_path) {
  std::size_t slash = design_path.find_last_of('/');
  std::size_t dot = design_path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return design_path + ".tvc";
  }
  return design_path.substr(0, dot) + ".tvc";
}

void flush_diagnostics(const tv::diag::DiagnosticEngine& diags, const char* diag_json_path) {
  if (!diags.diagnostics().empty()) {
    std::fputs(tv::diag::render_text(diags).c_str(), stderr);
  }
  if (diag_json_path) {
    std::ofstream df(diag_json_path);
    df << tv::diag::render_json(diags);
  }
}

}  // namespace

int main(int argc, char** argv) {
  tv::fault::configure_from_env();  // TV_FAULT: io.write etc. (util/fault.hpp)
  const char* path = nullptr;
  const char* out_path = nullptr;
  const char* diag_json_path = nullptr;
  bool with_stdlib = false;
  long max_errors = 20;
  bool werror = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stdlib") == 0) {
      with_stdlib = true;
    } else if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--max-errors") == 0 && i + 1 < argc) {
      char* end = nullptr;
      max_errors = std::strtol(argv[++i], &end, 10);
      if (!end || *end != '\0' || max_errors < 0) return usage();
    } else if (std::strcmp(argv[i], "--diag-json") == 0 && i + 1 < argc) {
      diag_json_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path) {
      return usage();
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "scaldtvc: cannot open %s\n", path);
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  tv::diag::DiagnosticEngine::Options diag_opts;
  diag_opts.max_errors = static_cast<std::size_t>(max_errors);
  diag_opts.werror = werror;
  tv::diag::DiagnosticEngine diags(diag_opts);

  try {
    std::string text = buf.str();
    std::optional<tv::hdl::ElaboratedDesign> maybe_design;
    if (with_stdlib) {
      maybe_design = tv::hdl::elaborate_sources(
          {{"<stdlib>", tv::hdl::std_chip_library()}, {path, text}}, diags);
    } else {
      diags.set_current_file(path);
      maybe_design = tv::hdl::elaborate_source(text, diags);
    }
    if (!maybe_design) {
      flush_diagnostics(diags, diag_json_path);
      return 2;
    }
    tv::hdl::ElaboratedDesign& design = *maybe_design;

    tv::CompiledSummary summary;
    summary.macro_instances = design.summary.macro_instances;
    summary.primitives = design.summary.primitives;
    summary.unique_signals = design.summary.unique_signals;
    summary.total_bits = design.summary.total_bits;
    summary.prims_by_kind = design.summary.prims_by_kind;

    tv::CompiledDesign compiled =
        tv::compile_design(design.name, design.netlist, design.options,
                           std::move(design.cases), std::move(summary));
    std::string out = out_path ? out_path : default_output(path);
    std::string error;
    if (!tv::write_compiled_file(compiled, out, &error)) {
      std::fprintf(stderr, "scaldtvc: %s\n", error.c_str());
      return 2;
    }
    std::printf("compiled %s: %zu primitives, %zu signals, %zu seed waveforms -> %s "
                "(hash %016llx)\n",
                compiled.name.c_str(), compiled.netlist.num_prims(),
                compiled.netlist.num_signals(), compiled.seed_arena.size(), out.c_str(),
                static_cast<unsigned long long>(compiled.content_hash));
    flush_diagnostics(diags, diag_json_path);
    return diags.has_errors() ? 2 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scaldtvc: %s\n", e.what());
    return 2;
  }
}
