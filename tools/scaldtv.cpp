// scaldtv -- command-line driver for the SCALD Timing Verifier reproduction.
//
// Usage:
//   scaldtv [options] <design.shdl>
//     --summary        print the Fig 3-10 signal value listing
//     --xref           print the undefined-signal cross reference
//     --stats          print expansion/verification statistics
//     --storage        print the Table 3-3 storage ledger
//     --slack          print the worst-slack table and cycle-time estimate
//     --waves          print ASCII waveform strips per signal
//     --where-used     print the full signal cross reference
//     --explain        print the critical chain behind each violation
//     --vcd FILE       dump one symbolic cycle of every signal as VCD
//     --json FILE      write violations/slacks/statistics as JSON
//     --diag-json FILE write collected diagnostics as JSON
//     --max-errors N   stop after N front-end errors (0 = unlimited)
//     --werror         treat warnings as errors
//     --time-limit S   wall-clock budget in seconds; on expiry the affected
//                      cones degrade to UNKNOWN (conservative) and the run
//                      completes as partial
//     --reverify FILE  after the baseline run, apply the JSON netlist delta
//                      in FILE (docs/incremental.md) and re-verify
//                      incrementally; the printed report describes the
//                      edited design
//     --write-snapshot FILE  after the run, serialize the baseline fixpoint
//                      to FILE as a .tvf snapshot (docs/recovery.md)
//     --from-snapshot FILE  restore the baseline from a .tvf snapshot
//                      instead of running the cold evaluation; the report
//                      (and any --reverify after it) is byte-identical to
//                      the run that wrote the snapshot, at zero evaluations
//     --no-cases       skip case analysis even if the design declares cases
//     --jobs N         evaluate cases on N worker threads (0 = one per core;
//                      results are identical for every N)
//     --batch-lanes N  lanes per block in the batch case evaluator
//                      (default 64, clamped to [1, 4096]; reports are
//                      identical for every N)
//     --no-batch       evaluate cases one at a time instead of in lockstep
//                      lane blocks (slower; reports are identical)
//     --fault SPEC     deterministic fault injection (docs/serving.md);
//                      also read from the TV_FAULT environment variable
//
// Exit status (documented in README.md and docs/serving.md):
//   0  no timing violations
//   1  timing violations found
//   2  usage or input errors (any error diagnostics)
//   3  run completed but was resource-degraded (partial results)
//   5  transient environment failure (I/O error, allocation failure --
//      injected or real); supervisors retry these
// (4 is reserved for scaldtvd: worker crashed after all retries.)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>

#include "core/compiled.hpp"
#include "core/explain.hpp"
#include "core/fixpoint.hpp"
#include "core/incremental.hpp"
#include "core/export.hpp"
#include "core/storage_stats.hpp"
#include "core/verifier.hpp"
#include "diag/render.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/stdlib.hpp"
#include "util/crash.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: scaldtv [--summary] [--xref] [--stats] [--storage] [--no-cases] "
               "[--stdlib] [--compiled] [--slack] [--waves] [--where-used] [--explain] "
               "[--reverify FILE] [--write-snapshot FILE] [--from-snapshot FILE] "
               "[--vcd FILE] [--json FILE] [--diag-json FILE] [--max-errors N] [--werror] "
               "[--time-limit SECONDS] [--jobs N] [--batch-lanes N] [--no-batch] "
               "[--fault SPEC] <design.shdl | design.tvc>\n");
  return 2;
}

/// Flushes the collected diagnostics: human text to stderr, machine JSON to
/// --diag-json when requested.
void flush_diagnostics(const tv::diag::DiagnosticEngine& diags, const char* diag_json_path) {
  if (!diags.diagnostics().empty()) {
    std::fputs(tv::diag::render_text(diags).c_str(), stderr);
  }
  if (diag_json_path) {
    std::ofstream df(diag_json_path);
    df << tv::diag::render_json(diags);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Crash attribution first: if anything below faults, stderr names the
  // design and phase before the signal re-raises (scaldtvd workers die by
  // signal under injected aborts; the report makes the crash attributable).
  tv::crash::install_handler();
  tv::crash::set_context("", "startup");
  tv::fault::configure_from_env();

  bool want_summary = false, want_xref = false, want_stats = false, want_storage = false;
  bool run_cases = true;
  bool with_stdlib = false;  // prepend the standard chip-macro library
  bool compiled_input = false;  // the input is a scaldtvc artifact, not SHDL
  bool want_slack = false;
  bool want_waves = false, want_where_used = false;
  bool want_explain = false;
  const char* reverify_path = nullptr;
  const char* write_snapshot_path = nullptr;
  const char* from_snapshot_path = nullptr;
  const char* vcd_path = nullptr;
  const char* json_path = nullptr;
  const char* diag_json_path = nullptr;
  const char* path = nullptr;
  long jobs = 1;
  long batch_lanes = 64;
  bool batch_eval = true;
  long max_errors = 20;
  bool werror = false;
  double time_limit = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summary") == 0) {
      want_summary = true;
    } else if (std::strcmp(argv[i], "--xref") == 0) {
      want_xref = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--storage") == 0) {
      want_storage = true;
    } else if (std::strcmp(argv[i], "--no-cases") == 0) {
      run_cases = false;
    } else if (std::strcmp(argv[i], "--stdlib") == 0) {
      with_stdlib = true;
    } else if (std::strcmp(argv[i], "--compiled") == 0) {
      compiled_input = true;
    } else if (std::strcmp(argv[i], "--slack") == 0) {
      want_slack = true;
    } else if (std::strcmp(argv[i], "--waves") == 0) {
      want_waves = true;
    } else if (std::strcmp(argv[i], "--where-used") == 0) {
      want_where_used = true;
    } else if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      want_explain = true;
    } else if (std::strcmp(argv[i], "--reverify") == 0 && i + 1 < argc) {
      reverify_path = argv[++i];
    } else if (std::strcmp(argv[i], "--write-snapshot") == 0 && i + 1 < argc) {
      write_snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--from-snapshot") == 0 && i + 1 < argc) {
      from_snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--vcd") == 0 && i + 1 < argc) {
      vcd_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--diag-json") == 0 && i + 1 < argc) {
      diag_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-errors") == 0 && i + 1 < argc) {
      char* end = nullptr;
      max_errors = std::strtol(argv[++i], &end, 10);
      if (!end || *end != '\0' || max_errors < 0) return usage();
    } else if (std::strcmp(argv[i], "--time-limit") == 0 && i + 1 < argc) {
      char* end = nullptr;
      time_limit = std::strtod(argv[++i], &end);
      if (!end || *end != '\0' || time_limit < 0) return usage();
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      jobs = std::strtol(argv[++i], &end, 10);
      if (!end || *end != '\0' || jobs < 0) return usage();
    } else if (std::strcmp(argv[i], "--batch-lanes") == 0 && i + 1 < argc) {
      char* end = nullptr;
      batch_lanes = std::strtol(argv[++i], &end, 10);
      if (!end || *end != '\0' || batch_lanes < 1 || batch_lanes > 4096) return usage();
    } else if (std::strcmp(argv[i], "--no-batch") == 0) {
      batch_eval = false;
    } else if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
      std::string error;
      if (!tv::fault::configure(argv[++i], &error)) {
        std::fprintf(stderr, "scaldtv: %s\n", error.c_str());
        return usage();
      }
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path) {
      return usage();
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage();
  tv::crash::set_context(path, "read");

  std::stringstream buf;
  if (!compiled_input) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "scaldtv: cannot open %s\n", path);
      return 2;
    }
    if (tv::fault::should_fail("io.read")) {
      // Injected I/O error: a *transient* environment failure, unlike the
      // cannot-open case above (a permanent input error, exit 2).
      std::fprintf(stderr, "scaldtv: injected read failure on %s\n", path);
      return 5;
    }
    buf << in.rdbuf();
  } else if (tv::fault::should_fail("io.read")) {
    std::fprintf(stderr, "scaldtv: injected read failure on %s\n", path);
    return 5;
  }

  tv::diag::DiagnosticEngine::Options diag_opts;
  diag_opts.max_errors = static_cast<std::size_t>(max_errors);
  diag_opts.werror = werror;
  tv::diag::DiagnosticEngine diags(diag_opts);

  try {
    tv::PhaseTimer timer;
    std::optional<tv::hdl::ElaboratedDesign> maybe_design;
    std::optional<tv::CompiledDesign> compiled;
    if (compiled_input) {
      // The compiled path skips the front end: the artifact already holds
      // the finalized netlist, options, cases, and summary, so the report
      // below is byte-identical to the source path by construction.
      tv::crash::set_context(path, "load compiled design");
      timer.start("load compiled design");
      compiled = tv::load_compiled_file(path, diags);
      timer.stop();
      if (!compiled) {
        flush_diagnostics(diags, diag_json_path);
        return 2;
      }
      tv::hdl::ElaboratedDesign d;
      d.name = compiled->name;
      d.netlist = std::move(compiled->netlist);
      d.options = compiled->options;
      d.cases = std::move(compiled->cases);
      d.summary.macro_instances = compiled->summary.macro_instances;
      d.summary.primitives = compiled->summary.primitives;
      d.summary.unique_signals = compiled->summary.unique_signals;
      d.summary.total_bits = compiled->summary.total_bits;
      d.summary.prims_by_kind = compiled->summary.prims_by_kind;
      maybe_design = std::move(d);
    } else {
      tv::crash::set_context(path, "parse + macro expansion");
      timer.start("parse + macro expansion");
      std::string text = buf.str();
      if (with_stdlib) {
        maybe_design = tv::hdl::elaborate_sources(
            {{"<stdlib>", tv::hdl::std_chip_library()}, {path, text}}, diags);
      } else {
        diags.set_current_file(path);
        maybe_design = tv::hdl::elaborate_source(text, diags);
      }
      timer.stop();
      if (!maybe_design) {
        flush_diagnostics(diags, diag_json_path);
        return 2;
      }
    }
    tv::hdl::ElaboratedDesign& design = *maybe_design;

    design.options.jobs = static_cast<unsigned>(jobs);
    design.options.batch_lanes = static_cast<unsigned>(batch_lanes);
    design.options.batch_eval = batch_eval;
    design.options.time_limit_seconds = time_limit;
    tv::Verifier verifier(design.netlist, design.options);
    if (compiled && verifier.evaluator().intern_context()) {
      // Warm the intern table with the artifact's pre-interned seed arena.
      tv::preintern_seeds(*compiled, verifier.evaluator().intern_context()->table);
    }
    tv::VerifyResult result;
    if (from_snapshot_path) {
      // Warm start: restore the baseline fixpoint from the snapshot instead
      // of paying the cold evaluation. The restored report is byte-identical
      // to the run that wrote the snapshot (enforced by tvfuzz
      // --snapshot-diff); the printed evaluation count proves no baseline
      // evaluation ran.
      tv::crash::set_context(from_snapshot_path, "restore snapshot");
      timer.start("restore snapshot");
      auto state = tv::load_fixpoint_file(from_snapshot_path, diags);
      if (!state) {
        timer.stop();
        flush_diagnostics(diags, diag_json_path);
        return 2;
      }
      std::uint64_t expected_hash = compiled ? compiled->content_hash : 0;
      if (!verifier.restore(*state, expected_hash, diags)) {
        timer.stop();
        flush_diagnostics(diags, diag_json_path);
        return 2;
      }
      timer.stop();
      result = verifier.baseline();
      std::printf("restored snapshot %s: %zu signal(s), %zu evaluation(s) performed\n",
                  from_snapshot_path, design.netlist.num_signals(),
                  verifier.evaluator().evals_performed());
    } else {
      tv::crash::set_context(path, "verification");
      timer.start("verification");
      result = verifier.verify(run_cases ? design.cases : std::vector<tv::CaseSpec>{});
      timer.stop();
    }

    if (reverify_path) {
      tv::crash::set_context(reverify_path, "read delta");
      std::ifstream df(reverify_path);
      if (!df) {
        std::fprintf(stderr, "scaldtv: cannot open %s\n", reverify_path);
        return 2;
      }
      if (tv::fault::should_fail("io.read")) {
        std::fprintf(stderr, "scaldtv: injected read failure on %s\n", reverify_path);
        return 5;
      }
      std::stringstream dbuf;
      dbuf << df.rdbuf();
      tv::NetlistDelta delta;
      std::string derror;
      if (!tv::parse_delta_json(dbuf.str(), design.netlist, &delta, &derror)) {
        std::fprintf(stderr, "scaldtv: %s: %s\n", reverify_path, derror.c_str());
        return 2;
      }
      tv::crash::set_context(reverify_path, "reverify");
      timer.start("reverify");
      tv::ReverifyStats rst;
      result = verifier.reverify(delta, &rst);
      timer.stop();
      if (rst.incremental) {
        std::printf("reverify %s: incremental, %zu dirty primitive(s), %zu touched "
                    "signal(s), %zu case(s) re-evaluated, %zu spliced\n",
                    reverify_path, rst.dirty_prims.size(), rst.touched_signals,
                    rst.cases_reevaluated, rst.cases_spliced);
      } else {
        std::printf("reverify %s: full re-run (%s)\n", reverify_path,
                    rst.fallback_reason.c_str());
      }
    }

    if (write_snapshot_path) {
      // Snapshot the final baseline (post-reverify when --reverify ran, so
      // chained warm starts splice against the latest fixpoint).
      tv::crash::set_context(write_snapshot_path, "write snapshot");
      timer.start("write snapshot");
      std::uint64_t bound_hash = compiled ? compiled->content_hash : 0;
      std::string werror_msg;
      bool ok = tv::write_fixpoint_file(verifier, design.name, bound_hash,
                                        write_snapshot_path, &werror_msg);
      timer.stop();
      if (!ok) {
        std::fprintf(stderr, "scaldtv: cannot write %s: %s\n", write_snapshot_path,
                     werror_msg.c_str());
        return 5;
      }
      std::printf("wrote %s\n", write_snapshot_path);
    }
    tv::crash::set_context(path, "reporting");

    std::printf("design %s: %zu primitives, %zu signals, %zu events, %zu case(s)\n",
                design.name.c_str(), design.netlist.num_prims(), design.netlist.num_signals(),
                result.base_events, result.cases.size());

    if (want_summary) std::printf("\n%s", tv::timing_summary(design.netlist).c_str());
    if (want_waves) {
      std::printf("\n%s", tv::timing_summary_waves(design.netlist).c_str());
    }
    if (want_where_used) {
      std::printf("\n%s", tv::where_used_listing(design.netlist).c_str());
    }
    if (want_xref) {
      std::printf("\n%s",
                  tv::cross_reference_listing(design.netlist, result.cross_reference).c_str());
    }

    std::printf("\n%s", tv::violations_report(result.violations).c_str());
    if (want_explain) {
      for (const auto& v : result.violations) {
        auto chain = tv::explain_chain(verifier.evaluator(), v);
        std::printf("%s\n", tv::explain_report(design.netlist, chain).c_str());
      }
    }
    for (const auto& c : result.cases) {
      if (c.violations.empty()) continue;
      std::printf("\ncase \"%s\" (%zu events):\n%s", c.name.c_str(), c.events,
                  tv::violations_report(c.violations).c_str());
    }
    if (!result.converged) {
      std::printf("WARNING: evaluation did not converge (combinational loop?)\n");
    }

    if (want_stats) {
      std::printf("\nphases:\n");
      for (const auto& [name, secs] : timer.phases()) {
        std::printf("  %-28s %8.3f s\n", name.c_str(), secs);
      }
      std::printf("  macro instances %zu, primitives %zu, mean width %.2f bits\n",
                  design.summary.macro_instances, design.summary.primitives,
                  design.summary.primitives
                      ? static_cast<double>(design.summary.total_bits) /
                            design.summary.primitives
                      : 0.0);
    }
    if (want_slack) {
      std::printf("\n%s", tv::slack_report(design.netlist,
                                           tv::compute_slacks(verifier.evaluator()),
                                           design.options.period)
                              .c_str());
    }
    if (want_storage) {
      std::printf("\nstorage (thesis record model):\n%s",
                  tv::compute_storage(design.netlist).to_ledger().to_table().c_str());
    }
    if (vcd_path) {
      std::ofstream vf(vcd_path);
      vf << tv::export_vcd(design.netlist, design.options.period, design.name);
      std::printf("wrote %s\n", vcd_path);
    }
    if (json_path) {
      std::ofstream jf(json_path);
      jf << tv::export_json(design.netlist, result, design.options.period,
                            tv::compute_slacks(verifier.evaluator()), design.name);
      std::printf("wrote %s\n", json_path);
    }

    // Engine resource degradations join the diagnostic stream as warnings
    // (errors under --werror). Results stay conservative: degraded cones
    // hold UNKNOWN, which can only add violations, never hide one.
    diags.set_current_file("");
    for (const tv::Degradation& d : result.degradations) {
      diags.report(tv::diag::Severity::Warning, d.code, tv::diag::SourceLoc{},
                   d.message);
    }
    flush_diagnostics(diags, diag_json_path);
    return tv::diag::exit_code(diags.has_errors(), result.partial,
                               result.total_violations() != 0);
  } catch (const tv::fault::InjectedFault& e) {
    std::fprintf(stderr, "scaldtv: transient failure: %s\n", e.what());
    return 5;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "scaldtv: transient failure: out of memory\n");
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scaldtv: %s\n", e.what());
    return 2;
  }
}
