#include <chrono>
#include <cstdio>
#include "core/verifier.hpp"
#include "gen/s1_design.hpp"
#include "hdl/parser.hpp"
using namespace tv;
using Clock = std::chrono::steady_clock;
static double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
int main(int argc, char** argv) {
  gen::S1Params p;
  if (argc > 1) p.stages = std::atoi(argv[1]);
  std::string src = gen::generate_s1_shdl(p);
  auto t1 = Clock::now();
  hdl::File f = hdl::parse(src);
  auto t2 = Clock::now();
  hdl::ExpandSummary sum = hdl::expand_summary(f);
  auto t3 = Clock::now();
  hdl::ElaboratedDesign d = hdl::elaborate(f);
  auto t4 = Clock::now();
  Verifier v(d.netlist, d.options);
  VerifyResult r = v.verify();
  auto t5 = Clock::now();
  std::printf("chips(expected)=%zu macro_inst=%zu prims=%zu signals=%zu bits=%zu\n",
              gen::s1_chip_count(p), sum.macro_instances, sum.primitives,
              d.netlist.num_signals(), sum.total_bits);
  std::printf("src=%zu KB parse=%.2fs pass1=%.2fs pass2=%.2fs verify=%.2fs\n",
              src.size() >> 10, secs(t1, t2), secs(t2, t3), secs(t3, t4), secs(t4, t5));
  std::printf("events=%zu evals=%zu converged=%d violations=%zu xref=%zu\n", r.base_events,
              r.base_evals, (int)r.converged, r.violations.size(), r.cross_reference.size());
  size_t show = 0;
  for (const auto& viol : r.violations) {
    if (show++ >= 4) break;
    std::printf("%s\n", viol.message.c_str());
  }
  return 0;
}
