// Integration test: the thesis' worked example (Fig 2-5; results in
// Figs 3-10 and 3-11, discussed in sec. 3.2). The verifier must reproduce
// the paper's two set-up errors with the paper's exact times.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "gen/regfile_example.hpp"

namespace tv {
namespace {

using V = Value;

class RegfileExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = gen::build_regfile_example(nl_);
    verifier_ = std::make_unique<Verifier>(nl_, ex_.options);
    result_ = verifier_->verify();
  }

  Netlist nl_;
  gen::RegfileExample ex_;
  std::unique_ptr<Verifier> verifier_;
  VerifyResult result_;
};

TEST_F(RegfileExampleTest, ConvergesQuickly) {
  EXPECT_TRUE(result_.converged);
  // One pass through the small pipeline: a handful of events, far fewer
  // than any vector-driven logic simulation would need.
  EXPECT_LE(result_.base_events, 20u);
  EXPECT_GE(result_.base_events, 5u);
}

TEST_F(RegfileExampleTest, AddressWaveformMatchesFig310) {
  // Fig 3-10 first entry: ADR<0:3> stable at start, changing 0.5-5.5,
  // stable to 25.5, changing 25.5-30.5, stable for the rest of the cycle.
  Waveform adr = nl_.signal(ex_.adr).wave.with_skew_incorporated();
  EXPECT_EQ(adr.at(from_ns(0.0)), V::Stable);
  EXPECT_EQ(adr.at(from_ns(0.5)), V::Change);
  EXPECT_EQ(adr.at(from_ns(5.4)), V::Change);
  EXPECT_EQ(adr.at(from_ns(5.5)), V::Stable);
  EXPECT_EQ(adr.at(from_ns(25.4)), V::Stable);
  EXPECT_EQ(adr.at(from_ns(25.5)), V::Change);
  EXPECT_EQ(adr.at(from_ns(30.4)), V::Change);
  EXPECT_EQ(adr.at(from_ns(30.5)), V::Stable);
  EXPECT_EQ(adr.at(from_ns(49.9)), V::Stable);
}

TEST_F(RegfileExampleTest, WriteEnablePulseShape) {
  // CK .P2-3 gated through "&H": high 12.5-18.75 nominal, skew +-1, so the
  // earliest rise is 11.5 ns -- the time Fig 3-11 prints.
  Waveform we = nl_.signal(ex_.we).wave.with_skew_incorporated();
  EXPECT_EQ(we.at(from_ns(11.4)), V::Zero);
  EXPECT_EQ(we.at(from_ns(11.5)), V::Rise);
  EXPECT_EQ(we.at(from_ns(13.5)), V::One);
  EXPECT_EQ(we.at(from_ns(17.7)), V::One);
  EXPECT_EQ(we.at(from_ns(17.75)), V::Fall);
  EXPECT_EQ(we.at(from_ns(19.75)), V::Zero);
}

TEST_F(RegfileExampleTest, ExactlyTheTwoFig311Errors) {
  ASSERT_EQ(result_.violations.size(), 2u) << violations_report(result_.violations);
  EXPECT_EQ(result_.violations[0].type, Violation::Type::Setup);
  EXPECT_EQ(result_.violations[1].type, Violation::Type::Setup);
}

TEST_F(RegfileExampleTest, RamAddressSetupMissedByFull35) {
  // "the set-up time interval specified was missed by the full 3.5 nsec":
  // the addresses go stable at 11.5 exactly when the write enable can
  // start rising.
  const Violation& v = result_.violations[0];
  EXPECT_EQ(v.prim, ex_.adr_checker);
  EXPECT_EQ(v.missed_by, from_ns(3.5));
  EXPECT_NE(v.message.find("MISSED BY 3.5"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("11.5:S"), std::string::npos) << v.message;   // data stable at 11.5
  EXPECT_NE(v.message.find("11.5:R"), std::string::npos) << v.message;   // clock rising at 11.5
}

TEST_F(RegfileExampleTest, OutputRegisterSetupMissedByOne) {
  // "The data didn't go stable until 47.5 nsec into the cycle and the clock
  // starts rising at 49.0 nsec, thereby missing the specified set-up time
  // interval of 2.5 nsec by 1.0 nsec."
  const Violation& v = result_.violations[1];
  EXPECT_EQ(v.prim, ex_.reg_checker);
  EXPECT_EQ(v.missed_by, from_ns(1.0));
  EXPECT_NE(v.message.find("SETUP TIME = 2.5"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("MISSED BY 1.0"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("47.5:S"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("49.0:R"), std::string::npos) << v.message;
}

TEST_F(RegfileExampleTest, NoSpuriousPulseWidthOrHazardErrors) {
  // The WE pulse is 6.25 ns wide (the clock skew moves both edges equally,
  // so the width is preserved -- sec. 2.8's reason for the separate skew
  // field) >= the 4.0 minimum, and WRITE is stable while the clock is
  // asserted: neither check may fire.
  for (const Violation& v : result_.violations) {
    EXPECT_NE(v.type, Violation::Type::MinPulseHigh) << v.message;
    EXPECT_NE(v.type, Violation::Type::MinPulseLow) << v.message;
    EXPECT_NE(v.type, Violation::Type::Hazard) << v.message;
  }
}

TEST_F(RegfileExampleTest, WriteDataSetupAgainstFallingEdgePasses) {
  // The RAM write-data check (4.5 ns before the *falling* WE edge via the
  // "- WE" complement, hold -1.0) is satisfied: W DATA is stable until
  // 37.5 ns, well past the fall at 17.75-19.75.
  for (const Violation& v : result_.violations) {
    EXPECT_NE(v.prim, ex_.data_checker) << v.message;
  }
}

TEST_F(RegfileExampleTest, OutputRegisterChangesAfterClock) {
  // Edge window [49, 3] plus the 1.5/4.5 register delay: output changing
  // [0.5, 7.5], stable elsewhere.
  const Waveform& out = nl_.signal(ex_.reg_out).wave;
  EXPECT_EQ(out.at(from_ns(0.4)), V::Stable);
  EXPECT_EQ(out.at(from_ns(0.5)), V::Change);
  EXPECT_EQ(out.at(from_ns(7.4)), V::Change);
  EXPECT_EQ(out.at(from_ns(7.5)), V::Stable);
}

TEST_F(RegfileExampleTest, VerificationIsRepeatable) {
  // Re-running the full verification yields identical results (the
  // evaluator reinitializes all state).
  VerifyResult again = verifier_->verify();
  ASSERT_EQ(again.violations.size(), result_.violations.size());
  for (std::size_t i = 0; i < again.violations.size(); ++i) {
    EXPECT_EQ(again.violations[i].message, result_.violations[i].message);
  }
  EXPECT_EQ(again.base_events, result_.base_events);
}

}  // namespace
}  // namespace tv
