// Tests for the synthetic S-1 Mark IIA-scale design generator (sec. 3.3).
#include "gen/s1_design.hpp"

#include "hdl/parser.hpp"

#include <gtest/gtest.h>

#include "core/storage_stats.hpp"
#include "core/verifier.hpp"

namespace tv::gen {
namespace {

TEST(S1Design, SmallInstanceIsCleanAndConverges) {
  S1Params p;
  p.stages = 3;
  p.clock_tree_bufs = 2;
  hdl::ElaboratedDesign d = build_s1_design(p);
  Verifier v(d.netlist, d.options);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.violations.empty()) << violations_report(r.violations);
  EXPECT_TRUE(r.cross_reference.empty());
}

TEST(S1Design, ChipCountFormulaMatchesEmission) {
  S1Params p;
  p.stages = 4;
  p.clock_tree_bufs = 7;
  hdl::ElaboratedDesign d = build_s1_design(p);
  // chips = macro instances + top-level primitive instances. Top-level
  // primitives = all primitives minus those inside macro bodies.
  std::size_t prims_in_macros = 0;
  // REG(2) RAM(4) MUX(2) ALU(3) LATCH(2): count instances by macro type.
  // 4 stages: 5 REG + 1 RAM + 8 MUX + 1 ALU + 1 LATCH each.
  prims_in_macros = 4u * (5 * 2 + 1 * 4 + 8 * 2 + 1 * 3 + 1 * 2);
  std::size_t top_prims = d.summary.primitives - prims_in_macros;
  EXPECT_EQ(d.summary.macro_instances + top_prims, s1_chip_count(p));
}

TEST(S1Design, PrimitivesPerChipRatioMatchesPaperShape) {
  // Table 3-2: 8282 primitives for 6357 chips = 1.3 primitives per chip.
  S1Params p;
  p.stages = 10;
  p.clock_tree_bufs = 4;
  hdl::ElaboratedDesign d = build_s1_design(p);
  double ratio = static_cast<double>(d.summary.primitives) /
                 static_cast<double>(s1_chip_count(p));
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 1.4);
  // Mean primitive width ~6.5 bits (ours lands near 6.9).
  double mean_width = static_cast<double>(d.summary.total_bits) /
                      static_cast<double>(d.summary.primitives);
  EXPECT_GT(mean_width, 5.0);
  EXPECT_LT(mean_width, 8.5);
}

TEST(S1Design, EventsScaleLinearlyWithStages) {
  // Sec. 4.1: cost per case is of the order of one simulated cycle --
  // events grow linearly with design size, not exponentially.
  auto events_for = [](int stages) {
    S1Params p;
    p.stages = stages;
    p.clock_tree_bufs = 0;
    hdl::ElaboratedDesign d = build_s1_design(p);
    Verifier v(d.netlist, d.options);
    return v.verify().base_events;
  };
  std::size_t e4 = events_for(4);
  std::size_t e8 = events_for(8);
  std::size_t e16 = events_for(16);
  EXPECT_NEAR(static_cast<double>(e8) / e4, 2.0, 0.25);
  EXPECT_NEAR(static_cast<double>(e16) / e8, 2.0, 0.25);
}

TEST(S1Design, ValueRecordsPerSignalMatchPaperShape) {
  // Table 3-3: mean 2.97 VALUE records per signal (~56 bytes per list).
  S1Params p;
  p.stages = 6;
  hdl::ElaboratedDesign d = build_s1_design(p);
  Verifier v(d.netlist, d.options);
  v.verify();
  StorageBreakdown b = compute_storage(d.netlist);
  EXPECT_GT(b.mean_value_records, 2.0);
  EXPECT_LT(b.mean_value_records, 5.0);
  EXPECT_GT(b.mean_prim_bytes, 150.0);
  EXPECT_LT(b.mean_prim_bytes, 350.0);
}

TEST(S1Design, GatedClockHazardInjection) {
  // Failure injection: late write-enable control (changing into the gated
  // clock's asserted window) must be reported as a hazard by the "&H"
  // check. We patch one stage's WEN assertion to be late.
  S1Params p;
  p.stages = 2;
  p.clock_tree_bufs = 0;
  std::string src = generate_s1_shdl(p);
  // WEN .S1-8 is stable from 6.25 ns; make stage 0's stable only from
  // 28 ns (clock asserted 24..32.25).
  auto pos = src.find("S0 WEN .S1-8");
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, std::string("S0 WEN .S1-8").size(), "S0 WEN .S4.5-8.6");
  hdl::ElaboratedDesign d = hdl::elaborate(hdl::parse(src));
  Verifier v(d.netlist, d.options);
  VerifyResult r = v.verify();
  bool hazard = false;
  for (const auto& viol : r.violations) {
    if (viol.type == Violation::Type::Hazard) hazard = true;
  }
  EXPECT_TRUE(hazard) << violations_report(r.violations);
}

TEST(S1Design, SlowPathInjectionCaughtBySetupCheck) {
  // Failure injection: slow down one stage's result OR gate so the bus
  // register's set-up check fires.
  S1Params p;
  p.stages = 2;
  p.clock_tree_bufs = 0;
  std::string src = generate_s1_shdl(p);
  auto pos = src.find("or [delay=1.0:3.0");
  ASSERT_NE(pos, std::string::npos);
  src.replace(pos, std::string("or [delay=1.0:3.0").size(), "or [delay=1.0:9.0");
  hdl::ElaboratedDesign d = hdl::elaborate(hdl::parse(src));
  Verifier v(d.netlist, d.options);
  VerifyResult r = v.verify();
  bool setup = false;
  for (const auto& viol : r.violations) {
    if (viol.type == Violation::Type::Setup) setup = true;
  }
  EXPECT_TRUE(setup) << violations_report(r.violations);
}

}  // namespace
}  // namespace tv::gen
