// Case analysis (thesis sec. 2.7, Fig 2-6): two cascaded multiplexers whose
// select lines are complementary. Without case analysis the verifier cannot
// see that both muxes never select their slow "1" input at once and reports
// a 40 ns input-to-output delay; analyzing the cases CONTROL=0 and CONTROL=1
// separately gives 30 ns for both.
#include <gtest/gtest.h>

#include "core/verifier.hpp"

namespace tv {
namespace {

using V = Value;

struct Fig26Circuit {
  Netlist nl;
  VerifierOptions opts;
  SignalId input = kNoSignal;
  SignalId control = kNoSignal;
  SignalId output = kNoSignal;
};

// Each mux contributes 10 ns; each "1" data input has an extra 10 ns of
// combinational delay in front of it. INPUT changes during [5, 10).
Fig26Circuit build_fig26() {
  Fig26Circuit c;
  c.opts.period = from_ns(100.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Netlist& nl = c.nl;
  Ref in = nl.ref("INPUT .S10-105");  // changing 5..10, stable the rest
  Ref control = nl.ref("CONTROL SIGNAL");
  c.input = in.id;
  c.control = control.id;

  Ref slow1 = nl.ref("SLOW1");
  nl.buf("EXTRA DELAY 1", from_ns(10), from_ns(10), in, slow1);
  Ref m1 = nl.ref("M1");
  nl.mux2("MUX 1", from_ns(10), from_ns(10), control, in, slow1, m1);

  Ref slow2 = nl.ref("SLOW2");
  nl.buf("EXTRA DELAY 2", from_ns(10), from_ns(10), m1, slow2);
  Ref out = nl.ref("OUTPUT");
  // The second mux's select is the *complement* of CONTROL: both slow
  // paths can never be selected simultaneously.
  Ref ncontrol = nl.ref("- CONTROL SIGNAL");
  nl.mux2("MUX 2", from_ns(10), from_ns(10), ncontrol, m1, slow2, out);
  c.output = out.id;
  nl.finalize();
  return c;
}

// When (after the input settles at 10 ns) does the output settle?
Time settle_time(const Waveform& w) {
  Time t = 0;
  EXPECT_TRUE(w.settles(from_ns(10), from_ns(90), t));
  return t;
}

TEST(CaseAnalysis, WithoutCasesDelayIs40ns) {
  Fig26Circuit c = build_fig26();
  Verifier v(c.nl, c.opts);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.converged);
  // INPUT settles at 10; OUTPUT settles 40 ns later.
  EXPECT_EQ(settle_time(c.nl.signal(c.output).wave), from_ns(50));
}

TEST(CaseAnalysis, EachCaseGives30ns) {
  Fig26Circuit c = build_fig26();
  Evaluator ev(c.nl, c.opts);
  ev.initialize();
  ev.propagate();

  CaseSpec case1{"CONTROL SIGNAL = 1", {{c.control, V::One}}};
  ev.apply_case(case1);
  EXPECT_EQ(settle_time(ev.wave(c.output)), from_ns(40));

  CaseSpec case0{"CONTROL SIGNAL = 0", {{c.control, V::Zero}}};
  ev.apply_case(case0);
  EXPECT_EQ(settle_time(ev.wave(c.output)), from_ns(40));
}

TEST(CaseAnalysis, CaseMappingOnlyAffectsStableValues) {
  // Sec. 2.7.1: the mapping replaces values that "would normally be
  // STABLE"; the changing intervals of an asserted signal keep changing.
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(100);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = {0, 0};
  Ref sig = nl.ref("CTL .S10-90");
  Ref out = nl.ref("OUT");
  nl.buf("B", 0, 0, sig, out);
  nl.finalize();
  Evaluator ev(nl, opts);
  ev.initialize();
  ev.propagate();
  ev.apply_case(CaseSpec{"CTL=1", {{sig.id, V::One}}});
  EXPECT_EQ(ev.wave(sig.id).at(from_ns(50)), V::One);     // was STABLE
  EXPECT_EQ(ev.wave(sig.id).at(from_ns(95)), V::Change);  // still changing
  EXPECT_EQ(ev.wave(out.id).at(from_ns(50)), V::One);     // propagated
}

TEST(CaseAnalysis, IncrementalReevaluationIsCheap) {
  // Sec. 2.7/3.3.2: going case-to-case reevaluates only the affected cone.
  Fig26Circuit c = build_fig26();
  Evaluator ev(c.nl, c.opts);
  ev.initialize();
  ev.propagate();
  std::size_t evals_base = ev.evals_performed();

  // A case on a signal nothing depends on: no primitive reevaluation moves
  // the result.
  Ref unrelated = c.nl.ref("UNRELATED");
  (void)unrelated;
  std::size_t events = ev.apply_case(CaseSpec{"noop", {{unrelated.id, V::One}}});
  EXPECT_EQ(events, 0u);

  // A case on CONTROL touches the two muxes (and their fanout) only.
  ev.apply_case(CaseSpec{"CONTROL=1", {{c.control, V::One}}});
  std::size_t evals_case = ev.evals_performed() - evals_base;
  EXPECT_LE(evals_case, 8u);  // far less than re-evaluating from scratch
}

TEST(CaseAnalysis, ClearCaseRestoresBase) {
  Fig26Circuit c = build_fig26();
  Evaluator ev(c.nl, c.opts);
  ev.initialize();
  ev.propagate();
  Waveform base_out = ev.wave(c.output);
  ev.apply_case(CaseSpec{"CONTROL=1", {{c.control, V::One}}});
  EXPECT_FALSE(ev.wave(c.output) == base_out);
  ev.clear_case();
  EXPECT_EQ(ev.wave(c.output), base_out);
}

TEST(CaseAnalysis, RejectsNonBooleanCaseValues) {
  Fig26Circuit c = build_fig26();
  Evaluator ev(c.nl, c.opts);
  ev.initialize();
  ev.propagate();
  EXPECT_THROW(ev.apply_case(CaseSpec{"bad", {{c.control, V::Change}}}),
               std::invalid_argument);
}

TEST(CaseAnalysis, VerifierRunsAllSpecifiedCases) {
  Fig26Circuit c = build_fig26();
  Verifier v(c.nl, c.opts);
  std::vector<CaseSpec> cases = {{"CONTROL SIGNAL = 0", {{c.control, V::Zero}}},
                                 {"CONTROL SIGNAL = 1", {{c.control, V::One}}}};
  VerifyResult r = v.verify(cases);
  ASSERT_EQ(r.cases.size(), 2u);
  EXPECT_EQ(r.cases[0].name, "CONTROL SIGNAL = 0");
  EXPECT_GT(r.cases[0].events, 0u);
}

}  // namespace
}  // namespace tv
