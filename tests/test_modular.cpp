// Modular verification (thesis sec. 2.5.2): a two-section design -- a
// producer generating a registered output and a consumer using it -- is
// verified section by section with stable assertions on the interface.
#include <gtest/gtest.h>

#include "core/modular.hpp"

namespace tv {
namespace {

using V = Value;

VerifierOptions options() {
  VerifierOptions o;
  o.period = from_ns(50.0);
  o.units = ClockUnits::from_ns_per_unit(1.0);
  o.default_wire = WireDelay{0, from_ns(1.0)};
  o.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  return o;
}

// Producer: a register clocked at 10 ns drives "BUS DATA .S18-58" (stable
// 18..8-next-cycle, i.e. changing 8..18). Register delay 1-3 ns plus 1 ns
// wire, clocked 10-12(skew): output changing 11..16 -> the .S18-58
// assertion holds with margin.
void build_producer(Netlist& nl, const char* bus_name) {
  Ref d = nl.ref("LOCAL IN .S0-8");
  Ref ck = nl.ref("P CLK .P10-20");
  Ref bus = nl.ref(bus_name, 8);
  nl.reg("P REG", from_ns(1.0), from_ns(3.0), d, ck, bus, 8);
}

// Consumer: treats the bus as an input with the same assertion and checks
// set-up into its own register clocked at the end of the cycle.
void build_consumer(Netlist& nl, const char* bus_name) {
  Ref bus = nl.ref(bus_name, 8);
  Ref ck = nl.ref("C CLK .P40-45");
  Ref q = nl.ref("C OUT", 8);
  nl.reg("C REG", from_ns(1.0), from_ns(3.0), bus, ck, q, 8);
  nl.setup_hold_chk("C SETUP", from_ns(2.0), from_ns(1.0), bus, ck, 8);
}

TEST(Modular, CleanSectionsWithConsistentInterfaceCompose) {
  Netlist producer, consumer;
  build_producer(producer, "BUS DATA .S18-58");
  build_consumer(consumer, "BUS DATA .S18-58");
  std::vector<Section> sections = {{"PRODUCER", &producer, {}}, {"CONSUMER", &consumer, {}}};
  ModularResult r = verify_modular(sections, options());
  ASSERT_EQ(r.sections.size(), 2u);
  EXPECT_TRUE(r.sections[0].result.violations.empty())
      << violations_report(r.sections[0].result.violations);
  EXPECT_TRUE(r.sections[1].result.violations.empty())
      << violations_report(r.sections[1].result.violations);
  EXPECT_TRUE(r.interface_issues.empty());
  EXPECT_TRUE(r.design_free_of_timing_errors());
}

TEST(Modular, ProducerViolatingItsOwnAssertionIsCaught) {
  // The producer claims stability from 12 ns but its register output can
  // still be changing until 13 ns: the stable-assertion check fires inside
  // the producing section (sec. 2.5.2: "the designer's initial timing
  // assertion is checked against the timing of the actual signal").
  Netlist producer;
  build_producer(producer, "BUS DATA .S12-58");
  std::vector<Section> sections = {{"PRODUCER", &producer, {}}};
  ModularResult r = verify_modular(sections, options());
  ASSERT_EQ(r.sections[0].result.violations.size(), 1u)
      << violations_report(r.sections[0].result.violations);
  EXPECT_EQ(r.sections[0].result.violations[0].type,
            Violation::Type::StableAssertionViolated);
  EXPECT_FALSE(r.design_free_of_timing_errors());
}

TEST(Modular, MismatchedInterfaceAssertionsAreCaught) {
  Netlist producer, consumer;
  build_producer(producer, "BUS DATA .S18-58");
  build_consumer(consumer, "BUS DATA .S16-58");  // consumer assumes more
  std::vector<Section> sections = {{"PRODUCER", &producer, {}}, {"CONSUMER", &consumer, {}}};
  ModularResult r = verify_modular(sections, options());
  ASSERT_EQ(r.interface_issues.size(), 1u);
  EXPECT_EQ(r.interface_issues[0].kind, InterfaceIssue::Kind::AssertionMismatch);
  EXPECT_EQ(r.interface_issues[0].base_name, "BUS DATA");
  EXPECT_FALSE(r.design_free_of_timing_errors());
}

TEST(Modular, UnassertedInterfaceSignalIsCaught) {
  Netlist producer, consumer;
  build_producer(producer, "BUS DATA");
  build_consumer(consumer, "BUS DATA");
  std::vector<Section> sections = {{"PRODUCER", &producer, {}}, {"CONSUMER", &consumer, {}}};
  ModularResult r = verify_modular(sections, options());
  bool found = false;
  for (const auto& i : r.interface_issues) {
    if (i.kind == InterfaceIssue::Kind::MissingAssertion) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Modular, LocalSignalsDoNotCrossSections) {
  // Both sections have a private "SCRATCH /M" net (the SCALD local-scope
  // marker): not an interface signal, so sharing the base name across
  // sections must not be flagged.
  Netlist a, b;
  build_producer(a, "BUS X .S18-58");
  Ref sa = a.ref("SCRATCH /M");
  a.buf("ABUF", 0, 0, a.ref("BUS X .S18-58"), sa);
  build_consumer(b, "BUS X .S18-58");
  Ref sb = b.ref("SCRATCH /M");
  b.buf("BBUF", 0, 0, b.ref("BUS X .S18-58"), sb);
  std::vector<Section> sections = {{"A", &a, {}}, {"B", &b, {}}};
  ModularResult r = verify_modular(sections, options());
  for (const auto& i : r.interface_issues) {
    EXPECT_NE(i.base_name, "SCRATCH") << i.detail;
  }
}

TEST(Modular, MultipleDriversAcrossSectionsAreCaught) {
  Netlist a, b;
  build_producer(a, "BUS Y .S18-58");
  build_producer(b, "BUS Y .S18-58");
  std::vector<Section> sections = {{"A", &a, {}}, {"B", &b, {}}};
  ModularResult r = verify_modular(sections, options());
  bool found = false;
  for (const auto& i : r.interface_issues) {
    if (i.kind == InterfaceIssue::Kind::MultipleDrivers && i.base_name == "BUS Y") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Modular, SectionErrorsBlockTheComposedProof) {
  // A consumer whose clock leaves too little set-up time: its section error
  // must falsify the whole-design claim even with clean interfaces.
  Netlist producer, consumer;
  build_producer(producer, "BUS DATA .S18-58");
  // Clock at 19 ns: the bus settles at 18 + 1 wire = 19, setup 2 -> miss.
  Ref bus = consumer.ref("BUS DATA .S18-58", 8);
  Ref ck = consumer.ref("C CLK .P19-24");
  consumer.setup_hold_chk("C SETUP", from_ns(2.0), from_ns(1.0), bus, ck, 8);
  std::vector<Section> sections = {{"PRODUCER", &producer, {}}, {"CONSUMER", &consumer, {}}};
  ModularResult r = verify_modular(sections, options());
  EXPECT_TRUE(r.interface_issues.empty());
  EXPECT_FALSE(r.sections[1].result.violations.empty());
  EXPECT_FALSE(r.design_free_of_timing_errors());
}

}  // namespace
}  // namespace tv

namespace tv {
namespace {

TEST(Modular, DerivedClockFamiliesAreNotMismatches) {
  // Fig 2-5 uses "CK .P0-4" and "CK .P2-3 L" -- one base name, two
  // assertion-defined clocks. Sharing such a family across sections is
  // legitimate and must not be flagged.
  Netlist a, b;
  a.buf("A1", 0, 0, a.ref("CK .P0-4"), a.ref("A OUT /M"));
  a.buf("A2", 0, 0, a.ref("CK .P2-3"), a.ref("A OUT2 /M"));
  b.buf("B1", 0, 0, b.ref("CK .P2-3"), b.ref("B OUT /M"));
  a.finalize();
  b.finalize();
  std::vector<Section> sections = {{"A", &a, {}}, {"B", &b, {}}};
  auto issues = check_interfaces(sections);
  EXPECT_TRUE(issues.empty());
}

TEST(Modular, DrivenVariantWithDifferingConsumerIsAMismatch) {
  Netlist a, b;
  a.buf("DRV", 0, 0, a.ref("IN .S0-4"), a.ref("BUS Z .S3-9"));  // producer
  b.buf("USE", 0, 0, b.ref("BUS Z .S2-9"), b.ref("B OUT /M"));  // consumer assumes more
  a.finalize();
  b.finalize();
  std::vector<Section> sections = {{"A", &a, {}}, {"B", &b, {}}};
  auto issues = check_interfaces(sections);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, InterfaceIssue::Kind::AssertionMismatch);
  EXPECT_NE(issues[0].detail.find("(driven)"), std::string::npos);
}

}  // namespace
}  // namespace tv
