// Tests for the report formatters: the Fig 3-10 timing summary, the
// Fig 3-11 error listing, cross references and the ASCII waveform strips.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "gen/regfile_example.hpp"

namespace tv {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = gen::build_regfile_example(nl_);
    Verifier v(nl_, ex_.options);
    result_ = v.verify();
  }
  Netlist nl_;
  gen::RegfileExample ex_;
  VerifyResult result_;
};

TEST_F(ReportTest, TimingSummaryListsEverySignal) {
  std::string s = timing_summary(nl_);
  EXPECT_NE(s.find("TIMING VERIFIER SIGNAL VALUE SUMMARY"), std::string::npos);
  for (SignalId id = 0; id < nl_.num_signals(); ++id) {
    EXPECT_NE(s.find(nl_.signal(id).full_name), std::string::npos)
        << nl_.signal(id).full_name;
  }
  // The Fig 3-10 headline entry appears with its value trace.
  EXPECT_NE(s.find("ADR<0:3>"), std::string::npos);
}

TEST_F(ReportTest, ViolationsReportFormat) {
  std::string s = violations_report(result_.violations);
  EXPECT_NE(s.find("SETUP, HOLD AND MINIMUM PULSE WIDTH ERRORS"), std::string::npos);
  EXPECT_NE(s.find("DATA INPUT"), std::string::npos);
  EXPECT_NE(s.find("CLOCK INPUT"), std::string::npos);
  EXPECT_EQ(violations_report({}), "NO TIMING ERRORS DETECTED\n");
}

TEST_F(ReportTest, WhereUsedListsDriversAndConsumers) {
  std::string s = where_used_listing(nl_);
  EXPECT_NE(s.find("defined by WE GATE"), std::string::npos);
  EXPECT_NE(s.find("used by    RAM READ PATH"), std::string::npos);
  EXPECT_NE(s.find("defined by assertion"), std::string::npos);  // the clocks
}

TEST_F(ReportTest, AsciiWaveformShapes) {
  // The write-enable pulse: zero, rise window, high, fall window, zero.
  Waveform we = nl_.signal(ex_.we).wave.with_skew_incorporated();
  std::string art = ascii_waveform(we, 50);  // 1 column per ns
  EXPECT_EQ(art.size(), 50u);
  EXPECT_EQ(art[0], '_');
  EXPECT_EQ(art[12], '/');   // rising 11.5..13.5
  EXPECT_EQ(art[15], '#');   // solid high
  EXPECT_EQ(art[18], '\\');  // falling 17.75..19.75
  EXPECT_EQ(art[25], '_');
}

TEST_F(ReportTest, AsciiWaveformAllValues) {
  Waveform w(from_ns(70), Value::Unknown);
  w.set(from_ns(10), from_ns(20), Value::Zero);
  w.set(from_ns(20), from_ns(30), Value::Rise);
  w.set(from_ns(30), from_ns(40), Value::One);
  w.set(from_ns(40), from_ns(50), Value::Fall);
  w.set(from_ns(50), from_ns(60), Value::Stable);
  w.set(from_ns(60), from_ns(70), Value::Change);
  std::string art = ascii_waveform(w, 7);
  EXPECT_EQ(art, "?_/#\\=x");
}

TEST_F(ReportTest, WaveSummaryHasOneStripPerSignal) {
  std::string s = timing_summary_waves(nl_, 32);
  std::size_t strips = 0;
  for (std::size_t pos = 0; (pos = s.find('|', pos)) != std::string::npos; ++pos) ++strips;
  EXPECT_EQ(strips, 2 * nl_.num_signals());
}

TEST_F(ReportTest, CrossReferenceOfUndefinedSignals) {
  Netlist nl;
  Ref floating = nl.ref("NOT YET DESIGNED");
  nl.buf("B", 0, 0, floating, nl.ref("OUT"));
  nl.finalize();
  auto ids = nl.undefined_unasserted();
  std::string s = cross_reference_listing(nl, ids);
  EXPECT_NE(s.find("NOT YET DESIGNED"), std::string::npos);
  EXPECT_NE(s.find("assumed always stable"), std::string::npos);
  EXPECT_EQ(cross_reference_listing(nl, {}), "");
}

}  // namespace
}  // namespace tv
