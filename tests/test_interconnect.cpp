// Tests for the interconnect-delay substrate (thesis secs. 1.3.2, 2.5.3).
#include "physical/interconnect.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/verifier.hpp"

namespace tv::physical {
namespace {

TEST(Interconnect, UnloadedShortLine) {
  NetGeometry g;
  g.min_length_in = 1.0;
  g.max_length_in = 2.0;
  g.loads = 0;  // no load capacitance
  WireAnalysis a = analyze_net(g);
  EXPECT_NEAR(a.min_ns, 0.148, 1e-9);
  EXPECT_NEAR(a.max_ns, 0.296, 1e-9);
  EXPECT_FALSE(a.reflection_risk);
  EXPECT_EQ(a.delay.dmin, from_ns(0.148));
}

TEST(Interconnect, LoadingSlowsTheLine) {
  NetGeometry light, heavy;
  light.min_length_in = heavy.min_length_in = 4.0;
  light.max_length_in = heavy.max_length_in = 4.0;
  light.loads = 1;
  heavy.loads = 8;
  WireAnalysis la = analyze_net(light);
  WireAnalysis ha = analyze_net(heavy);
  EXPECT_GT(ha.max_ns, la.max_ns);
  // Slowdown is sqrt(1 + Cd/C0): 8 loads x 3 pF on 4 in x 2.95 pF/in.
  double c0 = 4.0 * 2.95;
  double expected = 0.148 * 4.0 * std::sqrt(1.0 + 24.0 / c0);
  EXPECT_NEAR(ha.max_ns, expected, 1e-9);
}

TEST(Interconnect, MonotoneInLengthProperty) {
  double prev = 0;
  for (double len = 1.0; len <= 16.0; len *= 2) {
    NetGeometry g;
    g.min_length_in = g.max_length_in = len;
    WireAnalysis a = analyze_net(g);
    EXPECT_GT(a.max_ns, prev);
    prev = a.max_ns;
    EXPECT_LE(a.min_ns, a.max_ns);
  }
}

TEST(Interconnect, UnterminatedLongLineFlagsReflections) {
  // Sec. 1.3.2: round trip exceeding ~the edge time on an unterminated run.
  NetGeometry g;
  g.min_length_in = 6.0;
  g.max_length_in = 10.0;
  g.terminated = false;
  WireAnalysis a = analyze_net(g);
  EXPECT_TRUE(a.reflection_risk);
  // The settling round trip charges into the max delay.
  NetGeometry t = g;
  t.terminated = true;
  EXPECT_GT(a.max_ns, analyze_net(t).max_ns * 2.5);

  NetGeometry short_stub = g;
  short_stub.max_length_in = 1.0;
  short_stub.min_length_in = 0.5;
  EXPECT_FALSE(analyze_net(short_stub).reflection_risk);
}

TEST(Interconnect, ApplySetsDelaysAndFlagsClockNets) {
  Netlist nl;
  Ref d = nl.ref("D .S0-6");
  Ref ck_net = nl.ref("CK NET");
  nl.buf("CK DRV", 0, 0, nl.ref("CK .P2-3"), ck_net);
  Ref q = nl.ref("Q");
  nl.reg("R", from_ns(1), from_ns(2), d, ck_net, q);
  nl.finalize();

  std::map<SignalId, NetGeometry> geo;
  NetGeometry long_unterminated;
  long_unterminated.min_length_in = 5.0;
  long_unterminated.max_length_in = 12.0;
  long_unterminated.terminated = false;
  geo[ck_net.id] = long_unterminated;
  NetGeometry short_data;
  short_data.min_length_in = 0.5;
  short_data.max_length_in = 1.5;
  geo[d.id] = short_data;

  auto flagged = apply_interconnect(nl, geo);
  // The clock net is flagged (edge-sensitive register clock pin); the data
  // net is not.
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], ck_net.id);
  ASSERT_TRUE(nl.signal(d.id).wire_delay.has_value());
  EXPECT_GT(nl.signal(ck_net.id).wire_delay->dmax, nl.signal(d.id).wire_delay->dmax);
}

TEST(Interconnect, CalculatedDelaysChangeVerificationOutcome) {
  // The design meets timing under the optimistic default rule but fails
  // once the routed lengths are known -- the thesis' reason to feed
  // calculated interconnection delays back into verification.
  auto build = [](bool with_geometry) {
    auto nl = std::make_unique<Netlist>();
    Ref d = nl->ref("D .S1-6.8");  // changing 8..10 ns
    Ref ck = nl->ref("CK .P2.1-2.8");  // rises at 21 ns
    Ref mid = nl->ref("MID");
    nl->buf("B", from_ns(2), from_ns(4), d, mid);
    nl->setup_hold_chk("CHK", from_ns(2), 0, mid, ck);
    nl->finalize();
    if (with_geometry) {
      std::map<SignalId, NetGeometry> geo;
      NetGeometry g;
      g.min_length_in = 8.0;
      g.max_length_in = 20.0;  // a long backplane run
      g.loads = 6;
      geo[mid.id] = g;
      apply_interconnect(*nl, geo);
    }
    return nl;
  };
  VerifierOptions opts;
  opts.period = from_ns(60.0);
  opts.units = ClockUnits::from_ns_per_unit(10.0);
  opts.default_wire = WireDelay{0, from_ns(2.0)};
  opts.assertion_defaults = {0, 0, 0, 0};

  auto clean = build(false);
  auto routed = build(true);
  Verifier v1(*clean, opts), v2(*routed, opts);
  EXPECT_TRUE(v1.verify().violations.empty());
  EXPECT_FALSE(v2.verify().violations.empty());
}

}  // namespace
}  // namespace tv::physical
