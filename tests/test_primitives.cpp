// Tests for primitive evaluation semantics (thesis secs. 2.4.2-2.4.5, 2.8).
#include "core/primitives.hpp"

#include <gtest/gtest.h>

namespace tv {
namespace {

using V = Value;
constexpr Time P = from_ns(50.0);

Waveform clock_pulse(Time rise, Time fall) {
  Waveform w(P, V::Zero);
  w.set(rise, fall, V::One);
  return w;
}

PreparedInput in(Waveform w) {
  PreparedInput i;
  i.wave = std::move(w);
  return i;
}

Primitive make(PrimKind k, Time dmin, Time dmax) {
  Primitive p;
  p.kind = k;
  p.name = "uut";
  p.dmin = dmin;
  p.dmax = dmax;
  return p;
}

TEST(EdgeWindows, InstantaneousEdges) {
  Waveform w = clock_pulse(from_ns(20), from_ns(30));
  auto rises = edge_windows(w, true);
  auto falls = edge_windows(w, false);
  ASSERT_EQ(rises.size(), 1u);
  EXPECT_EQ(rises[0], (EdgeWindow{from_ns(20), from_ns(20)}));
  ASSERT_EQ(falls.size(), 1u);
  EXPECT_EQ(falls[0], (EdgeWindow{from_ns(30), from_ns(30)}));
}

TEST(EdgeWindows, SkewWidenedEdges) {
  // A +-1 ns skewed clock: after incorporation the rise is an R window.
  Waveform w = clock_pulse(from_ns(20), from_ns(30));
  w.set_skew(from_ns(2));
  Waveform f = w.with_skew_incorporated();
  auto rises = edge_windows(f, true);
  ASSERT_EQ(rises.size(), 1u);
  EXPECT_EQ(rises[0], (EdgeWindow{from_ns(20), from_ns(22)}));
  auto falls = edge_windows(f, false);
  ASSERT_EQ(falls.size(), 1u);
  EXPECT_EQ(falls[0], (EdgeWindow{from_ns(30), from_ns(32)}));
}

TEST(EdgeWindows, ChangeRegionQualifiesBothPolarities) {
  Waveform w(P, V::Zero);
  w.set(from_ns(10), from_ns(15), V::Change);
  auto rises = edge_windows(w, true);
  auto falls = edge_windows(w, false);
  ASSERT_EQ(rises.size(), 1u);
  EXPECT_EQ(rises[0], (EdgeWindow{from_ns(10), from_ns(15)}));
  EXPECT_EQ(falls.size(), 1u);
}

TEST(EdgeWindows, FallOnlyRunIsNotARise) {
  Waveform w(P, V::One);
  w.set(from_ns(10), from_ns(12), V::Fall);
  w.set(from_ns(12), from_ns(40), V::Zero);
  w.set(from_ns(40), from_ns(42), V::Rise);
  w.set(from_ns(42), P, V::One);
  auto rises = edge_windows(w, true);
  ASSERT_EQ(rises.size(), 1u);
  EXPECT_EQ(rises[0], (EdgeWindow{from_ns(40), from_ns(42)}));
  auto falls = edge_windows(w, false);
  ASSERT_EQ(falls.size(), 1u);
  EXPECT_EQ(falls[0], (EdgeWindow{from_ns(10), from_ns(12)}));
}

TEST(SampleOver, DefiniteAndIndefinite) {
  Waveform d(P, V::Zero);
  EXPECT_EQ(sample_over(d, {from_ns(10), from_ns(10)}), V::Zero);
  d.set(from_ns(5), from_ns(15), V::One);
  EXPECT_EQ(sample_over(d, {from_ns(6), from_ns(14) - 1}), V::One);
  EXPECT_EQ(sample_over(d, {from_ns(4), from_ns(6)}), V::Stable);  // 0 and 1 seen
  Waveform u(P, V::Unknown);
  EXPECT_EQ(sample_over(u, {0, 0}), V::Unknown);
}

TEST(Gates, OrWithSingleChangingInputKeepsSkew) {
  // Sec. 2.8: one changing input OR a constant -> skew stays in the field.
  Waveform a(P, V::Zero);
  a.set(from_ns(10), from_ns(20), V::One);
  a.set_skew(from_ns(2));
  Waveform b(P, V::Zero);
  Primitive p = make(PrimKind::Or, from_ns(1), from_ns(3));
  auto r = evaluate_primitive(p, {in(a), in(b)}, P);
  // Output shifted by min delay 1; skew = 2 (input) + 2 (gate).
  EXPECT_EQ(r.wave.at(from_ns(11)), V::One);
  EXPECT_EQ(r.wave.at(from_ns(20.9)), V::One);
  EXPECT_EQ(r.wave.at(from_ns(21)), V::Zero);
  EXPECT_EQ(r.wave.skew(), from_ns(4));
}

TEST(Gates, CombiningTwoChangingInputsFoldsSkew) {
  // Fig 2-8/2-9: ORing two changing signals folds the skews into R/F values.
  Waveform a(P, V::Zero);
  a.set(from_ns(10), from_ns(20), V::One);
  a.set_skew(from_ns(5));
  Waveform b(P, V::Zero);
  b.set(from_ns(30), from_ns(40), V::One);
  Primitive p = make(PrimKind::Or, 0, 0);
  auto r = evaluate_primitive(p, {in(a), in(b)}, P);
  EXPECT_EQ(r.wave.skew(), 0);
  EXPECT_EQ(r.wave.at(from_ns(10)), V::Rise);   // a's skewed rise
  EXPECT_EQ(r.wave.at(from_ns(14.9)), V::Rise);
  EXPECT_EQ(r.wave.at(from_ns(15)), V::One);
  EXPECT_EQ(r.wave.at(from_ns(20)), V::Fall);
  EXPECT_EQ(r.wave.at(from_ns(30)), V::One);    // b's clean rise
  EXPECT_EQ(r.wave.at(from_ns(40)), V::Zero);
}

TEST(Gates, SteadyInputResidualSkewDoesNotLeak) {
  // Sec. 2.8: the carried skew belongs to the (at most one) *changing*
  // input. A fully steady input that still carries a residual skew field --
  // e.g. the output of a gate whose inputs settled -- must not donate it to
  // the combination.
  Waveform a(P, V::One);
  a.set_skew(from_ns(5));
  Waveform b(P, V::Zero);
  Primitive p = make(PrimKind::Or, 0, 0);
  auto r = evaluate_primitive(p, {in(a), in(b)}, P);
  EXPECT_EQ(r.wave.skew(), 0);
}

TEST(Gates, LaterActiveInputDonatesTheCarriedSkew) {
  // Three-input fold where only the last input changes: its skew is the
  // carried one, regardless of a residual field on the steady first input.
  Waveform a(P, V::Zero);
  a.set_skew(from_ns(7));
  Waveform b(P, V::Zero);
  Waveform c(P, V::Zero);
  c.set(from_ns(10), from_ns(20), V::One);
  c.set_skew(from_ns(3));
  Primitive p = make(PrimKind::Or, 0, 0);
  auto r = evaluate_primitive(p, {in(a), in(b), in(c)}, P);
  EXPECT_EQ(r.wave.skew(), from_ns(3));
}

TEST(Mux, SteadySelectResidualSkewDoesNotLeak) {
  // The mux follows the same sec. 2.8 seeding rule as the gate fold: only
  // the active leg's skew is carried.
  Waveform sel(P, V::Zero);
  sel.set_skew(from_ns(4));
  Waveform d0(P, V::Zero);
  d0.set(from_ns(10), from_ns(20), V::One);
  d0.set_skew(from_ns(2));
  Waveform d1(P, V::One);
  Primitive p = make(PrimKind::Mux2, 0, 0);
  auto r = evaluate_primitive(p, {in(sel), in(d0), in(d1)}, P);
  EXPECT_EQ(r.wave.skew(), from_ns(2));
}

TEST(Gates, NotInvertsAndDelays) {
  Waveform a = clock_pulse(from_ns(10), from_ns(20));
  Primitive p = make(PrimKind::Not, from_ns(2), from_ns(2));
  auto r = evaluate_primitive(p, {in(a)}, P);
  EXPECT_EQ(r.wave.at(from_ns(11)), V::One);   // before delayed rise
  EXPECT_EQ(r.wave.at(from_ns(12)), V::Zero);
  EXPECT_EQ(r.wave.at(from_ns(22)), V::One);
}

TEST(Gates, ChgGateCollapsesValues) {
  // An adder is modeled as CHG: only when inputs change matters.
  Waveform a(P, V::Stable);
  a.set(from_ns(5), from_ns(12), V::Change);
  Waveform b = clock_pulse(from_ns(30), from_ns(35));  // 0/1 values count as not changing
  Primitive p = make(PrimKind::Chg, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(a), in(b)}, P);
  EXPECT_EQ(r.wave.at(from_ns(8)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(20)), V::Stable);
  // The 0->1 flip of b *is* a change even though 0/1 are "steady" values:
  // the output changes somewhere in [30+dmin, 30+dmax].
  EXPECT_EQ(r.wave.at(from_ns(31.5)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(33)), V::Stable);
  EXPECT_EQ(r.wave.at(from_ns(36.5)), V::Change);  // and the 1->0 flip
}

TEST(Gates, XorFlipVisibility) {
  // XOR of a 0/1 pulse with a STABLE operand: the table gives S on both
  // sides of each flip, but the output must show the change windows.
  Waveform a = clock_pulse(from_ns(10), from_ns(20));
  Waveform b(P, V::Stable);
  Primitive p = make(PrimKind::Xor, from_ns(1), from_ns(3));
  auto r = evaluate_primitive(p, {in(a), in(b)}, P);
  EXPECT_EQ(r.wave.at(from_ns(12)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(17)), V::Stable);
  EXPECT_EQ(r.wave.at(from_ns(22)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(30)), V::Stable);
}

TEST(Register, BasicClocking) {
  // Fig 2-1: output CHANGE after the rising edge for [dmin, dmax], STABLE
  // elsewhere when the data input is symbolic.
  Waveform data(P, V::Stable);
  data.set(from_ns(5), from_ns(15), V::Change);
  Waveform ck = clock_pulse(from_ns(20), from_ns(30));
  Primitive p = make(PrimKind::Reg, from_ns(1), from_ns(3.8));
  auto r = evaluate_primitive(p, {in(data), in(ck)}, P);
  EXPECT_EQ(r.wave.at(from_ns(20.9)), V::Stable);
  EXPECT_EQ(r.wave.at(from_ns(21)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(23.7)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(23.8)), V::Stable);
  EXPECT_EQ(r.wave.at(0), V::Stable);
}

TEST(Register, CapturesDefiniteData) {
  Waveform data(P, V::One);
  Waveform ck = clock_pulse(from_ns(20), from_ns(30));
  Primitive p = make(PrimKind::Reg, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(ck)}, P);
  EXPECT_EQ(r.wave.at(from_ns(25)), V::One);
  EXPECT_EQ(r.wave.at(from_ns(0)), V::One);  // holds around the cycle
  EXPECT_EQ(r.wave.at(from_ns(21.5)), V::Change);
}

TEST(Register, ClockSkewWidensChangeWindow) {
  Waveform data(P, V::Stable);
  Waveform ck = clock_pulse(from_ns(20), from_ns(30));
  ck.set_skew(from_ns(2));
  Primitive p = make(PrimKind::Reg, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(ck)}, P);
  // Edge window [20,22] + delay [1,2] -> CHANGE over [21,24).
  EXPECT_EQ(r.wave.at(from_ns(20.9)), V::Stable);
  EXPECT_EQ(r.wave.at(from_ns(21)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(23.9)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(24)), V::Stable);
}

TEST(Register, UnclockedIsStable) {
  Waveform data(P, V::Change);
  Waveform ck(P, V::Zero);
  Primitive p = make(PrimKind::Reg, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(ck)}, P);
  EXPECT_TRUE(r.wave.is_constant());
  EXPECT_EQ(r.wave.at(0), V::Stable);
}

TEST(Register, UnknownClockGivesUnknown) {
  Waveform data(P, V::Stable);
  Waveform ck(P, V::Unknown);
  Primitive p = make(PrimKind::Reg, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(ck)}, P);
  EXPECT_EQ(r.wave.at(0), V::Unknown);
}

TEST(Register, AlwaysChangingClockNeverSettles) {
  // A clock that can change anywhere in the cycle (e.g. an unconstrained
  // gated clock resolved to CHANGE) has no discrete edge windows. That must
  // degrade the output to CHANGE -- reporting always-STABLE would hide every
  // downstream set-up check behind a phantom quiet register.
  Waveform data(P, V::Zero);
  data.set(from_ns(10), from_ns(20), V::One);
  Waveform ck(P, V::Change);
  Primitive p = make(PrimKind::Reg, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(ck)}, P);
  EXPECT_TRUE(r.wave.is_constant());
  EXPECT_EQ(r.wave.at(0), V::Change);
}

TEST(RegisterSR, SetForcesOne) {
  Waveform data(P, V::Stable);
  Waveform ck = clock_pulse(from_ns(20), from_ns(30));
  Waveform set(P, V::One);
  Waveform rst(P, V::Zero);
  Primitive p = make(PrimKind::RegSR, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(ck), in(set), in(rst)}, P);
  EXPECT_EQ(r.wave.at(from_ns(10)), V::One);
  EXPECT_EQ(r.wave.at(from_ns(25)), V::One);  // overrides the clocked CHANGE
}

TEST(RegisterSR, BothAssertedIsUndefined) {
  Waveform data(P, V::Stable);
  Waveform ck = clock_pulse(from_ns(20), from_ns(30));
  Waveform one(P, V::One);
  Primitive p = make(PrimKind::RegSR, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(ck), in(one), in(one)}, P);
  EXPECT_EQ(r.wave.at(from_ns(10)), V::Unknown);
}

TEST(RegisterSR, InactiveSetResetIsTransparentToBase) {
  Waveform data(P, V::Stable);
  Waveform ck = clock_pulse(from_ns(20), from_ns(30));
  Waveform zero(P, V::Zero);
  Primitive psr = make(PrimKind::RegSR, from_ns(1), from_ns(2));
  Primitive preg = make(PrimKind::Reg, from_ns(1), from_ns(2));
  auto rsr = evaluate_primitive(psr, {in(data), in(ck), in(zero), in(zero)}, P);
  auto rreg = evaluate_primitive(preg, {in(data), in(ck)}, P);
  EXPECT_EQ(rsr.wave, rreg.wave);
}

TEST(Latch, TransparentFollowsDataOpaqueHolds) {
  // Fig 2-2: output follows DATA while ENABLE high, holds when low.
  Waveform data(P, V::Stable);
  data.set(from_ns(10), from_ns(15), V::Change);   // changes while enabled
  Waveform en = clock_pulse(from_ns(5), from_ns(25));
  Primitive p = make(PrimKind::Latch, 0, 0);
  auto r = evaluate_primitive(p, {in(data), in(en)}, P);
  EXPECT_EQ(r.wave.at(from_ns(12)), V::Change);   // transparent
  EXPECT_EQ(r.wave.at(from_ns(20)), V::Stable);
  EXPECT_EQ(r.wave.at(from_ns(30)), V::Stable);   // held
  EXPECT_EQ(r.wave.at(from_ns(2)), V::Stable);    // held across the wrap
}

TEST(Latch, CapturesDefiniteValueAtFall) {
  Waveform data(P, V::One);
  Waveform en = clock_pulse(from_ns(5), from_ns(25));
  Primitive p = make(PrimKind::Latch, 0, 0);
  auto r = evaluate_primitive(p, {in(data), in(en)}, P);
  EXPECT_EQ(r.wave.at(from_ns(10)), V::One);   // transparent
  EXPECT_EQ(r.wave.at(from_ns(40)), V::One);   // captured 1 held
}

TEST(Latch, AlwaysChangingEnableNeverSettles) {
  // Same hazard as Register.AlwaysChangingClockNeverSettles on the held
  // side: an enable with no discrete falling edge gives the hold no anchor,
  // so the output may change at any time.
  Waveform data(P, V::Zero);
  data.set(from_ns(10), from_ns(20), V::One);
  Waveform en(P, V::Change);
  Primitive p = make(PrimKind::Latch, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(data), in(en)}, P);
  EXPECT_EQ(r.wave.at(from_ns(30)), V::Change);
}

TEST(Mux, StableSelectIsNotAChange) {
  // Fig 2-6's key property: with a STABLE select, two steady inputs give a
  // steady output (path-search tools cannot express this).
  Waveform sel(P, V::Stable);
  Waveform d0(P, V::Zero);
  Waveform d1(P, V::One);
  Primitive p = make(PrimKind::Mux2, from_ns(1), from_ns(2));
  auto r = evaluate_primitive(p, {in(sel), in(d0), in(d1)}, P);
  EXPECT_EQ(r.wave.at(from_ns(10)), V::Stable);
}

TEST(Mux, DefiniteSelectPassesThrough) {
  Waveform sel(P, V::One);
  Waveform d0(P, V::Zero);
  Waveform d1(P, V::Stable);
  d1.set(from_ns(10), from_ns(20), V::Change);
  Primitive p = make(PrimKind::Mux2, 0, 0);
  auto r = evaluate_primitive(p, {in(sel), in(d0), in(d1)}, P);
  EXPECT_EQ(r.wave.at(from_ns(15)), V::Change);
  EXPECT_EQ(r.wave.at(from_ns(30)), V::Stable);
}

TEST(Mux, Mux4SelectsByTwoBits) {
  Waveform s0(P, V::Zero), s1(P, V::One);
  Waveform d0(P, V::Zero), d1(P, V::Zero), d2(P, V::One), d3(P, V::Zero);
  Primitive p = make(PrimKind::Mux4, 0, 0);
  // select = s1 s0 = 10b = 2 -> d2.
  auto r = evaluate_primitive(p, {in(s0), in(s1), in(d0), in(d1), in(d2), in(d3)}, P);
  EXPECT_EQ(r.wave.at(0), V::One);
}

TEST(Directives, HAssumesEnablingAndZeroesDelay) {
  // Sec. 2.6 / Fig 2-5: "&H" on a clock ANDed with a control signal: the
  // control is assumed enabling, so the output is the clock value, and the
  // clock timing refers to the gate *output* (delays zeroed).
  Waveform ck = clock_pulse(from_ns(12.5), from_ns(18.75));
  Waveform ctrl(P, V::Stable);  // value-unknown control
  PreparedInput ck_in = in(ck);
  ck_in.has_directive_string = true;
  ck_in.directive = 'H';
  Primitive p = make(PrimKind::And, from_ns(1), from_ns(2.9));
  auto r = evaluate_primitive(p, {ck_in, in(ctrl)}, P);
  EXPECT_EQ(r.wave.at(from_ns(13)), V::One);   // no delay applied
  EXPECT_EQ(r.wave.at(from_ns(12)), V::Zero);
  EXPECT_EQ(r.wave.at(from_ns(20)), V::Zero);  // control did not leak S in
}

TEST(Directives, TailPropagatesToOutput) {
  Waveform ck = clock_pulse(from_ns(10), from_ns(20));
  PreparedInput ck_in = in(ck);
  ck_in.has_directive_string = true;
  ck_in.directive = 'H';
  ck_in.tail = "ZW";
  Primitive p = make(PrimKind::And, 0, 0);
  auto r = evaluate_primitive(p, {ck_in, in(Waveform(P, V::One))}, P);
  EXPECT_EQ(r.eval_str, "ZW");
}

TEST(Directives, WithoutDirectiveStableControlBlursClock) {
  // The contrast case: without "&A", an AND of clock with a STABLE control
  // yields a worst-case value, not a clean pulse.
  Waveform ck = clock_pulse(from_ns(10), from_ns(20));
  Waveform ctrl(P, V::Stable);
  Primitive p = make(PrimKind::And, 0, 0);
  auto r = evaluate_primitive(p, {in(ck), in(ctrl)}, P);
  // 1 AND S = S: the pulse may or may not appear.
  EXPECT_EQ(r.wave.at(from_ns(15)), V::Stable);
  EXPECT_EQ(r.wave.at(from_ns(5)), V::Zero);  // 0 AND S = 0
}

}  // namespace
}  // namespace tv
