// Unit + property tests for the periodic waveform representation
// (thesis sec. 2.8, Figs 2-7/2-8/2-9).
#include "core/waveform.hpp"

#include <gtest/gtest.h>

namespace tv {
namespace {

using V = Value;
constexpr Time P = from_ns(50.0);  // the thesis example's 50 ns cycle

TEST(Waveform, ConstantInvariants) {
  Waveform w(P, V::Stable);
  EXPECT_EQ(w.period(), P);
  EXPECT_EQ(w.segments().size(), 1u);
  EXPECT_EQ(w.at(0), V::Stable);
  EXPECT_EQ(w.at(P - 1), V::Stable);
  EXPECT_EQ(w.at(P + 5), V::Stable);  // modulo the period
  EXPECT_FALSE(w.has_activity());
}

TEST(Waveform, SetSimpleInterval) {
  Waveform w(P, V::Zero);
  w.set(from_ns(20), from_ns(30), V::One);
  EXPECT_EQ(w.at(from_ns(19)), V::Zero);
  EXPECT_EQ(w.at(from_ns(20)), V::One);
  EXPECT_EQ(w.at(from_ns(29)), V::One);
  EXPECT_EQ(w.at(from_ns(30)), V::Zero);
  EXPECT_EQ(w.segments().size(), 3u);
}

TEST(Waveform, SetWrappingInterval) {
  // Assertions are taken modulo the cycle time (sec. 3.2): "stable 4-9" in an
  // 8-unit cycle means stable except units 1..4.
  Waveform w(P, V::Change);
  w.set(from_ns(40), from_ns(60), V::Stable);  // wraps: [40,50) U [0,10)
  EXPECT_EQ(w.at(from_ns(45)), V::Stable);
  EXPECT_EQ(w.at(from_ns(5)), V::Stable);
  EXPECT_EQ(w.at(from_ns(15)), V::Change);
  EXPECT_EQ(w.at(from_ns(39)), V::Change);
}

TEST(Waveform, SetFullPeriodAndEmpty) {
  Waveform w(P, V::Zero);
  w.set(0, P, V::Stable);
  EXPECT_TRUE(w.is_constant());
  EXPECT_EQ(w.at(17), V::Stable);
  w.set(from_ns(10), from_ns(10), V::One);  // empty interval: no-op
  EXPECT_TRUE(w.is_constant());
}

TEST(Waveform, WidthsAlwaysSumToPeriodProperty) {
  // The thesis requires the VALUE WIDTH fields to sum exactly to the cycle
  // time "for consistency-checking purposes".
  Waveform w(P, V::Zero);
  const Time times[] = {0, from_ns(3), from_ns(47.5), from_ns(49), from_ns(12.25)};
  const V vals[] = {V::One, V::Change, V::Stable, V::Rise, V::Zero};
  int k = 0;
  for (Time b : times) {
    for (Time e : times) {
      w.set(b, e + from_ns(1), vals[k++ % 5]);
      Time sum = 0;
      for (const auto& s : w.segments()) sum += s.width;
      ASSERT_EQ(sum, P);
    }
  }
}

TEST(Waveform, DelayRotatesCircularly) {
  Waveform w(P, V::Zero);
  w.set(from_ns(45), from_ns(48), V::One);
  Waveform d = w.delayed(from_ns(10), from_ns(10));
  EXPECT_EQ(d.at(from_ns(55 - 50)), V::One);  // 45+10 wraps to 5
  EXPECT_EQ(d.at(from_ns(7)), V::One);
  EXPECT_EQ(d.at(from_ns(8)), V::Zero);
  EXPECT_EQ(d.skew(), 0);
}

TEST(Waveform, DelayAccumulatesSkewSeparately) {
  // Fig 2-8: the gate delays by [5,10]; the value list shifts by the min
  // delay and the skew field carries max-min, preserving pulse width.
  Waveform w(P, V::Zero);
  w.set(from_ns(10), from_ns(20), V::One);
  Waveform d = w.delayed(from_ns(5), from_ns(10));
  EXPECT_EQ(d.at(from_ns(15)), V::One);
  EXPECT_EQ(d.at(from_ns(24)), V::One);
  EXPECT_EQ(d.at(from_ns(25)), V::Zero);
  EXPECT_EQ(d.skew(), from_ns(5));
  // Pulse width in the value list is unchanged: still 10 ns of solid 1.
  Time high = 0;
  for (const auto& s : d.segments())
    if (s.value == V::One) high += s.width;
  EXPECT_EQ(high, from_ns(10));
}

TEST(Waveform, SkewIncorporationUsesRiseFall) {
  // Fig 2-9: folding a 5 ns skew into a 0/1 pulse turns each edge into a
  // 5 ns RISE/FALL window.
  Waveform w(P, V::Zero);
  w.set(from_ns(15), from_ns(25), V::One);
  w.set_skew(from_ns(5));
  Waveform f = w.with_skew_incorporated();
  EXPECT_EQ(f.skew(), 0);
  EXPECT_EQ(f.at(from_ns(14)), V::Zero);
  EXPECT_EQ(f.at(from_ns(15)), V::Rise);
  EXPECT_EQ(f.at(from_ns(19)), V::Rise);
  EXPECT_EQ(f.at(from_ns(20)), V::One);
  EXPECT_EQ(f.at(from_ns(24)), V::One);
  EXPECT_EQ(f.at(from_ns(25)), V::Fall);
  EXPECT_EQ(f.at(from_ns(29)), V::Fall);
  EXPECT_EQ(f.at(from_ns(30)), V::Zero);
}

TEST(Waveform, SkewIncorporationOverlapCollapsesToChange) {
  // A pulse narrower than the skew: rise and fall windows overlap, and the
  // overlap must read CHANGE (either edge may be in flight).
  Waveform w(P, V::Zero);
  w.set(from_ns(15), from_ns(18), V::One);
  w.set_skew(from_ns(5));
  Waveform f = w.with_skew_incorporated();
  EXPECT_EQ(f.at(from_ns(15)), V::Rise);
  EXPECT_EQ(f.at(from_ns(18) + 1), V::Change);  // both windows cover
  EXPECT_EQ(f.at(from_ns(19)), V::Change);
  EXPECT_EQ(f.at(from_ns(21)), V::Fall);  // rise window over, fall remains
  EXPECT_EQ(f.at(from_ns(23)), V::Zero);
}

TEST(Waveform, SkewIncorporationStableChange) {
  // S -> C boundaries widen with CHANGE, not RISE/FALL.
  Waveform w(P, V::Stable);
  w.set(from_ns(10), from_ns(20), V::Change);
  w.set_skew(from_ns(4));
  Waveform f = w.with_skew_incorporated();
  EXPECT_EQ(f.at(from_ns(9)), V::Stable);
  EXPECT_EQ(f.at(from_ns(10)), V::Change);
  EXPECT_EQ(f.at(from_ns(21)), V::Change);  // trailing edge widened
  EXPECT_EQ(f.at(from_ns(23)), V::Change);
  EXPECT_EQ(f.at(from_ns(24)), V::Stable);
}

TEST(Waveform, SkewIncorporationIsIdempotentProperty) {
  Waveform w(P, V::Zero);
  w.set(from_ns(12), from_ns(30), V::One);
  w.set_skew(from_ns(3));
  Waveform once = w.with_skew_incorporated();
  Waveform twice = once.with_skew_incorporated();
  EXPECT_EQ(once, twice);
}

TEST(Waveform, BinaryCombinationAlignsSegments) {
  Waveform a(P, V::Zero);
  a.set(from_ns(10), from_ns(30), V::One);
  Waveform b(P, V::Zero);
  b.set(from_ns(20), from_ns(40), V::One);
  Waveform o = Waveform::binary(a, b, value_or);
  EXPECT_EQ(o.at(from_ns(5)), V::Zero);
  EXPECT_EQ(o.at(from_ns(15)), V::One);
  EXPECT_EQ(o.at(from_ns(25)), V::One);
  EXPECT_EQ(o.at(from_ns(35)), V::One);
  EXPECT_EQ(o.at(from_ns(45)), V::Zero);
  Waveform an = Waveform::binary(a, b, value_and);
  EXPECT_EQ(an.at(from_ns(15)), V::Zero);
  EXPECT_EQ(an.at(from_ns(25)), V::One);
  EXPECT_EQ(an.at(from_ns(35)), V::Zero);
}

TEST(Waveform, ValueMaskCircular) {
  Waveform w(P, V::Stable);
  w.set(from_ns(45), from_ns(55), V::Change);  // wraps
  auto m = w.value_mask(from_ns(46), from_ns(52));
  EXPECT_EQ(m, 1u << static_cast<int>(V::Change));
  m = w.value_mask(from_ns(40), from_ns(48));
  EXPECT_EQ(m, (1u << static_cast<int>(V::Change)) | (1u << static_cast<int>(V::Stable)));
  EXPECT_TRUE(w.steady_over(from_ns(10), from_ns(40)));
  EXPECT_FALSE(w.steady_over(from_ns(10), from_ns(46)));
}

TEST(Waveform, SettlesReportsStableTime) {
  // Fig 3-11 reporting: "data did not go stable until 47.5 nsec".
  Waveform w(P, V::Stable);
  w.set(from_ns(40), from_ns(47.5), V::Change);
  Time t = 0;
  ASSERT_TRUE(w.settles(from_ns(30), from_ns(49), t));
  EXPECT_EQ(t, from_ns(47.5));
  // Already stable across the whole window: settles at the window start.
  ASSERT_TRUE(w.settles(from_ns(10), from_ns(30), t));
  EXPECT_EQ(t, from_ns(10));
  // Never stable in window.
  Waveform c(P, V::Change);
  EXPECT_FALSE(c.settles(from_ns(0), from_ns(10), t));
}

TEST(Waveform, SettlesAcrossWrap) {
  Waveform w(P, V::Stable);
  w.set(from_ns(44), from_ns(46), V::Change);
  Time t = 0;
  // Window wraps the cycle boundary: [48, 54) == [48,50)+[0,4).
  ASSERT_TRUE(w.settles(from_ns(48), from_ns(54), t));
  EXPECT_EQ(t, from_ns(48));
  // Window [45, 52): stable only from 46 on.
  ASSERT_TRUE(w.settles(from_ns(45), from_ns(52), t));
  EXPECT_EQ(t, from_ns(46));
}

TEST(Waveform, BoundariesIncludeWrap) {
  Waveform w(P, V::One);
  w.set(from_ns(40), from_ns(60), V::Zero);  // 0 across the wrap
  auto bs = w.boundaries();
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0].time, from_ns(10));
  EXPECT_EQ(bs[0].from, V::Zero);
  EXPECT_EQ(bs[0].to, V::One);
  EXPECT_EQ(bs[1].time, from_ns(40));
  EXPECT_EQ(bs[1].from, V::One);
  EXPECT_EQ(bs[1].to, V::Zero);
}

TEST(Waveform, PaperStorageAccounting) {
  // Table 3-3 record model: 20-byte base + 12 bytes per value record. The
  // thesis reports a mean of 2.97 value records and ~56 bytes per signal.
  Waveform w(P, V::Stable);
  w.set(from_ns(10), from_ns(20), V::Change);
  EXPECT_EQ(w.value_record_count(), 3u);
  EXPECT_EQ(w.paper_storage_bytes(), 20u + 3u * 12u);
}

TEST(Waveform, ToStringMatchesListingStyle) {
  Waveform w(P, V::Stable);
  w.set(from_ns(0.5), from_ns(5.5), V::Change);
  EXPECT_EQ(w.to_string(), "0.0:S 0.5:C 5.5:S");
}

TEST(Waveform, DelayZeroIsIdentityProperty) {
  Waveform w(P, V::Zero);
  w.set(from_ns(13), from_ns(29), V::One);
  w.set(from_ns(31), from_ns(33), V::Change);
  EXPECT_EQ(w.delayed(0, 0), w);
}

TEST(Waveform, DelayComposesProperty) {
  Waveform w(P, V::Zero);
  w.set(from_ns(13), from_ns(29), V::One);
  Waveform a = w.delayed(from_ns(3), from_ns(7)).delayed(from_ns(2), from_ns(4));
  Waveform b = w.delayed(from_ns(5), from_ns(11));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tv
