// Golden-report regression suite: runs the full verifier over every example
// design and the checked-in SHDL designs, renders a canonical report, and
// byte-compares it against the files in tests/golden/. Each design is
// verified three ways -- interning + batch case evaluation (the default),
// interning with the batch engine disabled, and interning off entirely --
// and all three reports must be byte-identical to each other: this is the
// safety net proving the hash-consing layer and the lockstep batch sweep
// change no verdicts, waveforms, or event counts.
//
// To regenerate after an intentional report change:
//   TV_UPDATE_GOLDEN=1 ./tv_tests --gtest_filter='GoldenReports.*'
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/compiled.hpp"
#include "core/verifier.hpp"
#include "example_designs.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/stdlib.hpp"

namespace {

using namespace tv;

std::string render_report(Netlist& nl, VerifierOptions opts,
                          const std::vector<CaseSpec>& cases, bool interning,
                          bool batch_eval = true) {
  opts.interning = interning;
  opts.batch_eval = batch_eval;
  Verifier v(nl, opts);
  VerifyResult r = v.verify(cases);
  std::ostringstream os;
  os << "signals " << nl.num_signals() << "  primitives " << nl.num_prims() << "\n";
  os << "base events " << r.base_events << "  converged "
     << (r.converged ? "yes" : "no") << "\n\n";
  os << timing_summary(nl) << "\n";
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "\n=== case \"" << c.name << "\" (" << c.events << " events, converged "
       << (c.converged ? "yes" : "no") << ") ===\n";
    os << violations_report(c.violations);
  }
  os << "\n" << cross_reference_listing(nl, r.cross_reference);
  return os.str();
}

std::string golden_path(const std::string& name) {
  return std::string(TV_GOLDEN_DIR) + "/" + name + ".golden.txt";
}

void compare_to_golden(const std::string& name, const std::string& report) {
  const std::string path = golden_path(name);
  if (std::getenv("TV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << report;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " -- run with TV_UPDATE_GOLDEN=1 to create it";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), report) << "report for " << name
                                   << " diverged from " << path;
}

// Builds the unit fresh for each mode (verification mutates the netlist's
// baseline waveforms), renders both reports, and checks mode-identity plus
// the golden file.
void check_example(std::size_t index) {
  examples::ExampleDesign on = examples::all_example_designs()[index];
  std::string with_interning = render_report(*on.netlist, on.options, on.cases, true);
  examples::ExampleDesign off = examples::all_example_designs()[index];
  std::string without = render_report(*off.netlist, off.options, off.cases, false);
  EXPECT_EQ(with_interning, without)
      << on.name << ": interned and uninterned runs must render identically";
  examples::ExampleDesign per_case = examples::all_example_designs()[index];
  std::string without_batch =
      render_report(*per_case.netlist, per_case.options, per_case.cases, true, false);
  EXPECT_EQ(with_interning, without_batch)
      << on.name << ": batch and per-case engines must render identically";
  compare_to_golden(on.name, with_interning);
}

TEST(GoldenReports, ExampleDesigns) {
  std::size_t n = examples::all_example_designs().size();
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE(examples::all_example_designs()[i].name);
    check_example(i);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void check_shdl(const std::string& name, bool with_stdlib) {
  const std::string text =
      read_file(std::string(TV_REPO_ROOT) + "/designs/" + name + ".shdl");
  ASSERT_FALSE(text.empty());
  auto elaborate = [&]() {
    return with_stdlib
               ? hdl::elaborate_sources({hdl::std_chip_library(), text})
               : hdl::elaborate_source(text);
  };
  hdl::ElaboratedDesign on = elaborate();
  std::string with_interning = render_report(on.netlist, on.options, on.cases, true);
  hdl::ElaboratedDesign off = elaborate();
  std::string without = render_report(off.netlist, off.options, off.cases, false);
  EXPECT_EQ(with_interning, without)
      << name << ": interned and uninterned runs must render identically";
  hdl::ElaboratedDesign per_case = elaborate();
  std::string without_batch =
      render_report(per_case.netlist, per_case.options, per_case.cases, true, false);
  EXPECT_EQ(with_interning, without_batch)
      << name << ": batch and per-case engines must render identically";
  hdl::ElaboratedDesign src = elaborate();
  CompiledDesign compiled =
      compile_design(name, src.netlist, src.options, src.cases, {});
  const std::string bytes = serialize_compiled(compiled);
  diag::DiagnosticEngine diags;
  std::optional<CompiledDesign> loaded = load_compiled(bytes, name + ".tvc", diags);
  ASSERT_TRUE(loaded.has_value()) << name << ": artifact round-trip failed";
  std::string via_artifact =
      render_report(loaded->netlist, loaded->options, loaded->cases, true);
  EXPECT_EQ(with_interning, via_artifact)
      << name << ": the compiled-artifact path must render identically";
  compare_to_golden(name, with_interning);
}

TEST(GoldenReports, RegfileExampleShdl) { check_shdl("regfile_example", false); }

TEST(GoldenReports, StdlibPipelineShdl) { check_shdl("stdlib_pipeline", true); }

}  // namespace
