// Golden-report regression suite: runs the full verifier over every example
// design and the checked-in SHDL designs, renders a canonical report, and
// byte-compares it against the files in tests/golden/. Each design is
// verified three ways -- interning + batch case evaluation (the default),
// interning with the batch engine disabled, and interning off entirely --
// and all three reports must be byte-identical to each other: this is the
// safety net proving the hash-consing layer and the lockstep batch sweep
// change no verdicts, waveforms, or event counts.
//
// To regenerate after an intentional report change:
//   TV_UPDATE_GOLDEN=1 ./tv_tests --gtest_filter='GoldenReports.*'
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/compiled.hpp"
#include "core/incremental.hpp"
#include "core/verifier.hpp"
#include "example_designs.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/stdlib.hpp"
#include "util/atomic_file.hpp"

namespace {

using namespace tv;

std::string render_report(Netlist& nl, VerifierOptions opts,
                          const std::vector<CaseSpec>& cases, bool interning,
                          bool batch_eval = true) {
  opts.interning = interning;
  opts.batch_eval = batch_eval;
  Verifier v(nl, opts);
  VerifyResult r = v.verify(cases);
  std::ostringstream os;
  os << "signals " << nl.num_signals() << "  primitives " << nl.num_prims() << "\n";
  os << "base events " << r.base_events << "  converged "
     << (r.converged ? "yes" : "no") << "\n\n";
  os << timing_summary(nl) << "\n";
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "\n=== case \"" << c.name << "\" (" << c.events << " events, converged "
       << (c.converged ? "yes" : "no") << ") ===\n";
    os << violations_report(c.violations);
  }
  os << "\n" << cross_reference_listing(nl, r.cross_reference);
  return os.str();
}

std::string golden_path(const std::string& name) {
  return std::string(TV_GOLDEN_DIR) + "/" + name + ".golden.txt";
}

void compare_to_golden(const std::string& name, const std::string& report) {
  const std::string path = golden_path(name);
  if (std::getenv("TV_UPDATE_GOLDEN") != nullptr) {
    std::string error;
    ASSERT_TRUE(tv::util::atomic_write_file(path, report, &error))
        << "cannot write " << path << ": " << error;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " -- run with TV_UPDATE_GOLDEN=1 to create it";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), report) << "report for " << name
                                   << " diverged from " << path;
}

// Builds the unit fresh for each mode (verification mutates the netlist's
// baseline waveforms), renders both reports, and checks mode-identity plus
// the golden file.
void check_example(std::size_t index) {
  examples::ExampleDesign on = examples::all_example_designs()[index];
  std::string with_interning = render_report(*on.netlist, on.options, on.cases, true);
  examples::ExampleDesign off = examples::all_example_designs()[index];
  std::string without = render_report(*off.netlist, off.options, off.cases, false);
  EXPECT_EQ(with_interning, without)
      << on.name << ": interned and uninterned runs must render identically";
  examples::ExampleDesign per_case = examples::all_example_designs()[index];
  std::string without_batch =
      render_report(*per_case.netlist, per_case.options, per_case.cases, true, false);
  EXPECT_EQ(with_interning, without_batch)
      << on.name << ": batch and per-case engines must render identically";
  compare_to_golden(on.name, with_interning);
}

TEST(GoldenReports, ExampleDesigns) {
  std::size_t n = examples::all_example_designs().size();
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE(examples::all_example_designs()[i].name);
    check_example(i);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void check_shdl(const std::string& name, bool with_stdlib) {
  const std::string text =
      read_file(std::string(TV_REPO_ROOT) + "/designs/" + name + ".shdl");
  ASSERT_FALSE(text.empty());
  auto elaborate = [&]() {
    return with_stdlib
               ? hdl::elaborate_sources({hdl::std_chip_library(), text})
               : hdl::elaborate_source(text);
  };
  hdl::ElaboratedDesign on = elaborate();
  std::string with_interning = render_report(on.netlist, on.options, on.cases, true);
  hdl::ElaboratedDesign off = elaborate();
  std::string without = render_report(off.netlist, off.options, off.cases, false);
  EXPECT_EQ(with_interning, without)
      << name << ": interned and uninterned runs must render identically";
  hdl::ElaboratedDesign per_case = elaborate();
  std::string without_batch =
      render_report(per_case.netlist, per_case.options, per_case.cases, true, false);
  EXPECT_EQ(with_interning, without_batch)
      << name << ": batch and per-case engines must render identically";
  hdl::ElaboratedDesign src = elaborate();
  CompiledDesign compiled =
      compile_design(name, src.netlist, src.options, src.cases, {});
  const std::string bytes = serialize_compiled(compiled);
  diag::DiagnosticEngine diags;
  std::optional<CompiledDesign> loaded = load_compiled(bytes, name + ".tvc", diags);
  ASSERT_TRUE(loaded.has_value()) << name << ": artifact round-trip failed";
  std::string via_artifact =
      render_report(loaded->netlist, loaded->options, loaded->cases, true);
  EXPECT_EQ(with_interning, via_artifact)
      << name << ": the compiled-artifact path must render identically";
  compare_to_golden(name, with_interning);
}

TEST(GoldenReports, RegfileExampleShdl) { check_shdl("regfile_example", false); }

TEST(GoldenReports, StdlibPipelineShdl) { check_shdl("stdlib_pipeline", true); }

// --- incremental-delta goldens (docs/incremental.md) ----------------------
//
// Each tests/golden/<design>_delta*/ directory holds a checked-in
// delta.json edit script; the golden report is what Verifier::reverify
// produces after applying it to the design's cold baseline. The render
// drops the cumulative "base events" counters -- the one legitimate
// difference between an incremental and a cold report -- so the same bytes
// also byte-compare against a from-scratch verify of the edited design,
// which the test asserts inline.
std::string render_delta_report(Netlist& nl, const VerifyResult& r) {
  std::ostringstream os;
  os << "signals " << nl.num_signals() << "  primitives " << nl.num_prims() << "\n";
  os << "converged " << (r.converged ? "yes" : "no") << "\n\n";
  os << timing_summary(nl) << "\n";
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "\n=== case \"" << c.name << "\" (" << c.events << " events, converged "
       << (c.converged ? "yes" : "no") << ") ===\n";
    os << violations_report(c.violations);
  }
  os << "\n" << cross_reference_listing(nl, r.cross_reference);
  return os.str();
}

void check_shdl_delta(const std::string& design, const std::string& dir,
                      bool with_stdlib) {
  const std::string text =
      read_file(std::string(TV_REPO_ROOT) + "/designs/" + design + ".shdl");
  ASSERT_FALSE(text.empty());
  auto elaborate = [&]() {
    return with_stdlib
               ? hdl::elaborate_sources({hdl::std_chip_library(), text})
               : hdl::elaborate_source(text);
  };
  const std::string delta_text =
      read_file(std::string(TV_GOLDEN_DIR) + "/" + dir + "/delta.json");
  ASSERT_FALSE(delta_text.empty());

  // The incremental world: cold baseline, then one reverify.
  hdl::ElaboratedDesign incr = elaborate();
  Verifier v(incr.netlist, incr.options);
  v.verify(incr.cases);
  NetlistDelta delta;
  std::string error;
  ASSERT_TRUE(parse_delta_json(delta_text, incr.netlist, &delta, &error)) << error;
  ReverifyStats st;
  VerifyResult spliced = v.reverify(delta, &st);
  EXPECT_TRUE(st.incremental) << dir << ": fell back (" << st.fallback_reason << ")";
  const std::string report = render_delta_report(incr.netlist, spliced);

  // The cold world: the same delta applied wholesale, verified from scratch.
  hdl::ElaboratedDesign cold = elaborate();
  apply_delta(cold.netlist, cold.cases, delta);
  if (!cold.netlist.finalized()) cold.netlist.finalize();
  Verifier cv(cold.netlist, cold.options);
  VerifyResult cold_result = cv.verify(cold.cases);
  EXPECT_EQ(report, render_delta_report(cold.netlist, cold_result))
      << dir << ": incremental and cold reports diverged";

  const std::string path = std::string(TV_GOLDEN_DIR) + "/" + dir + "/report.golden.txt";
  if (std::getenv("TV_UPDATE_GOLDEN") != nullptr) {
    std::string error;
    ASSERT_TRUE(tv::util::atomic_write_file(path, report, &error))
        << "cannot write " << path << ": " << error;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " -- run with TV_UPDATE_GOLDEN=1 to create it";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), report) << "report for " << dir << " diverged from " << path;
}

TEST(GoldenReports, RegfileExampleDelta1) {
  check_shdl_delta("regfile_example", "regfile_example_delta1", false);
}

TEST(GoldenReports, StdlibPipelineDelta1) {
  check_shdl_delta("stdlib_pipeline", "stdlib_pipeline_delta1", true);
}

}  // namespace
