// Tests for the min/max-based logic-simulator baseline (thesis
// sec. 1.4.1.1) -- the approach the Timing Verifier supersedes.
#include "sim/logic_sim.hpp"

#include <gtest/gtest.h>

namespace tv::sim {
namespace {

TEST(SixValueAlgebra, BasicTables) {
  EXPECT_EQ(lv_or(LV::One, LV::X), LV::One);
  EXPECT_EQ(lv_or(LV::Zero, LV::U), LV::U);
  EXPECT_EQ(lv_or(LV::U, LV::D), LV::E);  // mixed edges: potential spike
  EXPECT_EQ(lv_and(LV::Zero, LV::E), LV::Zero);
  EXPECT_EQ(lv_and(LV::One, LV::D), LV::D);
  EXPECT_EQ(lv_not(LV::U), LV::D);
  EXPECT_EQ(lv_xor(LV::One, LV::U), LV::D);
  EXPECT_EQ(lv_xor(LV::One, LV::One), LV::Zero);
  EXPECT_EQ(lv_xor(LV::X, LV::One), LV::X);
}

struct SimFixture {
  Netlist nl;
  Ref a, b, out;
  SimFixture() : a(nl.ref("A")), b(nl.ref("B")), out(nl.ref("OUT")) {
    nl.and_gate("G", from_ns(2), from_ns(5), {a, b}, out);
    nl.finalize();
  }
};

TEST(LogicSim, MinMaxDelaysProduceEdgeValues) {
  SimFixture f;
  LogicSimulator sim(f.nl);
  std::vector<Stimulus> stim = {{f.a.id, 0, LV::One},
                                {f.b.id, 0, LV::Zero},
                                {f.b.id, from_ns(10), LV::One}};
  sim.run(stim, from_ns(11.9));
  // Change at 10: U scheduled at 12, final 1 at 15. At 11.9 still 0.
  EXPECT_EQ(sim.value(f.out.id), LV::Zero);
  sim.run({}, from_ns(13));
  EXPECT_EQ(sim.value(f.out.id), LV::U);  // rising within [min,max]
  sim.run({}, from_ns(20));
  EXPECT_EQ(sim.value(f.out.id), LV::One);
}

TEST(LogicSim, RegisterCapturesOnRisingEdge) {
  Netlist nl;
  Ref d = nl.ref("D"), ck = nl.ref("CK"), q = nl.ref("Q");
  nl.reg("R", from_ns(1), from_ns(2), d, ck, q);
  nl.finalize();
  LogicSimulator sim(nl);
  std::vector<Stimulus> stim = {{d.id, 0, LV::One},
                                {ck.id, 0, LV::Zero},
                                {ck.id, from_ns(10), LV::One},
                                {d.id, from_ns(15), LV::Zero},
                                {ck.id, from_ns(20), LV::Zero}};
  sim.run(stim, from_ns(18));
  EXPECT_EQ(sim.value(q.id), LV::One);  // captured the 1, ignores d's fall
  // Second rising edge captures the 0.
  sim.run({{ck.id, from_ns(30), LV::One}}, from_ns(40));
  EXPECT_EQ(sim.value(q.id), LV::Zero);
}

TEST(LogicSim, SetupViolationOnlySeenWithTheRightVector) {
  // The thesis' key criticism of simulation-based timing verification:
  // an error on a path is detected only if the applied patterns exercise
  // that path. Data through a slow gate violates setup only when the data
  // actually toggles in the offending cycle.
  Netlist nl;
  Ref in = nl.ref("IN"), mid = nl.ref("MID"), ck = nl.ref("CK"), q = nl.ref("Q");
  nl.buf("SLOW", from_ns(8), from_ns(9), in, mid);
  nl.reg("R", from_ns(1), from_ns(2), mid, ck, q);
  nl.setup_hold_chk("CHK", from_ns(3), from_ns(1), mid, ck);
  nl.finalize();

  LogicSimulator sim(nl);
  // Quiet vector: IN settles long before the clock edge at 20 -> clean.
  std::vector<Stimulus> quiet = {{in.id, 0, LV::Zero}, {ck.id, 0, LV::Zero},
                                 {ck.id, from_ns(20), LV::One}};
  auto v1 = sim.run(quiet, from_ns(30));
  EXPECT_TRUE(v1.empty());

  // Hot vector: IN toggles at 10, MID settles at 19, edge at 20 -> setup 1 < 3.
  sim.reset();
  std::vector<Stimulus> hot = {{in.id, 0, LV::Zero}, {ck.id, 0, LV::Zero},
                               {in.id, from_ns(10), LV::One},
                               {ck.id, from_ns(20), LV::One}};
  auto v2 = sim.run(hot, from_ns(30));
  ASSERT_FALSE(v2.empty());
  EXPECT_NE(v2[0].message.find("setup"), std::string::npos);
}

TEST(LogicSim, MinPulseWidthMonitor) {
  Netlist nl;
  Ref p = nl.ref("P");
  nl.min_pulse_width_chk("W", from_ns(5), from_ns(5), p);
  nl.finalize();
  LogicSimulator sim(nl);
  std::vector<Stimulus> stim = {{p.id, 0, LV::Zero},
                                {p.id, from_ns(10), LV::One},
                                {p.id, from_ns(13), LV::Zero}};  // 3 ns pulse
  auto v = sim.run(stim, from_ns(20));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("high pulse"), std::string::npos);
}

TEST(LogicSim, PeriodicClockHelper) {
  Netlist nl;
  Ref ck = nl.ref("CK"), d = nl.ref("D"), q = nl.ref("Q");
  nl.reg("R", from_ns(1), from_ns(1), d, ck, q);
  nl.finalize();
  LogicSimulator sim(nl);
  auto stim = periodic_clock(ck.id, from_ns(50), from_ns(10), from_ns(20), 3);
  stim.push_back({d.id, 0, LV::One});
  sim.run(stim, from_ns(150));
  EXPECT_EQ(sim.value(q.id), LV::One);
  EXPECT_GE(sim.stats().events_processed, 6u);  // three rises + three falls
}

TEST(LogicSim, ExhaustiveCoverageCostGrowsWithVectors) {
  // Simulating more cycles/patterns costs proportionally more events --
  // the "exponential order" savings claim is that the Timing Verifier does
  // one symbolic cycle instead.
  Netlist nl;
  Ref ck = nl.ref("CK"), d = nl.ref("D"), q = nl.ref("Q");
  nl.reg("R", from_ns(1), from_ns(1), d, ck, q);
  nl.finalize();

  std::size_t events_small, events_large;
  {
    LogicSimulator sim(nl);
    sim.run(periodic_clock(ck.id, from_ns(50), from_ns(10), from_ns(20), 10), from_ns(500));
    events_small = sim.stats().events_processed;
  }
  {
    LogicSimulator sim(nl);
    sim.run(periodic_clock(ck.id, from_ns(50), from_ns(10), from_ns(20), 100), from_ns(5000));
    events_large = sim.stats().events_processed;
  }
  EXPECT_GE(events_large, 9 * events_small);
}

}  // namespace
}  // namespace tv::sim
