// Batch case evaluation (core/batch_eval.hpp): lane-skip correctness and
// engine equivalence. The lockstep sweep's central claim is twofold: (1) a
// lane whose inputs all still hold the base fixpoint at a primitive is
// skipped and provably keeps the base ref -- per-primitive-per-lane cone
// scoping; (2) the reports it produces are byte-identical to the per-case
// reference path, including SET/RESET and gated-clock structures where
// case pins reach sequential primitives, and for every lane-block size and
// worker count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/cone.hpp"
#include "core/snapshot.hpp"
#include "core/verifier.hpp"

namespace tv {
namespace {

using V = Value;

VerifierOptions test_options() {
  VerifierOptions opts;
  opts.period = from_ns(100.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  return opts;
}

/// Canonical rendering of a full verification for byte-compares.
std::string render(Netlist& nl, VerifierOptions opts, const std::vector<CaseSpec>& cases) {
  Verifier v(nl, opts);
  VerifyResult r = v.verify(cases);
  std::ostringstream os;
  os << "base " << r.base_events << " conv " << r.converged << " partial "
     << r.partial << "\n";
  os << timing_summary(nl);
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "case " << c.name << " events=" << c.events << " conv=" << c.converged
       << " degr=" << c.degraded << "\n"
       << violations_report(c.violations);
  }
  for (const auto& d : r.degradations) os << d.code << " " << d.message << "\n";
  return os.str();
}

// Two independent AND chains, each ending in a setup/hold check. A case on
// one chain's control must skip every primitive of the other chain.
struct TwoConeRig {
  Netlist nl;
  VerifierOptions opts = test_options();
  SignalId ctl_a = kNoSignal, out_a = kNoSignal;
  SignalId ctl_b = kNoSignal, out_b = kNoSignal;
};

TwoConeRig build_two_cones() {
  TwoConeRig r;
  for (char side : {'A', 'B'}) {
    std::string s(1, side);
    Ref ctl = r.nl.ref("CTL" + s);
    Ref in = r.nl.ref("IN" + s + " .S5-95");
    Ref mid = r.nl.ref("MID" + s);
    Ref out = r.nl.ref("OUT" + s);
    r.nl.and_gate("G1" + s, from_ns(1), from_ns(2), {ctl, in}, mid);
    r.nl.and_gate("G2" + s, from_ns(1), from_ns(2), {mid, in}, out);
    r.nl.setup_hold_chk("CHK" + s, from_ns(30), from_ns(2), out,
                        r.nl.ref("CK" + s + " .P40-50"));
    if (side == 'A') {
      r.ctl_a = ctl.id;
      r.out_a = out.id;
    } else {
      r.ctl_b = ctl.id;
      r.out_b = out.id;
    }
  }
  r.nl.finalize();
  return r;
}

// Runs one block directly through the batch engine and hands back the
// per-lane stats plus the materialized snapshots.
struct BlockRun {
  Evaluator ev;
  ConeIndex cone_index;
  std::vector<std::shared_ptr<const Cone>> cones;
  std::vector<EvalSnapshot> snaps;
  BatchBlockResult result;

  BlockRun(Netlist& nl, const VerifierOptions& opts, const std::vector<CaseSpec>& cases)
      : ev(nl, opts), cone_index(nl) {
    ev.initialize();
    ev.propagate();
    EXPECT_TRUE(ev.converged());
    for (const CaseSpec& c : cases) {
      std::vector<SignalId> pins;
      for (const auto& [sig, val] : c.pins) {
        (void)val;
        pins.push_back(sig);
      }
      cones.push_back(cone_index.cone_of(std::move(pins)));
    }
    snaps.reserve(cases.size());
    for (std::size_t l = 0; l < cases.size(); ++l) {
      snaps.emplace_back(nl, cones[l], ev.intern_context().get(), &ev.wave_refs());
    }
    BatchSchedule sched = build_batch_schedule(nl);
    result = run_case_block(nl, ev.options(), sched, *ev.intern_context(),
                            ev.wave_refs(), cases, 0, cases.size(), cones, snaps);
  }
};

TEST(BatchEval, LanesOutsideTheirConeAreSkippedAndKeepBaseRefs) {
  TwoConeRig r = build_two_cones();
  std::vector<CaseSpec> cases = {{"A=1", {{r.ctl_a, V::One}}},
                                 {"B=1", {{r.ctl_b, V::One}}},
                                 {"A=0", {{r.ctl_a, V::Zero}}}};
  BlockRun run(r.nl, r.opts, cases);
  ASSERT_TRUE(run.result.completed);
  ASSERT_EQ(run.result.lanes.size(), 3u);

  // The union sweep visits both chains; each lane must be skipped at every
  // primitive of the chain it doesn't pin (2 gates per chain).
  EXPECT_GE(run.result.lanes[0].lane_skips, 2u);  // lane A=1 skips chain B
  EXPECT_GE(run.result.lanes[1].lane_skips, 2u);  // lane B=1 skips chain A
  EXPECT_GT(run.result.lanes[0].evals, 0u);
  EXPECT_GT(run.result.lanes[1].evals, 0u);

  // Skipped lanes reuse the base refs outright: lane B=1 never wrote chain
  // A's signals, so its snapshot resolves them to the baseline's interned
  // refs (and vice versa).
  EXPECT_EQ(run.snaps[1].wave_ref(r.out_a), run.ev.wave_ref(r.out_a));
  EXPECT_EQ(run.snaps[0].wave_ref(r.out_b), run.ev.wave_ref(r.out_b));
  // Pinning CTLA=0 forces the AND chain low, so lane A=0's output genuinely
  // differs from the baseline fixpoint -- while its chain-B view does not.
  EXPECT_NE(run.snaps[2].wave_ref(r.out_a), run.ev.wave_ref(r.out_a));
  EXPECT_EQ(run.snaps[2].wave_ref(r.out_b), run.ev.wave_ref(r.out_b));
}

TEST(BatchEval, SubsetOfLanesDirtyAtASharedPrimitive) {
  // Three lanes over one shared chain: two pin its control (both values),
  // one pins an unrelated fanout-free signal. At every chain primitive the
  // unrelated lane's inputs equal base, so it is skipped there while its
  // siblings evaluate.
  TwoConeRig r = build_two_cones();
  Ref unrelated = r.nl.ref("UNRELATED");
  std::vector<CaseSpec> cases = {{"A=0", {{r.ctl_a, V::Zero}}},
                                 {"A=1", {{r.ctl_a, V::One}}},
                                 {"U=1", {{unrelated.id, V::One}}}};
  BlockRun run(r.nl, r.opts, cases);
  ASSERT_TRUE(run.result.completed);
  // UNRELATED drives nothing: the lane evaluates no primitive at all and
  // is skipped wherever its siblings made the sweep visit chain A.
  EXPECT_EQ(run.result.lanes[2].evals, 0u);
  EXPECT_GE(run.result.lanes[2].lane_skips, 2u);
  // Only the pinned signal itself is disturbed; every derived signal in the
  // lane's view is still the baseline ref.
  EXPECT_EQ(run.snaps[2].disturbed_signals(), 1u);
  EXPECT_EQ(run.snaps[2].wave_ref(r.out_a), run.ev.wave_ref(r.out_a));
  // Pinning the control low disturbs the chain beyond the pin itself.
  EXPECT_GT(run.snaps[0].disturbed_signals(), 1u);
}

// SET/RESET register rig: cases pin the asynchronous SET and RESET controls
// of a RegSR whose output feeds a setup/hold check.
struct RegSrRig {
  Netlist nl;
  VerifierOptions opts = test_options();
  SignalId set = kNoSignal, reset = kNoSignal;
  std::vector<CaseSpec> cases;
};

RegSrRig build_reg_sr() {
  RegSrRig r;
  Ref d = r.nl.ref("D .S10-60");
  Ref ck = r.nl.ref("CK .P40-50");
  Ref set = r.nl.ref("SET");
  Ref reset = r.nl.ref("RESET");
  Ref q = r.nl.ref("Q");
  r.nl.reg_sr("REG", from_ns(2), from_ns(5), d, ck, set, reset, q);
  Ref q2 = r.nl.ref("Q2");
  r.nl.buf("BUF", from_ns(1), from_ns(2), q, q2);
  r.nl.setup_hold_chk("CHK", from_ns(20), from_ns(3), q2, ck);
  r.nl.finalize();
  r.set = set.id;
  r.reset = reset.id;
  for (V sv : {V::Zero, V::One}) {
    for (V rv : {V::Zero, V::One}) {
      r.cases.push_back({std::string("SET=") + (sv == V::One ? "1" : "0") +
                             ",RESET=" + (rv == V::One ? "1" : "0"),
                         {{r.set, sv}, {r.reset, rv}}});
    }
  }
  return r;
}

TEST(BatchEval, RegSrSetResetLanesMatchReferencePath) {
  RegSrRig a = build_reg_sr();
  VerifierOptions batch = a.opts;
  batch.batch_eval = true;
  std::string with_batch = render(a.nl, batch, a.cases);

  RegSrRig b = build_reg_sr();
  VerifierOptions per_case = b.opts;
  per_case.batch_eval = false;
  std::string without = render(b.nl, per_case, b.cases);
  EXPECT_EQ(with_batch, without);
}

TEST(BatchEval, GatedClockLanesMatchReferencePath) {
  // A register clocked through an AND gate: pinning the enable changes the
  // clock waveform itself, so the case reaches a sequential primitive and
  // its setup/hold checker through a recomputed clock.
  auto build = [](VerifierOptions& opts, std::vector<CaseSpec>& cases) {
    Netlist nl;
    Ref ck = nl.ref("CK .P40-50");
    Ref en = nl.ref("EN");
    Ref gck = nl.ref("GCK");
    nl.and_gate("GATE", from_ns(1), from_ns(2), {ck, en}, gck);
    Ref d = nl.ref("D .S10-60");
    Ref q = nl.ref("Q");
    nl.reg("REG", from_ns(2), from_ns(5), d, gck, q);
    nl.setup_hold_chk("CHK", from_ns(20), from_ns(3), d, gck);
    nl.finalize();
    cases = {{"EN=0", {{en.id, V::Zero}}}, {"EN=1", {{en.id, V::One}}}};
    (void)opts;
    return nl;
  };
  VerifierOptions opts = test_options();
  std::vector<CaseSpec> cases;
  Netlist nl_on = build(opts, cases);
  VerifierOptions batch = opts;
  batch.batch_eval = true;
  std::string with_batch = render(nl_on, batch, cases);
  Netlist nl_off = build(opts, cases);
  VerifierOptions per_case = opts;
  per_case.batch_eval = false;
  std::string without = render(nl_off, per_case, cases);
  EXPECT_EQ(with_batch, without);
}

TEST(BatchEval, ReportsInvariantUnderLaneBlockSizeAndJobs) {
  // The --batch-lanes knob and the worker count are pure partitioning
  // choices: every (lanes, jobs) combination must render identically.
  RegSrRig ref_rig = build_reg_sr();
  std::string reference = render(ref_rig.nl, ref_rig.opts, ref_rig.cases);
  for (unsigned lanes : {1u, 3u, 64u}) {
    for (unsigned jobs : {1u, 4u}) {
      RegSrRig r = build_reg_sr();
      VerifierOptions opts = r.opts;
      opts.batch_lanes = lanes;
      opts.jobs = jobs;
      EXPECT_EQ(render(r.nl, opts, r.cases), reference)
          << "lanes=" << lanes << " jobs=" << jobs;
    }
  }
}

TEST(BatchEval, ScheduleCoversEveryNonCheckerPrimitiveOnce) {
  TwoConeRig r = build_two_cones();
  BatchSchedule sched = build_batch_schedule(r.nl);
  std::vector<int> seen(r.nl.num_prims(), 0);
  for (const auto& comp : sched.components) {
    for (PrimId pid : comp.prims) {
      EXPECT_FALSE(prim_is_checker(r.nl.prim(pid).kind));
      ++seen[pid];
    }
  }
  for (PrimId pid = 0; pid < r.nl.num_prims(); ++pid) {
    EXPECT_EQ(seen[pid], prim_is_checker(r.nl.prim(pid).kind) ? 0 : 1) << pid;
  }
}

}  // namespace
}  // namespace tv
