// Parallel case analysis: every case runs on a cone-scoped copy-on-write
// snapshot of the baseline fixpoint, so VerifyResults must be identical for
// every worker count, case reports must be byte-stable, and the shared
// netlist must be left holding the baseline fixpoint.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "gen/regfile_example.hpp"

namespace tv {
namespace {

using V = Value;

bool violation_eq(const Violation& a, const Violation& b) {
  return a.type == b.type && a.prim == b.prim && a.signal == b.signal &&
         a.missed_by == b.missed_by && a.message == b.message;
}

bool violation_key_le(const Violation& a, const Violation& b) {
  return std::tie(a.missed_by, a.signal, a.type, a.prim, a.message) <=
         std::tie(b.missed_by, b.signal, b.type, b.prim, b.message);
}

void expect_same_result(const VerifyResult& a, const VerifyResult& b, const char* what) {
  EXPECT_EQ(a.base_events, b.base_events) << what;
  EXPECT_EQ(a.base_evals, b.base_evals) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
  ASSERT_EQ(a.violations.size(), b.violations.size()) << what;
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_TRUE(violation_eq(a.violations[i], b.violations[i])) << what << " base #" << i;
  }
  ASSERT_EQ(a.cases.size(), b.cases.size()) << what;
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_EQ(a.cases[i].name, b.cases[i].name) << what;
    EXPECT_EQ(a.cases[i].events, b.cases[i].events) << what << " case " << a.cases[i].name;
    EXPECT_EQ(a.cases[i].converged, b.cases[i].converged) << what;
    ASSERT_EQ(a.cases[i].violations.size(), b.cases[i].violations.size())
        << what << " case " << a.cases[i].name;
    for (std::size_t j = 0; j < a.cases[i].violations.size(); ++j) {
      EXPECT_TRUE(violation_eq(a.cases[i].violations[j], b.cases[i].violations[j]))
          << what << " case " << a.cases[i].name << " #" << j;
    }
  }
}

void expect_jobs_equivalence(Netlist& nl, VerifierOptions opts,
                             const std::vector<CaseSpec>& cases, const char* what) {
  opts.jobs = 1;
  Verifier ref(nl, opts);
  VerifyResult baseline = ref.verify(cases);
  for (unsigned jobs : {2u, 4u, 8u}) {
    VerifierOptions jopts = opts;
    jopts.jobs = jobs;
    Verifier v(nl, jopts);
    VerifyResult r = v.verify(cases);
    expect_same_result(baseline, r, what);
  }
  // Reports must arrive pre-sorted by the documented deterministic key.
  for (const auto& c : baseline.cases) {
    EXPECT_TRUE(std::is_sorted(c.violations.begin(), c.violations.end(), violation_key_le))
        << what << " case " << c.name;
  }
}

// The Fig 2-6 cascaded-mux circuit of test_case_analysis, with the internal
// nodes kept so cases can pin signals at several cone depths.
struct Fig26 {
  Netlist nl;
  VerifierOptions opts;
  Ref input, control, slow1, m1, slow2, output;
};

Fig26 build_fig26() {
  Fig26 c;
  c.opts.period = from_ns(100.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Netlist& nl = c.nl;
  c.input = nl.ref("INPUT .S10-105");
  c.control = nl.ref("CONTROL SIGNAL");
  c.slow1 = nl.ref("SLOW1");
  nl.buf("EXTRA DELAY 1", from_ns(10), from_ns(10), c.input, c.slow1);
  c.m1 = nl.ref("M1");
  nl.mux2("MUX 1", from_ns(10), from_ns(10), c.control, c.input, c.slow1, c.m1);
  c.slow2 = nl.ref("SLOW2");
  nl.buf("EXTRA DELAY 2", from_ns(10), from_ns(10), c.m1, c.slow2);
  c.output = nl.ref("OUTPUT");
  nl.mux2("MUX 2", from_ns(10), from_ns(10), nl.ref("- CONTROL SIGNAL"), c.m1, c.slow2,
          c.output);
  // A checker so cases produce violations to compare byte-for-byte.
  nl.setup_hold_chk("OUT CHK", from_ns(60), from_ns(5), c.output,
                    nl.ref("CAPTURE CLK .P90-91"));
  c.nl.finalize();
  return c;
}

std::vector<CaseSpec> fig26_cases(const Fig26& c) {
  std::vector<CaseSpec> cases;
  for (V v : {V::Zero, V::One}) {
    char letter = v == V::Zero ? '0' : '1';
    cases.push_back({std::string("CONTROL=") + letter, {{c.control.id, v}}});
    cases.push_back({std::string("M1=") + letter, {{c.m1.id, v}}});
    cases.push_back({std::string("SLOW1=") + letter, {{c.slow1.id, v}}});
    cases.push_back(
        {std::string("CONTROL=M1=") + letter, {{c.control.id, v}, {c.m1.id, v}}});
  }
  return cases;
}

TEST(ParallelCases, Fig26IdenticalAcrossJobCounts) {
  Fig26 c = build_fig26();
  std::vector<CaseSpec> cases = fig26_cases(c);
  ASSERT_GE(cases.size(), 8u);
  expect_jobs_equivalence(c.nl, c.opts, cases, "fig26");
}

TEST(ParallelCases, RegfileIdenticalAcrossJobCounts) {
  Netlist nl;
  gen::RegfileExample rf = gen::build_regfile_example(nl);
  std::vector<CaseSpec> cases;
  for (int bits = 0; bits < 8; ++bits) {
    CaseSpec c;
    c.name = "RF CASE " + std::to_string(bits);
    c.pins = {{rf.adr, (bits & 1) ? V::One : V::Zero},
              {rf.we, (bits & 2) ? V::One : V::Zero},
              {rf.ram_out, (bits & 4) ? V::One : V::Zero}};
    cases.push_back(std::move(c));
  }
  expect_jobs_equivalence(nl, rf.options, cases, "regfile");
}

TEST(ParallelCases, CaseViolationsMatchAnUnscopedFullCheck) {
  // The cone-scoped check + baseline reuse must reproduce exactly what a
  // from-scratch sequential evaluation of the pinned circuit reports.
  Fig26 c = build_fig26();
  std::vector<CaseSpec> cases = fig26_cases(c);
  c.opts.jobs = 4;
  Verifier v(c.nl, c.opts);
  VerifyResult r = v.verify(cases);

  for (std::size_t i = 0; i < cases.size(); ++i) {
    Fig26 fresh = build_fig26();
    Evaluator ev(fresh.nl, fresh.opts);
    ev.initialize();
    ev.propagate();
    ev.apply_case(cases[i]);  // same pins resolve to same ids in the clone
    std::vector<Violation> expect = run_checks(ev);
    sort_violations(expect);
    ASSERT_EQ(r.cases[i].violations.size(), expect.size()) << cases[i].name;
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_TRUE(violation_eq(r.cases[i].violations[j], expect[j]))
          << cases[i].name << " #" << j;
    }
  }
}

TEST(ParallelCases, NetlistKeepsBaselineFixpointAfterCases) {
  Fig26 c = build_fig26();
  Verifier v(c.nl, c.opts);
  VerifyResult base = v.verify();
  Waveform base_out = c.nl.signal(c.output.id).wave;

  VerifyResult with_cases = v.verify(fig26_cases(c));
  EXPECT_EQ(c.nl.signal(c.output.id).wave, base_out);
  EXPECT_EQ(with_cases.base_events, base.base_events);
}

TEST(ParallelCases, RejectsBadCaseValuesBeforeSpawningWorkers) {
  Fig26 c = build_fig26();
  c.opts.jobs = 4;
  Verifier v(c.nl, c.opts);
  std::vector<CaseSpec> cases = {{"ok", {{c.control.id, V::Zero}}},
                                 {"bad", {{c.control.id, V::Change}}}};
  EXPECT_THROW(v.verify(cases), std::invalid_argument);
}

TEST(ParallelCases, SortedViolationRegression) {
  // Two checkers whose violations would naturally be reported in prim-id
  // order; the (missed-by, signal, kind) sort must order the smaller miss
  // first even though its checker has the higher prim id.
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(100.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Ref ctl = nl.ref("CTL .S10-90");  // changing across the cycle wrap
  Ref d1 = nl.ref("D1");
  nl.buf("B1", from_ns(30), from_ns(40), ctl, d1);
  Ref d2 = nl.ref("D2");
  nl.buf("B2", from_ns(10), from_ns(20), ctl, d2);
  Ref ck = nl.ref("CK .P50-51");
  // Prim-id order: CHK BIG (missed more) before CHK SMALL (missed less).
  nl.setup_hold_chk("CHK BIG", from_ns(45), 0, d1, ck);
  nl.setup_hold_chk("CHK SMALL", from_ns(45), 0, d2, ck);
  nl.finalize();

  opts.jobs = 2;
  Verifier v(nl, opts);
  // Under CTL=1 the stable window becomes solid 1 but the wrap-around
  // change region remains; the two delayed copies settle at 50 ns and
  // 30 ns, missing the 45 ns setup by 45 and 25 respectively.
  VerifyResult r = v.verify({{"CTL=1", {{ctl.id, V::One}}}});
  ASSERT_EQ(r.cases.size(), 1u);
  const auto& vs = r.cases[0].violations;
  ASSERT_GE(vs.size(), 2u);
  EXPECT_TRUE(std::is_sorted(vs.begin(), vs.end(), violation_key_le));
  for (std::size_t i = 1; i < vs.size(); ++i) {
    EXPECT_LE(vs[i - 1].missed_by, vs[i].missed_by);
  }
}

}  // namespace
}  // namespace tv
