// Property tests of the waveform algebra against brute-force sampled
// references. Waveforms are generated from deterministic seeds (an LCG) and
// every property is checked by dense sampling across the period, so these
// tests exercise interval arithmetic, wrap handling and skew incorporation
// far beyond the hand-written cases.
#include <gtest/gtest.h>

#include "core/waveform.hpp"

namespace tv {
namespace {

using V = Value;

constexpr Time P = from_ns(50.0);
constexpr Time kStep = from_ns(0.25);  // sampling grid

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  Time time(Time lo, Time hi) { return lo + static_cast<Time>(next() % static_cast<std::uint64_t>(hi - lo)); }
  Value value() {
    static const V vals[] = {V::Zero, V::One, V::Stable, V::Change, V::Rise, V::Fall, V::Unknown};
    return vals[next() % 7];
  }

 private:
  std::uint64_t state_;
};

Waveform random_wave(Lcg& rng, int segments) {
  Waveform w(P, rng.value());
  for (int i = 0; i < segments; ++i) {
    Time b = rng.time(0, P);
    Time width = rng.time(1, P / 2);
    w.set(b, b + width, rng.value());
  }
  return w;
}

class WaveformProperty : public ::testing::TestWithParam<int> {};

TEST_P(WaveformProperty, WidthsSumToPeriod) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  Waveform w = random_wave(rng, 8);
  Time sum = 0;
  for (const auto& s : w.segments()) {
    EXPECT_GT(s.width, 0);
    sum += s.width;
  }
  EXPECT_EQ(sum, P);
}

TEST_P(WaveformProperty, NormalizationMergesAdjacentEqualValues) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  Waveform w = random_wave(rng, 8);
  const auto& segs = w.segments();
  for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_NE(segs[i].value, segs[i + 1].value) << "unmerged adjacent segments";
  }
}

TEST_P(WaveformProperty, BinaryOpIsPointwise) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  Waveform a = random_wave(rng, 6);
  Waveform b = random_wave(rng, 6);
  for (auto op : {value_or, value_and, value_xor, value_chg}) {
    Waveform c = Waveform::binary(a, b, op);
    for (Time t = 0; t < P; t += kStep) {
      ASSERT_EQ(c.at(t), op(a.at(t), b.at(t))) << "t=" << to_ns(t);
    }
  }
}

TEST_P(WaveformProperty, TernaryOpIsPointwise) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  Waveform a = random_wave(rng, 5);
  Waveform b = random_wave(rng, 5);
  Waveform c = random_wave(rng, 5);
  Waveform m = Waveform::ternary(a, b, c, value_mux);
  for (Time t = 0; t < P; t += kStep) {
    ASSERT_EQ(m.at(t), value_mux(a.at(t), b.at(t), c.at(t))) << "t=" << to_ns(t);
  }
}

TEST_P(WaveformProperty, DelayIsCircularShift) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  Waveform w = random_wave(rng, 6);
  Time dmin = rng.time(0, P);
  Time extra = rng.time(0, from_ns(5));
  Waveform d = w.delayed(dmin, dmin + extra);
  for (Time t = 0; t < P; t += kStep) {
    ASSERT_EQ(d.at(t), w.at(t - dmin)) << "t=" << to_ns(t);
  }
  EXPECT_EQ(d.skew(), w.skew() + extra);
}

// Covering relation: does symbolic value v soundly describe observed w?
bool covers(Value v, Value w) {
  if (v == w) return true;
  switch (v) {
    case V::Unknown: return true;  // unknown covers anything
    case V::Change: return w != V::Unknown;
    case V::Rise: return w == V::Zero || w == V::One || w == V::Rise;
    case V::Fall: return w == V::Zero || w == V::One || w == V::Fall;
    case V::Stable: return w == V::Zero || w == V::One;
    default: return false;
  }
}

TEST_P(WaveformProperty, SkewIncorporationIsSound) {
  // For every instant t and every delay d in [0, skew], the folded value at
  // t must cover the base value at t - d: the folded waveform soundly
  // describes every physical realization of the variable delay.
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  Waveform w = random_wave(rng, 5);
  Time skew = rng.time(1, from_ns(8));
  w.set_skew(skew);
  Waveform f = w.with_skew_incorporated();
  EXPECT_EQ(f.skew(), 0);
  for (Time t = 0; t < P; t += kStep) {
    for (Time d = 0; d <= skew; d += kStep) {
      ASSERT_TRUE(covers(f.at(t), w.at(t - d)))
          << "t=" << to_ns(t) << " d=" << to_ns(d) << " folded=" << value_letter(f.at(t))
          << " base=" << value_letter(w.at(t - d));
    }
  }
}

TEST_P(WaveformProperty, ValueMaskMatchesSampling) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  Waveform w = random_wave(rng, 6);
  Time b = rng.time(0, P);
  Time width = rng.time(1, P);
  std::uint8_t mask = w.value_mask(b, b + width);
  std::uint8_t sampled = 0;
  for (Time t = b; t < b + width; t += 1) {  // every picosecond would be slow;
    sampled |= static_cast<std::uint8_t>(1u << static_cast<int>(w.at(t)));
    t += kStep - 1;
  }
  // Every sampled value must be in the mask (the mask may contain values
  // from sub-sample slivers).
  EXPECT_EQ(sampled & ~mask, 0);
}

TEST_P(WaveformProperty, SetThenReadBack) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  Waveform w = random_wave(rng, 4);
  Time b = rng.time(0, P);
  Time width = rng.time(1, P - 1);
  Value v = rng.value();
  Waveform before = w;
  w.set(b, b + width, v);
  for (Time t = 0; t < P; t += kStep) {
    Time rel = floor_mod(t - b, P);
    if (rel < width) {
      ASSERT_EQ(w.at(t), v) << "inside interval, t=" << to_ns(t);
    } else {
      ASSERT_EQ(w.at(t), before.at(t)) << "outside interval, t=" << to_ns(t);
    }
  }
}

TEST_P(WaveformProperty, ReplacedOnlyTouchesTarget) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  Waveform w = random_wave(rng, 6);
  Waveform r = w.replaced(V::Stable, V::One);
  for (Time t = 0; t < P; t += kStep) {
    if (w.at(t) == V::Stable) {
      ASSERT_EQ(r.at(t), V::One);
    } else {
      ASSERT_EQ(r.at(t), w.at(t));
    }
  }
}

TEST_P(WaveformProperty, BoundariesMatchValueChanges) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  Waveform w = random_wave(rng, 6);
  auto bs = w.boundaries();
  for (const auto& b : bs) {
    ASSERT_EQ(w.at(b.time), b.to);
    ASSERT_EQ(w.at(b.time - 1), b.from);
  }
  // Count of value changes when sweeping equals the boundary count.
  std::size_t changes = 0;
  for (Time t = 0; t < P; t += 1) {
    if (w.at(t) != w.at(t - 1)) ++changes;
    Value cur = w.at(t);
    // jump to next segment boundary for speed
    Time acc = 0;
    for (const auto& s : w.segments()) {
      acc += s.width;
      if (t < acc) {
        t = acc - 1;
        break;
      }
    }
    (void)cur;
  }
  EXPECT_EQ(changes, bs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveformProperty, ::testing::Range(1, 21));

}  // namespace
}  // namespace tv
