// Tests for the circuit data model: reference identity, builder
// validation, finalize() structural checks, and the Table 3-2 style
// statistics the netlist carries.
#include "core/netlist.hpp"

#include <gtest/gtest.h>

namespace tv {
namespace {

TEST(Netlist, RefIdentityIsFullName) {
  Netlist nl;
  Ref a1 = nl.ref("MEM CLK .P2-3");
  Ref a2 = nl.ref("MEM CLK .P2-3");
  Ref b = nl.ref("MEM CLK .P2-4");  // different assertion -> different signal
  EXPECT_EQ(a1.id, a2.id);
  EXPECT_NE(a1.id, b.id);
  EXPECT_EQ(nl.find("MEM CLK .P2-3"), a1.id);
  EXPECT_EQ(nl.find("NOPE"), kNoSignal);
}

TEST(Netlist, ComplementDoesNotCreateNewSignal) {
  Netlist nl;
  Ref pos = nl.ref("WE");
  Ref neg = nl.ref("- WE");
  EXPECT_EQ(pos.id, neg.id);
  EXPECT_FALSE(pos.invert);
  EXPECT_TRUE(neg.invert);
}

TEST(Netlist, WidthGrowsToWidestReference) {
  Netlist nl;
  Ref a = nl.ref("BUS", 8);
  nl.ref("BUS", 16);
  nl.ref("BUS", 4);
  EXPECT_EQ(nl.signal(a.id).width, 16);
}

TEST(Netlist, FinalizeRejectsMultipleDrivers) {
  Netlist nl;
  Ref out = nl.ref("X");
  nl.buf("B1", 0, 0, nl.ref("A"), out);
  nl.buf("B2", 0, 0, nl.ref("B"), out);
  EXPECT_THROW(nl.finalize(), std::logic_error);
}

TEST(Netlist, FinalizeRejectsDrivenClockAssertion) {
  // A clock assertion *defines* the waveform; driving the same signal
  // would make verification circular.
  Netlist nl;
  Ref ck = nl.ref("CK .P2-3");
  nl.buf("B", 0, 0, nl.ref("A"), ck);
  EXPECT_THROW(nl.finalize(), std::logic_error);
}

TEST(Netlist, DrivenStableAssertionIsAllowed) {
  // Stable assertions on generated signals are checked, not seeds.
  Netlist nl;
  nl.buf("B", 0, 0, nl.ref("A .S0-4"), nl.ref("OUT .S1-6"));
  EXPECT_NO_THROW(nl.finalize());
}

TEST(Netlist, FinalizeRejectsWrongPinCounts) {
  {
    Netlist nl;
    Primitive p;
    p.kind = PrimKind::Mux2;
    p.name = "M";
    p.inputs = {Pin{nl.ref("A").id, false, ""}};  // needs 3
    p.output = nl.ref("Q").id;
    nl.add_prim(std::move(p));
    EXPECT_THROW(nl.finalize(), std::logic_error);
  }
  {
    Netlist nl;
    Primitive p;
    p.kind = PrimKind::Reg;
    p.name = "R";
    p.inputs = {Pin{nl.ref("D").id, false, ""}, Pin{nl.ref("CK").id, false, ""}};
    // no output
    nl.add_prim(std::move(p));
    EXPECT_THROW(nl.finalize(), std::logic_error);
  }
}

TEST(Netlist, CheckersMustNotDrive) {
  Netlist nl;
  Primitive p;
  p.kind = PrimKind::SetupHoldChk;
  p.name = "C";
  p.inputs = {Pin{nl.ref("D").id, false, ""}, Pin{nl.ref("CK").id, false, ""}};
  p.output = nl.ref("Q").id;
  nl.add_prim(std::move(p));
  EXPECT_THROW(nl.finalize(), std::logic_error);
}

TEST(Netlist, FanoutCallListsAreComputed) {
  Netlist nl;
  Ref a = nl.ref("A");
  PrimId b1 = nl.buf("B1", 0, 0, a, nl.ref("X"));
  PrimId b2 = nl.buf("B2", 0, 0, a, nl.ref("Y"));
  nl.or_gate("G", 0, 0, {nl.ref("X"), nl.ref("Y")}, nl.ref("Z"));
  nl.finalize();
  const auto& fo = nl.signal(a.id).fanout;
  ASSERT_EQ(fo.size(), 2u);
  EXPECT_EQ(fo[0], b1);
  EXPECT_EQ(fo[1], b2);
  EXPECT_EQ(nl.signal(nl.find("X")).driver, b1);
}

TEST(Netlist, InvalidDelayRangesThrowOnConstruction) {
  Netlist nl;
  EXPECT_THROW(nl.buf("B", from_ns(3), from_ns(2), nl.ref("A"), nl.ref("X")),
               std::invalid_argument);
  EXPECT_THROW(nl.set_wire_delay(nl.ref("A").id, from_ns(2), from_ns(1)),
               std::invalid_argument);
}

TEST(Netlist, OutputComplementRejected) {
  Netlist nl;
  EXPECT_THROW(nl.buf("B", 0, 0, nl.ref("A"), nl.ref("- X")), std::invalid_argument);
}

TEST(Netlist, RefinalizeAfterEditing) {
  Netlist nl;
  Ref a = nl.ref("A");
  nl.buf("B1", 0, 0, a, nl.ref("X"));
  nl.finalize();
  EXPECT_TRUE(nl.finalized());
  nl.buf("B2", 0, 0, nl.ref("X"), nl.ref("Y"));
  EXPECT_FALSE(nl.finalized());  // adding invalidates
  nl.finalize();
  EXPECT_EQ(nl.signal(nl.find("X")).fanout.size(), 1u);
}

TEST(Netlist, PrimKindNames) {
  EXPECT_EQ(prim_kind_name(PrimKind::RegSR), "REG RS");
  EXPECT_EQ(prim_kind_name(PrimKind::Mux8), "8 MUX");
  EXPECT_EQ(prim_kind_name(PrimKind::SetupHoldChk), "SETUP HOLD CHK");
  EXPECT_TRUE(prim_is_checker(PrimKind::MinPulseWidthChk));
  EXPECT_FALSE(prim_is_checker(PrimKind::Latch));
}

}  // namespace
}  // namespace tv
