// Unit tests for the deterministic fault-injection layer (util/fault.hpp):
// spec parsing, the fire-exactly-once-at-the-Nth-hit contract, the throwing
// check() wrapper, and the disabled fast path. The abort/hang actions are
// process-fatal by design; their end-to-end behavior is covered by the
// scaldtvd supervisor tests and tvfuzz --serve-chaos.
#include "util/fault.hpp"

#include <gtest/gtest.h>

namespace tv::fault {
namespace {

// The fault plan is process-global; every test starts and ends clean so
// ordering between tests (and with the rest of the suite) cannot matter.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FaultTest, DisabledByDefault) {
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(should_fail("evaluator.eval"));
  EXPECT_EQ(describe(), "off");
  EXPECT_NO_THROW(check("evaluator.eval"));
}

TEST_F(FaultTest, FiresExactlyOnceAtTheNthHit) {
  ASSERT_TRUE(configure("evaluator.eval@3:fail"));
  EXPECT_TRUE(enabled());
  EXPECT_FALSE(should_fail("evaluator.eval"));  // hit 1
  EXPECT_FALSE(should_fail("evaluator.eval"));  // hit 2
  EXPECT_TRUE(should_fail("evaluator.eval"));   // hit 3: fires
  EXPECT_FALSE(should_fail("evaluator.eval"));  // hit 4: armed once only
  EXPECT_EQ(hits("evaluator.eval"), 4u);
}

TEST_F(FaultTest, SitesAreIndependent) {
  ASSERT_TRUE(configure("io.read@1:fail,snapshot.case@2:fail"));
  EXPECT_FALSE(should_fail("snapshot.case"));
  EXPECT_TRUE(should_fail("io.read"));
  EXPECT_TRUE(should_fail("snapshot.case"));
  // A site with no plan entry is never counted and never fires.
  EXPECT_FALSE(should_fail("wave_table.intern"));
  EXPECT_EQ(hits("wave_table.intern"), 0u);
}

TEST_F(FaultTest, CheckThrowsInjectedFault) {
  ASSERT_TRUE(configure("wave_table.intern@1:fail"));
  EXPECT_THROW(check("wave_table.intern"), InjectedFault);
  EXPECT_NO_THROW(check("wave_table.intern"));  // fired once only
}

TEST_F(FaultTest, DescribeRoundTripsThePlan) {
  ASSERT_TRUE(configure("evaluator.eval@40:abort,serve.spawn@2:hang"));
  EXPECT_EQ(describe(), "evaluator.eval@40:abort,serve.spawn@2:hang");
  reset();
  EXPECT_EQ(describe(), "off");
}

TEST_F(FaultTest, MalformedSpecsAreRejectedWithAMessage) {
  const char* bad[] = {
      "evaluator.eval",           // no @N:action
      "@1:fail",                  // empty site
      "io.read@:fail",            // missing hit count
      "io.read@0:fail",           // hit counts are 1-based
      "io.read@x:fail",           // non-numeric hit count
      "io.read@1:explode",        // unknown action
      "io.read@1:fail,bogus",     // one bad entry poisons the spec
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(configure(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_FALSE(enabled()) << spec;
  }
}

TEST_F(FaultTest, RejectedSpecLeavesThePreviousPlanActive) {
  ASSERT_TRUE(configure("io.read@1:fail"));
  EXPECT_FALSE(configure("nonsense"));
  EXPECT_TRUE(enabled());
  EXPECT_TRUE(should_fail("io.read"));
}

TEST_F(FaultTest, EmptySpecClearsThePlan) {
  ASSERT_TRUE(configure("io.read@1:fail"));
  ASSERT_TRUE(configure(""));
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace tv::fault
