// Tests for the sec. 4.2.2 extension: different rising and falling delays
// (nMOS-style technologies). Output changes toward 1 use the rise delays,
// changes toward 0 the fall delays; polarity-unknown changes use the
// combined worst-case window. Inverters compose correctly because the
// delay is applied to the *output* waveform.
#include <gtest/gtest.h>

#include "core/primitives.hpp"
#include "core/verifier.hpp"

namespace tv {
namespace {

using V = Value;
constexpr Time P = from_ns(50.0);

Waveform pulse(Time rise, Time fall) {
  Waveform w(P, V::Zero);
  w.set(rise, fall, V::One);
  return w;
}

TEST(RiseFall, WaveformEdgesGetPolarityDelays) {
  // Rise delayed 2-3 ns, fall delayed 8-10 ns: the pulse *widens*.
  Waveform w = pulse(from_ns(10), from_ns(20));
  Waveform d = w.delayed_rise_fall(from_ns(2), from_ns(3), from_ns(8), from_ns(10));
  EXPECT_EQ(d.at(from_ns(11)), V::Zero);
  EXPECT_EQ(d.at(from_ns(12)), V::Rise);    // rising window [12, 13)
  EXPECT_EQ(d.at(from_ns(13)), V::One);
  EXPECT_EQ(d.at(from_ns(27)), V::One);     // still high: fall delayed to 28
  EXPECT_EQ(d.at(from_ns(28)), V::Fall);    // falling window [28, 30)
  EXPECT_EQ(d.at(from_ns(29)), V::Fall);
  EXPECT_EQ(d.at(from_ns(30)), V::Zero);
  EXPECT_EQ(d.skew(), 0);  // per-edge uncertainty lives in the value list
}

TEST(RiseFall, NarrowPulseCollapsesToChange) {
  // A 3 ns pulse with fall faster than rise: the windows overlap and the
  // pulse may vanish -- the overlap must read CHANGE.
  Waveform w = pulse(from_ns(10), from_ns(13));
  Waveform d = w.delayed_rise_fall(from_ns(6), from_ns(8), from_ns(1), from_ns(2));
  // Rise window [16, 18); fall window [14, 15): the fall lands *before*
  // the rise -- thoroughly ambiguous region.
  std::uint8_t mask = d.value_mask(from_ns(14), from_ns(18));
  EXPECT_NE(mask & (1u << static_cast<int>(V::Change)), 0) << d.to_string();
}

TEST(RiseFall, EqualDelaysMatchPlainDelay) {
  // Degenerate property: rise == fall must agree with delayed() once skew
  // is incorporated.
  Waveform w = pulse(from_ns(10), from_ns(20));
  Waveform a = w.delayed_rise_fall(from_ns(2), from_ns(4), from_ns(2), from_ns(4));
  Waveform b = w.delayed(from_ns(2), from_ns(4)).with_skew_incorporated();
  EXPECT_EQ(a, b);
}

TEST(RiseFall, InverterSwapsEdgeDelays) {
  // The inverter's *output* falls when its input rises, so the input rise
  // takes the fall delay -- automatic, because delays apply to the output.
  Netlist nl;
  Ref in = nl.ref("IN .P10-30");
  Ref out = nl.ref("OUT");
  PrimId inv = nl.not_gate("INV", from_ns(1), from_ns(1), in, out);
  nl.set_rise_fall(inv, RiseFallDelay{from_ns(1), from_ns(1), from_ns(9), from_ns(9)});
  nl.finalize();
  VerifierOptions opts;
  opts.period = P;
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = {0, 0};
  opts.assertion_defaults = {0, 0, 0, 0};
  Evaluator ev(nl, opts);
  ev.initialize();
  ev.propagate();
  const Waveform& o = ev.wave(out.id);
  // Input rises at 10 -> output falls at 10+9=19; input falls at 30 ->
  // output rises at 30+1=31.
  EXPECT_EQ(o.at(from_ns(18)), V::One);
  EXPECT_EQ(o.at(from_ns(19)), V::Zero);
  EXPECT_EQ(o.at(from_ns(30)), V::Zero);
  EXPECT_EQ(o.at(from_ns(31)), V::One);
}

TEST(RiseFall, PessimismReductionOnInvertingChain) {
  // Sec. 4.2.2's motivation: through an *even* chain of inverters, each
  // output edge alternates polarity, so the worst path alternates rise and
  // fall delays: 2 * (rise + fall) -- not 4 * max(rise, fall), which the
  // single-delay model must assume.
  auto build = [](bool use_rf, SignalId& out_id) {
    auto nl = std::make_unique<Netlist>();
    Ref cur = nl->ref("IN .P10-35");
    for (int i = 0; i < 4; ++i) {
      Ref next = nl->ref("N" + std::to_string(i));
      PrimId g = nl->not_gate("I" + std::to_string(i), from_ns(7), from_ns(7), cur, next);
      if (use_rf) {
        nl->set_rise_fall(g, RiseFallDelay{from_ns(2), from_ns(2), from_ns(7), from_ns(7)});
      }
      cur = next;
    }
    out_id = cur.id;
    nl->finalize();
    return nl;
  };
  VerifierOptions opts;
  opts.period = P;
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = {0, 0};
  opts.assertion_defaults = {0, 0, 0, 0};

  SignalId out_rf, out_plain;
  auto nl_rf = build(true, out_rf);
  auto nl_plain = build(false, out_plain);
  Evaluator e1(*nl_rf, opts), e2(*nl_plain, opts);
  e1.initialize();
  e1.propagate();
  e2.initialize();
  e2.propagate();
  // Rise arrives through 2 rise + 2 fall = 2*2 + 2*7 = 18 ns after input
  // rise; the single-delay model charges 4*7 = 28 ns.
  EXPECT_EQ(e1.wave(out_rf).at(from_ns(10 + 18)), V::One);
  EXPECT_EQ(e1.wave(out_rf).at(from_ns(10 + 17)), V::Zero);
  EXPECT_EQ(e2.wave(out_plain).at(from_ns(10 + 28)), V::One);
  EXPECT_EQ(e2.wave(out_plain).at(from_ns(10 + 27)), V::Zero);
}

TEST(RiseFall, HdlRiseFallAttributes) {
  // (HDL hook added alongside: rise=min:max, fall=min:max attributes.)
  Netlist nl;
  Ref in = nl.ref("A .P5-25");
  Ref out = nl.ref("B");
  PrimId g = nl.buf("B1", from_ns(3), from_ns(5), in, out);
  EXPECT_FALSE(nl.prim(g).rise_fall.has_value());
  nl.set_rise_fall(g, RiseFallDelay{from_ns(1), from_ns(2), from_ns(3), from_ns(4)});
  EXPECT_TRUE(nl.prim(g).rise_fall.has_value());
  EXPECT_THROW(nl.set_rise_fall(g, RiseFallDelay{from_ns(2), from_ns(1), 0, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tv
