// Unit + property tests for the seven-value algebra (thesis sec. 2.4.1/2.4.2).
#include "core/value.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tv {
namespace {

const std::vector<Value> kAll = {Value::Zero, Value::One,  Value::Stable, Value::Change,
                                 Value::Rise, Value::Fall, Value::Unknown};

using V = Value;

TEST(ValueLetters, RoundTrip) {
  for (Value v : kAll) {
    Value parsed;
    ASSERT_TRUE(parse_value_letter(value_letter(v), parsed));
    EXPECT_EQ(parsed, v);
  }
  Value dummy;
  EXPECT_FALSE(parse_value_letter('x', dummy));
  EXPECT_FALSE(parse_value_letter('2', dummy));
}

TEST(ValueOr, DominantAndIdentity) {
  for (Value v : kAll) {
    EXPECT_EQ(value_or(V::One, v), V::One) << value_name(v);
    EXPECT_EQ(value_or(v, V::One), V::One) << value_name(v);
    EXPECT_EQ(value_or(V::Zero, v), v) << value_name(v);
    EXPECT_EQ(value_or(v, V::Zero), v) << value_name(v);
  }
}

TEST(ValueOr, WorstCaseStableVsEdges) {
  // The thesis' worked example: STABLE OR RISE = RISE ("the rising edge is
  // the worst-case value").
  EXPECT_EQ(value_or(V::Stable, V::Rise), V::Rise);
  EXPECT_EQ(value_or(V::Stable, V::Fall), V::Fall);
  EXPECT_EQ(value_or(V::Stable, V::Change), V::Change);
  EXPECT_EQ(value_or(V::Stable, V::Stable), V::Stable);
}

TEST(ValueOr, MixedEdgesCollapseToChange) {
  EXPECT_EQ(value_or(V::Rise, V::Fall), V::Change);
  EXPECT_EQ(value_or(V::Rise, V::Change), V::Change);
  EXPECT_EQ(value_or(V::Fall, V::Change), V::Change);
  EXPECT_EQ(value_or(V::Rise, V::Rise), V::Rise);
  EXPECT_EQ(value_or(V::Fall, V::Fall), V::Fall);
}

TEST(ValueOr, UnknownPropagatesUnlessForced) {
  EXPECT_EQ(value_or(V::Unknown, V::One), V::One);
  EXPECT_EQ(value_or(V::Unknown, V::Zero), V::Unknown);
  EXPECT_EQ(value_or(V::Unknown, V::Stable), V::Unknown);
  EXPECT_EQ(value_or(V::Unknown, V::Rise), V::Unknown);
}

TEST(ValueAnd, DominantAndIdentity) {
  for (Value v : kAll) {
    EXPECT_EQ(value_and(V::Zero, v), V::Zero) << value_name(v);
    EXPECT_EQ(value_and(v, V::Zero), V::Zero) << value_name(v);
    EXPECT_EQ(value_and(V::One, v), v) << value_name(v);
    EXPECT_EQ(value_and(v, V::One), v) << value_name(v);
  }
}

TEST(ValueAnd, DualOfOr) {
  // De Morgan-style duality of the worst-case tables:
  // NOT(a AND b) == NOT a OR NOT b over the full seven-value domain.
  for (Value a : kAll) {
    for (Value b : kAll) {
      EXPECT_EQ(value_not(value_and(a, b)), value_or(value_not(a), value_not(b)))
          << value_name(a) << " & " << value_name(b);
    }
  }
}

TEST(ValueNot, Involution) {
  for (Value v : kAll) EXPECT_EQ(value_not(value_not(v)), v);
  EXPECT_EQ(value_not(V::Rise), V::Fall);
  EXPECT_EQ(value_not(V::Fall), V::Rise);
  EXPECT_EQ(value_not(V::Stable), V::Stable);
  EXPECT_EQ(value_not(V::Change), V::Change);
}

TEST(ValueXor, BooleanCorners) {
  EXPECT_EQ(value_xor(V::Zero, V::Rise), V::Rise);
  EXPECT_EQ(value_xor(V::One, V::Rise), V::Fall);
  EXPECT_EQ(value_xor(V::One, V::One), V::Zero);
  EXPECT_EQ(value_xor(V::Zero, V::One), V::One);
}

TEST(ValueXor, UnknownPolarityCollapses) {
  // XOR with a stable-but-unknown operand turns a known edge into CHANGE:
  // the output edge polarity cannot be known.
  EXPECT_EQ(value_xor(V::Stable, V::Rise), V::Change);
  EXPECT_EQ(value_xor(V::Stable, V::Fall), V::Change);
  EXPECT_EQ(value_xor(V::Stable, V::Stable), V::Stable);
  EXPECT_EQ(value_xor(V::Unknown, V::Zero), V::Unknown);
}

TEST(ValueChg, Definition) {
  // Sec. 2.4.2: UNKNOWN if any input undefined; else CHANGE if any input
  // changing; otherwise STABLE. 0/1 count as not changing.
  EXPECT_EQ(value_chg(V::Zero, V::One), V::Stable);
  EXPECT_EQ(value_chg(V::Stable, V::Stable), V::Stable);
  EXPECT_EQ(value_chg(V::Stable, V::Rise), V::Change);
  EXPECT_EQ(value_chg(V::Change, V::Zero), V::Change);
  EXPECT_EQ(value_chg(V::Unknown, V::Change), V::Unknown);
  EXPECT_EQ(value_chg(V::Rise), V::Change);
  EXPECT_EQ(value_chg(V::One), V::Stable);
  EXPECT_EQ(value_chg(V::Unknown), V::Unknown);
}

TEST(ValueAlgebra, CommutativityProperty) {
  for (Value a : kAll) {
    for (Value b : kAll) {
      EXPECT_EQ(value_or(a, b), value_or(b, a));
      EXPECT_EQ(value_and(a, b), value_and(b, a));
      EXPECT_EQ(value_xor(a, b), value_xor(b, a));
      EXPECT_EQ(value_chg(a, b), value_chg(b, a));
      EXPECT_EQ(value_union(a, b), value_union(b, a));
    }
  }
}

TEST(ValueAlgebra, Idempotence) {
  for (Value a : kAll) {
    EXPECT_EQ(value_or(a, a), a);
    EXPECT_EQ(value_and(a, a), a);
    EXPECT_EQ(value_union(a, a), a);
  }
}

TEST(ValueAlgebra, AssociativityOfOrAndProperty) {
  for (Value a : kAll) {
    for (Value b : kAll) {
      for (Value c : kAll) {
        EXPECT_EQ(value_or(value_or(a, b), c), value_or(a, value_or(b, c)));
        EXPECT_EQ(value_and(value_and(a, b), c), value_and(a, value_and(b, c)));
      }
    }
  }
}

TEST(ValueUnion, DirectionalEdges) {
  EXPECT_EQ(value_union(V::Zero, V::Rise), V::Rise);
  EXPECT_EQ(value_union(V::Rise, V::One), V::Rise);
  EXPECT_EQ(value_union(V::One, V::Fall), V::Fall);
  EXPECT_EQ(value_union(V::Fall, V::Zero), V::Fall);
  EXPECT_EQ(value_union(V::Zero, V::One), V::Change);
  EXPECT_EQ(value_union(V::Rise, V::Fall), V::Change);
  EXPECT_EQ(value_union(V::Stable, V::Change), V::Change);
  EXPECT_EQ(value_union(V::Zero, V::Stable), V::Stable);
  EXPECT_EQ(value_union(V::Unknown, V::Zero), V::Unknown);
}

TEST(ValueMux, SelectBehaviour) {
  // Definite select passes the selected input through.
  EXPECT_EQ(value_mux(V::Zero, V::Rise, V::Fall), V::Rise);
  EXPECT_EQ(value_mux(V::One, V::Rise, V::Fall), V::Fall);
  // Stable select: output is one input or the other, never switching; two
  // different constants are therefore STABLE, not CHANGE.
  EXPECT_EQ(value_mux(V::Stable, V::Zero, V::One), V::Stable);
  EXPECT_EQ(value_mux(V::Stable, V::Stable, V::Rise), V::Rise);
  EXPECT_EQ(value_mux(V::Stable, V::Zero, V::Zero), V::Zero);
  // Changing select can glitch between the inputs unless they agree.
  EXPECT_EQ(value_mux(V::Change, V::Zero, V::One), V::Change);
  EXPECT_EQ(value_mux(V::Rise, V::One, V::One), V::One);
  EXPECT_EQ(value_mux(V::Unknown, V::Zero, V::Zero), V::Unknown);
}

TEST(ValueMux, WorstCaseSoundnessProperty) {
  // Soundness: for every boolean refinement of the symbolic inputs, the
  // concrete mux output must be describable by the symbolic output. We check
  // the steady cases: if the symbolic output claims a definite 0/1, every
  // concretization must produce that value.
  auto concretizations = [](Value v) -> std::vector<int> {
    switch (v) {
      case V::Zero: return {0};
      case V::One: return {1};
      default: return {0, 1};  // stable-unknown or mid-change snapshots
    }
  };
  for (Value sel : {V::Zero, V::One}) {
    for (Value a : kAll) {
      for (Value b : kAll) {
        Value out = value_mux(sel, a, b);
        if (out == V::Zero || out == V::One) {
          Value chosen = (sel == V::Zero) ? a : b;
          for (int bit : concretizations(chosen)) {
            EXPECT_EQ(bit, out == V::One ? 1 : 0);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace tv
