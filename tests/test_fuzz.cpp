// Robustness fuzzing: the front ends must reject arbitrary garbage with a
// diagnostic (std::invalid_argument), never crash, hang, or accept
// silently-broken input. Inputs are generated from deterministic seeds.
#include <gtest/gtest.h>

#include "core/assertion.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/parser.hpp"

namespace tv {
namespace {

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ULL + 1) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }

 private:
  std::uint64_t state_;
};

// Token soup built from SHDL's own vocabulary: far more likely to reach
// deep parser states than raw bytes.
std::string shdl_soup(Lcg& rng, int tokens) {
  static const char* kVocab[] = {
      "macro",  "design", "param",  "in",     "out",   "use",    "reg",     "buf",
      "or",     "and",    "mux2",   "setup_hold",      "period", "wire_delay",
      "case",   "{",      "}",      "(",      ")",     "[",      "]",       ";",
      ",",      ":",      "=",      "->",     "50.0",  "1.5",    "SIZE",    "X",
      "\"A .S0-6\"",      "\"CK .P2-3\"",     "\"Q<0:SIZE-1>\"", "--junk\n", "+",
      "-",      "*",      "/",      "\"\"",   "0",     "delay",  "width"};
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kVocab[rng.next() % (sizeof(kVocab) / sizeof(kVocab[0]))];
    out += ' ';
  }
  return out;
}

std::string byte_soup(Lcg& rng, int bytes) {
  std::string out;
  for (int i = 0; i < bytes; ++i) {
    out += static_cast<char>(32 + rng.next() % 95);
  }
  return out;
}

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, ShdlTokenSoupNeverCrashes) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  std::string src = shdl_soup(rng, 60);
  try {
    hdl::ElaboratedDesign d = hdl::elaborate(hdl::parse(src));
    // Accepting is fine too (the soup might form a valid file); the
    // elaborated result must then be structurally sound.
    EXPECT_LE(d.netlist.num_prims(), 100u);
  } catch (const std::invalid_argument&) {
    // expected for malformed input
  }
}

TEST_P(FuzzSeed, ByteSoupNeverCrashes) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 999);
  std::string src = byte_soup(rng, 200);
  try {
    hdl::parse(src);
  } catch (const std::invalid_argument&) {
  }
}

TEST_P(FuzzSeed, AssertionSoupNeverCrashes) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()) + 5555);
  static const char* kBits[] = {"X",  ".S", ".P", ".C", "0-6", "2,5", "(",  ")",
                                "-1", "L",  "&",  "HZ", "+",   "5.0", "/M", "<0:3>"};
  std::string name;
  int n = 2 + static_cast<int>(rng.next() % 8);
  for (int i = 0; i < n; ++i) {
    name += kBits[rng.next() % (sizeof(kBits) / sizeof(kBits[0]))];
    if (rng.next() % 2) name += ' ';
  }
  try {
    ParsedSignal p = parse_signal_name(name);
    // On success, the waveform must materialize with the exact-period
    // invariant intact.
    Waveform w = assertion_waveform(p.assertion, from_ns(50), ClockUnits());
    Time sum = 0;
    for (const auto& s : w.segments()) sum += s.width;
    EXPECT_EQ(sum, from_ns(50));
  } catch (const std::invalid_argument&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(0, 50));

}  // namespace
}  // namespace tv
