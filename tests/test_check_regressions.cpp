// Minimized regression cases for bugs found by the differential
// self-checking harness (tools/tvfuzz). Each circuit spec below was shrunk
// by src/check/shrinker.cpp from a failing fuzz seed and pasted from the
// emitted repro; the wave cases pin the delayed_rise_fall event-order
// hazards. Every test in this file failed before the corresponding fixes in
// src/core/primitives.cpp, src/core/waveform.cpp and src/sim/logic_sim.cpp.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/oracles.hpp"
#include "check/rand_netlist.hpp"

namespace tv::check {
namespace {

// Seed 48 shrunk: an &A-directed gated clock driving a latch through one
// buffer. The value-level simulator dropped the gate's falling edge when
// the rise was still in flight (output compared against the momentary value
// instead of the projected one), so the gated clock stuck high and exposed
// a phantom set-up violation no symbolic run could cover.
TEST(CheckRegression, ConservatismSeed48) {
  CircuitSpec s;
  s.seed = 48;
  s.period_ns = 40;
  s.data_toggle_ns = 6;
  s.data_change_ns = 1;
  s.stages.push_back({StageKind::Buf, 3, 3, 7, 7, false, 0, 0});
  s.sink = SinkKind::Latch;
  s.clock = {3, 2, 0, 0, true, true, 'A', false, 0, 0};
  s.sink_dmin_ns = 1;
  s.sink_dmax_ns = 1;
  s.setup_ns = 1;
  s.hold_ns = 0;
  auto fail = check_conservatism(s);
  ASSERT_FALSE(fail.has_value()) << fail->kind << ": " << fail->detail;
}

// Seed 93 shrunk: a LatchSR behind a gated clock feeding a second pipeline
// stage under case analysis. Exposed the simulator's SET/RESET-before-
// capture ordering (a clocked capture could override an asserted SET for
// part of the cycle) together with the latch's instantaneous-rise handover.
TEST(CheckRegression, CaseConservatismSeed93) {
  CircuitSpec s;
  s.seed = 93;
  s.period_ns = 40;
  s.data_toggle_ns = 2;
  s.data_change_ns = 1;
  s.sink = SinkKind::LatchSR;
  s.clock = {3, 2, 0, 0, true, true, '\0', false, 0, 5};
  s.sink_dmin_ns = 1;
  s.sink_dmax_ns = 3;
  s.setup_ns = 1;
  s.hold_ns = 0;
  s.second_stage = true;
  s.stage2_edge_units = 12;
  s.with_case = true;
  auto fail = check_conservatism(s);
  ASSERT_FALSE(fail.has_value()) << fail->kind << ": " << fail->detail;
}

// Seed 109 shrunk: a two-stage pipeline whose first register is clocked by
// a precise edge with dmin == dmax. The symbolic register produced a
// zero-width CHANGE window, rounded it away, and reported the intermediate
// signal always-STABLE -- hiding the second stage's set-up violation that
// every concrete realization exposed.
TEST(CheckRegression, ConservatismSeed109) {
  CircuitSpec s;
  s.seed = 109;
  s.period_ns = 40;
  s.data_toggle_ns = 2;
  s.data_change_ns = 1;
  s.sink = SinkKind::Reg;
  s.clock = {3, 2, 0, 0, true, false, '\0', false, 0, 0};
  s.sink_dmin_ns = 1;
  s.sink_dmax_ns = 1;
  s.setup_ns = 1;
  s.hold_ns = 0;
  s.second_stage = true;
  s.stage2_edge_units = 6;
  auto fail = check_conservatism(s);
  ASSERT_FALSE(fail.has_value()) << fail->kind << ": " << fail->detail;
}

// delayed_rise_fall event-order hazard, minimal form: a narrow pulse whose
// rise delay exceeds its fall delay shifts the fall's uncertainty window
// wholly *before* the rise's. The late rise then leaves a stale 1 on the
// output until the next cycle's fall -- the concrete-replay oracle caught
// the symbolic result claiming a clean 0 there.
TEST(CheckRegression, RiseFallCoverageReorderedWindows) {
  WaveCase w;
  w.base.period_ns = 40;
  w.base.fill = '0';
  w.base.ops = {{10, 3, '1'}};
  w.rise_min_ns = 6;
  w.rise_max_ns = 8;
  w.fall_min_ns = 1;
  w.fall_max_ns = 2;
  auto fail = check_wave_algebra(w);
  ASSERT_FALSE(fail.has_value()) << fail->kind << ": " << fail->detail;
}

// Fuzz seeds that each exposed a distinct defect in the overlap/inversion
// sweep while it was being built: skew-folded boundaries masking overlaps
// (18), settled values painted into colliding uncertainty spans (27, 343),
// wrap-spanning clusters whose base window starts past the period (56), and
// disjoint-but-reordered windows with no overlap at all (64, 194, 337,
// 458).
TEST(CheckRegression, RiseFallCoverageFuzzSeeds) {
  for (std::uint64_t seed : {18ULL, 27ULL, 56ULL, 64ULL, 194ULL, 337ULL, 343ULL, 458ULL}) {
    auto fail = check_wave_algebra(random_wave_case(seed));
    ASSERT_FALSE(fail.has_value())
        << "seed " << seed << " [" << fail->kind << "] " << fail->detail;
  }
}

}  // namespace
}  // namespace tv::check
