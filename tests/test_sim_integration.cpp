// Integration of the logic-simulator baseline with the worked example:
// driving the Fig 2-5 register-file circuit with concrete vectors exposes
// the same address set-up error the Timing Verifier finds symbolically --
// but only when the vector actually toggles the addresses into the write
// window, demonstrating the coverage gap of sec. 1.4.1. Plus soundness
// sweeps of the six-value algebra.
#include <gtest/gtest.h>

#include "gen/regfile_example.hpp"
#include "sim/logic_sim.hpp"

namespace tv::sim {
namespace {

TEST(SixValueSweep, OrAndSoundnessOverBooleans) {
  // For definite operands the tables must implement plain boolean logic.
  const LV defs[] = {LV::Zero, LV::One};
  for (LV a : defs) {
    for (LV b : defs) {
      bool ba = a == LV::One, bb = b == LV::One;
      EXPECT_EQ(lv_or(a, b) == LV::One, ba || bb);
      EXPECT_EQ(lv_and(a, b) == LV::One, ba && bb);
      EXPECT_EQ(lv_xor(a, b) == LV::One, ba != bb);
    }
  }
  // X absorbs except when forced.
  const LV all[] = {LV::Zero, LV::One, LV::X, LV::U, LV::D, LV::E};
  for (LV v : all) {
    EXPECT_EQ(lv_or(LV::One, v), LV::One);
    EXPECT_EQ(lv_and(LV::Zero, v), LV::Zero);
    EXPECT_EQ(lv_or(v, LV::One), lv_or(LV::One, v));  // commutativity
    EXPECT_EQ(lv_and(v, LV::Zero), lv_and(LV::Zero, v));
  }
}

TEST(SixValueSweep, NotInvolutionAndEdgeFlip) {
  const LV all[] = {LV::Zero, LV::One, LV::X, LV::U, LV::D, LV::E};
  for (LV v : all) EXPECT_EQ(lv_not(lv_not(v)), v);
}

class RegfileSimTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = gen::build_regfile_example(nl_); }

  // Drives one 50 ns cycle: clocks per their assertions, addresses
  // toggling at `adr_toggle_ns` (the symbolic analysis says they can move
  // as late as 11.5 ns at the RAM pins).
  std::vector<SimViolation> run_cycle(double adr_toggle_ns) {
    LogicSimulator sim(nl_);
    std::vector<Stimulus> stim;
    SignalId write_adr = nl_.find("WRITE ADR .S0-6");
    SignalId read_adr = nl_.find("READ ADR .S4-9");
    SignalId sel_raw_src = nl_.find("CK .P0-4");
    SignalId ck23 = nl_.find("CK .P2-3");
    SignalId wdata = nl_.find("W DATA .S0-6");
    SignalId write = nl_.find("WRITE .S0-6");
    SignalId read_en = nl_.find("READ EN .S0-8");

    // Concrete values for every asserted control the verifier handles
    // symbolically: the simulator needs them all driven.
    stim.push_back({write, 0, LV::One});
    stim.push_back({read_en, 0, LV::One});
    stim.push_back({sel_raw_src, 0, LV::One});
    stim.push_back({sel_raw_src, from_ns(25), LV::Zero});
    stim.push_back({ck23, 0, LV::Zero});
    stim.push_back({ck23, from_ns(12.5), LV::One});
    stim.push_back({ck23, from_ns(18.75), LV::Zero});
    stim.push_back({wdata, 0, LV::One});
    stim.push_back({read_adr, 0, LV::Zero});
    // The address actually seen by the RAM follows the mux; make the write
    // address toggle at the requested time.
    stim.push_back({write_adr, 0, LV::Zero});
    stim.push_back({write_adr, from_ns(adr_toggle_ns), LV::One});
    return sim.run(stim, from_ns(50));
  }

  Netlist nl_;
  gen::RegfileExample ex_;
};

TEST_F(RegfileSimTest, HotVectorExposesTheAddressSetupError) {
  // Address toggling at 9 ns reaches the RAM around the write-enable rise
  // (12.5 ns nominal): the set-up monitor fires, matching the symbolic
  // verdict.
  auto v = run_cycle(9.0);
  bool setup_error = false;
  for (const auto& viol : v) {
    if (viol.message.find("setup") != std::string::npos ||
        viol.message.find("at clock edge") != std::string::npos ||
        viol.message.find("while clock true") != std::string::npos) {
      setup_error = true;
    }
  }
  EXPECT_TRUE(setup_error) << v.size();
}

TEST_F(RegfileSimTest, LazyVectorMissesTheError) {
  // Address toggling at 2 ns settles long before the write enable: this
  // vector shows nothing wrong -- the thesis' point that simulation proves
  // only the cases simulated.
  auto v = run_cycle(2.0);
  EXPECT_TRUE(v.empty()) << v[0].message;
}

TEST_F(RegfileSimTest, SimulatorAgreesWithVerifierAcrossVectorSweep) {
  // Sweep the toggle time: some vector in the sweep must expose the error
  // the Timing Verifier reports symbolically (and did, in Fig 3-11).
  bool any = false;
  for (double t = 2.0; t <= 12.0; t += 1.0) {
    if (!run_cycle(t).empty()) {
      any = true;
      break;
    }
  }
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace tv::sim
