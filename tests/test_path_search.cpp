// Tests for the worst-case path-search baseline (thesis sec. 1.4.2,
// GRASP/RAS style) and its documented limitation: value-blind analysis
// reports paths the circuit can never exercise.
#include "pathsearch/path_search.hpp"

#include <gtest/gtest.h>

#include "core/verifier.hpp"

namespace tv::pathsearch {
namespace {

TEST(PathSearch, SimpleRegisterToRegisterChain) {
  Netlist nl;
  Ref ck = nl.ref("CK .P0-2");
  Ref q1 = nl.ref("Q1"), mid = nl.ref("MID"), d2 = nl.ref("D2"), q2 = nl.ref("Q2");
  nl.reg("R1", from_ns(1), from_ns(2), nl.ref("D1 .S0-8"), ck, q1);
  nl.buf("G1", from_ns(3), from_ns(5), q1, mid);
  nl.buf("G2", from_ns(2), from_ns(4), mid, d2);
  nl.reg("R2", from_ns(1), from_ns(2), d2, ck, q2);
  nl.finalize();

  PathSearcher ps(nl);
  PathSearchResult r = ps.analyze();
  ASSERT_FALSE(r.paths.empty());
  // Worst path: Q1 -> D2 through G1+G2: [5, 9] ns of element delay.
  const PathReport& worst = r.paths[0];
  EXPECT_EQ(worst.from, q1.id);
  EXPECT_EQ(worst.to, d2.id);
  EXPECT_EQ(worst.min_delay, from_ns(5));
  EXPECT_EQ(worst.max_delay, from_ns(9));
  EXPECT_EQ(worst.prims.size(), 2u);
}

TEST(PathSearch, WireDelaysAreIncluded) {
  Netlist nl;
  Ref ck = nl.ref("CK .P0-2");
  Ref q1 = nl.ref("Q1"), d2 = nl.ref("D2"), q2 = nl.ref("Q2");
  nl.reg("R1", 0, 0, nl.ref("D1 .S0-8"), ck, q1);
  nl.buf("G", from_ns(1), from_ns(1), q1, d2);
  nl.reg("R2", 0, 0, d2, ck, q2);
  nl.set_wire_delay(q1.id, from_ns(0.5), from_ns(2.0));
  nl.finalize();
  PathSearcher ps(nl);
  PathSearchResult r = ps.analyze();
  ASSERT_FALSE(r.paths.empty());
  EXPECT_EQ(r.paths[0].min_delay, from_ns(1.5));
  EXPECT_EQ(r.paths[0].max_delay, from_ns(3.0));
}

// The Fig 2-6 circuit: complementary mux selects. The path searcher cannot
// know the selects are complementary, so it reports the impossible
// slow-slow path of 40 ns; the Timing Verifier with case analysis proves
// 30 ns (test_case_analysis.cpp). This is sec. 4.1's "numerous irrelevant
// error messages" claim, reproduced.
TEST(PathSearch, ReportsImpossiblePathOnCaseAnalysisCircuit) {
  Netlist nl;
  Ref control = nl.ref("CONTROL .S0-90");
  Ref in = nl.ref("INPUT .S10-105");
  Ref slow1 = nl.ref("SLOW1"), m1 = nl.ref("M1"), slow2 = nl.ref("SLOW2");
  Ref out = nl.ref("OUT");
  nl.buf("E1", from_ns(10), from_ns(10), in, slow1);
  nl.mux2("MUX1", from_ns(10), from_ns(10), control, in, slow1, m1);
  nl.buf("E2", from_ns(10), from_ns(10), m1, slow2);
  Ref ncontrol = nl.ref("- CONTROL .S0-90");
  nl.mux2("MUX2", from_ns(10), from_ns(10), ncontrol, m1, slow2, out);
  Ref ck = nl.ref("CK .P0-2");
  nl.reg("R", 0, 0, out, ck, nl.ref("Q"));
  nl.finalize();

  PathSearcher ps(nl);
  PathSearchResult r = ps.analyze();
  ASSERT_FALSE(r.paths.empty());
  // The reported worst path is 40 ns: through both extra-delay buffers --
  // a path the complementary selects make impossible.
  EXPECT_EQ(r.paths[0].max_delay, from_ns(40));
  // With a 35 ns budget the searcher emits an error the Timing Verifier's
  // case analysis would not.
  EXPECT_FALSE(r.slower_than(from_ns(35)).empty());
}

TEST(PathSearch, SearchLimitStopsUnbrokenLoops) {
  // GRASP "proceeds until it reaches some user-specified search limit"
  // when a loop is not broken by a terminating point.
  Netlist nl;
  Ref a = nl.ref("A"), b = nl.ref("B");
  Ref start = nl.ref("START .S0-8");
  nl.or_gate("LOOP OR", from_ns(1), from_ns(1), {start, b}, a);
  nl.buf("F1", from_ns(1), from_ns(1), a, b);
  nl.finalize();
  PathSearchOptions opts;
  opts.search_limit = 8;
  PathSearcher ps(nl, opts);
  PathSearchResult r = ps.analyze();
  EXPECT_TRUE(r.search_limit_hit);
}

TEST(PathSearch, GraspModeUsesUserEndpoints) {
  Netlist nl;
  Ref a = nl.ref("A"), b = nl.ref("B"), c = nl.ref("C");
  nl.buf("G1", from_ns(2), from_ns(3), a, b);
  nl.buf("G2", from_ns(4), from_ns(6), b, c);
  nl.finalize();
  PathSearcher ps(nl);
  PathSearchResult r = ps.analyze_between({a.id}, {c.id});
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].min_delay, from_ns(6));
  EXPECT_EQ(r.paths[0].max_delay, from_ns(9));
  // Endpoint b: shorter path.
  PathSearchResult r2 = ps.analyze_between({a.id}, {b.id});
  ASSERT_EQ(r2.paths.size(), 1u);
  EXPECT_EQ(r2.paths[0].max_delay, from_ns(3));
}

TEST(PathSearch, FastPathsForHoldAnalysis) {
  Netlist nl;
  Ref ck = nl.ref("CK .P0-2");
  Ref q1 = nl.ref("Q1"), d2 = nl.ref("D2");
  nl.reg("R1", 0, 0, nl.ref("D1 .S0-8"), ck, q1);
  nl.buf("FAST", from_ns(0.2), from_ns(0.5), q1, d2);
  nl.reg("R2", 0, 0, d2, ck, nl.ref("Q2"));
  nl.finalize();
  PathSearcher ps(nl);
  PathSearchResult r = ps.analyze();
  EXPECT_FALSE(r.faster_than(from_ns(1.0)).empty());
  EXPECT_TRUE(r.faster_than(from_ns(0.1)).empty());
}

}  // namespace
}  // namespace tv::pathsearch
