// ConeIndex: transitive affected cones over the fanout call lists.
#include <gtest/gtest.h>

#include "core/cone.hpp"

namespace tv {
namespace {

// A small two-island netlist:
//
//   A --[G1 buf]--> B --[G2 or]--> D --(SETUP HOLD CHK vs CK)
//                   C ----^
//   X --[G3 buf]--> Y
struct ConeFixture {
  Netlist nl;
  Ref a, b, c, d, ck, x, y;
  PrimId g1, g2, g3, chk;

  ConeFixture() {
    a = nl.ref("A");
    b = nl.ref("B");
    c = nl.ref("C");
    d = nl.ref("D");
    ck = nl.ref("CK .P0-4");
    x = nl.ref("X");
    y = nl.ref("Y");
    g1 = nl.buf("G1", from_ns(1), from_ns(2), a, b);
    g2 = nl.or_gate("G2", from_ns(1), from_ns(2), {b, c}, d);
    g3 = nl.buf("G3", from_ns(1), from_ns(2), x, y);
    chk = nl.setup_hold_chk("CHK", from_ns(1), from_ns(1), d, ck);
    nl.finalize();
  }
};

std::vector<SignalId> sigs(const Cone& c) { return c.signals; }
std::vector<PrimId> prims(const Cone& c) { return c.prims; }

TEST(ConeIndex, TransitiveFanoutIncludingCheckers) {
  ConeFixture f;
  ConeIndex idx(f.nl);
  auto cone = idx.cone_of({f.a.id});
  EXPECT_EQ(sigs(*cone), (std::vector<SignalId>{f.a.id, f.b.id, f.d.id}));
  EXPECT_EQ(prims(*cone), (std::vector<PrimId>{f.g1, f.g2, f.chk}));
}

TEST(ConeIndex, SideInputConeIsNarrower) {
  ConeFixture f;
  ConeIndex idx(f.nl);
  auto cone = idx.cone_of({f.c.id});
  EXPECT_EQ(sigs(*cone), (std::vector<SignalId>{f.c.id, f.d.id}));
  EXPECT_EQ(prims(*cone), (std::vector<PrimId>{f.g2, f.chk}));
}

TEST(ConeIndex, PinnedDrivenSignalIncludesItsDriverButNotItsInputs) {
  ConeFixture f;
  ConeIndex idx(f.nl);
  // Pinning B: G1 must re-evaluate (the case mapping applies to its
  // output), but B's upstream signal A is untouched.
  auto cone = idx.cone_of({f.b.id});
  EXPECT_EQ(sigs(*cone), (std::vector<SignalId>{f.b.id, f.d.id}));
  EXPECT_EQ(prims(*cone), (std::vector<PrimId>{f.g1, f.g2, f.chk}));
  EXPECT_FALSE(cone->contains_signal(f.a.id));
}

TEST(ConeIndex, IslandsDoNotLeakIntoEachOther) {
  ConeFixture f;
  ConeIndex idx(f.nl);
  auto main_cone = idx.cone_of({f.a.id});
  EXPECT_FALSE(main_cone->contains_signal(f.x.id));
  EXPECT_FALSE(main_cone->contains_signal(f.y.id));
  EXPECT_FALSE(main_cone->contains_prim(f.g3));

  auto island = idx.cone_of({f.x.id});
  EXPECT_EQ(sigs(*island), (std::vector<SignalId>{f.x.id, f.y.id}));
  EXPECT_EQ(prims(*island), (std::vector<PrimId>{f.g3}));
}

TEST(ConeIndex, SlotMapsAreDenseAndConsistent) {
  ConeFixture f;
  ConeIndex idx(f.nl);
  auto cone = idx.cone_of({f.a.id, f.c.id});
  ASSERT_EQ(cone->signal_slot.size(), f.nl.num_signals());
  ASSERT_EQ(cone->prim_slot.size(), f.nl.num_prims());
  for (std::size_t i = 0; i < cone->signals.size(); ++i) {
    EXPECT_EQ(cone->signal_slot[cone->signals[i]], static_cast<std::int32_t>(i));
  }
  for (std::size_t i = 0; i < cone->prims.size(); ++i) {
    EXPECT_EQ(cone->prim_slot[cone->prims[i]], static_cast<std::int32_t>(i));
  }
}

TEST(ConeIndex, MemoizesByNormalizedPinSet) {
  ConeFixture f;
  ConeIndex idx(f.nl);
  auto c1 = idx.cone_of({f.a.id, f.c.id});
  auto c2 = idx.cone_of({f.c.id, f.a.id, f.a.id});  // order/duplicates ignored
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_EQ(idx.cache_size(), 1u);
  auto c3 = idx.cone_of({f.a.id});
  EXPECT_NE(c1.get(), c3.get());
  EXPECT_EQ(idx.cache_size(), 2u);
}

TEST(ConeIndex, RejectsUnknownSignalsAndUnfinalizedNetlists) {
  ConeFixture f;
  ConeIndex idx(f.nl);
  EXPECT_THROW(idx.cone_of({static_cast<SignalId>(999)}), std::out_of_range);
  Netlist raw;
  raw.ref("LONE");
  EXPECT_THROW(ConeIndex bad(raw), std::logic_error);
}

}  // namespace
}  // namespace tv
