// Concurrent resource degradation: many case-analysis workers hitting a
// deliberately tiny intern table must all degrade to TV-W203 (table full)
// without losing soundness or determinism -- the run is marked partial and
// two identical runs produce identical degradation records, byte for byte,
// regardless of worker scheduling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/verifier.hpp"
#include "diag/diagnostic.hpp"

namespace tv {
namespace {

using V = Value;

struct ChainRig {
  Netlist nl;
  VerifierOptions opts;
  std::vector<Ref> sels;
};

// A mux chain wide enough that every case re-evaluates several primitives
// (and therefore interns several fresh waveforms) inside its cone.
ChainRig build_chain(int stages) {
  ChainRig r;
  r.opts.period = from_ns(100.0);
  r.opts.units = ClockUnits::from_ns_per_unit(1.0);
  r.opts.default_wire = WireDelay{0, 0};
  r.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Ref prev = r.nl.ref("IN .S5-95");
  for (int i = 0; i < stages; ++i) {
    Ref sel = r.nl.ref("SEL" + std::to_string(i));
    Ref out = r.nl.ref("N" + std::to_string(i));
    r.nl.mux2("MUX" + std::to_string(i), from_ns(1), from_ns(3), sel, prev,
              r.nl.ref("ALT" + std::to_string(i) + " .S10-90"), out);
    r.sels.push_back(sel);
    prev = out;
  }
  r.nl.setup_hold_chk("CHK", from_ns(30), from_ns(2), prev, r.nl.ref("CK .P40-50"));
  r.nl.finalize();
  return r;
}

std::vector<CaseSpec> chain_cases(const ChainRig& r) {
  std::vector<CaseSpec> cases;
  for (std::size_t i = 0; i < r.sels.size(); ++i) {
    for (V v : {V::Zero, V::One}) {
      cases.push_back({"SEL" + std::to_string(i) + (v == V::Zero ? "=0" : "=1"),
                       {{r.sels[i].id, v}}});
    }
  }
  return cases;
}

std::vector<std::string> degradation_lines(const VerifyResult& res) {
  std::vector<std::string> lines;
  for (const Degradation& d : res.degradations) {
    lines.push_back(std::string(d.code) + ": " + d.message);
  }
  return lines;
}

TEST(ConcurrentDegradation, FullInternTableDegradesToPartialUnderParallelCases) {
  ChainRig r = build_chain(8);
  std::vector<CaseSpec> cases = chain_cases(r);
  ASSERT_GE(cases.size(), 16u);
  r.opts.jobs = 4;
  // One waveform per shard: the first fresh intern in every worker fails,
  // so every case-analysis worker trips the TV-W203 guard concurrently.
  r.opts.max_waveforms_per_shard = 1;
  Verifier v(r.nl, r.opts);
  VerifyResult res = v.verify(cases);

  EXPECT_TRUE(res.partial);
  std::size_t w203 = 0;
  for (const Degradation& d : res.degradations) {
    if (std::string(d.code) == diag::kWarnTableFull) ++w203;
  }
  EXPECT_GE(w203, 1u) << "expected at least one TV-W203 table-full record";
  // Soundness: degraded interning must not lose the checker's findings --
  // every case still reports (interning is an optimization, not semantics).
  EXPECT_EQ(res.cases.size(), cases.size());
}

TEST(ConcurrentDegradation, DegradationRecordsAreByteStableAcrossRuns) {
  ChainRig r = build_chain(8);
  std::vector<CaseSpec> cases = chain_cases(r);
  r.opts.jobs = 4;
  r.opts.max_waveforms_per_shard = 1;

  Verifier v1(r.nl, r.opts);
  std::vector<std::string> first = degradation_lines(v1.verify(cases));
  Verifier v2(r.nl, r.opts);
  std::vector<std::string> second = degradation_lines(v2.verify(cases));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // And across worker counts: the merge order is deterministic by input
  // slot, not by scheduling, so 1 worker and 4 workers agree byte-for-byte.
  VerifierOptions serial = r.opts;
  serial.jobs = 1;
  Verifier v3(r.nl, serial);
  std::vector<std::string> sequential = degradation_lines(v3.verify(cases));
  EXPECT_EQ(first, sequential);
}

TEST(ConcurrentDegradation, BatchFallbackReportsEachDegradationExactlyOnce) {
  // Regression: when the lockstep batch engine aborts mid-sweep (the tiny
  // intern table fills and a baseline input can no longer be interned) and
  // the cases re-run individually, the abandoned batch lanes must not leave
  // behind their own degradation records -- the fallback run must be
  // byte-identical to a run with the batch engine disabled, TV-W203 records
  // included, each reported exactly once.
  ChainRig on = build_chain(8);
  std::vector<CaseSpec> cases = chain_cases(on);
  on.opts.max_waveforms_per_shard = 1;
  on.opts.batch_eval = true;
  Verifier v_on(on.nl, on.opts);
  VerifyResult r_on = v_on.verify(cases);

  ChainRig off = build_chain(8);
  off.opts.max_waveforms_per_shard = 1;
  off.opts.batch_eval = false;
  Verifier v_off(off.nl, off.opts);
  VerifyResult r_off = v_off.verify(chain_cases(off));

  std::vector<std::string> batch = degradation_lines(r_on);
  std::vector<std::string> per_case = degradation_lines(r_off);
  ASSERT_FALSE(per_case.empty());
  EXPECT_EQ(batch, per_case);
  EXPECT_EQ(r_on.partial, r_off.partial);
  ASSERT_EQ(r_on.cases.size(), r_off.cases.size());
  for (std::size_t i = 0; i < r_on.cases.size(); ++i) {
    EXPECT_EQ(r_on.cases[i].degraded, r_off.cases[i].degraded) << i;
    EXPECT_EQ(r_on.cases[i].violations.size(), r_off.cases[i].violations.size()) << i;
  }
}

TEST(ConcurrentDegradation, ExpiredDeadlineDoesNotLeakIntoTheNextRun) {
  // The warm-worker pattern: one long-lived Verifier, many verify() calls
  // with per-job time limits. A run that exhausts its budget (TV-W202,
  // partial) must not leave its expired deadline armed -- the next run with
  // a fresh generous limit completes clean instead of instantly degrading.
  ChainRig r = build_chain(8);
  std::vector<CaseSpec> cases = chain_cases(r);
  r.opts.time_limit_seconds = 1e-12;  // already expired at the first poll
  Verifier v(r.nl, r.opts);
  VerifyResult limited = v.verify(cases);
  EXPECT_TRUE(limited.partial);

  v.evaluator().set_time_limit(3600.0);
  VerifyResult fresh = v.verify(cases);
  EXPECT_FALSE(fresh.partial)
      << "the expired deadline of the previous run leaked into this one";
  EXPECT_EQ(fresh.cases.size(), cases.size());

  // Re-running with another tiny budget degrades again: each verify() arms
  // its own deadline from the configured limit, none inherits a stale one.
  v.evaluator().set_time_limit(1e-12);
  EXPECT_TRUE(v.verify(cases).partial);
}

TEST(ConcurrentDegradation, ViolationReportsMatchDespiteDegradation) {
  // The degraded runs must still produce deterministic violation reports
  // identical across job counts (the tier-1 invariant, under pressure).
  ChainRig r = build_chain(8);
  std::vector<CaseSpec> cases = chain_cases(r);
  r.opts.max_waveforms_per_shard = 1;

  VerifierOptions a = r.opts;
  a.jobs = 1;
  Verifier va(r.nl, a);
  VerifyResult ra = va.verify(cases);
  VerifierOptions b = r.opts;
  b.jobs = 4;
  Verifier vb(r.nl, b);
  VerifyResult rb = vb.verify(cases);

  ASSERT_EQ(ra.cases.size(), rb.cases.size());
  EXPECT_EQ(ra.violations.size(), rb.violations.size());
  for (std::size_t i = 0; i < ra.cases.size(); ++i) {
    ASSERT_EQ(ra.cases[i].violations.size(), rb.cases[i].violations.size()) << i;
    for (std::size_t j = 0; j < ra.cases[i].violations.size(); ++j) {
      EXPECT_EQ(ra.cases[i].violations[j].message, rb.cases[i].violations[j].message);
    }
  }
}

}  // namespace
}  // namespace tv
