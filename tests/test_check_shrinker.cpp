// Tests for the greedy counterexample shrinkers (src/check/shrinker.cpp)
// and the paste-into-gtest repro emitter. The predicates here are synthetic
// "bugs" so the tests pin the delta-debugging mechanics without depending
// on a real oracle failure existing.
#include "check/shrinker.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace tv::check {
namespace {

TEST(Shrinker, CircuitShrinkReachesPredicateCore) {
  CircuitSpec s;
  s.period_ns = 200;
  s.data_toggle_ns = 50;
  s.data_change_ns = 9;
  s.stages.push_back({StageKind::Xor2, 5, 9, 4, 6, true, 3, 2});
  s.stages.push_back({StageKind::MuxFastSlow, 2, 4, 8, 12, false, 0, 1});
  s.stages.push_back({StageKind::Buf, 1, 7, 4, 6, false, 0, 0});
  s.sink = SinkKind::LatchSR;
  s.clock = {30, 10, -2, 3, false, true, 'H', false, 0, 0};
  s.sink_dmin_ns = 2;
  s.sink_dmax_ns = 5;
  s.setup_ns = 6;
  s.hold_ns = 2;
  s.second_stage = true;
  s.stage2_edge_units = 44;
  s.with_case = true;

  // The "bug" only needs the gated clock and a period of at least 100 ns;
  // everything else must shrink away.
  auto pred = [](const CircuitSpec& c) { return c.clock.gated && c.period_ns >= 100; };
  ASSERT_TRUE(pred(s));
  CircuitSpec m = shrink_circuit(s, pred);

  EXPECT_TRUE(pred(m));
  EXPECT_TRUE(m.stages.empty());
  EXPECT_FALSE(m.second_stage);
  EXPECT_FALSE(m.with_case);
  EXPECT_EQ(m.sink, SinkKind::Reg);
  EXPECT_EQ(m.clock.directive, '\0');
  EXPECT_EQ(m.clock.skew_minus_ns, 0);
  EXPECT_EQ(m.clock.skew_plus_ns, 0);
  EXPECT_TRUE(m.clock.precision);
  EXPECT_EQ(m.hold_ns, 0);
  EXPECT_EQ(m.setup_ns, 1);
  EXPECT_EQ(m.period_ns, 100);  // decremented exactly to the predicate floor
}

TEST(Shrinker, WaveShrinkDropsIrrelevantOps) {
  WaveCase w;
  w.base.period_ns = 60;
  w.base.fill = '0';
  w.base.ops = {{5, 10, '1'}, {20, 4, 'U'}, {40, 6, '1'}};
  w.base.skew_ns = 7;
  w.rise_min_ns = 2;
  w.rise_max_ns = 9;
  w.fall_min_ns = 1;
  w.fall_max_ns = 3;
  w.d1_min_ns = 1;
  w.d1_max_ns = 4;
  w.d2_min_ns = 2;
  w.d2_max_ns = 2;

  auto pred = [](const WaveCase& c) {
    for (const WaveOp& op : c.base.ops) {
      if (op.value == 'U') return true;
    }
    return false;
  };
  ASSERT_TRUE(pred(w));
  WaveCase m = shrink_wave(w, pred);

  EXPECT_TRUE(pred(m));
  ASSERT_EQ(m.base.ops.size(), 1u);
  EXPECT_EQ(m.base.ops[0].value, 'U');
  EXPECT_EQ(m.base.ops[0].width_ns, 1);
  EXPECT_EQ(m.base.ops[0].at_ns, 0);
  EXPECT_EQ(m.base.fill, 'S');
  EXPECT_EQ(m.base.skew_ns, 0);
  EXPECT_EQ(m.base.period_ns, 15);
  EXPECT_EQ(m.rise_max_ns, 0);
  EXPECT_EQ(m.fall_max_ns, 0);
  EXPECT_EQ(m.d1_max_ns, 0);
  EXPECT_EQ(m.d2_max_ns, 0);
}

TEST(Shrinker, PredicateExceptionsCountAsNotFailing) {
  // Mutations that make the spec unbuildable throw inside the predicate;
  // the shrinker must treat them as "does not fail" and keep the original.
  CircuitSpec s;
  s.period_ns = 77;
  auto pred = [](const CircuitSpec& c) {
    if (c.period_ns < 77) throw std::runtime_error("unbuildable");
    return true;
  };
  CircuitSpec m = shrink_circuit(s, pred);
  EXPECT_EQ(m.period_ns, 77);
}

TEST(Shrinker, GtestReproIsPasteable) {
  CircuitSpec s;
  s.seed = 7;
  std::string txt = gtest_repro(s, "conservatism");
  EXPECT_NE(txt.find("TEST(CheckRegression, ConservatismSeed7)"), std::string::npos);
  EXPECT_NE(txt.find("check_conservatism"), std::string::npos);
  EXPECT_NE(txt.find("ASSERT_FALSE"), std::string::npos);

  WaveCase w;
  w.seed = 9;
  std::string wt = gtest_repro(w, "rise-fall-coverage");
  EXPECT_NE(wt.find("RiseFallCoverageSeed9"), std::string::npos);
  EXPECT_NE(wt.find("check_wave_algebra"), std::string::npos);
}

}  // namespace
}  // namespace tv::check
