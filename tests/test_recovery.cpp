// Durable-state and crash-recovery regression suite (docs/recovery.md).
//
// Three subsystems under test:
//
//   * fixpoint snapshots (core/fixpoint.hpp): every example design's
//     baseline round-trips through the `.tvf` format byte-identically --
//     waveforms, reports, and effort counters -- and the rejection matrix
//     (truncation and bit flips at every section boundary plus seeded
//     random offsets) always produces exactly one TV-E31x diagnostic,
//     never a crash; `scaldtv --from-snapshot` on a damaged snapshot
//     exits 2. The same corruption sweep runs against the compiled
//     artifact (TV-E30x) so both durable formats share the guarantee.
//
//   * the write-ahead job journal (serve/journal.hpp): create/replay round
//     trip, the torn-final-line tolerance (exactly a missing newline, and
//     nothing else, is forgiven), the batch-binding digest, and the
//     derive_settlement classification matrix that makes resumed manifests
//     byte-identical to uninterrupted ones.
//
//   * atomic file replacement (util/atomic_file.hpp): the routine every
//     artifact/snapshot/manifest write goes through appears complete or
//     not at all and leaves no temp debris behind.
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled.hpp"
#include "core/fixpoint.hpp"
#include "core/verifier.hpp"
#include "diag/diagnostic.hpp"
#include "example_designs.hpp"
#include "serve/journal.hpp"
#include "util/atomic_file.hpp"
#include "util/fault.hpp"

namespace {

using namespace tv;

// ------------------------------------------------------- shared helpers

std::string render_full(const Netlist& nl, const VerifyResult& r) {
  std::ostringstream os;
  os << "converged=" << r.converged << " partial=" << r.partial
     << " base_events=" << r.base_events << " base_evals=" << r.base_evals << "\n";
  os << timing_summary(nl);
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "case " << c.name << " events=" << c.events << " converged=" << c.converged
       << "\n"
       << violations_report(c.violations);
  }
  return os.str();
}

std::uint32_t u32_at(const std::string& b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[off + i])) << (8 * i);
  return v;
}

std::uint64_t u64_at(const std::string& b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[off + i])) << (8 * i);
  return v;
}

// Every structurally meaningful offset of a wire-format container (both
// durable formats share the layout): each header field, each section-table
// entry, and each section's start and end in the file.
std::vector<std::size_t> section_boundaries(const std::string& bytes) {
  std::vector<std::size_t> offs = {0, 8, 12, 16, 24, 32, 36, 40};
  constexpr std::size_t kHdr = 40, kEntry = 24;
  if (bytes.size() < kHdr) return offs;
  std::uint32_t nsections = u32_at(bytes, 32);
  std::size_t data0 = kHdr + nsections * kEntry;
  for (std::uint32_t i = 0; i < nsections && data0 <= bytes.size(); ++i) {
    std::size_t entry = kHdr + i * kEntry;
    if (entry + kEntry > bytes.size()) break;
    offs.push_back(entry);
    std::size_t off = static_cast<std::size_t>(u64_at(bytes, entry + 8));
    std::size_t size = static_cast<std::size_t>(u64_at(bytes, entry + 16));
    if (data0 + off <= bytes.size()) offs.push_back(data0 + off);
    if (data0 + off + size <= bytes.size()) offs.push_back(data0 + off + size);
  }
  return offs;
}

// xorshift64: deterministic offsets for the random leg of the sweep.
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// The corruption sweep contract for one container: every truncation at a
/// section boundary and every single-bit flip at boundaries and seeded
/// random offsets is either cleanly rejected -- exactly one diagnostic in
/// the format's code family, nullopt result -- or (bit flips in the
/// header's unhashed reserved word only) still loads; it never crashes.
template <typename LoadFn>
void corruption_sweep(const std::string& bytes, const char* code_prefix,
                      LoadFn load, const char* what) {
  auto expect_clean_reject = [&](const std::string& mutated, const std::string& how) {
    diag::DiagnosticEngine diags;
    bool loaded = load(mutated, diags);
    EXPECT_FALSE(loaded) << what << ": " << how;
    ASSERT_EQ(diags.error_count(), 1u) << what << ": " << how;
    EXPECT_EQ(diags.diagnostics().at(0).code.substr(0, 6), code_prefix)
        << what << ": " << how << " reported " << diags.diagnostics().at(0).code;
  };

  std::vector<std::size_t> boundaries = section_boundaries(bytes);
  for (std::size_t b : boundaries) {
    for (std::size_t cut : {b, b + 1}) {
      if (cut >= bytes.size()) continue;
      expect_clean_reject(bytes.substr(0, cut),
                          "truncated at offset " + std::to_string(cut));
    }
  }

  auto flip = [&](std::size_t off, const char* leg) {
    std::string mutated = bytes;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x01);
    // The reserved header word (offsets 36-39) is the one unvalidated,
    // unhashed region; a flip there may legitimately still load.
    if (off >= 36 && off < 40) {
      diag::DiagnosticEngine diags;
      (void)load(mutated, diags);  // must simply not crash
      return;
    }
    expect_clean_reject(mutated, std::string(leg) + " bit flip at offset " +
                                     std::to_string(off));
  };
  for (std::size_t b : boundaries) {
    if (b < bytes.size()) flip(b, "boundary");
  }
  std::uint64_t seed = 0x5eedf00dULL ^ bytes.size();
  for (int i = 0; i < 64; ++i) {
    flip(static_cast<std::size_t>(next_rand(seed) % bytes.size()), "random");
  }
}

std::string serialize_example_artifact(std::size_t index, CompiledDesign* out = nullptr) {
  examples::ExampleDesign d = examples::all_example_designs()[index];
  CompiledSummary summary;
  summary.primitives = d.netlist->num_prims();
  summary.unique_signals = d.netlist->num_signals();
  CompiledDesign design =
      compile_design(d.name, *d.netlist, d.options, d.cases, summary);
  std::string bytes = serialize_compiled(design);
  if (out != nullptr) *out = std::move(design);
  return bytes;
}

// Verifies example `index` and snapshots its fixpoint.
std::string snapshot_example(std::size_t index) {
  examples::ExampleDesign d = examples::all_example_designs()[index];
  Verifier v(*d.netlist, d.options);
  v.verify(d.cases);
  return v.snapshot(d.name);
}

// ------------------------------------------------- fixpoint round trip

TEST(SnapshotRoundTrip, EveryExampleRestoresIdentically) {
  const std::size_t n = examples::all_example_designs().size();
  ASSERT_GE(n, 5u);
  for (std::size_t i = 0; i < n; ++i) {
    examples::ExampleDesign a = examples::all_example_designs()[i];
    Verifier va(*a.netlist, a.options);
    va.verify(a.cases);
    std::string snap = va.snapshot(a.name);

    diag::DiagnosticEngine diags;
    std::optional<FixpointState> st = load_fixpoint(snap, a.name, diags);
    ASSERT_TRUE(st.has_value()) << a.name;

    examples::ExampleDesign b = examples::all_example_designs()[i];
    Verifier vb(*b.netlist, b.options);
    ASSERT_TRUE(vb.restore(*st, 0, diags)) << a.name;
    EXPECT_FALSE(diags.has_errors()) << a.name;
    // Restoring evaluates nothing: the cold baseline is never paid.
    EXPECT_EQ(vb.evaluator().evals_performed(), 0u) << a.name;

    EXPECT_EQ(render_full(*a.netlist, va.baseline()),
              render_full(*b.netlist, vb.baseline()))
        << a.name << ": restored baseline must be byte-identical, counters included";
    EXPECT_EQ(snap, vb.snapshot(b.name))
        << a.name << ": re-serializing the restored baseline must reproduce the bytes";
  }
}

TEST(SnapshotRoundTrip, SerializationIsDeterministic) {
  EXPECT_EQ(snapshot_example(0), snapshot_example(0));
}

TEST(SnapshotRoundTrip, BindingRefusesADifferentDesign) {
  std::string snap = snapshot_example(0);
  diag::DiagnosticEngine diags;
  std::optional<FixpointState> st = load_fixpoint(snap, "bind", diags);
  ASSERT_TRUE(st.has_value());

  examples::ExampleDesign other = examples::all_example_designs()[1];
  Verifier v(*other.netlist, other.options);
  EXPECT_FALSE(v.restore(*st, 0, diags));
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().at(0).code, diag::kErrSnapshotBinding);
  // The refusal left the verifier untouched: no baseline to reverify from.
  EXPECT_FALSE(v.has_baseline());
}

TEST(SnapshotRoundTrip, BindingRefusesAWrongArtifactHash) {
  CompiledDesign design;
  serialize_example_artifact(0, &design);
  Verifier v(design.netlist, design.options);
  v.verify(design.cases);
  std::string snap = v.snapshot("bind", design.content_hash);

  diag::DiagnosticEngine diags;
  std::optional<FixpointState> st = load_fixpoint(snap, "bind", diags);
  ASSERT_TRUE(st.has_value());
  CompiledDesign again;
  serialize_example_artifact(0, &again);
  Verifier v2(again.netlist, again.options);
  EXPECT_FALSE(v2.restore(*st, design.content_hash ^ 1, diags));
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().at(0).code, diag::kErrSnapshotBinding);
}

TEST(SnapshotReject, MissingFileReportsIo) {
  diag::DiagnosticEngine diags;
  EXPECT_FALSE(load_fixpoint_file("/nonexistent/baseline.tvf", diags).has_value());
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().at(0).code, diag::kErrSnapshotIo);
}

TEST(SnapshotReject, BadMagicAndVersionSkew) {
  std::string snap = snapshot_example(0);
  {
    std::string bytes = snap;
    bytes[0] = 'X';
    diag::DiagnosticEngine diags;
    EXPECT_FALSE(load_fixpoint(bytes, "magic", diags).has_value());
    ASSERT_EQ(diags.error_count(), 1u);
    EXPECT_EQ(diags.diagnostics().at(0).code, diag::kErrSnapshotMagic);
  }
  {
    std::string bytes = snap;
    bytes[12] = static_cast<char>(kFixpointFormatVersion + 1);
    diag::DiagnosticEngine diags;
    EXPECT_FALSE(load_fixpoint(bytes, "skew", diags).has_value());
    ASSERT_EQ(diags.error_count(), 1u);
    EXPECT_EQ(diags.diagnostics().at(0).code, diag::kErrSnapshotVersion);
  }
}

// --------------------------------------------------- corruption sweeps

TEST(CorruptionSweep, SnapshotAlwaysRejectsCleanly) {
  std::string snap = snapshot_example(0);
  corruption_sweep(snap, "TV-E31",
                   [](const std::string& bytes, diag::DiagnosticEngine& diags) {
                     return load_fixpoint(bytes, "sweep", diags).has_value();
                   },
                   "snapshot");
}

TEST(CorruptionSweep, ArtifactAlwaysRejectsCleanly) {
  std::string artifact = serialize_example_artifact(0);
  corruption_sweep(artifact, "TV-E30",
                   [](const std::string& bytes, diag::DiagnosticEngine& diags) {
                     return load_compiled(bytes, "sweep", diags).has_value();
                   },
                   "artifact");
}

// -------------------------------------------------- write-ahead journal

serve::JobSpec make_job(const std::string& id) {
  serve::JobSpec j;
  j.id = id;
  j.design = "designs/" + id + ".shdl";
  return j;
}

class TempPath {
 public:
  TempPath() {
    char tmpl[] = "/tmp/tv_recovery_test_XXXXXX";
    int fd = mkstemp(tmpl);
    path_ = tmpl;
    if (fd >= 0) close(fd);
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  std::string read() const {
    std::ifstream in(path_, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  void write(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

 private:
  std::string path_;
};

TEST(Journal, CreateReplayRoundTrip) {
  TempPath file;
  std::vector<serve::JobSpec> jobs = {make_job("a"), make_job("b")};
  std::string error;
  auto j = serve::Journal::create(file.path(), jobs, 7, 3, serve::BatchPolicy{}, &error);
  ASSERT_TRUE(j) << error;
  j->record_launch("a", 1);
  j->record_outcome("a", 1, "exit:5");
  j->record_launch("a", 2);
  j->record_outcome("a", 2, "exit:0");
  j->record_settle("a", serve::JobState::Done);
  j->record_launch("b", 1);  // interrupted: no outcome yet
  EXPECT_TRUE(j->ok());
  j.reset();

  auto replay = serve::replay_journal(file.path(), &error);
  ASSERT_TRUE(replay) << error;
  EXPECT_EQ(replay->version, serve::kJournalVersion);
  EXPECT_EQ(replay->num_jobs, 2u);
  EXPECT_EQ(replay->digest, serve::jobs_digest(jobs));
  EXPECT_EQ(replay->seed, 7u);
  EXPECT_EQ(replay->max_attempts, 3);
  ASSERT_EQ(replay->jobs.count("a"), 1u);
  EXPECT_EQ(replay->jobs.at("a").outcomes,
            (std::vector<std::string>{"exit:5", "exit:0"}));
  EXPECT_TRUE(replay->jobs.at("a").settled);
  EXPECT_EQ(replay->jobs.at("a").state, serve::JobState::Done);
  // b's launch was write-ahead intent only: no outcome, so attempt 1 simply
  // runs again on resume.
  ASSERT_EQ(replay->jobs.count("b"), 1u);
  EXPECT_TRUE(replay->jobs.at("b").outcomes.empty());
  EXPECT_FALSE(replay->jobs.at("b").settled);
}

TEST(Journal, TornFinalLineIsDroppedSilently) {
  TempPath file;
  std::vector<serve::JobSpec> jobs = {make_job("a")};
  std::string error;
  auto j = serve::Journal::create(file.path(), jobs, 0, 3, serve::BatchPolicy{}, &error);
  ASSERT_TRUE(j) << error;
  j->record_launch("a", 1);
  j->record_outcome("a", 1, "exit:0");
  j.reset();

  std::string bytes = file.read();
  // A crash mid-append leaves a prefix of a record with no newline. Every
  // such prefix -- including one that happens to parse -- must be dropped:
  // a record is durable only once its newline hit the disk.
  for (std::size_t cut = 1; cut < 40; cut += 7) {
    std::string torn = bytes + std::string("{\"job\": \"a\", \"attempt\": 2, "
                                           "\"event\": \"launch\"}")
                                   .substr(0, cut);
    file.write(torn);
    auto replay = serve::replay_journal(file.path(), &error);
    ASSERT_TRUE(replay) << error << " (cut " << cut << ")";
    EXPECT_EQ(replay->jobs.at("a").outcomes.size(), 1u) << "cut " << cut;
  }
}

TEST(Journal, MidFileGarbageFailsLoudly) {
  TempPath file;
  std::vector<serve::JobSpec> jobs = {make_job("a")};
  std::string error;
  auto j = serve::Journal::create(file.path(), jobs, 0, 3, serve::BatchPolicy{}, &error);
  ASSERT_TRUE(j) << error;
  j->record_launch("a", 1);
  j.reset();

  // Newline-terminated garbage is NOT a torn tail -- it claims to be a
  // complete record, and replaying around it would be a guess.
  file.write(file.read() + "not json\n");
  EXPECT_FALSE(serve::replay_journal(file.path(), &error));
  EXPECT_FALSE(error.empty());

  // So is a well-formed line with an unknown event.
  j = serve::Journal::create(file.path(), jobs, 0, 3, serve::BatchPolicy{}, &error);
  ASSERT_TRUE(j);
  j.reset();
  file.write(file.read() + "{\"job\": \"a\", \"event\": \"vanish\"}\n");
  EXPECT_FALSE(serve::replay_journal(file.path(), &error));
}

TEST(Journal, ReplayValidatesAttemptOrder) {
  TempPath file;
  std::vector<serve::JobSpec> jobs = {make_job("a")};
  std::string error;
  auto j = serve::Journal::create(file.path(), jobs, 0, 3, serve::BatchPolicy{}, &error);
  ASSERT_TRUE(j) << error;
  j.reset();
  // Attempt 2 launching before any attempt-1 outcome exists cannot come
  // from our writer.
  file.write(file.read() + "{\"job\": \"a\", \"attempt\": 2, \"event\": \"launch\"}\n");
  EXPECT_FALSE(serve::replay_journal(file.path(), &error));
  EXPECT_FALSE(error.empty());
}

TEST(Journal, DigestBindsEveryJobField) {
  std::vector<serve::JobSpec> base = {make_job("a"), make_job("b")};
  std::uint64_t d0 = serve::jobs_digest(base);
  EXPECT_EQ(d0, serve::jobs_digest(base));  // deterministic

  auto differs = [&](auto mutate, const char* what) {
    std::vector<serve::JobSpec> jobs = base;
    mutate(jobs);
    EXPECT_NE(serve::jobs_digest(jobs), d0) << what;
  };
  differs([](auto& j) { j[0].id = "c"; }, "id");
  differs([](auto& j) { j[1].design = "other.shdl"; }, "design");
  differs([](auto& j) { j[0].compiled = true; }, "compiled flag");
  differs([](auto& j) { j[0].stdlib = true; }, "stdlib flag");
  differs([](auto& j) { j[1].time_limit = 1.5; }, "time limit");
  differs([](auto& j) { j[0].fault = "io.read@1:fail"; }, "fault spec");
  differs([](auto& j) { j[0].reverify = "delta.json"; }, "reverify delta");
  differs([](auto& j) { std::swap(j[0], j[1]); }, "job order");
  differs([](auto& j) { j.pop_back(); }, "job count");
}

TEST(Journal, DeriveSettlementMatchesTheSupervisor) {
  using serve::derive_settlement;
  using serve::JobState;
  JobState s;
  // Terminal exits settle immediately.
  EXPECT_TRUE(derive_settlement({"exit:0"}, 3, false, &s));
  EXPECT_EQ(s, JobState::Done);
  EXPECT_TRUE(derive_settlement({"exit:1"}, 3, false, &s));
  EXPECT_EQ(s, JobState::Violations);
  EXPECT_TRUE(derive_settlement({"exit:3"}, 3, false, &s));
  EXPECT_EQ(s, JobState::Degraded);
  EXPECT_TRUE(derive_settlement({"exit:2"}, 3, false, &s));
  EXPECT_EQ(s, JobState::InputError);
  // Transients retry until max_attempts, then the job is crashed.
  EXPECT_FALSE(derive_settlement({"exit:5"}, 3, false, &s));
  EXPECT_FALSE(derive_settlement({"signal:9", "timeout"}, 3, false, &s));
  EXPECT_TRUE(derive_settlement({"signal:9", "timeout", "spawn-failed"}, 3, false, &s));
  EXPECT_EQ(s, JobState::Crashed);
  // A recovery after transients settles with the final verdict.
  EXPECT_TRUE(derive_settlement({"exit:5", "signal:6", "exit:0"}, 3, false, &s));
  EXPECT_EQ(s, JobState::Done);
  // No attempts yet: nothing to settle.
  EXPECT_FALSE(derive_settlement({}, 3, false, &s));
}

TEST(Journal, DeriveSettlementMemLimitPolicy) {
  using serve::derive_settlement;
  using serve::JobState;
  JobState s;
  // Default policy: one breach is terminal ResourceExhausted, immediately,
  // regardless of remaining retry budget.
  EXPECT_TRUE(derive_settlement({"mem-limit"}, 3, false, &s));
  EXPECT_EQ(s, JobState::ResourceExhausted);
  EXPECT_TRUE(derive_settlement({"exit:5", "mem-limit"}, 3, false, &s));
  EXPECT_EQ(s, JobState::ResourceExhausted);
  // --mem-retry: breaches are transient until attempts run out...
  EXPECT_FALSE(derive_settlement({"mem-limit"}, 3, true, &s));
  EXPECT_FALSE(derive_settlement({"mem-limit", "mem-limit"}, 3, true, &s));
  // ...then the job settles ResourceExhausted when the final attempt
  // breached, and a later verdict still wins.
  EXPECT_TRUE(derive_settlement({"mem-limit", "mem-limit", "mem-limit"}, 3, true, &s));
  EXPECT_EQ(s, JobState::ResourceExhausted);
  EXPECT_TRUE(derive_settlement({"mem-limit", "exit:0"}, 3, true, &s));
  EXPECT_EQ(s, JobState::Done);
  // A mem-limit breach followed by ordinary transients exhausting the
  // budget is a crash story, not a budget story: the last attempt decides.
  EXPECT_TRUE(derive_settlement({"mem-limit", "signal:9", "timeout"}, 3, true, &s));
  EXPECT_EQ(s, JobState::Crashed);
}

TEST(Journal, PolicyHeaderRoundTripsAndQuarantineLedgerReplays) {
  TempPath file;
  std::vector<serve::JobSpec> jobs = {make_job("a"), make_job("b"), make_job("c")};
  serve::BatchPolicy pol;
  pol.mem_limit_mb = 512;
  pol.mem_retry = true;
  pol.max_queue = 4;
  pol.quarantine_after = 2;
  std::string error;
  auto j = serve::Journal::create(file.path(), jobs, 9, 3, pol, &error);
  ASSERT_TRUE(j) << error;
  // Decision states carry no outcomes: their settle records (and the
  // breaker's ledger record) are load-bearing on replay.
  j->record_quarantine("00000000deadbeef");
  j->record_settle("a", serve::JobState::Quarantined);
  j->record_settle("b", serve::JobState::Shed);
  ASSERT_TRUE(j->ok()) << j->error();
  j.reset();

  auto replay = serve::replay_journal(file.path(), &error);
  ASSERT_TRUE(replay) << error;
  EXPECT_EQ(replay->policy.mem_limit_mb, 512);
  EXPECT_TRUE(replay->policy.mem_retry);
  EXPECT_EQ(replay->policy.max_queue, 4);
  EXPECT_EQ(replay->policy.quarantine_after, 2);
  ASSERT_EQ(replay->quarantined_keys.size(), 1u);
  EXPECT_EQ(replay->quarantined_keys[0], "00000000deadbeef");
  ASSERT_EQ(replay->jobs.count("a"), 1u);
  EXPECT_TRUE(replay->jobs.at("a").settled);
  EXPECT_EQ(replay->jobs.at("a").state, serve::JobState::Quarantined);
  ASSERT_EQ(replay->jobs.count("b"), 1u);
  EXPECT_TRUE(replay->jobs.at("b").settled);
  EXPECT_EQ(replay->jobs.at("b").state, serve::JobState::Shed);
}

TEST(Journal, MalformedPolicyHeaderFailsLoudly) {
  TempPath file;
  std::vector<serve::JobSpec> jobs = {make_job("a")};
  std::string error;
  auto j = serve::Journal::create(file.path(), jobs, 0, 3, serve::BatchPolicy{}, &error);
  ASSERT_TRUE(j) << error;
  j.reset();
  std::string bytes = file.read();

  // A header missing a version-2 policy field cannot come from our writer.
  std::string missing = bytes;
  std::size_t at = missing.find(", \"max_queue\": 0");
  ASSERT_NE(at, std::string::npos);
  missing.erase(at, std::string(", \"max_queue\": 0").size());
  file.write(missing);
  EXPECT_FALSE(serve::replay_journal(file.path(), &error));
  EXPECT_FALSE(error.empty());

  // So does a policy field with a nonsense value.
  std::string negative = bytes;
  at = negative.find("\"quarantine_after\": 0");
  ASSERT_NE(at, std::string::npos);
  negative.replace(at, std::string("\"quarantine_after\": 0").size(),
                   "\"quarantine_after\": -1");
  file.write(negative);
  EXPECT_FALSE(serve::replay_journal(file.path(), &error));
}

TEST(Journal, AppendFailureIsStickyAndLeavesAResumableFile) {
  // Disk pressure (ENOSPC) on a journal append: the failure latches, later
  // appends are no-ops, and everything written *before* the failure is a
  // valid journal a restarted daemon can replay.
  TempPath file;
  std::vector<serve::JobSpec> jobs = {make_job("a")};
  std::string error;
  auto j = serve::Journal::create(file.path(), jobs, 0, 3, serve::BatchPolicy{}, &error);
  ASSERT_TRUE(j) << error;
  j->record_launch("a", 1);
  j->record_outcome("a", 1, "exit:0");
  ASSERT_TRUE(j->ok());

  ASSERT_TRUE(fault::configure("io.write@1:fail"));
  j->record_settle("a", serve::JobState::Done);  // hits the injected ENOSPC
  EXPECT_FALSE(j->ok());
  EXPECT_NE(j->error().find("io.write"), std::string::npos) << j->error();
  j->record_launch("a", 2);  // sticky: silently dropped
  fault::reset();
  j.reset();

  auto replay = serve::replay_journal(file.path(), &error);
  ASSERT_TRUE(replay) << error;
  EXPECT_EQ(replay->jobs.at("a").outcomes, (std::vector<std::string>{"exit:0"}));
  EXPECT_FALSE(replay->jobs.at("a").settled);
  // The outcome survived, so settlement is still derivable on resume.
  serve::JobState s;
  EXPECT_TRUE(serve::derive_settlement(replay->jobs.at("a").outcomes, 3, false, &s));
  EXPECT_EQ(s, serve::JobState::Done);
}

// ------------------------------------------------------ atomic replace

TEST(AtomicFile, WriteCreatesAndReplaces) {
  TempPath file;
  std::string error;
  ASSERT_TRUE(util::atomic_write_file(file.path(), "first", &error)) << error;
  EXPECT_EQ(file.read(), "first");
  ASSERT_TRUE(util::atomic_write_file(file.path(), "second", &error)) << error;
  EXPECT_EQ(file.read(), "second");
}

TEST(AtomicFile, FailureLeavesNoDebris) {
  std::string error;
  EXPECT_FALSE(util::atomic_write_file("/nonexistent-dir/x/y", "data", &error));
  EXPECT_FALSE(error.empty());

  // A successful write must not leave its temp file behind either.
  TempPath file;
  ASSERT_TRUE(util::atomic_write_file(file.path(), "data", &error)) << error;
  std::string dir = file.path().substr(0, file.path().rfind('/'));
  std::string base = file.path().substr(file.path().rfind('/') + 1);
  DIR* d = opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    EXPECT_EQ(name.find("." + base + ".tmp."), std::string::npos)
        << "temp debris: " << name;
  }
  closedir(d);
}

TEST(AtomicFile, InjectedWriteFaultFailsCleanlyWithoutDebris) {
  // The io.write fault site models ENOSPC at the top of atomic_write_file:
  // the call fails before the temp file is even created, so the previous
  // contents survive complete and no `.tmp.` debris appears.
  TempPath file;
  std::string error;
  ASSERT_TRUE(util::atomic_write_file(file.path(), "durable", &error)) << error;
  ASSERT_TRUE(fault::configure("io.write@1:fail"));
  EXPECT_FALSE(util::atomic_write_file(file.path(), "lost", &error));
  fault::reset();
  EXPECT_NE(error.find("io.write"), std::string::npos) << error;
  EXPECT_EQ(file.read(), "durable");

  std::string dir = file.path().substr(0, file.path().rfind('/'));
  std::string base = file.path().substr(file.path().rfind('/') + 1);
  DIR* d = opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    EXPECT_EQ(name.find("." + base + ".tmp."), std::string::npos)
        << "temp debris: " << name;
  }
  closedir(d);
}

TEST(AtomicFile, ConcurrentWritersNeverCollideOrCorrupt) {
  // Regression: the temp-file name used to be derived from the pid alone,
  // so two concurrent writers in one process (warm workers snapshotting,
  // the daemon writing its manifest) picked the SAME temp path and raced
  // open/write/rename against each other. A process-wide counter now makes
  // every writer's temp name unique; the last rename wins with one
  // writer's payload intact.
  TempPath file;
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    payloads.push_back(std::string(1024 + 173 * static_cast<std::size_t>(t),
                                   static_cast<char>('a' + t)));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string error;
        if (!util::atomic_write_file(file.path(), payloads[static_cast<std::size_t>(t)],
                                     &error)) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  std::string got = file.read();
  bool intact = false;
  for (const std::string& p : payloads) intact = intact || got == p;
  EXPECT_TRUE(intact) << "torn final content, size " << got.size();

  std::string dir = file.path().substr(0, file.path().rfind('/'));
  std::string base = file.path().substr(file.path().rfind('/') + 1);
  DIR* d = opendir(dir.c_str());
  ASSERT_NE(d, nullptr);
  while (dirent* e = readdir(d)) {
    std::string name = e->d_name;
    EXPECT_EQ(name.find("." + base + ".tmp."), std::string::npos)
        << "temp debris: " << name;
  }
  closedir(d);
}

// --------------------------------- scaldtv --from-snapshot exit codes

#ifdef TV_SCALDTV_PATH
int run_scaldtv(const std::string& args) {
  std::string cmd = std::string(TV_SCALDTV_PATH) + " " + args + " >/dev/null 2>&1";
  return WEXITSTATUS(std::system(cmd.c_str()));
}

TEST(SnapshotExitCodes, DamagedSnapshotsExitTwoGoodOnesVerify) {
  CompiledDesign design;
  std::string artifact_bytes = serialize_example_artifact(0, &design);
  TempPath artifact;
  artifact.write(artifact_bytes);

  CompiledDesign fresh;
  serialize_example_artifact(0, &fresh);
  Verifier v(fresh.netlist, fresh.options);
  v.verify(fresh.cases);
  TempPath snap;
  std::string error;
  ASSERT_TRUE(write_fixpoint_file(v, "quickstart", fresh.content_hash, snap.path(),
                                  &error))
      << error;

  // Intact snapshot: the restored verdict matches the artifact's (example 0
  // carries one deliberate violation -- exit 1).
  EXPECT_EQ(run_scaldtv("--compiled " + artifact.path() + " --from-snapshot " +
                        snap.path()),
            1);

  std::string good = snap.read();
  snap.write(good.substr(0, good.size() / 2));  // truncated
  EXPECT_EQ(run_scaldtv("--compiled " + artifact.path() + " --from-snapshot " +
                        snap.path()),
            2);
  std::string flipped = good;
  flipped[good.size() - 3] = static_cast<char>(flipped[good.size() - 3] ^ 0x10);
  snap.write(flipped);  // corrupted payload
  EXPECT_EQ(run_scaldtv("--compiled " + artifact.path() + " --from-snapshot " +
                        snap.path()),
            2);
  EXPECT_EQ(run_scaldtv("--compiled " + artifact.path() +
                        " --from-snapshot /nonexistent/baseline.tvf"),
            2);
}

// ------------------------------------- disk pressure (ENOSPC) exit codes

int run_cmd(const std::string& cmd) {
  return WEXITSTATUS(std::system((cmd + " >/dev/null 2>&1").c_str()));
}

TEST(DiskPressureExitCodes, SnapshotWriteFailureExitsFiveAndKeepsTheOldFile) {
  CompiledDesign design;
  std::string artifact_bytes = serialize_example_artifact(0, &design);
  TempPath artifact;
  artifact.write(artifact_bytes);
  TempPath snap;

  // Clean run: the snapshot is written (exit 1 -- example 0 carries one
  // deliberate violation).
  EXPECT_EQ(run_cmd(std::string(TV_SCALDTV_PATH) + " --compiled " + artifact.path() +
                    " --write-snapshot " + snap.path()),
            1);
  std::string good = snap.read();
  ASSERT_FALSE(good.empty());

  // ENOSPC-shaped failure on the snapshot write: scaldtv reports the loss
  // loudly (exit 5, the transient code, so a supervisor retries it) and the
  // previous snapshot survives complete -- old-complete or new-complete,
  // never torn.
  EXPECT_EQ(run_cmd("TV_FAULT=io.write@1:fail " + std::string(TV_SCALDTV_PATH) +
                    " --compiled " + artifact.path() + " --write-snapshot " +
                    snap.path()),
            5);
  EXPECT_EQ(snap.read(), good);
}

#ifdef TV_SCALDTVC_PATH
TEST(DiskPressureExitCodes, CompilerOutputWriteFailureExitsTwo) {
  std::string design = std::string(TV_REPO_ROOT) + "/designs/regfile_example.shdl";
  TempPath out;
  EXPECT_EQ(run_cmd("TV_FAULT=io.write@1:fail " + std::string(TV_SCALDTVC_PATH) + " " +
                    design + " -o " + out.path()),
            2);
  EXPECT_EQ(out.read(), "");  // nothing half-written

  // The same compile succeeds once the disk behaves.
  EXPECT_EQ(run_cmd(std::string(TV_SCALDTVC_PATH) + " " + design + " -o " + out.path()),
            0);
  EXPECT_FALSE(out.read().empty());
}
#endif  // TV_SCALDTVC_PATH
#endif  // TV_SCALDTV_PATH

}  // namespace
