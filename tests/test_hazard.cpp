// The Fig 1-5 hazard: a register is conditionally clocked by
// REG CLOCK = CLOCK AND ENABLE. The ENABLE control wants to inhibit the
// pulse but only settles at 25 ns, while CLOCK is high 20-30 ns -- a 5 ns
// spurious pulse can reach the register. The "&A" evaluation directive
// (sec. 2.6) detects exactly this class of error.
#include <gtest/gtest.h>

#include "core/verifier.hpp"

namespace tv {
namespace {

using V = Value;

struct HazardCircuit {
  Netlist nl;
  VerifierOptions opts;
  SignalId reg_clock = kNoSignal;
  SignalId enable = kNoSignal;
};

HazardCircuit build(const char* enable_assertion) {
  HazardCircuit c;
  c.opts.period = from_ns(50.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Netlist& nl = c.nl;
  Ref clock = nl.ref("CLOCK .P20-30 &A");
  Ref enable = nl.ref(enable_assertion);
  Ref reg_clock = nl.ref("REG CLOCK");
  nl.and_gate("CLOCK GATE", from_ns(1.0), from_ns(2.0), {clock, enable}, reg_clock);
  c.reg_clock = reg_clock.id;
  c.enable = enable.id;

  Ref data = nl.ref("DATA .S0-45");
  Ref q = nl.ref("Q");
  nl.reg("REG", from_ns(1.0), from_ns(3.0), data, reg_clock, q);
  nl.min_pulse_width_chk("REG CK WIDTH", from_ns(4.0), 0, reg_clock);
  nl.finalize();
  return c;
}

TEST(Hazard, LateEnableIsDetected) {
  // ENABLE stable only from 25 ns (changing 20..25): it overlaps the
  // asserted clock interval [20, 30) -> hazard reported.
  HazardCircuit c = build("ENABLE .S25-70");
  Verifier v(c.nl, c.opts);
  VerifyResult r = v.verify();
  ASSERT_EQ(r.violations.size(), 1u) << violations_report(r.violations);
  EXPECT_EQ(r.violations[0].type, Violation::Type::Hazard);
  EXPECT_EQ(r.violations[0].signal, c.enable);
  EXPECT_NE(r.violations[0].message.find("NOT STABLE WHILE CLOCK ASSERTED"),
            std::string::npos);
}

TEST(Hazard, EarlyEnableIsClean) {
  // ENABLE stable from 15 ns on: no overlap with the clock pulse.
  HazardCircuit c = build("ENABLE .S15-65");
  Verifier v(c.nl, c.opts);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.violations.empty()) << violations_report(r.violations);
}

TEST(Hazard, DirectiveAssumesEnablingGate) {
  // With "&A" the gate output is computed as if ENABLE were true: the clock
  // pulse propagates cleanly (plus the 1-2 ns gate delay), so downstream
  // models see a well-formed clock rather than a worst-case blur.
  HazardCircuit c = build("ENABLE .S25-70");
  Verifier v(c.nl, c.opts);
  v.verify();
  Waveform rc = c.nl.signal(c.reg_clock).wave.with_skew_incorporated();
  EXPECT_EQ(rc.at(from_ns(20)), V::Zero);
  EXPECT_EQ(rc.at(from_ns(21)), V::Rise);
  EXPECT_EQ(rc.at(from_ns(22)), V::One);
  EXPECT_EQ(rc.at(from_ns(30.9)), V::One);
  EXPECT_EQ(rc.at(from_ns(31)), V::Fall);
  EXPECT_EQ(rc.at(from_ns(33)), V::Zero);
}

TEST(Hazard, WithoutDirectiveNoHazardCheckRuns) {
  // The same circuit without "&A": the AND is evaluated with the ordinary
  // worst-case tables (no hazard check, but also no clean clock).
  HazardCircuit c;
  c.opts.period = from_ns(50.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Ref clock = c.nl.ref("CLOCK .P20-30");
  Ref enable = c.nl.ref("ENABLE .S25-70");
  Ref reg_clock = c.nl.ref("REG CLOCK");
  c.nl.and_gate("CLOCK GATE", from_ns(1.0), from_ns(2.0), {clock, enable}, reg_clock);
  c.nl.finalize();
  Verifier v(c.nl, c.opts);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.violations.empty());
  // 1 AND C = C: the pulse region is blurred by the changing enable.
  EXPECT_EQ(c.nl.signal(reg_clock.id).wave.at(from_ns(23)), V::Change);
}

TEST(Hazard, MinPulseWidthCatchesNarrowGatedPulse) {
  // A variant in which the enable *shortens* the pulse: model the gate
  // without a directive but with a definite-valued enable that rises at
  // 25 ns (via a case), leaving only a 5 ns pulse < 8 ns minimum. This is
  // the failure mode Fig 1-5 describes ("a short, 5 nsec pulse, which may
  // clock the register").
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Ref clock = nl.ref("CLOCK .P20-30");
  // The (buggy) enable arrives as a clock-like signal high from 25 on.
  Ref enable = nl.ref("ENABLE .P25-45");
  Ref reg_clock = nl.ref("REG CLOCK");
  nl.and_gate("CLOCK GATE", 0, 0, {clock, enable}, reg_clock);
  nl.min_pulse_width_chk("REG CK WIDTH", from_ns(8.0), 0, reg_clock);
  nl.finalize();
  Verifier v(nl, opts);
  VerifyResult r = v.verify();
  ASSERT_EQ(r.violations.size(), 1u) << violations_report(r.violations);
  EXPECT_EQ(r.violations[0].type, Violation::Type::MinPulseHigh);
  EXPECT_EQ(r.violations[0].missed_by, from_ns(3.0));  // 5 ns pulse vs 8 ns
}

}  // namespace
}  // namespace tv
