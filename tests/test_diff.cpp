// Tests for verification diffing (the sec. 3.3.1 day-by-day workflow) and
// the multi-clock-rate least-common-multiple period rule of sec. 2.2.
#include "core/diff.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/verifier.hpp"
#include "gen/s1_design.hpp"
#include "hdl/parser.hpp"

namespace tv {
namespace {

VerifierOptions opts50() {
  VerifierOptions o;
  o.period = from_ns(50.0);
  o.units = ClockUnits::from_ns_per_unit(1.0);
  o.default_wire = WireDelay{0, 0};
  o.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  return o;
}

// "Day 1": a slow gate breaks setup. "Day 2": the gate was sped up but a
// new hold problem appeared.
void build_day(Netlist& nl, bool day2) {
  Ref ck = nl.ref("CK .P30-40");
  Ref d = nl.ref("D .S0-45");  // changing only 45..50
  Ref mid = nl.ref("MID");
  if (!day2) {
    nl.buf("SLOW GATE", from_ns(20), from_ns(29), d, mid);  // changing 15..29: setup miss
  } else {
    nl.buf("SLOW GATE", from_ns(2), from_ns(3), d, mid);
  }
  nl.setup_hold_chk("CAPTURE CHK", from_ns(2), 0, mid, ck);
  if (day2) {
    // A newly added path that violates hold on a second checker.
    Ref late = nl.ref("LATE .S32-81");  // changing 31..32: inside the hold window
    nl.setup_hold_chk("NEW CHK", 0, from_ns(2), late, ck);
  }
  nl.finalize();
}

TEST(Diff, TracksIntroducedFixedPersisting) {
  Netlist day1, day2;
  build_day(day1, false);
  build_day(day2, true);
  Verifier v1(day1, opts50()), v2(day2, opts50());
  VerifyResult r1 = v1.verify();
  VerifyResult r2 = v2.verify();
  ASSERT_FALSE(r1.violations.empty());
  ASSERT_FALSE(r2.violations.empty());

  VerifyDiff d = diff_results(day1, r1.violations, day2, r2.violations);
  ASSERT_EQ(d.fixed.size(), 1u);     // the slow-gate setup miss
  ASSERT_EQ(d.introduced.size(), 1u);  // the new hold miss
  EXPECT_EQ(d.introduced[0].type, Violation::Type::Hold);
  EXPECT_TRUE(d.persisting.empty());

  std::string report = diff_report(d);
  EXPECT_NE(report.find("1 new, 1 fixed, 0 persisting"), std::string::npos) << report;
  EXPECT_NE(report.find("NEW SINCE BASELINE"), std::string::npos);
  EXPECT_NE(report.find("FIXED"), std::string::npos);
}

TEST(Diff, IdenticalRunsShowOnlyPersisting) {
  Netlist a, b;
  build_day(a, false);
  build_day(b, false);
  Verifier va(a, opts50()), vb(b, opts50());
  VerifyResult ra = va.verify(), rb = vb.verify();
  VerifyDiff d = diff_results(a, ra.violations, b, rb.violations);
  EXPECT_TRUE(d.introduced.empty());
  EXPECT_TRUE(d.fixed.empty());
  EXPECT_EQ(d.persisting.size(), ra.violations.size());
}

// Sec. 2.2: "If different parts of the circuit being verified run at
// different clock rates, then the period specified is the least common
// multiple" -- a 30 ns instruction unit plus a 15 ns execution unit are
// verified over one 30 ns cycle in which the execution clock pulses twice.
TEST(MultiClock, LcmPeriodWithTwoDomains) {
  Netlist nl;
  VerifierOptions o;
  o.period = from_ns(std::lcm(30, 15));  // 30 ns
  o.units = ClockUnits::from_ns_per_unit(1.0);
  o.default_wire = WireDelay{0, 0};
  o.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  EXPECT_EQ(o.period, from_ns(30.0));

  // Instruction-unit clock: one pulse per 30 ns cycle.
  Ref iclk = nl.ref("I CLK .P2-6");
  // Execution-unit clock: 15 ns period = two pulses per verified cycle.
  Ref eclk = nl.ref("E CLK .P2-4,17-19");

  // An execution-unit register captures twice per verified cycle; its data
  // is regenerated after each execution clock and must meet setup at both
  // edges.
  Ref edata = nl.ref("E DATA", 8);
  Ref eq = nl.ref("E Q", 8);
  nl.reg("E REG", from_ns(1), from_ns(2), edata, eclk, eq, 8);
  nl.chg("E LOGIC", from_ns(3), from_ns(6), {eq}, edata, 8);
  nl.setup_hold_chk("E CHK", from_ns(1.5), from_ns(0.5), edata, eclk, 8);

  // The instruction unit consumes the execution result once per cycle.
  Ref iq = nl.ref("I Q", 8);
  nl.reg("I REG", from_ns(1), from_ns(2), eq, iclk, iq, 8);
  nl.finalize();

  Verifier v(nl, o);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.violations.empty()) << violations_report(r.violations);

  // The execution register's output indeed changes after *both* pulses.
  Waveform q = nl.signal(eq.id).wave;
  auto changing_at = [&](double t) { return q.at(from_ns(t)) == Value::Change; };
  EXPECT_TRUE(changing_at(3.5));   // after the first edge (2 + delay 1..2)
  EXPECT_TRUE(changing_at(18.5));  // after the second edge (17 + delay)
  EXPECT_FALSE(changing_at(12.0));
}

TEST(MultiClock, EdgeCountMatchesAssertion) {
  Netlist nl;
  Ref eclk = nl.ref("E CLK .P2-4,17-19");
  nl.buf("B", 0, 0, eclk, nl.ref("OUT"));
  nl.finalize();
  VerifierOptions o;
  o.period = from_ns(30.0);
  o.units = ClockUnits::from_ns_per_unit(1.0);
  o.default_wire = WireDelay{0, 0};
  o.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Evaluator ev(nl, o);
  ev.initialize();
  ev.propagate();
  auto rises = edge_windows(ev.wave(eclk.id).with_skew_incorporated(), true);
  EXPECT_EQ(rises.size(), 2u);
}

}  // namespace
}  // namespace tv

namespace tv {
namespace {

// Day-by-day loop on the synthetic S-1 (sec. 3.3.1): day 1 is clean; on
// day 2 a designer slows one stage's result gate; the diff isolates the
// regression; on day 3 the fix lands and the diff confirms it.
TEST(Diff, S1DayByDayRegressionLoop) {
  gen::S1Params p;
  p.stages = 4;
  p.clock_tree_bufs = 0;

  auto verify_day = [&](bool broken, std::unique_ptr<hdl::ElaboratedDesign>& out) {
    std::string src = gen::generate_s1_shdl(p);
    if (broken) {
      auto pos = src.find("or [delay=1.0:3.0");
      ASSERT_NE(pos, std::string::npos);
      src.replace(pos, std::string("or [delay=1.0:3.0").size(), "or [delay=1.0:9.5");
    }
    out = std::make_unique<hdl::ElaboratedDesign>(hdl::elaborate(hdl::parse(src)));
  };

  std::unique_ptr<hdl::ElaboratedDesign> day1, day2, day3;
  verify_day(false, day1);
  verify_day(true, day2);
  verify_day(false, day3);
  Verifier v1(day1->netlist, day1->options), v2(day2->netlist, day2->options),
      v3(day3->netlist, day3->options);
  VerifyResult r1 = v1.verify(), r2 = v2.verify(), r3 = v3.verify();

  EXPECT_TRUE(r1.violations.empty()) << violations_report(r1.violations);
  EXPECT_FALSE(r2.violations.empty());

  VerifyDiff d12 = diff_results(day1->netlist, r1.violations, day2->netlist, r2.violations);
  EXPECT_EQ(d12.introduced.size(), r2.violations.size());
  EXPECT_TRUE(d12.fixed.empty());

  VerifyDiff d23 = diff_results(day2->netlist, r2.violations, day3->netlist, r3.violations);
  EXPECT_EQ(d23.fixed.size(), r2.violations.size());
  EXPECT_TRUE(d23.introduced.empty());
  EXPECT_TRUE(r3.violations.empty());
}

}  // namespace
}  // namespace tv
