// Tests for the event-driven evaluator (thesis sec. 2.9): initialization
// rules, directive-string propagation across gate levels (the EVAL STR PTR
// mechanism of Fig 2-7), event accounting, and wire-delay interplay.
#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include "core/verifier.hpp"

namespace tv {
namespace {

using V = Value;

VerifierOptions opts() {
  VerifierOptions o;
  o.period = from_ns(50.0);
  o.units = ClockUnits::from_ns_per_unit(1.0);
  o.default_wire = WireDelay{0, 0};
  o.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  return o;
}

TEST(Evaluator, InitializationRules) {
  Netlist nl;
  Ref clock = nl.ref("CK .P10-20");
  Ref stable = nl.ref("S .S5-45");
  Ref floating = nl.ref("FLOATING");
  Ref driven = nl.ref("DRIVEN");
  nl.or_gate("G", 0, 0, {clock, stable, floating}, driven);
  nl.finalize();
  Evaluator ev(nl, opts());
  ev.initialize();
  // Clock assertions seed their waveform; stable assertions theirs;
  // undriven unasserted signals become always-STABLE; driven signals start
  // UNKNOWN until evaluation.
  EXPECT_EQ(ev.wave(clock.id).at(from_ns(15)), V::One);
  EXPECT_EQ(ev.wave(stable.id).at(from_ns(10)), V::Stable);
  EXPECT_EQ(ev.wave(stable.id).at(from_ns(47)), V::Change);
  EXPECT_EQ(ev.wave(floating.id).at(0), V::Stable);
  EXPECT_EQ(ev.wave(driven.id).at(0), V::Unknown);
  ev.propagate();
  EXPECT_NE(ev.wave(driven.id).at(from_ns(15)), V::Unknown);
}

TEST(Evaluator, MultiLevelDirectiveString) {
  // "HZZW"-style strings: each gate level consumes one letter and passes
  // the tail with its output (sec. 2.8). Three levels: H then Z then E.
  Netlist nl;
  Ref ck = nl.ref("CK .P10-20 &HZ");
  Ref en1 = nl.ref("EN1 .S0-8");
  Ref g1 = nl.ref("G1 OUT");
  nl.and_gate("L1", from_ns(2), from_ns(4), {ck, en1}, g1);   // consumes 'H'
  Ref g2 = nl.ref("G2 OUT");
  nl.buf("L2", from_ns(2), from_ns(4), g1, g2);               // consumes 'Z'
  Ref g3 = nl.ref("G3 OUT");
  nl.buf("L3", from_ns(2), from_ns(4), g2, g3);               // plain 'E'
  nl.finalize();
  Evaluator ev(nl, opts());
  ev.initialize();
  ev.propagate();
  // L1: 'H' -> delay zeroed, enable assumed: output = clock exactly.
  EXPECT_EQ(ev.wave(g1.id).at(from_ns(15)), V::One);
  EXPECT_EQ(ev.wave(g1.id).at(from_ns(9)), V::Zero);
  EXPECT_EQ(nl.signal(g1.id).eval_str, "Z");
  // L2: propagated 'Z' -> also zero-delay.
  EXPECT_EQ(ev.wave(g2.id).at(from_ns(15)), V::One);
  EXPECT_EQ(ev.wave(g2.id).at(from_ns(9)), V::Zero);
  EXPECT_TRUE(nl.signal(g2.id).eval_str.empty());
  // L3: no directive left: the 2-4 ns delay applies.
  EXPECT_EQ(ev.wave(g3.id).at(from_ns(11)), V::Zero);
  EXPECT_EQ(ev.wave(g3.id).at(from_ns(12)), V::One);
}

TEST(Evaluator, PinDirectiveBeatsPropagatedString) {
  // A "&" string written on a connection overrides whatever string arrives
  // along the signal.
  Netlist nl;
  Ref ck = nl.ref("CK .P10-20 &ZZ");
  Ref mid = nl.ref("MID");
  nl.buf("L1", from_ns(3), from_ns(3), ck, mid);  // consumes first 'Z'
  Ref out = nl.ref("OUT");
  // The pin's own "&E" suppresses the propagated second 'Z'.
  nl.buf("L2", from_ns(3), from_ns(3), nl.ref("MID &E"), out);
  nl.finalize();
  Evaluator ev(nl, opts());
  ev.initialize();
  ev.propagate();
  EXPECT_EQ(ev.wave(mid.id).at(from_ns(10)), V::One);  // zero-delay level
  EXPECT_EQ(ev.wave(out.id).at(from_ns(12)), V::Zero); // delayed level
  EXPECT_EQ(ev.wave(out.id).at(from_ns(13)), V::One);
}

TEST(Evaluator, EventsCountOutputChangesOnly) {
  Netlist nl;
  Ref a = nl.ref("A .S0-8");
  Ref b = nl.ref("B");
  Ref c = nl.ref("C");
  nl.buf("B1", from_ns(1), from_ns(1), a, b);
  nl.buf("B2", from_ns(1), from_ns(1), b, c);
  nl.finalize();
  Evaluator ev(nl, opts());
  ev.initialize();
  std::size_t events = ev.propagate();
  // Two primitives, each output changes exactly once from UNKNOWN; the
  // worklist dedup means B2 is evaluated only once (B1's change lands
  // before B2 is popped), so evals == events here.
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(ev.evals_performed(), 2u);
}

TEST(Evaluator, WireDelayAppliesAtConsumer) {
  // The wire delay belongs to the consumer side: the signal's own waveform
  // stays undelayed; the driven gate sees it shifted.
  Netlist nl;
  Ref a = nl.ref("A .P10-20");
  Ref out = nl.ref("OUT");
  nl.buf("B", 0, 0, a, out);
  nl.set_wire_delay(a.id, from_ns(5), from_ns(5));
  nl.finalize();
  Evaluator ev(nl, opts());
  ev.initialize();
  ev.propagate();
  EXPECT_EQ(ev.wave(a.id).at(from_ns(10)), V::One);    // source: undelayed
  EXPECT_EQ(ev.wave(out.id).at(from_ns(10)), V::Zero); // consumer: +5 ns
  EXPECT_EQ(ev.wave(out.id).at(from_ns(15)), V::One);
}

TEST(Evaluator, CaseOnUndrivenSignalReseedsCone) {
  Netlist nl;
  Ref ctl = nl.ref("CTL");  // undriven, unasserted -> STABLE
  Ref a = nl.ref("A .P10-20");
  Ref out = nl.ref("OUT");
  nl.and_gate("G", 0, 0, {a, ctl}, out);
  nl.finalize();
  Evaluator ev(nl, opts());
  ev.initialize();
  ev.propagate();
  EXPECT_EQ(ev.wave(out.id).at(from_ns(15)), V::Stable);  // 1 AND S
  ev.apply_case(CaseSpec{"CTL=1", {{ctl.id, V::One}}});
  EXPECT_EQ(ev.wave(out.id).at(from_ns(15)), V::One);
  EXPECT_EQ(ev.wave(out.id).at(from_ns(5)), V::Zero);
  ev.apply_case(CaseSpec{"CTL=0", {{ctl.id, V::Zero}}});
  EXPECT_TRUE(ev.wave(out.id).is_constant());
  EXPECT_EQ(ev.wave(out.id).at(0), V::Zero);
}

TEST(Evaluator, ReinitializeClearsCaseState) {
  Netlist nl;
  Ref ctl = nl.ref("CTL");
  Ref out = nl.ref("OUT");
  nl.buf("B", 0, 0, ctl, out);
  nl.finalize();
  Evaluator ev(nl, opts());
  ev.initialize();
  ev.propagate();
  ev.apply_case(CaseSpec{"CTL=1", {{ctl.id, V::One}}});
  EXPECT_EQ(ev.wave(out.id).at(0), V::One);
  ev.clear_case();
  EXPECT_EQ(ev.wave(out.id).at(0), V::Stable);
}

TEST(Evaluator, ConvergedFlagAndEventCap) {
  // Without clocked elements a combinational loop may oscillate; the guard
  // must trip and report rather than hang.
  Netlist nl;
  Ref a = nl.ref("A");
  Ref b = nl.ref("B");
  nl.not_gate("N1", from_ns(1), from_ns(2), a, b);
  nl.not_gate("N2", from_ns(1), from_ns(2), b, a);
  nl.finalize();
  VerifierOptions o = opts();
  o.max_evals_per_prim = 8;
  Evaluator ev(nl, o);
  ev.initialize();
  ev.propagate();  // must terminate
  SUCCEED();
}

}  // namespace
}  // namespace tv
