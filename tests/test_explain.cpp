// Tests for violation explanation: the critical chain from a failed
// checker back to its origin.
#include "core/explain.hpp"

#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "gen/regfile_example.hpp"

namespace tv {
namespace {

TEST(Explain, TracesTheSlowChain) {
  // IN -> FAST buf -> A; IN -> SLOW buf -> B; OR(A, B) -> OUT; checker on
  // OUT. The chain must run through the slow branch.
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Ref in = nl.ref("IN .S10-55");
  Ref a = nl.ref("FAST OUT");
  nl.buf("FAST BUF", from_ns(1), from_ns(2), in, a);
  Ref b = nl.ref("SLOW OUT");
  nl.buf("SLOW BUF", from_ns(18), from_ns(24), in, b);
  Ref out = nl.ref("SUM");
  nl.or_gate("COMBINE", from_ns(1), from_ns(2), {a, b}, out);
  nl.setup_hold_chk("CHK", from_ns(3), 0, out, nl.ref("CK .P30-40"));
  nl.finalize();

  Verifier v(nl, opts);
  VerifyResult r = v.verify();
  ASSERT_EQ(r.violations.size(), 1u) << violations_report(r.violations);

  auto chain = explain_chain(v.evaluator(), r.violations[0]);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(chain[0].signal, out.id);
  EXPECT_EQ(chain[1].signal, b.id);  // the slow branch, not the fast one
  EXPECT_EQ(chain[2].signal, in.id);
  EXPECT_EQ(chain[2].driver, kNoPrim);
  // Settle times decrease toward the origin.
  EXPECT_GT(chain[0].settles_at, chain[1].settles_at - from_ns(3));
  EXPECT_GT(chain[1].settles_at, chain[2].settles_at);

  std::string report = explain_report(nl, chain);
  EXPECT_NE(report.find("SLOW OUT"), std::string::npos);
  EXPECT_NE(report.find("via SLOW BUF"), std::string::npos);
  EXPECT_NE(report.find("origin: assertion"), std::string::npos);
}

TEST(Explain, RegfileErrorTracesToAddressMux) {
  Netlist nl;
  gen::RegfileExample ex = gen::build_regfile_example(nl);
  Verifier v(nl, ex.options);
  VerifyResult r = v.verify();
  ASSERT_EQ(r.violations.size(), 2u);

  // First violation: the RAM address set-up. The chain runs ADR -> mux ->
  // select buffer -> the gated clock.
  auto chain = explain_chain(v.evaluator(), r.violations[0]);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(chain[0].signal, ex.adr);
  std::string report = explain_report(nl, chain);
  EXPECT_NE(report.find("via ADR MUX 10158"), std::string::npos) << report;
}

TEST(Explain, TerminatesOnFeedbackLoops) {
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.default_wire = WireDelay{0, 0};
  Ref q = nl.ref("Q");
  Ref d = nl.ref("D");
  nl.mux2("FB MUX", from_ns(1), from_ns(2), nl.ref("SEL"), q, nl.ref("NEW"), d);
  nl.reg("REG", from_ns(1), from_ns(2), d, nl.ref("CK .P10-20"), q);
  nl.setup_hold_chk("CHK", from_ns(5), from_ns(5), d, nl.ref("CK .P10-20"));
  nl.finalize();
  Verifier v(nl, opts);
  VerifyResult r = v.verify();
  for (const auto& viol : r.violations) {
    auto chain = explain_chain(v.evaluator(), viol);
    EXPECT_LE(chain.size(), nl.num_signals());  // visited-set terminates it
  }
  SUCCEED();
}

}  // namespace
}  // namespace tv
