// Property tests for the waveform interning layer (core/wave_table.hpp):
// canonicalization is idempotent, interning is exactly semantic equality,
// the waveform algebra preserves the sum-of-widths invariant on canonical
// inputs, and memo-cached evaluation is bit-identical to uncached
// evaluation across tvfuzz-generated netlists.
#include <gtest/gtest.h>

#include "check/oracles.hpp"
#include "core/evaluator.hpp"
#include "core/storage_stats.hpp"
#include "core/wave_table.hpp"

namespace {

using namespace tv;

Time sum_widths(const Waveform& w) {
  Time t = 0;
  for (const auto& s : w.segments()) t += s.width;
  return t;
}

TEST(InterningProperties, CanonicalizeIsIdempotent) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    check::WaveCase wc = check::random_wave_case(seed);
    Waveform w = check::materialize(wc.base);
    Waveform once = w.canonical();
    Waveform twice = once.canonical();
    EXPECT_TRUE(once == twice) << "seed " << seed;
    EXPECT_TRUE(once.is_canonical()) << "seed " << seed;
    // Canonicalization never changes meaning: same values pointwise.
    for (Time t = 0; t < w.period(); t += w.period() / 37 + 1) {
      EXPECT_EQ(w.at(t), once.at(t)) << "seed " << seed << " t " << t;
    }
  }
}

TEST(InterningProperties, SkewOnInactiveWaveformIsNotADifference) {
  // The satellite fix: diff/convergence/snapshot change detection used to
  // disagree about skew-only differences on activity-free waveforms. The
  // unified predicate says they are equal.
  Waveform a(from_ns(50.0), Value::Stable);
  Waveform b = a;
  b.set_skew(from_ns(3.0));
  EXPECT_FALSE(a == b);                 // structurally different...
  EXPECT_TRUE(a.equivalent(b));         // ...but semantically identical
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());

  WaveformTable table;
  EXPECT_EQ(table.intern(a), table.intern(b));

  // With activity the skew *is* meaning (it widens RISE/FALL windows).
  Waveform c(from_ns(50.0), Value::Stable);
  c.set(from_ns(10.0), from_ns(20.0), Value::Change);
  Waveform d = c;
  d.set_skew(from_ns(3.0));
  EXPECT_FALSE(c.equivalent(d));
  EXPECT_NE(table.intern(c), table.intern(d));
}

TEST(InterningProperties, InternMatchesSemanticEquality) {
  WaveformTable table;
  std::vector<Waveform> waves;
  std::vector<WaveformRef> refs;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    check::WaveCase wc = check::random_wave_case(seed);
    Waveform w = check::materialize(wc.base);
    waves.push_back(w);
    refs.push_back(table.intern(w));
  }
  for (std::size_t i = 0; i < waves.size(); ++i) {
    for (std::size_t j = 0; j < waves.size(); ++j) {
      EXPECT_EQ(refs[i] == refs[j], waves[i].equivalent(waves[j]))
          << "seeds " << i + 1 << " vs " << j + 1;
    }
    // Interning is stable: re-interning returns the same ref, and the
    // stored waveform is the canonical form of the input.
    EXPECT_EQ(table.intern(waves[i]), refs[i]);
    EXPECT_TRUE(table.get(refs[i]) == waves[i].canonical());
  }
  EXPECT_LE(table.size(), waves.size());
  EXPECT_GE(table.lookups(), 2 * waves.size());
}

TEST(InterningProperties, AlgebraPreservesWidthSum) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    check::WaveCase wc = check::random_wave_case(seed);
    Waveform w = check::materialize(wc.base).canonical();
    Waveform partner = check::materialize(check::random_wave_case(seed + 7000).base);
    if (partner.period() != w.period()) partner = Waveform(w.period(), Value::Stable);

    EXPECT_EQ(sum_widths(w), w.period()) << "seed " << seed;
    EXPECT_EQ(sum_widths(w.delayed(from_ns(wc.d1_min_ns), from_ns(wc.d1_max_ns))),
              w.period())
        << "seed " << seed << " delayed";
    EXPECT_EQ(sum_widths(w.with_skew_incorporated()), w.period())
        << "seed " << seed << " skew fold";
    EXPECT_EQ(sum_widths(w.delayed_rise_fall(
                  from_ns(wc.rise_min_ns), from_ns(wc.rise_max_ns),
                  from_ns(wc.fall_min_ns), from_ns(wc.fall_max_ns))),
              w.period())
        << "seed " << seed << " rise/fall";
    EXPECT_EQ(sum_widths(w.map(value_not)), w.period()) << "seed " << seed << " map";
    EXPECT_EQ(sum_widths(w.replaced(Value::Stable, Value::One)), w.period())
        << "seed " << seed << " replaced";
    EXPECT_EQ(sum_widths(Waveform::binary(w, partner, value_and)), w.period())
        << "seed " << seed << " binary";
  }
}

TEST(InterningProperties, MemoCachedEvaluationIsBitIdentical) {
  // The tentpole's soundness property across 64 tvfuzz-generated netlists:
  // interning + memo on vs off must produce identical waveforms, events,
  // reports, and per-case results (the same oracle tvfuzz --memo-diff runs).
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    check::CircuitSpec spec = check::random_spec(seed);
    auto failure = check::check_memo_equivalence(spec);
    EXPECT_FALSE(failure.has_value())
        << "seed " << seed << ": " << (failure ? failure->detail : "");
  }
}

TEST(InterningProperties, EvaluatorExposesInternStats) {
  check::BuiltCircuit bc = check::build(check::random_spec(11));
  Evaluator ev(bc.nl, bc.opts);
  ev.initialize();
  ev.propagate();
  ASSERT_NE(ev.intern_context(), nullptr);
  InternStats st = collect_intern_stats(*ev.intern_context());
  EXPECT_GT(st.unique_waveforms, 0u);
  EXPECT_GE(st.intern_lookups, st.unique_waveforms);
  // A second pass over the identical circuit must be served by the memo.
  ev.initialize();
  ev.propagate();
  InternStats st2 = collect_intern_stats(*ev.intern_context());
  EXPECT_GT(st2.memo_hits, 0u);
  EXPECT_EQ(st2.unique_waveforms, st.unique_waveforms);

  // Interning off: no context, evaluation still works.
  check::BuiltCircuit bc2 = check::build(check::random_spec(11));
  bc2.opts.interning = false;
  Evaluator ev2(bc2.nl, bc2.opts);
  ev2.initialize();
  ev2.propagate();
  EXPECT_EQ(ev2.intern_context(), nullptr);
  EXPECT_EQ(ev.events_processed(), ev2.events_processed());
}

TEST(InterningProperties, StorageStatsReportsUniqueWaveforms) {
  check::BuiltCircuit bc = check::build(check::random_spec(3));
  Evaluator ev(bc.nl, bc.opts);
  ev.initialize();
  ev.propagate();
  StorageBreakdown b = compute_storage(bc.nl);
  EXPECT_GT(b.unique_waveforms, 0u);
  EXPECT_LE(b.unique_waveforms, static_cast<std::size_t>(bc.nl.num_signals()));
  EXPECT_LE(b.unique_value_bytes, b.signal_values);
  EXPECT_GE(b.signals_per_unique_waveform, 1.0);
}

}  // namespace
