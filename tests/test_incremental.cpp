// Property suite for the incremental re-verification engine
// (core/incremental.*, docs/incremental.md):
//
//  * an empty delta splices the cached report back verbatim;
//  * a delta followed by its recorded inverse restores the original report
//    byte-for-byte;
//  * each edit family dirties exactly the fanout cone the ConeIndex
//    predicts (delay edits the output cone, wire/assertion edits the
//    signal cone, checker parameter edits only the checker itself);
//  * case-map edits re-evaluate only the edited case and splice the rest;
//  * an edit whose potential cone touches an unclocked feedback loop falls
//    back to a cold run -- and still renders identically;
//  * ConeIndex::is_current() goes stale when fanout edges change, and a
//    retargeted checker input is actually re-checked (the staleness
//    regression: a stale spliced verdict must never survive a retarget).
//
// Identity comparisons exclude the cumulative base_events/base_evals
// counters -- those are the speedup itself (see incremental.hpp).
#include "core/incremental.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "core/cone.hpp"
#include "core/verifier.hpp"

namespace tv {
namespace {

using V = Value;

// Everything observable except the evaluation-effort counters.
std::string render(const Netlist& nl, const VerifyResult& r) {
  std::ostringstream os;
  os << "converged " << (r.converged ? "yes" : "no") << " partial "
     << (r.partial ? "yes" : "no") << "\n";
  os << timing_summary(nl) << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "case " << c.name << " events=" << c.events << " converged="
       << (c.converged ? "yes" : "no") << " degraded=" << (c.degraded ? "yes" : "no")
       << "\n" << violations_report(c.violations);
  }
  return os.str();
}

// The two-island cone fixture from test_cone.cpp, with real checker timing
// (period 50ns, zero default wire delay and skews) and two case analyses so
// splice accounting is observable:
//
//   A .S10-45 --[G1 buf]--> B --[G2 or]--> D --(CHK setup/hold vs CK .P20-30)
//                 C .S0-40 ----^
//   X --[G3 buf]--> Y                       E .S18.5-58 (undriven, violating)
struct IncrFixture {
  Netlist nl;
  VerifierOptions opts;
  Ref a, b, c, d, ck, x, y, e;
  PrimId g1, g2, g3, chk;
  std::vector<CaseSpec> cases;

  IncrFixture() {
    opts.period = from_ns(50.0);
    opts.units = ClockUnits::from_ns_per_unit(1.0);
    opts.default_wire = WireDelay{0, 0};
    opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
    a = nl.ref("A .S10-45");
    b = nl.ref("B");
    c = nl.ref("C .S0-40");
    d = nl.ref("D");
    ck = nl.ref("CK .P20-30");
    x = nl.ref("X");
    y = nl.ref("Y");
    e = nl.ref("E .S18.5-58");
    g1 = nl.buf("G1", from_ns(1), from_ns(2), a, b);
    g2 = nl.or_gate("G2", from_ns(1), from_ns(2), {b, c}, d);
    g3 = nl.buf("G3", from_ns(1), from_ns(2), x, y);
    chk = nl.setup_hold_chk("CHK", from_ns(3), from_ns(2), d, ck);
    nl.finalize();
    cases.push_back(CaseSpec{"x0", {{x.id, V::Zero}}});
    cases.push_back(CaseSpec{"c1", {{c.id, V::One}}});
  }
};

// Builds a second pristine fixture, applies the same delta wholesale, and
// cold-verifies: the incremental render must match these bytes.
std::string cold_render(const NetlistDelta& delta) {
  IncrFixture f;
  apply_delta(f.nl, f.cases, delta);
  if (!f.nl.finalized()) f.nl.finalize();
  Verifier v(f.nl, f.opts);
  VerifyResult r = v.verify(f.cases);
  return render(f.nl, r);
}

TEST(Incremental, EmptyDeltaSplicesTheCachedReportVerbatim) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  VerifyResult base = v.verify(f.cases);
  ASSERT_TRUE(base.converged);
  const std::string before = render(f.nl, base);

  ReverifyStats st;
  VerifyResult again = v.reverify(NetlistDelta{}, &st);
  EXPECT_TRUE(st.incremental);
  EXPECT_TRUE(st.dirty_signals.empty());
  EXPECT_TRUE(st.dirty_prims.empty());
  EXPECT_EQ(render(f.nl, again), before);
  // Counters must not drift either: nothing was evaluated.
  EXPECT_EQ(again.base_events, base.base_events);
  EXPECT_EQ(again.base_evals, base.base_evals);
}

TEST(Incremental, DeltaPlusInverseRestoresTheOriginalBytes) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  VerifyResult base = v.verify(f.cases);
  const std::string before = render(f.nl, base);

  // A mixed delta: slow G1 down, override B's wire delay, and retarget
  // G2's side input from C to the other island's Y (structural).
  NetlistDelta delta;
  delta.prims.push_back({f.g1, std::nullopt, std::make_pair(from_ns(2), from_ns(4))});
  delta.wires.push_back({f.b.id, WireDelay{0, from_ns(1)}});
  delta.pins.push_back({f.g2, 1, f.y.id, false, ""});

  ReverifyStats st;
  VerifyResult edited = v.reverify(delta, &st);
  EXPECT_EQ(render(f.nl, edited), cold_render(delta))
      << "incremental reverify diverged from a cold run of the edited design";

  ReverifyStats undo;
  VerifyResult restored = v.reverify(st.inverse, &undo);
  EXPECT_EQ(render(f.nl, restored), before)
      << "reverify(inverse) must restore the pre-delta report bytes";
}

TEST(Incremental, DelayEditDirtiesExactlyTheOutputFanoutCone) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  v.verify(f.cases);

  NetlistDelta delta;
  delta.prims.push_back({f.g1, std::nullopt, std::make_pair(from_ns(1), from_ns(3))});
  ReverifyStats st;
  v.reverify(delta, &st);
  ASSERT_TRUE(st.incremental) << st.fallback_reason;
  // Seeded at G1's output B: the cone is B's transitive fanout, not A.
  EXPECT_EQ(st.dirty_signals, (std::vector<SignalId>{f.b.id, f.d.id}));
  EXPECT_EQ(st.dirty_prims, (std::vector<PrimId>{f.g1, f.g2, f.chk}));
}

TEST(Incremental, CheckerParameterEditDirtiesOnlyTheChecker) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  v.verify(f.cases);

  NetlistDelta delta;
  NetlistDelta::PrimEdit e;
  e.prim = f.chk;
  e.setup_hold = std::make_pair(from_ns(5), from_ns(2));
  delta.prims.push_back(e);
  ReverifyStats st;
  VerifyResult r = v.reverify(delta, &st);
  ASSERT_TRUE(st.incremental) << st.fallback_reason;
  // Checkers move no waveform: no signal is dirty, only the checker re-runs.
  EXPECT_TRUE(st.dirty_signals.empty());
  EXPECT_EQ(st.dirty_prims, (std::vector<PrimId>{f.chk}));
  EXPECT_EQ(st.touched_signals, 0u);
  EXPECT_EQ(render(f.nl, r), cold_render(delta));
}

TEST(Incremental, WireEditDirtiesTheSignalCone) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  v.verify(f.cases);

  NetlistDelta delta;
  delta.wires.push_back({f.b.id, WireDelay{from_ns(1), from_ns(2)}});
  ReverifyStats st;
  VerifyResult r = v.reverify(delta, &st);
  ASSERT_TRUE(st.incremental) << st.fallback_reason;
  EXPECT_EQ(st.dirty_signals, (std::vector<SignalId>{f.b.id, f.d.id}));
  EXPECT_EQ(st.dirty_prims, (std::vector<PrimId>{f.g1, f.g2, f.chk}));
  EXPECT_EQ(render(f.nl, r), cold_render(delta));
}

TEST(Incremental, AssertionEditDirtiesTheSignalConeAndRenames) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  v.verify(f.cases);

  Assertion tighter;
  tighter.kind = Assertion::Kind::Stable;
  tighter.ranges.push_back({12.0, 40.0, std::nullopt});
  NetlistDelta delta;
  delta.assertions.push_back(
      {f.a.id, tighter, "A", "A " + assertion_to_text(tighter)});
  ReverifyStats st;
  VerifyResult r = v.reverify(delta, &st);
  ASSERT_TRUE(st.incremental) << st.fallback_reason;
  EXPECT_EQ(st.dirty_signals, (std::vector<SignalId>{f.a.id, f.b.id, f.d.id}));
  EXPECT_EQ(st.dirty_prims, (std::vector<PrimId>{f.g1, f.g2, f.chk}));
  EXPECT_EQ(f.nl.signal(f.a.id).full_name, "A " + assertion_to_text(tighter));
  EXPECT_EQ(render(f.nl, r), cold_render(delta));
}

TEST(Incremental, CaseMapEditReEvaluatesOnlyTheEditedCase) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  v.verify(f.cases);

  NetlistDelta delta;
  delta.cases.push_back(
      {"c1", CaseSpec{"c1", {{f.c.id, V::Zero}}}, std::nullopt});
  ReverifyStats st;
  VerifyResult r = v.reverify(delta, &st);
  ASSERT_TRUE(st.incremental) << st.fallback_reason;
  // No netlist edit: nothing is dirty, the base report splices whole.
  EXPECT_TRUE(st.dirty_signals.empty());
  EXPECT_TRUE(st.dirty_prims.empty());
  EXPECT_EQ(st.cases_reevaluated, 1u);
  EXPECT_EQ(st.cases_spliced, 1u);
  EXPECT_EQ(render(f.nl, r), cold_render(delta));

  // Insert + remove round-trips through the recorded inverse.
  NetlistDelta add;
  add.cases.push_back({"y1", CaseSpec{"y1", {{f.y.id, V::One}}}, std::size_t{0}});
  ReverifyStats add_st;
  VerifyResult with = v.reverify(add, &add_st);
  ASSERT_EQ(with.cases.size(), 3u);
  EXPECT_EQ(with.cases[0].name, "y1");
  VerifyResult without = v.reverify(add_st.inverse);
  ASSERT_EQ(without.cases.size(), 2u);
  EXPECT_EQ(render(f.nl, without), render(f.nl, r));
}

TEST(Incremental, SccTouchingEditFallsBackToColdRun) {
  // A two-gate unclocked feedback loop: OR(Q2, A) -> Q1 -> buf -> Q2.
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Ref a = nl.ref("A .S10-45");
  Ref q1 = nl.ref("Q1");
  Ref q2 = nl.ref("Q2");
  PrimId l1 = nl.or_gate("L1", from_ns(1), from_ns(2), {a, q2}, q1);
  nl.buf("L2", from_ns(1), from_ns(2), q1, q2);
  nl.finalize();

  Verifier v(nl, opts);
  VerifyResult base = v.verify({});
  ASSERT_TRUE(base.converged) << "fixture assumption: the loop reaches a fixpoint";

  NetlistDelta delta;
  delta.prims.push_back({l1, std::nullopt, std::make_pair(from_ns(1), from_ns(3))});
  ReverifyStats st;
  VerifyResult r = v.reverify(delta, &st);
  EXPECT_FALSE(st.incremental);
  EXPECT_EQ(st.fallback_reason, "dirty cone touches an unclocked feedback loop");

  // The silent fallback must still produce the cold bytes.
  Netlist nl2;
  Ref a2 = nl2.ref("A .S10-45");
  Ref q1b = nl2.ref("Q1");
  Ref q2b = nl2.ref("Q2");
  nl2.or_gate("L1", from_ns(1), from_ns(3), {a2, q2b}, q1b);
  nl2.buf("L2", from_ns(1), from_ns(2), q1b, q2b);
  nl2.finalize();
  Verifier v2(nl2, opts);
  VerifyResult cold = v2.verify({});
  EXPECT_EQ(render(nl, r), render(nl2, cold));
}

// Satellite regression: the ConeIndex must know it is stale once fanout
// edges change (a retarget re-finalizes and bumps structure_version), and a
// freshly built index must route the new edge.
TEST(Incremental, ConeIndexGoesStaleWhenFanoutEdgesChange) {
  IncrFixture f;
  ConeIndex idx(f.nl);
  EXPECT_TRUE(idx.is_current());
  auto island = idx.cone_of({f.x.id});
  EXPECT_FALSE(island->contains_prim(f.g2));

  f.nl.retarget_input(f.g2, 1, f.y.id, false, "");
  f.nl.finalize();
  EXPECT_FALSE(idx.is_current())
      << "a retarget must invalidate previously built cone indexes";

  ConeIndex fresh(f.nl);
  auto routed = fresh.cone_of({f.x.id});
  EXPECT_TRUE(routed->contains_prim(f.g2));
  EXPECT_TRUE(routed->contains_signal(f.d.id));
  EXPECT_TRUE(routed->contains_prim(f.chk));
}

// Satellite regression, verifier level: retargeting a checker's data input
// must re-run that checker against the new signal. The baseline is clean;
// E .S18.5-58 misses the 3ns setup window before CK's rise at 20 by 1.5ns.
TEST(Incremental, RetargetedCheckerInputIsRechecked) {
  IncrFixture f;
  Verifier v(f.nl, f.opts);
  VerifyResult base = v.verify(f.cases);
  ASSERT_TRUE(base.violations.empty())
      << "fixture assumption: the baseline design is clean";

  NetlistDelta delta;
  delta.pins.push_back({f.chk, 0, f.e.id, false, ""});
  ReverifyStats st;
  VerifyResult r = v.reverify(delta, &st);
  ASSERT_EQ(r.violations.size(), 1u)
      << "the retargeted checker input was not re-checked";
  EXPECT_EQ(r.violations[0].type, Violation::Type::Setup);
  EXPECT_EQ(r.violations[0].missed_by, from_ns(1.5));
  EXPECT_EQ(render(f.nl, r), cold_render(delta));
}

}  // namespace
}  // namespace tv
