// Golden corpus for the diagnostics subsystem: every malformed design in
// tests/diagnostics/ is run through the recovering front end and the
// rendered diagnostics (plus the accept/reject verdict) are byte-compared
// against the checked-in .golden.txt. Also covers the engine-side
// robustness contracts: unconverged-loop localization (Tarjan SCC over the
// hot primitives), static zero-delay-loop detection at finalize, resource
// degradation (segment cap / wall-clock limit -> partial results), and the
// scaldtv exit-code matrix via subprocess runs.
//
// To regenerate after an intentional change:
//   TV_UPDATE_GOLDEN=1 ./tv_tests --gtest_filter='GoldenDiagnostics.*'
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/export.hpp"
#include "core/verifier.hpp"
#include "diag/diagnostic.hpp"
#include "diag/render.hpp"
#include "hdl/elaborate.hpp"
#include "util/atomic_file.hpp"
#include "hdl/stdlib.hpp"

namespace {

using namespace tv;

const char* const kCorpus[] = {
    "unterminated_string", "bad_char",       "bad_number",     "three_errors",
    "duplicate_macro",     "no_design",      "bad_period",     "bad_case_value",
    "unknown_macro",       "unknown_param",  "wrong_pin_count", "negative_delay",
    "duplicate_driver",    "zero_delay_loop", "macro_backtrace",
};

std::string corpus_dir() { return std::string(TV_REPO_ROOT) + "/tests/diagnostics"; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

struct FrontEndRun {
  bool accepted = false;
  diag::DiagnosticEngine diags;
  std::optional<hdl::ElaboratedDesign> design;
};

/// Runs one corpus file through the diagnostic front end. Locations are
/// stamped with the bare file name so goldens are machine-independent.
FrontEndRun run_front_end(const std::string& name) {
  FrontEndRun r;
  std::string src = read_file(corpus_dir() + "/" + name + ".shdl");
  r.diags.set_current_file(name + ".shdl");
  r.design = hdl::elaborate_source(src, r.diags);
  r.accepted = r.design.has_value();
  return r;
}

std::string render_run(const FrontEndRun& r) {
  std::string out = diag::render_text(r.diags);
  out += r.accepted ? "front end: accepted\n" : "front end: rejected\n";
  return out;
}

void compare_to_golden(const std::string& name, const std::string& rendered) {
  const std::string path = corpus_dir() + "/" + name + ".golden.txt";
  if (std::getenv("TV_UPDATE_GOLDEN") != nullptr) {
    std::string error;
    ASSERT_TRUE(tv::util::atomic_write_file(path, rendered, &error))
        << "cannot write " << path << ": " << error;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " -- run with TV_UPDATE_GOLDEN=1 to create it";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), rendered) << "diagnostics for " << name
                                     << " diverged from " << path;
}

TEST(GoldenDiagnostics, Corpus) {
  for (const char* name : kCorpus) {
    SCOPED_TRACE(name);
    FrontEndRun r = run_front_end(name);
    compare_to_golden(name, render_run(r));
  }
}

// Acceptance criterion: a design with three injected syntax errors reports
// all three in one run, each with file, line, and column, and is rejected.
TEST(GoldenDiagnostics, ThreeErrorsReportedInOneRun) {
  FrontEndRun r = run_front_end("three_errors");
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.diags.error_count(), 3u);
  for (const diag::Diagnostic& d : r.diags.diagnostics()) {
    EXPECT_EQ(d.loc.file, "three_errors.shdl");
    EXPECT_GT(d.loc.line, 0);
    EXPECT_GT(d.loc.column, 0);
    EXPECT_EQ(d.code, diag::kErrExpectedToken);
  }
}

TEST(GoldenDiagnostics, MaxErrorsCapsTheRun) {
  std::string src = read_file(corpus_dir() + "/three_errors.shdl");
  diag::DiagnosticEngine::Options opts;
  opts.max_errors = 2;
  diag::DiagnosticEngine diags(opts);
  diags.set_current_file("three_errors.shdl");
  auto d = hdl::elaborate_source(src, diags);
  EXPECT_FALSE(d.has_value());
  EXPECT_TRUE(diags.error_limit_reached());
  // Cap of 2, plus the SHDL-E009 "too many errors" marker.
  ASSERT_EQ(diags.diagnostics().size(), 3u);
  EXPECT_EQ(diags.diagnostics().back().code, diag::kErrTooManyErrors);
}

TEST(GoldenDiagnostics, MacroBacktraceNotesPointAtInstantiationChain) {
  FrontEndRun r = run_front_end("macro_backtrace");
  EXPECT_FALSE(r.accepted);
  ASSERT_GE(r.diags.diagnostics().size(), 1u);
  const diag::Diagnostic& d = r.diags.diagnostics().front();
  ASSERT_GE(d.notes.size(), 2u);
  EXPECT_NE(d.notes[0].message.find("INNER"), std::string::npos);
  EXPECT_NE(d.notes[1].message.find("OUTER"), std::string::npos);
}

TEST(GoldenDiagnostics, ZeroDelayLoopIsAWarningNotAnError) {
  FrontEndRun r = run_front_end("zero_delay_loop");
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.diags.error_count(), 0u);
  ASSERT_EQ(r.diags.warning_count(), 1u);
  const diag::Diagnostic& w = r.diags.diagnostics().front();
  EXPECT_EQ(w.code, diag::kWarnZeroDelayLoop);
  EXPECT_NE(w.message.find("\"A\""), std::string::npos);
  EXPECT_NE(w.message.find("\"B\""), std::string::npos);
}

// --- unconverged-loop localization -----------------------------------------

// A 3-gate unclocked ring: the mux keeps re-injecting the (exact-delay
// shifted) feedback while the clock selects it, so every lap around the
// loop produces a new waveform and the oscillation guard trips.
const char* kRingSource = R"(design RING {
  period 50.0;
  clock_unit 6.25;
  default_wire 0.0:0.0;
  mux2 [delay=0.3:0.3] ("CK .P0-4", "D .S0-25", "A") -> "B";
  buf [delay=0.4:0.4] ("B") -> "C";
  buf [delay=0.4:0.4] ("C") -> "A";
}
)";

TEST(LoopLocalization, ThreeGateRingNamesTheExactCycle) {
  diag::DiagnosticEngine diags;
  auto design = hdl::elaborate_source(kRingSource, diags);
  ASSERT_TRUE(design.has_value()) << diag::render_text(diags);

  // Tighten the oscillation guard so the ring trips it well before the
  // waveform pattern could wrap around the period.
  design->options.max_evals_per_prim = 8;
  Verifier v(design->netlist, design->options);
  VerifyResult r = v.verify();
  EXPECT_FALSE(r.converged);

  std::vector<std::vector<std::string>> cycles = v.evaluator().feedback_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  // One cycle through all three ring signals, in fanout order from the
  // Tarjan component, closed back on the start signal.
  ASSERT_EQ(cycles[0].size(), 3u);
  std::vector<std::string> sorted = cycles[0];
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"A", "B", "C"}));

  // The violation message names the full signal path instead of the generic
  // "did not converge" line.
  ASSERT_FALSE(r.violations.empty());
  const Violation& loop = r.violations.front();
  EXPECT_EQ(loop.type, Violation::Type::Unconverged);
  EXPECT_NE(loop.message.find("unclocked feedback cycle"), std::string::npos);
  EXPECT_NE(loop.message.find("\"A\""), std::string::npos);
  EXPECT_NE(loop.message.find("\"B\""), std::string::npos);
  EXPECT_NE(loop.message.find("\"C\""), std::string::npos);
}

// --- resource degradation ---------------------------------------------------

const char* kTinySource = R"(design TINY {
  period 50.0;
  clock_unit 6.25;
  reg [delay=1.5:4.5] ("D .S0-6", "CK .P8-9") -> "Q";
  setup_hold [setup=2.5, hold=1.5] ("D .S0-6", "CK .P8-9");
}
)";

TEST(ResourceDegradation, SegmentCapDegradesToUnknownAndMarksPartial) {
  diag::DiagnosticEngine diags;
  auto design = hdl::elaborate_source(kTinySource, diags);
  ASSERT_TRUE(design.has_value()) << diag::render_text(diags);

  design->options.max_segments_per_signal = 1;  // every multi-segment wave trips
  Verifier v(design->netlist, design->options);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.partial);
  ASSERT_FALSE(r.degradations.empty());
  EXPECT_STREQ(r.degradations.front().code, diag::kWarnSegmentCap);
  // Degraded signals hold UNKNOWN -- conservative, never hides a violation.
  bool found_unknown = false;
  for (SignalId id = 0; id < design->netlist.num_signals(); ++id) {
    const Waveform& w = design->netlist.signal(id).wave;
    if (w.segments().size() == 1 && w.segments()[0].value == Value::Unknown) {
      found_unknown = true;
    }
  }
  EXPECT_TRUE(found_unknown);
}

TEST(ResourceDegradation, TimeLimitCompletesPartialInsteadOfCrashing) {
  diag::DiagnosticEngine diags;
  auto design = hdl::elaborate_source(kTinySource, diags);
  ASSERT_TRUE(design.has_value()) << diag::render_text(diags);

  design->options.time_limit_seconds = 1e-12;  // already expired at first pop
  Verifier v(design->netlist, design->options);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.partial);
  ASSERT_FALSE(r.degradations.empty());
  EXPECT_STREQ(r.degradations.front().code, diag::kWarnTimeLimit);
}

TEST(ResourceDegradation, PartialFlagReachesJsonExport) {
  diag::DiagnosticEngine diags;
  auto design = hdl::elaborate_source(kTinySource, diags);
  ASSERT_TRUE(design.has_value());
  design->options.time_limit_seconds = 1e-12;
  Verifier v(design->netlist, design->options);
  VerifyResult r = v.verify();
  std::string json = export_json(design->netlist, r, design->options.period, {}, "TINY");
  EXPECT_NE(json.find("\"partial\": true"), std::string::npos);
  EXPECT_NE(json.find("TV-W202"), std::string::npos);
}

TEST(ResourceDegradation, CleanRunIsNotPartial) {
  diag::DiagnosticEngine diags;
  auto design = hdl::elaborate_source(kTinySource, diags);
  ASSERT_TRUE(design.has_value());
  Verifier v(design->netlist, design->options);
  VerifyResult r = v.verify();
  EXPECT_FALSE(r.partial);
  EXPECT_TRUE(r.degradations.empty());
  std::string json = export_json(design->netlist, r, design->options.period, {}, "TINY");
  EXPECT_NE(json.find("\"partial\": false"), std::string::npos);
}

// --- diagnostics JSON -------------------------------------------------------

TEST(DiagnosticsJson, CarriesCodesAndSpans) {
  FrontEndRun r = run_front_end("three_errors");
  std::string json = diag::render_json(r.diags);
  EXPECT_NE(json.find("\"code\": \"SHDL-E010\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"three_errors.shdl\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 3"), std::string::npos);
}

// --- scaldtv exit-code matrix (subprocess) ----------------------------------

#ifdef TV_SCALDTV_PATH
int run_scaldtv(const std::string& args) {
  std::string cmd = std::string(TV_SCALDTV_PATH) + " " + args + " >/dev/null 2>&1";
  int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST(ExitCodes, CleanDesignExitsZero) {
  EXPECT_EQ(run_scaldtv("--stdlib " + std::string(TV_REPO_ROOT) +
                        "/designs/stdlib_pipeline.shdl"),
            0);
}

TEST(ExitCodes, ViolatingDesignExitsOne) {
  EXPECT_EQ(run_scaldtv(std::string(TV_REPO_ROOT) + "/designs/regfile_example.shdl"), 1);
}

TEST(ExitCodes, MalformedDesignExitsTwo) {
  EXPECT_EQ(run_scaldtv(corpus_dir() + "/three_errors.shdl"), 2);
}

TEST(ExitCodes, TimeLimitedRunExitsThree) {
  EXPECT_EQ(run_scaldtv("--stdlib --time-limit 0.000000001 " +
                        std::string(TV_REPO_ROOT) + "/designs/stdlib_pipeline.shdl"),
            3);
}

TEST(ExitCodes, WerrorPromotesDegradationToError) {
  EXPECT_EQ(run_scaldtv("--stdlib --werror --time-limit 0.000000001 " +
                        std::string(TV_REPO_ROOT) + "/designs/stdlib_pipeline.shdl"),
            2);
}

TEST(ExitCodes, UsageErrorExitsTwo) { EXPECT_EQ(run_scaldtv("--no-such-flag"), 2); }
#endif  // TV_SCALDTV_PATH

}  // namespace
