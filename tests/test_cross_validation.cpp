// Cross-validation property (the heart of the thesis' soundness claim):
// the symbolic Timing Verifier covers in ONE pass every timing violation
// the value-level logic simulator can expose under ANY input pattern. For
// randomized mux/gate networks feeding a checked register we enumerate all
// select vectors in the simulator and assert
//
//     (simulator finds a violation under some vector)
//        ==>  (the Timing Verifier reported a violation symbolically).
//
// The converse need not hold -- the verifier is deliberately worst-case
// (that is what case analysis is for) -- so we also track how often it is
// strictly pessimistic.
#include <gtest/gtest.h>

#include "check/oracles.hpp"
#include "check/rand_netlist.hpp"
#include "core/verifier.hpp"
#include "sim/logic_sim.hpp"

namespace tv {
namespace {

class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed * 2654435761u + 12345) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  int range(int lo, int hi) { return lo + static_cast<int>(next() % static_cast<unsigned>(hi - lo + 1)); }

 private:
  std::uint64_t state_;
};

struct RandomCircuit {
  Netlist nl;
  VerifierOptions opts;
  std::vector<SignalId> selects;  // boolean controls the simulator drives
  SignalId in = kNoSignal;
  SignalId ck = kNoSignal;
  Time edge = 0;
};

// A random 2-3 level network of muxes and buffers between a toggling input
// and a checked register. Path delays vary with the selects.
RandomCircuit build_random(Lcg& rng) {
  RandomCircuit c;
  c.opts.period = from_ns(200.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Netlist& nl = c.nl;

  Ref in = nl.ref("IN .S10-205");
  c.in = in.id;
  Ref cur = in;
  int levels = rng.range(1, 3);
  for (int lvl = 0; lvl < levels; ++lvl) {
    std::string n = std::to_string(lvl);
    int kind = rng.range(0, 2);
    if (kind == 0) {
      // Mux between a fast and a slow variant of the current signal.
      Ref fast = nl.ref("F" + n);
      Ref slow = nl.ref("S" + n);
      nl.buf("FB" + n, from_ns(rng.range(1, 2)), from_ns(rng.range(2, 3)), cur, fast);
      nl.buf("SB" + n, from_ns(rng.range(4, 6)), from_ns(rng.range(6, 9)), cur, slow);
      Ref sel = nl.ref("SEL" + n);
      c.selects.push_back(sel.id);
      Ref out = nl.ref("M" + n);
      nl.mux2("MX" + n, 0, 0, sel, fast, slow, out);
      cur = out;
    } else if (kind == 1) {
      Ref out = nl.ref("B" + n);
      nl.buf("BF" + n, from_ns(rng.range(1, 3)), from_ns(rng.range(3, 6)), cur, out);
      cur = out;
    } else {
      // AND with a control the simulator drives to 1 (enabling).
      Ref en = nl.ref("EN" + n);
      c.selects.push_back(en.id);
      Ref out = nl.ref("A" + n);
      nl.and_gate("AG" + n, from_ns(rng.range(1, 2)), from_ns(rng.range(2, 5)), {cur, en},
                  out);
      cur = out;
    }
  }
  // Clock edge somewhere inside the possible arrival range.
  int edge_ns = rng.range(14, 34);
  c.edge = from_ns(edge_ns);
  Ref ck = nl.ref("CK .P" + std::to_string(edge_ns) + "+5.0");
  c.ck = ck.id;
  nl.setup_hold_chk("CHK", from_ns(3.0), 0, cur, ck);
  Ref q = nl.ref("Q");
  nl.reg("R", from_ns(1), from_ns(2), cur, ck, q);
  nl.finalize();
  return c;
}

class CrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidation, SimulatorViolationsAreCoveredSymbolically) {
  Lcg rng(static_cast<std::uint64_t>(GetParam()));
  RandomCircuit c = build_random(rng);

  Verifier v(c.nl, c.opts);
  VerifyResult tv = v.verify();
  bool tv_found = !tv.violations.empty();

  bool sim_found = false;
  sim::LogicSimulator simlt(c.nl);
  std::size_t k = c.selects.size();
  for (std::size_t pattern = 0; pattern < (1u << k); ++pattern) {
    simlt.reset();
    std::vector<sim::Stimulus> stim;
    for (std::size_t i = 0; i < k; ++i) {
      stim.push_back({c.selects[i], 0, (pattern >> i) & 1 ? sim::LV::One : sim::LV::Zero});
    }
    stim.push_back({c.in, 0, sim::LV::Zero});
    stim.push_back({c.ck, 0, sim::LV::Zero});
    stim.push_back({c.in, from_ns(10), sim::LV::One});
    stim.push_back({c.ck, c.edge, sim::LV::One});
    if (!simlt.run(stim, c.edge + from_ns(30)).empty()) {
      sim_found = true;
      break;
    }
  }

  // Soundness: anything the simulator can expose, the verifier reported.
  if (sim_found) {
    EXPECT_TRUE(tv_found) << "simulator found a violation the symbolic pass missed\n"
                          << timing_summary(c.nl);
  }
  // (tv_found && !sim_found is allowed: worst-case pessimism, resolved by
  // case analysis in real use.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Range(100, 160));

// ---------------------------------------------------------------------------
// Generator-driven differential suite. The hand-rolled circuits above
// predate the src/check generator and only cover mux/gate networks in front
// of one register. The suite below drives the full conservatism oracle --
// sampled per-polarity delay realizations, clock-skew shifts, SET/RESET
// inputs, gated clocks with evaluation directives, latches and case
// analysis -- over seeded random circuits, the same machinery tools/tvfuzz
// runs at scale.
// ---------------------------------------------------------------------------

class GeneratedCircuits : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedCircuits, VerifierCoversEverySampledReality) {
  check::CircuitSpec spec = check::random_spec(static_cast<std::uint64_t>(GetParam()));
  auto fail = check::check_conservatism(spec);
  ASSERT_FALSE(fail.has_value())
      << "seed " << GetParam() << " [" << fail->kind << "] " << fail->detail;
}

INSTANTIATE_TEST_SUITE_P(GenSeeds, GeneratedCircuits, ::testing::Range(0, 64));

TEST(GeneratedCircuits, SeedRangeExercisesEveryCircuitFamily) {
  // The 64-seed range above is only a meaningful gate if it actually draws
  // registers, latches, gated clocks and case analysis; pin that so a
  // generator change cannot silently hollow the suite out.
  bool reg = false, latch = false, sr = false, gated = false, with_case = false,
       rise_fall = false;
  for (int s = 0; s < 64; ++s) {
    check::CircuitSpec spec = check::random_spec(static_cast<std::uint64_t>(s));
    reg |= spec.sink == check::SinkKind::Reg || spec.sink == check::SinkKind::RegSR;
    latch |= spec.sink == check::SinkKind::Latch || spec.sink == check::SinkKind::LatchSR;
    sr |= spec.sink == check::SinkKind::RegSR || spec.sink == check::SinkKind::LatchSR;
    gated |= spec.clock.gated;
    with_case |= spec.with_case;
    for (const check::StageSpec& st : spec.stages) rise_fall |= st.rise_fall;
  }
  EXPECT_TRUE(reg);
  EXPECT_TRUE(latch);
  EXPECT_TRUE(sr);
  EXPECT_TRUE(gated);
  EXPECT_TRUE(with_case);
  EXPECT_TRUE(rise_fall);
}

}  // namespace
}  // namespace tv
