// Tests for the VCD and JSON exporters.
#include "core/export.hpp"

#include <gtest/gtest.h>

#include "gen/regfile_example.hpp"

namespace tv {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = gen::build_regfile_example(nl_);
    Verifier v(nl_, ex_.options);
    result_ = v.verify();
    slacks_ = compute_slacks(v.evaluator());
  }
  Netlist nl_;
  gen::RegfileExample ex_;
  VerifyResult result_;
  std::vector<SlackEntry> slacks_;
};

TEST_F(ExportTest, VcdStructure) {
  std::string vcd = export_vcd(nl_, ex_.options.period, "regfile");
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module regfile $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // One $var per signal; spaces replaced for VCD identifiers.
  std::size_t vars = 0;
  for (std::size_t pos = 0; (pos = vcd.find("$var wire 1 ", pos)) != std::string::npos; ++pos) {
    ++vars;
  }
  EXPECT_EQ(vars, nl_.num_signals());
  EXPECT_NE(vcd.find("REG_DATA<0:31>"), std::string::npos);
  // Two cycles are dumped: a timestamp at exactly one period must exist.
  EXPECT_NE(vcd.find("#" + std::to_string(ex_.options.period)), std::string::npos);
  // Timestamps are ordered.
  long long last = -1;
  for (std::size_t pos = 0; (pos = vcd.find('\n' , pos)) != std::string::npos;) {
    ++pos;
    if (pos < vcd.size() && vcd[pos] == '#') {
      long long t = std::stoll(vcd.substr(pos + 1));
      EXPECT_GT(t, last);
      last = t;
    }
  }
}

TEST_F(ExportTest, VcdValueMapping) {
  // The WE pulse: z (stable)? no -- WE is 0/1: check '0' and '1' changes of
  // its id appear; ADR (symbolic) contributes 'z' and 'x' states.
  std::string vcd = export_vcd(nl_, ex_.options.period);
  EXPECT_NE(vcd.find('z'), std::string::npos);
  EXPECT_NE(vcd.find('x'), std::string::npos);
}

TEST_F(ExportTest, JsonContainsViolationsAndSlacks) {
  std::string json =
      export_json(nl_, result_, ex_.options.period, slacks_, "REGFILE_EXAMPLE");
  EXPECT_NE(json.find("\"design\": \"REGFILE_EXAMPLE\""), std::string::npos);
  EXPECT_NE(json.find("\"period_ns\": 50.0"), std::string::npos);
  EXPECT_NE(json.find("\"total_violations\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"SETUP TIME\""), std::string::npos);
  EXPECT_NE(json.find("\"missed_by_ns\": 3.5"), std::string::npos);
  EXPECT_NE(json.find("\"missed_by_ns\": 1.0"), std::string::npos);
  EXPECT_NE(json.find("\"setup_slack_ns\""), std::string::npos);
  // Newlines inside messages are escaped: no raw newline may appear inside
  // a quoted message (check balance of quotes per line).
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= json.size(); ++i) {
    if (i == json.size() || json[i] == '\n') {
      std::size_t quotes = 0;
      for (std::size_t j = line_start; j < i; ++j) {
        if (json[j] == '"' && (j == 0 || json[j - 1] != '\\')) ++quotes;
      }
      EXPECT_EQ(quotes % 2, 0u) << json.substr(line_start, i - line_start);
      line_start = i + 1;
    }
  }
}

TEST_F(ExportTest, JsonEmptyResultIsWellFormed) {
  Netlist nl;
  nl.buf("B", 0, 0, nl.ref("A .S0-4"), nl.ref("X"));
  nl.finalize();
  VerifierOptions o;
  o.period = from_ns(50);
  Verifier v(nl, o);
  VerifyResult r = v.verify();
  std::string json = export_json(nl, r, o.period);
  EXPECT_NE(json.find("\"violations\": [\n  ]"), std::string::npos);
  EXPECT_NE(json.find("\"total_violations\": 0"), std::string::npos);
}

}  // namespace
}  // namespace tv

namespace tv {
namespace {

TEST(ExportDot, GraphStructureAndHighlight) {
  Netlist nl;
  Ref in = nl.ref("IN .S0-6");
  Ref mid = nl.ref("MID");
  nl.buf("B1", 0, 0, in, mid);
  Ref out = nl.ref("OUT");
  nl.buf("B2", 0, 0, mid, out);
  nl.setup_hold_chk("CHK", from_ns(1), 0, out, nl.ref("CK .P4-5"));
  nl.finalize();
  std::string dot = export_dot(nl, {mid.id}, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("shape=doubleoctagon"), std::string::npos);  // the checker
  EXPECT_NE(dot.find("color=red"), std::string::npos);            // highlighted MID
  EXPECT_NE(dot.find("label=\"IN .S0-6\""), std::string::npos);   // input node
  // Balanced braces and one edge per fanout entry.
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos; ++pos) ++edges;
  EXPECT_EQ(edges, 4u);  // in->B1, mid->B2, out->CHK, ck->CHK
}

}  // namespace
}  // namespace tv
