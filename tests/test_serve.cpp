// Tests for the scaldtvd serving layer (src/serve): the newline-JSON job
// parser, the byte-stable run manifest, the deterministic retry backoff,
// and -- driving the real scaldtv binary as a crash-isolated worker -- the
// supervisor's terminal-state, retry, watchdog, and graceful-shutdown
// contracts.
#include "serve/job.hpp"
#include "serve/manifest.hpp"
#include "serve/supervisor.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <new>
#include <thread>

#include "core/compiled.hpp"
#include "example_designs.hpp"
#include "serve/warm_pool.hpp"
#include "util/fault.hpp"

namespace tv::serve {
namespace {

// ---------------------------------------------------------------- job lines

TEST(JobParse, FullLine) {
  std::string error;
  auto job = parse_job_line(
      R"({"id": "j1", "design": "a.shdl", "stdlib": true, "time_limit": 2.5, )"
      R"("jobs": 4, "fault": "io.read@1:fail", "fault_attempts": 1})",
      &error);
  ASSERT_TRUE(job) << error;
  EXPECT_EQ(job->id, "j1");
  EXPECT_EQ(job->design, "a.shdl");
  EXPECT_TRUE(job->stdlib);
  EXPECT_DOUBLE_EQ(job->time_limit, 2.5);
  EXPECT_EQ(job->jobs, 4u);
  EXPECT_EQ(job->fault, "io.read@1:fail");
  EXPECT_EQ(job->fault_attempts, 1);
}

TEST(JobParse, DefaultsAndMinimalLine) {
  auto job = parse_job_line(R"({"id": "j", "design": "d.shdl"})", nullptr);
  ASSERT_TRUE(job);
  EXPECT_FALSE(job->stdlib);
  EXPECT_EQ(job->time_limit, 0);
  EXPECT_EQ(job->jobs, 0u);
  EXPECT_TRUE(job->fault.empty());
  EXPECT_EQ(job->fault_attempts, 0);
}

TEST(JobParse, RejectsBadLines) {
  const char* bad[] = {
      "",                                            // not an object
      R"({"design": "d.shdl"})",                     // missing id
      R"({"id": "j"})",                              // missing design
      R"({"id": "j", "design": "d", "x": 1})",       // unknown key
      R"({"id": "j", "design": "d"} trailing)",      // trailing junk
      R"({"id": "j", "design": "d", "jobs": -1})",   // negative count
      R"({"id": "j", "design": "d", "stdlib": 7})",  // non-bool stdlib
      R"({"id": "j", "design": "d", "fault": "nonsense"})",  // bad fault shape
      R"({"id": "j", "design": "d", "fault": "io.read@1:explode"})",
  };
  for (const char* line : bad) {
    std::string error;
    EXPECT_FALSE(parse_job_line(line, &error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(JobParse, FileSkipsCommentsAndRejectsDuplicates) {
  std::string path = ::testing::TempDir() + "serve_jobs_test.jobs";
  {
    std::ofstream out(path);
    out << "# comment\n\n"
        << R"({"id": "a", "design": "d1.shdl"})" << "\n"
        << R"({"id": "b", "design": "d2.shdl"})" << "\n";
  }
  std::string error;
  auto jobs = parse_job_file(path, &error);
  ASSERT_TRUE(jobs) << error;
  EXPECT_EQ(jobs->size(), 2u);

  {
    std::ofstream out(path);
    out << R"({"id": "a", "design": "d1.shdl"})" << "\n"
        << R"({"id": "a", "design": "d2.shdl"})" << "\n";
  }
  EXPECT_FALSE(parse_job_file(path, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(JobParse, WorkerArgsReflectTheSpec) {
  JobSpec j;
  j.id = "x";
  j.design = "d.shdl";
  EXPECT_EQ(worker_args(j), (std::vector<std::string>{"d.shdl"}));
  j.stdlib = true;
  j.time_limit = 0.25;
  j.jobs = 2;
  EXPECT_EQ(worker_args(j), (std::vector<std::string>{"--stdlib", "--time-limit",
                                                      "0.25", "--jobs", "2", "d.shdl"}));
}

TEST(JobParse, CompiledDesignsFlowThroughToTheWorker) {
  auto job = parse_job_line(
      R"({"id": "c", "design": "d.tvc", "compiled": true})", nullptr);
  ASSERT_TRUE(job);
  EXPECT_TRUE(job->compiled);
  EXPECT_EQ(worker_args(*job), (std::vector<std::string>{"--compiled", "d.tvc"}));

  std::string error;
  EXPECT_FALSE(
      parse_job_line(R"({"id": "c", "design": "d", "compiled": 1})", &error));
  EXPECT_NE(error.find("compiled"), std::string::npos);
}

// ----------------------------------------------------------------- manifest

TEST(Manifest, JsonIsSortedFixedOrderAndStable) {
  Manifest m;
  m.jobs.push_back({"zeta", "z.shdl", JobState::Done, 1, {"exit:0"}});
  m.jobs.push_back({"alpha", "a.shdl", JobState::Crashed, 3,
                    {"signal:6", "signal:6", "signal:6"}});
  std::string json = m.to_json();
  // Sorted by id regardless of insertion order.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  // Byte-stable: serializing twice is identical.
  EXPECT_EQ(json, m.to_json());
  // No timestamps or durations anywhere in the format.
  EXPECT_EQ(json.find("time"), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\": [\"signal:6\", \"signal:6\", \"signal:6\"]"),
            std::string::npos);
}

TEST(Manifest, ExitCodePrecedenceWorstWins) {
  Manifest m;
  m.jobs.push_back({"a", "a", JobState::Done, 1, {}});
  EXPECT_EQ(m.exit_code(), 0);
  m.jobs.push_back({"b", "b", JobState::Violations, 1, {}});
  EXPECT_EQ(m.exit_code(), 1);
  m.jobs.push_back({"c", "c", JobState::Degraded, 1, {}});
  EXPECT_EQ(m.exit_code(), 3);
  m.jobs.push_back({"d", "d", JobState::Crashed, 3, {}});
  EXPECT_EQ(m.exit_code(), 4);
  m.jobs.push_back({"e", "e", JobState::InputError, 1, {}});
  EXPECT_EQ(m.exit_code(), 2);
  // Requeued jobs never affect the exit code: shutdown is not failure.
  Manifest r;
  r.jobs.push_back({"a", "a", JobState::Requeued, 0, {}});
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(Manifest, OverloadStatesHaveNamesCodesAndPrecedence) {
  EXPECT_STREQ(job_state_name(JobState::ResourceExhausted), "resource-exhausted");
  EXPECT_STREQ(job_state_name(JobState::Shed), "shed");
  EXPECT_STREQ(job_state_name(JobState::Quarantined), "quarantined");
  EXPECT_EQ(job_state_exit_code(JobState::ResourceExhausted), 6);
  EXPECT_EQ(job_state_exit_code(JobState::Shed), 7);
  EXPECT_EQ(job_state_exit_code(JobState::Quarantined), 8);
  // Overall precedence: 2 > 4 > 6 > 8 > 7 > 3 > 1 > 0. Shed outranks every
  // ordinary verdict (work was refused), quarantined outranks shed (work
  // was refused because earlier work kept dying), a real breach or crash
  // outranks both.
  Manifest m;
  m.jobs.push_back({"a", "a", JobState::Violations, 1, {}});
  m.jobs.push_back({"b", "b", JobState::Degraded, 1, {}});
  EXPECT_EQ(m.exit_code(), 3);
  m.jobs.push_back({"c", "c", JobState::Shed, 0, {}});
  EXPECT_EQ(m.exit_code(), 7);
  m.jobs.push_back({"d", "d", JobState::Quarantined, 0, {}});
  EXPECT_EQ(m.exit_code(), 8);
  m.jobs.push_back({"e", "e", JobState::ResourceExhausted, 1, {"mem-limit"}});
  EXPECT_EQ(m.exit_code(), 6);
  m.jobs.push_back({"f", "f", JobState::Crashed, 3, {}});
  EXPECT_EQ(m.exit_code(), 4);
  m.jobs.push_back({"g", "g", JobState::InputError, 1, {}});
  EXPECT_EQ(m.exit_code(), 2);
}

TEST(Manifest, CountsAndDurabilityDegradedAreSerialized) {
  Manifest m;
  m.jobs.push_back({"a", "a", JobState::ResourceExhausted, 1, {"mem-limit"}});
  m.jobs.push_back({"b", "b", JobState::Shed, 0, {}});
  m.jobs.push_back({"c", "c", JobState::Quarantined, 0, {}});
  m.durability_degraded = 2;
  std::string json = m.to_json();
  EXPECT_NE(json.find("\"resource-exhausted\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"shed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"durability_degraded\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"outcomes\": [\"mem-limit\"]"), std::string::npos);
}

// ------------------------------------------------------------------ backoff

TEST(Backoff, DeterministicAndExponentialWithCap) {
  SupervisorOptions opts;
  opts.backoff_base_ms = 100;
  opts.backoff_max_ms = 500;
  opts.jitter_seed = 7;
  // Same (job, attempt, seed) -> same delay, every time.
  EXPECT_EQ(backoff_delay_ms(opts, "job-1", 1), backoff_delay_ms(opts, "job-1", 1));
  // Different jobs and attempts jitter differently (with these inputs).
  EXPECT_NE(backoff_delay_ms(opts, "job-1", 1), backoff_delay_ms(opts, "job-2", 1));
  // Exponential base under the cap, jitter bounded by base.
  for (int attempt = 1; attempt <= 6; ++attempt) {
    std::uint64_t d = backoff_delay_ms(opts, "job-1", attempt);
    std::uint64_t base = std::min<std::uint64_t>(100ull << (attempt - 1), 500);
    EXPECT_GE(d, base) << attempt;
    EXPECT_LT(d, base + 100) << attempt;
  }
  SupervisorOptions other = opts;
  other.jitter_seed = 8;
  EXPECT_NE(backoff_delay_ms(opts, "job-1", 1), backoff_delay_ms(other, "job-1", 1));
}

TEST(Backoff, TotalDelayNeverExceedsTheCap) {
  // Regression: jitter used to be added *after* the cap was applied, so any
  // attempt whose exponential base reached backoff_max_ms could sleep up to
  // base-1 ms past the configured ceiling. The cap bounds the total.
  SupervisorOptions opts;
  opts.backoff_base_ms = 100;
  opts.backoff_max_ms = 500;
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{0xdeadbeef}}) {
    opts.jitter_seed = seed;
    for (int attempt = 1; attempt <= 64; ++attempt) {
      for (const char* id : {"a", "job-1", "a-much-longer-job-identifier"}) {
        EXPECT_LE(backoff_delay_ms(opts, id, attempt), opts.backoff_max_ms)
            << id << " attempt " << attempt << " seed " << seed;
      }
    }
  }
}

TEST(Backoff, SurvivesAdversarialBaseAndHugeAttempts) {
  // Base above the cap: the cap still wins, jitter included.
  SupervisorOptions opts;
  opts.backoff_base_ms = 900;
  opts.backoff_max_ms = 500;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(backoff_delay_ms(opts, "j", attempt), 500u) << attempt;
  }

  // Overflow hardening: doubling a near-2^63 base across a deep attempt
  // count must saturate at the cap, never wrap around to a tiny delay.
  opts.backoff_base_ms = (~std::uint64_t{0} / 2) + 3;
  opts.backoff_max_ms = ~std::uint64_t{0};
  std::uint64_t d = backoff_delay_ms(opts, "j", 64);
  EXPECT_GE(d, opts.backoff_base_ms);
  EXPECT_LE(d, opts.backoff_max_ms);

  // Degenerate cap: a zero ceiling means no delay at all.
  opts.backoff_base_ms = 100;
  opts.backoff_max_ms = 0;
  EXPECT_EQ(backoff_delay_ms(opts, "j", 5), 0u);
}

// ------------------------------------------------- supervisor (real worker)

#ifdef TV_SCALDTV_PATH

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }

  SupervisorOptions fast_opts() {
    SupervisorOptions opts;
    opts.scaldtv_path = TV_SCALDTV_PATH;
    opts.workers = 2;
    opts.max_attempts = 3;
    opts.backoff_base_ms = 10;
    opts.backoff_max_ms = 50;
    opts.default_timeout = 5;
    return opts;
  }

  JobSpec job(const std::string& id, const std::string& design) {
    JobSpec j;
    j.id = id;
    j.design = std::string(TV_REPO_ROOT) + design;
    return j;
  }

  const JobRecord* find(const Manifest& m, const std::string& id) {
    for (const JobRecord& r : m.jobs) {
      if (r.id == id) return &r;
    }
    return nullptr;
  }
};

TEST_F(SupervisorTest, TerminalStatesMapWorkerExitCodes) {
  JobSpec clean = job("clean", "/designs/stdlib_pipeline.shdl");
  clean.stdlib = true;
  JobSpec viol = job("viol", "/designs/regfile_example.shdl");
  JobSpec bad = job("bad", "/designs/no_such_design.shdl");
  JobSpec degraded = job("degraded", "/designs/stdlib_pipeline.shdl");
  degraded.stdlib = true;
  degraded.time_limit = 1e-9;  // instantly-expired budget -> partial, exit 3

  Manifest m = run_jobs({clean, viol, bad, degraded}, fast_opts());
  ASSERT_EQ(m.jobs.size(), 4u);
  EXPECT_EQ(find(m, "clean")->state, JobState::Done);
  EXPECT_EQ(find(m, "viol")->state, JobState::Violations);
  EXPECT_EQ(find(m, "bad")->state, JobState::InputError);
  EXPECT_EQ(find(m, "bad")->attempts, 1);  // permanent: no retry
  EXPECT_EQ(find(m, "degraded")->state, JobState::Degraded);
  EXPECT_EQ(m.exit_code(), 2);
}

TEST_F(SupervisorTest, TransientFaultRetriesThenSucceeds) {
  JobSpec j = job("flaky", "/designs/regfile_example.shdl");
  j.fault = "io.read@1:fail";
  j.fault_attempts = 1;  // attempt 1 fails, attempt 2 runs clean
  Manifest m = run_jobs({j}, fast_opts());
  const JobRecord* r = find(m, "flaky");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Violations);
  EXPECT_EQ(r->attempts, 2);
  ASSERT_EQ(r->outcomes.size(), 2u);
  EXPECT_EQ(r->outcomes[0], "exit:5");
  EXPECT_EQ(r->outcomes[1], "exit:1");
}

TEST_F(SupervisorTest, CrashEveryAttemptExhaustsRetries) {
  JobSpec j = job("crasher", "/designs/regfile_example.shdl");
  j.fault = "evaluator.eval@1:abort";  // every attempt dies by SIGABRT
  Manifest m = run_jobs({j}, fast_opts());
  const JobRecord* r = find(m, "crasher");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Crashed);
  EXPECT_EQ(job_state_exit_code(r->state), 4);
  EXPECT_EQ(r->attempts, 3);
  ASSERT_EQ(r->outcomes.size(), 3u);
  for (const std::string& o : r->outcomes) EXPECT_EQ(o, "signal:" + std::to_string(SIGABRT));
  EXPECT_EQ(m.exit_code(), 4);
}

TEST_F(SupervisorTest, WatchdogKillsHungWorkerAndRetries) {
  JobSpec j = job("hung", "/designs/regfile_example.shdl");
  j.fault = "evaluator.eval@1:hang";
  j.fault_attempts = 1;
  SupervisorOptions opts = fast_opts();
  opts.default_timeout = 0.5;  // hang is detected within half a second
  Manifest m = run_jobs({j}, opts);
  const JobRecord* r = find(m, "hung");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Violations);
  EXPECT_EQ(r->attempts, 2);
  ASSERT_EQ(r->outcomes.size(), 2u);
  EXPECT_EQ(r->outcomes[0], "timeout");
  EXPECT_EQ(r->outcomes[1], "exit:1");
}

TEST_F(SupervisorTest, InjectedSpawnFailureRetries) {
  // serve.spawn is a daemon-side site: the launch itself fails once, then
  // the retry goes through.
  ASSERT_TRUE(fault::configure("serve.spawn@1:fail"));
  JobSpec j = job("spawny", "/designs/regfile_example.shdl");
  Manifest m = run_jobs({j}, fast_opts());
  const JobRecord* r = find(m, "spawny");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Violations);
  EXPECT_EQ(r->attempts, 2);
  ASSERT_EQ(r->outcomes.size(), 2u);
  EXPECT_EQ(r->outcomes[0], "spawn-failed");
}

TEST_F(SupervisorTest, ShutdownRequeuesPendingJobs) {
  volatile std::sig_atomic_t shutdown = 1;  // requested before the run starts
  SupervisorOptions opts = fast_opts();
  opts.shutdown = &shutdown;
  Manifest m = run_jobs({job("p1", "/designs/regfile_example.shdl"),
                         job("p2", "/designs/regfile_example.shdl")},
                        opts);
  ASSERT_EQ(m.jobs.size(), 2u);
  for (const JobRecord& r : m.jobs) {
    EXPECT_EQ(r.state, JobState::Requeued);
    EXPECT_EQ(r.attempts, 0);
  }
  EXPECT_EQ(m.exit_code(), 0);
}

TEST_F(SupervisorTest, ShutdownDrainsRunningWorkersWithWatchdogArmed) {
  // One hung worker is running when shutdown arrives: the supervisor must
  // not exit until the watchdog reaps it, and the job lands Requeued (not
  // lost) with its timeout attempt on record.
  volatile std::sig_atomic_t shutdown = 0;
  SupervisorOptions opts = fast_opts();
  opts.workers = 1;
  opts.default_timeout = 0.5;
  opts.shutdown = &shutdown;
  JobSpec hung = job("hung", "/designs/regfile_example.shdl");
  hung.fault = "evaluator.eval@1:hang";  // every attempt hangs
  JobSpec pending = job("pending", "/designs/regfile_example.shdl");
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    shutdown = 1;
  });
  Manifest m = run_jobs({hung, pending}, opts);
  trigger.join();
  const JobRecord* h = find(m, "hung");
  ASSERT_TRUE(h);
  EXPECT_EQ(h->state, JobState::Requeued);
  EXPECT_EQ(h->attempts, 1);
  ASSERT_EQ(h->outcomes.size(), 1u);
  EXPECT_EQ(h->outcomes[0], "timeout");
  const JobRecord* p = find(m, "pending");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->state, JobState::Requeued);
  EXPECT_EQ(p->attempts, 0);
}

TEST_F(SupervisorTest, ManifestIsByteStableAcrossIdenticalRuns) {
  JobSpec flaky = job("flaky", "/designs/regfile_example.shdl");
  flaky.fault = "io.read@1:fail";
  flaky.fault_attempts = 1;
  JobSpec clean = job("clean", "/designs/stdlib_pipeline.shdl");
  clean.stdlib = true;
  JobSpec crasher = job("crasher", "/designs/regfile_example.shdl");
  crasher.fault = "evaluator.eval@1:abort";
  std::vector<JobSpec> batch{flaky, clean, crasher};
  std::string first = run_jobs(batch, fast_opts()).to_json();
  std::string second = run_jobs(batch, fast_opts()).to_json();
  EXPECT_EQ(first, second);
}

// ------------------------------------------- drain-vs-retry regressions

TEST_F(SupervisorTest, DrainDuringFinalAttemptRequeuesInsteadOfCrashing) {
  // Regression: a worker reaped by the drain watchdog on the job's *last*
  // allowed attempt used to fall through to the retries-exhausted branch
  // and settle "crashed" (exit 4). Draining wins: the job is requeued with
  // the interrupted attempt on record but not held against it.
  volatile std::sig_atomic_t shutdown = 0;
  SupervisorOptions opts = fast_opts();
  opts.workers = 1;
  opts.max_attempts = 1;
  opts.default_timeout = 0.5;
  opts.shutdown = &shutdown;
  JobSpec hung = job("hung", "/designs/regfile_example.shdl");
  hung.fault = "evaluator.eval@1:hang";
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    shutdown = 1;
  });
  Manifest m = run_jobs({hung}, opts);
  trigger.join();
  const JobRecord* r = find(m, "hung");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Requeued);
  EXPECT_EQ(r->attempts, 1);
  ASSERT_EQ(r->outcomes.size(), 1u);
  EXPECT_EQ(r->outcomes[0], "timeout");
  EXPECT_EQ(m.exit_code(), 0);
}

TEST_F(SupervisorTest, DrainDuringRetryBackoffRequeuesWithoutBurningAnAttempt) {
  // Shutdown lands while the job sits in its retry-backoff window: the
  // pending retry is abandoned, the manifest records "requeued" (never
  // "crashed"), and only the attempt that actually ran is counted.
  volatile std::sig_atomic_t shutdown = 0;
  SupervisorOptions opts = fast_opts();
  opts.workers = 1;
  opts.backoff_base_ms = 2000;
  opts.backoff_max_ms = 2000;
  opts.shutdown = &shutdown;
  JobSpec j = job("flappy", "/designs/regfile_example.shdl");
  j.fault = "evaluator.eval@1:abort";  // attempt 1 crashes -> backoff
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    shutdown = 1;
  });
  Manifest m = run_jobs({j}, opts);
  trigger.join();
  const JobRecord* r = find(m, "flappy");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Requeued);
  EXPECT_EQ(r->attempts, 1);
  ASSERT_EQ(r->outcomes.size(), 1u);
  EXPECT_EQ(r->outcomes[0], "signal:" + std::to_string(SIGABRT));
  EXPECT_EQ(m.exit_code(), 0);
}

// ------------------------------------------ overload policy (mem/shed/poison)

TEST_F(SupervisorTest, MemoryBudgetBreachSettlesResourceExhausted) {
  // The bloat fault leaks touched pages until the supervisor's RSS watchdog
  // (sampling /proc/<pid>/statm) crosses the budget and SIGKILLs the worker.
  // Default policy: one breach is terminal -- a job that blows its budget
  // once will blow it on every retry, so retrying just burns the node.
  JobSpec j = job("hog", "/designs/regfile_example.shdl");
  j.fault = "evaluator.eval@1:bloat";
  SupervisorOptions opts = fast_opts();
  opts.mem_limit_mb = 192;
  opts.default_timeout = 30;  // the memory watchdog must fire, not the clock
  Manifest m = run_jobs({j}, opts);
  const JobRecord* r = find(m, "hog");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::ResourceExhausted);
  EXPECT_EQ(r->attempts, 1);
  ASSERT_EQ(r->outcomes.size(), 1u);
  EXPECT_EQ(r->outcomes[0], "mem-limit");
  EXPECT_EQ(m.exit_code(), 6);
}

TEST_F(SupervisorTest, MemRetryGivesBreachedJobsAnotherAttempt) {
  JobSpec j = job("hog", "/designs/regfile_example.shdl");
  j.fault = "evaluator.eval@1:bloat";
  j.fault_attempts = 1;  // attempt 1 bloats, attempt 2 runs clean
  SupervisorOptions opts = fast_opts();
  opts.mem_limit_mb = 192;
  opts.mem_retry = true;
  opts.default_timeout = 30;
  Manifest m = run_jobs({j}, opts);
  const JobRecord* r = find(m, "hog");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Violations);
  EXPECT_EQ(r->attempts, 2);
  ASSERT_EQ(r->outcomes.size(), 2u);
  EXPECT_EQ(r->outcomes[0], "mem-limit");
  EXPECT_EQ(r->outcomes[1], "exit:1");
}

TEST_F(SupervisorTest, AdmissionCapShedsBeyondMaxQueueDeterministically) {
  // Bounded admission: jobs past the cap are refused up front (by input
  // index, so the decision is reproducible), settle "shed" with zero
  // attempts, and are journaled/reported explicitly rather than silently
  // dropped.
  std::vector<JobSpec> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(job("j" + std::to_string(i), "/designs/regfile_example.shdl"));
  }
  SupervisorOptions opts = fast_opts();
  opts.max_queue = 3;
  Manifest m = run_jobs(batch, opts);
  ASSERT_EQ(m.jobs.size(), 5u);
  for (int i = 0; i < 3; ++i) {
    const JobRecord* r = find(m, "j" + std::to_string(i));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->state, JobState::Violations) << r->id;
    EXPECT_EQ(r->attempts, 1) << r->id;
  }
  for (int i = 3; i < 5; ++i) {
    const JobRecord* r = find(m, "j" + std::to_string(i));
    ASSERT_TRUE(r);
    EXPECT_EQ(r->state, JobState::Shed) << r->id;
    EXPECT_EQ(r->attempts, 0) << r->id;
    EXPECT_TRUE(r->outcomes.empty()) << r->id;
  }
  EXPECT_EQ(m.exit_code(), 7);  // shed work outranks a mere violation verdict
  EXPECT_EQ(m.to_json(), run_jobs(batch, opts).to_json());
}

TEST_F(SupervisorTest, PoisonDesignTripsTheBreakerAndQuarantines) {
  // Two consecutive crashed settlements against one design trip its breaker
  // (K=2); the third job sharing the design fast-fails "quarantined" without
  // ever launching a worker, while an unrelated design is untouched.
  JobSpec c1 = job("c1", "/designs/regfile_example.shdl");
  c1.fault = "evaluator.eval@1:abort";  // every attempt dies
  JobSpec c2 = c1;
  c2.id = "c2";
  JobSpec victim = job("c3", "/designs/regfile_example.shdl");
  JobSpec other = job("other", "/designs/stdlib_pipeline.shdl");
  other.stdlib = true;
  SupervisorOptions opts = fast_opts();
  opts.quarantine_after = 2;
  Manifest m = run_jobs({c1, c2, victim, other}, opts);
  EXPECT_EQ(find(m, "c1")->state, JobState::Crashed);
  EXPECT_EQ(find(m, "c2")->state, JobState::Crashed);
  const JobRecord* q = find(m, "c3");
  ASSERT_TRUE(q);
  EXPECT_EQ(q->state, JobState::Quarantined);
  EXPECT_EQ(q->attempts, 0);
  EXPECT_TRUE(q->outcomes.empty());
  EXPECT_EQ(find(m, "other")->state, JobState::Done);
  EXPECT_EQ(m.exit_code(), 4);  // the real crashes outrank the quarantine
}

TEST_F(SupervisorTest, AVerdictResetsTheBreaker) {
  // crash, verdict, crash against one design: never two *consecutive*
  // failures, so with K=2 nothing is quarantined.
  JobSpec c1 = job("c1", "/designs/regfile_example.shdl");
  c1.fault = "evaluator.eval@1:abort";
  JobSpec ok1 = job("ok1", "/designs/regfile_example.shdl");
  JobSpec c2 = c1;
  c2.id = "c2";
  JobSpec tail = job("tail", "/designs/regfile_example.shdl");
  SupervisorOptions opts = fast_opts();
  opts.quarantine_after = 2;
  Manifest m = run_jobs({c1, ok1, c2, tail}, opts);
  EXPECT_EQ(find(m, "c1")->state, JobState::Crashed);
  EXPECT_EQ(find(m, "ok1")->state, JobState::Violations);
  EXPECT_EQ(find(m, "c2")->state, JobState::Crashed);
  EXPECT_EQ(find(m, "tail")->state, JobState::Violations);
  EXPECT_EQ(find(m, "tail")->attempts, 1);
}

// --------------------------------------------- warm in-process worker pool

class WarmSupervisorTest : public SupervisorTest {
 protected:
  SupervisorOptions warm_opts() {
    SupervisorOptions opts = fast_opts();
    opts.warm = true;
    return opts;
  }
};

TEST_F(WarmSupervisorTest, ManifestMatchesForkExecByteForByte) {
  // The warm pool is an execution strategy, not a semantic change: the same
  // mixed batch (clean, violating, input-error, transient-then-clean) must
  // produce a manifest byte-identical to the fork/exec backend's.
  JobSpec clean = job("clean", "/designs/stdlib_pipeline.shdl");
  clean.stdlib = true;
  JobSpec viol = job("viol", "/designs/regfile_example.shdl");
  JobSpec bad = job("bad", "/designs/no_such_design.shdl");
  JobSpec flaky = job("flaky", "/designs/regfile_example.shdl");
  flaky.fault = "io.read@1:fail";
  flaky.fault_attempts = 1;
  std::vector<JobSpec> batch{clean, viol, bad, flaky};
  std::string warm = run_jobs(batch, warm_opts()).to_json();
  std::string cold = run_jobs(batch, fast_opts()).to_json();
  EXPECT_EQ(warm, cold);
}

TEST_F(WarmSupervisorTest, WorkerIsReusedAcrossJobsOfOneDesign) {
  // Five jobs against the same design on one worker slot: each must report
  // the identical verdict even though one resident process serves them all
  // (stale per-run state -- armed deadlines, case results -- must not leak
  // from job to job).
  std::vector<JobSpec> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(job("j" + std::to_string(i), "/designs/regfile_example.shdl"));
  }
  SupervisorOptions opts = warm_opts();
  opts.workers = 1;
  Manifest m = run_jobs(batch, opts);
  ASSERT_EQ(m.jobs.size(), 5u);
  for (const JobRecord& r : m.jobs) {
    EXPECT_EQ(r.state, JobState::Violations) << r.id;
    EXPECT_EQ(r.attempts, 1) << r.id;
  }
}

TEST_F(WarmSupervisorTest, CrashedWarmWorkerIsDiscardedAndRetried) {
  // Crash isolation survives the warm pool: a SIGABRT kills only the
  // resident worker, the supervisor discards it and retries on a fresh one.
  JobSpec j = job("crasher", "/designs/regfile_example.shdl");
  j.fault = "evaluator.eval@1:abort";
  Manifest m = run_jobs({j}, warm_opts());
  const JobRecord* r = find(m, "crasher");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Crashed);
  EXPECT_EQ(r->attempts, 3);
  ASSERT_EQ(r->outcomes.size(), 3u);
  for (const std::string& o : r->outcomes) {
    EXPECT_EQ(o, "signal:" + std::to_string(SIGABRT));
  }
  EXPECT_EQ(m.exit_code(), 4);
}

TEST_F(WarmSupervisorTest, WatchdogKillsHungWarmWorkerAndRetries) {
  JobSpec j = job("hung", "/designs/regfile_example.shdl");
  j.fault = "evaluator.eval@1:hang";
  j.fault_attempts = 1;
  SupervisorOptions opts = warm_opts();
  opts.default_timeout = 0.5;
  Manifest m = run_jobs({j}, opts);
  const JobRecord* r = find(m, "hung");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Violations);
  EXPECT_EQ(r->attempts, 2);
  ASSERT_EQ(r->outcomes.size(), 2u);
  EXPECT_EQ(r->outcomes[0], "timeout");
  EXPECT_EQ(r->outcomes[1], "exit:1");
}

TEST_F(WarmSupervisorTest, DrainDuringFinalAttemptRequeues) {
  // The drain-wins-over-retries-exhausted rule, on the warm backend.
  volatile std::sig_atomic_t shutdown = 0;
  SupervisorOptions opts = warm_opts();
  opts.workers = 1;
  opts.max_attempts = 1;
  opts.default_timeout = 0.5;
  opts.shutdown = &shutdown;
  JobSpec hung = job("hung", "/designs/regfile_example.shdl");
  hung.fault = "evaluator.eval@1:hang";
  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    shutdown = 1;
  });
  Manifest m = run_jobs({hung}, opts);
  trigger.join();
  const JobRecord* r = find(m, "hung");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::Requeued);
  EXPECT_EQ(r->attempts, 1);
  EXPECT_EQ(m.exit_code(), 0);
}

TEST_F(WarmSupervisorTest, ServesCompiledArtifacts) {
  // A compiled-artifact job on the warm path: the resident worker loads the
  // artifact once and reproduces the source-path verdict (quickstart's one
  // deliberate set-up violation).
  examples::ExampleDesign d = examples::quickstart();
  CompiledDesign design = compile_design(d.name, *d.netlist, d.options,
                                         d.cases, CompiledSummary{});
  std::string path = ::testing::TempDir() + "serve_warm_quickstart.tvc";
  std::string error;
  ASSERT_TRUE(write_compiled_file(design, path, &error)) << error;

  JobSpec c1;
  c1.id = "c1";
  c1.design = path;
  c1.compiled = true;
  JobSpec c2 = c1;
  c2.id = "c2";
  SupervisorOptions opts = warm_opts();
  opts.workers = 1;  // the second job reuses the warm artifact worker
  Manifest warm = run_jobs({c1, c2}, opts);
  ASSERT_EQ(warm.jobs.size(), 2u);
  for (const JobRecord& r : warm.jobs) {
    EXPECT_EQ(r.state, JobState::Violations) << r.id;
    EXPECT_EQ(r.attempts, 1) << r.id;
  }
  // And byte-identical to the fork/exec scaldtv --compiled path.
  SupervisorOptions cold = fast_opts();
  cold.workers = 1;
  EXPECT_EQ(warm.to_json(), run_jobs({c1, c2}, cold).to_json());
  std::remove(path.c_str());
}

TEST_F(WarmSupervisorTest, MemoryBreachManifestMatchesForkExecByteForByte) {
  // A budget breach is a policy decision, not a backend detail: the same
  // mixed batch (one hog, one clean job) must settle identically -- byte
  // for byte -- whether the worker was fork/exec'd or warm.
  JobSpec hog = job("hog", "/designs/regfile_example.shdl");
  hog.fault = "evaluator.eval@1:bloat";
  JobSpec clean = job("clean", "/designs/stdlib_pipeline.shdl");
  clean.stdlib = true;
  std::vector<JobSpec> batch{hog, clean};
  SupervisorOptions warm = warm_opts();
  warm.mem_limit_mb = 192;
  warm.default_timeout = 30;
  SupervisorOptions cold = fast_opts();
  cold.mem_limit_mb = 192;
  cold.default_timeout = 30;
  Manifest wm = run_jobs(batch, warm);
  const JobRecord* r = find(wm, "hog");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->state, JobState::ResourceExhausted);
  ASSERT_EQ(r->outcomes.size(), 1u);
  EXPECT_EQ(r->outcomes[0], "mem-limit");
  EXPECT_EQ(wm.to_json(), run_jobs(batch, cold).to_json());
}

#endif  // TV_SCALDTV_PATH

// ------------------------------------------------ warm worker OOM handling

TEST(WarmWorkerOom, NewHandlerAnswersDoneFiveAndExitsCleanly) {
  // Allocation exhaustion inside a resident worker must surface as the
  // clean transient protocol answer ("done 5" -- retry on a fresh process),
  // never as a half-written response line. Simulate what operator new does
  // when it gives up: invoke the installed new-handler directly.
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    warm_worker_install_oom_handler(fds[1]);
    std::get_new_handler()();
    _exit(99);  // unreachable: the handler never returns
  }
  close(fds[1]);
  std::string got;
  char buf[32];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) got.append(buf, static_cast<std::size_t>(n));
  close(fds[0]);
  EXPECT_EQ(got, "done 5\n");
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 5);
}

}  // namespace
}  // namespace tv::serve
