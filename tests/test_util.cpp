// Tests for the utility layer: exact picosecond time, clock units, string
// helpers, phase timers and the storage ledger.
#include <gtest/gtest.h>

#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace tv {
namespace {

TEST(TimeUtil, NsConversionIsExact) {
  EXPECT_EQ(from_ns(1.0), 1000);
  EXPECT_EQ(from_ns(0.5), 500);
  EXPECT_EQ(from_ns(6.25), 6250);
  EXPECT_EQ(from_ns(-1.0), -1000);
  EXPECT_DOUBLE_EQ(to_ns(from_ns(47.5)), 47.5);
  // Half-cycle of round-tripping at the thesis' 0.5 ns resolution.
  for (double v = 0.0; v < 100.0; v += 0.5) {
    EXPECT_DOUBLE_EQ(to_ns(from_ns(v)), v);
  }
}

TEST(TimeUtil, FloorModIsAlwaysNonNegative) {
  EXPECT_EQ(floor_mod(7, 5), 2);
  EXPECT_EQ(floor_mod(-1, 5), 4);
  EXPECT_EQ(floor_mod(-11, 5), 4);
  EXPECT_EQ(floor_mod(0, 5), 0);
  EXPECT_EQ(floor_mod(10, 5), 0);
  for (Time a = -20; a <= 20; ++a) {
    Time r = floor_mod(a, 7);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 7);
    EXPECT_EQ(floor_mod(r - a, 7), 0);  // congruence
  }
}

TEST(TimeUtil, FormatNsMatchesListings) {
  EXPECT_EQ(format_ns(from_ns(11.5)), "11.5");
  EXPECT_EQ(format_ns(from_ns(49.0)), "49.0");
  EXPECT_EQ(format_ns(from_ns(0)), "0.0");
  EXPECT_EQ(format_ns(from_ns(3.5)), "3.5");
  EXPECT_EQ(format_ns(from_ns(6.25)), "6.250");  // sub-0.1 precision kept
  EXPECT_EQ(format_ns(from_ns(-1.0)), "-1.0");
}

TEST(TimeUtil, ClockUnits) {
  ClockUnits u = ClockUnits::from_ns_per_unit(6.25);
  EXPECT_EQ(u.to_time(8.0), from_ns(50.0));
  EXPECT_EQ(u.to_time(2.0), from_ns(12.5));
  EXPECT_EQ(u.to_time(0.5), from_ns(3.125));
  EXPECT_DOUBLE_EQ(u.from_time(from_ns(50.0)), 8.0);
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  auto parts = split("2-3,5-6,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "2-3");
  EXPECT_EQ(parts[2], "");
  EXPECT_TRUE(starts_with("CLOCK", "CLO"));
  EXPECT_FALSE(starts_with("CL", "CLO"));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("6.25", v));
  EXPECT_DOUBLE_EQ(v, 6.25);
  EXPECT_TRUE(parse_double("-1.0", v));
  EXPECT_DOUBLE_EQ(v, -1.0);
  EXPECT_TRUE(parse_double("  42 ", v));
  EXPECT_FALSE(parse_double("4.5x", v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_EQ(upper("abC dEf"), "ABC DEF");
}

TEST(Stats, PhaseTimerAccumulatesPhases) {
  PhaseTimer t;
  t.start("a");
  t.stop();
  t.start("b");  // implicit stop of a running phase is allowed
  t.start("c");
  t.stop();
  ASSERT_EQ(t.phases().size(), 3u);
  EXPECT_EQ(t.phases()[0].first, "a");
  EXPECT_EQ(t.phases()[2].first, "c");
  EXPECT_GE(t.total_seconds(), 0.0);
}

TEST(Stats, StorageLedgerPercentages) {
  StorageLedger ledger;
  ledger.add("A", 750);
  ledger.add("B", 250);
  ledger.add("A", 250);  // accumulates
  EXPECT_EQ(ledger.total(), 1250u);
  std::string table = ledger.to_table();
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("80.0%"), std::string::npos);
  EXPECT_NE(table.find("20.0%"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace tv
