// The correlation limitation (thesis sec. 4.2.3, Figs 4-1/4-2): a register
// reloaded from its own output through a multiplexer, with a skewed clock.
// The verifier works in absolute times and ignores the correlation between
// "when the register is clocked" and "when its input can change", so it
// emits a *false* hold-time error. The documented workaround is a
// fictitious "CORR" delay in the feedback path at least as long as the
// clock skew, which suppresses the false error while preserving the real
// checks.
#include <gtest/gtest.h>

#include "core/verifier.hpp"

namespace tv {
namespace {

using V = Value;

struct FeedbackCircuit {
  Netlist nl;
  VerifierOptions opts;
  SignalId reg_data = kNoSignal;
};

FeedbackCircuit build(bool with_corr_delay) {
  FeedbackCircuit c;
  c.opts.period = from_ns(50.0);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Netlist& nl = c.nl;
  // The clock reaches the register through a buffer inserting 0-4 ns of
  // skew (Fig 4-1's "relatively large amount of skew").
  Ref clk = nl.ref("CLK .P10-20");
  Ref reg_clk = nl.ref("REG CLK");
  nl.buf("CLK BUF", 0, from_ns(4.0), clk, reg_clk);

  Ref q = nl.ref("Q");
  Ref feedback = q;
  if (with_corr_delay) {
    // Fig 4-2: the "CORR" text macro inserts a fictitious delay at least
    // as long as the clock skew into the feedback path.
    Ref corr = nl.ref("Q CORR");
    nl.buf("CORR", from_ns(4.0), from_ns(4.0), q, corr);
    feedback = corr;
  }

  Ref sel = nl.ref("LOAD SEL");       // undriven, unasserted: always stable
  Ref new_in = nl.ref("NEW VALUE");   // likewise
  Ref d = nl.ref("REG DATA");
  nl.mux2("IN MUX", from_ns(1.0), from_ns(2.0), sel, feedback, new_in, d);
  c.reg_data = d.id;

  nl.reg("FB REG", from_ns(1.0), from_ns(2.0), d, reg_clk, q);
  // Hold time 2.0 ns: in reality satisfied, because the register's own
  // min delay (1.0) plus the mux min delay (1.0) plus the CORR margin
  // always exceeds it *relative to the same clock edge*.
  nl.setup_hold_chk("FB REG SETUP", from_ns(1.0), from_ns(2.0), d, reg_clk);
  nl.finalize();
  return c;
}

TEST(Correlation, FalseHoldErrorWithoutCorrDelay) {
  FeedbackCircuit c = build(/*with_corr_delay=*/false);
  Verifier v(c.nl, c.opts);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.converged);
  // Two facets of the same false error: the data (changing from
  // 10(earliest edge)+1+1 = 12 ns) moves inside the clock edge-uncertainty
  // window [10, 14], and the hold requirement (steady until 14+2 = 16 ns)
  // is missed entirely. Both are artifacts of ignoring the correlation.
  ASSERT_EQ(r.violations.size(), 2u) << violations_report(r.violations);
  EXPECT_EQ(r.violations[0].type, Violation::Type::Setup);
  EXPECT_NE(r.violations[0].message.find("DURING CLOCK EDGE WINDOW"), std::string::npos);
  EXPECT_EQ(r.violations[1].type, Violation::Type::Hold);
  EXPECT_EQ(r.violations[1].missed_by, from_ns(2.0));
}

TEST(Correlation, CorrDelaySuppressesFalseError) {
  FeedbackCircuit c = build(/*with_corr_delay=*/true);
  Verifier v(c.nl, c.opts);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.violations.empty()) << violations_report(r.violations);
  // The data now changes only from 16 ns on (12 + the 4 ns CORR delay).
  Waveform d = c.nl.signal(c.reg_data).wave.with_skew_incorporated();
  EXPECT_TRUE(d.steady_over(from_ns(14), from_ns(16)));
  EXPECT_EQ(d.at(from_ns(16)), V::Change);
}

TEST(Correlation, FeedbackLoopsConvergeThroughRegisters) {
  // Sec. 1.2.2: every feedback path contains a clocked element; the
  // evaluator's fixpoint must converge in a few passes, not oscillate.
  FeedbackCircuit c = build(false);
  Evaluator ev(c.nl, c.opts);
  ev.initialize();
  ev.propagate();
  EXPECT_TRUE(ev.converged());
  EXPECT_LE(ev.evals_performed(), 4u * c.nl.num_prims());
}

TEST(Correlation, CombinationalLoopIsFlaggedNotHung) {
  // A latch-free combinational loop (the asynchronous set-reset latch of
  // Fig 1-3) is outside the verifier's domain: it must terminate and
  // report non-convergence instead of looping forever.
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.default_wire = WireDelay{0, from_ns(1.0)};
  Ref set = nl.ref("SET .S0-25");
  Ref reset = nl.ref("RESET .S0-25");
  Ref a = nl.ref("A");
  Ref b = nl.ref("B");
  nl.or_gate("NOR1", from_ns(1), from_ns(2), {set, b}, nl.ref("A PRE"));
  nl.not_gate("INV1", 0, 0, nl.ref("A PRE"), a);
  nl.or_gate("NOR2", from_ns(1), from_ns(2), {reset, a}, nl.ref("B PRE"));
  nl.not_gate("INV2", 0, 0, nl.ref("B PRE"), b);
  nl.finalize();
  Verifier v(nl, opts);
  VerifyResult r = v.verify();
  if (!r.converged) {
    ASSERT_FALSE(r.violations.empty());
    EXPECT_EQ(r.violations[0].type, Violation::Type::Unconverged);
  }
  SUCCEED();  // reaching here at all proves termination
}

}  // namespace
}  // namespace tv
