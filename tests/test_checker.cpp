// Focused tests of the constraint checkers (thesis secs. 2.4.4, 2.4.5):
// window arithmetic across the cycle wrap, negative hold times,
// complemented clock pins, the skew/pulse-width interaction of sec. 2.8,
// and the SETUP RISE HOLD FALL semantics for memory-style parts.
#include "core/checker.hpp"

#include "core/verifier.hpp"

#include <gtest/gtest.h>

namespace tv {
namespace {

using V = Value;

struct Rig {
  Netlist nl;
  VerifierOptions opts;
  Rig() {
    opts.period = from_ns(50.0);
    opts.units = ClockUnits::from_ns_per_unit(1.0);
    opts.default_wire = WireDelay{0, 0};
    opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  }
  std::vector<Violation> run() {
    nl.finalize();
    Evaluator ev(nl, opts);
    ev.initialize();
    ev.propagate();
    return run_checks(ev);
  }
};

TEST(Checker, CleanSetupHoldPasses) {
  Rig r;
  r.nl.setup_hold_chk("CHK", from_ns(3), from_ns(2), r.nl.ref("D .S15-55"),
                      r.nl.ref("CK .P20-30"));
  EXPECT_TRUE(r.run().empty());
}

TEST(Checker, SetupMissReportsAmount) {
  Rig r;
  // Data stable only from 18.5; clock rises at 20; setup 3 -> miss 1.5.
  r.nl.setup_hold_chk("CHK", from_ns(3), 0, r.nl.ref("D .S18.5-58"), r.nl.ref("CK .P20-30"));
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].type, Violation::Type::Setup);
  EXPECT_EQ(v[0].missed_by, from_ns(1.5));
}

TEST(Checker, HoldMissReportsAmount) {
  Rig r;
  // Data starts changing at 21; hold to 20+2=22 -> miss 1.0.
  r.nl.setup_hold_chk("CHK", 0, from_ns(2), r.nl.ref("D .S10-21"), r.nl.ref("CK .P20-30"));
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].type, Violation::Type::Hold);
  EXPECT_EQ(v[0].missed_by, from_ns(1.0));
}

TEST(Checker, NegativeHoldIsNotChecked) {
  // The F10145A data sheet's -1.0 ns hold (Fig 3-5): data may change
  // *before* the edge; no hold check must run.
  Rig r;
  r.nl.setup_hold_chk("CHK", from_ns(3), from_ns(-1.0), r.nl.ref("D .S10-20"),
                      r.nl.ref("CK .P20-30"));
  EXPECT_TRUE(r.run().empty());
}

TEST(Checker, ComplementedClockChecksFallingEdge) {
  // "- CK": the checker sees the complement, so its rising edge is the
  // falling edge of CK (the RAM write-data check of Fig 3-5).
  Rig r;
  // CK falls at 30. Data stable 25..29: misses the 3 ns setup by... data
  // stable from 25, need stable from 27 -> passes setup; changing at 29
  // violates nothing (hold 0). Make data stable only from 28 -> miss 1.
  r.nl.setup_hold_chk("CHK", from_ns(3), 0, r.nl.ref("D .S28-68"), r.nl.ref("- CK .P20-30"));
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].missed_by, from_ns(1.0));
}

TEST(Checker, SetupWindowWrapsCycleBoundary) {
  // Clock rises at 2 ns; the 5 ns setup window is [47, 2) across the wrap.
  Rig r;
  // Data changing 45..48 -> stable only from 48: miss = 48 - 47 = 1... the
  // available run ending at 2 is 2+50-48 = 4 -> miss 5-4 = 1.
  r.nl.setup_hold_chk("CHK", from_ns(5), 0, r.nl.ref("D .S48-95"), r.nl.ref("CK .P2-10"));
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].missed_by, from_ns(1.0));
}

TEST(Checker, SetupRiseHoldFallChecksAllThreeWindows) {
  // setup before the rise, stable while true, hold after the fall.
  {
    Rig r;  // violates only "stable while true"
    r.nl.setup_rise_hold_fall_chk("CHK", from_ns(2), from_ns(2), r.nl.ref("D .S15-24,26-58"),
                                  r.nl.ref("CK .P20-30"));
    auto v = r.run();
    ASSERT_EQ(v.size(), 1u) << violations_report(v);
    EXPECT_EQ(v[0].type, Violation::Type::StableWhileHigh);
  }
  {
    Rig r;  // violates only the hold-after-fall: changing at 31 < 30+2
    r.nl.setup_rise_hold_fall_chk("CHK", from_ns(2), from_ns(2), r.nl.ref("D .S15-81"),
                                  r.nl.ref("CK .P20-30"));
    auto v = r.run();
    ASSERT_EQ(v.size(), 1u) << violations_report(v);
    EXPECT_EQ(v[0].type, Violation::Type::Hold);
    EXPECT_EQ(v[0].missed_by, from_ns(1.0));
  }
}

TEST(Checker, MinPulseWidthBothPolarities) {
  Rig r;
  // High pulse 3 ns (needs 5), low pulse 41 ns at the complement: check
  // both limits on one waveform: high [20,23): 3 < 5; low elsewhere:
  // 47 ns >= 10.
  r.nl.min_pulse_width_chk("CHK", from_ns(5), from_ns(10), r.nl.ref("CK .P20-23"));
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].type, Violation::Type::MinPulseHigh);
  EXPECT_EQ(v[0].missed_by, from_ns(2.0));
}

TEST(Checker, MinPulseLowAcrossWrap) {
  Rig r;
  // High except [48, 2): the low run wraps and is 4 ns wide, needs 6.
  r.nl.min_pulse_width_chk("CHK", 0, from_ns(6), r.nl.ref("CK .P2-48"));
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].type, Violation::Type::MinPulseLow);
  EXPECT_EQ(v[0].missed_by, from_ns(2.0));
}

TEST(Checker, SkewedPulsePreservesWidthProperty) {
  // Sec. 2.8's whole point: a pulse delayed by [dmin, dmax] keeps its
  // width; the min-pulse check must not fire regardless of skew size.
  for (double skew_ns : {0.0, 1.0, 3.0, 7.5, 20.0}) {
    Rig r;
    Ref in = r.nl.ref("CK .P20-30");  // 10 ns pulse
    Ref out = r.nl.ref("DELAYED");
    r.nl.buf("B", from_ns(1.0), from_ns(1.0 + skew_ns), in, out);
    r.nl.min_pulse_width_chk("CHK", from_ns(9.5), 0, out);
    EXPECT_TRUE(r.run().empty()) << "skew " << skew_ns;
  }
}

TEST(Checker, FoldedSkewConservativelyShortensPulse) {
  // Once skew has been folded by a combination (two changing inputs), the
  // guaranteed width genuinely shrinks and the check must fire.
  Rig r;
  Ref a = r.nl.ref("CK A .P20-30");
  Ref da = r.nl.ref("DEL A");
  r.nl.buf("BA", from_ns(1.0), from_ns(4.0), a, da);       // 3 ns skew
  Ref b = r.nl.ref("CK B .P20-30");
  Ref g = r.nl.ref("GATED");
  r.nl.and_gate("G", 0, 0, {da, b}, g);                    // combines: folds
  r.nl.min_pulse_width_chk("CHK", from_ns(8.0), 0, g);
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].type, Violation::Type::MinPulseHigh);
}

TEST(Checker, MultipleClockEdgesAllChecked) {
  Rig r;
  // Two rising edges (units 10 and 35); data violates setup only at the
  // second: stable 5..33, changing 33.. -> second edge at 35 misses.
  r.nl.setup_hold_chk("CHK", from_ns(3), 0, r.nl.ref("D .S5-33"),
                      r.nl.ref("CK .P10-15,35-40"));
  auto v = r.run();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].missed_by, from_ns(3.0));
}

TEST(Checker, ConstantClockNeverChecks) {
  Rig r;
  r.nl.setup_hold_chk("CHK", from_ns(3), from_ns(3), r.nl.ref("D"), r.nl.ref("TIED"));
  EXPECT_TRUE(r.run().empty());  // undriven signals are always stable
}

TEST(Checker, UnknownFeedsThroughAsViolationFreeStable) {
  // Undriven + unasserted inputs default to always-stable (sec. 2.5) so
  // they produce no spurious errors; they appear on the cross reference.
  Rig r;
  Ref d = r.nl.ref("FLOATING DATA");
  r.nl.setup_hold_chk("CHK", from_ns(3), from_ns(3), d, r.nl.ref("CK .P20-30"));
  EXPECT_TRUE(r.run().empty());
  EXPECT_EQ(r.nl.undefined_unasserted().size(), 1u);  // just the floating data
}

}  // namespace
}  // namespace tv

namespace tv {
namespace {

TEST(Slack, PositiveAndNegativeSetupSlack) {
  Rig r;
  // Data stable from 15; clock rises at 20; setup 3 -> 2 ns positive slack.
  r.nl.setup_hold_chk("GOOD", from_ns(3), from_ns(1), r.nl.ref("D .S15-60"),
                      r.nl.ref("CK .P20-30"));
  // Second checker misses by 1.5 -> -1.5 slack.
  r.nl.setup_hold_chk("BAD", from_ns(3), 0, r.nl.ref("E .S18.5-58"), r.nl.ref("CK .P20-30"));
  r.nl.finalize();
  Evaluator ev(r.nl, r.opts);
  ev.initialize();
  ev.propagate();
  auto slacks = compute_slacks(ev);
  ASSERT_EQ(slacks.size(), 2u);
  EXPECT_EQ(slacks[0].setup_slack, from_ns(2.0));
  EXPECT_EQ(slacks[1].setup_slack, from_ns(-1.5));
  // Hold slack of the first: data steady from edge (20) until 60 mod -> 10:
  // 40 ns of steady run, hold 1 -> +39... capped by when D changes (at 60
  // mod 50 = 10): run from 20 to 10 = 40 ns.
  EXPECT_EQ(slacks[0].hold_slack, from_ns(39.0));

  std::string report = slack_report(r.nl, slacks, r.opts.period, 10);
  EXPECT_NE(report.find("BAD"), std::string::npos);
  EXPECT_NE(report.find("must grow"), std::string::npos) << report;
}

TEST(Slack, CycleTimeEstimateWhenAllPass) {
  Rig r;
  r.nl.setup_hold_chk("CHK", from_ns(3), 0, r.nl.ref("D .S10-55"), r.nl.ref("CK .P20-30"));
  r.nl.finalize();
  Evaluator ev(r.nl, r.opts);
  ev.initialize();
  ev.propagate();
  auto slacks = compute_slacks(ev);
  ASSERT_EQ(slacks.size(), 1u);
  // Data stable from 10, edge at 20: 10 ns available, 3 required -> +7.
  EXPECT_EQ(slacks[0].setup_slack, from_ns(7.0));
  std::string report = slack_report(r.nl, slacks, r.opts.period, 10);
  EXPECT_NE(report.find("could shrink"), std::string::npos) << report;
  EXPECT_NE(report.find("43.0"), std::string::npos) << report;  // 50 - 7
}

}  // namespace
}  // namespace tv

// Regression for the --time-limit coverage bug: only the evaluation
// fixed-point loop used to poll the deadline, so a run whose budget expired
// during constraint checking silently kept checking (or, with cases, let
// every case re-arm a fresh budget). The shared deadline must cover the
// checker and surface skipped checks as TV-W204 with a partial result.
#include "diag/diagnostic.hpp"

namespace tv {
namespace {

TEST(CheckerDeadline, ExpiredBudgetSkipsChecksAndReportsW204) {
  Rig r;
  // A guaranteed setup violation (the SetupMissReportsAmount circuit).
  r.nl.setup_hold_chk("CHK", from_ns(3), 0, r.nl.ref("D .S18.5-58"), r.nl.ref("CK .P20-30"));
  r.nl.finalize();

  // Control: with no deadline the violation is reported.
  {
    Verifier v(r.nl, r.opts);
    VerifyResult res = v.verify({});
    ASSERT_EQ(res.violations.size(), 1u);
    EXPECT_FALSE(res.partial);
  }

  // An already-expired shared deadline: the checker must skip its checks,
  // mark the run partial, and say so -- never silently drop violations.
  VerifierOptions opts = r.opts;
  opts.deadline = Deadline::after_seconds(0);
  Verifier v(r.nl, opts);
  VerifyResult res = v.verify({});
  EXPECT_TRUE(res.partial);
  EXPECT_TRUE(res.violations.empty());
  bool saw_w204 = false;
  for (const Degradation& d : res.degradations) {
    if (std::string(d.code) == diag::kWarnCheckDeadline) {
      saw_w204 = true;
      EXPECT_NE(d.message.find("skipped"), std::string::npos) << d.message;
    }
  }
  EXPECT_TRUE(saw_w204);
}

TEST(CheckerDeadline, CasesShareOneBudgetAndDegradeToo) {
  Rig r;
  Ref sel = r.nl.ref("SEL");
  Ref out = r.nl.ref("OUT");
  r.nl.mux2("MUX", from_ns(1), from_ns(2), sel, r.nl.ref("A .S0-40"),
            r.nl.ref("B .S5-45"), out);
  r.nl.setup_hold_chk("CHK", from_ns(30), 0, out, r.nl.ref("CK .P20-30"));
  r.nl.finalize();
  std::vector<CaseSpec> cases = {{"sel0", {{sel.id, Value::Zero}}},
                                 {"sel1", {{sel.id, Value::One}}}};

  VerifierOptions opts = r.opts;
  opts.deadline = Deadline::after_seconds(0);
  Verifier v(r.nl, opts);
  VerifyResult res = v.verify(cases);
  EXPECT_TRUE(res.partial);
  ASSERT_EQ(res.cases.size(), 2u);
  for (const auto& c : res.cases) {
    EXPECT_TRUE(c.degraded) << c.name;
    EXPECT_TRUE(c.violations.empty()) << c.name;
  }
  // The expired budget is reported per checking phase (base + each case).
  std::size_t w204 = 0;
  for (const Degradation& d : res.degradations) {
    if (std::string(d.code) == diag::kWarnCheckDeadline) ++w204;
  }
  EXPECT_GE(w204, 3u);
}

}  // namespace
}  // namespace tv
