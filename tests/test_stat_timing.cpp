// Tests for the probability-based analysis extension (thesis sec. 4.2.4):
// distribution derivation, correlation handling (rho = 1 recovers the
// min/max worst case), the independence pessimism gap, and Monte Carlo
// validation of the predicted quantiles.
#include "stat/stat_timing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tv::stat {
namespace {

// A register-to-register chain of n identical gates with delay [lo, hi].
struct Chain {
  Netlist nl;
  Chain(int n, double lo, double hi) {
    Ref ck = nl.ref("CK .P0-2");
    Ref q = nl.ref("Q0");
    nl.reg("R0", 0, 0, nl.ref("D0 .S0-8"), ck, q);
    Ref cur = q;
    for (int i = 0; i < n; ++i) {
      Ref next = nl.ref("N" + std::to_string(i));
      nl.buf("G" + std::to_string(i), from_ns(lo), from_ns(hi), cur, next);
      cur = next;
    }
    nl.reg("R1", 0, 0, cur, ck, nl.ref("Q1"));
    nl.finalize();
  }
};

TEST(StatTiming, DistFromRangeCentersAtMidpoint) {
  DelayDist d = dist_from_range(from_ns(2.0), from_ns(8.0));
  EXPECT_DOUBLE_EQ(d.mean_ns, 5.0);
  EXPECT_DOUBLE_EQ(d.sigma_ns, 1.0);  // 6 ns range = +-3 sigma
  DelayDist fixed = dist_from_range(from_ns(3.0), from_ns(3.0));
  EXPECT_DOUBLE_EQ(fixed.sigma_ns, 0.0);
}

TEST(StatTiming, FullCorrelationRecoversWorstCase) {
  // rho = 1: all parts from one production run -- the thesis' warning case.
  // The 3-sigma prediction must equal the min/max worst case exactly.
  Chain c(9, 2.0, 8.0);
  StatOptions opts;
  opts.rho = 1.0;
  opts.k_sigma = 3.0;
  StatResult r = analyze_statistical(c.nl, opts);
  ASSERT_FALSE(r.paths.empty());
  EXPECT_NEAR(r.predicted_critical_ns, r.worst_case_critical_ns, 1e-9);
  EXPECT_NEAR(r.worst_case_critical_ns, 9 * 8.0, 1e-9);
}

TEST(StatTiming, IndependenceIsLessPessimisticAndGrowsLikeSqrtN) {
  // rho = 0: the 3-sigma margin grows with sqrt(n) while the worst-case
  // margin grows with n -- the "could run faster" claim quantified.
  StatOptions opts;  // independent, 3 sigma
  Chain c9(9, 2.0, 8.0);
  Chain c36(36, 2.0, 8.0);
  StatResult r9 = analyze_statistical(c9.nl, opts);
  StatResult r36 = analyze_statistical(c36.nl, opts);

  double margin9 = r9.predicted_critical_ns - 9 * 5.0;     // above the mean
  double margin36 = r36.predicted_critical_ns - 36 * 5.0;
  EXPECT_NEAR(margin9, 3.0 * std::sqrt(9.0) * 1.0, 1e-9);   // 3 * sqrt(n) * sigma
  EXPECT_NEAR(margin36, 3.0 * std::sqrt(36.0) * 1.0, 1e-9);
  EXPECT_LT(r9.predicted_critical_ns, r9.worst_case_critical_ns);
  EXPECT_LT(r36.predicted_critical_ns, r36.worst_case_critical_ns);
  // Relative pessimism shrinks with depth.
  double gap9 = r9.worst_case_critical_ns - r9.predicted_critical_ns;
  double gap36 = r36.worst_case_critical_ns - r36.predicted_critical_ns;
  EXPECT_GT(gap36, gap9);
}

TEST(StatTiming, MonteCarloValidatesPrediction) {
  Chain c(16, 2.0, 8.0);
  StatOptions opts;
  opts.rho = 0.0;
  StatResult r = analyze_statistical(c.nl, opts);
  // The 99.87th percentile (3 sigma) of sampled critical delays should sit
  // near (and, due to clamping at min/max, at or below) the prediction.
  double mc = monte_carlo_critical_ns(c.nl, opts, 4000, 0.9987, /*seed=*/7);
  EXPECT_LE(mc, r.predicted_critical_ns + 0.5);
  EXPECT_GT(mc, r.paths[0].mean_ns);           // well above the mean
  EXPECT_LT(mc, r.worst_case_critical_ns);     // below the worst case
}

TEST(StatTiming, MonteCarloCorrelationRaisesTail) {
  // With correlation the tail moves toward the worst case -- the reason
  // the thesis says ignoring correlation yields incorrect predictions.
  Chain c(16, 2.0, 8.0);
  StatOptions ind;
  ind.rho = 0.0;
  StatOptions cor;
  cor.rho = 0.9;
  double tail_ind = monte_carlo_critical_ns(c.nl, ind, 4000, 0.9987, 11);
  double tail_cor = monte_carlo_critical_ns(c.nl, cor, 4000, 0.9987, 11);
  EXPECT_GT(tail_cor, tail_ind + 2.0);
}

TEST(StatTiming, ZeroVarianceChainIsExact) {
  Chain c(5, 4.0, 4.0);  // fixed delays
  StatResult r = analyze_statistical(c.nl, StatOptions{});
  ASSERT_FALSE(r.paths.empty());
  EXPECT_NEAR(r.predicted_critical_ns, 20.0, 1e-9);
  EXPECT_NEAR(r.worst_case_critical_ns, 20.0, 1e-9);
}

TEST(StatTiming, DefaultWireDelaysAreIncluded) {
  Chain c(4, 1.0, 3.0);
  StatOptions with_wire;
  with_wire.default_wire = WireDelay{from_ns(0.5), from_ns(1.5)};
  StatOptions without;
  StatResult a = analyze_statistical(c.nl, with_wire);
  StatResult b = analyze_statistical(c.nl, without);
  EXPECT_GT(a.worst_case_critical_ns, b.worst_case_critical_ns + 4 * 1.0);
}

}  // namespace
}  // namespace tv::stat
