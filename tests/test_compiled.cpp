// Compiled-design artifact (core/compiled.hpp) regression suite.
//
// Round-trip property: every example design, serialized through the
// scaldtvc byte format and reloaded, must verify bit-identically to the
// in-memory original -- same waveforms, same event counts, same violation
// reports -- and re-serializing the loaded design must reproduce the exact
// artifact bytes. Rejection matrix: a truncated, corrupted, version-skewed,
// wrong-magic, or wrong-endian artifact is refused with exactly one
// diagnostic carrying the right TV-E30x code, and `scaldtv --compiled` on
// such a file exits 2 (input error, never retryable).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled.hpp"
#include "core/verifier.hpp"
#include "core/wave_table.hpp"
#include "diag/diagnostic.hpp"
#include "example_designs.hpp"

namespace {

using namespace tv;

std::string render_report(Netlist& nl, const VerifierOptions& opts,
                          const std::vector<CaseSpec>& cases) {
  Verifier v(nl, opts);
  VerifyResult r = v.verify(cases);
  std::ostringstream os;
  os << "signals " << nl.num_signals() << "  primitives " << nl.num_prims() << "\n";
  os << "base events " << r.base_events << "  converged "
     << (r.converged ? "yes" : "no") << "  partial " << (r.partial ? "yes" : "no")
     << "\n\n";
  os << timing_summary(nl) << "\n";
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "\n=== case \"" << c.name << "\" (" << c.events << " events, converged "
       << (c.converged ? "yes" : "no") << ") ===\n";
    os << violations_report(c.violations);
  }
  return os.str();
}

// Compiles a pristine copy of example `index` into artifact bytes.
std::string serialize_example(std::size_t index, CompiledDesign* out = nullptr) {
  examples::ExampleDesign d = examples::all_example_designs()[index];
  CompiledSummary summary;
  summary.primitives = d.netlist->num_prims();
  summary.unique_signals = d.netlist->num_signals();
  CompiledDesign design =
      compile_design(d.name, *d.netlist, d.options, d.cases, summary);
  std::string bytes = serialize_compiled(design);
  if (out != nullptr) *out = std::move(design);
  return bytes;
}

TEST(CompiledRoundTrip, EveryExampleVerifiesIdentically) {
  const std::size_t n = examples::all_example_designs().size();
  ASSERT_GE(n, 5u);
  for (std::size_t i = 0; i < n; ++i) {
    // Fresh build for the reference run: verification mutates the netlist's
    // baseline waveforms, so the compile below uses its own copy.
    examples::ExampleDesign ref = examples::all_example_designs()[i];
    std::string source_report =
        render_report(*ref.netlist, ref.options, ref.cases);

    std::string bytes = serialize_example(i);
    diag::DiagnosticEngine diags;
    std::optional<CompiledDesign> loaded = load_compiled(bytes, ref.name, diags);
    ASSERT_TRUE(loaded.has_value()) << ref.name;
    EXPECT_FALSE(diags.has_errors()) << ref.name;

    std::string compiled_report =
        render_report(loaded->netlist, loaded->options, loaded->cases);
    EXPECT_EQ(source_report, compiled_report)
        << ref.name << ": compiled path must be byte-identical to source path";
  }
}

TEST(CompiledRoundTrip, ReserializingALoadedDesignReproducesTheBytes) {
  for (std::size_t i = 0; i < examples::all_example_designs().size(); ++i) {
    std::string bytes = serialize_example(i);
    diag::DiagnosticEngine diags;
    std::optional<CompiledDesign> loaded = load_compiled(bytes, "rt", diags);
    ASSERT_TRUE(loaded.has_value()) << i;
    std::string again = serialize_compiled(*loaded);
    EXPECT_EQ(bytes, again)
        << "example " << i << ": serialize(load(bytes)) must equal bytes";
  }
}

TEST(CompiledRoundTrip, SerializationIsDeterministic) {
  CompiledDesign a, b;
  std::string first = serialize_example(0, &a);
  std::string second = serialize_example(0, &b);
  EXPECT_EQ(first, second);
  EXPECT_EQ(a.content_hash, b.content_hash);
  EXPECT_NE(a.content_hash, 0u);
}

TEST(CompiledRoundTrip, PreinternedSeedsChangeNoVerdicts) {
  CompiledDesign design;
  std::string bytes = serialize_example(0, &design);
  ASSERT_FALSE(design.seed_arena.empty());
  ASSERT_EQ(design.seed_refs.size(), design.netlist.num_signals());

  WaveformTable table;
  std::size_t interned = preintern_seeds(design, table);
  EXPECT_EQ(interned, design.seed_arena.size());
  EXPECT_EQ(table.size(), design.seed_arena.size());
  // Warming is idempotent: the arena holds unique canonical waveforms, so a
  // second pass interns nothing new.
  preintern_seeds(design, table);
  EXPECT_EQ(table.size(), design.seed_arena.size());
}

// --- rejection matrix -------------------------------------------------------

// Header layout (compiled.cpp): magic[8], endian u32, version u32, hash u64,
// payload size u64, section count u32, reserved u32 -- 40 bytes.
constexpr std::size_t kHdrEndianOff = 8;
constexpr std::size_t kHdrVersionOff = 12;
constexpr std::size_t kHdrHashOff = 16;
constexpr std::size_t kHdrSize = 40;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void patch_u64(std::string& bytes, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

// The artifact must be rejected with exactly one diagnostic of `code`.
void expect_reject(const std::string& bytes, const char* code, const char* what) {
  diag::DiagnosticEngine diags;
  std::optional<CompiledDesign> loaded = load_compiled(bytes, "corrupt", diags);
  EXPECT_FALSE(loaded.has_value()) << what;
  ASSERT_EQ(diags.error_count(), 1u) << what;
  EXPECT_EQ(diags.diagnostics().at(0).code, code) << what;
}

TEST(CompiledReject, TruncatedHeader) {
  std::string bytes = serialize_example(0);
  expect_reject(bytes.substr(0, 10), diag::kErrArtifactTruncated, "header stub");
  expect_reject("", diag::kErrArtifactTruncated, "empty file");
}

TEST(CompiledReject, BadMagic) {
  std::string bytes = serialize_example(0);
  bytes[0] = 'X';
  expect_reject(bytes, diag::kErrArtifactMagic, "flipped magic byte");
  expect_reject("DESIGN design; END DESIGN;\n" + std::string(kHdrSize, ' '),
                diag::kErrArtifactMagic, "SHDL source fed as an artifact");
}

TEST(CompiledReject, OppositeByteOrder) {
  std::string bytes = serialize_example(0);
  // A big-endian writer would lay the 0x01020304 tag down reversed.
  std::swap(bytes[kHdrEndianOff], bytes[kHdrEndianOff + 3]);
  std::swap(bytes[kHdrEndianOff + 1], bytes[kHdrEndianOff + 2]);
  expect_reject(bytes, diag::kErrArtifactEndian, "byte-swapped endian tag");
}

TEST(CompiledReject, GarbageEndianTag) {
  std::string bytes = serialize_example(0);
  bytes[kHdrEndianOff] = '\x7f';
  expect_reject(bytes, diag::kErrArtifactMalformed, "garbage endian tag");
}

TEST(CompiledReject, VersionSkew) {
  std::string bytes = serialize_example(0);
  bytes[kHdrVersionOff] = static_cast<char>(kCompiledFormatVersion + 1);
  diag::DiagnosticEngine diags;
  EXPECT_FALSE(load_compiled(bytes, "skewed", diags).has_value());
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().at(0).code, diag::kErrArtifactVersion);
  // The message tells the user the fix: recompile.
  EXPECT_NE(diags.diagnostics().at(0).message.find("recompile"), std::string::npos);
}

TEST(CompiledReject, TruncatedPayload) {
  std::string bytes = serialize_example(0);
  expect_reject(bytes.substr(0, bytes.size() - 1), diag::kErrArtifactTruncated,
                "last byte dropped");
  expect_reject(bytes.substr(0, kHdrSize + 3), diag::kErrArtifactTruncated,
                "payload cut mid-section-table");
}

TEST(CompiledReject, TrailingGarbage) {
  std::string bytes = serialize_example(0);
  expect_reject(bytes + std::string(2, '\0'), diag::kErrArtifactTruncated,
                "trailing bytes");
}

TEST(CompiledReject, CorruptedPayloadFailsTheContentHash) {
  std::string bytes = serialize_example(0);
  bytes[bytes.size() / 2] ^= 0x01;
  expect_reject(bytes, diag::kErrArtifactHash, "payload bit flip");
}

TEST(CompiledReject, MalformedSectionTable) {
  // Corrupt the first section id *and* re-stamp a matching content hash: the
  // damage must still be caught, by structural validation, not only by the
  // hash check.
  std::string bytes = serialize_example(0);
  bytes[kHdrSize] ^= 0x40;
  patch_u64(bytes, kHdrHashOff, fnv1a(bytes.substr(kHdrSize)));
  expect_reject(bytes, diag::kErrArtifactMalformed, "bad section id, fixed hash");
}

TEST(CompiledReject, MissingFileReportsIo) {
  diag::DiagnosticEngine diags;
  EXPECT_FALSE(
      load_compiled_file("/nonexistent/design.tvc", diags).has_value());
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().at(0).code, diag::kErrArtifactIo);
}

// --- scaldtv --compiled exit codes (subprocess) -----------------------------

#ifdef TV_SCALDTV_PATH
class TempArtifact {
 public:
  explicit TempArtifact(const std::string& bytes) {
    char tmpl[] = "/tmp/tv_compiled_test_XXXXXX";
    int fd = mkstemp(tmpl);
    path_ = tmpl;
    std::ofstream out(path_, std::ios::binary);
    out << bytes;
    out.close();
    if (fd >= 0) close(fd);
  }
  ~TempArtifact() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

int run_scaldtv(const std::string& args) {
  std::string cmd = std::string(TV_SCALDTV_PATH) + " " + args + " >/dev/null 2>&1";
  return WEXITSTATUS(std::system(cmd.c_str()));
}

TEST(CompiledExitCodes, GoodArtifactReproducesTheSourceVerdict) {
  // quickstart (example 0) carries one deliberate set-up violation: exit 1,
  // from the compiled path exactly as from source.
  TempArtifact good(serialize_example(0));
  EXPECT_EQ(run_scaldtv("--compiled " + good.path()), 1);
}

TEST(CompiledExitCodes, CorruptedArtifactExitsTwo) {
  std::string bytes = serialize_example(0);
  bytes[bytes.size() / 2] ^= 0x01;
  TempArtifact corrupt(bytes);
  EXPECT_EQ(run_scaldtv("--compiled " + corrupt.path()), 2);
}

TEST(CompiledExitCodes, TruncatedArtifactExitsTwo) {
  TempArtifact stub(serialize_example(0).substr(0, 16));
  EXPECT_EQ(run_scaldtv("--compiled " + stub.path()), 2);
}

TEST(CompiledExitCodes, VersionSkewExitsTwo) {
  std::string bytes = serialize_example(0);
  bytes[kHdrVersionOff] = static_cast<char>(kCompiledFormatVersion + 1);
  TempArtifact skewed(bytes);
  EXPECT_EQ(run_scaldtv("--compiled " + skewed.path()), 2);
}

TEST(CompiledExitCodes, MissingArtifactExitsTwo) {
  EXPECT_EQ(run_scaldtv("--compiled /nonexistent/design.tvc"), 2);
}
#endif  // TV_SCALDTV_PATH

}  // namespace
