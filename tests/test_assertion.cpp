// Tests for the assertion language of sec. 2.5 and its waveform
// materialization, using the exact examples printed in the thesis.
#include "core/assertion.hpp"

#include <gtest/gtest.h>

namespace tv {
namespace {

using V = Value;

// The Fig 2-5 example: 50 ns cycle, clock units of 6.25 ns (8 per cycle).
constexpr Time P = from_ns(50.0);
const ClockUnits kUnits = ClockUnits::from_ns_per_unit(6.25);
// Zero default skews keep the waveform shape checks exact; skewed variants
// are exercised separately.
const AssertionDefaults kNoSkew{0, 0, 0, 0};

TEST(AssertionParse, NonPrecisionClockWithPolarity) {
  // "XYZ .C 4-6 L": goes from high to low at 4 and low to high at 6.
  ParsedSignal s = parse_signal_name("XYZ .C 4-6 L");
  EXPECT_EQ(s.base_name, "XYZ");
  EXPECT_EQ(s.assertion.kind, Assertion::Kind::Clock);
  ASSERT_EQ(s.assertion.ranges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.assertion.ranges[0].begin, 4);
  EXPECT_DOUBLE_EQ(s.assertion.ranges[0].end, 6);
  EXPECT_TRUE(s.assertion.active_low);
  EXPECT_FALSE(s.complemented);
}

TEST(AssertionParse, MultipleRangesAndSingleTimes) {
  // "XYZ .C2-3,5-6" and the single-time form "XYZ .C2,5" (one clock unit
  // assumed per single time) describe the same high intervals.
  ParsedSignal a = parse_signal_name("XYZ .C2-3,5-6");
  ParsedSignal b = parse_signal_name("XYZ .P2,5");
  ASSERT_EQ(a.assertion.ranges.size(), 2u);
  ASSERT_EQ(b.assertion.ranges.size(), 2u);
  EXPECT_EQ(a.assertion.ranges[0], (Assertion::Range{2, 3, std::nullopt}));
  EXPECT_EQ(a.assertion.ranges[1], (Assertion::Range{5, 6, std::nullopt}));
  EXPECT_EQ(b.assertion.ranges[0], (Assertion::Range{2, 3, std::nullopt}));
  EXPECT_EQ(b.assertion.kind, Assertion::Kind::PrecisionClock);
  Waveform wa = assertion_waveform(a.assertion, P, kUnits, kNoSkew);
  Waveform wb = assertion_waveform(b.assertion, P, kUnits, kNoSkew);
  EXPECT_EQ(wa, wb);
}

TEST(AssertionParse, WidthInNanoseconds) {
  // "XYZ .P2+10.0": high at unit 2 for 10.0 ns (does not scale with cycle).
  ParsedSignal s = parse_signal_name("XYZ .P2+10.0");
  ASSERT_EQ(s.assertion.ranges.size(), 1u);
  EXPECT_TRUE(s.assertion.ranges[0].width_ns.has_value());
  EXPECT_DOUBLE_EQ(*s.assertion.ranges[0].width_ns, 10.0);
  Waveform w = assertion_waveform(s.assertion, P, kUnits, kNoSkew);
  EXPECT_EQ(w.at(from_ns(12.5)), V::One);
  EXPECT_EQ(w.at(from_ns(22.4)), V::One);
  EXPECT_EQ(w.at(from_ns(22.5)), V::Zero);
}

TEST(AssertionParse, StableAssertionWithSpaceInName) {
  // "W DATA .S0-6": names contain spaces; assertion is the trailing token.
  ParsedSignal s = parse_signal_name("W DATA .S0-6");
  EXPECT_EQ(s.base_name, "W DATA");
  EXPECT_EQ(s.assertion.kind, Assertion::Kind::Stable);
  Waveform w = assertion_waveform(s.assertion, P, kUnits, kNoSkew);
  EXPECT_EQ(w.at(0), V::Stable);
  EXPECT_EQ(w.at(from_ns(37.4)), V::Stable);   // just before unit 6
  EXPECT_EQ(w.at(from_ns(37.5)), V::Change);   // units 6..8 changing
  EXPECT_EQ(w.at(from_ns(49.9)), V::Change);
}

TEST(AssertionParse, StableAssertionWrapsModuloCycle) {
  // Sec. 3.2: "READ ADR .S4-9" in an 8-unit cycle is stable 4..9 (i.e. 4..8
  // plus 0..1) and changing 1..4.
  ParsedSignal s = parse_signal_name("READ ADR .S4-9");
  Waveform w = assertion_waveform(s.assertion, P, kUnits, kNoSkew);
  EXPECT_EQ(w.at(from_ns(25.0)), V::Stable);   // unit 4
  EXPECT_EQ(w.at(from_ns(49.9)), V::Stable);
  EXPECT_EQ(w.at(from_ns(0.0)), V::Stable);    // wrapped portion to unit 1
  EXPECT_EQ(w.at(from_ns(6.24)), V::Stable);
  EXPECT_EQ(w.at(from_ns(6.25)), V::Change);
  EXPECT_EQ(w.at(from_ns(24.9)), V::Change);
}

TEST(AssertionParse, ExplicitSkewSpecification) {
  ParsedSignal s = parse_signal_name("CK .P2-3 (-0.5,1.5)");
  ASSERT_TRUE(s.assertion.skew_ns.has_value());
  EXPECT_DOUBLE_EQ(s.assertion.skew_ns->first, -0.5);
  EXPECT_DOUBLE_EQ(s.assertion.skew_ns->second, 1.5);
  Waveform w = assertion_waveform(s.assertion, P, kUnits, kNoSkew);
  // Nominal rise at 12.5 shifted 0.5 early; total skew 2.0 ns.
  EXPECT_EQ(w.at(from_ns(12.0)), V::One);
  EXPECT_EQ(w.at(from_ns(11.9)), V::Zero);
  EXPECT_EQ(w.skew(), from_ns(2.0));
}

TEST(AssertionParse, DefaultSkewsDifferByClockKind) {
  // Mark IIA rules: precision clocks +-1 ns, non-precision +-5 ns.
  AssertionDefaults d;  // the defaults are the Mark IIA numbers
  Waveform p = assertion_waveform(parse_signal_name("A .P2-3").assertion, P, kUnits, d);
  Waveform c = assertion_waveform(parse_signal_name("A .C2-3").assertion, P, kUnits, d);
  EXPECT_EQ(p.skew(), from_ns(2.0));
  EXPECT_EQ(c.skew(), from_ns(10.0));
  // Earliest rise: 1 ns early for precision, 5 ns early for non-precision.
  EXPECT_EQ(p.at(from_ns(11.5)), V::One);
  EXPECT_EQ(p.at(from_ns(11.4)), V::Zero);
  EXPECT_EQ(c.at(from_ns(7.5)), V::One);
  EXPECT_EQ(c.at(from_ns(7.4)), V::Zero);
}

TEST(AssertionParse, ActiveLowClockInverts) {
  // "XYZ .C 4-6 L" is *low* from 4 to 6 and high elsewhere.
  ParsedSignal s = parse_signal_name("XYZ .C 4-6 L");
  Waveform w = assertion_waveform(s.assertion, P, kUnits, kNoSkew);
  EXPECT_EQ(w.at(from_ns(25.0)), V::Zero);   // unit 4
  EXPECT_EQ(w.at(from_ns(37.4)), V::Zero);
  EXPECT_EQ(w.at(from_ns(37.5)), V::One);
  EXPECT_EQ(w.at(0), V::One);
}

TEST(AssertionParse, ComplementAndDirectives) {
  ParsedSignal s = parse_signal_name("- WE");
  EXPECT_TRUE(s.complemented);
  EXPECT_EQ(s.base_name, "WE");

  ParsedSignal d = parse_signal_name("CK .P0-4 &HZ");
  EXPECT_EQ(d.directives, "HZ");
  EXPECT_EQ(d.base_name, "CK");
  EXPECT_EQ(d.assertion.kind, Assertion::Kind::PrecisionClock);

  ParsedSignal e = parse_signal_name("ENB &A");
  EXPECT_EQ(e.directives, "A");
  EXPECT_EQ(e.base_name, "ENB");
  EXPECT_EQ(e.assertion.kind, Assertion::Kind::None);
}

TEST(AssertionParse, EmbeddedAmpersandIsPartOfTheName) {
  // The "&..." directive string is its own token (sec. 2.6); an '&' embedded
  // in a name coming off a drawing ("A&B") is just a name character.
  ParsedSignal s = parse_signal_name("A&B");
  EXPECT_EQ(s.base_name, "A&B");
  EXPECT_TRUE(s.directives.empty());
  EXPECT_EQ(s.assertion.kind, Assertion::Kind::None);

  ParsedSignal t = parse_signal_name("A&B .P0-4 &HZ");
  EXPECT_EQ(t.base_name, "A&B");
  EXPECT_EQ(t.directives, "HZ");
  EXPECT_EQ(t.assertion.kind, Assertion::Kind::PrecisionClock);
}

TEST(AssertionParse, PlainSignalHasNoAssertion) {
  ParsedSignal s = parse_signal_name("ALU OUTPUT<0:35>");
  EXPECT_EQ(s.base_name, "ALU OUTPUT<0:35>");
  EXPECT_EQ(s.assertion.kind, Assertion::Kind::None);
  Waveform w = assertion_waveform(s.assertion, P, kUnits, kNoSkew);
  EXPECT_EQ(w.at(0), V::Unknown);
  EXPECT_TRUE(w.is_constant());
}

TEST(AssertionParse, MalformedAssertionsThrow) {
  EXPECT_THROW(parse_signal_name("X .S"), std::invalid_argument);
  EXPECT_THROW(parse_signal_name("X .C2-"), std::invalid_argument);
  EXPECT_THROW(parse_signal_name("X .C2-3(1.0,2.0)"), std::invalid_argument);  // minus > 0
  EXPECT_THROW(parse_signal_name("X .C2-3(-1.0)"), std::invalid_argument);
  EXPECT_THROW(parse_signal_name("X .C2-3 Q"), std::invalid_argument);
  EXPECT_THROW(parse_signal_name("X &Q"), std::invalid_argument);
}

TEST(AssertionParse, AssertionIsPartOfSignalIdentity) {
  // Sec. 2.5.1: the assertion is part of the signal name, so the same base
  // name with different assertions parses to different full names.
  ParsedSignal a = parse_signal_name("MEM CLK .P2-3");
  ParsedSignal b = parse_signal_name("MEM CLK .P2-4");
  EXPECT_EQ(a.base_name, b.base_name);
  EXPECT_NE(a.full_name, b.full_name);
}

TEST(AssertionParse, ClockWaveformIsPeriodicConsistent) {
  // Property: for any parsed clock, the waveform's segment widths sum to the
  // period and the waveform contains only 0/1 values.
  for (const char* name : {"A .C1-2", "B .P0-4", "C .C2-3,5-6", "D .P7-9 L", "E .P2+3.0"}) {
    Waveform w = assertion_waveform(parse_signal_name(name).assertion, P, kUnits, kNoSkew);
    Time sum = 0;
    for (const auto& s : w.segments()) {
      sum += s.width;
      EXPECT_TRUE(s.value == V::Zero || s.value == V::One) << name;
    }
    EXPECT_EQ(sum, P) << name;
  }
}

}  // namespace
}  // namespace tv

namespace tv {
namespace {

TEST(AssertionPrint, CanonicalText) {
  EXPECT_EQ(assertion_to_text(parse_signal_name("X .C 4-6 L").assertion), ".C4-6 L");
  EXPECT_EQ(assertion_to_text(parse_signal_name("X .P2,5").assertion), ".P2-3,5-6");
  EXPECT_EQ(assertion_to_text(parse_signal_name("X .P2+10.0").assertion), ".P2+10");
  EXPECT_EQ(assertion_to_text(parse_signal_name("X .S4-8.5").assertion), ".S4-8.5");
  EXPECT_EQ(assertion_to_text(parse_signal_name("X .P2-3 (-0.5,1.5)").assertion),
            ".P2-3(-0.5,1.5)");
  EXPECT_EQ(assertion_to_text(parse_signal_name("PLAIN").assertion), "");
}

TEST(AssertionPrint, RoundTripPreservesWaveform) {
  const Time P = from_ns(50.0);
  const ClockUnits units = ClockUnits::from_ns_per_unit(6.25);
  const AssertionDefaults d{-1, 1, -5, 5};
  for (const char* spec :
       {"A .C 4-6 L", "A .P2,5", "A .P2+10.0", "A .S4-8.5", "A .P2-3 (-0.5,1.5)",
        "A .C2-3,5-6", "A .S0-6", "A .P7-9 L"}) {
    Assertion orig = parse_signal_name(spec).assertion;
    std::string text = "A " + assertion_to_text(orig);
    Assertion reparsed = parse_signal_name(text).assertion;
    EXPECT_EQ(assertion_waveform(orig, P, units, d), assertion_waveform(reparsed, P, units, d))
        << spec << " -> " << text;
  }
}

}  // namespace
}  // namespace tv
