// Property sweep for the register model (Fig 2-1): the symbolic output
// must *cover* every concrete realization of the clock-edge time (within
// the skewed edge window) and the propagation delay (within [dmin, dmax]).
// Covering means: where the symbolic waveform claims a definite 0/1, every
// realization shows that value; S claims "some constant level"; C/R/F
// claim "may be changing".
#include <gtest/gtest.h>

#include "core/primitives.hpp"

namespace tv {
namespace {

using V = Value;
constexpr Time P = from_ns(50.0);

bool covers(Value sym, Value concrete) {
  if (sym == concrete) return true;
  switch (sym) {
    case V::Unknown:
    case V::Change: return true;
    case V::Rise:
    case V::Fall:
    case V::Stable: return concrete == V::Zero || concrete == V::One;
    default: return false;
  }
}

struct Scenario {
  double data_toggle_ns;   // data goes 0 -> 1 at this time
  double clock_rise_ns;    // nominal rise
  double clock_fall_ns;
  double clock_skew_ns;    // +- uncertainty folded as [rise, rise+skew]
  double dmin_ns, dmax_ns;
};

class RegisterSoundness : public ::testing::TestWithParam<Scenario> {};

TEST_P(RegisterSoundness, SymbolicCoversAllRealizations) {
  const Scenario sc = GetParam();

  // Symbolic inputs.
  Waveform data(P, V::Zero);
  data.set(from_ns(sc.data_toggle_ns), P, V::One);
  Waveform clock(P, V::Zero);
  clock.set(from_ns(sc.clock_rise_ns), from_ns(sc.clock_fall_ns), V::One);
  clock.set_skew(from_ns(sc.clock_skew_ns));

  Primitive reg;
  reg.kind = PrimKind::Reg;
  reg.name = "uut";
  reg.dmin = from_ns(sc.dmin_ns);
  reg.dmax = from_ns(sc.dmax_ns);
  PreparedInput din, cin;
  din.wave = data;
  cin.wave = clock;
  Waveform sym = evaluate_primitive(reg, {din, cin}, P).wave.with_skew_incorporated();

  // Concrete realizations: the edge lands anywhere in the skew window, the
  // delay anywhere in [dmin, dmax]. In periodic steady state the register
  // output is the constant captured value (same capture every cycle).
  for (double e = sc.clock_rise_ns; e <= sc.clock_rise_ns + sc.clock_skew_ns; e += 0.5) {
    for (double d : {sc.dmin_ns, (sc.dmin_ns + sc.dmax_ns) / 2, sc.dmax_ns}) {
      (void)d;  // the output is constant in steady state; d shifts nothing
      Value captured = e >= sc.data_toggle_ns ? V::One : V::Zero;
      for (Time t = 0; t < P; t += from_ns(0.5)) {
        ASSERT_TRUE(covers(sym.at(t), captured))
            << "edge " << e << " delay " << d << " t=" << to_ns(t) << " sym "
            << value_letter(sym.at(t)) << " concrete " << value_letter(captured);
      }
    }
  }

  // Additionally: the symbolic output must be non-committal (not a definite
  // constant) whenever different realizations capture different values.
  Value cap_early = sc.clock_rise_ns >= sc.data_toggle_ns ? V::One : V::Zero;
  Value cap_late =
      sc.clock_rise_ns + sc.clock_skew_ns >= sc.data_toggle_ns ? V::One : V::Zero;
  if (cap_early != cap_late) {
    bool any_definite = false;
    for (const auto& seg : sym.segments()) {
      if (is_definite(seg.value)) any_definite = true;
    }
    EXPECT_FALSE(any_definite) << sym.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RegisterSoundness,
    ::testing::Values(
        // data settles long before the edge: clean capture of 1
        Scenario{5, 20, 30, 0, 1, 3},
        Scenario{5, 20, 30, 2, 1, 3},
        // data toggles after the edge: captures 0
        Scenario{35, 20, 30, 0, 1, 3},
        Scenario{35, 20, 30, 2, 2, 5},
        // data toggles inside the skewed edge window: ambiguous capture
        Scenario{21, 20, 30, 2, 1, 3},
        Scenario{20, 20, 30, 4, 1, 1},
        // zero-delay register, wide skew
        Scenario{10, 20, 30, 6, 0, 0},
        // edge near the cycle wrap
        Scenario{5, 46, 49, 2, 1, 3},
        Scenario{47, 46, 49, 2, 1, 3}));

// The same covering argument for the latch (Fig 2-2): while the enable is
// high the output follows the data; after the enable falls it holds the
// captured value.
TEST(LatchSoundness, TransparentAndHoldPhases) {
  Waveform data(P, V::Zero);
  data.set(from_ns(10), P, V::One);   // data rises at 10
  Waveform en(P, V::Zero);
  en.set(from_ns(5), from_ns(25), V::One);

  Primitive latch;
  latch.kind = PrimKind::Latch;
  latch.name = "uut";
  latch.dmin = 0;
  latch.dmax = 0;
  PreparedInput din, ein;
  din.wave = data;
  ein.wave = en;
  Waveform sym = evaluate_primitive(latch, {din, ein}, P).wave.with_skew_incorporated();

  // Concrete: transparent 5..25 (output = data), holds 1 from 25 on, and
  // holds 1 from the previous cycle until the enable reopens at 5.
  for (Time t = 0; t < P; t += from_ns(0.5)) {
    Value concrete;
    double tn = to_ns(t);
    if (tn >= 5 && tn < 25) {
      concrete = tn >= 10 ? V::One : V::Zero;
    } else {
      concrete = V::One;  // held
    }
    ASSERT_TRUE(covers(sym.at(t), concrete))
        << "t=" << tn << " sym " << value_letter(sym.at(t)) << " concrete "
        << value_letter(concrete);
  }
}

}  // namespace
}  // namespace tv
