// Tests for the SHDL front end (the textual stand-in for the SCALD Hardware
// Description Language, thesis sec. 3.1): lexer, parser, macro expansion
// with width parameters and scope markers, and end-to-end elaboration of
// the Fig 2-5 / Fig 3-5 register-file design.
#include <gtest/gtest.h>

#include "core/verifier.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/lexer.hpp"
#include "hdl/parser.hpp"
#include "hdl/stdlib.hpp"

#include "core/verifier.hpp"

namespace tv::hdl {
namespace {

TEST(HdlLexer, TokensAndComments) {
  auto toks = lex("macro M(SIZE) { -- comment\n reg [delay=1.5:4.5] (\"A B .S0-6\") -> \"Q\"; }");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::Ident);
  EXPECT_EQ(toks[0].text, "macro");
  EXPECT_EQ(toks[1].text, "M");
  // The comment is skipped; "reg" follows the '{'.
  bool found_string = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::String) {
      EXPECT_EQ(t.text, "A B .S0-6");
      found_string = true;
      break;
    }
  }
  EXPECT_TRUE(found_string);
  EXPECT_EQ(toks.back().kind, Tok::End);
}

TEST(HdlLexer, ArrowVsMinusVsComment) {
  auto toks = lex("a -> b - 1 --x\n2");
  ASSERT_EQ(toks.size(), 7u);  // a, ->, b, -, 1, 2 (comment eats x), End
  EXPECT_EQ(toks[1].kind, Tok::Arrow);
  EXPECT_EQ(toks[3].kind, Tok::Minus);
}

TEST(HdlLexer, ErrorsCarryLineNumbers) {
  try {
    lex("ok tokens\n\"unterminated");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(HdlParser, DesignSettingsAndCases) {
  File f = parse(R"(
    design EX {
      period 50.0;
      clock_unit 6.25;
      default_wire 0.0:2.0;
      precision_skew -1.0:1.0;
      case "CTL TRUE" { "CONTROL SIGNAL" = 1; }
      buf [delay=1.0:2.0] ("IN .S0-6") -> "OUT";
    }
  )");
  ASSERT_TRUE(f.has_design);
  EXPECT_EQ(f.design_name, "EX");
  EXPECT_DOUBLE_EQ(f.design.period_ns, 50.0);
  EXPECT_DOUBLE_EQ(f.design.clock_unit_ns, 6.25);
  EXPECT_DOUBLE_EQ(f.design.precision_skew[0], -1.0);
  ASSERT_EQ(f.design.cases.size(), 1u);
  EXPECT_EQ(f.design.cases[0].pins[0].first, "CONTROL SIGNAL");
  ASSERT_EQ(f.design.instances.size(), 1u);
  EXPECT_EQ(f.design.instances[0].kind, "buf");
}

TEST(HdlParser, SyntaxErrorsAreReported) {
  EXPECT_THROW(parse("design X { period; }"), std::invalid_argument);
  EXPECT_THROW(parse("macro M { }"), std::invalid_argument);       // missing ()
  EXPECT_THROW(parse("design X { } design Y { }"), std::invalid_argument);
  EXPECT_THROW(parse("bogus"), std::invalid_argument);
}

TEST(HdlElaborate, MacroWidthParametersExpand) {
  ElaboratedDesign d = elaborate_source(R"(
    macro WIDE_REG(SIZE) {
      param in "I<0:SIZE-1>", "CK";
      param out "Q<0:SIZE-1>";
      reg [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK") -> "Q<0:SIZE-1>";
      setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
    }
    design T {
      period 50.0;
      use WIDE_REG [SIZE=32] ("DATA .S0-6", "CLK .P2-3", "OUT REG");
    }
  )");
  EXPECT_EQ(d.summary.macro_instances, 1u);
  EXPECT_EQ(d.summary.primitives, 2u);
  // The register is 32 bits wide; the width lives on the primitive and the
  // signal, not in 32 replicated primitives (the thesis' key vectorization:
  // 8 282 primitives instead of 53 833).
  SignalId out = d.netlist.find("OUT REG");
  ASSERT_NE(out, kNoSignal);
  EXPECT_EQ(d.netlist.signal(out).width, 32);
  EXPECT_EQ(d.netlist.prim(0).width, 32);
}

TEST(HdlElaborate, LocalSignalsGetInstancePaths) {
  ElaboratedDesign d = elaborate_source(R"(
    macro TWO_BUF() {
      param in "A"; param out "B";
      buf ("A") -> "MID /M";
      buf ("MID /M") -> "B";
    }
    design T {
      period 50.0;
      use TWO_BUF [] ("X .S0-4", "Y1");
      use TWO_BUF [] ("X .S0-4", "Y2");
    }
  )");
  // Each instance gets a private MID: 4 buffers, 2 distinct local signals.
  EXPECT_EQ(d.summary.primitives, 4u);
  int mids = 0;
  for (SignalId id = 0; id < d.netlist.num_signals(); ++id) {
    const Signal& s = d.netlist.signal(id);
    if (s.base_name.find("MID") != std::string::npos) {
      ++mids;
      EXPECT_EQ(s.scope, SignalScope::Local);
      EXPECT_NE(s.base_name.find("TWO_BUF#"), std::string::npos) << s.base_name;
    }
  }
  EXPECT_EQ(mids, 2);
}

TEST(HdlElaborate, ComplementAndDirectivesSurviveSubstitution) {
  ElaboratedDesign d = elaborate_source(R"(
    macro CHK() {
      param in "D", "CK";
      setup_hold [setup=4.5, hold=-1.0] ("D", "- CK");
    }
    design T {
      period 50.0;
      use CHK [] ("W DATA .S0-6", "WE SIG");
      and ("CK .P2-3 &H", "WRITE .S0-6") -> "WE SIG";
    }
  )");
  // The checker's clock pin is the complement of WE SIG.
  const Primitive& chk = d.netlist.prim(0);
  EXPECT_EQ(chk.kind, PrimKind::SetupHoldChk);
  EXPECT_TRUE(chk.inputs[1].invert);
  EXPECT_EQ(d.netlist.signal(chk.inputs[1].sig).base_name, "WE SIG");
  // The AND gate's first pin carries the "&H" directive.
  const Primitive& gate = d.netlist.prim(1);
  EXPECT_EQ(gate.inputs[0].directives, "H");
}

TEST(HdlElaborate, ErrorsAreDiagnosed) {
  EXPECT_THROW(elaborate_source("design T { period 50.0; bogus (\"A\") -> \"B\"; }"),
               std::invalid_argument);
  EXPECT_THROW(elaborate_source("design T { period 50.0; use NOPE [] (\"A\"); }"),
               std::invalid_argument);
  EXPECT_THROW(elaborate_source("design T { buf (\"A\") -> \"B\"; }"),  // no period
               std::invalid_argument);
  // Wrong pin count for a macro.
  EXPECT_THROW(elaborate_source(R"(
    macro M() { param in "A"; param out "B"; buf ("A") -> "B"; }
    design T { period 50.0; use M [] ("X"); }
  )"),
               std::invalid_argument);
}

// The Fig 2-5 design written in SHDL with the Fig 3-5 chip macro: the same
// two errors as the hand-built netlist must fall out.
constexpr const char* kRegfileSource = R"(
-- 16-word RAM timing model, Fig 3-5 (F10145A data sheet values)
macro RAM_16W_10145A(SIZE) {
  param in "I<0:SIZE-1>", "A<0:3>", "WE";
  param out "DO<0:SIZE-1>";
  setup_hold [setup=4.5, hold=-1.0, width=SIZE] ("I<0:SIZE-1>", "- WE");
  setup_rise_hold_fall [setup=3.5, hold=1.0, width=4] ("A<0:3>", "WE");
  min_pulse_width [min_high=4.0] ("WE");
  chg [delay=3.0:6.0, width=SIZE] ("A<0:3>", "WE") -> "DO<0:SIZE-1>";
}

-- Edge-triggered register chip, Fig 3-7
macro REG_10176(SIZE) {
  param in "I<0:SIZE-1>", "CK";
  param out "Q<0:SIZE-1>";
  reg [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK") -> "Q<0:SIZE-1>";
  setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
}

design REGFILE_EXAMPLE {
  period 50.0;
  clock_unit 6.25;
  default_wire 0.0:2.0;
  precision_skew -1.0:1.0;

  -- address multiplexer: clock drives the select (&Z refers timing to the
  -- gating buffer output); 0.3-1.2 ns extra select delay per Fig 3-6
  buf ("CK .P0-4 &Z") -> "ADR SEL RAW";
  buf [delay=0.3:1.2] ("ADR SEL RAW") -> "ADR SEL";
  wire_delay "ADR SEL RAW" 0:0;
  wire_delay "ADR SEL" 0:0;
  wire_delay "WRITE ADR .S0-6" 0:0;
  wire_delay "READ ADR .S4-9" 0:0;
  mux2 [delay=1.2:3.3, width=4] ("ADR SEL", "READ ADR .S4-9", "WRITE ADR .S0-6")
      -> "ADR<0:3>";
  wire_delay "ADR<0:3>" 0.0:6.0;

  -- gated write enable (&H: WRITE checked stable while CK asserted)
  and [delay=1.0:2.9] ("CK .P2-3 &H", "WRITE .S0-6") -> "WE";
  wire_delay "WE" 0:0;

  use RAM_16W_10145A [SIZE=32] ("W DATA .S0-6", "ADR<0:3>", "WE", "RAM OUT<0:31>");

  or [delay=1.0:3.0, width=32] ("RAM OUT<0:31>", "READ EN .S0-8") -> "REG DATA<0:31>";
  wire_delay "REG DATA<0:31>" 0:0;
  use REG_10176 [SIZE=32] ("REG DATA<0:31>", "REG CLK .P8-9", "REG OUT<0:31>");
}
)";

TEST(HdlElaborate, RegfileDesignReproducesFig311) {
  ElaboratedDesign d = elaborate_source(kRegfileSource);
  EXPECT_EQ(d.name, "REGFILE_EXAMPLE");
  EXPECT_EQ(d.summary.macro_instances, 2u);
  EXPECT_EQ(d.options.period, from_ns(50.0));
  EXPECT_EQ(d.options.units.ps_per_unit(), from_ns(6.25));

  Verifier v(d.netlist, d.options);
  VerifyResult r = v.verify(d.cases);
  ASSERT_EQ(r.violations.size(), 2u) << violations_report(r.violations);
  EXPECT_EQ(r.violations[0].missed_by, from_ns(3.5));
  EXPECT_NE(r.violations[0].message.find("11.5:R"), std::string::npos);
  EXPECT_EQ(r.violations[1].missed_by, from_ns(1.0));
  EXPECT_NE(r.violations[1].message.find("47.5:S"), std::string::npos);
  EXPECT_NE(r.violations[1].message.find("49.0:R"), std::string::npos);
}

TEST(HdlElaborate, SummaryCountsMatchNetlist) {
  ElaboratedDesign d = elaborate_source(kRegfileSource);
  EXPECT_EQ(d.summary.primitives, d.netlist.num_prims());
  std::size_t total = 0;
  for (const auto& [kind, n] : d.summary.prims_by_kind) total += n;
  EXPECT_EQ(total, d.summary.primitives);
  EXPECT_GE(d.summary.unique_signals, 10u);
}

}  // namespace
}  // namespace tv::hdl

namespace tv::hdl {
namespace {

TEST(HdlStdlib, LibraryParsesAndProvidesChips) {
  ElaboratedDesign d = elaborate_sources({std_chip_library(), R"(
    design LIBTEST {
      period 50.0;
      clock_unit 6.25;
      default_wire 0.0:2.0;
      precision_skew -1.0:1.0;
      use OR2_10102 [] ("A .S0-6", "B .S0-6", "AB");
      use REG_10176 [SIZE=8] ("AB", "CK .P6-7", "Q<0:7>");
      use PARITY_10160 [SIZE=8] ("Q<0:7>", "PAR");
      use MUX8_10164 [SIZE=4] ("S0 .S0-6", "S1 .S0-6", "S2 .S0-6",
        "Q<0:7>", "Q<0:7>", "Q<0:7>", "Q<0:7>",
        "Q<0:7>", "Q<0:7>", "Q<0:7>", "Q<0:7>", "MX<0:3>");
    }
  )"});
  EXPECT_EQ(d.summary.macro_instances, 4u);
  EXPECT_NE(d.netlist.find("Q<0:7>"), kNoSignal);
  Verifier v(d.netlist, d.options);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.converged);
}

TEST(HdlStdlib, AluChipHasLatchAndChecker) {
  ElaboratedDesign d = elaborate_sources({std_chip_library(), R"(
    design ALUTEST {
      period 50.0;
      clock_unit 6.25;
      use ALU_10181 [SIZE=36] ("A<0:35> .S1-7", "B<0:35> .S1-7", "FN<0:3> .S1-7",
                               "EN CLK .P5-6", "F<0:35>");
    }
  )"});
  // chg + latch + setup_rise_hold_fall = 3 primitives.
  EXPECT_EQ(d.summary.primitives, 3u);
  Verifier v(d.netlist, d.options);
  VerifyResult r = v.verify();
  EXPECT_TRUE(r.violations.empty()) << violations_report(r.violations);
}

TEST(HdlStdlib, DuplicateMacroAcrossSourcesIsRejected) {
  EXPECT_THROW(elaborate_sources({std_chip_library(), std_chip_library()}),
               std::invalid_argument);
  EXPECT_THROW(elaborate_sources({"design A { period 10.0; }", "design B { period 10.0; }"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tv::hdl

namespace tv::hdl {
namespace {

TEST(HdlSynonym, NamesMergeToOneSignal) {
  // The Macro Expander's Pass 1 synonym resolution: one net known by two
  // names (e.g. renamed across drawing pages).
  ElaboratedDesign d = elaborate_source(R"(
    design T {
      period 50.0;
      buf [delay=1.0:2.0] ("IN .S0-6") -> "ALPHA";
      buf [delay=1.0:2.0] ("BETA") -> "OUT";
      synonym "ALPHA" = "BETA";
    }
  )");
  // Both names resolve to the same id; the second buffer's input is driven
  // by the first buffer.
  SignalId a = d.netlist.find("ALPHA");
  SignalId b = d.netlist.find("BETA");
  EXPECT_EQ(a, b);
  Verifier v(d.netlist, d.options);
  v.verify();
  // OUT follows IN through both buffers: changing appears downstream.
  SignalId out = d.netlist.find("OUT");
  EXPECT_TRUE(d.netlist.signal(out).wave.has_activity());
}

TEST(HdlSynonym, ConflictingAssertionsRejected) {
  EXPECT_THROW(elaborate_source(R"(
    design T {
      period 50.0;
      buf ("X .S0-4") -> "Y";
      synonym "A .S0-4" = "B .S1-5";
    }
  )"),
               std::invalid_argument);
}

TEST(HdlSynonym, AssertionTransfersAcrossSynonym) {
  ElaboratedDesign d = elaborate_source(R"(
    design T {
      period 50.0;
      clock_unit 1.0;
      buf [delay=1.0:2.0] ("PLAIN NAME") -> "OUT";
      synonym "PLAIN NAME" = "TIMED NAME .S10-55";
    }
  )");
  SignalId s = d.netlist.find("PLAIN NAME");
  ASSERT_NE(s, kNoSignal);
  EXPECT_EQ(d.netlist.signal(s).assertion.kind, Assertion::Kind::Stable);
  Verifier v(d.netlist, d.options);
  v.verify();
  EXPECT_EQ(d.netlist.signal(s).wave.at(from_ns(20)), Value::Stable);
  EXPECT_EQ(d.netlist.signal(s).wave.at(from_ns(5)), Value::Change);
}

}  // namespace
}  // namespace tv::hdl
