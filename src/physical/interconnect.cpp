#include "physical/interconnect.hpp"

#include <cmath>

namespace tv::physical {

WireAnalysis analyze_net(const NetGeometry& g, const LineParams& params) {
  WireAnalysis out;

  // Loading slowdown: receivers hang capacitance on the line, reducing the
  // propagation velocity by sqrt(1 + Cd/C0) (standard loaded-line model).
  auto loaded_ns = [&](double length_in) {
    if (length_in <= 0) return 0.0;
    double c_line = params.c_line_pf_per_inch * length_in;
    double c_load = static_cast<double>(g.loads) * g.load_pf;
    double slowdown = std::sqrt(1.0 + c_load / c_line);
    return params.ns_per_inch * length_in * slowdown;
  };

  out.min_ns = loaded_ns(g.min_length_in);
  out.max_ns = loaded_ns(g.max_length_in);

  // An unterminated line settles only after reflections die down: charge
  // one extra round trip into the max delay.
  double round_trip = 2.0 * out.max_ns;
  if (!g.terminated) out.max_ns += round_trip;

  // Long-line rule (sec. 1.3.2): reflections on an unterminated run whose
  // round-trip time is comparable to the edge time can create extra
  // transitions.
  out.reflection_risk = !g.terminated && round_trip > params.rise_time_ns;

  out.delay.dmin = from_ns(out.min_ns);
  out.delay.dmax = from_ns(out.max_ns);
  return out;
}

std::vector<SignalId> apply_interconnect(Netlist& nl,
                                         const std::map<SignalId, NetGeometry>& geometry,
                                         const LineParams& params) {
  std::vector<SignalId> flagged;
  for (const auto& [sig, geo] : geometry) {
    WireAnalysis a = analyze_net(geo, params);
    nl.set_wire_delay(sig, a.delay.dmin, a.delay.dmax);
    if (!a.reflection_risk) continue;

    // Does this net feed an edge-sensitive input? Clock pins of registers
    // (pin 1), enables of latches (pin 1), or any checker clock pin.
    bool edge_sensitive = false;
    for (PrimId pid : nl.signal(sig).fanout) {
      const Primitive& p = nl.prim(pid);
      bool is_clock_pin = false;
      switch (p.kind) {
        case PrimKind::Reg:
        case PrimKind::RegSR:
        case PrimKind::Latch:
        case PrimKind::LatchSR:
        case PrimKind::SetupHoldChk:
        case PrimKind::SetupRiseHoldFallChk:
          is_clock_pin = p.inputs.size() > 1 && p.inputs[1].sig == sig;
          break;
        case PrimKind::MinPulseWidthChk:
          is_clock_pin = true;  // a pulse-width-checked net is edge-sensitive
          break;
        default:
          break;
      }
      if (is_clock_pin) {
        edge_sensitive = true;
        break;
      }
    }
    if (edge_sensitive) flagged.push_back(sig);
  }
  return flagged;
}

}  // namespace tv::physical
