// Interconnection-delay analysis substrate (thesis secs. 1.3.2 and 2.5.3).
//
// In SCALD the "detailed transmission line analysis required to determine
// the possible range of signal delays of a given interconnection is done in
// the SCALD Physical Design Subsystem"; the Timing Verifier then consumes a
// min/max delay per signal (or a default rule when layout is not yet done).
// That subsystem is not public, so this module implements the closest
// engineering equivalent for the ECL wire-wrap/stripline technology of the
// era:
//
//   * unloaded propagation at ~0.148 ns/inch (epsilon_r ~ 4.7 microstrip);
//   * loading slowdown sqrt(1 + C_load / C_line): each receiver's input
//     capacitance slows the line;
//   * min delay from the shortest (straight-line) length, max from the
//     longest routed length estimate plus one settling round trip on
//     unterminated lines;
//   * the sec. 1.3.2 long-line rule: "for interconnections having
//     propagation times longer than roughly a quarter period of the voltage
//     wave, a detailed analysis ... is required [to rule out] reflections
//     ... possibly causing a register to get clocked more times than is
//     intended. Runs with such reflections on them can be flagged ...
//     allowing the timing verification process to flag them if they affect
//     edge-sensitive inputs." analyze_net flags such nets and
//     apply_interconnect reports the flagged nets that feed clock/enable
//     pins of registers and latches.
#pragma once

#include <map>
#include <vector>

#include "core/netlist.hpp"

namespace tv::physical {

/// Electrical parameters of the interconnect technology.
struct LineParams {
  double ns_per_inch = 0.148;   // unloaded propagation delay
  double c_line_pf_per_inch = 2.95;  // intrinsic line capacitance (Z0 ~ 50 ohm)
  double z0_ohm = 50.0;
  /// Signal edge (rise) time; the long-line rule compares the line's
  /// round-trip time against this.
  double rise_time_ns = 2.0;
};

/// Geometry/loading of one net as known after placement/routing.
struct NetGeometry {
  double min_length_in = 0;   // straight-line (best-case) length
  double max_length_in = 0;   // routed (worst-case) length estimate
  int loads = 1;              // receiving inputs on the net
  double load_pf = 3.0;       // input capacitance per load
  bool terminated = true;     // parallel-terminated at the far end?
};

struct WireAnalysis {
  WireDelay delay;
  /// Loaded one-way propagation times, for reports.
  double min_ns = 0, max_ns = 0;
  /// True when the unterminated line is long enough (round trip exceeding
  /// ~the edge time) that reflections may double-clock edge-sensitive
  /// inputs (sec. 1.3.2).
  bool reflection_risk = false;
};

/// Analyzes one net.
WireAnalysis analyze_net(const NetGeometry& g, const LineParams& params = {});

/// Applies calculated delays to every signal with known geometry (others
/// keep the verifier's default rule) and returns the signals with
/// reflection risk that drive an edge-sensitive input -- a register or
/// latch clock/enable pin (these deserve the designer's attention even
/// though the value-level analysis cannot model the extra transitions).
std::vector<SignalId> apply_interconnect(Netlist& nl,
                                         const std::map<SignalId, NetGeometry>& geometry,
                                         const LineParams& params = {});

}  // namespace tv::physical
