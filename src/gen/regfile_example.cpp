#include "gen/regfile_example.hpp"

namespace tv::gen {

RegfileExample build_regfile_example(Netlist& nl) {
  RegfileExample ex;
  ex.options.period = from_ns(50.0);
  ex.options.units = ClockUnits::from_ns_per_unit(6.25);
  ex.options.default_wire = WireDelay{0, from_ns(2.0)};
  ex.options.assertion_defaults.precision_skew_minus_ns = -1.0;
  ex.options.assertion_defaults.precision_skew_plus_ns = 1.0;

  // ---- address path: CK .P0-4 drives the multiplexer select -------------
  // "&Z": the clock timing refers to the output of the gating buffer
  // (sec. 2.6 / Fig 2-5); the select path of the 10158 mux has an extra
  // 0.3-1.2 ns (Fig 3-6), modeled with a buffer per sec. 2.4.3.
  Ref adr_sel_raw = nl.ref("ADR SEL RAW");
  nl.buf("ADR SEL GATE", 0, 0, nl.ref("CK .P0-4 &Z"), adr_sel_raw);
  Ref adr_sel = nl.ref("ADR SEL");
  nl.buf("MUX SEL DELAY", from_ns(0.3), from_ns(1.2), adr_sel_raw, adr_sel);
  nl.set_wire_delay(adr_sel_raw.id, 0, 0);
  nl.set_wire_delay(adr_sel.id, 0, 0);

  Ref write_adr = nl.ref("WRITE ADR .S0-6", 4);
  Ref read_adr = nl.ref("READ ADR .S4-9", 4);
  nl.set_wire_delay(write_adr.id, 0, 0);
  nl.set_wire_delay(read_adr.id, 0, 0);

  // select high (first 4 clock units) -> write address; low -> read address.
  Ref adr = nl.ref("ADR<0:3>", 4);
  nl.mux2("ADR MUX 10158", from_ns(1.2), from_ns(3.3), adr_sel, read_adr, write_adr, adr, 4);
  // The designer specified 0.0-6.0 ns for the address lines (sec. 3.2).
  nl.set_wire_delay(adr.id, 0, from_ns(6.0));
  ex.adr = adr.id;

  // ---- write-enable path: CK .P2-3 gated by the WRITE control -----------
  // "&H" checks WRITE stable while the clock is asserted, assumes it
  // enables the gate, and makes the clock timing refer to the gate output.
  Ref we = nl.ref("WE");
  nl.and_gate("WE GATE", from_ns(1.0), from_ns(2.9),
              {nl.ref("CK .P2-3 &H"), nl.ref("WRITE .S0-6")}, we);
  nl.set_wire_delay(we.id, 0, 0);  // macro-internal net (Fig 3-5)
  ex.we = we.id;

  Ref w_data = nl.ref("W DATA .S0-6", 32);

  // ---- the 16W RAM 10145A timing model (Fig 3-5) ------------------------
  // Write-data set-up/hold against the *falling* write-enable edge: the
  // checker clock input is the complement "- WE"; hold is -1.0 ns.
  ex.data_checker =
      nl.setup_hold_chk("RAM I SETUP", from_ns(4.5), from_ns(-1.0), w_data, nl.ref("- WE"), 32);
  // Address set-up before the WE rise, stable while WE true, hold 1.0 ns
  // after the fall.
  ex.adr_checker = nl.setup_rise_hold_fall_chk("RAM A SETUP", from_ns(3.5), from_ns(1.0), adr,
                                               we, 4);
  // WE minimum high pulse width 4.0 ns.
  ex.we_pulse_checker = nl.min_pulse_width_chk("RAM WE WIDTH", from_ns(4.0), 0, we);

  // Read data path: outputs change when the addresses change or the
  // write-enable moves ("3 CHG" gate, 3.0-6.0 ns, Fig 3-5).
  Ref ram_out = nl.ref("RAM OUT<0:31>", 32);
  nl.chg("RAM READ PATH", from_ns(3.0), from_ns(6.0), {adr, we}, ram_out, 32);
  ex.ram_out = ram_out.id;

  // ---- output register (10176 model of Fig 3-7) -------------------------
  // A 2-input OR (Fig 3-8) combines the RAM data with a read-enable that is
  // stable all cycle.
  Ref reg_data = nl.ref("REG DATA<0:31>", 32);
  nl.or_gate("READ OR 10102", from_ns(1.0), from_ns(3.0),
             {ram_out, nl.ref("READ EN .S0-8", 1)}, reg_data, 32);
  nl.set_wire_delay(reg_data.id, 0, 0);
  ex.reg_data = reg_data.id;

  Ref reg_clk = nl.ref("REG CLK .P8-9");
  Ref reg_out = nl.ref("REG OUT<0:31>", 32);
  nl.reg("OUT REG 10176", from_ns(1.5), from_ns(4.5), reg_data, reg_clk, reg_out, 32);
  ex.reg_checker =
      nl.setup_hold_chk("REG SETUP", from_ns(2.5), from_ns(1.5), reg_data, reg_clk, 32);
  ex.reg_out = reg_out.id;

  nl.finalize();
  return ex;
}

}  // namespace tv::gen
