// Synthetic S-1 Mark IIA-scale design generator (thesis sec. 3.3).
//
// The thesis evaluates the Timing Verifier on a 6357-chip portion of the
// S-1 Mark IIA processor: ~97 709 gate equivalents, 8282 primitives after
// vectorized macro expansion (1.3 primitives/chip, mean width 6.5 bits),
// 22 primitive types, 33 152 signal value lists averaging 2.97 value
// records, 20 052 events processed. The real schematics are unavailable, so
// this generator synthesizes a deeply pipelined design of the same shape:
// per pipeline stage it instantiates the worked-example chip macros
// (register file, edge-triggered registers, 2-input multiplexers with
// select-delay buffers, a CHG-modeled ALU, a latch) plus control-decode
// gate chains, gated clocks with "&H" hazard checks, and registered control
// pipelines -- mirroring Fig 3-12's "typical arithmetic circuit".
//
// Timing is engineered to be clean (the thesis measured a mature design):
// stage registers clock at unit 8, control inputs carry ".S1-8" assertions
// (register-output-like: changing only early in the cycle), the register
// file writes at units 4-5, and the latch samples at units 5-6.
//
// The generator emits SHDL source text so that benchmarks exercise the full
// pipeline: reading input (parse), macro expansion pass 1 (summary), pass 2
// (netlist emission), and verification -- the same phase structure as
// Table 3-1.
#pragma once

#include <string>

#include "hdl/elaborate.hpp"

namespace tv::gen {

struct S1Params {
  int stages = 93;          // pipeline depth; 93 stages + tree = 6357 chips
  int clock_tree_bufs = 33; // top-level clock distribution buffers
  int bus_width = 36;       // the S-1 word width
  int chains_per_stage = 11;  // control-decode chains (4 gate chips each)
  int muxes_per_stage = 8;    // operand-select mux chips
};

/// Number of chips (macro instances + top-level gate/buffer chips) the
/// generated design will contain.
std::size_t s1_chip_count(const S1Params& p);

/// Emits the SHDL source for the synthetic design.
std::string generate_s1_shdl(const S1Params& p = {});

/// Emits one *section* of the design: stages [first_stage, first_stage +
/// stage_count). Stage boundaries carry ".S1.2-8" assertions in their
/// names, so each section verifies independently and the sections compose
/// under the sec. 2.5.2 interface-consistency check (see bench_modular).
std::string generate_s1_section_shdl(const S1Params& p, int first_stage, int stage_count,
                                     bool include_clock_tree);

/// Convenience: generate + parse + elaborate.
hdl::ElaboratedDesign build_s1_design(const S1Params& p = {});

}  // namespace tv::gen
