#include "gen/s1_design.hpp"

#include <cstdio>

#include "hdl/parser.hpp"

namespace tv::gen {

namespace {

// printf-style append.
template <typename... Args>
void emit(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

// Stage-0 inputs are asserted interface signals; later stages use the
// driven (assertion-free) names.
// Stage-boundary signals carry their ".S1-8" interface assertion in the
// name *everywhere* (producer and consumer alike): inside the producing
// stage the assertion is checked against the computed waveform
// (sec. 2.5.2), and it is what lets the pipeline be cut into sections and
// verified modularly with consistent interfaces.
std::string in_bus(const S1Params& p, int s) {
  char buf[96];
  if (s == 0) {
    std::snprintf(buf, sizeof buf, "PRIMARY IN<0:%d> .S1.2-8", p.bus_width - 1);
  } else {
    std::snprintf(buf, sizeof buf, "S%d IN<0:%d> .S1.2-8", s, p.bus_width - 1);
  }
  return buf;
}

std::string cpipe(int s, int k) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "S%d CPIPE%d .S1.2-8", s, k);
  return buf;
}

}  // namespace

std::size_t s1_chip_count(const S1Params& p) {
  // gate chips: 4 per chain + extra-OR + write-clock AND + result OR,
  // plus 4 CORR delay buffers
  std::size_t gates = 4 * static_cast<std::size_t>(p.chains_per_stage) + 3 + 4;
  std::size_t per_stage = gates + 1 /*mux8*/ + static_cast<std::size_t>(p.muxes_per_stage) +
                          5 /*reg chips*/ + 1 /*ram*/ + 1 /*alu*/ + 1 /*latch*/;
  return per_stage * static_cast<std::size_t>(p.stages) +
         static_cast<std::size_t>(p.clock_tree_bufs);
}

std::string generate_s1_shdl(const S1Params& p) {
  return generate_s1_section_shdl(p, 0, p.stages, /*include_clock_tree=*/true);
}

std::string generate_s1_section_shdl(const S1Params& p, int first_stage, int stage_count,
                                     bool include_clock_tree) {
  std::string out;
  out.reserve(1u << 20);

  // --- chip macro library (the Fig 3-5..3-9 timing models) -----------------
  out += R"(-- Synthetic S-1 Mark IIA-scale design (generated; see s1_design.hpp)

macro REG_10176(SIZE) {                     -- edge-triggered register chip
  param in "I<0:SIZE-1>", "CK";
  param out "Q<0:SIZE-1>";
  reg [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK") -> "Q<0:SIZE-1>";
  setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
}

macro RAM_16W_10145A(SIZE) {                -- register file chip
  param in "I<0:SIZE-1>", "A<0:3>", "WE";
  param out "DO<0:SIZE-1>";
  setup_hold [setup=4.5, hold=-1.0, width=SIZE] ("I<0:SIZE-1>", "- WE");
  setup_rise_hold_fall [setup=3.5, hold=1.0, width=4] ("A<0:3>", "WE");
  min_pulse_width [min_high=4.0] ("WE");
  chg [delay=3.0:6.0, width=SIZE] ("A<0:3>", "WE") -> "DO<0:SIZE-1>";
}

macro MUX2_10158(SIZE) {                    -- 2-input mux chip, select buffer
  param in "SEL", "D0<0:SIZE-1>", "D1<0:SIZE-1>";
  param out "Q<0:SIZE-1>";
  buf [delay=0.3:1.2] ("SEL") -> "SELD /M";
  wire_delay "SELD /M" 0:0;
  mux2 [delay=1.2:3.3, width=SIZE] ("SELD /M", "D0<0:SIZE-1>", "D1<0:SIZE-1>")
      -> "Q<0:SIZE-1>";
}

macro ALU_10181(SIZE) {                     -- arithmetic/logic chip (CHG model)
  param in "A<0:SIZE-1>", "B<0:SIZE-1>";
  param out "F<0:SIZE-1>", "PAR", "COUT";
  chg [delay=3.0:6.0, width=SIZE] ("A<0:SIZE-1>", "B<0:SIZE-1>") -> "F<0:SIZE-1>";
  chg [delay=3.5:7.0] ("A<0:SIZE-1>", "B<0:SIZE-1>") -> "PAR";
  chg [delay=2.5:5.5] ("A<0:SIZE-1>", "B<0:SIZE-1>") -> "COUT";
}

macro LATCH_10133(SIZE) {                   -- status latch chip
  param in "D<0:SIZE-1>", "EN";
  param out "Q<0:SIZE-1>";
  latch [delay=1.0:3.5, width=SIZE] ("D<0:SIZE-1>", "EN") -> "Q<0:SIZE-1>";
  setup_rise_hold_fall [setup=2.5, hold=1.0, width=SIZE] ("D<0:SIZE-1>", "EN");
}

design S1_MARK_IIA {
  period 50.0;
  clock_unit 6.25;
  default_wire 0.0:2.0;
  precision_skew -1.0:1.0;
  clock_skew -5.0:5.0;

)";

  const int W = p.bus_width;
  const char* kChainGate[3] = {"and", "or", "xor"};

  for (int s = first_stage; s < first_stage + stage_count; ++s) {
    emit(out, "  -- ================= pipeline stage %d =================\n", s);
    std::string in = in_bus(p, s);

    // "CORR" delays (Fig 4-2): the registered control pipeline feeds logic
    // clocked by the same (skewed) clock; without a fictitious delay at
    // least as long as the clock skew, the verifier would emit the false
    // hold-time errors of Fig 4-1.
    for (int k = 0; k < 4; ++k) {
      emit(out, "  buf [delay=4.5:4.5] (\"%s\") -> \"S%d CPIPED%d\";\n",
           cpipe(s, k).c_str(), s, k);
      emit(out, "  wire_delay \"S%d CPIPED%d\" 0:0;\n", s, k);
    }

    // Control-decode chains: 4 gate chips each over asserted control inputs
    // and the registered (CORR-delayed) control pipeline.
    for (int j = 0; j < p.chains_per_stage; ++j) {
      emit(out,
           "  %s [delay=1.1:2.5] (\"S%d CTL%d .S4-8.5\", \"S%d CTL%d .S4-8.5\") -> "
           "\"S%d CH%d A\";\n",
           kChainGate[j % 3], s, j, s, (j + 2) % p.chains_per_stage, s, j);
      emit(out, "  or [delay=1.0:2.4] (\"S%d CH%d A\", \"S%d CTL%d .S4-8.5\") -> \"S%d CH%d B\";\n",
           s, j, s, (j + 1) % p.chains_per_stage, s, j);
      emit(out, "  %s [delay=1.5:2.8] (\"S%d CH%d B\", \"S%d CPIPED%d\") -> \"S%d CH%d C\";\n",
           kChainGate[(j + 1) % 3], s, j, s, (j + 1) % 4, s, j);
      emit(out, "  not [delay=1.3:2.0] (\"S%d CH%d C\") -> \"S%d CDEC%d\";\n", s, j, s, j);
    }
    // Extra decode OR chip.
    emit(out, "  or [delay=1.0:2.9] (\"S%d CDEC0\", \"S%d CDEC1\") -> \"S%d CDECX\";\n", s, s,
         s);
    // Control selector chip (mux8 over decode outputs).
    emit(out,
         "  mux8 [delay=1.5:4.0] (\"%s\", \"%s\", \"%s\", \"S%d CDEC0\", \"S%d CDEC1\", "
         "\"S%d CDEC2\", \"S%d CDEC3\", \"S%d CDEC4\", \"S%d CDEC5\", \"S%d CDEC6\", "
         "\"S%d CDECX\") -> \"S%d CSEL\";\n",
         cpipe(s, 0).c_str(), cpipe(s, 1).c_str(), cpipe(s, 2).c_str(), s, s, s, s, s, s, s, s,
         s);

    // Operand-select multiplexers (asserted early-stable selects); muxes
    // k > 0 cascade from their predecessor's output.
    for (int k = 0; k < p.muxes_per_stage; ++k) {
      char d1[64];
      if (k == 0) {
        std::snprintf(d1, sizeof d1, "%s", in.c_str());
      } else {
        std::snprintf(d1, sizeof d1, "S%d MX%d<0:%d>", s, k - 1, W - 1);
      }
      emit(out,
           "  use MUX2_10158 [SIZE=%d] (\"S%d SEL%d .S1.5-8.6\", \"%s\", \"%s\", "
           "\"S%d MX%d<0:%d>\");\n",
           W, s, k, in.c_str(), d1, s, k, W - 1);
    }

    // Write-enable gating: "&H" checks the enable stable while CK asserted.
    emit(out,
         "  and [delay=1.0:2.9] (\"MCLK .P4-5 &H\", \"S%d WEN .S1-8\") -> \"S%d WCLK\";\n", s,
         s);
    emit(out, "  wire_delay \"S%d WCLK\" 0:0;\n", s);

    // Register file: write data from the stage bus, address from mux 0.
    emit(out, "  use RAM_16W_10145A [SIZE=%d] (\"%s\", \"S%d MX0<0:%d>\", \"S%d WCLK\", "
              "\"S%d RAM OUT<0:%d>\");\n",
         W, in.c_str(), s, W - 1, s, s, W - 1);
    emit(out, "  wire_delay \"S%d RAM OUT<0:%d>\" 0:0;\n", s, W - 1);

    // ALU over mux outputs.
    emit(out,
         "  use ALU_10181 [SIZE=%d] (\"S%d MX0<0:%d>\", \"S%d MX1<0:%d>\", "
         "\"S%d ALU OUT<0:%d>\", \"S%d PAR\", \"S%d COUT\");\n",
         W, s, W - 1, s, W - 1, s, W - 1, s, s);

    // Result combine; wire zeroed (de-skewed net).
    emit(out,
         "  or [delay=1.0:3.0, width=%d] (\"S%d ALU OUT<0:%d>\", \"S%d RAM OUT<0:%d>\") -> "
         "\"S%d RESULT<0:%d>\";\n",
         W, s, W - 1, s, W - 1, s, W - 1);
    emit(out, "  wire_delay \"S%d RESULT<0:%d>\" 0:0;\n", s, W - 1);

    // Status latch sampling the stage bus mid-cycle.
    emit(out, "  use LATCH_10133 [SIZE=12] (\"%s\", \"MCLK .P5-6\", \"S%d STATUS<0:11>\");\n",
         in.c_str(), s);

    // Stage output registers: the bus and four control-pipeline bits.
    emit(out, "  use REG_10176 [SIZE=%d] (\"S%d RESULT<0:%d>\", \"MCLK .P8-9\", \"%s\");\n",
         W, s, W - 1, in_bus(p, s + 1).c_str());
    for (int k = 0; k < 4; ++k) {
      emit(out, "  use REG_10176 [SIZE=1] (\"S%d CDEC%d\", \"MCLK .P8-9\", \"%s\");\n", s,
           k + 2, cpipe(s + 1, k).c_str());
    }
    out += "\n";
  }

  // Clock distribution tree (timing refers to the buffer outputs via "&Z").
  if (include_clock_tree) {
    for (int i = 0; i < p.clock_tree_bufs; ++i) {
      emit(out, "  buf (\"MCLK .P0-1 &Z\") -> \"CLK TREE %d\";\n", i);
    }
  }
  out += "}\n";
  return out;
}

hdl::ElaboratedDesign build_s1_design(const S1Params& p) {
  return hdl::elaborate(hdl::parse(generate_s1_shdl(p)));
}

}  // namespace tv::gen
