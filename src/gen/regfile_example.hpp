// The thesis' worked verification example (Fig 2-5, analyzed in sec. 3.2,
// outputs in Figs 3-10 and 3-11).
//
// The circuit: a 16-word by 32-bit register file (the Fairchild F10145A of
// Figs 3-1..3-5), a 32-bit edge-triggered output register (Fig 3-7), a
// 2-input multiplexer selecting between read and write addresses (Fig 3-6),
// and several gates (Fig 3-8). Cycle time 50 ns; clock units of 6.25 ns
// (8 per cycle); default wire delay 0.0/2.0 ns; precision clock skew
// -1.0/+1.0 ns; the register-file address lines carry a designer-specified
// wire delay of 0.0-6.0 ns.
//
// The verifier must find exactly the two set-up errors of Fig 3-11:
//  * the RAM address set-up (3.5 ns before the write-enable rise) missed by
//    the full 3.5 ns -- the addresses go stable at 11.5 ns, exactly when
//    the write-enable pulse can start rising;
//  * the output register set-up (2.5 ns) missed by 1.0 ns -- its data goes
//    stable at 47.5 ns and the clock can start rising at 49.0 ns.
#pragma once

#include <string>

#include "core/evaluator.hpp"
#include "core/netlist.hpp"

namespace tv::gen {

struct RegfileExample {
  VerifierOptions options;
  SignalId adr = kNoSignal;       // multiplexer output: RAM address lines
  SignalId we = kNoSignal;        // gated write-enable pulse
  SignalId ram_out = kNoSignal;   // register-file data output
  SignalId reg_data = kNoSignal;  // output-register data input
  SignalId reg_out = kNoSignal;   // output-register output
  PrimId adr_checker = kNoPrim;   // SETUP RISE HOLD FALL CHK on the addresses
  PrimId data_checker = kNoPrim;  // SETUP HOLD CHK on the RAM write data
  PrimId reg_checker = kNoPrim;   // SETUP HOLD CHK on the output register
  PrimId we_pulse_checker = kNoPrim;  // MIN PULSE WIDTH on write enable
};

/// Builds the example into `nl` and returns the handles above. The netlist
/// is finalized and ready to verify.
RegfileExample build_regfile_example(Netlist& nl);

}  // namespace tv::gen
