// Baseline 2: worst-case path-searching analyzer in the style of GRASP and
// the Race Analysis System (thesis sec. 1.4.2).
//
// Searches every combinational path between clocked elements (registers and
// latches, as in RAS) or user-specified start/end points (as in GRASP) and
// sums the min/max element delays along each path. Its fundamental
// limitation, which the thesis uses to motivate the Timing Verifier, is
// that it "is unable to take into account the value behavior of the control
// signals ... and therefore tends to generate numerous irrelevant error
// messages": a multiplexer is just another gate on the path, so mutually
// exclusive select settings (Fig 2-6) still produce a reported worst path.
#pragma once

#include <string>
#include <vector>

#include "core/netlist.hpp"

namespace tv::pathsearch {

struct PathReport {
  std::vector<PrimId> prims;   // elements along the path, source first
  SignalId from = kNoSignal;   // launching point (register output / start)
  SignalId to = kNoSignal;     // capturing point (register input / end)
  Time min_delay = 0;
  Time max_delay = 0;
  std::string to_string(const Netlist& nl) const;
};

struct PathSearchOptions {
  /// Included in every path: per-hop interconnection delay (the analyzer's
  /// crude stand-in for per-signal wire delays).
  WireDelay default_wire{0, 0};
  /// Abandon traversal beyond this many elements on one path -- the GRASP
  /// behaviour when the user has not broken a loop with a terminating
  /// point ("proceeds until it reaches some user-specified search limit").
  std::size_t search_limit = 64;
  /// Report at most this many paths per endpoint pair (worst first).
  std::size_t max_paths = 16;
};

struct PathSearchResult {
  std::vector<PathReport> paths;       // all register-to-register paths found
  bool search_limit_hit = false;       // an unbroken loop was abandoned
  std::size_t paths_enumerated = 0;    // total paths walked (cost measure)

  /// Paths whose max delay exceeds `budget` -- the analyzer's "errors".
  std::vector<PathReport> slower_than(Time budget) const;
  /// Paths whose min delay is below `budget` (fast-path/hold hazards).
  std::vector<PathReport> faster_than(Time budget) const;
};

class PathSearcher {
 public:
  PathSearcher(const Netlist& nl, PathSearchOptions opts = {});

  /// RAS mode: endpoints are discovered automatically from the registers
  /// and latches in the design.
  PathSearchResult analyze();

  /// GRASP mode: the user names the start and end signals by hand.
  PathSearchResult analyze_between(const std::vector<SignalId>& starts,
                                   const std::vector<SignalId>& ends);

 private:
  void dfs(SignalId sig, std::vector<PrimId>& stack, Time dmin, Time dmax,
           const std::vector<char>& is_end, SignalId from, PathSearchResult& out);

  const Netlist& nl_;
  PathSearchOptions opts_;
};

}  // namespace tv::pathsearch
