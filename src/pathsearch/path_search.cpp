#include "pathsearch/path_search.hpp"

#include <algorithm>

namespace tv::pathsearch {

namespace {

bool is_clocked(PrimKind k) {
  return k == PrimKind::Reg || k == PrimKind::RegSR || k == PrimKind::Latch ||
         k == PrimKind::LatchSR;
}

}  // namespace

std::string PathReport::to_string(const Netlist& nl) const {
  std::string s = nl.signal(from).full_name + " -> " + nl.signal(to).full_name + " [" +
                  format_ns(min_delay) + ", " + format_ns(max_delay) + "] via";
  for (PrimId p : prims) {
    s += " ";
    s += nl.prim(p).name;
  }
  return s;
}

std::vector<PathReport> PathSearchResult::slower_than(Time budget) const {
  std::vector<PathReport> out;
  for (const PathReport& p : paths) {
    if (p.max_delay > budget) out.push_back(p);
  }
  return out;
}

std::vector<PathReport> PathSearchResult::faster_than(Time budget) const {
  std::vector<PathReport> out;
  for (const PathReport& p : paths) {
    if (p.min_delay < budget) out.push_back(p);
  }
  return out;
}

PathSearcher::PathSearcher(const Netlist& nl, PathSearchOptions opts)
    : nl_(nl), opts_(opts) {}

void PathSearcher::dfs(SignalId sig, std::vector<PrimId>& stack, Time dmin, Time dmax,
                       const std::vector<char>& is_end, SignalId from,
                       PathSearchResult& out) {
  // A non-trivial arrival at an endpoint terminates the path.
  if (is_end[sig] && !(stack.empty() && sig == from)) {
    PathReport r;
    r.prims = stack;
    r.from = from;
    r.to = sig;
    r.min_delay = dmin;
    r.max_delay = dmax;
    out.paths.push_back(std::move(r));
    ++out.paths_enumerated;
    return;
  }
  if (stack.size() > opts_.search_limit) {
    // GRASP behaviour: an unbroken loop/too-deep path is abandoned and the
    // user is expected to insert a terminating point.
    out.search_limit_hit = true;
    return;
  }
  WireDelay wire = nl_.signal(sig).wire_delay.value_or(opts_.default_wire);
  for (PrimId pid : nl_.signal(sig).fanout) {
    const Primitive& p = nl_.prim(pid);
    // Clocked elements and checkers are not combinational: paths do not
    // pass through them (their inputs are endpoints, handled above).
    if (is_clocked(p.kind) || prim_is_checker(p.kind)) continue;
    if (p.output == kNoSignal) continue;
    if (std::find(stack.begin(), stack.end(), pid) != stack.end()) {
      out.search_limit_hit = true;  // combinational loop
      continue;
    }
    stack.push_back(pid);
    dfs(p.output, stack, dmin + wire.dmin + p.dmin, dmax + wire.dmax + p.dmax, is_end, from,
        out);
    stack.pop_back();
  }
}

PathSearchResult PathSearcher::analyze() {
  // RAS mode: launch from every clocked-element output and every asserted
  // primary input; capture at every clocked-element *data* input and every
  // checker data input.
  std::vector<SignalId> starts;
  std::vector<SignalId> ends;
  for (PrimId pid = 0; pid < nl_.num_prims(); ++pid) {
    const Primitive& p = nl_.prim(pid);
    if (is_clocked(p.kind)) {
      if (p.output != kNoSignal) starts.push_back(p.output);
      ends.push_back(p.inputs[0].sig);
    } else if (prim_is_checker(p.kind)) {
      ends.push_back(p.inputs[0].sig);
    }
  }
  for (SignalId id = 0; id < nl_.num_signals(); ++id) {
    const Signal& s = nl_.signal(id);
    if (s.driver == kNoPrim && s.assertion.kind == Assertion::Kind::Stable &&
        !s.fanout.empty()) {
      starts.push_back(id);
    }
  }
  return analyze_between(starts, ends);
}

PathSearchResult PathSearcher::analyze_between(const std::vector<SignalId>& starts,
                                               const std::vector<SignalId>& ends) {
  PathSearchResult out;
  std::vector<char> is_end(nl_.num_signals(), 0);
  for (SignalId e : ends) is_end[e] = 1;

  for (SignalId s : starts) {
    std::vector<PrimId> stack;
    dfs(s, stack, 0, 0, is_end, s, out);
  }
  std::sort(out.paths.begin(), out.paths.end(),
            [](const PathReport& a, const PathReport& b) { return a.max_delay > b.max_delay; });
  if (out.paths.size() > opts_.max_paths * 4) out.paths.resize(opts_.max_paths * 4);
  return out;
}

}  // namespace tv::pathsearch
