// Chaos smoke mode for the scaldtvd serving layer (tvfuzz --serve-chaos).
//
// Generates a seeded batch of known-good SHDL designs, attaches random
// deterministic fault specs (injected read failures, mid-evaluation aborts,
// hangs, one permanently-crashing job) to a fraction of the jobs, pushes
// the batch through a real scaldtvd + scaldtv worker pool, and asserts the
// supervisor's contract:
//
//   * every job reaches a terminal state -- none lost, duplicated, or left
//     requeued when no shutdown was requested;
//   * jobs whose fault fires only on attempt 1 recover, with the retry
//     observable in the manifest's attempt count;
//   * the permanently-aborting job exhausts its attempts and lands in
//     state "crashed" (exit code 4);
//   * the daemon's exit code matches the manifest's worst state;
//   * the whole run is deterministic: a second identical run produces a
//     byte-identical manifest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace tv::check {

struct ServeChaosOptions {
  std::uint64_t seed = 1;
  int jobs = 12;               // generated jobs per batch
  std::string scaldtvd_path;   // daemon binary (required)
  std::string scaldtv_path;    // worker binary (required)
  bool warm = false;           // pass --warm: resident worker pools
  bool verbose = false;
};

struct ServeChaosFailure {
  std::string kind;    // "job-lost" | "job-not-terminal" | "retry-invisible" | ...
  std::string detail;
};

/// Runs one seeded chaos batch end to end. Returns the failure if the
/// supervisor contract was broken, std::nullopt otherwise. Work files live
/// in a fresh directory under TMPDIR, removed on success.
std::optional<ServeChaosFailure> check_serve_chaos(const ServeChaosOptions& opts);

/// The incremental-reverification chaos scenario (docs/incremental.md): a
/// batch of `reverify` jobs (plus interleaved plain verifies of the same
/// design) with deterministic faults injected at the delta-application and
/// cone-invalidation sites (incremental.apply, incremental.cone):
///
///   * transient faults (attempt 1 only) recover with the retry visible in
///     the manifest -- a crashed reverify attempt never poisons the job;
///   * one permanently-aborting reverify job exhausts its retries into
///     "crashed" (daemon exit 4);
///   * each backend's manifest is byte-stable across two identical runs,
///     and the (id, state, attempts) records agree *between* the fork/exec
///     and warm backends: the warm pool's resident fixpoint (restored via
///     the inverse delta, or dropped on failure) never changes a verdict.
/// Ignores opts.warm (both backends run); honors seed/paths/verbose.
std::optional<ServeChaosFailure> check_reverify_chaos(const ServeChaosOptions& opts);

/// The kill/restart chaos scenario (docs/recovery.md): one reference batch
/// runs uninterrupted under a write-ahead journal, then the same batch is
/// re-run once per journal transition with the daemon SIGKILLed at exactly
/// that transition (fault site serve.kill9) and restarted with
/// `scaldtvd --resume` until the batch completes. Asserts:
///
///   * every kill point resumes to a manifest byte-identical to the
///     uninterrupted run's -- attempts, outcomes, states, and counts;
///   * a bounded number of restarts always finishes the batch (the journal
///     can never wedge resume into a loop);
///   * the journal itself replays cleanly after every kill (the torn-line
///     tolerance never hides mid-file corruption).
/// Honors opts.warm (backend under test), seed, and the binary paths.
std::optional<ServeChaosFailure> check_kill_restart(const ServeChaosOptions& opts);

/// The graceful-shutdown scenarios: SIGTERM lands (a) while a worker hangs
/// with retries already exhausted-to-be, and (b) while a job sits in retry
/// backoff. Both jobs must be recorded "requeued" -- never "crashed" -- with
/// the interrupted attempt counted but not held against the job, and the
/// daemon must exit 0 (requeued jobs do not affect the exit status).
/// Ignores opts.seed/opts.jobs; honors the binary paths and opts.warm.
std::optional<ServeChaosFailure> check_drain_requeue(const ServeChaosOptions& opts);

/// The memory-budget scenario (docs/serving.md "Overload & quarantine
/// semantics"): one job leaks allocations until it breaches --mem-limit-mb
/// (fault site evaluator.eval, action bloat) amid clean jobs. Asserts:
///
///   * the breaching job settles "resource-exhausted" (exit 6) on its first
///     attempt -- a budget breach is a classified verdict, never "crashed";
///   * clean neighbors are unaffected and the daemon folds to exit 6;
///   * the fork/exec and warm-pool manifests are byte-identical -- the RSS
///     watchdog is backend-independent;
///   * with --mem-retry, an attempt-1-only breach retries and the job
///     recovers with the "mem-limit" attempt on record.
/// Ignores opts.warm (both backends run); honors seed/paths/verbose.
std::optional<ServeChaosFailure> check_mem_breach(const ServeChaosOptions& opts);

/// The bounded-admission scenario: a batch larger than --max-queue. Jobs
/// beyond the cap must settle "shed" with zero attempts burned (never
/// launched, never retried), the daemon folds to exit 7, admitted jobs
/// finish normally, and two identical runs produce byte-identical
/// manifests (shedding is deterministic, not load-dependent).
/// Honors opts.warm (backend under test), seed, and the binary paths.
std::optional<ServeChaosFailure> check_shed(const ServeChaosOptions& opts);

/// The poison-design quarantine scenario, with crash-resume on top: two
/// jobs crash permanently against one design, tripping the breaker at
/// --quarantine-after 2; later jobs on the same design content settle
/// "quarantined" with zero attempts, a job on a different design is
/// untouched, and a job past --max-queue sheds. The journaled reference
/// run is then re-run once per durable transition with the daemon
/// SIGKILLed at exactly that transition (serve.kill9) and resumed; every
/// kill point must converge to a manifest byte-identical to the
/// uninterrupted run's -- the quarantine ledger and Shed settlements
/// replay exactly like verdicts do.
/// Honors opts.warm (backend under test), seed, and the binary paths.
std::optional<ServeChaosFailure> check_quarantine_resume(const ServeChaosOptions& opts);

/// The disk-pressure sweep (docs/recovery.md): a journaled reference batch
/// counts the daemon's durable writes (every journal append plus the final
/// manifest), then the batch is re-run once per write with io.write forced
/// to fail (ENOSPC) at exactly that write. Asserts:
///
///   * every faulted run fails loudly with exit 2 -- a dropped durable
///     write is never silent;
///   * the journal left behind is always a clean replayable prefix: a
///     bounded number of --resume runs (without the fault) converges to a
///     manifest byte-identical to the uninterrupted run's, whether the
///     failure hit the journal header, a mid-run append, or the manifest.
/// Honors opts.warm (backend under test), seed, and the binary paths.
std::optional<ServeChaosFailure> check_write_fail(const ServeChaosOptions& opts);

}  // namespace tv::check
