// The batch-evaluation differential oracle: the structure-of-arrays
// lockstep sweep (core/batch_eval.hpp) is a pure optimization over the
// per-case snapshot worklist, so a run with it enabled must be
// bit-identical to a run without -- same waveforms, same disturbed-signal
// counts, same convergence verdicts, same violation reports, for the
// baseline and every case. Any divergence is a soundness bug in the lane
// machinery (dirty masks, topological schedule, memo-key patching, or the
// arena-to-snapshot materialization).
#include <sstream>

#include "check/oracles.hpp"
#include "core/verifier.hpp"

namespace tv::check {

namespace {

struct RunResult {
  std::size_t base_events = 0;
  bool converged = true;
  bool partial = false;
  std::string base_report;
  std::string summary;  // timing_summary: every waveform + skew + eval string
  std::vector<std::string> case_lines;
};

RunResult run_mode(const CircuitSpec& spec, bool batch_eval) {
  BuiltCircuit bc = build(spec);
  bc.opts.batch_eval = batch_eval;
  Verifier v(bc.nl, bc.opts);
  VerifyResult r = v.verify(bc.cases);
  RunResult out;
  out.base_events = r.base_events;
  out.converged = r.converged;
  out.partial = r.partial;
  out.base_report = violations_report(r.violations);
  out.summary = timing_summary(bc.nl);
  for (const auto& c : r.cases) {
    std::ostringstream os;
    os << c.name << " events=" << c.events << " converged=" << c.converged
       << " degraded=" << c.degraded << "\n"
       << violations_report(c.violations);
    out.case_lines.push_back(os.str());
  }
  return out;
}

}  // namespace

std::optional<Failure> check_batch_equivalence(const CircuitSpec& spec) {
  RunResult on = run_mode(spec, true);
  RunResult off = run_mode(spec, false);

  auto fail = [&](const std::string& what, const std::string& a, const std::string& b) {
    std::ostringstream os;
    os << "seed " << spec.seed << ": " << what
       << " diverges between batch on/off\n--- batch on ---\n"
       << a << "\n--- batch off ---\n" << b;
    return Failure{"batch-diff", os.str()};
  };

  if (on.base_events != off.base_events) {
    return fail("base event count", std::to_string(on.base_events),
                std::to_string(off.base_events));
  }
  if (on.converged != off.converged) {
    return fail("convergence", on.converged ? "yes" : "no",
                off.converged ? "yes" : "no");
  }
  if (on.partial != off.partial) {
    return fail("partial flag", on.partial ? "yes" : "no",
                off.partial ? "yes" : "no");
  }
  if (on.summary != off.summary) {
    return fail("timing summary (waveforms)", on.summary, off.summary);
  }
  if (on.base_report != off.base_report) {
    return fail("base violation report", on.base_report, off.base_report);
  }
  if (on.case_lines.size() != off.case_lines.size()) {
    return fail("case count", std::to_string(on.case_lines.size()),
                std::to_string(off.case_lines.size()));
  }
  for (std::size_t i = 0; i < on.case_lines.size(); ++i) {
    if (on.case_lines[i] != off.case_lines[i]) {
      return fail("case result", on.case_lines[i], off.case_lines[i]);
    }
  }
  return std::nullopt;
}

}  // namespace tv::check
