// Counterexample minimization for the differential harness.
//
// Both shrinkers are greedy delta-debuggers over the plain-data specs: each
// pass proposes a list of simplifying mutations (drop a stage, zero a skew,
// collapse a delay range, halve a number, ...), keeps the first mutation
// under which the failure predicate still fires, and repeats to a fixpoint.
// Mutations that produce an unbuildable spec are rejected by the predicate
// wrapper, so candidates do not need to preserve validity.
#pragma once

#include <functional>
#include <string>

#include "check/oracles.hpp"

namespace tv::check {

/// Returns true when the (possibly mutated) spec still exhibits the failure
/// being minimized. Predicates should compare the Failure kind so shrinking
/// cannot wander onto a different bug.
using CircuitPred = std::function<bool(const CircuitSpec&)>;
using WavePred = std::function<bool(const WaveCase&)>;

/// Greedily minimizes a failing circuit spec. `still_fails` is invoked at
/// most `max_checks` times; exceptions thrown by it count as "does not
/// fail". The input spec must satisfy the predicate.
CircuitSpec shrink_circuit(const CircuitSpec& failing, const CircuitPred& still_fails,
                           int max_checks = 4000);

WaveCase shrink_wave(const WaveCase& failing, const WavePred& still_fails,
                     int max_checks = 4000);

/// Renders a ready-to-paste gtest regression test asserting that the given
/// spec passes the named oracle ("conservatism" or "wave-algebra").
std::string gtest_repro(const CircuitSpec& spec, const std::string& oracle_kind);
std::string gtest_repro(const WaveCase& wc, const std::string& oracle_kind);

}  // namespace tv::check
