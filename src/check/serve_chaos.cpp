#include "check/serve_chaos.hpp"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "check/parser_fuzz.hpp"

namespace tv::check {

namespace {

struct PlannedJob {
  std::string id;
  std::string design_file;
  std::string fault;       // empty = clean
  int fault_attempts = 0;  // 0 = every attempt
  bool transient = false;  // fault fires on attempt 1 only: must recover
  bool permanent = false;  // fault fires on every attempt: must crash
};

struct ManifestRecord {
  std::string id;
  std::string state;
  int attempts = 0;
};

/// Pulls the job records back out of a manifest the harness itself wrote.
/// The format is the fixed-order JSON from serve/manifest.cpp, so a string
/// scan is exact (no general JSON parser needed in the check library).
std::vector<ManifestRecord> scan_manifest(const std::string& text) {
  std::vector<ManifestRecord> out;
  std::size_t at = 0;
  while ((at = text.find("{\"id\": \"", at)) != std::string::npos) {
    ManifestRecord r;
    std::size_t start = at + 8;
    std::size_t end = text.find('"', start);
    if (end == std::string::npos) break;
    r.id = text.substr(start, end - start);
    std::size_t st = text.find("\"state\": \"", end);
    if (st != std::string::npos) {
      st += 10;
      r.state = text.substr(st, text.find('"', st) - st);
    }
    std::size_t att = text.find("\"attempts\": ", end);
    if (att != std::string::npos) {
      r.attempts = std::atoi(text.c_str() + att + 12);
    }
    out.push_back(std::move(r));
    at = end;
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Launches the daemon, delivers SIGTERM after `sigterm_after_ms`, and
/// returns its exit code (-1 on signal death or a wedged shutdown).
int run_daemon_with_sigterm(const std::vector<std::string>& args,
                            int sigterm_after_ms, bool verbose) {
  pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    if (!verbose) {
      if (FILE* devnull = std::fopen("/dev/null", "w")) {
        dup2(fileno(devnull), STDERR_FILENO);
      }
    }
    execv(argv[0], argv.data());
    _exit(127);
  }
  usleep(static_cast<useconds_t>(sigterm_after_ms) * 1000);
  kill(pid, SIGTERM);
  // The drain should finish within a watchdog period; give it 30s before
  // declaring the shutdown wedged.
  for (int waited_ms = 0; waited_ms < 30000; waited_ms += 20) {
    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    usleep(20 * 1000);
  }
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);
  return -1;
}

}  // namespace

std::optional<ServeChaosFailure> check_serve_chaos(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "--serve-chaos needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-chaos-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  // Plan the batch: ~40% of jobs faulted. Transient faults (read failure,
  // mid-eval abort, mid-eval hang, failed intern) fire on attempt 1 only,
  // so the job must recover with attempts >= 2; one job aborts on every
  // attempt and must exhaust its retries into state "crashed".
  std::mt19937_64 rng(opts.seed * 0x9E3779B97F4A7C15ull + 17);
  // Every spec fires at hit 1: the generated designs are small (one to a
  // few primitives), so higher hit counts may never be reached and an
  // unfired fault would make the attempts>=2 assertion vacuously fail.
  const char* transient_faults[] = {
      "io.read@1:fail",
      "evaluator.eval@1:abort",
      "evaluator.eval@1:hang",
      "wave_table.intern@1:fail",
  };
  std::vector<PlannedJob> plan;
  std::vector<std::string> cleanup;
  int hangs = 0;
  for (int i = 0; i < opts.jobs; ++i) {
    PlannedJob j;
    char id[32];
    std::snprintf(id, sizeof id, "job-%03d", i);
    j.id = id;
    j.design_file = dir + "/design_" + std::to_string(i) + ".shdl";
    std::ofstream out(j.design_file);
    out << seed_design(static_cast<std::size_t>(rng() % seed_design_count()));
    out.close();
    cleanup.push_back(j.design_file);
    if (i == 0) {
      // The guaranteed permanent crasher: aborts on every attempt.
      j.fault = "evaluator.eval@1:abort";
      j.permanent = true;
    } else if (rng() % 100 < 40) {
      std::size_t pick = rng() % std::size(transient_faults);
      // Hung workers cost a full watchdog period per attempt; cap them so
      // the smoke run stays fast.
      if (pick == 2 && ++hangs > 2) pick = 1;
      j.fault = transient_faults[pick];
      j.fault_attempts = 1;
      j.transient = true;
    }
    plan.push_back(std::move(j));
  }

  std::string jobs_path = dir + "/batch.jobs";
  {
    std::ofstream out(jobs_path);
    for (const PlannedJob& j : plan) {
      out << "{\"id\": \"" << j.id << "\", \"design\": \"" << j.design_file << "\"";
      if (!j.fault.empty()) {
        out << ", \"fault\": \"" << j.fault << "\", \"fault_attempts\": "
            << j.fault_attempts;
      }
      out << "}\n";
    }
  }
  cleanup.push_back(jobs_path);

  // Two identical runs: the second exists purely to check byte-stability of
  // the manifest (same batch + same seed must replay identically).
  std::string manifests[2];
  for (int run = 0; run < 2; ++run) {
    std::string manifest_path = dir + "/run" + std::to_string(run) + ".manifest.json";
    std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                      "' --workers 4 --max-attempts 3 --backoff-ms 10 "
                      "--backoff-max-ms 50 --job-timeout 1 --seed " +
                      std::to_string(opts.seed % 1000000) + " --manifest '" +
                      manifest_path + "' '" + jobs_path + "'";
    if (opts.warm) cmd += " --warm";
    if (!opts.verbose) cmd += " 2>/dev/null";
    int status = std::system(cmd.c_str());
    int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    // Exactly one job (job-000) crashes permanently, so the daemon must
    // report the crashed-after-retries code.
    if (code != 4) {
      return fail("bad-exit-code", "expected daemon exit 4 (crashed job), got " +
                                       std::to_string(code) + "; work dir kept at " + dir);
    }
    manifests[run] = read_file(manifest_path);
    cleanup.push_back(manifest_path);
  }
  if (manifests[0] != manifests[1]) {
    return fail("manifest-unstable",
                "two identical runs produced different manifests; work dir kept at " + dir);
  }

  std::vector<ManifestRecord> records = scan_manifest(manifests[0]);
  if (records.size() != plan.size()) {
    return fail("job-lost", "planned " + std::to_string(plan.size()) + " jobs, manifest has " +
                                std::to_string(records.size()) + "; work dir kept at " + dir);
  }
  for (const PlannedJob& j : plan) {
    const ManifestRecord* rec = nullptr;
    int copies = 0;
    for (const ManifestRecord& r : records) {
      if (r.id == j.id) {
        rec = &r;
        ++copies;
      }
    }
    if (copies != 1) {
      return fail(copies ? "job-duplicated" : "job-lost",
                  "job " + j.id + " appears " + std::to_string(copies) +
                      " time(s) in the manifest; work dir kept at " + dir);
    }
    if (rec->state == "requeued" || rec->state == "unknown") {
      return fail("job-not-terminal", "job " + j.id + " ended in non-terminal state \"" +
                                          rec->state + "\"; work dir kept at " + dir);
    }
    if (j.permanent && rec->state != "crashed") {
      return fail("crash-not-detected",
                  "permanently-aborting job " + j.id + " ended \"" + rec->state +
                      "\" instead of \"crashed\"; work dir kept at " + dir);
    }
    if (j.permanent && rec->attempts != 3) {
      return fail("retry-invisible", "crashed job " + j.id + " shows " +
                                         std::to_string(rec->attempts) +
                                         " attempts, expected 3; work dir kept at " + dir);
    }
    if (j.transient) {
      if (rec->state == "crashed") {
        return fail("retry-failed", "attempt-1-only fault on job " + j.id +
                                        " still crashed the job; work dir kept at " + dir);
      }
      if (rec->attempts < 2) {
        return fail("retry-invisible",
                    "job " + j.id + " recovered but the manifest shows only " +
                        std::to_string(rec->attempts) +
                        " attempt(s); work dir kept at " + dir);
      }
    }
    if (!j.permanent && !j.transient &&
        rec->state != "done" && rec->state != "violations") {
      return fail("clean-job-failed", "unfaulted job " + j.id + " ended \"" + rec->state +
                                          "\"; work dir kept at " + dir);
    }
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

std::optional<ServeChaosFailure> check_reverify_chaos(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "reverify chaos needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-reverify-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  // One shared design: every job hits the same warm-pool key, so a faulted
  // reverify attempt shares its resident worker with the clean jobs around
  // it -- exactly the corruption surface this scenario probes.
  std::string design_file = dir + "/design.shdl";
  {
    std::ofstream out(design_file);
    out << seed_design(0);  // TINY: prims reg#0, setup_hold#1; signals D/CK/Q
  }
  std::vector<std::string> cleanup{design_file};

  // Three edit scripts against TINY, one per delta family the worker path
  // exercises (parameter, wire, checker-parameter).
  const struct { const char* name; const char* json; } deltas[] = {
      {"delay.json", "{\"prims\": [{\"prim\": \"reg#0\", \"dmin\": 1.5, \"dmax\": 5.0}]}\n"},
      {"wire.json", "{\"wires\": [{\"signal\": \"Q\", \"dmin\": 0.0, \"dmax\": 1.0}]}\n"},
      {"chk.json", "{\"prims\": [{\"prim\": \"setup_hold#1\", \"setup\": 3.0, \"hold\": 1.5}]}\n"},
  };
  std::vector<std::string> delta_paths;
  for (const auto& d : deltas) {
    std::string path = dir + "/" + d.name;
    std::ofstream out(path);
    out << d.json;
    delta_paths.push_back(path);
    cleanup.push_back(path);
  }

  // The batch: job 0 aborts inside apply_delta on every attempt (must
  // crash); jobs 1-2 abort once at the two incremental fault sites (must
  // recover, attempts >= 2); the rest alternate clean reverifies over the
  // delta families with plain verifies of the same design.
  struct RJob {
    std::string id;
    int delta = -1;            // index into delta_paths, -1 = plain verify
    std::string fault;
    int fault_attempts = 0;
    bool transient = false;
    bool permanent = false;
  };
  std::vector<RJob> plan;
  for (int i = 0; i < 8; ++i) {
    RJob j;
    char id[32];
    std::snprintf(id, sizeof id, "rev-%03d", i);
    j.id = id;
    if (i == 0) {
      j.delta = 0;
      j.fault = "incremental.apply@1:abort";
      j.permanent = true;
    } else if (i == 1) {
      j.delta = 1;
      j.fault = "incremental.apply@1:abort";
      j.fault_attempts = 1;
      j.transient = true;
    } else if (i == 2) {
      j.delta = 2;
      j.fault = "incremental.cone@1:abort";
      j.fault_attempts = 1;
      j.transient = true;
    } else {
      j.delta = (i % 2) ? (i / 2) % 3 : -1;
    }
    plan.push_back(std::move(j));
  }

  std::string jobs_path = dir + "/reverify.jobs";
  {
    std::ofstream out(jobs_path);
    for (const RJob& j : plan) {
      out << "{\"id\": \"" << j.id << "\", \"design\": \"" << design_file << "\"";
      if (j.delta >= 0) out << ", \"reverify\": \"" << delta_paths[j.delta] << "\"";
      if (!j.fault.empty()) {
        out << ", \"fault\": \"" << j.fault << "\", \"fault_attempts\": "
            << j.fault_attempts;
      }
      out << "}\n";
    }
  }
  cleanup.push_back(jobs_path);

  // Both backends, two runs each: byte-stability within a backend, record
  // agreement across them.
  std::vector<ManifestRecord> records_by_backend[2];
  for (int warm = 0; warm < 2; ++warm) {
    std::string manifests[2];
    for (int run = 0; run < 2; ++run) {
      std::string manifest_path = dir + "/warm" + std::to_string(warm) + ".run" +
                                  std::to_string(run) + ".manifest.json";
      std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                        "' --workers 2 --max-attempts 3 --backoff-ms 10 "
                        "--backoff-max-ms 50 --job-timeout 1 --seed " +
                        std::to_string(opts.seed % 1000000) + " --manifest '" +
                        manifest_path + "' '" + jobs_path + "'";
      if (warm) cmd += " --warm";
      if (!opts.verbose) cmd += " 2>/dev/null";
      int status = std::system(cmd.c_str());
      int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      if (code != 4) {
        return fail("bad-exit-code",
                    std::string(warm ? "warm" : "fork/exec") +
                        ": expected daemon exit 4 (crashed reverify job), got " +
                        std::to_string(code) + "; work dir kept at " + dir);
      }
      manifests[run] = read_file(manifest_path);
      cleanup.push_back(manifest_path);
    }
    if (manifests[0] != manifests[1]) {
      return fail("manifest-unstable",
                  std::string(warm ? "warm" : "fork/exec") +
                      ": two identical reverify runs produced different manifests; "
                      "work dir kept at " + dir);
    }
    records_by_backend[warm] = scan_manifest(manifests[0]);
  }

  for (int warm = 0; warm < 2; ++warm) {
    const char* backend = warm ? "warm" : "fork/exec";
    const std::vector<ManifestRecord>& records = records_by_backend[warm];
    if (records.size() != plan.size()) {
      return fail("job-lost", std::string(backend) + ": planned " +
                                  std::to_string(plan.size()) + " jobs, manifest has " +
                                  std::to_string(records.size()) +
                                  "; work dir kept at " + dir);
    }
    for (const RJob& j : plan) {
      const ManifestRecord* rec = nullptr;
      for (const ManifestRecord& r : records) {
        if (r.id == j.id) rec = &r;
      }
      if (!rec) {
        return fail("job-lost", std::string(backend) + ": job " + j.id +
                                    " missing from the manifest; work dir kept at " + dir);
      }
      if (j.permanent && (rec->state != "crashed" || rec->attempts != 3)) {
        return fail("crash-not-detected",
                    std::string(backend) + ": permanently-aborting reverify job " + j.id +
                        " ended \"" + rec->state + "\" after " +
                        std::to_string(rec->attempts) +
                        " attempt(s), expected crashed/3; work dir kept at " + dir);
      }
      if (j.transient) {
        if (rec->state == "crashed") {
          return fail("retry-failed", std::string(backend) + ": attempt-1-only fault on " +
                                          j.id + " still crashed the job; work dir kept at " +
                                          dir);
        }
        if (rec->attempts < 2) {
          return fail("retry-invisible",
                      std::string(backend) + ": job " + j.id +
                          " recovered but shows only " + std::to_string(rec->attempts) +
                          " attempt(s); work dir kept at " + dir);
        }
      }
      if (!j.permanent && !j.transient &&
          rec->state != "done" && rec->state != "violations") {
        return fail("clean-job-failed", std::string(backend) + ": unfaulted job " + j.id +
                                            " ended \"" + rec->state +
                                            "\"; work dir kept at " + dir);
      }
    }
  }

  // Cross-backend agreement: the warm pool's resident fixpoint (restored by
  // the inverse delta after each reverify, or dropped when restoration
  // fails) must never change a verdict relative to stateless fork/exec.
  for (const RJob& j : plan) {
    const ManifestRecord *a = nullptr, *b = nullptr;
    for (const ManifestRecord& r : records_by_backend[0]) {
      if (r.id == j.id) a = &r;
    }
    for (const ManifestRecord& r : records_by_backend[1]) {
      if (r.id == j.id) b = &r;
    }
    if (a && b && a->state != b->state) {
      return fail("backend-divergence",
                  "job " + j.id + " ended \"" + a->state + "\" under fork/exec but \"" +
                      b->state + "\" under the warm pool; work dir kept at " + dir);
    }
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

std::optional<ServeChaosFailure> check_kill_restart(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "kill-restart needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-kill-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  // A small batch with observable retry structure: two clean jobs, one that
  // aborts on attempt 1 only (its retry doubles the journal traffic for
  // that job), one whose read fails on attempt 1. Seeded designs keep the
  // batch content varied across chaos seeds.
  std::mt19937_64 rng(opts.seed * 0x9E3779B97F4A7C15ull + 29);
  std::vector<std::string> cleanup;
  std::string jobs_path = dir + "/batch.jobs";
  {
    std::ofstream jobs_out(jobs_path);
    for (int i = 0; i < 4; ++i) {
      std::string design_file = dir + "/design_" + std::to_string(i) + ".shdl";
      std::ofstream out(design_file);
      out << seed_design(static_cast<std::size_t>(rng() % seed_design_count()));
      out.close();
      cleanup.push_back(design_file);
      jobs_out << "{\"id\": \"kr-" << i << "\", \"design\": \"" << design_file << "\"";
      if (i == 1) {
        jobs_out << ", \"fault\": \"evaluator.eval@1:abort\", \"fault_attempts\": 1";
      } else if (i == 2) {
        jobs_out << ", \"fault\": \"io.read@1:fail\", \"fault_attempts\": 1";
      }
      jobs_out << "}\n";
    }
  }
  cleanup.push_back(jobs_path);

  std::string seed_arg = std::to_string(opts.seed % 1000000);
  auto daemon_cmd = [&](const std::string& journal, const std::string& manifest,
                        const std::string& fault, bool resume) {
    std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                      "' --workers 2 --max-attempts 3 --backoff-ms 10 "
                      "--backoff-max-ms 50 --job-timeout 2 --seed " + seed_arg +
                      " --journal '" + journal + "' --manifest '" + manifest + "' ";
    if (!fault.empty()) cmd += "--fault '" + fault + "' ";
    if (resume) cmd += "--resume ";
    if (opts.warm) cmd += "--warm ";
    cmd += "'" + jobs_path + "'";
    if (!opts.verbose) cmd += " 2>/dev/null";
    return cmd;
  };

  // Reference: the same batch, journaled, uninterrupted. Its journal's line
  // count is the number of durable transitions -- each one is a kill point.
  std::string ref_journal = dir + "/ref.journal";
  std::string ref_manifest = dir + "/ref.manifest.json";
  cleanup.push_back(ref_journal);
  cleanup.push_back(ref_manifest);
  std::system(daemon_cmd(ref_journal, ref_manifest, "", false).c_str());
  std::string reference = read_file(ref_manifest);
  if (reference.empty()) {
    return fail("bad-config", "reference run wrote no manifest; work dir kept at " + dir);
  }
  std::string ref_journal_text = read_file(ref_journal);
  int transitions = 0;
  for (char c : ref_journal_text) transitions += c == '\n';
  --transitions;  // header line is written before any transition
  if (transitions < 8) {
    return fail("bad-config", "reference journal shows only " +
                                  std::to_string(transitions) +
                                  " transitions; work dir kept at " + dir);
  }

  std::string kill_journal = dir + "/kill.journal";
  std::string kill_manifest = dir + "/kill.manifest.json";
  cleanup.push_back(kill_journal);
  cleanup.push_back(kill_manifest);
  for (int n = 1; n <= transitions; ++n) {
    std::remove(kill_journal.c_str());
    std::remove(kill_manifest.c_str());
    std::string fault = "serve.kill9@" + std::to_string(n) + ":kill9";
    // First run dies at transition n (SIGKILL, nothing flushed beyond the
    // journal). Restart with --resume until the manifest appears; the
    // journal must make one restart enough, but allow a few in case the
    // kill landed before the first append.
    std::system(daemon_cmd(kill_journal, kill_manifest, fault, false).c_str());
    int restarts = 0;
    while (read_file(kill_manifest).empty() && restarts < 5) {
      ++restarts;
      std::system(daemon_cmd(kill_journal, kill_manifest, "", true).c_str());
    }
    std::string resumed = read_file(kill_manifest);
    if (resumed.empty()) {
      return fail("resume-wedged", "kill point " + std::to_string(n) + ": batch still "
                                       "unfinished after 5 restarts; work dir kept at " + dir);
    }
    if (resumed != reference) {
      return fail("resume-divergence",
                  "kill point " + std::to_string(n) + ": resumed manifest differs from "
                      "the uninterrupted run's; work dir kept at " + dir);
    }
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

std::optional<ServeChaosFailure> check_drain_requeue(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "drain-requeue needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-drain-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  std::string design_file = dir + "/design.shdl";
  {
    std::ofstream out(design_file);
    out << seed_design(0);
  }
  std::vector<std::string> cleanup{design_file};

  // Two shutdown timings, each against a job that can never succeed:
  //   hang:    SIGTERM lands while the only attempt hangs under the
  //            watchdog. max-attempts is 1, so a supervisor that still
  //            treats the timeout as a normal transient failure would tip
  //            the job into "crashed" -- but the attempt was interrupted by
  //            the drain, so it must settle "requeued" with the one
  //            attempt on record.
  //   backoff: SIGTERM lands while the job sits in a long retry backoff
  //            after its first attempt aborted; it must settle "requeued"
  //            with exactly that one attempt, not burn a second launch.
  struct Scenario {
    const char* name;
    const char* fault;
    const char* max_attempts;
    const char* backoff_ms;
    const char* job_timeout;
    int sigterm_after_ms;
  };
  const Scenario scenarios[] = {
      {"hang", "evaluator.eval@1:hang", "1", "10", "1", 300},
      {"backoff", "evaluator.eval@1:abort", "3", "4000", "5", 700},
  };

  for (const Scenario& sc : scenarios) {
    std::string jobs_path = dir + "/" + sc.name + ".jobs";
    {
      std::ofstream out(jobs_path);
      out << "{\"id\": \"drain-" << sc.name << "\", \"design\": \"" << design_file
          << "\", \"fault\": \"" << sc.fault << "\"}\n";
    }
    cleanup.push_back(jobs_path);
    std::string manifest_path = dir + "/" + sc.name + ".manifest.json";
    cleanup.push_back(manifest_path);

    std::vector<std::string> args = {
        opts.scaldtvd_path, "--scaldtv", opts.scaldtv_path,
        "--workers", "1", "--max-attempts", sc.max_attempts,
        "--backoff-ms", sc.backoff_ms, "--backoff-max-ms", sc.backoff_ms,
        "--job-timeout", sc.job_timeout, "--seed", "1",
        "--manifest", manifest_path, jobs_path};
    if (opts.warm) args.push_back("--warm");
    int code = run_daemon_with_sigterm(args, sc.sigterm_after_ms, opts.verbose);
    // Requeued jobs must not affect the exit status: 4 here means the
    // drain burned the interrupted attempt and declared the job crashed.
    if (code != 0) {
      return fail("drain-exit-code",
                  std::string("drain-") + sc.name + ": expected daemon exit 0, got " +
                      std::to_string(code) + "; work dir kept at " + dir);
    }
    std::vector<ManifestRecord> records = scan_manifest(read_file(manifest_path));
    if (records.size() != 1) {
      return fail("job-lost", std::string("drain-") + sc.name + ": manifest has " +
                                  std::to_string(records.size()) +
                                  " records, expected 1; work dir kept at " + dir);
    }
    if (records[0].state != "requeued") {
      return fail("drain-not-requeued",
                  std::string("drain-") + sc.name + ": job ended \"" + records[0].state +
                      "\" instead of \"requeued\"; work dir kept at " + dir);
    }
    if (records[0].attempts != 1) {
      return fail("drain-attempt-burned",
                  std::string("drain-") + sc.name + ": requeued job shows " +
                      std::to_string(records[0].attempts) +
                      " attempt(s), expected exactly 1; work dir kept at " + dir);
    }
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

std::optional<ServeChaosFailure> check_mem_breach(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "mem-breach needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-mem-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  // One hog that leaks allocations until the RSS watchdog fires, three
  // clean neighbors that must come through untouched. The bloat action
  // grows ~2 MiB/ms, so a 384 MiB budget breaches in well under a second;
  // --job-timeout stays the backstop, not the classifier.
  std::mt19937_64 rng(opts.seed * 0x9E3779B97F4A7C15ull + 41);
  std::vector<std::string> cleanup;
  std::string jobs_path = dir + "/mem.jobs";
  {
    std::ofstream jobs_out(jobs_path);
    for (int i = 0; i < 4; ++i) {
      std::string design_file = dir + "/design_" + std::to_string(i) + ".shdl";
      std::ofstream out(design_file);
      out << seed_design(static_cast<std::size_t>(rng() % seed_design_count()));
      out.close();
      cleanup.push_back(design_file);
      jobs_out << "{\"id\": \"" << (i == 0 ? "hog" : "mem-" + std::to_string(i))
               << "\", \"design\": \"" << design_file << "\"";
      if (i == 0) jobs_out << ", \"fault\": \"evaluator.eval@1:bloat\"";
      jobs_out << "}\n";
    }
  }
  cleanup.push_back(jobs_path);

  std::string seed_arg = std::to_string(opts.seed % 1000000);
  std::string manifests[2];
  for (int warm = 0; warm < 2; ++warm) {
    const char* backend = warm ? "warm" : "fork/exec";
    std::string manifest_path = dir + "/warm" + std::to_string(warm) + ".manifest.json";
    std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                      "' --workers 2 --max-attempts 3 --backoff-ms 10 "
                      "--backoff-max-ms 50 --job-timeout 30 --mem-limit-mb 384 "
                      "--seed " + seed_arg + " --manifest '" + manifest_path + "' '" +
                      jobs_path + "'";
    if (warm) cmd += " --warm";
    if (!opts.verbose) cmd += " 2>/dev/null";
    int status = std::system(cmd.c_str());
    int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code != 6) {
      return fail("bad-exit-code", std::string(backend) +
                                       ": expected daemon exit 6 (resource-exhausted), got " +
                                       std::to_string(code) + "; work dir kept at " + dir);
    }
    manifests[warm] = read_file(manifest_path);
    cleanup.push_back(manifest_path);

    std::vector<ManifestRecord> records = scan_manifest(manifests[warm]);
    if (records.size() != 4) {
      return fail("job-lost", std::string(backend) + ": manifest has " +
                                  std::to_string(records.size()) +
                                  " records, expected 4; work dir kept at " + dir);
    }
    for (const ManifestRecord& r : records) {
      if (r.id == "hog") {
        if (r.state != "resource-exhausted") {
          return fail("breach-misclassified",
                      std::string(backend) + ": memory hog ended \"" + r.state +
                          "\" instead of \"resource-exhausted\"; work dir kept at " + dir);
        }
        if (r.attempts != 1) {
          return fail("breach-retried",
                      std::string(backend) + ": budget breach burned " +
                          std::to_string(r.attempts) +
                          " attempts without --mem-retry, expected 1; work dir kept at " + dir);
        }
      } else if (r.state != "done" && r.state != "violations") {
        return fail("clean-job-failed", std::string(backend) + ": unfaulted job " + r.id +
                                            " ended \"" + r.state +
                                            "\"; work dir kept at " + dir);
      }
    }
  }
  if (manifests[0] != manifests[1]) {
    return fail("backend-divergence",
                "fork/exec and warm manifests differ under a memory budget; "
                "work dir kept at " + dir);
  }

  // The retry policy: the same breach confined to attempt 1 plus --mem-retry
  // must recover, with the mem-limit attempt visible in the count.
  std::string retry_jobs = dir + "/mem-retry.jobs";
  {
    std::ofstream out(retry_jobs);
    out << "{\"id\": \"hog-retry\", \"design\": \"" << dir
        << "/design_0.shdl\", \"fault\": \"evaluator.eval@1:bloat\", "
           "\"fault_attempts\": 1}\n";
  }
  cleanup.push_back(retry_jobs);
  std::string retry_manifest = dir + "/mem-retry.manifest.json";
  cleanup.push_back(retry_manifest);
  {
    std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                      "' --workers 1 --max-attempts 3 --backoff-ms 10 "
                      "--backoff-max-ms 50 --job-timeout 30 --mem-limit-mb 384 "
                      "--mem-retry --seed " + seed_arg + " --manifest '" +
                      retry_manifest + "' '" + retry_jobs + "'";
    if (!opts.verbose) cmd += " 2>/dev/null";
    std::system(cmd.c_str());
  }
  std::vector<ManifestRecord> retry_records = scan_manifest(read_file(retry_manifest));
  if (retry_records.size() != 1 || retry_records[0].state == "resource-exhausted" ||
      retry_records[0].state == "crashed") {
    return fail("mem-retry-ignored",
                "attempt-1-only breach under --mem-retry ended \"" +
                    (retry_records.empty() ? std::string("<missing>")
                                           : retry_records[0].state) +
                    "\"; work dir kept at " + dir);
  }
  if (retry_records[0].attempts < 2) {
    return fail("retry-invisible",
                "hog-retry recovered but shows only " +
                    std::to_string(retry_records[0].attempts) +
                    " attempt(s); work dir kept at " + dir);
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

std::optional<ServeChaosFailure> check_shed(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "shed needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-shed-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  // Eight clean jobs against a five-slot admission cap: the first five run,
  // the last three are shed at batch start by input position -- never by
  // arrival timing, so the split must be byte-stable across runs.
  constexpr int kJobs = 8;
  constexpr int kMaxQueue = 5;
  std::mt19937_64 rng(opts.seed * 0x9E3779B97F4A7C15ull + 53);
  std::vector<std::string> cleanup;
  std::string jobs_path = dir + "/shed.jobs";
  {
    std::ofstream jobs_out(jobs_path);
    for (int i = 0; i < kJobs; ++i) {
      std::string design_file = dir + "/design_" + std::to_string(i) + ".shdl";
      std::ofstream out(design_file);
      out << seed_design(static_cast<std::size_t>(rng() % seed_design_count()));
      out.close();
      cleanup.push_back(design_file);
      jobs_out << "{\"id\": \"shed-" << i << "\", \"design\": \"" << design_file
               << "\"}\n";
    }
  }
  cleanup.push_back(jobs_path);

  std::string manifests[2];
  for (int run = 0; run < 2; ++run) {
    std::string manifest_path = dir + "/run" + std::to_string(run) + ".manifest.json";
    std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                      "' --workers 2 --max-attempts 3 --backoff-ms 10 "
                      "--backoff-max-ms 50 --job-timeout 2 --max-queue " +
                      std::to_string(kMaxQueue) + " --seed " +
                      std::to_string(opts.seed % 1000000) + " --manifest '" +
                      manifest_path + "' '" + jobs_path + "'";
    if (opts.warm) cmd += " --warm";
    if (!opts.verbose) cmd += " 2>/dev/null";
    int status = std::system(cmd.c_str());
    int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    // Shed (7) outranks the verdict codes in the fold: a batch that dropped
    // work must say so even when every admitted job came back clean.
    if (code != 7) {
      return fail("bad-exit-code", "run " + std::to_string(run) +
                                       ": expected daemon exit 7 (shed), got " +
                                       std::to_string(code) + "; work dir kept at " + dir);
    }
    manifests[run] = read_file(manifest_path);
    cleanup.push_back(manifest_path);
  }
  if (manifests[0] != manifests[1]) {
    return fail("manifest-unstable",
                "two identical capped runs produced different manifests; "
                "work dir kept at " + dir);
  }

  std::vector<ManifestRecord> records = scan_manifest(manifests[0]);
  if (records.size() != kJobs) {
    return fail("job-lost", "manifest has " + std::to_string(records.size()) +
                                " records, expected " + std::to_string(kJobs) +
                                "; work dir kept at " + dir);
  }
  for (int i = 0; i < kJobs; ++i) {
    const ManifestRecord* rec = nullptr;
    for (const ManifestRecord& r : records) {
      if (r.id == "shed-" + std::to_string(i)) rec = &r;
    }
    if (!rec) {
      return fail("job-lost", "job shed-" + std::to_string(i) +
                                  " missing from the manifest; work dir kept at " + dir);
    }
    if (i < kMaxQueue) {
      if (rec->state != "done" && rec->state != "violations") {
        return fail("admitted-job-failed",
                    "admitted job shed-" + std::to_string(i) + " ended \"" + rec->state +
                        "\"; work dir kept at " + dir);
      }
    } else {
      if (rec->state != "shed") {
        return fail("shed-misclassified",
                    "job shed-" + std::to_string(i) + " past the cap ended \"" +
                        rec->state + "\" instead of \"shed\"; work dir kept at " + dir);
      }
      if (rec->attempts != 0) {
        return fail("shed-attempt-burned",
                    "shed job shed-" + std::to_string(i) + " shows " +
                        std::to_string(rec->attempts) +
                        " attempt(s), expected 0; work dir kept at " + dir);
      }
    }
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

std::optional<ServeChaosFailure> check_quarantine_resume(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "quarantine-resume needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-quar-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  // Two designs with distinct content: the breaker keys on the design's
  // bytes, so "poison" must only spread to jobs that share design A.
  std::size_t other = 1;
  while (other < seed_design_count() && seed_design(other) == seed_design(0)) ++other;
  if (other >= seed_design_count()) {
    return fail("bad-config", "no second distinct seed design available");
  }
  std::string design_a = dir + "/poison.shdl";
  std::string design_b = dir + "/healthy.shdl";
  {
    std::ofstream a(design_a);
    a << seed_design(0);
    std::ofstream b(design_b);
    b << seed_design(other);
  }
  std::vector<std::string> cleanup{design_a, design_b};

  // qa-0 and qa-1 crash on every attempt and trip the K=2 breaker; qa-2 and
  // qa-3 are clean jobs on the poisoned design that must be fast-failed
  // "quarantined" with no attempt burned; qb-0 shares nothing and must be
  // untouched; over-0 sits past the admission cap and must shed -- so one
  // journal carries crash, quarantine, verdict, and shed settlements plus
  // the quarantine ledger record for the kill sweep below to replay.
  std::string jobs_path = dir + "/quarantine.jobs";
  {
    std::ofstream out(jobs_path);
    out << "{\"id\": \"qa-0\", \"design\": \"" << design_a
        << "\", \"fault\": \"evaluator.eval@1:abort\"}\n"
        << "{\"id\": \"qa-1\", \"design\": \"" << design_a
        << "\", \"fault\": \"evaluator.eval@1:abort\"}\n"
        << "{\"id\": \"qa-2\", \"design\": \"" << design_a << "\"}\n"
        << "{\"id\": \"qb-0\", \"design\": \"" << design_b << "\"}\n"
        << "{\"id\": \"qa-3\", \"design\": \"" << design_a << "\"}\n"
        << "{\"id\": \"over-0\", \"design\": \"" << design_b << "\"}\n";
  }
  cleanup.push_back(jobs_path);

  std::string seed_arg = std::to_string(opts.seed % 1000000);
  auto daemon_cmd = [&](const std::string& journal, const std::string& manifest,
                        const std::string& fault, bool resume) {
    // Resume validation covers the overload policy: every invocation,
    // resumed or not, must carry the same --quarantine-after / --max-queue.
    std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                      "' --workers 2 --max-attempts 3 --backoff-ms 10 "
                      "--backoff-max-ms 50 --job-timeout 2 --quarantine-after 2 "
                      "--max-queue 5 --seed " + seed_arg +
                      " --journal '" + journal + "' --manifest '" + manifest + "' ";
    if (!fault.empty()) cmd += "--fault '" + fault + "' ";
    if (resume) cmd += "--resume ";
    if (opts.warm) cmd += "--warm ";
    cmd += "'" + jobs_path + "'";
    if (!opts.verbose) cmd += " 2>/dev/null";
    return cmd;
  };

  std::string ref_journal = dir + "/ref.journal";
  std::string ref_manifest = dir + "/ref.manifest.json";
  cleanup.push_back(ref_journal);
  cleanup.push_back(ref_manifest);
  int status = std::system(daemon_cmd(ref_journal, ref_manifest, "", false).c_str());
  int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  // Crashed (4) outranks resource/overload states in the fold.
  if (code != 4) {
    return fail("bad-exit-code", "reference run: expected daemon exit 4, got " +
                                     std::to_string(code) + "; work dir kept at " + dir);
  }
  std::string reference = read_file(ref_manifest);
  std::vector<ManifestRecord> records = scan_manifest(reference);
  if (records.size() != 6) {
    return fail("job-lost", "manifest has " + std::to_string(records.size()) +
                                " records, expected 6; work dir kept at " + dir);
  }
  for (const ManifestRecord& r : records) {
    if (r.id == "qa-0" || r.id == "qa-1") {
      if (r.state != "crashed" || r.attempts != 3) {
        return fail("crash-not-detected",
                    "poison job " + r.id + " ended \"" + r.state + "\" after " +
                        std::to_string(r.attempts) +
                        " attempt(s), expected crashed/3; work dir kept at " + dir);
      }
    } else if (r.id == "qa-2" || r.id == "qa-3") {
      if (r.state != "quarantined") {
        return fail("quarantine-missed",
                    "job " + r.id + " on the poisoned design ended \"" + r.state +
                        "\" instead of \"quarantined\"; work dir kept at " + dir);
      }
      if (r.attempts != 0) {
        return fail("quarantine-attempt-burned",
                    "quarantined job " + r.id + " shows " + std::to_string(r.attempts) +
                        " attempt(s), expected 0; work dir kept at " + dir);
      }
    } else if (r.id == "qb-0") {
      if (r.state != "done" && r.state != "violations") {
        return fail("quarantine-overreach",
                    "job qb-0 on the healthy design ended \"" + r.state +
                        "\"; work dir kept at " + dir);
      }
    } else if (r.id == "over-0") {
      if (r.state != "shed" || r.attempts != 0) {
        return fail("shed-misclassified",
                    "job over-0 past the cap ended \"" + r.state + "\"/" +
                        std::to_string(r.attempts) +
                        ", expected shed/0; work dir kept at " + dir);
      }
    }
  }

  // The kill sweep: SIGKILL at every durable transition, resume, and demand
  // byte-identity -- quarantine and shed settlements must replay exactly
  // like verdicts, and the ledger must re-trip the breaker on resume.
  std::string ref_journal_text = read_file(ref_journal);
  int transitions = 0;
  for (char c : ref_journal_text) transitions += c == '\n';
  --transitions;  // header line is written before any transition
  if (transitions < 10) {
    return fail("bad-config", "reference journal shows only " +
                                  std::to_string(transitions) +
                                  " transitions; work dir kept at " + dir);
  }
  std::string kill_journal = dir + "/kill.journal";
  std::string kill_manifest = dir + "/kill.manifest.json";
  cleanup.push_back(kill_journal);
  cleanup.push_back(kill_manifest);
  for (int n = 1; n <= transitions; ++n) {
    std::remove(kill_journal.c_str());
    std::remove(kill_manifest.c_str());
    std::string fault = "serve.kill9@" + std::to_string(n) + ":kill9";
    std::system(daemon_cmd(kill_journal, kill_manifest, fault, false).c_str());
    int restarts = 0;
    while (read_file(kill_manifest).empty() && restarts < 5) {
      ++restarts;
      std::system(daemon_cmd(kill_journal, kill_manifest, "", true).c_str());
    }
    std::string resumed = read_file(kill_manifest);
    if (resumed.empty()) {
      return fail("resume-wedged", "kill point " + std::to_string(n) + ": batch still "
                                       "unfinished after 5 restarts; work dir kept at " + dir);
    }
    if (resumed != reference) {
      return fail("resume-divergence",
                  "kill point " + std::to_string(n) + ": resumed manifest differs from "
                      "the uninterrupted run's; work dir kept at " + dir);
    }
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

std::optional<ServeChaosFailure> check_write_fail(const ServeChaosOptions& opts) {
  auto fail = [](std::string kind, std::string detail) {
    return ServeChaosFailure{std::move(kind), std::move(detail)};
  };
  if (opts.scaldtvd_path.empty() || opts.scaldtv_path.empty()) {
    return fail("bad-config", "write-fail needs scaldtvd and scaldtv paths "
                              "(TV_SCALDTVD / TV_SCALDTV)");
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp ? tmp : "/tmp") + "/serve-enospc-XXXXXX";
  std::vector<char> dirbuf(dir.begin(), dir.end());
  dirbuf.push_back('\0');
  if (!mkdtemp(dirbuf.data())) return fail("bad-config", "mkdtemp failed");
  dir.assign(dirbuf.data());

  // The kill-restart batch shape: retries multiply the journal traffic, so
  // the sweep covers appends from every record family.
  std::mt19937_64 rng(opts.seed * 0x9E3779B97F4A7C15ull + 67);
  std::vector<std::string> cleanup;
  std::string jobs_path = dir + "/batch.jobs";
  {
    std::ofstream jobs_out(jobs_path);
    for (int i = 0; i < 4; ++i) {
      std::string design_file = dir + "/design_" + std::to_string(i) + ".shdl";
      std::ofstream out(design_file);
      out << seed_design(static_cast<std::size_t>(rng() % seed_design_count()));
      out.close();
      cleanup.push_back(design_file);
      jobs_out << "{\"id\": \"wf-" << i << "\", \"design\": \"" << design_file << "\"";
      if (i == 1) {
        jobs_out << ", \"fault\": \"evaluator.eval@1:abort\", \"fault_attempts\": 1";
      } else if (i == 2) {
        jobs_out << ", \"fault\": \"io.read@1:fail\", \"fault_attempts\": 1";
      }
      jobs_out << "}\n";
    }
  }
  cleanup.push_back(jobs_path);

  std::string seed_arg = std::to_string(opts.seed % 1000000);
  auto daemon_cmd = [&](const std::string& journal, const std::string& manifest,
                        const std::string& fault, bool resume) {
    std::string cmd = "'" + opts.scaldtvd_path + "' --scaldtv '" + opts.scaldtv_path +
                      "' --workers 2 --max-attempts 3 --backoff-ms 10 "
                      "--backoff-max-ms 50 --job-timeout 2 --seed " + seed_arg +
                      " --journal '" + journal + "' --manifest '" + manifest + "' ";
    if (!fault.empty()) cmd += "--fault '" + fault + "' ";
    if (resume) cmd += "--resume ";
    if (opts.warm) cmd += "--warm ";
    cmd += "'" + jobs_path + "'";
    if (!opts.verbose) cmd += " 2>/dev/null";
    return cmd;
  };

  // Reference: uninterrupted and journaled. The daemon performs one durable
  // write per journal line (the header and every append) plus one for the
  // final manifest -- each is an injection point for the ENOSPC sweep.
  std::string ref_journal = dir + "/ref.journal";
  std::string ref_manifest = dir + "/ref.manifest.json";
  cleanup.push_back(ref_journal);
  cleanup.push_back(ref_manifest);
  std::system(daemon_cmd(ref_journal, ref_manifest, "", false).c_str());
  std::string reference = read_file(ref_manifest);
  if (reference.empty()) {
    return fail("bad-config", "reference run wrote no manifest; work dir kept at " + dir);
  }
  std::string ref_journal_text = read_file(ref_journal);
  int writes = 0;
  for (char c : ref_journal_text) writes += c == '\n';
  ++writes;  // the manifest's atomic_write_file is the final durable write
  if (writes < 10) {
    return fail("bad-config", "reference run shows only " + std::to_string(writes) +
                                  " durable writes; work dir kept at " + dir);
  }

  std::string kill_journal = dir + "/enospc.journal";
  std::string kill_manifest = dir + "/enospc.manifest.json";
  cleanup.push_back(kill_journal);
  cleanup.push_back(kill_manifest);
  for (int n = 1; n <= writes; ++n) {
    std::remove(kill_journal.c_str());
    std::remove(kill_manifest.c_str());
    std::string fault = "io.write@" + std::to_string(n) + ":fail";
    // Whichever durable write fails -- the journal header (the daemon
    // refuses to start), a mid-run append (the daemon drains, requeues, and
    // still writes a manifest), or the manifest itself -- the exit must be
    // loud (2) and the journal on disk a clean replayable prefix.
    int st = std::system(daemon_cmd(kill_journal, kill_manifest, fault, false).c_str());
    int code = WIFEXITED(st) ? WEXITSTATUS(st) : -1;
    if (code != 2) {
      return fail("write-fail-silent",
                  "durable write " + std::to_string(n) + " failed but the daemon exited " +
                      std::to_string(code) + ", expected 2; work dir kept at " + dir);
    }
    int restarts = 0;
    while (read_file(kill_manifest) != reference && restarts < 5) {
      ++restarts;
      std::system(daemon_cmd(kill_journal, kill_manifest, "", true).c_str());
    }
    if (read_file(kill_manifest) != reference) {
      return fail("resume-divergence",
                  "durable write " + std::to_string(n) + ": manifest never converged to "
                      "the uninterrupted run's after 5 resumes; work dir kept at " + dir);
    }
  }

  for (const std::string& f : cleanup) std::remove(f.c_str());
  rmdir(dir.c_str());
  return std::nullopt;
}

}  // namespace tv::check
