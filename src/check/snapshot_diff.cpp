#include "check/snapshot_diff.hpp"

#include <sstream>
#include <string>

#include "check/incr_diff.hpp"
#include "core/compiled.hpp"
#include "core/fixpoint.hpp"
#include "core/incremental.hpp"
#include "core/verifier.hpp"
#include "diag/diagnostic.hpp"
#include "diag/render.hpp"

namespace tv::check {

namespace {

/// Everything observable about one verification INCLUDING the cumulative
/// evaluation-effort counters: a restored verifier re-bases its counters on
/// the snapshot's, so unlike the incremental oracle (which sanctions the
/// counter asymmetry as the speedup), the snapshot contract demands they
/// match exactly.
std::string render_full(const Netlist& nl, const VerifyResult& r) {
  std::ostringstream os;
  os << "converged=" << r.converged << " partial=" << r.partial
     << " base_events=" << r.base_events << " base_evals=" << r.base_evals << '\n';
  os << timing_summary(nl);
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "case " << c.name << " events=" << c.events << " converged=" << c.converged
       << " degraded=" << c.degraded << '\n'
       << violations_report(c.violations);
  }
  os << "xref:";
  for (SignalId id : r.cross_reference) os << ' ' << id;
  os << '\n';
  return os.str();
}

std::string diag_text(const diag::DiagnosticEngine& diags) {
  std::string text = diag::render_text(diags);
  return text.empty() ? "(no diagnostic)" : text;
}

}  // namespace

std::optional<Failure> check_snapshot_equivalence(const CircuitSpec& spec,
                                                  const SnapshotDiffOptions& opts) {
  std::uint64_t edit_seed =
      opts.edit_seed ? opts.edit_seed
                     : spec.seed * 0x9E3779B97F4A7C15ULL + 0x6C62272E07BB0142ULL;
  auto tag = [&](int step) {
    std::string t = "seed " + std::to_string(spec.seed) + " edit_seed " +
                    std::to_string(edit_seed) + " (" +
                    (opts.compiled ? "compiled" : "source") + ")";
    if (step > 0) t += " step " + std::to_string(step);
    return t;
  };

  // Both worlds must come from identical bytes/ids: with the compiled front
  // end, serialize once and load twice; otherwise build the spec twice.
  std::string artifact;
  if (opts.compiled) {
    BuiltCircuit bc = build(spec);
    CompiledSummary summary;
    summary.primitives = bc.nl.num_prims();
    summary.unique_signals = bc.nl.num_signals();
    CompiledDesign d = compile_design("FUZZ", bc.nl, bc.opts, bc.cases, summary);
    artifact = serialize_compiled(d);
  }
  std::optional<CompiledDesign> loaded_a, loaded_b;
  std::optional<BuiltCircuit> built_a, built_b;
  Netlist* nl_a = nullptr;
  Netlist* nl_b = nullptr;
  VerifierOptions vopts;
  std::vector<CaseSpec> cases;
  std::uint64_t artifact_hash = 0;
  if (opts.compiled) {
    diag::DiagnosticEngine diags;
    loaded_a = load_compiled(artifact, "<memory>", diags);
    loaded_b = load_compiled(artifact, "<memory>", diags);
    if (!loaded_a || !loaded_b) {
      return Failure{"snapshot-harness", tag(0) + ": compiled artifact failed to load"};
    }
    nl_a = &loaded_a->netlist;
    nl_b = &loaded_b->netlist;
    vopts = loaded_a->options;
    cases = loaded_a->cases;
    artifact_hash = loaded_a->content_hash;
  } else {
    built_a.emplace(build(spec));
    built_b.emplace(build(spec));
    nl_a = &built_a->nl;
    nl_b = &built_b->nl;
    vopts = built_a->opts;
    cases = built_a->cases;
  }

  // Writer world: cold verify, then snapshot (twice -- determinism).
  Verifier va(*nl_a, vopts);
  if (loaded_a && va.evaluator().intern_context()) {
    preintern_seeds(*loaded_a, va.evaluator().intern_context()->table);
  }
  va.verify(cases);
  std::string snap1 = va.snapshot("FUZZ", artifact_hash);
  std::string snap2 = va.snapshot("FUZZ", artifact_hash);
  if (snap1 != snap2) {
    return Failure{"snapshot-unstable",
                   tag(0) + ": serializing the same baseline twice produced " +
                       std::to_string(snap1.size()) + " vs " +
                       std::to_string(snap2.size()) + " byte blobs that differ"};
  }

  diag::DiagnosticEngine load_diags;
  std::optional<FixpointState> state = load_fixpoint(snap1, "<memory>", load_diags);
  if (!state) {
    return Failure{"snapshot-reject",
                   tag(0) + ": a just-written snapshot failed to load:\n" +
                       diag_text(load_diags)};
  }

  // Restored world: fresh build + restore, never a cold baseline.
  Verifier vb(*nl_b, vopts);
  if (loaded_b && vb.evaluator().intern_context()) {
    preintern_seeds(*loaded_b, vb.evaluator().intern_context()->table);
  }
  diag::DiagnosticEngine restore_diags;
  if (!vb.restore(*state, artifact_hash, restore_diags)) {
    return Failure{"snapshot-restore",
                   tag(0) + ": restore into a fresh verifier refused:\n" +
                       diag_text(restore_diags)};
  }
  std::string ident_a = render_full(*nl_a, va.baseline());
  std::string ident_b = render_full(*nl_b, vb.baseline());
  if (ident_a != ident_b) {
    return Failure{"snapshot-baseline-diff",
                   tag(0) + ": restored baseline diverges\n--- writer ---\n" +
                       ident_a + "--- restored ---\n" + ident_b};
  }

  // Warm equivalence: the same edit script replayed on both verifiers.
  Rng rng(edit_seed);
  for (int step = 1; step <= opts.steps; ++step) {
    NetlistDelta delta = random_delta(rng, *nl_a, va.baseline_cases());
    VerifyResult ra, rb;
    ReverifyStats sa, sb;
    try {
      ra = va.reverify(delta, &sa);
      rb = vb.reverify(delta, &sb);
    } catch (const std::exception& e) {
      return Failure{"snapshot-harness",
                     tag(step) + ": reverify threw on a generated delta: " + e.what()};
    }
    ident_a = render_full(*nl_a, ra);
    ident_b = render_full(*nl_b, rb);
    if (ident_a != ident_b || sa.incremental != sb.incremental) {
      std::ostringstream os;
      os << tag(step) << " (writer " << (sa.incremental ? "incremental" : "cold")
         << ", restored " << (sb.incremental ? "incremental" : "cold")
         << "): reports diverge\n--- writer ---\n"
         << ident_a << "--- restored ---\n"
         << ident_b;
      return Failure{"snapshot-diff", os.str()};
    }
    if (va.snapshot("FUZZ", artifact_hash) != vb.snapshot("FUZZ", artifact_hash)) {
      return Failure{"snapshot-state-diff",
                     tag(step) +
                         ": the two worlds report identically but re-serialize "
                         "to different snapshot bytes"};
    }
  }
  return std::nullopt;
}

}  // namespace tv::check
