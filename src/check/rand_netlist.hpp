// Seeded random-netlist generation for the differential self-checking
// harness (tools/tvfuzz, tests/test_cross_validation.cpp).
//
// The generator covers the territory the original hand-written
// cross-validation test did not: registers, latches, SET/RESET inputs,
// gated clocks carrying &A/&H/&Z evaluation directives, polarity-dependent
// (rise/fall) delays, interconnection (wire) delays, skewed clock
// assertions, and case analysis. Every circuit is described first as a
// plain-data CircuitSpec -- a recipe of small integers -- so that a failing
// circuit can be shrunk field by field (src/check/shrinker.hpp) and
// re-emitted as a paste-into-gtest C++ literal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/netlist.hpp"

namespace tv::check {

/// Deterministic 64-bit LCG shared by the whole harness; one seed fully
/// determines a differential case.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  /// Uniform integer in [lo, hi] (inclusive).
  int range(int lo, int hi) {
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
  /// True with probability pct/100.
  bool chance(int pct) { return range(1, 100) <= pct; }

 private:
  std::uint64_t state_;
};

/// One combinational stage on the data path between the toggling input and
/// the checked storage element.
enum class StageKind : std::uint8_t {
  Buf,          // buffer [dmin, dmax]
  Inv,          // inverter
  MuxFastSlow,  // select chooses a fast or a slow buffered copy (adds a control)
  AndEnable,    // AND with a fresh control input
  OrMask,       // OR with a fresh control input
  Xor2,         // XOR with a fresh control input (flip-overlay path)
};

struct StageSpec {
  StageKind kind = StageKind::Buf;
  int dmin_ns = 1, dmax_ns = 2;       // element delay
  int slow_min_ns = 4, slow_max_ns = 6;  // MuxFastSlow: slow-branch delay
  bool rise_fall = false;             // polarity-dependent delay (sec. 4.2.2)
  int fall_extra_ns = 0;              // fall delay = base delay + extra
  int wire_max_ns = 0;                // wire-delay override [0, wire_max] on the output
};

enum class SinkKind : std::uint8_t { Reg, RegSR, Latch, LatchSR };

struct ClockSpec {
  int edge_units = 20;      // nominal rising edge (clock units; 1 unit = 1 ns here)
  int high_units = 6;       // asserted width
  int skew_minus_ns = 0;    // assertion skew "(minus, plus)"; minus <= 0 <= plus
  int skew_plus_ns = 0;
  bool precision = true;    // .P vs .C assertion
  bool gated = false;       // clock passes AND(CK, GEN) before the sink
  char directive = '\0';    // '\0', 'A', 'H' or 'Z' on the gating AND's clock pin
  bool enable_from_path = false;  // GEN taken from the data path instead of a control
  /// Without an enabling directive (&A/&H) the enable must carry a definite
  /// .C assertion -- an unasserted enable is "assumed always stable"
  /// (sec. 2.5) and the gated clock then has no symbolic edges to check.
  /// These give the enable's asserted high window; unused otherwise.
  int enable_rise_units = 0;
  int enable_fall_units = 0;
};

/// Recipe for one random circuit. All times are whole nanoseconds so the
/// emitted gtest repro stays readable.
struct CircuitSpec {
  std::uint64_t seed = 0;       // provenance, for reporting only
  int period_ns = 200;
  int data_toggle_ns = 10;      // data input settles here each cycle
  int data_change_ns = 5;       // width of the changing window before the toggle
  std::vector<StageSpec> stages;
  SinkKind sink = SinkKind::Reg;
  ClockSpec clock;
  int sink_dmin_ns = 1, sink_dmax_ns = 2;
  int setup_ns = 3, hold_ns = 0;
  bool second_stage = false;    // pipeline: sink output -> buf -> checker -> reg
  int stage2_edge_units = 0;    // second checker's clock edge (0 = reuse + offset)
  bool with_case = false;       // run case analysis on the first control, 0 and 1
};

/// Draws a random specification. The same seed always yields the same spec.
CircuitSpec random_spec(std::uint64_t seed);

/// A spec materialized as a verifier-ready netlist plus everything the
/// value-level simulator needs to drive it.
struct BuiltCircuit {
  Netlist nl;
  VerifierOptions opts;
  SignalId data_in = kNoSignal;
  SignalId clock_in = kNoSignal;
  SignalId clock2_in = kNoSignal;   // second pipeline clock, when separate
  SignalId gate_enable = kNoSignal; // .C-asserted gate enable, driven not enumerated
  std::vector<SignalId> controls;  // boolean inputs the simulator enumerates
  int case_control = -1;           // index into controls pinned by the cases
  std::vector<CaseSpec> cases;     // non-empty when spec.with_case
};

BuiltCircuit build(const CircuitSpec& spec);

/// Renders the spec as a C++ aggregate expression (a `tv::check::CircuitSpec{...}`
/// literal) for pasting into a regression test.
std::string to_cpp(const CircuitSpec& spec);

}  // namespace tv::check
