// Front-end robustness fuzzing (tvfuzz --parser-fuzz).
//
// Takes valid SHDL sources (the standard chip library plus small embedded
// designs), applies seeded byte- and token-level mutations, and feeds the
// result to the diagnostic front end. The contract under test:
//
//   * the front end never crashes and never lets an exception escape --
//     malformed input is a diagnostic, not a throw;
//   * when the front end rejects an input (returns nullopt) it has reported
//     at least one error diagnostic explaining why;
//   * when it accepts an input, the resulting design is finalized and
//     usable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace tv::check {

struct ParserFuzzFailure {
  std::uint64_t seed = 0;
  std::string kind;    // "uncaught-exception" | "silent-rejection" | ...
  std::string detail;  // what() text or invariant description
  std::string input;   // the mutated source that triggered it
};

/// Runs one seeded mutation + front-end round trip. Returns the failure if
/// any contract above was broken, std::nullopt otherwise.
std::optional<ParserFuzzFailure> check_parser_robustness(std::uint64_t seed);

/// The valid-SHDL seed corpus the mutator starts from. Exposed so other
/// harnesses (tvfuzz --serve-chaos) can generate known-good designs.
std::size_t seed_design_count();
std::string seed_design(std::size_t index);

}  // namespace tv::check
