// The incremental-reverification differential oracle (docs/incremental.md).
//
// For each seeded random circuit it replays a K-step random edit script two
// ways: incrementally (one long-lived Verifier, Verifier::reverify per
// step) and cold (a fresh build with the delta prefix applied wholesale,
// then a from-scratch verify). After every step the two worlds must agree
// byte-for-byte on everything observable -- waveforms, evaluation strings,
// violation reports, case blocks, convergence verdicts, the cross-reference
// -- except the cumulative evaluation-effort counters
// (base_events/base_evals), which are the speedup itself.
//
// Edits are drawn from every delta family (primitive parameters, pin
// retargets, wire-delay overrides, assertion renames, case-map edits),
// including ones the incremental engine must refuse (a retarget that closes
// a combinational loop forces the silent cold fallback, which must still
// match). With `compiled` set, the circuit is first round-tripped through
// the scaldtvc artifact so the replay exercises the --compiled front end's
// id space and pre-interned seed arena.
#pragma once

#include <cstdint>
#include <optional>

#include "check/oracles.hpp"
#include "check/rand_netlist.hpp"
#include "core/incremental.hpp"

namespace tv::check {

struct IncrDiffOptions {
  /// Seed for the edit script; 0 derives it from the circuit seed. Fixed by
  /// the shrinker so the script stays stable while the circuit shrinks.
  std::uint64_t edit_seed = 0;
  int steps = 4;
  bool compiled = false;  // round-trip through the compiled artifact first
};

/// Draws a small (1-3 edit) valid delta against the current netlist/cases.
/// Exposed for the property suite; the same rng stream always yields the
/// same script.
NetlistDelta random_delta(Rng& rng, const Netlist& nl,
                          const std::vector<CaseSpec>& cases);

/// Runs the K-step differential replay. Returns the first divergence (or
/// harness failure), nullopt when every step matched.
std::optional<Failure> check_incr_equivalence(const CircuitSpec& spec,
                                              const IncrDiffOptions& opts = {});

}  // namespace tv::check
