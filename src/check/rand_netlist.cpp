#include "check/rand_netlist.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace tv::check {

namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

// Assertion text for the toggling data input: stable from the settle time
// all the way around to the start of the next change window.
std::string data_assertion(const CircuitSpec& s) {
  return fmt("IN .S%d-%d", s.data_toggle_ns, s.data_toggle_ns + s.period_ns - s.data_change_ns);
}

std::string clock_assertion(const CircuitSpec& s) {
  std::string a = fmt("CK .%c%d-%d", s.clock.precision ? 'P' : 'C', s.clock.edge_units,
                      s.clock.edge_units + s.clock.high_units);
  if (s.clock.skew_minus_ns != 0 || s.clock.skew_plus_ns != 0) {
    a += fmt("(%d,%d)", s.clock.skew_minus_ns, s.clock.skew_plus_ns);
  }
  return a;
}

}  // namespace

CircuitSpec random_spec(std::uint64_t seed) {
  Rng rng(seed);
  CircuitSpec s;
  s.seed = seed;
  s.period_ns = rng.range(150, 250);
  s.data_change_ns = rng.range(2, 8);
  s.data_toggle_ns = s.data_change_ns + rng.range(2, 10);

  int levels = rng.range(1, 4);
  for (int i = 0; i < levels; ++i) {
    StageSpec st;
    int k = rng.range(0, 9);
    st.kind = k < 3   ? StageKind::Buf
              : k < 4 ? StageKind::Inv
              : k < 7 ? StageKind::MuxFastSlow
              : k < 8 ? StageKind::AndEnable
              : k < 9 ? StageKind::OrMask
                      : StageKind::Xor2;
    st.dmin_ns = rng.range(0, 3);
    st.dmax_ns = st.dmin_ns + rng.range(0, 6);
    st.slow_min_ns = rng.range(3, 8);
    st.slow_max_ns = st.slow_min_ns + rng.range(0, 6);
    if (rng.chance(25)) {
      st.rise_fall = true;
      st.fall_extra_ns = rng.range(1, 30);  // strong asymmetry on purpose
    }
    if (rng.chance(40)) st.wire_max_ns = rng.range(1, 3);
    s.stages.push_back(st);
  }

  int sk = rng.range(0, 3);
  s.sink = sk == 0 ? SinkKind::Reg : sk == 1 ? SinkKind::RegSR : sk == 2 ? SinkKind::Latch
                                                                         : SinkKind::LatchSR;
  s.sink_dmin_ns = rng.range(1, 2);
  s.sink_dmax_ns = s.sink_dmin_ns + rng.range(0, 2);
  s.setup_ns = rng.range(1, 6);
  s.hold_ns = rng.chance(40) ? rng.range(1, 3) : 0;

  // Place the nominal clock edge inside (and a little beyond) the data
  // arrival range so roughly half the circuits violate.
  int max_arrival = s.data_toggle_ns;
  for (const StageSpec& st : s.stages) {
    int worst = std::max(st.dmax_ns + (st.rise_fall ? st.fall_extra_ns : 0),
                         st.kind == StageKind::MuxFastSlow ? st.slow_max_ns : 0);
    max_arrival += worst + st.wire_max_ns;
  }
  s.clock.high_units = rng.range(3, 10);
  int lo = s.data_toggle_ns + 1;
  int hi = std::min(max_arrival + 8, s.period_ns - s.clock.high_units - 4);
  s.clock.edge_units = rng.range(lo, std::max(lo, hi));
  s.clock.precision = rng.chance(70);
  if (rng.chance(30)) {
    s.clock.skew_minus_ns = -rng.range(0, 2);
    s.clock.skew_plus_ns = rng.range(0, 2);
  }
  if (rng.chance(35)) {
    s.clock.gated = true;
    int d = rng.range(0, 3);
    s.clock.directive = d == 0 ? '\0' : d == 1 ? 'A' : d == 2 ? 'H' : 'Z';
    bool assume_enabling = s.clock.directive == 'A' || s.clock.directive == 'H';
    // Soundness contract (docs/engine_internals.md): without an enabling
    // directive the gate's enable must carry a definite assertion -- an
    // unasserted enable is "assumed always stable" (sec. 2.5) and the
    // symbolic clock then has no edges to check.
    if (assume_enabling) {
      s.clock.enable_from_path = rng.chance(35);
    } else {
      s.clock.enable_rise_units = rng.range(0, s.clock.edge_units);
      s.clock.enable_fall_units =
          s.clock.enable_rise_units +
          rng.range(2, std::max(2, s.period_ns / 2 - s.clock.enable_rise_units));
    }
  }

  s.second_stage = rng.chance(30);
  if (s.second_stage && rng.chance(50)) {
    s.stage2_edge_units = std::min(
        s.period_ns - 4, s.clock.edge_units + s.clock.high_units + rng.range(5, 40));
  }
  s.with_case = rng.chance(40);
  return s;
}

BuiltCircuit build(const CircuitSpec& spec) {
  BuiltCircuit c;
  c.opts.period = from_ns(spec.period_ns);
  c.opts.units = ClockUnits::from_ns_per_unit(1.0);
  c.opts.default_wire = WireDelay{0, 0};
  c.opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  Netlist& nl = c.nl;

  Ref in = nl.ref(data_assertion(spec));
  c.data_in = in.id;
  Ref cur = in;
  int n = 0;
  auto fresh_control = [&]() {
    Ref r = nl.ref(fmt("CTL%d", static_cast<int>(c.controls.size())));
    c.controls.push_back(r.id);
    return r;
  };
  auto apply_stage_extras = [&](const StageSpec& st, PrimId pid, Ref out) {
    if (st.rise_fall) {
      nl.set_rise_fall(pid, RiseFallDelay{from_ns(st.dmin_ns), from_ns(st.dmax_ns),
                                          from_ns(st.dmin_ns + st.fall_extra_ns),
                                          from_ns(st.dmax_ns + st.fall_extra_ns)});
    }
    if (st.wire_max_ns > 0) nl.set_wire_delay(out.id, 0, from_ns(st.wire_max_ns));
  };

  for (const StageSpec& st : spec.stages) {
    std::string tag = std::to_string(n++);
    Ref out = nl.ref("N" + tag);
    PrimId pid = kNoPrim;
    switch (st.kind) {
      case StageKind::Buf:
        pid = nl.buf("BUF" + tag, from_ns(st.dmin_ns), from_ns(st.dmax_ns), cur, out);
        break;
      case StageKind::Inv:
        pid = nl.not_gate("INV" + tag, from_ns(st.dmin_ns), from_ns(st.dmax_ns), cur, out);
        break;
      case StageKind::MuxFastSlow: {
        Ref fast = nl.ref("F" + tag);
        Ref slow = nl.ref("S" + tag);
        nl.buf("FB" + tag, from_ns(st.dmin_ns), from_ns(st.dmax_ns), cur, fast);
        nl.buf("SB" + tag, from_ns(st.slow_min_ns), from_ns(st.slow_max_ns), cur, slow);
        Ref sel = fresh_control();
        pid = nl.mux2("MX" + tag, 0, 0, sel, fast, slow, out);
        break;
      }
      case StageKind::AndEnable:
        pid = nl.and_gate("AG" + tag, from_ns(st.dmin_ns), from_ns(st.dmax_ns),
                          {cur, fresh_control()}, out);
        break;
      case StageKind::OrMask:
        pid = nl.or_gate("OG" + tag, from_ns(st.dmin_ns), from_ns(st.dmax_ns),
                         {cur, fresh_control()}, out);
        break;
      case StageKind::Xor2:
        pid = nl.xor_gate("XG" + tag, from_ns(st.dmin_ns), from_ns(st.dmax_ns),
                          {cur, fresh_control()}, out);
        break;
    }
    apply_stage_extras(st, pid, out);
    cur = out;
  }

  Ref ck = nl.ref(clock_assertion(spec));
  c.clock_in = ck.id;
  Ref sink_ck = ck;
  if (spec.clock.gated) {
    Ref gen;
    if (spec.clock.enable_from_path) {
      gen = cur;
    } else if (spec.clock.directive == 'A' || spec.clock.directive == 'H') {
      gen = fresh_control();
    } else {
      gen = nl.ref(fmt("GEN .C%d-%d", spec.clock.enable_rise_units, spec.clock.enable_fall_units));
      c.gate_enable = gen.id;
    }
    Ref ck_pin = ck;
    if (spec.clock.directive != '\0') ck_pin.directives = std::string(1, spec.clock.directive);
    Ref ckg = nl.ref("CKG");
    nl.and_gate("GCLK", from_ns(1), from_ns(2), {ck_pin, gen}, ckg);
    sink_ck = ckg;
  }

  bool latch = spec.sink == SinkKind::Latch || spec.sink == SinkKind::LatchSR;
  if (latch) {
    nl.setup_rise_hold_fall_chk("CHK", from_ns(spec.setup_ns), from_ns(spec.hold_ns), cur,
                                sink_ck);
  } else {
    nl.setup_hold_chk("CHK", from_ns(spec.setup_ns), from_ns(spec.hold_ns), cur, sink_ck);
  }

  Ref q = nl.ref("Q");
  Time sdmin = from_ns(spec.sink_dmin_ns), sdmax = from_ns(spec.sink_dmax_ns);
  switch (spec.sink) {
    case SinkKind::Reg:
      nl.reg("RG", sdmin, sdmax, cur, sink_ck, q);
      break;
    case SinkKind::RegSR:
      nl.reg_sr("RG", sdmin, sdmax, cur, sink_ck, fresh_control(), fresh_control(), q);
      break;
    case SinkKind::Latch:
      nl.latch("LT", sdmin, sdmax, cur, sink_ck, q);
      break;
    case SinkKind::LatchSR:
      nl.latch_sr("LT", sdmin, sdmax, cur, sink_ck, fresh_control(), fresh_control(), q);
      break;
  }

  if (spec.second_stage) {
    Ref qb = nl.ref("QB");
    nl.buf("QBUF", from_ns(1), from_ns(3), q, qb);
    Ref ck2 = ck;
    if (spec.stage2_edge_units > 0) {
      ck2 = nl.ref(fmt("CK2 .P%d-%d", spec.stage2_edge_units,
                       spec.stage2_edge_units + spec.clock.high_units));
      c.clock2_in = ck2.id;
    }
    nl.setup_hold_chk("CHK2", from_ns(spec.setup_ns), from_ns(spec.hold_ns), qb, ck2);
    nl.reg("RG2", sdmin, sdmax, qb, ck2, nl.ref("Q2"));
  }

  nl.finalize();

  if (spec.with_case && !c.controls.empty()) {
    c.case_control = 0;
    SignalId pin = c.controls[0];
    c.cases.push_back(CaseSpec{"CTL0=0", {{pin, Value::Zero}}});
    c.cases.push_back(CaseSpec{"CTL0=1", {{pin, Value::One}}});
  }
  return c;
}

std::string to_cpp(const CircuitSpec& s) {
  std::string out;
  out += "    tv::check::CircuitSpec s;\n";
  out += fmt("    s.seed = %lluULL;\n", static_cast<unsigned long long>(s.seed));
  out += fmt("    s.period_ns = %d; s.data_toggle_ns = %d; s.data_change_ns = %d;\n",
             s.period_ns, s.data_toggle_ns, s.data_change_ns);
  for (const StageSpec& st : s.stages) {
    const char* kind = st.kind == StageKind::Buf           ? "Buf"
                       : st.kind == StageKind::Inv         ? "Inv"
                       : st.kind == StageKind::MuxFastSlow ? "MuxFastSlow"
                       : st.kind == StageKind::AndEnable   ? "AndEnable"
                       : st.kind == StageKind::OrMask      ? "OrMask"
                                                           : "Xor2";
    out += fmt(
        "    s.stages.push_back({tv::check::StageKind::%s, %d, %d, %d, %d, %s, %d, %d});\n",
        kind, st.dmin_ns, st.dmax_ns, st.slow_min_ns, st.slow_max_ns,
        st.rise_fall ? "true" : "false", st.fall_extra_ns, st.wire_max_ns);
  }
  const char* sink = s.sink == SinkKind::Reg     ? "Reg"
                     : s.sink == SinkKind::RegSR ? "RegSR"
                     : s.sink == SinkKind::Latch ? "Latch"
                                                 : "LatchSR";
  out += fmt("    s.sink = tv::check::SinkKind::%s;\n", sink);
  out += fmt(
      "    s.clock = {%d, %d, %d, %d, %s, %s, '%s', %s, %d, %d};\n", s.clock.edge_units,
      s.clock.high_units, s.clock.skew_minus_ns, s.clock.skew_plus_ns,
      s.clock.precision ? "true" : "false", s.clock.gated ? "true" : "false",
      s.clock.directive == '\0' ? "\\0" : std::string(1, s.clock.directive).c_str(),
      s.clock.enable_from_path ? "true" : "false", s.clock.enable_rise_units,
      s.clock.enable_fall_units);
  out += fmt("    s.sink_dmin_ns = %d; s.sink_dmax_ns = %d;\n", s.sink_dmin_ns, s.sink_dmax_ns);
  out += fmt("    s.setup_ns = %d; s.hold_ns = %d;\n", s.setup_ns, s.hold_ns);
  out += fmt("    s.second_stage = %s; s.stage2_edge_units = %d; s.with_case = %s;\n",
             s.second_stage ? "true" : "false", s.stage2_edge_units,
             s.with_case ? "true" : "false");
  return out;
}

}  // namespace tv::check
