#include "check/incr_diff.hpp"

#include <sstream>

#include "core/compiled.hpp"
#include "core/verifier.hpp"
#include "diag/diagnostic.hpp"

namespace tv::check {

namespace {

/// Everything observable about one verification, except the cumulative
/// evaluation-effort counters (the one sanctioned asymmetry) and the
/// free-text degradation messages (identity is scoped to non-degrading
/// runs; the partial/degraded *flags* are still compared).
std::string render_identity(const Netlist& nl, const VerifyResult& r) {
  std::ostringstream os;
  os << "converged=" << r.converged << " partial=" << r.partial << '\n';
  os << timing_summary(nl);
  os << violations_report(r.violations);
  for (const auto& c : r.cases) {
    os << "case " << c.name << " events=" << c.events << " converged=" << c.converged
       << " degraded=" << c.degraded << '\n'
       << violations_report(c.violations);
  }
  os << "xref:";
  for (SignalId id : r.cross_reference) os << ' ' << id;
  os << '\n';
  return os.str();
}

void add_prim_param_edit(Rng& rng, const Netlist& nl, NetlistDelta& delta) {
  PrimId pid = static_cast<PrimId>(rng.range(0, static_cast<int>(nl.num_prims()) - 1));
  const Primitive& p = nl.prim(pid);
  NetlistDelta::PrimEdit e;
  e.prim = pid;
  switch (p.kind) {
    case PrimKind::SetupHoldChk:
    case PrimKind::SetupRiseHoldFallChk:
      e.setup_hold = {from_ns(rng.range(0, 6)), from_ns(rng.range(-2, 3))};
      break;
    case PrimKind::MinPulseWidthChk: {
      Time hi = from_ns(rng.range(0, 8));
      e.min_pulse = {hi, rng.chance(50) ? hi : from_ns(rng.range(0, 8))};
      break;
    }
    default: {
      if (rng.chance(70)) {
        Time lo = from_ns(rng.range(0, 6));
        e.delay = {lo, lo + from_ns(rng.range(0, 4))};
      }
      if (rng.chance(25)) {
        if (p.rise_fall && rng.chance(50)) {
          e.clear_rise_fall = true;
        } else {
          e.set_rise_fall = true;
          Time rl = from_ns(rng.range(0, 4));
          Time fl = from_ns(rng.range(0, 4));
          e.rise_fall = {rl, rl + from_ns(rng.range(0, 3)), fl,
                         fl + from_ns(rng.range(0, 3))};
        }
      }
      break;
    }
  }
  delta.prims.push_back(std::move(e));
}

void add_pin_edit(Rng& rng, const Netlist& nl, NetlistDelta& delta) {
  PrimId pid = static_cast<PrimId>(rng.range(0, static_cast<int>(nl.num_prims()) - 1));
  const Primitive& p = nl.prim(pid);
  NetlistDelta::PinEdit e;
  e.prim = pid;
  e.input = static_cast<std::size_t>(
      rng.range(0, static_cast<int>(p.inputs.size()) - 1));
  // Any signal is a legal target -- including the primitive's own output,
  // which closes a loop and must force the cold fallback.
  e.sig = static_cast<SignalId>(rng.range(0, static_cast<int>(nl.num_signals()) - 1));
  e.invert = rng.chance(20);
  e.directives = p.inputs[e.input].directives;  // keep the evaluation string
  delta.pins.push_back(std::move(e));
}

void add_wire_edit(Rng& rng, const Netlist& nl, NetlistDelta& delta) {
  NetlistDelta::WireEdit e;
  e.sig = static_cast<SignalId>(rng.range(0, static_cast<int>(nl.num_signals()) - 1));
  if (rng.chance(65)) {
    Time lo = from_ns(rng.range(0, 3));
    e.wire = WireDelay{lo, lo + from_ns(rng.range(0, 4))};
  }
  delta.wires.push_back(std::move(e));
}

bool add_assertion_edit(Rng& rng, const Netlist& nl, NetlistDelta& delta) {
  SignalId sig =
      static_cast<SignalId>(rng.range(0, static_cast<int>(nl.num_signals()) - 1));
  const Signal& s = nl.signal(sig);
  Assertion a;
  int pick = rng.range(0, s.driver == kNoPrim ? 3 : 1);
  switch (pick) {
    case 0:
      a.kind = Assertion::Kind::None;
      break;
    case 1: {
      a.kind = Assertion::Kind::Stable;
      double begin = rng.range(0, 6);
      a.ranges.push_back({begin, begin + rng.range(1, 5), std::nullopt});
      break;
    }
    default: {
      // Clock assertions are only legal on undriven signals.
      a.kind = pick == 2 ? Assertion::Kind::PrecisionClock : Assertion::Kind::Clock;
      double begin = rng.range(0, 8);
      a.ranges.push_back({begin, begin + rng.range(1, 6), std::nullopt});
      a.active_low = rng.chance(20);
      if (rng.chance(30)) a.skew_ns = {-static_cast<double>(rng.range(0, 2)), rng.range(0, 2)};
      break;
    }
  }
  std::string text = assertion_to_text(a);
  std::string full = text.empty() ? s.base_name : s.base_name + " " + text;
  // The rename must not collide with another signal (apply_delta would
  // reject the whole delta); skip the edit instead.
  SignalId taken = nl.find(full);
  if (taken != kNoSignal && taken != sig) return false;
  delta.assertions.push_back({sig, std::move(a), s.base_name, std::move(full)});
  return true;
}

void add_case_edit(Rng& rng, const Netlist& nl, const std::vector<CaseSpec>& cases,
                   NetlistDelta& delta) {
  NetlistDelta::CaseEdit e;
  if (!cases.empty() && rng.chance(55)) {
    const CaseSpec& victim = cases[static_cast<std::size_t>(
        rng.range(0, static_cast<int>(cases.size()) - 1))];
    e.name = victim.name;
    if (rng.chance(40)) {
      delta.cases.push_back(std::move(e));  // removal
      return;
    }
    CaseSpec spec = victim;
    if (!spec.pins.empty()) {
      Value& val = spec.pins[static_cast<std::size_t>(
                                 rng.range(0, static_cast<int>(spec.pins.size()) - 1))]
                       .second;
      val = val == Value::Zero ? Value::One : Value::Zero;
    }
    e.spec = std::move(spec);
    delta.cases.push_back(std::move(e));
    return;
  }
  // Add a fresh case pinning 1-2 undriven signals.
  std::vector<SignalId> undriven;
  for (SignalId s = 0; s < nl.num_signals(); ++s) {
    if (nl.signal(s).driver == kNoPrim) undriven.push_back(s);
  }
  if (undriven.empty()) return;
  CaseSpec spec;
  spec.name = "fz" + std::to_string(rng.range(0, 9999));
  for (const CaseSpec& c : cases) {
    if (c.name == spec.name) return;  // keep add/replace semantics unambiguous
  }
  int pins = rng.range(1, 2);
  for (int i = 0; i < pins; ++i) {
    SignalId s = undriven[static_cast<std::size_t>(
        rng.range(0, static_cast<int>(undriven.size()) - 1))];
    spec.pins.emplace_back(s, rng.chance(50) ? Value::One : Value::Zero);
  }
  e.name = spec.name;
  e.spec = std::move(spec);
  if (rng.chance(30) && !cases.empty()) {
    e.at = static_cast<std::size_t>(rng.range(0, static_cast<int>(cases.size())));
  }
  delta.cases.push_back(std::move(e));
}

}  // namespace

NetlistDelta random_delta(Rng& rng, const Netlist& nl,
                          const std::vector<CaseSpec>& cases) {
  NetlistDelta delta;
  if (nl.num_prims() == 0 || nl.num_signals() == 0) return delta;
  int edits = rng.range(1, 3);
  bool used_assertion = false, used_case = false;
  for (int i = 0; i < edits; ++i) {
    switch (rng.range(0, 4)) {
      case 0: add_prim_param_edit(rng, nl, delta); break;
      case 1: add_pin_edit(rng, nl, delta); break;
      case 2: add_wire_edit(rng, nl, delta); break;
      case 3:
        // At most one rename per delta: the generator's collision check
        // cannot see names claimed by a sibling edit.
        if (!used_assertion) used_assertion = add_assertion_edit(rng, nl, delta);
        break;
      default:
        if (!used_case) {
          add_case_edit(rng, nl, cases, delta);
          used_case = true;
        }
        break;
    }
  }
  return delta;
}

std::optional<Failure> check_incr_equivalence(const CircuitSpec& spec,
                                              const IncrDiffOptions& opts) {
  std::uint64_t edit_seed =
      opts.edit_seed ? opts.edit_seed
                     : spec.seed * 0x9E3779B97F4A7C15ULL + 0x6C62272E07BB0142ULL;

  // When exercising the --compiled front end, serialize the circuit once;
  // both worlds then load from the same artifact bytes so their id spaces
  // and pre-interned seed arenas match a real .tvc run.
  std::string artifact;
  if (opts.compiled) {
    BuiltCircuit bc = build(spec);
    CompiledSummary summary;
    summary.primitives = bc.nl.num_prims();
    summary.unique_signals = bc.nl.num_signals();
    CompiledDesign d = compile_design("FUZZ", bc.nl, bc.opts, bc.cases, summary);
    artifact = serialize_compiled(d);
  }

  // Materializes a pristine world: netlist + options + cases, front end per
  // opts.compiled. Returns false on a load failure (harness bug).
  std::optional<CompiledDesign> loaded;  // keeps the compiled netlist alive
  std::optional<BuiltCircuit> built;
  auto fresh_world = [&](Netlist*& nl, VerifierOptions& vopts,
                         std::vector<CaseSpec>& cases,
                         const CompiledDesign** seeds) -> bool {
    if (opts.compiled) {
      diag::DiagnosticEngine diags;
      loaded = load_compiled(artifact, "<memory>", diags);
      if (!loaded) return false;
      nl = &loaded->netlist;
      vopts = loaded->options;
      cases = loaded->cases;
      if (seeds) *seeds = &*loaded;
    } else {
      built.emplace(build(spec));
      nl = &built->nl;
      vopts = built->opts;
      cases = built->cases;
      if (seeds) *seeds = nullptr;
    }
    return true;
  };

  // World A: one long-lived Verifier, edits applied via reverify.
  std::optional<CompiledDesign> loaded_a;
  std::optional<BuiltCircuit> built_a;
  Netlist* nl_a = nullptr;
  VerifierOptions vopts_a;
  std::vector<CaseSpec> cases_a;
  const CompiledDesign* seeds_a = nullptr;
  if (!fresh_world(nl_a, vopts_a, cases_a, &seeds_a)) {
    return Failure{"incr-harness", "seed " + std::to_string(spec.seed) +
                                       ": compiled artifact failed to load"};
  }
  loaded_a = std::move(loaded);
  built_a = std::move(built);
  if (opts.compiled) {
    nl_a = &loaded_a->netlist;
    seeds_a = &*loaded_a;
  } else {
    nl_a = &built_a->nl;
  }
  Verifier va(*nl_a, vopts_a);
  if (seeds_a && va.evaluator().intern_context()) {
    preintern_seeds(*seeds_a, va.evaluator().intern_context()->table);
  }
  va.verify(cases_a);

  std::vector<NetlistDelta> script;
  Rng rng(edit_seed);
  for (int step = 1; step <= opts.steps; ++step) {
    NetlistDelta delta = random_delta(rng, *nl_a, va.baseline_cases());
    script.push_back(delta);

    VerifyResult r_incr;
    ReverifyStats st;
    try {
      r_incr = va.reverify(delta, &st);
    } catch (const std::exception& e) {
      return Failure{"incr-apply-throw",
                     "seed " + std::to_string(spec.seed) + " edit_seed " +
                         std::to_string(edit_seed) + " step " +
                         std::to_string(step) +
                         ": reverify threw on a generated delta: " + e.what()};
    }
    std::string ident_incr = render_identity(*nl_a, r_incr);

    // Cold world: pristine build, the whole delta prefix applied at once,
    // then a from-scratch verify.
    Netlist* nl_b = nullptr;
    VerifierOptions vopts_b;
    std::vector<CaseSpec> cases_b;
    const CompiledDesign* seeds_b = nullptr;
    if (!fresh_world(nl_b, vopts_b, cases_b, &seeds_b)) {
      return Failure{"incr-harness", "seed " + std::to_string(spec.seed) +
                                         ": compiled artifact failed to reload"};
    }
    try {
      for (const NetlistDelta& d : script) apply_delta(*nl_b, cases_b, d);
    } catch (const std::exception& e) {
      return Failure{"incr-apply-throw",
                     "seed " + std::to_string(spec.seed) + " edit_seed " +
                         std::to_string(edit_seed) + " step " +
                         std::to_string(step) +
                         ": cold apply_delta threw on a replayed delta: " + e.what()};
    }
    if (!nl_b->finalized()) nl_b->finalize();
    Verifier vb(*nl_b, vopts_b);
    if (seeds_b && vb.evaluator().intern_context()) {
      preintern_seeds(*seeds_b, vb.evaluator().intern_context()->table);
    }
    VerifyResult r_cold = vb.verify(cases_b);
    std::string ident_cold = render_identity(*nl_b, r_cold);

    if (ident_incr != ident_cold) {
      std::ostringstream os;
      os << "seed " << spec.seed << " edit_seed " << edit_seed << " step " << step
         << " (" << (st.incremental ? "incremental" : "fell back: " + st.fallback_reason)
         << ", " << st.cases_reevaluated << " case(s) re-run, " << st.cases_spliced
         << " spliced): reports diverge\n--- incremental ---\n"
         << ident_incr << "--- cold ---\n"
         << ident_cold;
      return Failure{"incr-diff", os.str()};
    }
  }
  return std::nullopt;
}

}  // namespace tv::check
