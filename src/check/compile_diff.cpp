// The compiled-artifact differential oracle: a design round-tripped through
// the scaldtvc binary artifact (core/compiled.hpp) must verify
// bit-identically to the in-memory original -- same waveforms, same event
// counts, same convergence verdicts, same violation reports, for the
// baseline and every case. Any divergence is a serialization bug (a field
// dropped or re-ordered, a waveform re-canonicalized differently, a signal
// index shifted by the synonym-orphan layout). The oracle also demands that
// serialization is deterministic: compiling the same design twice must
// yield byte-identical artifacts, the property the CI determinism check
// and artifact content hashes rest on.
#include <sstream>

#include "check/oracles.hpp"
#include "core/compiled.hpp"
#include "core/verifier.hpp"
#include "diag/diagnostic.hpp"

namespace tv::check {

namespace {

struct RunResult {
  std::size_t base_events = 0;
  bool converged = true;
  bool partial = false;
  std::string base_report;
  std::string summary;  // timing_summary: every waveform + skew + eval string
  std::vector<std::string> case_lines;
};

RunResult run_circuit(Netlist& nl, const VerifierOptions& opts,
                      const std::vector<CaseSpec>& cases) {
  Verifier v(nl, opts);
  VerifyResult r = v.verify(cases);
  RunResult out;
  out.base_events = r.base_events;
  out.converged = r.converged;
  out.partial = r.partial;
  out.base_report = violations_report(r.violations);
  out.summary = timing_summary(nl);
  for (const auto& c : r.cases) {
    std::ostringstream os;
    os << c.name << " events=" << c.events << " converged=" << c.converged
       << " degraded=" << c.degraded << "\n"
       << violations_report(c.violations);
    out.case_lines.push_back(os.str());
  }
  return out;
}

}  // namespace

std::optional<Failure> check_compile_equivalence(const CircuitSpec& spec) {
  auto fail = [&](const std::string& what, const std::string& a,
                  const std::string& b) {
    std::ostringstream os;
    os << "seed " << spec.seed << ": " << what
       << " diverges between source and compiled artifact\n--- source ---\n"
       << a << "\n--- compiled ---\n" << b;
    return Failure{"compile-diff", os.str()};
  };

  // Source-path reference run (on a fresh build; verification mutates
  // signal waveforms, so the compile below uses its own build too).
  BuiltCircuit ref = build(spec);
  RunResult src = run_circuit(ref.nl, ref.opts, ref.cases);

  // Compile a pristine build of the same spec, serialize, and reload.
  BuiltCircuit bc = build(spec);
  CompiledSummary summary;
  summary.primitives = bc.nl.num_prims();
  summary.unique_signals = bc.nl.num_signals();
  CompiledDesign design =
      compile_design("FUZZ", bc.nl, bc.opts, bc.cases, summary);
  std::string bytes = serialize_compiled(design);
  if (std::string again = serialize_compiled(design); again != bytes) {
    return Failure{"compile-diff",
                   "seed " + std::to_string(spec.seed) +
                       ": serializing the same design twice produced "
                       "different bytes (non-deterministic artifact)"};
  }

  diag::DiagnosticEngine diags;
  std::optional<CompiledDesign> loaded = load_compiled(bytes, "<memory>", diags);
  if (!loaded) {
    std::ostringstream os;
    os << "seed " << spec.seed
       << ": round-trip load of a freshly serialized artifact failed";
    for (const auto& d : diags.diagnostics()) os << "\n  " << d.message;
    return Failure{"compile-diff", os.str()};
  }
  RunResult cmp = run_circuit(loaded->netlist, loaded->options, loaded->cases);

  if (src.base_events != cmp.base_events) {
    return fail("base event count", std::to_string(src.base_events),
                std::to_string(cmp.base_events));
  }
  if (src.converged != cmp.converged) {
    return fail("convergence", src.converged ? "yes" : "no",
                cmp.converged ? "yes" : "no");
  }
  if (src.partial != cmp.partial) {
    return fail("partial flag", src.partial ? "yes" : "no",
                cmp.partial ? "yes" : "no");
  }
  if (src.summary != cmp.summary) {
    return fail("timing summary (waveforms)", src.summary, cmp.summary);
  }
  if (src.base_report != cmp.base_report) {
    return fail("base violation report", src.base_report, cmp.base_report);
  }
  if (src.case_lines.size() != cmp.case_lines.size()) {
    return fail("case count", std::to_string(src.case_lines.size()),
                std::to_string(cmp.case_lines.size()));
  }
  for (std::size_t i = 0; i < src.case_lines.size(); ++i) {
    if (src.case_lines[i] != cmp.case_lines[i]) {
      return fail("case result", src.case_lines[i], cmp.case_lines[i]);
    }
  }
  return std::nullopt;
}

}  // namespace tv::check
