#include "check/shrinker.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace tv::check {

namespace {

template <typename Spec, typename Pred>
bool safe_fails(const Spec& s, const Pred& pred, int& budget) {
  if (budget <= 0) return false;
  --budget;
  try {
    return pred(s);
  } catch (...) {
    return false;
  }
}

/// Shrink candidates for one integer field: toward zero (or the given
/// floor), by halving and by decrement.
void int_candidates(int v, int floor_val, std::vector<int>& out) {
  out.clear();
  if (v <= floor_val) return;
  out.push_back(floor_val);
  if ((floor_val + v) / 2 != v && (floor_val + v) / 2 != floor_val) {
    out.push_back((floor_val + v) / 2);
  }
  out.push_back(v - 1);
}

}  // namespace

CircuitSpec shrink_circuit(const CircuitSpec& failing, const CircuitPred& still_fails,
                           int max_checks) {
  CircuitSpec best = failing;
  int budget = max_checks;
  bool improved = true;
  std::vector<int> cands;

  auto try_spec = [&](CircuitSpec s) {
    if (safe_fails(s, still_fails, budget)) {
      best = std::move(s);
      improved = true;
      return true;
    }
    return false;
  };
  auto try_int = [&](int CircuitSpec::* field, int floor_val) {
    int_candidates(best.*field, floor_val, cands);
    for (int v : cands) {
      CircuitSpec s = best;
      s.*field = v;
      if (try_spec(std::move(s))) return;
    }
  };

  while (improved && budget > 0) {
    improved = false;

    // Structural simplifications first: they remove the most at once.
    for (std::size_t i = 0; i < best.stages.size(); ++i) {
      CircuitSpec s = best;
      s.stages.erase(s.stages.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_spec(std::move(s))) break;
    }
    for (std::size_t i = 0; i < best.stages.size(); ++i) {
      if (best.stages[i].kind == StageKind::Buf) continue;
      CircuitSpec s = best;
      s.stages[i].kind = StageKind::Buf;
      if (try_spec(std::move(s))) break;
    }
    if (best.second_stage) {
      CircuitSpec s = best;
      s.second_stage = false;
      s.stage2_edge_units = 0;
      try_spec(std::move(s));
    }
    if (best.with_case) {
      CircuitSpec s = best;
      s.with_case = false;
      try_spec(std::move(s));
    }
    if (best.clock.gated) {
      CircuitSpec s = best;
      s.clock.gated = false;
      s.clock.directive = '\0';
      s.clock.enable_from_path = false;
      try_spec(std::move(s));
    }
    if (best.clock.directive != '\0') {
      CircuitSpec s = best;
      s.clock.directive = '\0';
      s.clock.enable_from_path = false;
      try_spec(std::move(s));
    }
    if (best.clock.enable_from_path) {
      CircuitSpec s = best;
      s.clock.enable_from_path = false;
      try_spec(std::move(s));
    }
    if (best.sink != SinkKind::Reg) {
      CircuitSpec s = best;
      s.sink = best.sink == SinkKind::LatchSR ? SinkKind::Latch : SinkKind::Reg;
      try_spec(std::move(s));
    }
    if (best.clock.skew_minus_ns != 0 || best.clock.skew_plus_ns != 0) {
      CircuitSpec s = best;
      s.clock.skew_minus_ns = 0;
      s.clock.skew_plus_ns = 0;
      try_spec(std::move(s));
    }
    if (!best.clock.precision) {
      CircuitSpec s = best;
      s.clock.precision = true;
      try_spec(std::move(s));
    }

    // Per-stage field simplifications.
    for (std::size_t i = 0; i < best.stages.size(); ++i) {
      StageSpec st = best.stages[i];
      std::vector<StageSpec> variants;
      if (st.rise_fall) {
        StageSpec v = st;
        v.rise_fall = false;
        v.fall_extra_ns = 0;
        variants.push_back(v);
      }
      if (st.fall_extra_ns > 0) {
        StageSpec v = st;
        v.fall_extra_ns /= 2;
        variants.push_back(v);
      }
      if (st.wire_max_ns > 0) {
        StageSpec v = st;
        v.wire_max_ns = 0;
        variants.push_back(v);
      }
      if (st.dmax_ns > st.dmin_ns) {
        StageSpec v = st;
        v.dmax_ns = v.dmin_ns;
        variants.push_back(v);
      }
      if (st.dmin_ns > 0) {
        StageSpec v = st;
        v.dmin_ns = 0;
        v.dmax_ns = std::max(0, v.dmax_ns - st.dmin_ns);
        variants.push_back(v);
      }
      if (st.slow_max_ns > st.slow_min_ns) {
        StageSpec v = st;
        v.slow_max_ns = v.slow_min_ns;
        variants.push_back(v);
      }
      bool took = false;
      for (const StageSpec& v : variants) {
        CircuitSpec s = best;
        s.stages[i] = v;
        if (try_spec(std::move(s))) {
          took = true;
          break;
        }
      }
      if (took) break;
    }

    // Plain integer fields.
    try_int(&CircuitSpec::hold_ns, 0);
    try_int(&CircuitSpec::setup_ns, 1);
    try_int(&CircuitSpec::sink_dmax_ns, 1);
    try_int(&CircuitSpec::sink_dmin_ns, 1);
    try_int(&CircuitSpec::data_change_ns, 1);
    try_int(&CircuitSpec::data_toggle_ns, 2);
    try_int(&CircuitSpec::stage2_edge_units, 0);
    try_int(&CircuitSpec::period_ns, 40);
    {
      int_candidates(best.clock.edge_units, 3, cands);
      for (int v : cands) {
        CircuitSpec s = best;
        s.clock.edge_units = v;
        if (try_spec(std::move(s))) break;
      }
      int_candidates(best.clock.high_units, 2, cands);
      for (int v : cands) {
        CircuitSpec s = best;
        s.clock.high_units = v;
        if (try_spec(std::move(s))) break;
      }
      int_candidates(best.clock.enable_fall_units, 0, cands);
      for (int v : cands) {
        CircuitSpec s = best;
        s.clock.enable_fall_units = v;
        if (try_spec(std::move(s))) break;
      }
      int_candidates(best.clock.enable_rise_units, 0, cands);
      for (int v : cands) {
        CircuitSpec s = best;
        s.clock.enable_rise_units = v;
        if (try_spec(std::move(s))) break;
      }
    }
  }
  return best;
}

WaveCase shrink_wave(const WaveCase& failing, const WavePred& still_fails, int max_checks) {
  WaveCase best = failing;
  int budget = max_checks;
  bool improved = true;
  std::vector<int> cands;

  auto try_case = [&](WaveCase w) {
    if (safe_fails(w, still_fails, budget)) {
      best = std::move(w);
      improved = true;
      return true;
    }
    return false;
  };
  auto try_int = [&](int WaveCase::* field, int floor_val) {
    int_candidates(best.*field, floor_val, cands);
    for (int v : cands) {
      WaveCase w = best;
      w.*field = v;
      if (try_case(std::move(w))) return;
    }
  };

  while (improved && budget > 0) {
    improved = false;
    for (std::size_t i = 0; i < best.base.ops.size(); ++i) {
      WaveCase w = best;
      w.base.ops.erase(w.base.ops.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_case(std::move(w))) break;
    }
    for (std::size_t i = 0; i < best.base.ops.size(); ++i) {
      const WaveOp& op = best.base.ops[i];
      std::vector<WaveOp> variants;
      if (op.value != 'S') {
        WaveOp v = op;
        v.value = 'S';
        variants.push_back(v);
      }
      if (op.width_ns > 1) {
        WaveOp v = op;
        v.width_ns /= 2;
        variants.push_back(v);
        v = op;
        v.width_ns = 1;
        variants.push_back(v);
      }
      if (op.at_ns > 0) {
        WaveOp v = op;
        v.at_ns /= 2;
        variants.push_back(v);
      }
      bool took = false;
      for (const WaveOp& v : variants) {
        WaveCase w = best;
        w.base.ops[i] = v;
        if (try_case(std::move(w))) {
          took = true;
          break;
        }
      }
      if (took) break;
    }
    if (best.base.fill != 'S') {
      WaveCase w = best;
      w.base.fill = 'S';
      try_case(std::move(w));
    }
    {
      int_candidates(best.base.skew_ns, 0, cands);
      for (int v : cands) {
        WaveCase w = best;
        w.base.skew_ns = v;
        if (try_case(std::move(w))) break;
      }
      int_candidates(best.base.period_ns, 15, cands);
      for (int v : cands) {
        WaveCase w = best;
        w.base.period_ns = v;
        if (try_case(std::move(w))) break;
      }
    }
    // Collapse each delay range toward its minimum, then the minima toward 0.
    if (best.rise_max_ns > best.rise_min_ns) {
      WaveCase w = best;
      w.rise_max_ns = w.rise_min_ns;
      try_case(std::move(w));
    }
    if (best.fall_max_ns > best.fall_min_ns) {
      WaveCase w = best;
      w.fall_max_ns = w.fall_min_ns;
      try_case(std::move(w));
    }
    try_int(&WaveCase::rise_min_ns, 0);
    try_int(&WaveCase::rise_max_ns, 0);
    try_int(&WaveCase::fall_min_ns, 0);
    try_int(&WaveCase::fall_max_ns, 0);
    try_int(&WaveCase::d1_min_ns, 0);
    try_int(&WaveCase::d1_max_ns, 0);
    try_int(&WaveCase::d2_min_ns, 0);
    try_int(&WaveCase::d2_max_ns, 0);
  }
  // Keep ranges well-formed for the emitted repro.
  best.rise_max_ns = std::max(best.rise_max_ns, best.rise_min_ns);
  best.fall_max_ns = std::max(best.fall_max_ns, best.fall_min_ns);
  best.d1_max_ns = std::max(best.d1_max_ns, best.d1_min_ns);
  best.d2_max_ns = std::max(best.d2_max_ns, best.d2_min_ns);
  return best;
}

namespace {
std::string test_name(const std::string& kind) {
  std::string out;
  bool cap = true;
  for (char ch : kind) {
    if (ch == '-' || ch == '_' || ch == ' ') {
      cap = true;
      continue;
    }
    out += cap ? static_cast<char>(std::toupper(static_cast<unsigned char>(ch))) : ch;
    cap = false;
  }
  return out.empty() ? "Oracle" : out;
}
}  // namespace

std::string gtest_repro(const CircuitSpec& spec, const std::string& oracle_kind) {
  std::ostringstream os;
  os << "TEST(CheckRegression, " << test_name(oracle_kind) << "Seed" << spec.seed << ") {\n";
  os << to_cpp(spec);
  os << "    auto fail = tv::check::check_conservatism(s);\n";
  os << "    ASSERT_FALSE(fail.has_value()) << fail->kind << \": \" << fail->detail;\n";
  os << "}\n";
  return os.str();
}

std::string gtest_repro(const WaveCase& wc, const std::string& oracle_kind) {
  std::ostringstream os;
  os << "TEST(CheckRegression, " << test_name(oracle_kind) << "Seed" << wc.seed << ") {\n";
  os << to_cpp(wc);
  os << "    auto fail = tv::check::check_wave_algebra(w);\n";
  os << "    ASSERT_FALSE(fail.has_value()) << fail->kind << \": \" << fail->detail;\n";
  os << "}\n";
  return os.str();
}

}  // namespace tv::check
