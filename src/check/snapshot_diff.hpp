// The fixpoint-snapshot differential oracle (docs/recovery.md; tvfuzz
// --snapshot-diff).
//
// For each seeded random circuit the oracle proves the durable-fixpoint
// contract of core/fixpoint.hpp end to end:
//
//   * determinism -- serializing the same baseline twice yields
//     byte-identical snapshot blobs (a snapshot can be content-addressed
//     and diffed);
//   * round trip -- a snapshot written by one Verifier loads cleanly and
//     restores into a fresh Verifier over a freshly built world, with the
//     restored baseline (waveforms, reports, case blocks, cross-reference,
//     convergence flags, AND the evaluation-effort counters) byte-identical
//     to the writer's;
//   * warm equivalence -- a K-step random edit script (check/incr_diff.hpp's
//     random_delta) replayed via Verifier::reverify on both the writer and
//     the restored verifier produces byte-identical reports after every
//     step, effort counters included: the restored process never pays the
//     cold baseline, and its incremental engine takes the same
//     incremental-vs-fallback decisions;
//   * re-snapshot stability -- after every step the two verifiers serialize
//     to byte-identical snapshots (restore loses nothing a later snapshot
//     would need).
//
// With `compiled` set the circuit is first round-tripped through the
// scaldtvc artifact, so the snapshot is exercised with a real artifact
// content hash bound into its BIND section.
#pragma once

#include <cstdint>
#include <optional>

#include "check/oracles.hpp"
#include "check/rand_netlist.hpp"

namespace tv::check {

struct SnapshotDiffOptions {
  /// Seed for the edit script; 0 derives it from the circuit seed (same
  /// derivation as --incr-diff so shrunk repros stay comparable).
  std::uint64_t edit_seed = 0;
  int steps = 3;
  bool compiled = false;  // bind the snapshot to a compiled artifact
};

/// Runs the snapshot differential for one circuit. Returns the first
/// divergence (kinds "snapshot-unstable", "snapshot-reject",
/// "snapshot-restore", "snapshot-baseline-diff", "snapshot-diff",
/// "snapshot-state-diff", "snapshot-harness"), nullopt when clean.
std::optional<Failure> check_snapshot_equivalence(const CircuitSpec& spec,
                                                  const SnapshotDiffOptions& opts = {});

}  // namespace tv::check
