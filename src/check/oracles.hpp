// The two self-checking oracles of the differential harness.
//
// 1. Conservatism oracle (thesis secs. 1.4.1.1, 2.4): the Timing Verifier's
//    one symbolic cycle must *cover* every violation the value-level logic
//    simulator can expose under any input pattern. The oracle enumerates
//    small control patterns, samples concrete delay realizations within each
//    primitive's [dmin, dmax] (per polarity when rise/fall-modeled), samples
//    clock-skew and data-arrival realizations allowed by the assertions, and
//    demands that every steady-state simulator violation is matched by a
//    symbolic violation.
//
// 2. Waveform-algebra oracle: structural invariants of the sec. 2.8 value
//    lists (widths sum to the period, positive widths, merged neighbors),
//    delayed(0,0) identity, delayed() composition, with_skew_incorporated
//    idempotence and soundness against sampled shifts, binary/map pointwise
//    consistency with at(), and a concrete-replay conservatism check of
//    delayed_rise_fall: every independent per-edge delay realization must be
//    covered pointwise by the symbolic result.
//
// Both oracles operate on plain-data specs (CircuitSpec / WaveCase) so
// failures can be shrunk (src/check/shrinker.hpp) and replayed from a
// pasted literal.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/rand_netlist.hpp"

namespace tv::check {

/// One oracle failure: `kind` is a stable machine-readable tag
/// ("conservatism", "case-conservatism", "case-refinement", "unconverged",
/// "canonical-form", "delayed-identity", "delayed-composition",
/// "skew-idempotent", "skew-coverage", "pointwise", "rise-fall-coverage"),
/// `detail` a human-readable account of the witness.
struct Failure {
  std::string kind;
  std::string detail;
};

/// covers(model, reality): true when the symbolic value `model` soundly
/// describes a signal that is actually `reality` at the same instant.
/// UNKNOWN covers everything; CHANGE covers everything but UNKNOWN; RISE and
/// FALL cover {0, 1, STABLE, themselves} (a claimed edge that never fires is
/// pessimistic, never unsound); STABLE covers {0, 1, STABLE}; 0/1 cover only
/// themselves.
bool covers(Value model, Value reality);

struct ConservatismStats {
  int sim_runs = 0;            // concrete simulations executed
  int sim_violating_runs = 0;  // runs that exposed at least one violation
  bool tv_found = false;       // symbolic run reported any violation
};

/// Runs the full differential check for one circuit spec. Returns the first
/// failure found, or nullopt when the verifier covers every sampled reality.
std::optional<Failure> check_conservatism(const CircuitSpec& spec,
                                          ConservatismStats* stats = nullptr);

// --- waveform-algebra fuzzing ----------------------------------------------

/// One set() call applied while materializing a waveform spec.
struct WaveOp {
  int at_ns = 0;
  int width_ns = 1;
  char value = 'S';  // 0 1 S C R F U
};

struct WaveSpec {
  int period_ns = 50;
  char fill = 'S';
  std::vector<WaveOp> ops;
  int skew_ns = 0;
};

Waveform materialize(const WaveSpec& spec);

/// A waveform-algebra differential case: a base waveform plus the delay
/// parameters the invariants are exercised with.
struct WaveCase {
  std::uint64_t seed = 0;  // provenance; also derives the binary-op partner
  WaveSpec base;
  int rise_min_ns = 0, rise_max_ns = 0;
  int fall_min_ns = 0, fall_max_ns = 0;
  int d1_min_ns = 0, d1_max_ns = 0;  // delayed() composition, first hop
  int d2_min_ns = 0, d2_max_ns = 0;  // second hop
};

WaveCase random_wave_case(std::uint64_t seed);
std::optional<Failure> check_wave_algebra(const WaveCase& wc);

// --- interning/memoization differential ------------------------------------

/// Runs the spec's circuit twice -- waveform interning + evaluation
/// memo-cache on, then off -- and fails (kind "memo-diff") on any divergence
/// in waveforms, evaluation strings, event counts, convergence, violation
/// reports, or per-case results. The two modes must be bit-identical; this
/// is tvfuzz's --memo-diff oracle.
std::optional<Failure> check_memo_equivalence(const CircuitSpec& spec);

/// Runs the spec's circuit twice -- batch case evaluation on, then off --
/// and fails (kind "batch-diff") on any divergence in waveforms,
/// disturbed-signal counts, convergence, degradation flags, violation
/// reports, or per-case results. The lockstep sweep must be bit-identical
/// to the per-case reference path; this is tvfuzz's --batch-diff oracle.
std::optional<Failure> check_batch_equivalence(const CircuitSpec& spec);

/// Round-trips the spec's circuit through the compiled-design artifact
/// (core/compiled.hpp): serialize, reload, verify, and fail (kind
/// "compile-diff") on any divergence from the in-memory original in
/// waveforms, event counts, convergence, violation reports, or per-case
/// results -- plus a determinism check that serializing twice yields
/// byte-identical artifacts. This is tvfuzz's --compile-diff oracle.
std::optional<Failure> check_compile_equivalence(const CircuitSpec& spec);

/// Renders the case as C++ statements building a `tv::check::WaveCase w;`.
std::string to_cpp(const WaveCase& wc);

}  // namespace tv::check
