#include "check/oracles.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/verifier.hpp"
#include "sim/logic_sim.hpp"

namespace tv::check {

bool covers(Value model, Value reality) {
  if (model == reality) return true;
  switch (model) {
    case Value::Unknown:
      return true;
    case Value::Change:
      return reality != Value::Unknown;
    case Value::Rise:
    case Value::Fall:
      // At one instant a rising (falling) signal is either still the old
      // level or already the new one; claiming an edge where reality is
      // steady is pessimistic (a possible edge that never fires), so R/F
      // also cover STABLE. They do not cover the opposite edge or CHANGE.
      return reality == Value::Zero || reality == Value::One || reality == Value::Stable;
    case Value::Stable:
      return reality == Value::Zero || reality == Value::One;
    default:
      return false;
  }
}

namespace {

// Mirror of the engine's (internal) Fig 2-9 edge classification, used to
// pick the delay range reality draws from for each boundary.
Value edge_kind(Value a, Value b) {
  if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
  auto up = [](Value x) { return x == Value::Zero || x == Value::Rise; };
  auto up_to = [](Value x) { return x == Value::Rise || x == Value::One; };
  auto down = [](Value x) { return x == Value::One || x == Value::Fall; };
  auto down_to = [](Value x) { return x == Value::Fall || x == Value::Zero; };
  if (up(a) && up_to(b) && a != b) return Value::Rise;
  if (down(a) && down_to(b) && a != b) return Value::Fall;
  return Value::Change;
}

bool is_global_escape(const Violation& v) {
  // A hazard (unstable control under an &A/&H assumption), a violated
  // stable assertion, or non-convergence already tells the designer this
  // clock/data region is outside the verified envelope; any concrete
  // violation in the same circuit counts as covered by it.
  return v.type == Violation::Type::Hazard ||
         v.type == Violation::Type::StableAssertionViolated ||
         v.type == Violation::Type::Unconverged;
}

}  // namespace

std::optional<Failure> check_conservatism(const CircuitSpec& spec, ConservatismStats* stats) {
  ConservatismStats local;
  ConservatismStats& st = stats ? *stats : local;
  st = ConservatismStats{};

  BuiltCircuit c;
  try {
    c = build(spec);
  } catch (const std::exception& e) {
    return Failure{"build-error", e.what()};
  }

  Verifier verifier(c.nl, c.opts);
  VerifyResult r = verifier.verify(c.cases);
  if (!r.converged) return Failure{"unconverged", "base evaluation did not converge"};

  std::set<PrimId> base_prims;
  std::set<std::pair<PrimId, int>> base_pairs;
  bool base_escape = false;
  for (const Violation& bv : r.violations) {
    base_prims.insert(bv.prim);
    base_pairs.insert({bv.prim, static_cast<int>(bv.type)});
    base_escape = base_escape || is_global_escape(bv);
  }
  std::vector<std::set<PrimId>> case_prims(r.cases.size());
  std::vector<char> case_escape(r.cases.size(), 0);
  for (std::size_t i = 0; i < r.cases.size(); ++i) {
    if (!r.cases[i].converged) return Failure{"unconverged", "case did not converge"};
    for (const Violation& cv : r.cases[i].violations) {
      case_prims[i].insert(cv.prim);
      if (is_global_escape(cv)) case_escape[i] = 1;
      // Case analysis restricts the set of realities, so a case may never
      // report a constraint failure the unrestricted base run missed.
      if (!base_pairs.count({cv.prim, static_cast<int>(cv.type)})) {
        std::ostringstream os;
        os << "case '" << r.cases[i].name << "' reports " << violation_type_name(cv.type)
           << " on prim " << cv.prim << " absent from the base run";
        return Failure{"case-refinement", os.str()};
      }
    }
  }
  st.tv_found = !r.violations.empty();
  for (const auto& cr : r.cases) st.tv_found = st.tv_found || !cr.violations.empty();

  // --- concrete realizations ------------------------------------------------
  sim::LogicSimulator sim(c.nl);
  Rng rng(spec.seed * 0x2545F4914F6CDD1DULL + 0x9E3779B97F4A7C15ULL);
  const Time period = from_ns(spec.period_ns);
  const int kCycles = 4;
  const Time counted_from = 2 * period;  // ignore the initialization transient

  const int nc = static_cast<int>(c.controls.size());
  std::vector<std::uint32_t> patterns;
  if (nc <= 5) {
    for (std::uint32_t p = 0; p < (1u << nc); ++p) patterns.push_back(p);
  } else {
    const std::uint32_t mask = (1u << nc) - 1;
    patterns.push_back(0);
    patterns.push_back(mask);
    for (int i = 0; i < 30; ++i) patterns.push_back(static_cast<std::uint32_t>(rng.next()) & mask);
    std::sort(patterns.begin(), patterns.end());
    patterns.erase(std::unique(patterns.begin(), patterns.end()), patterns.end());
  }

  std::vector<Time> skew_offsets = {0};
  if (spec.clock.skew_minus_ns != 0) skew_offsets.push_back(from_ns(spec.clock.skew_minus_ns));
  if (spec.clock.skew_plus_ns != 0) skew_offsets.push_back(from_ns(spec.clock.skew_plus_ns));
  const int toggles[2] = {spec.data_toggle_ns, spec.data_toggle_ns - spec.data_change_ns};

  auto pick = [&](Time lo, Time hi, int mode) {
    if (mode == 0 || hi <= lo) return lo;
    if (mode == 1) return hi;
    return lo + static_cast<Time>(rng.next() % static_cast<std::uint64_t>(hi - lo + 1));
  };

  for (std::uint32_t pat : patterns) {
    for (int mode = 0; mode < 3; ++mode) {
      for (Time so : skew_offsets) {
        for (int tog : toggles) {
          // Pin one delay realization per primitive, polarity-aware: reality
          // takes a single delay inside each modeled range.
          for (PrimId pid = 0; pid < c.nl.num_prims(); ++pid) {
            const Primitive& p = c.nl.prim(pid);
            if (prim_is_checker(p.kind)) continue;
            RiseFallDelay b =
                p.rise_fall ? *p.rise_fall : RiseFallDelay{p.dmin, p.dmax, p.dmin, p.dmax};
            Time rise = pick(b.rise_min, b.rise_max, mode);
            Time fall = pick(b.fall_min, b.fall_max, mode);
            sim.override_delay(pid, RiseFallDelay{rise, rise, fall, fall});
          }
          sim.reset();

          std::vector<sim::Stimulus> sts;
          for (int j = 0; j < nc; ++j) {
            sts.push_back({c.controls[static_cast<std::size_t>(j)], 0,
                           ((pat >> j) & 1) ? sim::LV::One : sim::LV::Zero});
          }
          sts.push_back({c.data_in, 0, sim::LV::Zero});
          for (int cy = 0; cy < kCycles; ++cy) {
            sts.push_back({c.data_in, cy * period + from_ns(tog),
                           (cy % 2 == 0) ? sim::LV::One : sim::LV::Zero});
          }
          Time ck_rise = from_ns(spec.clock.edge_units) + so;
          auto add = [&](std::vector<sim::Stimulus> v) {
            sts.insert(sts.end(), v.begin(), v.end());
          };
          add(sim::periodic_clock(c.clock_in, period, ck_rise,
                                  ck_rise + from_ns(spec.clock.high_units), kCycles));
          if (c.gate_enable != kNoSignal) {
            add(sim::periodic_clock(c.gate_enable, period, from_ns(spec.clock.enable_rise_units),
                                    from_ns(spec.clock.enable_fall_units), kCycles));
          }
          if (c.clock2_in != kNoSignal) {
            Time r2 = from_ns(spec.stage2_edge_units);
            add(sim::periodic_clock(c.clock2_in, period, r2, r2 + from_ns(spec.clock.high_units),
                                    kCycles));
          }

          std::vector<sim::SimViolation> sv = sim.run(sts, kCycles * period);
          ++st.sim_runs;
          bool violating = false;
          for (const sim::SimViolation& v : sv) {
            if (v.at < counted_from) continue;
            // An uninitialized X reaching a checker is a start-up pathology
            // (a register that is never clocked), not a timing violation;
            // the thesis' STABLE-for-undefined convention deliberately does
            // not model initialization (sec. 2.9).
            if (v.message.find("data X at clock edge") != std::string::npos) continue;
            violating = true;
            auto witness = [&](const char* kind) {
              std::ostringstream os;
              os << kind << ": sim exposed \"" << v.message << "\" at " << format_ns(v.at)
                 << " ns (pattern 0x" << std::hex << pat << std::dec << ", delay mode " << mode
                 << ", clock offset " << format_ns(so) << ", data toggle " << tog
                 << " ns) with no symbolic violation on checker prim " << v.checker;
              return Failure{kind, os.str()};
            };
            if (!base_escape && !base_prims.count(v.checker)) return witness("conservatism");
            if (c.case_control >= 0) {
              std::size_t ci = ((pat >> c.case_control) & 1) ? 1 : 0;
              if (!case_escape[ci] && !case_prims[ci].count(v.checker)) {
                return witness("case-conservatism");
              }
            }
          }
          if (violating) ++st.sim_violating_runs;
        }
      }
    }
  }
  return std::nullopt;
}

// --- waveform-algebra oracle ------------------------------------------------

Waveform materialize(const WaveSpec& spec) {
  Value fill;
  if (!parse_value_letter(spec.fill, fill)) throw std::invalid_argument("bad fill letter");
  const Time period = from_ns(spec.period_ns);
  Waveform w(period, fill);
  for (const WaveOp& op : spec.ops) {
    Value v;
    if (!parse_value_letter(op.value, v)) throw std::invalid_argument("bad op letter");
    Time begin = floor_mod(from_ns(op.at_ns), period);
    Time width = std::min(from_ns(op.width_ns), period);
    if (width <= 0) continue;
    w.set(begin, begin + width, v);
  }
  w.set_skew(from_ns(spec.skew_ns));
  return w;
}

WaveCase random_wave_case(std::uint64_t seed) {
  Rng rng(seed ^ 0x57A7E57A7E57A7E5ULL);
  WaveCase wc;
  wc.seed = seed;
  wc.base.period_ns = rng.range(30, 80);
  int f = rng.range(0, 5);
  wc.base.fill = f <= 2 ? 'S' : f == 3 ? '0' : f == 4 ? '1' : 'C';
  int nops = rng.range(1, 5);
  static const char kLetters[] = "00000111111SSSSCCCRFU";
  for (int i = 0; i < nops; ++i) {
    WaveOp op;
    op.at_ns = rng.range(0, wc.base.period_ns - 1);
    op.width_ns = rng.range(1, 12);
    op.value = kLetters[rng.range(0, static_cast<int>(sizeof kLetters) - 2)];
    wc.base.ops.push_back(op);
  }
  if (rng.chance(40)) wc.base.skew_ns = rng.range(1, 6);
  wc.rise_min_ns = rng.range(0, 5);
  wc.rise_max_ns = wc.rise_min_ns + rng.range(0, 6);
  wc.fall_min_ns = rng.range(0, 5) + (rng.chance(35) ? rng.range(5, 20) : 0);
  wc.fall_max_ns = wc.fall_min_ns + rng.range(0, 6);
  wc.d1_min_ns = rng.range(0, 8);
  wc.d1_max_ns = wc.d1_min_ns + rng.range(0, 8);
  wc.d2_min_ns = rng.range(0, 8);
  wc.d2_max_ns = wc.d2_min_ns + rng.range(0, 8);
  return wc;
}

namespace {

std::optional<Failure> canonical(const Waveform& w, const char* what) {
  auto fail = [&](const std::string& why) {
    return Failure{"canonical-form", std::string(what) + ": " + why + " in " + w.to_string()};
  };
  if (w.segments().empty()) return fail("no segments");
  Time sum = 0;
  for (const Waveform::Segment& s : w.segments()) {
    if (s.width <= 0) return fail("non-positive segment width");
    sum += s.width;
  }
  if (sum != w.period()) return fail("widths do not sum to the period");
  for (std::size_t i = 1; i < w.segments().size(); ++i) {
    if (w.segments()[i].value == w.segments()[i - 1].value) return fail("unmerged neighbors");
  }
  return std::nullopt;
}

/// Sample points: every segment start of every waveform (and every extra
/// point) plus/minus 1 ps, plus midpoints between consecutive samples.
std::vector<Time> sample_times(const std::vector<const Waveform*>& ws,
                               const std::vector<Time>& extra, Time period) {
  std::vector<Time> ts;
  auto add = [&](Time t) { ts.push_back(floor_mod(t, period)); };
  for (const Waveform* w : ws) {
    Time acc = 0;
    for (const Waveform::Segment& s : w->segments()) {
      add(acc - 1);
      add(acc);
      add(acc + 1);
      acc += s.width;
    }
  }
  for (Time t : extra) {
    add(t - 1);
    add(t);
    add(t + 1);
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  std::size_t n = ts.size();
  for (std::size_t i = 0; i < n; ++i) {
    Time a = ts[i], b = i + 1 < n ? ts[i + 1] : ts[0] + period;
    if (b - a > 1) add(a + (b - a) / 2);
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  return ts;
}

}  // namespace

std::optional<Failure> check_wave_algebra(const WaveCase& wc) {
  Waveform w = materialize(wc.base);
  const Time period = w.period();
  if (auto f = canonical(w, "materialized")) return f;

  if (!(w.delayed(0, 0) == w)) {
    return Failure{"delayed-identity", "delayed(0,0) != identity for " + w.to_string()};
  }
  const Time a = from_ns(wc.d1_min_ns), b = from_ns(wc.d1_max_ns);
  const Time cc = from_ns(wc.d2_min_ns), d = from_ns(wc.d2_max_ns);
  Waveform once = w.delayed(a, b);
  if (auto f = canonical(once, "delayed")) return f;
  if (!(once.delayed(cc, d) == w.delayed(a + cc, b + d))) {
    std::ostringstream os;
    os << "delayed(" << a << "," << b << ").delayed(" << cc << "," << d
       << ") != delayed(sum) for " << w.to_string();
    return Failure{"delayed-composition", os.str()};
  }

  Waveform folded = w.with_skew_incorporated();
  if (auto f = canonical(folded, "with_skew_incorporated")) return f;
  if (folded.skew() != 0) {
    return Failure{"skew-idempotent", "fold left skew nonzero: " + folded.to_string()};
  }
  if (!(folded.with_skew_incorporated() == folded)) {
    return Failure{"skew-idempotent", "fold is not idempotent: " + folded.to_string()};
  }

  WaveSpec zero_skew = wc.base;
  zero_skew.skew_ns = 0;
  Waveform plain = materialize(zero_skew);
  const Time sk = std::min(from_ns(wc.base.skew_ns), period);
  for (Time delta : {Time{0}, sk / 2, sk}) {
    Waveform shifted = plain.delayed(delta, delta);
    for (Time t : sample_times({&folded, &shifted}, {}, period)) {
      if (!covers(folded.at(t), shifted.at(t))) {
        std::ostringstream os;
        os << "folded " << folded.to_string() << " does not cover shift " << format_ns(delta)
           << " of " << plain.to_string() << " at t=" << format_ns(t);
        return Failure{"skew-coverage", os.str()};
      }
    }
  }

  // Pointwise consistency of the n-ary combiners against at().
  WaveCase partner_case = random_wave_case(wc.seed * 0x5DEECE66DULL + 11);
  WaveSpec partner_spec = partner_case.base;
  partner_spec.period_ns = wc.base.period_ns;
  partner_spec.skew_ns = 0;
  Waveform partner = materialize(partner_spec);
  struct NamedOp {
    const char* name;
    Value (*fn)(Value, Value);
  };
  const NamedOp ops[] = {{"or", value_or},
                         {"and", value_and},
                         {"xor", value_xor},
                         {"chg", static_cast<Value (*)(Value, Value)>(value_chg)}};
  for (const NamedOp& op : ops) {
    Waveform r = Waveform::binary(folded, partner, op.fn);
    if (auto f = canonical(r, op.name)) return f;
    for (Time t : sample_times({&folded, &partner, &r}, {}, period)) {
      if (r.at(t) != op.fn(folded.at(t), partner.at(t))) {
        std::ostringstream os;
        os << op.name << "(" << folded.to_string() << ", " << partner.to_string()
           << ") inconsistent with at() at t=" << format_ns(t);
        return Failure{"pointwise", os.str()};
      }
    }
  }
  Waveform inv = folded.map(value_not);
  for (Time t : sample_times({&folded, &inv}, {}, period)) {
    if (inv.at(t) != value_not(folded.at(t))) {
      return Failure{"pointwise", "map(not) inconsistent with at() for " + folded.to_string()};
    }
  }

  // Concrete replay of delayed_rise_fall: reality shifts the whole list by
  // one skew amount, then delays each edge independently inside its
  // polarity's range; the symbolic result must cover every such reality.
  const Time rmin = from_ns(wc.rise_min_ns), rmax = from_ns(wc.rise_max_ns);
  const Time fmin = from_ns(wc.fall_min_ns), fmax = from_ns(wc.fall_max_ns);
  Waveform model = w.delayed_rise_fall(rmin, rmax, fmin, fmax);
  if (auto f = canonical(model, "delayed_rise_fall")) return f;
  if (model.skew() != 0) {
    return Failure{"rise-fall-coverage", "result carries skew: " + model.to_string()};
  }

  std::vector<Time> deltas = {0};
  if (sk > 0) deltas.push_back(sk);
  for (Time delta : deltas) {
    Waveform shifted = plain.delayed(delta, delta);
    std::vector<Waveform::Boundary> bounds = shifted.boundaries();
    struct Ev {
      Time at = 0;
      Value to = Value::Unknown;
    };
    const std::size_t nb = bounds.size();
    std::vector<std::pair<Time, Time>> ranges(nb);  // per-boundary [lo, hi]
    for (std::size_t i = 0; i < nb; ++i) {
      switch (edge_kind(bounds[i].from, bounds[i].to)) {
        case Value::Rise: ranges[i] = {rmin, rmax}; break;
        case Value::Fall: ranges[i] = {fmin, fmax}; break;
        default: ranges[i] = {std::min(rmin, fmin), std::max(rmax, fmax)}; break;
      }
    }
    long realizations = 1;
    for (std::size_t i = 0; i < nb && realizations <= 81; ++i) realizations *= 3;
    bool enumerate = realizations <= 81;
    Rng rr(wc.seed + static_cast<std::uint64_t>(delta) + 977);
    int count = enumerate ? static_cast<int>(realizations) : 64;

    for (int ri = 0; ri < count; ++ri) {
      std::vector<Ev> evs(nb);
      long code = ri;
      for (std::size_t i = 0; i < nb; ++i) {
        auto [lo, hi] = ranges[i];
        Time dl;
        if (enumerate) {
          int choice = static_cast<int>(code % 3);
          code /= 3;
          dl = choice == 0 ? lo : choice == 1 ? hi : lo + (hi - lo) / 2;
        } else {
          dl = lo + (hi > lo ? static_cast<Time>(rr.next() %
                                                 static_cast<std::uint64_t>(hi - lo + 1))
                             : 0);
        }
        evs[i] = {floor_mod(bounds[i].time + dl, period), bounds[i].to};
      }
      auto replay_at = [&](Time t) {
        if (evs.empty()) return shifted.at(t);
        // Latest event at or before t, circularly; later boundary wins ties.
        Time best_rel = period + 1;
        Value v = Value::Unknown;
        for (const Ev& e : evs) {
          Time rel = floor_mod(t - e.at, period);
          if (rel <= best_rel) {
            best_rel = rel;
            v = e.to;
          }
        }
        return v;
      };
      std::vector<Time> extra;
      for (const Ev& e : evs) extra.push_back(e.at);
      for (Time t : sample_times({&model}, extra, period)) {
        Value real = replay_at(t);
        if (!covers(model.at(t), real)) {
          std::ostringstream os;
          os << "delayed_rise_fall(" << format_ns(rmin) << "," << format_ns(rmax) << ","
             << format_ns(fmin) << "," << format_ns(fmax) << ") of " << w.to_string()
             << " = " << model.to_string() << " misses reality (shift " << format_ns(delta)
             << ", realization " << ri << "): model " << value_letter(model.at(t))
             << " vs actual " << value_letter(real) << " at t=" << format_ns(t);
          return Failure{"rise-fall-coverage", os.str()};
        }
      }
    }
  }
  return std::nullopt;
}

std::string to_cpp(const WaveCase& wc) {
  std::ostringstream os;
  os << "    tv::check::WaveCase w;\n";
  os << "    w.seed = " << wc.seed << "ULL;\n";
  os << "    w.base.period_ns = " << wc.base.period_ns << "; w.base.fill = '" << wc.base.fill
     << "'; w.base.skew_ns = " << wc.base.skew_ns << ";\n";
  for (const WaveOp& op : wc.base.ops) {
    os << "    w.base.ops.push_back({" << op.at_ns << ", " << op.width_ns << ", '" << op.value
       << "'});\n";
  }
  os << "    w.rise_min_ns = " << wc.rise_min_ns << "; w.rise_max_ns = " << wc.rise_max_ns
     << ";\n";
  os << "    w.fall_min_ns = " << wc.fall_min_ns << "; w.fall_max_ns = " << wc.fall_max_ns
     << ";\n";
  os << "    w.d1_min_ns = " << wc.d1_min_ns << "; w.d1_max_ns = " << wc.d1_max_ns << ";\n";
  os << "    w.d2_min_ns = " << wc.d2_min_ns << "; w.d2_max_ns = " << wc.d2_max_ns << ";\n";
  return os.str();
}

}  // namespace tv::check
