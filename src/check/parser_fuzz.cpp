#include "check/parser_fuzz.hpp"

#include <array>
#include <random>
#include <string_view>
#include <vector>

#include "diag/diagnostic.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/stdlib.hpp"

namespace tv::check {

namespace {

// Small valid designs exercising the grammar's surface: macros, parameters,
// vector ranges, cases, wire delays, checkers. Mutations start from these
// (or from the standard chip library) so they reach deep into the parser
// instead of dying at the first token.
constexpr std::string_view kSeedDesigns[] = {
    R"(design TINY {
  period 50.0;
  clock_unit 6.25;
  reg [delay=1.5:4.5] ("D .S0-6", "CK .P8-9") -> "Q";
  setup_hold [setup=2.5, hold=1.5] ("D .S0-6", "CK .P8-9");
}
)",
    R"(macro PIPE(SIZE) {
  param in "I<0:SIZE-1>", "CK";
  param out "Q<0:SIZE-1>";
  reg [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK") -> "Q<0:SIZE-1>";
  setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
}
design PAIR {
  period 40.0;
  clock_unit 5.0;
  default_wire 0.0:2.0;
  use PIPE [SIZE=4] ("D<0:3> .S0-5", "CK .P6-7", "M<0:3>");
  wire_delay "M<0:3>" 0.5:1.5;
  use PIPE [SIZE=4] ("M<0:3>", "CK .P6-7", "Q<0:3>");
}
)",
    R"(design CASES {
  period 60.0;
  clock_unit 7.5;
  default_wire 0.0:2.0;
  buf [delay=0.5:2.0] ("SEL") -> "SELB";
  wire_delay "SELB" 0:0;
  mux2 [delay=1.2:3.3] ("SELB", "A .S0-6", "B .S0-6") -> "OUT";
  case "sel low" { "SEL" = 0; }
  case "sel high" { "SEL" = 1; }
}
)",
};

// Tokens spliced in by the token-level mutator: keywords, punctuation and
// fragments the grammar cares about.
constexpr std::string_view kSpliceTokens[] = {
    "macro", "design", "param", "use", "case", "period", "clock_unit",
    "default_wire", "precision_skew", "synonym", "wire_delay", "setup_hold",
    "reg", "->", "{", "}", "(", ")", "[", "]", "<0:SIZE-1>", "\"", ";", ",",
    "=", ":", "0", "-1", "1e9", "delay=", "width=", "/P", "/M", "--", "\n",
    ".P0-4", ".S0-6", "&Z",
};

std::string mutate(std::string src, std::mt19937_64& rng) {
  auto rnd = [&](std::size_t n) -> std::size_t {
    return n ? static_cast<std::size_t>(rng() % n) : 0;
  };
  int rounds = 1 + static_cast<int>(rnd(8));
  for (int r = 0; r < rounds; ++r) {
    if (src.empty()) src = "x";
    switch (rnd(6)) {
      case 0: {  // flip one byte to a random printable (or newline)
        char c = "\n\t !\"#$%&'()*+,-./0123456789:;<=>?@AZaz{|}~"[rnd(43)];
        src[rnd(src.size())] = c;
        break;
      }
      case 1: {  // delete a span
        std::size_t at = rnd(src.size());
        std::size_t len = 1 + rnd(16);
        src.erase(at, len);
        break;
      }
      case 2: {  // duplicate a span
        std::size_t at = rnd(src.size());
        std::size_t len = 1 + rnd(24);
        std::string span = src.substr(at, len);
        src.insert(rnd(src.size() + 1), span);
        break;
      }
      case 3: {  // truncate
        src.resize(rnd(src.size() + 1));
        break;
      }
      case 4: {  // splice in a grammar token
        std::string_view tok =
            kSpliceTokens[rnd(std::size(kSpliceTokens))];
        src.insert(rnd(src.size() + 1), std::string(tok));
        break;
      }
      case 5: {  // swap two chunks
        if (src.size() < 4) break;
        std::size_t a = rnd(src.size() / 2);
        std::size_t b = src.size() / 2 + rnd(src.size() - src.size() / 2);
        std::size_t len = 1 + rnd(12);
        std::string sa = src.substr(a, std::min(len, b - a));
        std::string sb = src.substr(b, len);
        src.replace(b, sb.size(), sa);
        src.replace(a, sa.size(), sb);
        break;
      }
    }
  }
  return src;
}

}  // namespace

std::optional<ParserFuzzFailure> check_parser_robustness(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);
  std::size_t corpus = std::size(kSeedDesigns) + 1;
  std::size_t pick = static_cast<std::size_t>(rng() % corpus);
  std::string base = pick < std::size(kSeedDesigns)
                         ? std::string(kSeedDesigns[pick])
                         : std::string(hdl::std_chip_library()) +
                               std::string(kSeedDesigns[0]);
  std::string mutated = mutate(std::move(base), rng);

  diag::DiagnosticEngine diags;
  diags.set_current_file("<fuzz>");
  auto fail = [&](std::string kind, std::string detail) {
    return ParserFuzzFailure{seed, std::move(kind), std::move(detail), mutated};
  };
  try {
    std::optional<hdl::ElaboratedDesign> d = hdl::elaborate_source(mutated, diags);
    if (!d && !diags.has_errors()) {
      return fail("silent-rejection",
                  "front end rejected the input without reporting any error "
                  "diagnostic");
    }
    if (d && diags.has_errors()) {
      return fail("accepted-with-errors",
                  "front end produced a design despite reporting errors");
    }
  } catch (const std::exception& e) {
    return fail("uncaught-exception", e.what());
  } catch (...) {
    return fail("uncaught-exception", "non-standard exception escaped the front end");
  }
  return std::nullopt;
}

std::size_t seed_design_count() { return std::size(kSeedDesigns); }

std::string seed_design(std::size_t index) {
  return std::string(kSeedDesigns[index % std::size(kSeedDesigns)]);
}

}  // namespace tv::check
