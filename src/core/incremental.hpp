// Incremental re-verification (ROADMAP item 2; thesis sec. 1.2's workflow).
//
// The paper's Timing Verifier lived inside a day-by-day edit loop: a designer
// changes a handful of delays or connections, then re-verifies the whole
// design. A NetlistDelta captures exactly those edits -- primitive parameter
// changes, input retargets, wire-delay overrides, assertion changes, and
// case-map edits -- and Verifier::reverify(delta) applies them against the
// previous fixpoint: it reseeds/requeues only the edited elements, lets the
// event-driven worklist run until the disturbance dies out (registers absorb
// small delay shifts, so propagation usually stops at the next stage
// boundary), re-checks only assertions whose support intersects the touched
// set, and splices fresh findings into the prior report.
//
// Identity guarantee: the spliced report is byte-identical to a cold
// verify() of the edited design (the differential tvfuzz --incr-diff mode
// replays K-step edit scripts both ways and shrinks divergences). The one
// asymmetry is the evaluation-effort counters (base_events/base_evals) --
// the speedup itself -- which identity comparisons must exclude. Edits the
// engine cannot prove safe fall back to a cold run silently (see
// docs/incremental.md for the invalidation rules).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/netlist.hpp"

namespace tv {

/// An edit script against a finalized netlist + case list. Edits are applied
/// in field order: prims, pins, wires, assertions, cases (each vector in
/// order). All ids refer to the *current* netlist; deltas never add or
/// remove signals or primitives (the artifact's id space is fixed).
struct NetlistDelta {
  /// Parameter edits on one primitive. Only the engaged fields change.
  struct PrimEdit {
    PrimId prim = kNoPrim;
    /// New kind; must preserve checker-ness and the pin-count contract.
    std::optional<PrimKind> kind;
    std::optional<std::pair<Time, Time>> delay;  // dmin, dmax
    bool set_rise_fall = false;
    bool clear_rise_fall = false;
    RiseFallDelay rise_fall{};                       // used when set_rise_fall
    std::optional<std::pair<Time, Time>> setup_hold; // checker params
    std::optional<std::pair<Time, Time>> min_pulse;  // min_high, min_low
  };
  /// Reconnects input pin `input` of `prim` to `sig` (a structural edit:
  /// fanout call lists are recomputed).
  struct PinEdit {
    PrimId prim = kNoPrim;
    std::size_t input = 0;
    SignalId sig = kNoSignal;
    bool invert = false;
    std::string directives;
  };
  /// Sets (engaged) or clears (nullopt) one signal's wire-delay override.
  struct WireEdit {
    SignalId sig = kNoSignal;
    std::optional<WireDelay> wire;
  };
  /// Replaces one signal's assertion. The assertion is part of the SCALD
  /// name, so the edit renames the signal; `full_name` must be fresh or the
  /// signal's own.
  struct AssertionEdit {
    SignalId sig = kNoSignal;
    Assertion assertion;
    std::string base_name;
    std::string full_name;
  };
  /// Case-map edit, matched by name: `spec` engaged replaces the existing
  /// case or -- when no case has that name -- inserts it (at position `at`,
  /// default append); `spec` empty removes it. The first name match wins.
  struct CaseEdit {
    std::string name;
    std::optional<CaseSpec> spec;
    std::optional<std::size_t> at;
  };

  std::vector<PrimEdit> prims;
  std::vector<PinEdit> pins;
  std::vector<WireEdit> wires;
  std::vector<AssertionEdit> assertions;
  std::vector<CaseEdit> cases;

  bool empty() const {
    return prims.empty() && pins.empty() && wires.empty() && assertions.empty() &&
           cases.empty();
  }
  /// True when the fanout graph changes (pin retargets): the netlist must be
  /// re-finalized and cone indexes rebuilt.
  bool structural() const { return !pins.empty(); }
};

/// What apply_delta did, sufficient to undo it and to splice case reports.
struct AppliedDelta {
  /// The exact inverse edit script: applying it restores the pre-delta
  /// netlist and case list (and, via reverify, the pre-delta report bytes).
  NetlistDelta inverse;
  /// For each case in the *new* case list: its index in the prior list, or
  /// -1 when it was added or its spec changed (so its prior report block, if
  /// any, cannot be reused).
  std::vector<std::ptrdiff_t> case_origin;
};

/// Validates every edit up front (throwing std::invalid_argument with the
/// netlist and case list untouched), then applies the delta in order. The
/// netlist is left definalized when the delta was structural; the caller
/// re-finalizes. Checked invariants: ids in range; a kind change preserves
/// checker-ness and the pin-count contract; delay/wire/rise-fall ranges
/// valid; a clock assertion never lands on a driven signal; an assertion
/// rename never collides with another signal; case pins are in-range 0/1.
AppliedDelta apply_delta(Netlist& nl, std::vector<CaseSpec>& cases,
                         const NetlistDelta& delta);

/// Parses the scaldtv --reverify JSON delta format (docs/incremental.md).
/// Signals are named by full SCALD name, primitives by instance name, times
/// in nanoseconds. Returns false and sets *error on malformed input or
/// unresolved names; name->id resolution uses `nl`.
bool parse_delta_json(const std::string& text, const Netlist& nl, NetlistDelta* out,
                      std::string* error);

/// Instrumentation from one Verifier::reverify call.
struct ReverifyStats {
  /// False when the engine fell back to a cold verify().
  bool incremental = false;
  /// Why it fell back ("" when incremental).
  std::string fallback_reason;
  /// The *potential* dirty cone: the ConeIndex fanout closure of every seed
  /// the delta could disturb, before event-driven propagation narrows it.
  /// This is what the property suite predicts from the netlist's structure.
  std::vector<SignalId> dirty_signals;
  std::vector<PrimId> dirty_prims;
  /// Signals whose value actually changed during incremental propagation
  /// (subset of dirty_signals' closure; empty on fallback).
  std::size_t touched_signals = 0;
  /// Case-report accounting: re-evaluated on a snapshot vs. spliced from
  /// the prior report untouched.
  std::size_t cases_reevaluated = 0;
  std::size_t cases_spliced = 0;
  /// Events/evaluations spent by the incremental base re-propagation.
  std::size_t events = 0;
  std::size_t evals = 0;
  /// The inverse edit script (AppliedDelta::inverse): reverify(inverse)
  /// restores the pre-delta report byte-for-byte. Warm servers use this to
  /// return a resident worker to its artifact baseline after a reverify job.
  NetlistDelta inverse;
};

}  // namespace tv
