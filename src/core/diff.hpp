// Day-by-day verification diffing (thesis sec. 3.3.1).
//
// The Mark IIA methodology was to "advance the design for about a day" and
// re-verify, so that "possible timing errors [are] corrected while the
// associated design is fresh in the minds of the designers". What a
// designer wants from the daily run is the *delta*: which violations are
// new since yesterday, which were fixed, and which persist. Violations are
// matched by (type, checker name, offending signal base name), so reports
// remain stable across unrelated edits that renumber primitives.
#pragma once

#include <string>
#include <vector>

#include "core/checker.hpp"

namespace tv {

struct VerifyDiff {
  std::vector<Violation> introduced;  // in current, absent from baseline
  std::vector<Violation> persisting;  // in both
  std::vector<Violation> fixed;       // in baseline, gone now
};

/// Compares the violations of two runs. The netlists may be different
/// revisions of the design; matching is by stable names, not ids.
VerifyDiff diff_results(const Netlist& baseline_nl, const std::vector<Violation>& baseline,
                        const Netlist& current_nl, const std::vector<Violation>& current);

/// Renders the daily delta.
std::string diff_report(const VerifyDiff& d);

}  // namespace tv
