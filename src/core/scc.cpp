#include "core/scc.hpp"

#include <algorithm>
#include <unordered_set>

namespace tv {

std::vector<std::vector<std::uint32_t>> strongly_connected_components(
    const std::vector<std::vector<std::uint32_t>>& adj) {
  const std::uint32_t n = static_cast<std::uint32_t>(adj.size());
  std::vector<std::int32_t> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::vector<std::vector<std::uint32_t>> comps;

  struct Frame {
    std::uint32_t v;
    std::size_t next;
  };
  std::vector<Frame> call;
  std::int32_t counter = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    call.push_back(Frame{root, 0});
    while (!call.empty()) {
      std::uint32_t v = call.back().v;
      if (call.back().next < adj[v].size()) {
        std::uint32_t w = adj[v][call.back().next++];
        if (index[w] == -1) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          call.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      call.pop_back();
      if (!call.empty()) low[call.back().v] = std::min(low[call.back().v], low[v]);
      if (low[v] == index[v]) {
        std::vector<std::uint32_t> comp;
        for (;;) {
          std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        comps.push_back(std::move(comp));
      }
    }
  }
  return comps;
}

std::vector<std::uint32_t> cycle_through_component(
    const std::vector<std::vector<std::uint32_t>>& adj,
    const std::vector<std::uint32_t>& component) {
  if (component.empty()) return {};
  const std::uint32_t start = component[0];
  if (component.size() == 1) {
    for (std::uint32_t w : adj[start]) {
      if (w == start) return {start};
    }
    return {};
  }
  std::unordered_set<std::uint32_t> in(component.begin(), component.end());

  // DFS restricted to the component. Any edge back to `start` closes a
  // cycle along the current stack path; strong connectivity guarantees one
  // exists (some component vertex has an edge into `start`, and the DFS
  // scans every component vertex's edges while that vertex is on the path).
  struct Frame {
    std::uint32_t v;
    std::size_t next;
  };
  std::vector<Frame> st{Frame{start, 0}};
  std::vector<std::uint32_t> path{start};
  std::unordered_set<std::uint32_t> visited{start};
  while (!st.empty()) {
    std::uint32_t v = st.back().v;
    if (st.back().next < adj[v].size()) {
      std::uint32_t w = adj[v][st.back().next++];
      if (!in.count(w)) continue;
      if (w == start) return path;
      if (visited.insert(w).second) {
        st.push_back(Frame{w, 0});
        path.push_back(w);
      }
      continue;
    }
    st.pop_back();
    path.pop_back();
  }
  return {};
}

}  // namespace tv
