#include "core/modular.hpp"

#include <map>

namespace tv {

namespace {

struct SignalUse {
  const Section* section = nullptr;
  const Signal* signal = nullptr;
  bool driven = false;
};

}  // namespace

std::vector<InterfaceIssue> check_interfaces(const std::vector<Section>& sections) {
  std::vector<InterfaceIssue> issues;
  std::map<std::string, std::vector<SignalUse>> by_base;
  for (const Section& sec : sections) {
    const Netlist& nl = *sec.netlist;
    for (SignalId id = 0; id < nl.num_signals(); ++id) {
      const Signal& s = nl.signal(id);
      // "/M"-marked signals are local to their section/macro and never
      // interface signals (sec. 3.1).
      if (s.scope != SignalScope::Global) continue;
      by_base[s.base_name].push_back(SignalUse{&sec, &s, s.driver != kNoPrim});
    }
  }

  for (const auto& [base, uses] : by_base) {
    if (uses.size() < 2) continue;  // local to one section
    bool crosses = false;
    for (std::size_t i = 1; i < uses.size(); ++i) {
      if (uses[i].section != uses[0].section) crosses = true;
    }
    if (!crosses) continue;

    int drivers = 0;
    bool any_assertion = false;
    bool any_unasserted = false;
    bool names_differ = false;
    for (const SignalUse& u : uses) {
      if (u.driven) ++drivers;
      if (u.signal->assertion.kind != Assertion::Kind::None) {
        any_assertion = true;
      } else {
        any_unasserted = true;
      }
      if (u.signal->full_name != uses[0].signal->full_name) names_differ = true;
    }

    if (names_differ) {
      // The same base name appears with different assertions. Among purely
      // assertion-defined signals that is legitimate -- Fig 2-5's derived
      // clocks "CK .P0-4" and "CK .P2-3" share a base -- but as soon as one
      // variant is *generated* by a section, its consumers elsewhere must
      // use exactly the producer's name; a differing consumer assertion is
      // the producer/consumer disagreement sec. 2.5.2's check exists for.
      if (drivers >= 1) {
        std::string detail;
        for (const SignalUse& u : uses) {
          if (!detail.empty()) detail += ", ";
          detail += u.section->name + " has \"" + u.signal->full_name + "\"" +
                    (u.driven ? " (driven)" : "");
        }
        issues.push_back(
            InterfaceIssue{InterfaceIssue::Kind::AssertionMismatch, base, std::move(detail)});
      } else if (any_unasserted) {
        issues.push_back(InterfaceIssue{
            InterfaceIssue::Kind::MissingAssertion, base,
            "crosses a section boundary with and without a timing assertion"});
      }
      continue;
    }

    if (drivers > 1) {
      issues.push_back(InterfaceIssue{InterfaceIssue::Kind::MultipleDrivers, base,
                                      "driven in " + std::to_string(drivers) + " sections"});
    }
    if (!any_assertion) {
      // Consumers in other sections have no timing information about this
      // signal: the per-section proofs do not compose.
      issues.push_back(InterfaceIssue{
          InterfaceIssue::Kind::MissingAssertion, base,
          "crosses a section boundary without a timing assertion"});
    }
  }
  return issues;
}

bool ModularResult::design_free_of_timing_errors() const {
  if (!interface_issues.empty()) return false;
  for (const PerSection& s : sections) {
    if (s.result.total_violations() != 0 || !s.result.converged) return false;
  }
  return true;
}

ModularResult verify_modular(std::vector<Section>& sections, const VerifierOptions& opts) {
  ModularResult out;
  for (Section& sec : sections) {
    Verifier v(*sec.netlist, opts);
    out.sections.push_back(ModularResult::PerSection{sec.name, v.verify(sec.cases)});
  }
  out.interface_issues = check_interfaces(sections);
  return out;
}

}  // namespace tv
