#include "core/explain.hpp"

#include <set>

namespace tv {

namespace {

// When does this waveform last become steady within the cycle? Returns 0
// for an always-steady signal and the period for a never-steady one.
Time settle_time(const Waveform& w_raw, Time period) {
  Waveform w = w_raw.with_skew_incorporated();
  bool any_steady = false;
  Time latest = 0;
  for (const auto& b : w.boundaries()) {
    if (is_steady(b.to) && !is_steady(b.from)) {
      latest = std::max(latest, b.time);
      any_steady = true;
    }
  }
  if (w.boundaries().empty()) {
    return is_steady(w.at(0)) ? 0 : period;
  }
  return any_steady ? latest : period;
}

}  // namespace

std::vector<ChainStage> explain_chain(const Evaluator& ev, const Violation& v) {
  std::vector<ChainStage> chain;
  const Netlist& nl = ev.netlist();
  if (v.signal == kNoSignal) return chain;
  const Time period = ev.options().period;

  std::set<SignalId> visited;
  SignalId cur = v.signal;
  while (visited.insert(cur).second) {
    const Signal& s = nl.signal(cur);
    chain.push_back(ChainStage{cur, s.driver, settle_time(s.wave, period)});
    if (s.driver == kNoPrim) break;
    const Primitive& p = nl.prim(s.driver);

    // Follow the input responsible for the late settling: the one that
    // itself settles last (a heuristic; exact for single-path cones, and
    // the right default diagnostic elsewhere).
    SignalId worst = kNoSignal;
    Time worst_settle = -1;
    for (const Pin& pin : p.inputs) {
      Time t = settle_time(nl.signal(pin.sig).wave, period);
      if (t > worst_settle) {
        worst_settle = t;
        worst = pin.sig;
      }
    }
    if (worst == kNoSignal) break;
    cur = worst;
  }
  return chain;
}

std::string explain_report(const Netlist& nl, const std::vector<ChainStage>& chain) {
  if (chain.empty()) return "  (no chain available)\n";
  std::string out = "CRITICAL CHAIN (latest-settling input at each level):\n";
  char line[256];
  for (const ChainStage& st : chain) {
    const Signal& s = nl.signal(st.signal);
    std::snprintf(line, sizeof line, "  %-36s settles %8s  %s%s\n", s.full_name.c_str(),
                  format_ns(st.settles_at).c_str(),
                  st.driver != kNoPrim ? "via " : "origin: ",
                  st.driver != kNoPrim
                      ? nl.prim(st.driver).name.c_str()
                      : (s.assertion.kind != Assertion::Kind::None ? "assertion"
                                                                   : "undriven input"));
    out += line;
  }
  return out;
}

}  // namespace tv
