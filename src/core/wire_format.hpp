// Shared binary wire-format helpers for the durable on-disk artifacts: the
// compiled design (core/compiled.cpp, magic "SCALDTVC") and the fixpoint
// snapshot (core/fixpoint.cpp, magic "SCALDTVF"). Both formats follow the
// same discipline -- explicitly little-endian records, a fixed 40-byte
// header carrying an FNV-1a content hash over the payload, a section table,
// and bounds-checked readers that report exactly one diagnostic on the
// first failure. This header is internal to src/core; the public surfaces
// are compiled.hpp and fixpoint.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/waveform.hpp"
#include "diag/diagnostic.hpp"

namespace tv::wire {

inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::uint32_t kEndianTagSwapped = 0x04030201u;
inline constexpr std::size_t kHeaderSize = 40;
inline constexpr std::size_t kSectionEntrySize = 24;

inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = 14695981039346656037ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------- writing

/// Appends explicitly little-endian records to a byte string, so the format
/// is identical regardless of host byte order.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

// ---------------------------------------------------------------- reading

/// Bounds-checked little-endian cursor over one section. Every read checks
/// the remaining size; on underflow it sets `truncated` and returns zeros,
/// so the caller can finish the record and fail once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool truncated() const { return truncated_; }
  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  bool need(std::size_t n) {
    if (truncated_ || bytes_.size() - pos_ < n) {
      truncated_ = true;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

/// Per-load validation state: reports exactly one diagnostic (the first
/// failure) and remembers that loading failed. `malformed_code` is the
/// format's own bad-record code (TV-E305 for artifacts, TV-E315 for
/// snapshots) so shared record readers report in the caller's family.
struct Loader {
  diag::DiagnosticEngine& diags;
  std::string_view origin;
  const char* malformed_code = diag::kErrArtifactMalformed;
  bool failed = false;

  bool fail(const char* code, const std::string& message) {
    if (!failed) {
      failed = true;
      diags.report(diag::Severity::Error, code, diag::SourceLoc{},
                   std::string(origin) + ": " + message);
    }
    return false;
  }
};

// ------------------------------------------------------- waveform records

inline void write_waveform(ByteWriter& w, const Waveform& wave) {
  w.i64(wave.period());
  w.i64(wave.skew());
  w.u32(static_cast<std::uint32_t>(wave.segments().size()));
  for (const Waveform::Segment& s : wave.segments()) {
    w.u8(static_cast<std::uint8_t>(s.value));
    w.i64(s.width);
  }
}

inline bool read_waveform(ByteReader& r, Waveform& out, Loader& L) {
  Time period = r.i64();
  Time skew = r.i64();
  std::uint32_t nsegs = r.u32();
  if (r.truncated()) return true;  // reported by the section-end check
  if (period <= 0 || nsegs == 0)
    return L.fail(L.malformed_code, "bad waveform record");
  std::vector<Waveform::Segment> segs;
  segs.reserve(nsegs);
  Time total = 0;
  for (std::uint32_t i = 0; i < nsegs && !r.truncated(); ++i) {
    std::uint8_t v = r.u8();
    Time width = r.i64();
    if (v >= kNumValues || width <= 0)
      return L.fail(L.malformed_code, "bad waveform segment");
    segs.push_back({static_cast<Value>(v), width});
    total += width;
  }
  if (r.truncated()) return true;
  if (total != period)
    return L.fail(L.malformed_code, "waveform widths do not sum to the period");
  out = Waveform::from_segments(period, skew, std::move(segs));
  return true;
}

}  // namespace tv::wire
