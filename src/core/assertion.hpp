// Signal assertions (thesis sec. 2.5).
//
// Assertions are written at the end of signal names, preceded by a period,
// and are considered part of the name by the rest of the SCALD system (which
// guarantees consistency of all assertions on one signal by construction):
//
//   MEM CLK .P2-3 L        precision clock, high 2-3 (L: stated low 2-3)
//   SYS CLK .C 4-6 L       non-precision clock
//   W DATA .S0-6           stable from clock-unit 0 to 6, changing 6..8
//   CK .P2+10.0            rises at unit 2, stays high 10.0 ns (does not
//                          scale with cycle time)
//   X .C2,5(-0.5,0.5)      explicit skew specification in ns
//
// Times in assertions are in user clock units (sec. 2.3) and are taken
// modulo the cycle time (sec. 3.2). Precision vs non-precision clocks differ
// only in the *default* skew applied when none is given (sec. 2.5.1).
// A leading "-" complements the signal, and a trailing "&" string carries
// evaluation directives (sec. 2.6), e.g. "CK .P0-4 &HZ".
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/waveform.hpp"
#include "util/time.hpp"

namespace tv {

struct Assertion {
  enum class Kind {
    None,           // plain signal, no timing assertion
    PrecisionClock, // .P
    Clock,          // .C (non-precision)
    Stable          // .S
  };

  /// One <time range>. Times are clock units (fractional allowed). When
  /// `width_ns` is set, the range was written "t+w": it begins at `begin`
  /// clock units and lasts `*width_ns` nanoseconds (does not scale).
  struct Range {
    double begin = 0;
    double end = 0;
    std::optional<double> width_ns;
    bool operator==(const Range&) const = default;
  };

  Kind kind = Kind::None;
  std::vector<Range> ranges;
  bool active_low = false;  // trailing "L" polarity assertion
  /// Explicit skew specification "(minus, plus)" in ns; minus <= 0 <= plus.
  std::optional<std::pair<double, double>> skew_ns;

  bool is_clock() const { return kind == Kind::PrecisionClock || kind == Kind::Clock; }
  bool operator==(const Assertion&) const = default;
};

/// Signal scope markers (sec. 3.1): "/M" marks a signal local to its macro,
/// "/P" marks a macro parameter; unmarked signals are global. Local signals
/// never participate in cross-section interface checking.
enum class SignalScope : std::uint8_t { Global, Local, Parameter };

/// The decomposition of a full SCALD signal name.
struct ParsedSignal {
  std::string base_name;    // name up to (not including) the assertion
  std::string full_name;    // assertion included (the true signal identity)
  bool complemented = false;  // leading "-": use the complement of the signal
  Assertion assertion;
  std::string directives;   // evaluation string, e.g. "HZ" from "&HZ"
  SignalScope scope = SignalScope::Global;
};

/// Parses a signal reference as written on a drawing. Throws
/// std::invalid_argument with a description on malformed assertions.
ParsedSignal parse_signal_name(std::string_view text);

/// Default skews used when an assertion carries none (sec. 3.3: the Mark IIA
/// rules were +-1.0 ns for precision clocks and +-5.0 ns for non-precision
/// clocks). Stable assertions default to zero skew.
struct AssertionDefaults {
  double precision_skew_minus_ns = -1.0;
  double precision_skew_plus_ns = 1.0;
  double clock_skew_minus_ns = -5.0;
  double clock_skew_plus_ns = 5.0;
};

/// Renders an assertion in canonical SCALD text (".P2.0-3.0 (-1.0,1.0) L");
/// returns "" for Kind::None. parse -> to_text -> parse is the identity on
/// the materialized waveform (round-trip property, tested).
std::string assertion_to_text(const Assertion& a);

/// Materializes an assertion as the seed waveform for evaluation
/// (sec. 2.9 step 1):
///  * clock assertions: 1 during the asserted ranges and 0 elsewhere
///    (inverted for "L"), shifted/skewed per the skew specification;
///  * stable assertions: STABLE during the ranges, CHANGE elsewhere;
///  * Kind::None: UNKNOWN everywhere (the caller decides whether to treat
///    the signal as always-stable per sec. 2.5's undefined-signal rule).
Waveform assertion_waveform(const Assertion& a, Time period, const ClockUnits& units,
                            const AssertionDefaults& defaults = {});

}  // namespace tv
