// Periodic signal-value waveform (thesis sec. 2.8, Fig 2-7).
//
// The Timing Verifier represents the value of every signal over exactly one
// clock period. The thesis uses a linked list of VALUE records (value,
// width) hanging off a VALUE BASE record that also stores the skew and the
// evaluation-string pointer; the widths are required to sum exactly to the
// period. We keep the same abstraction as a contiguous vector of segments
// (cache-friendly; the invariants are identical) anchored at cycle time 0.
//
// Skew (sec. 2.8): when a signal is delayed by a variable amount, the value
// list is shifted by the *minimum* delay and the residual (max - min) is
// held in the separate skew field. This preserves pulse widths, so minimum
// pulse-width checks are not spuriously violated. Only when two changing
// signals are combined must the skew be folded into the value list, using
// the RISE/FALL/CHANGE values (Fig 2-9); incorporate_skew() implements that
// fold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/value.hpp"
#include "util/time.hpp"

namespace tv {

class Waveform {
 public:
  /// One VALUE record: a value held for `width` picoseconds.
  struct Segment {
    Value value = Value::Unknown;
    Time width = 0;
    bool operator==(const Segment&) const = default;
  };

  /// A value change at `time`: the signal holds `from` before and `to`
  /// after (times are cycle-relative; a change across the 0 boundary is
  /// reported at time 0).
  struct Boundary {
    Time time = 0;
    Value from = Value::Unknown;
    Value to = Value::Unknown;
    bool operator==(const Boundary&) const = default;
  };

  Waveform() = default;
  /// Constructs a waveform holding `fill` for the whole period. Signals
  /// start as UNKNOWN (sec. 2.9 step 1).
  explicit Waveform(Time period, Value fill = Value::Unknown);
  static Waveform constant(Time period, Value v) { return Waveform(period, v); }
  /// Rebuilds a waveform from an explicit segment list (the compiled-design
  /// loader's deserialization path). Widths must be non-negative and sum to
  /// `period`; the list is normalized, so feeding back segments() of an
  /// existing waveform reconstructs it exactly.
  static Waveform from_segments(Time period, Time skew, std::vector<Segment> segs);

  Time period() const { return period_; }
  Time skew() const { return skew_; }
  void set_skew(Time s) { skew_ = s; }

  /// Value at cycle time t (taken modulo the period).
  Value at(Time t) const;

  /// Sets the circular interval [begin, end) to `v`. `end - begin` must not
  /// exceed the period; begin==end sets nothing; the interval may wrap.
  void set(Time begin, Time end, Value v);
  void fill(Value v);

  /// Returns this waveform delayed by [dmin, dmax]: the value list shifted
  /// circularly by dmin, skew increased by (dmax - dmin). Requires
  /// 0 <= dmin <= dmax.
  Waveform delayed(Time dmin, Time dmax) const;

  /// Polarity-dependent delay (the sec. 4.2.2 extension for technologies
  /// like nMOS with very different rising and falling delays): each value
  /// change toward 1 is delayed by [rise_min, rise_max], each change toward
  /// 0 by [fall_min, fall_max], and changes of unknown polarity by the
  /// combined worst-case window. The per-edge uncertainty cannot live in
  /// the single skew field, so it is folded into the value list (RISE/FALL/
  /// CHANGE windows); any existing skew is folded first. Overlapping
  /// uncertainty windows (a pulse narrower than the delay difference)
  /// collapse conservatively to CHANGE.
  Waveform delayed_rise_fall(Time rise_min, Time rise_max, Time fall_min,
                             Time fall_max) const;

  /// Folds the skew field into the value list (Fig 2-9): every value change
  /// a->b is widened into a window of length skew carrying RISE for
  /// monotone 0->1 movement, FALL for 1->0, CHANGE otherwise; overlapping
  /// windows collapse to CHANGE (UNKNOWN dominates). Result has skew 0.
  Waveform with_skew_incorporated() const;

  /// Pointwise binary combination (both operands must share the period;
  /// skews must already be handled by the caller -- see Primitive::eval).
  static Waveform binary(const Waveform& a, const Waveform& b, Value (*op)(Value, Value));
  /// Pointwise ternary combination (used by the multiplexer model).
  static Waveform ternary(const Waveform& a, const Waveform& b, const Waveform& c,
                          Value (*op)(Value, Value, Value));
  /// Pointwise unary map (NOT, CHG); preserves the skew field.
  Waveform map(Value (*op)(Value)) const;
  /// Replaces every occurrence of `from` with `to` (case analysis,
  /// sec. 2.7.1: STABLE values of selected control signals are mapped to
  /// 0 or 1); preserves the skew field.
  Waveform replaced(Value from, Value to) const;

  const std::vector<Segment>& segments() const { return segs_; }
  /// All value changes, in time order; includes a boundary at time 0 when
  /// the value differs across the period wrap.
  std::vector<Boundary> boundaries() const;

  /// Bitmask (1 << value) of the values present in circular [begin, end).
  /// begin==end is treated as the empty interval unless full_on_equal.
  std::uint8_t value_mask(Time begin, Time end) const;
  /// True if every value in circular [begin, end) is steady (0/1/S).
  bool steady_over(Time begin, Time end) const;
  /// True if the waveform is a single segment.
  bool is_constant() const { return segs_.size() == 1; }
  /// True if the signal ever (possibly) changes: any boundary, or any
  /// C/R/F value anywhere. Constant 0/1/S/U waveforms return false.
  bool has_activity() const;

  /// Earliest cycle time (starting the scan at `from`, circularly) at which
  /// the waveform enters a steady value that then persists until `until`.
  /// Returns false if the signal never settles over that span. Used for
  /// violation reporting ("data did not go stable until 47.5 nsec").
  bool settles(Time from, Time until, Time& settle_time) const;

  /// Renders e.g. "0.0:S 0.5:C 5.5:S 25.5:C 30.5:S (skew 0.5)" -- the
  /// Fig 3-10 style listing of value-change times in nanoseconds.
  std::string to_string(bool with_skew = true) const;

  bool operator==(const Waveform& o) const {
    return period_ == o.period_ && skew_ == o.skew_ && segs_ == o.segs_;
  }

  /// True when this waveform is in canonical form: segments normalized (no
  /// zero-width or mergeable neighbors -- an invariant every constructor
  /// already maintains) and no residual skew on a waveform with no activity
  /// (skew delays value *changes*; a signal that never changes is the same
  /// signal under any skew, so canonical form zeroes it).
  bool is_canonical() const { return has_activity() || skew_ == 0; }
  /// Rewrites *this into canonical form (idempotent).
  void canonicalize() {
    if (!has_activity()) skew_ = 0;
  }
  /// Canonical copy.
  Waveform canonical() const {
    Waveform w = *this;
    w.canonicalize();
    return w;
  }

  /// The one semantic equality every change-detection site (fixed-point
  /// convergence, case snapshots, diffing) must agree on: structural
  /// equality of the canonical forms. Unlike operator==, a skew-only
  /// difference between two activity-free waveforms does not count as a
  /// change. equivalent(a, b) <=> intern(a) == intern(b).
  bool equivalent(const Waveform& o) const {
    return period_ == o.period_ && segs_ == o.segs_ &&
           (skew_ == o.skew_ || !has_activity());
  }

  /// FNV-1a over the canonical form; equivalent waveforms hash alike.
  std::uint64_t canonical_hash() const;

  /// Storage accounting per the thesis' record layout (Table 3-3): a VALUE
  /// BASE record of 20 bytes plus 12 bytes per VALUE record (unpacked
  /// 4-byte PASCAL fields: value, width, link).
  std::size_t paper_storage_bytes() const { return 20 + 12 * segs_.size(); }
  std::size_t value_record_count() const { return segs_.size(); }

 private:
  /// Rebuilds from a list of (start time, value) change points sorted by
  /// time within [0, period); consecutive equal values are merged.
  static Waveform from_points(Time period, std::vector<std::pair<Time, Value>> pts, Time skew);
  void normalize();

  Time period_ = 0;
  Time skew_ = 0;
  std::vector<Segment> segs_;
};

}  // namespace tv
