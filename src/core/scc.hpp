// Strongly connected components (iterative Tarjan) over small adjacency
// lists. Shared by the static zero-delay-loop check (Netlist::finalize) and
// the dynamic oscillation localizer (Evaluator::feedback_cycles): both need
// to turn "something is looping" into the actual cycle of named nodes.
#pragma once

#include <cstdint>
#include <vector>

namespace tv {

/// Tarjan's algorithm, iterative (no recursion: component graphs can be as
/// deep as the netlist). `adj[v]` lists the successors of vertex v; vertices
/// are 0..adj.size()-1. Returns the components in reverse topological order;
/// every vertex appears in exactly one component.
std::vector<std::vector<std::uint32_t>> strongly_connected_components(
    const std::vector<std::vector<std::uint32_t>>& adj);

/// An actual cycle inside one SCC, as an ordered vertex sequence
/// v0 -> v1 -> ... -> vk -> v0 (the closing edge is implied, v0 is not
/// repeated). Returns an empty vector when the component is a single vertex
/// without a self-loop (i.e. not cyclic).
std::vector<std::uint32_t> cycle_through_component(
    const std::vector<std::vector<std::uint32_t>>& adj,
    const std::vector<std::uint32_t>& component);

}  // namespace tv
