// Fixpoint snapshot serialization (see fixpoint.hpp for the format), plus
// Verifier::snapshot/restore -- kept here, next to the wire format, the way
// reverify lives in incremental.cpp.
#include "core/fixpoint.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/wire_format.hpp"
#include "util/atomic_file.hpp"

namespace tv {
namespace {

using wire::ByteReader;
using wire::ByteWriter;
using wire::fnv1a;
using wire::kEndianTag;
using wire::kEndianTagSwapped;
using wire::kHeaderSize;
using wire::kSectionEntrySize;
using wire::Loader;
using wire::read_waveform;
using wire::write_waveform;

// Section ids (the table is written in this order).
enum : std::uint32_t {
  kSecBind = 1,
  kSecWaves = 2,
  kSecSigs = 3,
  kSecResult = 4,
  kSecCases = 5,
};
constexpr std::uint32_t kSectionIds[] = {kSecBind, kSecWaves, kSecSigs, kSecResult,
                                         kSecCases};
constexpr std::size_t kSectionCount = sizeof(kSectionIds) / sizeof(kSectionIds[0]);

/// Degradation codes are static diag constants in-process; on disk they are
/// strings. Restore maps them back so Degradation::code keeps pointing at
/// storage with program lifetime; an unrecognized code is a malformed
/// snapshot, not a leak-prone allocation.
const char* intern_degradation_code(const std::string& code) {
  for (const char* k : {diag::kWarnSegmentCap, diag::kWarnTimeLimit,
                        diag::kWarnTableFull, diag::kWarnCheckDeadline}) {
    if (code == k) return k;
  }
  return nullptr;
}

// ---------------------------------------------------------------- writing

void write_violations(ByteWriter& w, const std::vector<Violation>& vs) {
  w.u32(static_cast<std::uint32_t>(vs.size()));
  for (const Violation& v : vs) {
    w.u8(static_cast<std::uint8_t>(v.type));
    w.u32(v.prim);
    w.u32(v.signal);
    w.i64(v.missed_by);
    w.str(v.message);
  }
}

std::string build_bind(const std::string& design, const Netlist& nl,
                       const VerifierOptions& opts, std::uint64_t artifact_hash,
                       std::uint64_t report_digest) {
  ByteWriter w;
  w.u64(artifact_hash);
  w.u64(netlist_shape_digest(nl));
  w.u64(options_semantic_digest(opts));
  w.u64(report_digest);
  w.u32(static_cast<std::uint32_t>(nl.num_signals()));
  w.u32(static_cast<std::uint32_t>(nl.num_prims()));
  w.str(design);
  return w.take();
}

/// Deduplicated waveform arena + per-signal (arena ref, eval string): the
/// on-disk mirror of the evaluator's interned wave table. Shared waveforms
/// (clocks, constants -- the common case by far) serialize once.
void build_waves_and_sigs(const Netlist& nl, std::string& waves_out,
                          std::string& sigs_out) {
  ByteWriter waves;
  ByteWriter sigs;
  std::vector<Waveform> arena;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  sigs.u32(static_cast<std::uint32_t>(nl.num_signals()));
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    Waveform w = s.wave.canonical();
    std::uint64_t h = w.canonical_hash();
    std::uint32_t ref = kNoWaveform;
    for (std::uint32_t cand : buckets[h]) {
      if (arena[cand].equivalent(w)) {
        ref = cand;
        break;
      }
    }
    if (ref == kNoWaveform) {
      ref = static_cast<std::uint32_t>(arena.size());
      buckets[h].push_back(ref);
      arena.push_back(std::move(w));
    }
    sigs.u32(ref);
    sigs.str(s.eval_str);
  }
  waves.u32(static_cast<std::uint32_t>(arena.size()));
  for (const Waveform& w : arena) write_waveform(waves, w);
  waves_out = waves.take();
  sigs_out = sigs.take();
}

std::string build_result(const VerifyResult& r) {
  ByteWriter w;
  write_violations(w, r.violations);
  w.u64(r.base_events);
  w.u64(r.base_evals);
  w.u8(r.converged ? 1 : 0);
  w.u8(r.partial ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(r.degradations.size()));
  for (const Degradation& d : r.degradations) {
    w.str(d.code);
    w.str(d.message);
  }
  w.u32(static_cast<std::uint32_t>(r.cases.size()));
  for (const VerifyResult::CaseResult& c : r.cases) {
    w.str(c.name);
    w.u64(c.events);
    w.u8(c.converged ? 1 : 0);
    w.u8(c.degraded ? 1 : 0);
    write_violations(w, c.violations);
  }
  w.u32(static_cast<std::uint32_t>(r.cross_reference.size()));
  for (SignalId id : r.cross_reference) w.u32(id);
  return w.take();
}

std::string build_cases(const std::vector<CaseSpec>& cases) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(cases.size()));
  for (const CaseSpec& c : cases) {
    w.str(c.name);
    w.u32(static_cast<std::uint32_t>(c.pins.size()));
    for (const auto& [sig, value] : c.pins) {
      w.u32(sig);
      w.u8(static_cast<std::uint8_t>(value));
    }
  }
  return w.take();
}

// ---------------------------------------------------------------- reading

bool read_violations(ByteReader& r, std::vector<Violation>& out, std::uint32_t nsignals,
                     std::uint32_t nprims, Loader& L) {
  std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.truncated(); ++i) {
    Violation v;
    std::uint8_t type = r.u8();
    if (!r.truncated() && type > static_cast<std::uint8_t>(Violation::Type::Unconverged))
      return L.fail(diag::kErrSnapshotMalformed, "bad violation kind");
    v.type = static_cast<Violation::Type>(type);
    v.prim = r.u32();
    if (!r.truncated() && v.prim != kNoPrim && v.prim >= nprims)
      return L.fail(diag::kErrSnapshotMalformed, "violation primitive out of range");
    v.signal = r.u32();
    if (!r.truncated() && v.signal != kNoSignal && v.signal >= nsignals)
      return L.fail(diag::kErrSnapshotMalformed, "violation signal out of range");
    v.missed_by = r.i64();
    v.message = r.str();
    if (r.truncated()) break;
    out.push_back(std::move(v));
  }
  return true;
}

bool read_bind(ByteReader& r, FixpointState& st, std::uint32_t& nsignals) {
  st.artifact_hash = r.u64();
  st.shape_digest = r.u64();
  st.options_digest = r.u64();
  st.report_digest = r.u64();
  nsignals = r.u32();
  st.num_prims = r.u32();
  st.design = r.str();
  return true;
}

bool read_waves(ByteReader& r, std::vector<Waveform>& arena, Loader& L) {
  std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.truncated(); ++i) {
    Waveform w;
    if (!read_waveform(r, w, L)) return false;
    if (r.truncated()) break;
    arena.push_back(std::move(w));
  }
  return true;
}

bool read_sigs(ByteReader& r, const std::vector<Waveform>& arena, std::uint32_t nsignals,
               FixpointState& st, Loader& L) {
  std::uint32_t count = r.u32();
  if (!r.truncated() && count != nsignals)
    return L.fail(diag::kErrSnapshotMalformed,
                  "signal table does not match the bound signal count");
  for (std::uint32_t i = 0; i < count && !r.truncated(); ++i) {
    std::uint32_t ref = r.u32();
    std::string eval_str = r.str();
    if (r.truncated()) break;
    if (ref >= arena.size())
      return L.fail(diag::kErrSnapshotMalformed, "waveform ref out of range");
    st.waves.push_back(arena[ref]);
    st.eval_strs.push_back(std::move(eval_str));
  }
  return true;
}

bool read_result(ByteReader& r, std::uint32_t nsignals, std::uint32_t nprims,
                 FixpointState& st, Loader& L) {
  VerifyResult& res = st.result;
  if (!read_violations(r, res.violations, nsignals, nprims, L)) return false;
  res.base_events = r.u64();
  res.base_evals = r.u64();
  res.converged = r.u8() != 0;
  res.partial = r.u8() != 0;
  std::uint32_t ndeg = r.u32();
  for (std::uint32_t i = 0; i < ndeg && !r.truncated(); ++i) {
    std::string code = r.str();
    std::string message = r.str();
    if (r.truncated()) break;
    const char* interned = intern_degradation_code(code);
    if (interned == nullptr)
      return L.fail(diag::kErrSnapshotMalformed,
                    "unknown degradation code \"" + code + "\"");
    res.degradations.push_back(Degradation{interned, std::move(message)});
  }
  std::uint32_t ncases = r.u32();
  for (std::uint32_t i = 0; i < ncases && !r.truncated(); ++i) {
    VerifyResult::CaseResult c;
    c.name = r.str();
    c.events = r.u64();
    c.converged = r.u8() != 0;
    c.degraded = r.u8() != 0;
    if (!read_violations(r, c.violations, nsignals, nprims, L)) return false;
    if (r.truncated()) break;
    res.cases.push_back(std::move(c));
  }
  std::uint32_t nxref = r.u32();
  for (std::uint32_t i = 0; i < nxref && !r.truncated(); ++i) {
    std::uint32_t id = r.u32();
    if (!r.truncated() && id >= nsignals)
      return L.fail(diag::kErrSnapshotMalformed, "cross-reference signal out of range");
    res.cross_reference.push_back(id);
  }
  return true;
}

bool read_cases(ByteReader& r, std::uint32_t nsignals, FixpointState& st, Loader& L) {
  std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.truncated(); ++i) {
    CaseSpec c;
    c.name = r.str();
    std::uint32_t npins = r.u32();
    for (std::uint32_t j = 0; j < npins && !r.truncated(); ++j) {
      std::uint32_t sig = r.u32();
      std::uint8_t value = r.u8();
      if (r.truncated()) break;
      if (sig >= nsignals)
        return L.fail(diag::kErrSnapshotMalformed,
                      "case \"" + c.name + "\": signal out of range");
      if (value != static_cast<std::uint8_t>(Value::Zero) &&
          value != static_cast<std::uint8_t>(Value::One))
        return L.fail(diag::kErrSnapshotMalformed, "case \"" + c.name + "\": bad value");
      c.pins.emplace_back(sig, static_cast<Value>(value));
    }
    if (r.truncated()) break;
    st.cases.push_back(std::move(c));
  }
  return true;
}

}  // namespace

std::uint64_t netlist_shape_digest(const Netlist& nl) {
  // Everything restore needs to agree on before grafting a fixpoint:
  // per-signal identity and parameters, per-primitive kind/parameters and
  // connectivity. Evaluation state (wave, eval_str) is deliberately
  // excluded -- that is the payload, not the binding.
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(nl.num_signals()));
  w.u32(static_cast<std::uint32_t>(nl.num_prims()));
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    w.str(s.full_name);
    w.u8(s.wire_delay ? 1 : 0);
    if (s.wire_delay) {
      w.i64(s.wire_delay->dmin);
      w.i64(s.wire_delay->dmax);
    }
  }
  for (PrimId id = 0; id < nl.num_prims(); ++id) {
    const Primitive& p = nl.prim(id);
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.str(p.name);
    w.i64(p.dmin);
    w.i64(p.dmax);
    w.u8(p.rise_fall ? 1 : 0);
    if (p.rise_fall) {
      w.i64(p.rise_fall->rise_min);
      w.i64(p.rise_fall->rise_max);
      w.i64(p.rise_fall->fall_min);
      w.i64(p.rise_fall->fall_max);
    }
    w.i64(p.setup);
    w.i64(p.hold);
    w.i64(p.min_high);
    w.i64(p.min_low);
    w.u32(p.output);
    w.u32(static_cast<std::uint32_t>(p.inputs.size()));
    for (const Pin& pin : p.inputs) {
      w.u32(pin.sig);
      w.u8(pin.invert ? 1 : 0);
      w.str(pin.directives);
    }
  }
  std::string bytes = w.take();
  return fnv1a(bytes.data(), bytes.size());
}

std::uint64_t options_semantic_digest(const VerifierOptions& o) {
  ByteWriter w;
  w.i64(o.period);
  w.i64(o.units.ps_per_unit());
  w.i64(o.default_wire.dmin);
  w.i64(o.default_wire.dmax);
  w.f64(o.assertion_defaults.precision_skew_minus_ns);
  w.f64(o.assertion_defaults.precision_skew_plus_ns);
  w.f64(o.assertion_defaults.clock_skew_minus_ns);
  w.f64(o.assertion_defaults.clock_skew_plus_ns);
  w.u64(o.max_evals_per_prim);
  w.u64(o.max_segments_per_signal);
  w.u32(o.max_waveforms_per_shard);
  std::string bytes = w.take();
  return fnv1a(bytes.data(), bytes.size());
}

std::string serialize_fixpoint(const Verifier& v, const std::string& design,
                               std::uint64_t artifact_hash) {
  if (!v.has_baseline()) {
    throw std::logic_error("serialize_fixpoint: verifier has no baseline fixpoint");
  }
  const Netlist& nl = v.evaluator().netlist();
  std::string waves_sec, sigs_sec;
  build_waves_and_sigs(nl, waves_sec, sigs_sec);
  std::string result_sec = build_result(v.baseline());
  std::uint64_t report_digest = fnv1a(result_sec.data(), result_sec.size());
  const std::string sections[kSectionCount] = {
      build_bind(design, nl, v.evaluator().options(), artifact_hash, report_digest),
      std::move(waves_sec), std::move(sigs_sec), std::move(result_sec),
      build_cases(v.baseline_cases())};

  // Section table + payload, then the header over them (same assembly as
  // serialize_compiled).
  ByteWriter body;
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    body.u32(kSectionIds[i]);
    body.u32(0);  // reserved
    body.u64(offset);
    body.u64(sections[i].size());
    offset += sections[i].size();
  }
  std::string out = body.take();
  for (const std::string& s : sections) out += s;

  std::uint64_t content_hash = fnv1a(out.data(), out.size());

  ByteWriter header;
  for (std::size_t i = 0; i < 8; ++i) header.u8(static_cast<std::uint8_t>(kFixpointMagic[i]));
  header.u32(kEndianTag);
  header.u32(kFixpointFormatVersion);
  header.u64(content_hash);
  header.u64(out.size());
  header.u32(static_cast<std::uint32_t>(kSectionCount));
  header.u32(0);  // reserved
  return header.take() + out;
}

std::optional<FixpointState> load_fixpoint(std::string_view bytes, std::string_view origin,
                                           diag::DiagnosticEngine& diags) {
  Loader L{diags, origin, diag::kErrSnapshotMalformed};
  if (bytes.size() < kHeaderSize) {
    L.fail(diag::kErrSnapshotTruncated, "file too small to hold a snapshot header");
    return std::nullopt;
  }
  ByteReader h(bytes.substr(0, kHeaderSize));
  char magic[8];
  for (char& c : magic) c = static_cast<char>(h.u8());
  if (std::memcmp(magic, kFixpointMagic, sizeof magic) != 0) {
    L.fail(diag::kErrSnapshotMagic, "not a fixpoint snapshot (bad magic)");
    return std::nullopt;
  }
  std::uint32_t endian = h.u32();
  if (endian != kEndianTag) {
    L.fail(endian == kEndianTagSwapped ? diag::kErrSnapshotEndian
                                       : diag::kErrSnapshotMalformed,
           endian == kEndianTagSwapped ? "snapshot written with opposite byte order"
                                       : "bad endianness tag");
    return std::nullopt;
  }
  std::uint32_t version = h.u32();
  if (version != kFixpointFormatVersion) {
    L.fail(diag::kErrSnapshotVersion,
           "format version " + std::to_string(version) + " (this build reads version " +
               std::to_string(kFixpointFormatVersion) + "); re-run to regenerate");
    return std::nullopt;
  }
  std::uint64_t stored_hash = h.u64();
  std::uint64_t payload_size = h.u64();
  std::uint32_t nsections = h.u32();
  if (payload_size != bytes.size() - kHeaderSize) {
    L.fail(diag::kErrSnapshotTruncated,
           payload_size > bytes.size() - kHeaderSize ? "snapshot is truncated"
                                                     : "trailing bytes after the payload");
    return std::nullopt;
  }
  std::string_view payload = bytes.substr(kHeaderSize);
  std::uint64_t hash = fnv1a(payload.data(), payload.size());
  if (hash != stored_hash) {
    L.fail(diag::kErrSnapshotHash, "content hash mismatch (snapshot is corrupted)");
    return std::nullopt;
  }
  if (nsections != kSectionCount || payload.size() < nsections * kSectionEntrySize) {
    L.fail(diag::kErrSnapshotMalformed, "bad section table");
    return std::nullopt;
  }

  std::string_view sections[kSectionCount];
  {
    ByteReader t(payload.substr(0, kSectionCount * kSectionEntrySize));
    std::string_view data = payload.substr(kSectionCount * kSectionEntrySize);
    for (std::size_t i = 0; i < kSectionCount; ++i) {
      std::uint32_t id = t.u32();
      t.u32();  // reserved
      std::uint64_t off = t.u64();
      std::uint64_t size = t.u64();
      if (id != kSectionIds[i] || off > data.size() || size > data.size() - off) {
        L.fail(diag::kErrSnapshotMalformed, "bad section table");
        return std::nullopt;
      }
      sections[i] = data.substr(off, size);
    }
  }

  FixpointState st;
  std::uint32_t nsignals = 0;
  std::vector<Waveform> arena;
  ByteReader readers[kSectionCount] = {ByteReader(sections[0]), ByteReader(sections[1]),
                                       ByteReader(sections[2]), ByteReader(sections[3]),
                                       ByteReader(sections[4])};
  bool ok = read_bind(readers[0], st, nsignals) && read_waves(readers[1], arena, L) &&
            read_sigs(readers[2], arena, nsignals, st, L) &&
            read_result(readers[3], nsignals, st.num_prims, st, L) &&
            read_cases(readers[4], nsignals, st, L);
  if (ok) {
    for (std::size_t i = 0; i < kSectionCount; ++i) {
      if (readers[i].truncated()) {
        L.fail(diag::kErrSnapshotTruncated, "section ends mid-record");
        break;
      }
      if (!readers[i].at_end()) {
        L.fail(diag::kErrSnapshotMalformed, "unconsumed bytes at the end of a section");
        break;
      }
    }
  }
  if (!L.failed && st.report_digest != fnv1a(sections[3].data(), sections[3].size())) {
    L.fail(diag::kErrSnapshotMalformed, "report digest mismatch");
  }
  if (L.failed) return std::nullopt;
  return st;
}

std::optional<FixpointState> load_fixpoint_file(const std::string& path,
                                                diag::DiagnosticEngine& diags) {
  // Same mmap-with-fallback discipline as load_compiled_file: parse out of
  // a read-only mapping, release it before return (load_fixpoint copies).
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    diags.report(diag::Severity::Error, diag::kErrSnapshotIo, diag::SourceLoc{},
                 path + ": cannot open fixpoint snapshot");
    return std::nullopt;
  }
  struct stat st{};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    std::size_t len = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      auto result = load_fixpoint(
          std::string_view(static_cast<const char*>(map), len), path, diags);
      ::munmap(map, len);
      return result;
    }
  }
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    diags.report(diag::Severity::Error, diag::kErrSnapshotIo, diag::SourceLoc{},
                 path + ": cannot open fixpoint snapshot");
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    diags.report(diag::Severity::Error, diag::kErrSnapshotIo, diag::SourceLoc{},
                 path + ": read error");
    return std::nullopt;
  }
  std::string bytes = buf.str();
  return load_fixpoint(bytes, path, diags);
}

bool write_fixpoint_file(const Verifier& v, const std::string& design,
                         std::uint64_t artifact_hash, const std::string& path,
                         std::string* error) {
  std::string bytes = serialize_fixpoint(v, design, artifact_hash);
  return util::atomic_write_file(path, bytes, error);
}

// ------------------------------------------------- Verifier::snapshot/restore

std::string Verifier::snapshot(const std::string& design,
                               std::uint64_t artifact_hash) const {
  return serialize_fixpoint(*this, design, artifact_hash);
}

bool Verifier::restore(const FixpointState& state, std::uint64_t expected_artifact_hash,
                       diag::DiagnosticEngine& diags) {
  auto reject = [&](const std::string& message) {
    diags.report(diag::Severity::Error, diag::kErrSnapshotBinding, diag::SourceLoc{},
                 "snapshot of \"" + state.design + "\": " + message);
    return false;
  };
  const Netlist& nl = ev_.netlist();
  if (state.artifact_hash != expected_artifact_hash) {
    return reject("bound to a different compiled artifact");
  }
  if (state.waves.size() != nl.num_signals() || state.num_prims != nl.num_prims()) {
    return reject("signal/primitive counts do not match this design");
  }
  if (state.shape_digest != netlist_shape_digest(nl)) {
    return reject("netlist shape digest does not match this design");
  }
  if (state.options_digest != options_semantic_digest(ev_.options())) {
    return reject("verifier options do not match the snapshot's");
  }
  ev_.restore_fixpoint(state.waves, state.eval_strs, state.result.converged,
                       state.result.partial, state.result.degradations);
  last_ = state.result;
  last_cases_ = state.cases;
  has_baseline_ = true;
  return true;
}

}  // namespace tv
