#include "core/value.hpp"

namespace tv {

char value_letter(Value v) {
  switch (v) {
    case Value::Zero: return '0';
    case Value::One: return '1';
    case Value::Stable: return 'S';
    case Value::Change: return 'C';
    case Value::Rise: return 'R';
    case Value::Fall: return 'F';
    case Value::Unknown: return 'U';
  }
  return '?';
}

std::string value_name(Value v) {
  switch (v) {
    case Value::Zero: return "0";
    case Value::One: return "1";
    case Value::Stable: return "STABLE";
    case Value::Change: return "CHANGE";
    case Value::Rise: return "RISE";
    case Value::Fall: return "FALL";
    case Value::Unknown: return "UNKNOWN";
  }
  return "?";
}

bool parse_value_letter(char c, Value& out) {
  switch (c) {
    case '0': out = Value::Zero; return true;
    case '1': out = Value::One; return true;
    case 'S': case 's': out = Value::Stable; return true;
    case 'C': case 'c': out = Value::Change; return true;
    case 'R': case 'r': out = Value::Rise; return true;
    case 'F': case 'f': out = Value::Fall; return true;
    case 'U': case 'u': out = Value::Unknown; return true;
  }
  return false;
}

namespace {

// Shared worst-case combination for the symmetric gates. `dominant` is the
// value that forces the output regardless of the other input (1 for OR,
// 0 for AND); `identity` is the value that passes the other input through.
Value gate_combine(Value a, Value b, Value dominant, Value identity) {
  if (a == dominant || b == dominant) return dominant;
  if (a == identity) return b;
  if (b == identity) return a;
  if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
  // Remaining operands are drawn from {S, C, R, F}.
  if (a == b) return a;  // S|S=S, R|R=R, F|F=F, C|C=C
  if (a == Value::Stable) return b;  // worst case: the changing input wins
  if (b == Value::Stable) return a;
  // Two distinct changing values (R/F, R/C, F/C): the output may glitch in
  // either direction, so the only sound description is CHANGE.
  return Value::Change;
}

}  // namespace

Value value_or(Value a, Value b) {
  return gate_combine(a, b, Value::One, Value::Zero);
}

Value value_and(Value a, Value b) {
  return gate_combine(a, b, Value::Zero, Value::One);
}

Value value_xor(Value a, Value b) {
  if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
  if (a == Value::Zero) return b;
  if (b == Value::Zero) return a;
  if (a == Value::One) return value_not(b);
  if (b == Value::One) return value_not(a);
  // Both in {S, C, R, F}. XOR of a stable-but-unknown value with an edge can
  // produce an edge of either polarity, and two edges can glitch, so any
  // changing operand collapses to CHANGE; S^S stays S.
  if (a == Value::Stable && b == Value::Stable) return Value::Stable;
  return Value::Change;
}

Value value_not(Value a) {
  switch (a) {
    case Value::Zero: return Value::One;
    case Value::One: return Value::Zero;
    case Value::Rise: return Value::Fall;
    case Value::Fall: return Value::Rise;
    default: return a;  // S, C, U are closed under inversion
  }
}

Value value_chg(Value a) {
  if (a == Value::Unknown) return Value::Unknown;
  return is_changing(a) ? Value::Change : Value::Stable;
}

Value value_chg(Value a, Value b) {
  if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
  return (is_changing(a) || is_changing(b)) ? Value::Change : Value::Stable;
}

Value value_union(Value a, Value b) {
  if (a == b) return a;
  if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
  // Normalize order so each unordered pair is handled once.
  if (static_cast<int>(a) > static_cast<int>(b)) std::swap(a, b);
  auto pair = [](Value x, Value y) { return static_cast<int>(x) * 8 + static_cast<int>(y); };
  switch (pair(a, b)) {
    case 0 * 8 + 1: return Value::Change;          // {0,1}: could flip
    case 0 * 8 + 2: return Value::Stable;          // {0,S}
    case 1 * 8 + 2: return Value::Stable;          // {1,S}
    case 0 * 8 + 4: return Value::Rise;            // {0,R}
    case 1 * 8 + 4: return Value::Rise;            // {1,R}
    case 1 * 8 + 5: return Value::Fall;            // {1,F}
    case 0 * 8 + 5: return Value::Fall;            // {0,F}
    case 2 * 8 + 4: return Value::Rise;            // {S,R}: may be rising
    case 2 * 8 + 5: return Value::Fall;            // {S,F}: may be falling
    default: return Value::Change;                 // {S,C},{C,*},{R,F},...
  }
}

namespace {

// Union of the *behaviours* of two signals when exactly one of them is
// being observed but we do not know which (a multiplexer with a stable
// select). Unlike value_union, {0,1} here yields STABLE: the output is one
// constant or the other, it never switches between them.
Value behaviour_union(Value a, Value b) {
  if (a == b) return a;
  if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
  if (is_steady(a) && is_steady(b)) return Value::Stable;
  return value_union(a, b);
}

}  // namespace

Value value_mux(Value sel, Value a, Value b) {
  switch (sel) {
    case Value::Zero: return a;
    case Value::One: return b;
    case Value::Unknown: return Value::Unknown;
    case Value::Stable: return behaviour_union(a, b);
    default:
      // Select may be switching: the output can glitch between the two data
      // inputs unless they agree on a *definite* value. Two STABLE inputs do
      // not qualify: each is stable at an unknown value, and those values
      // may differ, so the hand-over is a possible change.
      if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
      if (a == b && is_definite(a)) return a;
      return Value::Change;
  }
}

}  // namespace tv
