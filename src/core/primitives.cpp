#include "core/primitives.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tv {

namespace {

// ---------------------------------------------------------------------------
// Skew discipline (sec. 2.8): count the inputs that can change. With at most
// one changing input the skew can stay in the separate field; with two or
// more it must be folded into the value lists before combining.
// ---------------------------------------------------------------------------

std::size_t count_active(const std::vector<const Waveform*>& ws) {
  std::size_t n = 0;
  for (const Waveform* w : ws) {
    if (w->has_activity()) ++n;
  }
  return n;
}

// Left-fold of a binary seven-value op over prepared waves, handling the
// skew rule. Returns the zero-delay combination; the caller applies the
// element delay.
Waveform fold(const std::vector<const Waveform*>& ws, Value (*op)(Value, Value), Time period) {
  if (ws.empty()) return Waveform(period, Value::Unknown);
  if (ws.size() == 1) return *ws[0];
  bool multiple_active = count_active(ws) >= 2;
  Waveform acc = multiple_active ? ws[0]->with_skew_incorporated() : *ws[0];
  // Carried skew comes from the (at most one) *active* input; a steady input
  // with a residual skew field must not leak it onto the combination.
  Time carried_skew = (!multiple_active && acc.has_activity()) ? acc.skew() : 0;
  for (std::size_t i = 1; i < ws.size(); ++i) {
    Waveform next = multiple_active ? ws[i]->with_skew_incorporated() : *ws[i];
    if (!multiple_active && next.has_activity()) carried_skew = next.skew();
    acc = Waveform::binary(acc, next, op);
  }
  acc.set_skew(carried_skew);
  return acc;
}

// A flip between two steady values (0 -> 1 on an input of a CHG-modeled
// adder, say) is invisible to the pointwise seven-value tables: both sides
// map to the same output value. The output nonetheless changes somewhere in
// [t + dmin, t + dmax (+ input skew)], so overlay an explicit CHANGE window
// there. Needed for CHG and XOR, whose tables collapse 0 and 1.
void overlay_flip_windows(Waveform& out, const std::vector<const Waveform*>& ins, Time dmin,
                          Time dmax) {
  std::vector<std::pair<Time, Time>> wins;
  for (const Waveform* w : ins) {
    for (const auto& b : w->boundaries()) {
      if (is_steady(b.from) && is_steady(b.to)) {
        wins.emplace_back(b.time + dmin, b.time + dmax + w->skew());
      }
    }
  }
  if (wins.empty()) return;
  out = out.with_skew_incorporated();
  for (const auto& [s, e] : wins) out.set(s, std::max(e, s + 1), Value::Change);
}

// The identity (enabling) value a directive 'A'/'H' substitutes for the
// non-clock inputs of a gate (sec. 2.6: "assume that the other inputs are
// enabling the gate").
Value enabling_value(PrimKind k) {
  switch (k) {
    case PrimKind::And: return Value::One;
    case PrimKind::Or:
    case PrimKind::Xor:
    case PrimKind::Chg: return Value::Zero;
    default: return Value::One;
  }
}

Value (*gate_op(PrimKind k))(Value, Value) {
  switch (k) {
    case PrimKind::Or: return value_or;
    case PrimKind::And: return value_and;
    case PrimKind::Xor: return value_xor;
    case PrimKind::Chg: return value_chg;
    default: return nullptr;
  }
}

// --- register / latch helper models ---------------------------------------

Value sr_override(Value s, Value r, Value q) {
  if (s == Value::Unknown || r == Value::Unknown) return Value::Unknown;
  if (s == Value::One && r == Value::One) return Value::Unknown;  // sec. 2.4.3
  if (s == Value::One) return Value::One;
  if (r == Value::One) return Value::Zero;
  if (is_changing(s) || is_changing(r)) return Value::Change;
  if (s == Value::Stable || r == Value::Stable) {
    // The asynchronous input is stable but of unknown value: it may be
    // constantly overriding. The output is steady but its value unknown.
    return is_steady(q) ? Value::Stable : Value::Change;
  }
  return q;  // both inactive: normal storage behaviour
}

Value latch_fun(Value e, Value d, Value h) {
  if (e == Value::Unknown) return Value::Unknown;
  if (e == Value::Zero) return h;   // opaque: held value
  if (e == Value::One) return d;    // transparent: follows data
  if (d == Value::Unknown || h == Value::Unknown) return Value::Unknown;
  // Only a *definite* agreement makes the hand-over between held and data
  // value-free; two STABLE values may differ.
  if (d == h && is_definite(d)) return d;
  if (e == Value::Stable) {
    // Statically transparent or opaque (we do not know which): steady only
    // if both possible behaviours are steady.
    if (is_steady(d) && is_steady(h)) return Value::Stable;
    return Value::Change;
  }
  // Enable may be switching: output may move between held and data values.
  return Value::Change;
}

// Builds the piecewise-constant "held value" waveform of a latch: the value
// captured at each falling-edge window of the enable, holding until the
// next capture (periodic, so the last capture wraps to the cycle start).
Waveform held_waveform(const Waveform& enable, const Waveform& data, Time period) {
  std::vector<EdgeWindow> falls = edge_windows(enable, /*rising=*/false);
  if (falls.empty()) {
    // No extractable falling window. A truly steady enable never captures,
    // so STABLE stands -- but an enable that is changing (or unknown) for the
    // whole cycle has no boundaries at all and still may capture at any
    // time: the held value is then conservatively CHANGE.
    for (const auto& seg : enable.segments()) {
      if (is_changing(seg.value) || seg.value == Value::Unknown) {
        return Waveform(period, Value::Change);
      }
    }
    return Waveform(period, Value::Stable);
  }
  Waveform held(period, Value::Stable);
  for (std::size_t j = 0; j < falls.size(); ++j) {
    Value captured = sample_over(data, falls[j]);
    Time begin = floor_mod(falls[j].end, period);
    Time end = floor_mod(falls[(j + 1) % falls.size()].end, period);
    Time width = floor_mod(end - begin, period);
    if (width == 0) width = period;  // single capture holds all cycle
    held.set(begin, begin + width, captured);
  }
  return held;
}

Waveform eval_register(const Primitive& p, const Waveform& data_in, const Waveform& clock_in,
                       Time period) {
  Waveform clock = clock_in.with_skew_incorporated();
  Waveform data = data_in.with_skew_incorporated();
  if (clock.is_constant() && clock.segments()[0].value == Value::Unknown) {
    return Waveform(period, Value::Unknown);
  }
  std::vector<EdgeWindow> edges = edge_windows(clock, /*rising=*/true);
  if (edges.empty()) {
    // Same reasoning as held_waveform: a whole-cycle CHANGE (or UNKNOWN)
    // clock has no boundaries, hence no edge windows, yet can clock the
    // register at any time -- the output must be CHANGE, not STABLE.
    for (const auto& seg : clock.segments()) {
      if (is_changing(seg.value) || seg.value == Value::Unknown) {
        return Waveform(period, Value::Change);
      }
    }
    return Waveform(period, Value::Stable);
  }

  // Output: CHANGE from (edge start + min delay) to (edge end + max delay),
  // then the captured value until the next edge's change window (Fig 2-1).
  Waveform out(period, Value::Stable);
  std::vector<Value> captured(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    captured[k] = sample_over(data, edges[k]);
    if (captured[k] == Value::Unknown) captured[k] = Value::Stable;  // sec. 2.4.3 wording
    Time settle = floor_mod(edges[k].end + p.dmax, period);
    Time next_change = floor_mod(edges[(k + 1) % edges.size()].start + p.dmin, period);
    Time width = floor_mod(next_change - settle, period);
    if (width == 0 && edges.size() == 1) width = period;
    out.set(settle, settle + width, captured[k]);
  }
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const EdgeWindow& e = edges[k];
    Time cb = floor_mod(e.start + p.dmin, period);
    // The edge window may wrap the cycle boundary (end < start numerically).
    Time cw = floor_mod(e.end - e.start, period) + (p.dmax - p.dmin);
    if (cw == 0) {
      // Precise edge with a fixed delay: the output still re-captures at one
      // exact instant, and the new value may differ from the held one unless
      // both are the same definite constant. Give the change window the
      // minimum representable width so it stays visible downstream (a
      // zero-width set() paints nothing and the output would wrongly read
      // as stable through the capture).
      Value prev = captured[(k + edges.size() - 1) % edges.size()];
      if (is_definite(captured[k]) && captured[k] == prev) continue;
      cw = 1;
    }
    if (cw >= period) return Waveform(period, Value::Change);
    out.set(cb, cb + cw, Value::Change);
  }
  return out;
}

Waveform eval_latch(const Primitive& p, const Waveform& data_in, const Waveform& enable_in,
                    Time period) {
  Waveform enable = enable_in.with_skew_incorporated();
  Waveform data = data_in.with_skew_incorporated();
  Waveform held = held_waveform(enable, data, period);
  Waveform out = Waveform::ternary(enable, data, held, latch_fun);
  // An instantaneous enable rise (a direct 0->1 boundary with no RISE
  // window) hands the output over from the held value to the data value at
  // one exact instant. When the data cannot be shown to have sat still since
  // the previous capture, the two values may differ, and the handover must
  // stay visible -- latch_fun sees only equal-looking STABLE values on both
  // sides of the boundary and would merge them into an unbroken segment.
  std::vector<EdgeWindow> falls = edge_windows(enable, /*rising=*/false);
  for (const auto& b : enable.boundaries()) {
    if (b.from != Value::Zero || b.to != Value::One) continue;
    bool still = false;
    for (const EdgeWindow& f : falls) {
      // Data steady from the previous capture window's start through the
      // rise means the captured (held) value equals the present data value.
      Time span = floor_mod(b.time - f.start, period);
      if (data.steady_over(f.start, f.start + span)) {
        still = true;
        break;
      }
    }
    if (still) continue;
    out.set(b.time, b.time + 1, Value::Change);
  }
  return out.delayed(p.dmin, p.dmax);
}

Waveform apply_set_reset(const Primitive& p, Waveform base, const Waveform& set_in,
                         const Waveform& reset_in) {
  // SET/RESET have the same propagation delay as the other inputs
  // (sec. 2.4.3); the base output already includes the element delay.
  Waveform s = set_in.delayed(p.dmin, p.dmax).with_skew_incorporated();
  Waveform r = reset_in.delayed(p.dmin, p.dmax).with_skew_incorporated();
  base = base.with_skew_incorporated();
  return Waveform::ternary(s, r, base, sr_override);
}

}  // namespace

std::vector<EdgeWindow> edge_windows(const Waveform& w, bool rising) {
  assert(w.skew() == 0 && "incorporate skew before extracting edges");
  std::vector<EdgeWindow> out;
  const Value from_level = rising ? Value::Zero : Value::One;
  const Value to_level = rising ? Value::One : Value::Zero;
  const Value matching_edge = rising ? Value::Rise : Value::Fall;

  std::vector<Waveform::Boundary> bs = w.boundaries();
  for (std::size_t i = 0; i < bs.size(); ++i) {
    const auto& b = bs[i];
    // Direct instantaneous edge.
    if (b.from == from_level && b.to == to_level) {
      out.push_back(EdgeWindow{b.time, b.time});
      continue;
    }
    // Entry into a run of transition values. Walk the run to its exit and
    // decide whether the run can contain an edge of the wanted polarity.
    if (is_steady(b.from) && is_changing(b.to)) {
      bool can = false;
      Time start = b.time;
      std::size_t j = i;
      Time end = start;
      Value run_exit = b.to;
      for (std::size_t step = 0; step < bs.size(); ++step) {
        const auto& cur = bs[(j + step) % bs.size()];
        if (step > 0 && !is_changing(cur.from)) break;
        if (step > 0) {
          if (cur.from == Value::Change || cur.from == matching_edge) can = true;
          if (!is_changing(cur.to)) {
            end = cur.time;
            run_exit = cur.to;
            break;
          }
        } else {
          if (cur.to == Value::Change || cur.to == matching_edge) can = true;
        }
        end = cur.time;
        run_exit = cur.to;
      }
      (void)run_exit;
      // Restrict R-only runs to rising windows and F-only runs to falling.
      if (can) {
        // Only record the run once: when its entry boundary is processed.
        out.push_back(EdgeWindow{start, end});
      }
    }
  }
  // A run entered from another changing value at the cycle wrap is already
  // covered because boundaries() reports the wrap change at time 0.
  std::sort(out.begin(), out.end(),
            [](const EdgeWindow& a, const EdgeWindow& b) { return a.start < b.start; });
  return out;
}

Value sample_over(const Waveform& data, const EdgeWindow& win) {
  // The window is closed (include the edge instant) and may wrap the cycle
  // boundary, in which case win.end is numerically smaller than win.start.
  Time width = floor_mod(win.end - win.start, data.period()) + 1;
  std::uint8_t mask = data.value_mask(win.start, win.start + width);
  constexpr std::uint8_t zero_bit = 1u << static_cast<int>(Value::Zero);
  constexpr std::uint8_t one_bit = 1u << static_cast<int>(Value::One);
  constexpr std::uint8_t unknown_bit = 1u << static_cast<int>(Value::Unknown);
  if (mask & unknown_bit) return Value::Unknown;
  if (mask == zero_bit) return Value::Zero;
  if (mask == one_bit) return Value::One;
  return Value::Stable;
}

PrimEvalResult evaluate_primitive(const Primitive& p, const std::vector<PreparedInput>& ins,
                                  Time period) {
  assert(!prim_is_checker(p.kind));
  PrimEvalResult result;

  // Directive handling (sec. 2.6). 'Z'/'H' make the asserted timing refer to
  // the gate output: the gate's own delay is zeroed (the wire delay was
  // already zeroed during preparation). 'A'/'H' additionally assume the
  // other inputs enable the gate. The remainder of the directive string is
  // passed along with the output value (sec. 2.8, EVAL STR PTR).
  Time dmin = p.dmin, dmax = p.dmax;
  bool delay_zeroed = false;
  int directive_pin = -1;
  bool assume_enabling = false;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (!ins[i].has_directive_string) continue;
    directive_pin = static_cast<int>(i);
    char d = ins[i].directive;
    if (d == 'Z' || d == 'H') {
      dmin = 0;
      dmax = 0;
      delay_zeroed = true;
    }
    if (d == 'A' || d == 'H') assume_enabling = true;
    result.eval_str = ins[i].tail;
    break;  // one directive-carrying input per gate level
  }

  // Applies the element delay to a combinational output: polarity-dependent
  // when rise/fall delays are given (sec. 4.2.2), min/max otherwise; a
  // Z/H directive refers the timing to the gate output and bypasses both.
  auto apply_delay = [&](Waveform w) {
    if (delay_zeroed) return w;
    if (p.rise_fall) {
      const RiseFallDelay& rf = *p.rise_fall;
      return w.delayed_rise_fall(rf.rise_min, rf.rise_max, rf.fall_min, rf.fall_max);
    }
    return w.delayed(dmin, dmax);
  };
  // Flip-overlay window bounds (see overlay_flip_windows): the combined
  // delay range, since a flip's output polarity is unknown there.
  Time omin = dmin, omax = dmax;
  if (p.rise_fall && !delay_zeroed) {
    omin = std::min(p.rise_fall->rise_min, p.rise_fall->fall_min);
    omax = std::max(p.rise_fall->rise_max, p.rise_fall->fall_max);
  }

  std::vector<Waveform> storage;  // substituted enabling constants live here
  std::vector<const Waveform*> ws;
  ws.reserve(ins.size());
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (assume_enabling && static_cast<int>(i) != directive_pin) {
      storage.push_back(Waveform(period, enabling_value(p.kind)));
      ws.push_back(&storage.back());
    } else {
      ws.push_back(&ins[i].wave);
    }
  }

  switch (p.kind) {
    case PrimKind::Buf:
      result.wave = apply_delay(*ws[0]);
      return result;
    case PrimKind::Not:
      result.wave = apply_delay(ws[0]->map(value_not));
      return result;
    case PrimKind::Or:
    case PrimKind::And:
      result.wave = apply_delay(fold(ws, gate_op(p.kind), period));
      return result;
    case PrimKind::Xor:
    case PrimKind::Chg:
      result.wave = apply_delay(fold(ws, gate_op(p.kind), period));
      overlay_flip_windows(result.wave, ws, omin, omax);
      return result;
    case PrimKind::Mux2: {
      std::vector<const Waveform*> all = {ws[0], ws[1], ws[2]};
      bool multi = count_active(all) >= 2;
      auto prep = [&](const Waveform& w) { return multi ? w.with_skew_incorporated() : w; };
      Waveform sel = prep(*ws[0]), d0 = prep(*ws[1]), d1 = prep(*ws[2]);
      Time carried = 0;
      if (!multi) {
        for (const Waveform* w : all) {
          if (w->has_activity()) carried = w->skew();
        }
      }
      Waveform out = Waveform::ternary(sel, d0, d1, value_mux);
      out.set_skew(carried);
      result.wave = apply_delay(std::move(out));
      return result;
    }
    case PrimKind::Mux4:
    case PrimKind::Mux8: {
      // Decompose into a tree of 2-way selections at zero delay, then apply
      // the element delay once. Inputs: selects first, then data.
      std::size_t nsel = p.kind == PrimKind::Mux4 ? 2 : 3;
      bool multi = count_active(ws) >= 2;
      auto prep = [&](const Waveform& w) { return multi ? w.with_skew_incorporated() : w; };
      Time carried = 0;
      if (!multi) {
        for (const Waveform* w : ws) {
          if (w->has_activity()) carried = w->skew();
        }
      }
      std::vector<Waveform> level;
      for (std::size_t i = nsel; i < ws.size(); ++i) level.push_back(prep(*ws[i]));
      for (std::size_t s = 0; s < nsel; ++s) {
        Waveform sel = prep(*ws[s]);  // low select bit first
        std::vector<Waveform> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          next.push_back(Waveform::ternary(sel, level[i], level[i + 1], value_mux));
        }
        level = std::move(next);
      }
      Waveform out = std::move(level[0]);
      out.set_skew(carried);
      result.wave = apply_delay(std::move(out));
      return result;
    }
    case PrimKind::Reg:
      result.wave = eval_register(p, ins[0].wave, ins[1].wave, period);
      return result;
    case PrimKind::RegSR: {
      Waveform base = eval_register(p, ins[0].wave, ins[1].wave, period);
      result.wave = apply_set_reset(p, std::move(base), ins[2].wave, ins[3].wave);
      return result;
    }
    case PrimKind::Latch:
      result.wave = eval_latch(p, ins[0].wave, ins[1].wave, period);
      return result;
    case PrimKind::LatchSR: {
      Waveform base = eval_latch(p, ins[0].wave, ins[1].wave, period);
      result.wave = apply_set_reset(p, std::move(base), ins[2].wave, ins[3].wave);
      return result;
    }
    default:
      throw std::logic_error("evaluate_primitive called on a checker");
  }
}

}  // namespace tv
