// Fixpoint snapshots: the post-run fixed point as a durable artifact
// (docs/recovery.md; ROADMAP item 2's "persisting the fixpoint itself so a
// fresh process can reverify without the baseline run").
//
// A snapshot (`.tvf`, conventionally the compiled artifact's sidecar)
// captures everything Verifier::reverify needs from a prior verify():
// every signal's settled waveform and evaluation string (deduplicated
// through an arena, mirroring the evaluator's interned wave table), the
// full baseline report (violations, per-case blocks, cross-reference,
// convergence/degradation flags, cumulative effort counters), and the case
// list the report was computed with. Verifier::restore rebuilds a warm
// baseline from it -- re-interning every waveform so refs and the memo
// behave exactly as after a real run -- and a subsequent reverify is
// byte-identical to the same reverify on the process that wrote the
// snapshot (enforced by tvfuzz --snapshot-diff), including the effort
// counters: the cold baseline evaluation is never paid.
//
// The container mirrors the compiled artifact (core/compiled.hpp): a
// 40-byte little-endian header ("SCALDTVF", endian tag, format version,
// FNV-1a content hash, payload size, section count), a section table, and
// sections BIND / WAVES / SIGS / RESULT / CASES in fixed order. Rejection
// uses the TV-E31x code family -- same taxonomy as the artifact's TV-E30x
// -- and a rejected snapshot is always an input error (exit 2, run the
// cold baseline instead), never a crash.
//
// Binding: the BIND section carries the compiled artifact's content hash
// (0 for source-elaborated designs), a digest of the netlist's shape
// (names, kinds, connectivity counts), and a digest of the
// semantics-affecting verifier options. restore() refuses (TV-E317) when
// any of them disagree with the design it is asked to warm -- a snapshot
// can never silently graft one design's fixpoint onto another.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/verifier.hpp"
#include "diag/diagnostic.hpp"

namespace tv {

inline constexpr char kFixpointMagic[] = "SCALDTVF";  // 8 chars + NUL
inline constexpr std::uint32_t kFixpointFormatVersion = 1;

/// Conventional sidecar location for a compiled artifact's snapshot.
inline std::string fixpoint_sidecar_path(const std::string& artifact_path) {
  return artifact_path + ".tvf";
}

/// A loaded, validated snapshot -- not yet bound to a live Verifier.
/// Everything in here has passed structural validation (refs in range,
/// value tags legal, digests consistent); binding checks happen in
/// Verifier::restore.
struct FixpointState {
  std::uint64_t artifact_hash = 0;   // bound .tvc content hash; 0 = source design
  std::uint64_t shape_digest = 0;    // netlist_shape_digest of the bound design
  std::uint64_t options_digest = 0;  // options_semantic_digest at snapshot time
  std::uint64_t report_digest = 0;   // FNV-1a over the RESULT section bytes
  std::string design;                // design name, for messages
  std::uint32_t num_prims = 0;
  std::vector<Waveform> waves;         // per-signal settled waveform
  std::vector<std::string> eval_strs;  // per-signal evaluation string
  VerifyResult result;                 // the full baseline report
  std::vector<CaseSpec> cases;         // case list the report used
};

/// Digest of the netlist's identity-relevant shape: signal names and
/// parameters, primitive names/kinds/connectivity. Two netlists with equal
/// digests produce interchangeable fixpoints for the same options.
std::uint64_t netlist_shape_digest(const Netlist& nl);

/// Digest of the verifier options that can change report bytes: period,
/// units, wire/assertion defaults, oscillation and resource-guard caps.
/// Deliberately excludes the performance-only knobs (jobs, interning,
/// batch_eval, batch_lanes, time_limit/deadline) -- reports are
/// byte-identical across those by contract.
std::uint64_t options_semantic_digest(const VerifierOptions& o);

/// Serializes `v`'s baseline fixpoint (the state left by its last
/// verify()/reverify()) into a snapshot blob. `artifact_hash` is the
/// compiled artifact the design came from, or 0 for source designs.
/// Throws std::logic_error when the verifier has no baseline.
std::string serialize_fixpoint(const Verifier& v, const std::string& design,
                               std::uint64_t artifact_hash);

/// Parses and validates a snapshot blob. On any defect reports exactly one
/// TV-E31x diagnostic against `origin` and returns nullopt.
std::optional<FixpointState> load_fixpoint(std::string_view bytes, std::string_view origin,
                                           diag::DiagnosticEngine& diags);

/// mmap (read() fallback) + load_fixpoint. Reports TV-E310 when the file
/// cannot be read.
std::optional<FixpointState> load_fixpoint_file(const std::string& path,
                                                diag::DiagnosticEngine& diags);

/// serialize_fixpoint + util::atomic_write_file: the snapshot appears
/// complete or not at all, never torn.
bool write_fixpoint_file(const Verifier& v, const std::string& design,
                         std::uint64_t artifact_hash, const std::string& path,
                         std::string* error);

}  // namespace tv
