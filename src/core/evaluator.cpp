#include "core/evaluator.hpp"

#include <chrono>
#include <stdexcept>

#include "core/scc.hpp"
#include "util/fault.hpp"

namespace tv {

Waveform seed_waveform(const Signal& s, const VerifierOptions& opts) {
  if (s.assertion.kind != Assertion::Kind::None) {
    if (s.assertion.kind == Assertion::Kind::Stable && s.driver != kNoPrim) {
      // A stable assertion on a *generated* signal is a check, not a seed
      // (sec. 2.5.2): evaluation will overwrite this and the checker will
      // compare. Seed UNKNOWN so the driver's value wins deterministically.
      return Waveform(opts.period, Value::Unknown);
    }
    return assertion_waveform(s.assertion, opts.period, opts.units,
                              opts.assertion_defaults);
  }
  if (s.driver == kNoPrim) {
    // "Undefined signals with no assertions are taken to be always stable,
    // to prevent them from giving rise to numerous spurious timing errors"
    // (sec. 2.5); they appear on the cross-reference listing instead.
    return Waveform(opts.period, Value::Stable);
  }
  return Waveform(opts.period, Value::Unknown);
}

PreparedInput prepare_input(const Pin& pin, const Signal& s, const Waveform& wave,
                            const std::string& eval_str, const VerifierOptions& opts) {
  PreparedInput in;
  // The pin's own "&" string takes precedence; otherwise the directive
  // string propagated along the signal (EVAL STR PTR) applies.
  const std::string& dirs = !pin.directives.empty() ? pin.directives : eval_str;
  if (!dirs.empty()) {
    in.has_directive_string = true;
    in.directive = dirs[0];
    in.tail = dirs.substr(1);
  }
  in.wave = pin.invert ? wave.map(value_not) : wave;
  bool zero_wire = in.directive == 'W' || in.directive == 'Z' || in.directive == 'H';
  if (!zero_wire) {
    WireDelay wd = s.wire_delay.value_or(opts.default_wire);
    if (wd.dmin != 0 || wd.dmax != 0) in.wave = in.wave.delayed(wd.dmin, wd.dmax);
  }
  return in;
}

Evaluator::Evaluator(Netlist& nl, VerifierOptions opts) : nl_(nl), opts_(opts) {
  if (!nl.finalized()) nl.finalize();
  in_worklist_.assign(nl.num_prims(), 0);
  eval_count_.assign(nl.num_prims(), 0);
  case_map_.assign(nl.num_signals(), -1);
  if (opts_.interning) {
    intern_ = std::make_shared<InternContext>(opts_.max_waveforms_per_shard);
  }
  wave_refs_.assign(nl.num_signals(), kNoWaveform);
}

void Evaluator::record_degradation(const char* code, std::string message) {
  degraded_ = true;
  degradations_.push_back(Degradation{code, std::move(message)});
}

void Evaluator::cap_segments(SignalId id, Waveform& w) {
  if (opts_.max_segments_per_signal == 0) return;
  if (w.segments().size() <= opts_.max_segments_per_signal) return;
  if (seg_degraded_.size() < nl_.num_signals()) seg_degraded_.resize(nl_.num_signals(), 0);
  if (!seg_degraded_[id]) {
    seg_degraded_[id] = 1;
    record_degradation(diag::kWarnSegmentCap,
                       "signal \"" + nl_.signal(id).full_name + "\" exceeded " +
                           std::to_string(opts_.max_segments_per_signal) +
                           " waveform segments; degraded to UNKNOWN");
  }
  w = Waveform(opts_.period, Value::Unknown);
  w.canonicalize();
}

void Evaluator::store_wave(SignalId id, Waveform w) {
  Signal& s = nl_.signal(id);
  if (intern_) {
    if (wave_refs_.size() < nl_.num_signals()) {
      wave_refs_.resize(nl_.num_signals(), kNoWaveform);
    }
    WaveformRef ref = intern_->table.intern(w);
    if (ref == kNoWaveform) {
      // Table full: keep the uninterned copy. build_memo_key sees the
      // kNoWaveform ref and turns the memo off for consumers of this signal.
      if (!table_full_reported_) {
        table_full_reported_ = true;
        record_degradation(diag::kWarnTableFull,
                           "waveform table full; interning disabled for signal \"" +
                               s.full_name + "\" and later waveforms");
      }
      wave_refs_[id] = kNoWaveform;
      s.wave = std::move(w);
      return;
    }
    wave_refs_[id] = ref;
    s.wave = intern_->table.get(ref);
  } else {
    s.wave = std::move(w);
  }
}

void Evaluator::seed_signal(SignalId id) {
  Signal& s = nl_.signal(id);
  Waveform w = apply_case_map(id, seed_waveform(s, opts_));
  // Seeds are canonicalized in both modes so evaluation -- and every report
  // downstream -- is byte-identical with interning on or off.
  w.canonicalize();
  store_wave(id, std::move(w));
  s.eval_str.clear();
}

Waveform Evaluator::apply_case_map(SignalId id, Waveform w) const {
  if (case_map_[id] < 0) return w;
  // Sec. 2.7.1: the signal's STABLE values are mapped to the case value
  // "whenever the circuit would normally set it to the value STABLE".
  return w.replaced(Value::Stable, static_cast<Value>(case_map_[id]));
}

void Evaluator::initialize() {
  events_ = 0;
  evals_ = 0;
  converged_ = true;
  degraded_ = false;
  table_full_reported_ = false;
  seg_degraded_.assign(nl_.num_signals(), 0);
  degradations_.clear();
  worklist_.clear();
  in_worklist_.assign(nl_.num_prims(), 0);
  eval_count_.assign(nl_.num_prims(), 0);
  case_map_.assign(nl_.num_signals(), -1);
  case_pins_.clear();
  wave_refs_.assign(nl_.num_signals(), kNoWaveform);
  for (SignalId id = 0; id < nl_.num_signals(); ++id) seed_signal(id);
  for (PrimId pid = 0; pid < nl_.num_prims(); ++pid) {
    if (!prim_is_checker(nl_.prim(pid).kind)) enqueue(pid);
  }
}

void Evaluator::restore_fixpoint(const std::vector<Waveform>& waves,
                                 const std::vector<std::string>& eval_strs,
                                 bool converged, bool degraded,
                                 std::vector<Degradation> degradations) {
  // Mirror of initialize()'s reset, with the snapshot's settled state in
  // place of seeding: after this the evaluator is indistinguishable (to
  // reverify and the checkers) from one that just ran propagate() to this
  // fixpoint -- empty worklist, fresh oscillation budget, no active case.
  events_ = 0;
  evals_ = 0;
  converged_ = converged;
  degraded_ = degraded;
  degradations_ = std::move(degradations);
  table_full_reported_ = false;
  seg_degraded_.assign(nl_.num_signals(), 0);
  worklist_.clear();
  in_worklist_.assign(nl_.num_prims(), 0);
  eval_count_.assign(nl_.num_prims(), 0);
  case_map_.assign(nl_.num_signals(), -1);
  case_pins_.clear();
  track_touched_ = false;
  touched_.clear();
  touched_mark_.clear();
  wave_refs_.assign(nl_.num_signals(), kNoWaveform);
  for (SignalId id = 0; id < nl_.num_signals(); ++id) {
    Signal& s = nl_.signal(id);
    // Snapshot waveforms are canonical on disk; canonicalize defensively so
    // a restored ref always compares equal to the same waveform recomputed
    // in-process (the identity contract's foundation).
    Waveform w = waves[id];
    w.canonicalize();
    s.eval_str = eval_strs[id];
    if (intern_) {
      WaveformRef ref = intern_->table.intern(w);
      if (ref != kNoWaveform) {
        wave_refs_[id] = ref;
        s.wave = intern_->table.get(ref);
        continue;
      }
      // Table full: keep the uninterned copy, exactly like store_wave --
      // consumers of this signal fall back to uncached evaluation.
    }
    s.wave = std::move(w);
  }
}

void Evaluator::enqueue(PrimId pid) {
  if (in_worklist_[pid]) return;
  in_worklist_[pid] = 1;
  worklist_.push_back(pid);
}

void Evaluator::enqueue_fanout(SignalId id) {
  for (PrimId pid : nl_.signal(id).fanout) {
    if (!prim_is_checker(nl_.prim(pid).kind)) enqueue(pid);
  }
}

PreparedInput Evaluator::prepare(const Pin& pin) const {
  const Signal& s = nl_.signal(pin.sig);
  return prepare_input(pin, s, s.wave, s.eval_str, opts_);
}

bool Evaluator::build_memo_key(const Primitive& p, MemoKey& key) const {
  return tv::build_memo_key(
      p, nl_, opts_, [this](SignalId id) { return wave_ref(id); },
      [this](SignalId id) -> const std::string& { return nl_.signal(id).eval_str; },
      key);
}

void Evaluator::assign(SignalId id, Waveform w, std::string eval_str, bool& changed) {
  Signal& s = nl_.signal(id);
  w = apply_case_map(id, std::move(w));
  // Canonical form in both modes: the convergence test below is then the
  // same predicate whether expressed as a ref compare or a deep compare
  // (Waveform::equivalent), and reports match byte-for-byte across modes.
  w.canonicalize();
  cap_segments(id, w);
  if (intern_) {
    if (wave_refs_.size() < nl_.num_signals()) {
      wave_refs_.resize(nl_.num_signals(), kNoWaveform);
    }
    WaveformRef ref = intern_->table.intern(w);
    if (ref == kNoWaveform) {
      // Table full: fall back to the deep compare for this assignment.
      if (!table_full_reported_) {
        table_full_reported_ = true;
        record_degradation(diag::kWarnTableFull,
                           "waveform table full; interning disabled for signal \"" +
                               s.full_name + "\" and later waveforms");
      }
      changed = !(w == s.wave) || eval_str != s.eval_str;
      if (changed) {
        wave_refs_[id] = kNoWaveform;
        s.wave = std::move(w);
        s.eval_str = std::move(eval_str);
      }
      return;
    }
    changed = ref != wave_refs_[id] || eval_str != s.eval_str;
    if (changed) {
      wave_refs_[id] = ref;
      s.wave = intern_->table.get(ref);
      s.eval_str = std::move(eval_str);
    }
  } else {
    changed = !(w == s.wave) || eval_str != s.eval_str;
    if (changed) {
      s.wave = std::move(w);
      s.eval_str = std::move(eval_str);
    }
  }
}

std::size_t Evaluator::run_worklist() {
  std::size_t events_before = events_;
  // One deadline for the whole verify() run when the Verifier armed it;
  // a bare propagate() outside verify() arms its own from the budget.
  Deadline deadline = opts_.deadline;
  if (!deadline.armed() && opts_.time_limit_seconds > 0) {
    deadline = Deadline::after_seconds(opts_.time_limit_seconds);
  }
  const bool timed = deadline.armed();
  while (!worklist_.empty()) {
    // The deadline check covers the first pop too: a limit that already
    // passed degrades everything still queued rather than evaluating once.
    // One steady_clock read per pop is noise next to a primitive evaluation,
    // and any coarser stride would let small designs run out the worklist
    // between checks and never trip the limit.
    if (timed && deadline.expired()) {
      degrade_remaining();
      break;
    }
    fault::check("evaluator.eval");
    PrimId pid = worklist_.front();
    worklist_.pop_front();
    in_worklist_[pid] = 0;
    const Primitive& p = nl_.prim(pid);

    if (++eval_count_[pid] > opts_.max_evals_per_prim) {
      // Oscillation guard: synchronous designs converge quickly; blowing
      // through the cap means an unclocked feedback path.
      converged_ = false;
      continue;
    }
    ++evals_;

    bool changed = false;
    MemoKey key;
    bool keyed = intern_ && build_memo_key(p, key);
    if (keyed) {
      if (std::optional<MemoResult> hit = intern_->memo.lookup(key)) {
        // The memo stores the raw evaluation result (pre case-mapping);
        // assign() re-applies the active case map, which is case-local.
        assign(p.output, intern_->table.get(hit->wave), hit->eval_str, changed);
        if (changed) {
          ++events_;
          note_touched(p.output);
          enqueue_fanout(p.output);
        }
        continue;
      }
    }
    std::vector<PreparedInput> ins;
    ins.reserve(p.inputs.size());
    for (const Pin& pin : p.inputs) ins.push_back(prepare(pin));
    PrimEvalResult r = evaluate_primitive(p, ins, opts_.period);
    if (keyed) {
      WaveformRef out = intern_->table.intern(r.wave);
      if (out != kNoWaveform) intern_->memo.store(key, MemoResult{out, r.eval_str});
    }
    assign(p.output, std::move(r.wave), std::move(r.eval_str), changed);
    if (changed) {
      ++events_;
      note_touched(p.output);
      enqueue_fanout(p.output);
    }
  }
  return events_ - events_before;
}

void Evaluator::degrade_remaining() {
  // Fanout closure of everything still queued: those cones were not fully
  // evaluated, so their signals become UNKNOWN -- the most pessimistic
  // value, preserving conservatism (sec. 2.3: UNKNOWN can only add
  // violations downstream, never mask one).
  Waveform unknown(opts_.period, Value::Unknown);
  unknown.canonicalize();
  std::vector<char> visited(nl_.num_prims(), 0);
  std::deque<PrimId> queue;
  for (PrimId pid : worklist_) {
    if (!visited[pid]) {
      visited[pid] = 1;
      queue.push_back(pid);
    }
  }
  worklist_.clear();
  in_worklist_.assign(nl_.num_prims(), 0);
  std::size_t degraded_signals = 0;
  while (!queue.empty()) {
    PrimId pid = queue.front();
    queue.pop_front();
    const Primitive& p = nl_.prim(pid);
    if (prim_is_checker(p.kind) || p.output == kNoSignal) continue;
    Signal& s = nl_.signal(p.output);
    if (!(s.wave == unknown)) {
      store_wave(p.output, unknown);
      note_touched(p.output);
      ++degraded_signals;
    }
    for (PrimId consumer : s.fanout) {
      if (consumer < visited.size() && !visited[consumer]) {
        visited[consumer] = 1;
        queue.push_back(consumer);
      }
    }
  }
  record_degradation(diag::kWarnTimeLimit,
                     "time limit of " + std::to_string(opts_.time_limit_seconds) +
                         "s exceeded; " + std::to_string(degraded_signals) +
                         " signal(s) degraded to UNKNOWN");
}

std::vector<std::vector<std::string>> Evaluator::feedback_cycles() const {
  // The oscillation guard (run_worklist) drives eval_count_ up to the cap
  // exactly for the primitives that kept oscillating: SCC over that induced
  // subgraph localizes the unclocked feedback paths. The criterion is >=
  // rather than >: once the first loop member trips the guard it stops
  // producing events, so its ring-mates stall at exactly the cap -- they are
  // part of the cycle all the same. Singleton components without a self-loop
  // are dropped below, so a lone prim that legitimately evaluated cap times
  // never produces a false cycle.
  std::vector<char> hot(nl_.num_prims(), 0);
  bool any = false;
  for (PrimId pid = 0; pid < nl_.num_prims(); ++pid) {
    if (pid < eval_count_.size() && eval_count_[pid] >= opts_.max_evals_per_prim) {
      hot[pid] = 1;
      any = true;
    }
  }
  if (!any) return {};
  std::vector<std::vector<std::uint32_t>> adj(nl_.num_prims());
  for (PrimId pid = 0; pid < nl_.num_prims(); ++pid) {
    if (!hot[pid]) continue;
    const Primitive& p = nl_.prim(pid);
    if (p.output == kNoSignal) continue;
    for (PrimId consumer : nl_.signal(p.output).fanout) {
      if (consumer < hot.size() && hot[consumer]) adj[pid].push_back(consumer);
    }
  }
  std::vector<std::vector<std::string>> cycles;
  for (const auto& comp : strongly_connected_components(adj)) {
    if (!hot[comp[0]]) continue;
    std::vector<std::uint32_t> cycle = cycle_through_component(adj, comp);
    if (cycle.empty()) continue;
    std::vector<std::string> names;
    names.reserve(cycle.size());
    for (std::uint32_t pid : cycle) {
      names.push_back(nl_.signal(nl_.prim(pid).output).full_name);
    }
    cycles.push_back(std::move(names));
  }
  return cycles;
}

std::size_t Evaluator::propagate() { return run_worklist(); }

std::size_t Evaluator::apply_case(const CaseSpec& c) {
  // Only the affected parts of the circuit are reevaluated (sec. 2.7):
  // reseed the named signals, requeue their drivers and fanout, propagate.
  eval_count_.assign(nl_.num_prims(), 0);
  // A case may name a signal created after this Evaluator sized its flat
  // per-signal/per-primitive maps (Netlist::ref makes signals on demand).
  if (case_map_.size() < nl_.num_signals()) case_map_.resize(nl_.num_signals(), -1);
  if (in_worklist_.size() < nl_.num_prims()) in_worklist_.resize(nl_.num_prims(), 0);
  for (SignalId sig : case_pins_) case_map_[sig] = -1;
  case_pins_.clear();
  for (const auto& [sig, val] : c.pins) {
    if (val != Value::Zero && val != Value::One) {
      throw std::invalid_argument("case values must be 0 or 1");
    }
    if (case_map_[sig] < 0) case_pins_.push_back(sig);
    case_map_[sig] = static_cast<std::int8_t>(val);
  }
  for (const auto& [sig, val] : c.pins) {
    const Signal& s = nl_.signal(sig);
    Waveform before = s.wave;
    if (s.driver != kNoPrim) {
      enqueue(s.driver);  // driver recomputes; assign() applies the mapping
    } else {
      seed_signal(sig);
    }
    if (!(nl_.signal(sig).wave == before)) {
      ++events_;
      enqueue_fanout(sig);
    }
  }
  return run_worklist();
}

void Evaluator::note_touched(SignalId id) {
  if (!track_touched_) return;
  if (touched_mark_.size() < nl_.num_signals()) touched_mark_.resize(nl_.num_signals(), 0);
  if (!touched_mark_[id]) {
    touched_mark_[id] = 1;
    touched_.push_back(id);
  }
}

std::size_t Evaluator::propagate_incremental(const std::vector<SignalId>& reseed,
                                             const std::vector<PrimId>& reeval) {
  // Mirrors apply_case: fresh oscillation budget, defensively resized flat
  // maps, reseed-or-requeue the edited signals, run the shared worklist.
  eval_count_.assign(nl_.num_prims(), 0);
  if (case_map_.size() < nl_.num_signals()) case_map_.resize(nl_.num_signals(), -1);
  if (in_worklist_.size() < nl_.num_prims()) in_worklist_.resize(nl_.num_prims(), 0);
  if (seg_degraded_.size() < nl_.num_signals()) seg_degraded_.resize(nl_.num_signals(), 0);
  if (intern_ && wave_refs_.size() < nl_.num_signals()) {
    wave_refs_.resize(nl_.num_signals(), kNoWaveform);
  }
  track_touched_ = true;
  touched_.clear();
  touched_mark_.assign(nl_.num_signals(), 0);
  for (SignalId sig : reseed) {
    const Signal& s = nl_.signal(sig);
    Waveform before = s.wave;
    std::string str_before = s.eval_str;
    if (s.driver != kNoPrim) {
      enqueue(s.driver);  // the driver's recomputed output wins over the seed
    } else {
      seed_signal(sig);
    }
    if (!(nl_.signal(sig).wave == before) || nl_.signal(sig).eval_str != str_before) {
      ++events_;
      note_touched(sig);
      enqueue_fanout(sig);
    }
  }
  for (PrimId pid : reeval) {
    if (!prim_is_checker(nl_.prim(pid).kind)) enqueue(pid);
  }
  std::size_t n = run_worklist();
  track_touched_ = false;
  return n;
}

std::size_t Evaluator::clear_case() {
  eval_count_.assign(nl_.num_prims(), 0);
  std::vector<SignalId> mapped = std::move(case_pins_);
  case_pins_.clear();
  for (SignalId sig : mapped) case_map_[sig] = -1;
  for (SignalId sig : mapped) {
    const Signal& s = nl_.signal(sig);
    Waveform before = s.wave;
    if (s.driver != kNoPrim) {
      enqueue(s.driver);
    } else {
      seed_signal(sig);
    }
    if (!(nl_.signal(sig).wave == before)) {
      ++events_;
      enqueue_fanout(sig);
    }
  }
  return run_worklist();
}

}  // namespace tv
