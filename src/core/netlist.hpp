// Circuit data model for the Timing Verifier (thesis secs. 2.4, 2.8, 3.1).
//
// A design is a set of *signals* and *primitives*. Primitives are the
// built-in parameterized models the Macro Expander targets: gates, CHG
// gates, multiplexers, registers, latches, and the three constraint
// checkers. Each primitive represents an arbitrarily wide data path (the
// thesis exploits this symmetry: 8 282 primitives instead of 53 833); since
// symbolic values are identical across the bits of a bus, a vector signal
// carries a single value list and a `width` attribute used for statistics.
//
// Signals own the evaluation state: the current waveform (the VALUE BASE /
// VALUE record list of Fig 2-7), the propagated evaluation-directive string
// (EVAL STR PTR), and the fanout "call list" saying which primitives must be
// reevaluated when the signal changes (the CALL LIST ARRAY of Table 3-3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/assertion.hpp"
#include "core/waveform.hpp"
#include "diag/diagnostic.hpp"

namespace tv {

using SignalId = std::uint32_t;
using PrimId = std::uint32_t;
inline constexpr SignalId kNoSignal = static_cast<SignalId>(-1);
inline constexpr PrimId kNoPrim = static_cast<PrimId>(-1);

enum class PrimKind : std::uint8_t {
  Buf,     // 1-input buffer (also used for deliberate delay insertion)
  Not,     // inverter
  Or,      // n-input inclusive OR
  And,     // n-input AND
  Xor,     // n-input exclusive OR
  Chg,     // n-input CHANGE function (adders, parity trees, RAM data paths)
  Mux2,    // inputs: SEL, D0, D1
  Mux4,    // inputs: S0, S1, D0..D3 (S0 is the low select bit)
  Mux8,    // inputs: S0, S1, S2, D0..D7
  Reg,     // inputs: DATA, CLOCK (rising-edge register, Fig 2-1)
  RegSR,   // inputs: DATA, CLOCK, SET, RESET
  Latch,   // inputs: DATA, ENABLE (transparent-high latch, Fig 2-2)
  LatchSR, // inputs: DATA, ENABLE, SET, RESET
  SetupHoldChk,          // inputs: I, CK (Fig 2-3, first checker)
  SetupRiseHoldFallChk,  // inputs: I, CK (Fig 2-3, second checker)
  MinPulseWidthChk,      // inputs: I (Fig 2-4)
};

/// Human-readable primitive-type name, e.g. "2 OR" style names are the
/// macro layer's business; these are the engine-level names.
std::string_view prim_kind_name(PrimKind k);
bool prim_is_checker(PrimKind k);

/// Structural pin-count contract of a primitive kind (what finalize()
/// enforces). Exposed so netlist deltas (core/incremental.hpp) can validate
/// a kind change *before* mutating anything.
std::size_t prim_min_inputs(PrimKind k);
std::size_t prim_max_inputs(PrimKind k);

/// Interconnection delay range (sec. 2.5.3): minimum/maximum wire delay from
/// the driving output to the inputs of a signal's consumers.
struct WireDelay {
  Time dmin = 0;
  Time dmax = 0;
};

struct Signal {
  std::string full_name;   // identity: includes any assertion text
  std::string base_name;
  Assertion assertion;
  SignalScope scope = SignalScope::Global;  // "/M" local, "/P" parameter
  int width = 1;           // bits in the vector (statistics only)
  /// Per-signal interconnection delay override (sec. 2.5.3); when absent the
  /// verifier's default wire delay applies.
  std::optional<WireDelay> wire_delay;
  PrimId driver = kNoPrim;
  std::vector<PrimId> fanout;  // call list: primitives reading this signal

  // --- evaluation state (owned by the Evaluator) ---
  Waveform wave;
  std::string eval_str;    // propagated evaluation directives (sec. 2.6/2.8)
};

/// One input connection of a primitive.
struct Pin {
  SignalId sig = kNoSignal;
  bool invert = false;       // "-" complement on the connection
  std::string directives;    // "&" evaluation string attached here
};

/// Polarity-dependent propagation delays (the sec. 4.2.2 extension for
/// technologies such as nMOS): the rise delays apply to output changes
/// toward 1, the fall delays to changes toward 0.
struct RiseFallDelay {
  Time rise_min = 0, rise_max = 0;
  Time fall_min = 0, fall_max = 0;
};

struct Primitive {
  PrimKind kind = PrimKind::Buf;
  std::string name;        // instance name for reporting
  Time dmin = 0, dmax = 0; // propagation delay (all inputs; sec. 2.4.3)
  /// When set, combinational outputs use polarity-dependent delays instead
  /// of [dmin, dmax] (sec. 4.2.2); clocked elements ignore it.
  std::optional<RiseFallDelay> rise_fall;
  Time setup = 0, hold = 0;          // checker parameters
  Time min_high = 0, min_low = 0;    // MIN PULSE WIDTH parameters
  int width = 1;           // data-path width (statistics)
  std::vector<Pin> inputs;
  SignalId output = kNoSignal;  // checkers drive nothing
};

/// A parsed connection reference: "- WE", "CK .P0-4 &HZ", ...
struct Ref {
  SignalId id = kNoSignal;
  bool invert = false;
  std::string directives;
};

class Netlist {
 public:
  /// Parses `text` as a SCALD signal reference, creating the signal on
  /// first use. The *full name* (assertion included) is the identity; two
  /// references to one base name with conflicting assertions throw.
  Ref ref(std::string_view text, int width = 1);
  /// Get-or-create by pre-parsed pieces.
  SignalId add_signal(const ParsedSignal& parsed, int width = 1);
  /// Appends a signal record verbatim, preserving its index -- the
  /// compiled-artifact loader (core/compiled.cpp) uses this to rebuild a
  /// signal table that may contain synonym-merge orphans whose full names
  /// resolve to another id. The name is registered for find() only when not
  /// already taken; evaluation state (wave, eval_str, driver, fanout) is
  /// reset and recomputed by finalize()/initialize().
  SignalId push_signal(Signal s);
  SignalId find(std::string_view full_name) const;

  Signal& signal(SignalId id) { return signals_[id]; }
  const Signal& signal(SignalId id) const { return signals_[id]; }
  Primitive& prim(PrimId id) { return prims_[id]; }
  const Primitive& prim(PrimId id) const { return prims_[id]; }
  std::size_t num_signals() const { return signals_.size(); }
  std::size_t num_prims() const { return prims_.size(); }

  /// Overrides the interconnection delay for one signal (sec. 2.5.3).
  void set_wire_delay(SignalId id, Time dmin, Time dmax);
  /// Removes a signal's override so the verifier default applies again.
  void clear_wire_delay(SignalId id);

  /// Reconnects one input pin of a primitive to a different signal
  /// (a netlist-delta edit, core/incremental.hpp). Fanout call lists go
  /// stale, so the netlist must be finalize()d again before evaluation.
  void retarget_input(PrimId pid, std::size_t input, SignalId sig, bool invert,
                      std::string directives);

  /// Replaces a signal's assertion, renaming it (the assertion is part of
  /// the SCALD name, sec. 2.5.1). Throws std::invalid_argument when
  /// `full_name` already names a different signal. Fanout lists are
  /// unaffected; seeding changes, so the evaluator must re-seed it.
  void set_assertion(SignalId id, const Assertion& assertion, std::string base_name,
                     std::string full_name);

  /// Gives a combinational primitive polarity-dependent delays (sec. 4.2.2).
  void set_rise_fall(PrimId id, RiseFallDelay rf);

  /// Declares two names to be the same signal (the SCALD Macro Expander's
  /// Pass 1 "resolves all synonyms between different signals"): every
  /// connection to `drop` is rewritten to `keep`, name lookups of either
  /// resolve to `keep`, and the dropped entry is orphaned. Throws if both
  /// signals carry different assertions.
  void merge_signals(SignalId keep, SignalId drop);

  // --- builders -----------------------------------------------------------
  PrimId add_prim(Primitive p);
  PrimId gate(PrimKind kind, std::string name, Time dmin, Time dmax,
              std::vector<Ref> ins, Ref out, int width = 1);
  PrimId buf(std::string name, Time dmin, Time dmax, Ref in, Ref out, int width = 1);
  PrimId not_gate(std::string name, Time dmin, Time dmax, Ref in, Ref out, int width = 1);
  PrimId or_gate(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
                 int width = 1);
  PrimId and_gate(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
                  int width = 1);
  PrimId xor_gate(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
                  int width = 1);
  PrimId chg(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
             int width = 1);
  PrimId mux2(std::string name, Time dmin, Time dmax, Ref sel, Ref d0, Ref d1, Ref out,
              int width = 1);
  PrimId mux4(std::string name, Time dmin, Time dmax, Ref s0, Ref s1, std::vector<Ref> data,
              Ref out, int width = 1);
  PrimId mux8(std::string name, Time dmin, Time dmax, Ref s0, Ref s1, Ref s2,
              std::vector<Ref> data, Ref out, int width = 1);
  PrimId reg(std::string name, Time dmin, Time dmax, Ref data, Ref clock, Ref out,
             int width = 1);
  PrimId reg_sr(std::string name, Time dmin, Time dmax, Ref data, Ref clock, Ref set, Ref reset,
                Ref out, int width = 1);
  PrimId latch(std::string name, Time dmin, Time dmax, Ref data, Ref enable, Ref out,
               int width = 1);
  PrimId latch_sr(std::string name, Time dmin, Time dmax, Ref data, Ref enable, Ref set,
                  Ref reset, Ref out, int width = 1);
  PrimId setup_hold_chk(std::string name, Time setup, Time hold, Ref i, Ref ck, int width = 1);
  PrimId setup_rise_hold_fall_chk(std::string name, Time setup, Time hold, Ref i, Ref ck,
                                  int width = 1);
  PrimId min_pulse_width_chk(std::string name, Time min_high, Time min_low, Ref i);

  /// Computes fanout call lists and validates the structure: exactly one
  /// driver per driven signal, checker primitives drive nothing, pin counts
  /// match the primitive kind. Throws std::logic_error on violations.
  void finalize();
  /// Diagnostic form: reports *every* structural violation through `diags`
  /// (codes SHDL-E040..E045) instead of throwing on the first, attributing
  /// each to its primitive's instantiation site when `prim_locs` (indexed by
  /// PrimId) provides one. Returns true -- and marks the netlist finalized --
  /// only when no error was reported. On a clean structure it additionally
  /// scans for zero-delay combinational loops (cycles not cut by a clocked
  /// element, a checker, or any nonzero delay) and reports each as an
  /// SHDL-W050 warning naming the signal cycle.
  bool finalize(diag::DiagnosticEngine& diags,
                const std::vector<diag::SourceLoc>* prim_locs = nullptr);
  bool finalized() const { return finalized_; }
  /// Monotone counter bumped every time finalize() succeeds: derived
  /// structures (ConeIndex, SCC masks) capture it and compare to detect a
  /// changed fanout graph. Starts at 0 (never finalized).
  std::uint64_t structure_version() const { return structure_version_; }

  /// Signals that are read by some primitive but neither driven nor
  /// asserted: the thesis treats them as always stable and lists them on a
  /// cross-reference listing for the designer (sec. 2.5).
  std::vector<SignalId> undefined_unasserted() const;

 private:
  std::vector<Signal> signals_;
  std::vector<Primitive> prims_;
  std::unordered_map<std::string, SignalId> by_name_;
  bool finalized_ = false;
  std::uint64_t structure_version_ = 0;
};

}  // namespace tv
