// Compiled-design artifact: the serve-path split between the front end and
// the verifier engine (ROADMAP item 1; the metalfpga compile-then-simulate
// shape).
//
// `scaldtvc` runs the front end once (parse, macro expansion, elaboration,
// finalize) and emits a versioned binary artifact holding everything the
// engine needs and nothing it re-derives: the flat signal/primitive arrays,
// assertions, the case map, the expansion summary, and a pre-interned arena
// of the unique canonical seed waveforms with 32-bit refs (the materialized
// assertions every run starts from -- preloading them warms the intern
// table before the first job). `scaldtv --compiled` and the scaldtvd warm
// workers load the artifact and skip the front end entirely; the resulting
// report is byte-identical to the source path (golden suite + tvfuzz
// --compile-diff enforce this).
//
// Format (fixed-layout, little-endian on disk, designed to be mmap-able):
//
//   header   : magic "SCALDTVC", endian tag 0x01020304, format version,
//              FNV-1a content hash over the payload, payload size,
//              section count
//   sections : table of (id, offset, size), then the concatenated payload
//              META / SIGNALS / PRIMS / CASES / WAVES sections
//
// The format is deterministic -- no timestamps, no pointers, map-ordered
// tables -- so two compiles of the same source are byte-identical (CI
// checks this). Versioning rule: any layout change bumps
// kCompiledFormatVersion and readers reject every other version (TV-E302);
// there is no in-place migration, recompiling is cheap by design. Every
// rejection is reported through the diagnostic engine with a TV-E30x code
// and is an *input* error: exit 2, never a retryable 5.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.hpp"
#include "core/netlist.hpp"
#include "core/wave_table.hpp"
#include "diag/diagnostic.hpp"

namespace tv {

inline constexpr std::uint32_t kCompiledFormatVersion = 1;
inline constexpr char kCompiledMagic[8] = {'S', 'C', 'A', 'L', 'D', 'T', 'V', 'C'};

/// The front end's expansion statistics, carried through the artifact so
/// `scaldtv --compiled --stats` prints the same numbers as the source path
/// (mirrors hdl::ExpandSummary without a core -> hdl dependency).
struct CompiledSummary {
  std::size_t macro_instances = 0;
  std::size_t primitives = 0;
  std::size_t unique_signals = 0;
  std::size_t total_bits = 0;
  std::map<std::string, std::size_t> prims_by_kind;
};

/// A design as loaded from (or about to be written to) an artifact: the
/// finalized netlist, the elaboration-time verifier options (runtime knobs
/// -- jobs, time limits, fault specs -- are *not* part of a design and stay
/// CLI-controlled), the case map, and the seed-waveform arena.
struct CompiledDesign {
  std::string name;
  Netlist netlist;
  VerifierOptions options;
  std::vector<CaseSpec> cases;
  CompiledSummary summary;

  /// Unique canonical seed waveforms (materialized assertions, the
  /// always-STABLE default, UNKNOWN), deduplicated across signals.
  std::vector<Waveform> seed_arena;
  /// Per-signal index into seed_arena (SignalId-indexed, 32-bit refs).
  std::vector<std::uint32_t> seed_refs;

  /// FNV-1a over the serialized payload (set by serialize/load).
  std::uint64_t content_hash = 0;
};

/// Builds the artifact contents from an elaborated design: copies the
/// netlist and computes the deduplicated seed-waveform arena. The netlist
/// must be finalized.
CompiledDesign compile_design(std::string name, const Netlist& netlist,
                              const VerifierOptions& options,
                              std::vector<CaseSpec> cases, CompiledSummary summary);

/// Serializes to the on-disk byte format (deterministic: equal designs
/// yield equal bytes). Also updates `design.content_hash`.
std::string serialize_compiled(CompiledDesign& design);

/// Parses and validates an artifact image. On any failure reports exactly
/// one TV-E30x diagnostic against `origin` (the file name, for messages)
/// and returns nullopt. The returned netlist is finalized and ready to
/// verify.
std::optional<CompiledDesign> load_compiled(std::string_view bytes, std::string_view origin,
                                            diag::DiagnosticEngine& diags);

/// mmap (read() fallback) + load_compiled. The artifact is parsed
/// straight out of a read-only mapping -- load_compiled copies everything
/// it keeps, so the mapping is released before return. Reports TV-E300
/// when the file cannot be read.
std::optional<CompiledDesign> load_compiled_file(const std::string& path,
                                                 diag::DiagnosticEngine& diags);

/// serialize_compiled + util::atomic_write_file (temp file in the target
/// directory, fsync, rename, directory fsync): a crash mid-write can
/// never leave a torn artifact. Returns false with `error` set on I/O
/// failure.
bool write_compiled_file(CompiledDesign& design, const std::string& path, std::string* error);

/// Interns every arena waveform into `table`, warming it with the seed
/// waveforms before the first run (the warm-worker fast path). Returns the
/// number interned.
std::size_t preintern_seeds(const CompiledDesign& design, WaveformTable& table);

}  // namespace tv
