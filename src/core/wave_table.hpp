// Hash-consed waveform interning and evaluation memoization.
//
// The thesis' central storage observation (sec. 2.8, Table 3-3) is that the
// seven-value periodic waveforms of a large machine are massively shared:
// the mean value list is under three records because most signals collapse
// to one of a handful of canonical shapes (always-stable, the clock phases,
// a few delayed copies of each). A WaveformTable makes that sharing
// explicit: every waveform is canonicalized (normalized segments, skew
// zeroed when the waveform has no activity -- see Waveform::canonicalize)
// and placed in an arena exactly once; the 32-bit WaveformRef it gets back
// is content-addressed, so
//
//     intern(a) == intern(b)  <=>  a.equivalent(b)
//
// and the fixed-point convergence test degenerates from a deep segment
// compare to an integer compare. The arena also gives storage_stats the
// true unique-waveform count to hold against Table 3-3.
//
// On top of the table sits the EvalMemo: evaluate_primitive is a pure
// function of (primitive kind, delay parameters, prepared inputs), and a
// prepared input is itself a pure function of (driving waveform, inversion,
// wire delay, directive string). Keying a cache on those -- with waveforms
// as refs -- lets structurally repeated logic (the S-1's dozens of
// identical pipeline stages) evaluate once and hit thereafter.
//
// Thread-safety contract (shared with the PR-1 case worker pool): both
// structures are *shard-locked*. A ref encodes (slot << 4 | shard); intern
// and memo lookups take one shard mutex, while WaveformTable::get is
// lock-free -- chunk pointers are published with store-release under the
// shard mutex and read with load-acquire, and a chunk is never reallocated,
// so any ref obtained from intern() (which synchronizes via the mutex, or
// reaches another thread via worker join) dereferences safely. We chose
// shard-locking over thread-local tables + merge because case workers
// interleave intern and get constantly and the merge step would reintroduce
// a serial phase; contention stays low because 16 shards are selected by
// the waveform hash.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/netlist.hpp"
#include "core/waveform.hpp"

namespace tv {

/// Content-addressed handle to an interned canonical waveform.
using WaveformRef = std::uint32_t;
inline constexpr WaveformRef kNoWaveform = 0xFFFFFFFFu;

/// Append-only, shard-locked arena of unique canonical waveforms.
class WaveformTable {
 public:
  /// `max_per_shard` caps unique waveforms per shard below the structural
  /// maximum; 0 = unlimited (the built-in ~2M). Small caps force the
  /// TV-W203 degradation path deterministically, which the concurrent
  /// degradation tests exploit.
  explicit WaveformTable(std::uint32_t max_per_shard = 0);
  WaveformTable(const WaveformTable&) = delete;
  WaveformTable& operator=(const WaveformTable&) = delete;
  ~WaveformTable();

  /// Canonicalizes `w` and returns the ref of its unique copy, inserting it
  /// on first sight. Equivalent waveforms always get the same ref. Returns
  /// kNoWaveform when the shard is full (resource exhaustion; callers must
  /// degrade, not crash).
  WaveformRef intern(Waveform w);

  /// The interned waveform. Lock-free; the reference stays valid for the
  /// table's lifetime (chunks are never moved or freed before destruction).
  const Waveform& get(WaveformRef ref) const {
    const Shard& sh = shards_[ref & kShardMask];
    std::uint32_t slot = ref >> kShardBits;
    const Waveform* chunk =
        sh.chunks[slot >> kChunkBits].load(std::memory_order_acquire);
    return chunk[slot & (kChunkSize - 1)];
  }

  /// Unique canonical waveforms interned so far.
  std::size_t size() const;
  /// Total intern() calls (lookups); size()/lookups() is the sharing ratio.
  std::size_t lookups() const;
  /// Thesis-model bytes (Table 3-3 VALUE BASE + VALUE records) of the
  /// unique waveforms only -- what signal-value storage shrinks to when
  /// every signal holds a ref instead of an owned list.
  std::size_t unique_paper_bytes() const;

 private:
  static constexpr unsigned kShardBits = 4;
  static constexpr unsigned kShardCount = 1u << kShardBits;
  static constexpr unsigned kShardMask = kShardCount - 1;
  static constexpr unsigned kChunkBits = 9;  // 512 waveforms per chunk
  static constexpr unsigned kChunkSize = 1u << kChunkBits;
  static constexpr unsigned kMaxChunks = 1u << 12;  // 2M waveforms per shard

  struct Shard {
    mutable std::mutex mu;
    // hash -> slots with that hash (exact compare resolves collisions).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    std::array<std::atomic<Waveform*>, kMaxChunks> chunks{};
    std::uint32_t count = 0;           // slots in use (guarded by mu)
    std::size_t lookups = 0;           // intern() calls (guarded by mu)
    std::size_t paper_bytes = 0;       // sum over unique waveforms
  };

  Shard shards_[kShardCount];
  std::uint32_t max_per_shard_ = 0;  // 0 = structural maximum
};

/// One prepared-input key component: everything prepare_input consumes
/// besides the options (fixed per run) -- the driving waveform (as a ref),
/// the pin inversion, the wire delay that would be applied, and the
/// resolved directive string (pin override or propagated eval string).
struct MemoPin {
  WaveformRef wave = kNoWaveform;
  bool invert = false;
  Time wire_min = 0;
  Time wire_max = 0;
  std::string dirs;
  bool operator==(const MemoPin&) const = default;
};

/// Cache key for one evaluate_primitive call. The clock period is fixed per
/// evaluator, so it is deliberately not part of the key.
struct MemoKey {
  std::uint8_t kind = 0;  // PrimKind
  Time dmin = 0;
  Time dmax = 0;
  bool has_rise_fall = false;
  std::array<Time, 4> rise_fall{};  // rise min/max, fall min/max
  std::vector<MemoPin> pins;
  bool operator==(const MemoKey&) const = default;
};

/// Cached result: the interned output waveform (pre case-mapping -- the
/// mapping is case-local and applied by the caller) and the propagated
/// evaluation string.
struct MemoResult {
  WaveformRef wave = kNoWaveform;
  std::string eval_str;
};

/// Shard-locked memo-cache over evaluate_primitive. Content-addressed and
/// insert-only, so it is safe to share across the case worker pool and
/// across successive propagations of the same evaluator.
class EvalMemo {
 public:
  std::optional<MemoResult> lookup(const MemoKey& key) const;
  void store(const MemoKey& key, MemoResult result);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::size_t entries() const;

 private:
  static constexpr unsigned kShardCount = 16;

  struct KeyHash {
    std::size_t operator()(const MemoKey& k) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<MemoKey, MemoResult, KeyHash> map;
  };

  static std::size_t shard_of(const MemoKey& key);

  Shard shards_[kShardCount];
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

/// The shared interning state of one verification run: the waveform arena
/// plus the evaluation memo. The Evaluator owns one and hands it to every
/// case snapshot; it outlives all of them.
struct InternContext {
  WaveformTable table;
  EvalMemo memo;

  InternContext() = default;
  /// Caps unique waveforms per table shard (VerifierOptions::
  /// max_waveforms_per_shard); 0 = unlimited.
  explicit InternContext(std::uint32_t max_waveforms_per_shard)
      : table(max_waveforms_per_shard) {}
};

/// Snapshot of the interning counters for storage_stats / benchmarks.
struct InternStats {
  std::size_t unique_waveforms = 0;
  std::size_t intern_lookups = 0;
  std::size_t arena_paper_bytes = 0;
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;
  std::size_t memo_entries = 0;

  double memo_hit_rate() const {
    std::size_t n = memo_hits + memo_misses;
    return n ? static_cast<double>(memo_hits) / static_cast<double>(n) : 0.0;
  }
};

InternStats collect_intern_stats(const InternContext& ctx);

}  // namespace tv
