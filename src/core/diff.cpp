#include "core/diff.hpp"

#include <set>
#include <tuple>

namespace tv {

namespace {

using Key = std::tuple<Violation::Type, std::string, std::string>;

Key key_of(const Netlist& nl, const Violation& v) {
  std::string prim_name = v.prim != kNoPrim ? nl.prim(v.prim).name : "";
  std::string sig_name = v.signal != kNoSignal ? nl.signal(v.signal).base_name : "";
  return {v.type, std::move(prim_name), std::move(sig_name)};
}

}  // namespace

VerifyDiff diff_results(const Netlist& baseline_nl, const std::vector<Violation>& baseline,
                        const Netlist& current_nl, const std::vector<Violation>& current) {
  std::set<Key> base_keys, cur_keys;
  for (const Violation& v : baseline) base_keys.insert(key_of(baseline_nl, v));
  for (const Violation& v : current) cur_keys.insert(key_of(current_nl, v));

  VerifyDiff out;
  for (const Violation& v : current) {
    if (base_keys.count(key_of(current_nl, v))) {
      out.persisting.push_back(v);
    } else {
      out.introduced.push_back(v);
    }
  }
  for (const Violation& v : baseline) {
    if (!cur_keys.count(key_of(baseline_nl, v))) out.fixed.push_back(v);
  }
  return out;
}

std::string diff_report(const VerifyDiff& d) {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof line,
                "TIMING DELTA: %zu new, %zu fixed, %zu persisting violation(s)\n",
                d.introduced.size(), d.fixed.size(), d.persisting.size());
  out += line;
  if (!d.introduced.empty()) {
    out += "\nNEW SINCE BASELINE:\n";
    for (const Violation& v : d.introduced) out += v.message + "\n";
  }
  if (!d.fixed.empty()) {
    out += "\nFIXED:\n";
    for (const Violation& v : d.fixed) out += v.message + "\n";
  }
  return out;
}

}  // namespace tv
