#include "core/export.hpp"

#include <algorithm>
#include <map>

namespace tv {

namespace {

char vcd_value(Value v) {
  switch (v) {
    case Value::Zero: return '0';
    case Value::One: return '1';
    case Value::Stable: return 'z';  // defined level, value unknown
    default: return 'x';             // may be changing / unknown
  }
}

// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string export_vcd(const Netlist& nl, Time period, const std::string& design_name) {
  std::string out;
  out += "$timescale 1ps $end\n";
  out += "$scope module " + design_name + " $end\n";
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    std::string name = nl.signal(id).full_name;
    std::replace(name.begin(), name.end(), ' ', '_');
    out += "$var wire 1 " + vcd_id(id) + " " + name + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  // Gather all change times across signals (two cycles for periodicity).
  std::map<Time, std::string> dumps;
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Waveform& w = nl.signal(id).wave.with_skew_incorporated();
    Time acc = 0;
    for (const auto& seg : w.segments()) {
      for (int cycle = 0; cycle < 2; ++cycle) {
        Time t = acc + static_cast<Time>(cycle) * period;
        dumps[t] += vcd_value(seg.value);
        dumps[t] += vcd_id(id);
        dumps[t] += '\n';
      }
      acc += seg.width;
    }
  }
  for (const auto& [t, changes] : dumps) {
    out += "#" + std::to_string(t) + "\n";
    out += changes;
  }
  out += "#" + std::to_string(2 * period) + "\n";
  return out;
}

std::string export_dot(const Netlist& nl, const std::vector<SignalId>& highlight,
                       const std::string& design_name) {
  std::vector<char> hot(nl.num_signals(), 0);
  for (SignalId id : highlight) hot[id] = 1;

  std::string out = "digraph \"" + design_name + "\" {\n  rankdir=LR;\n";
  auto esc = [](std::string s) {
    std::string o;
    for (char c : s) {
      if (c == '"' || c == '\\') o += '\\';
      o += c;
    }
    return o;
  };
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    const Primitive& p = nl.prim(pid);
    out += "  p" + std::to_string(pid) + " [label=\"" + esc(p.name) + "\", shape=" +
           (prim_is_checker(p.kind) ? "doubleoctagon" : "box") + "];\n";
  }
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    bool is_input = s.driver == kNoPrim;
    if (is_input && !s.fanout.empty()) {
      out += "  s" + std::to_string(id) + " [label=\"" + esc(s.full_name) +
             "\", shape=plaintext];\n";
    }
    std::string src = is_input ? "s" + std::to_string(id)
                               : "p" + std::to_string(s.driver);
    for (PrimId pid : s.fanout) {
      out += "  " + src + " -> p" + std::to_string(pid) + " [label=\"" + esc(s.base_name) +
             "\"" + (hot[id] ? ", color=red, penwidth=2" : "") + "];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string export_json(const Netlist& nl, const VerifyResult& result, Time period,
                        const std::vector<SlackEntry>& slacks,
                        const std::string& design_name) {
  std::string out = "{\n";
  auto field = [&](const char* key, const std::string& value, bool quote, bool comma = true) {
    out += "  \"";
    out += key;
    out += "\": ";
    if (quote) {
      out += '"';
      json_escape_into(out, value);
      out += '"';
    } else {
      out += value;
    }
    if (comma) out += ',';
    out += '\n';
  };
  field("design", design_name, true);
  field("period_ns", format_ns(period), false);
  field("converged", result.converged ? "true" : "false", false);
  field("partial", result.partial ? "true" : "false", false);
  field("events", std::to_string(result.base_events), false);
  field("total_violations", std::to_string(result.total_violations()), false);

  out += "  \"degradations\": [\n";
  for (std::size_t i = 0; i < result.degradations.size(); ++i) {
    const Degradation& d = result.degradations[i];
    out += "    {\"code\": \"";
    json_escape_into(out, d.code);
    out += "\", \"message\": \"";
    json_escape_into(out, d.message);
    out += "\"}";
    if (i + 1 < result.degradations.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n";

  auto violation_json = [&](const Violation& v) {
    std::string j = "    {\"type\": \"" + violation_type_name(v.type) + "\", ";
    j += "\"checker\": \"";
    if (v.prim != kNoPrim) json_escape_into(j, nl.prim(v.prim).name);
    j += "\", \"signal\": \"";
    if (v.signal != kNoSignal) json_escape_into(j, nl.signal(v.signal).full_name);
    j += "\", \"missed_by_ns\": " + format_ns(v.missed_by) + ", \"message\": \"";
    json_escape_into(j, v.message);
    j += "\"}";
    return j;
  };

  out += "  \"violations\": [\n";
  for (std::size_t i = 0; i < result.violations.size(); ++i) {
    out += violation_json(result.violations[i]);
    if (i + 1 < result.violations.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n";

  out += "  \"cases\": [\n";
  for (std::size_t c = 0; c < result.cases.size(); ++c) {
    const auto& cr = result.cases[c];
    out += "    {\"name\": \"";
    json_escape_into(out, cr.name);
    out += "\", \"events\": " + std::to_string(cr.events) + ", \"violations\": [\n";
    for (std::size_t i = 0; i < cr.violations.size(); ++i) {
      out += "  " + violation_json(cr.violations[i]);
      if (i + 1 < cr.violations.size()) out += ',';
      out += '\n';
    }
    out += "    ]}";
    if (c + 1 < result.cases.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n";

  out += "  \"slacks\": [\n";
  for (std::size_t i = 0; i < slacks.size(); ++i) {
    const SlackEntry& e = slacks[i];
    out += "    {\"checker\": \"";
    json_escape_into(out, nl.prim(e.checker).name);
    out += "\"";
    if (e.has_setup) out += ", \"setup_slack_ns\": " + format_ns(e.setup_slack);
    if (e.has_hold) out += ", \"hold_slack_ns\": " + format_ns(e.hold_slack);
    out += "}";
    if (i + 1 < slacks.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace tv
