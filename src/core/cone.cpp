#include "core/cone.hpp"

#include <algorithm>
#include <stdexcept>

namespace tv {

ConeIndex::ConeIndex(const Netlist& nl) : nl_(nl), version_(nl.structure_version()) {
  if (!nl.finalized()) {
    throw std::logic_error("ConeIndex requires a finalized netlist");
  }
}

std::shared_ptr<const Cone> ConeIndex::cone_of(std::vector<SignalId> pins) const {
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(pins);
    if (it != cache_.end()) return it->second;
  }
  std::shared_ptr<const Cone> cone = compute(pins);
  std::lock_guard<std::mutex> lock(mu_);
  // Two threads may have raced to compute the same cone; keep the first.
  return cache_.emplace(std::move(pins), std::move(cone)).first->second;
}

std::shared_ptr<const Cone> ConeIndex::compute(const std::vector<SignalId>& pins) const {
  auto cone = std::make_shared<Cone>();
  cone->signal_slot.assign(nl_.num_signals(), -1);
  cone->prim_slot.assign(nl_.num_prims(), -1);

  std::vector<SignalId> stack;
  auto mark_signal = [&](SignalId id) {
    if (cone->signal_slot[id] >= 0) return;
    cone->signal_slot[id] = 0;  // slot assigned after the sweep
    stack.push_back(id);
  };
  auto mark_prim = [&](PrimId id) {
    if (cone->prim_slot[id] >= 0) return;
    cone->prim_slot[id] = 0;
    // A checker consumes cone signals but drives nothing; a functional
    // primitive propagates the disturbance to its output signal.
    const Primitive& p = nl_.prim(id);
    if (!prim_is_checker(p.kind) && p.output != kNoSignal) mark_signal(p.output);
  };

  for (SignalId id : pins) {
    if (id >= nl_.num_signals()) throw std::out_of_range("case pins unknown signal");
    mark_signal(id);
    // The driver re-evaluates so the case mapping is applied to its output;
    // its inputs are untouched, so marking it does not widen the cone.
    if (nl_.signal(id).driver != kNoPrim) mark_prim(nl_.signal(id).driver);
  }
  while (!stack.empty()) {
    SignalId id = stack.back();
    stack.pop_back();
    for (PrimId pid : nl_.signal(id).fanout) mark_prim(pid);
  }

  // Assign dense slots in id order so cone-local arrays iterate ascending.
  for (SignalId id = 0; id < nl_.num_signals(); ++id) {
    if (cone->signal_slot[id] >= 0) {
      cone->signal_slot[id] = static_cast<std::int32_t>(cone->signals.size());
      cone->signals.push_back(id);
    }
  }
  for (PrimId id = 0; id < nl_.num_prims(); ++id) {
    if (cone->prim_slot[id] >= 0) {
      cone->prim_slot[id] = static_cast<std::int32_t>(cone->prims.size());
      cone->prims.push_back(id);
    }
  }
  return cone;
}

std::size_t ConeIndex::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace tv
