// Seven-value signal algebra of the SCALD Timing Verifier (thesis sec. 2.4.1
// and 2.4.2).
//
// At any instant every signal has exactly one of seven values:
//
//   0  false                       R  RISE   going from zero to one
//   1  true                        F  FALL   going from one to zero
//   S  STABLE  not changing        U  UNKNOWN  initial value
//   C  CHANGE  may be changing
//
// The combinational functions (OR, AND, XOR, NOT, CHG) are "uniformly defined
// to give worst-case values": e.g. STABLE OR RISE = RISE, because the output
// is either stable or a rising edge and the rising edge is the worst case.
// Representing most signals with STABLE/CHANGE instead of their boolean value
// is the paper's central idea: it collapses the exponential set of value
// patterns a logic simulator would need into a single symbolic cycle.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace tv {

enum class Value : std::uint8_t {
  Zero = 0,   // logic 0
  One = 1,    // logic 1
  Stable = 2, // stable, boolean value unknown
  Change = 3, // may be changing
  Rise = 4,   // transitioning 0 -> 1
  Fall = 5,   // transitioning 1 -> 0
  Unknown = 6 // uninitialized / conflicting
};

inline constexpr int kNumValues = 7;

/// Single-letter names used throughout the thesis (0 1 S C R F U).
char value_letter(Value v);
/// Long names ("STABLE", "CHANGE", ...).
std::string value_name(Value v);
/// Parses a single-letter value name; returns false on unknown letters.
bool parse_value_letter(char c, Value& out);

/// True for the values that denote a (possible) transition: C, R, F.
constexpr bool is_changing(Value v) {
  return v == Value::Change || v == Value::Rise || v == Value::Fall;
}

/// True for values with a definite boolean meaning: 0 and 1.
constexpr bool is_definite(Value v) { return v == Value::Zero || v == Value::One; }

/// True for values during which a checker considers the signal "not
/// changing": 0, 1, and STABLE (sec. 2.4.4 checkers accept any of these).
constexpr bool is_steady(Value v) {
  return v == Value::Zero || v == Value::One || v == Value::Stable;
}

// --- Worst-case combinational functions (sec. 2.4.2) ----------------------

Value value_or(Value a, Value b);
Value value_and(Value a, Value b);
Value value_xor(Value a, Value b);
Value value_not(Value a);

/// The CHANGE (CHG) function used to model complex combinational logic
/// (adders, parity trees) whose boolean function is irrelevant to timing:
/// UNKNOWN if any input is UNKNOWN, else CHANGE if any input is changing,
/// else STABLE. Note that inputs 0/1 count as "not changing".
Value value_chg(Value a, Value b);
/// Unary form: maps 0/1/S to STABLE, R/F/C to CHANGE, U to UNKNOWN.
Value value_chg(Value a);

/// "Uncertainty union": the single value that soundly describes a signal
/// known only to be one of {a, b} at an instant. Used when skew is folded
/// into a waveform and when case results are merged.
///   union(0,1)=C (could be either, and may flip), union(0,R)=R,
///   union(R,1)=R, union(1,F)=F, union(F,0)=F, union(S,C)=C, U dominates.
Value value_union(Value a, Value b);

/// Worst-case multiplexer select: the output of a 2-input mux whose select
/// line carries `sel` and whose data inputs carry `a` (select=0) and `b`
/// (select=1). When the select is STABLE the output is the union of the two
/// data inputs' behaviours minus any actual switching; when the select is
/// changing the output may glitch between the inputs.
Value value_mux(Value sel, Value a, Value b);

}  // namespace tv
