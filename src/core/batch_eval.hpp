// Batch case evaluation: one topological sweep for all case instances.
//
// The per-case engine (core/snapshot.hpp) re-runs the event-driven worklist
// once per case -- N cases cost N full cone propagations, each rebuilding
// worklists, memo keys, and deep waveform copies. The thesis' own cost
// model (sec. 2.7) says the *values* barely differ between cases: a case
// pins a handful of control signals and most of the design stays at the
// base fixpoint. This engine exploits that by evaluating many cases --
// "lanes" -- in lockstep over a single precomputed topological order:
//
//   * state is a structure-of-arrays arena (core/batch_arena.hpp) of
//     interned 32-bit waveform refs laid out [signal][lane];
//   * the schedule is the SCC condensation of the primitive graph (the
//     same Tarjan machinery as the oscillation localizer), walked once in
//     topological order; cyclic components iterate to an intra-component
//     fixpoint with the per-case oscillation guard as the iteration cap;
//   * at each primitive, a branch-minimal pass over the input rows marks
//     the lanes whose inputs diverged from the base fixpoint; all other
//     lanes are *skipped entirely* -- they provably hold the base value --
//     which generalizes PR 1's cone scoping to per-primitive-per-lane
//     granularity;
//   * dirty lanes share one memo-key skeleton per primitive (per-lane ref
//     patching instead of per-eval key construction) and feed the same
//     shard-locked EvalMemo as the per-case path, and identical adjacent
//     lanes reuse the previous lane's result outright.
//
// The invariant, enforced by the golden suite and tvfuzz --batch-diff: for
// non-degraded runs the batch path's reports are byte-identical to the
// per-case path's. Degradation-prone runs (armed wall-clock budgets,
// degraded or non-convergent base fixpoints, a full intern table) are not
// batched -- Verifier::verify silently defers those to the per-case path,
// and run_case_block aborts a block (completed = false) if the table fills
// mid-sweep so the caller can re-run it per-case. See docs/batch_eval.md.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/batch_arena.hpp"
#include "core/cone.hpp"
#include "core/evaluator.hpp"
#include "core/snapshot.hpp"

namespace tv {

/// The precomputed evaluation schedule: strongly connected components of
/// the primitive graph (checkers excluded -- they drive nothing) in
/// topological order. Acyclic components are single primitives evaluated
/// exactly once per sweep; cyclic ones (register feedback) iterate to an
/// intra-component fixpoint. Built once per verify run and shared by every
/// case block and worker thread.
struct BatchSchedule {
  struct Component {
    std::vector<PrimId> prims;  // ascending netlist order within the component
    bool cyclic = false;        // more than one primitive, or a self-loop
  };
  std::vector<Component> components;  // topological order
};

BatchSchedule build_batch_schedule(const Netlist& nl);

/// Per-lane cost and convergence accounting for one block sweep.
struct BatchLaneStats {
  std::size_t evals = 0;       // primitive evaluations performed for this lane
  std::size_t lane_skips = 0;  // primitive visits skipped by the base-ref test
  bool converged = true;
  bool degraded = false;
  std::vector<Degradation> degradations;
};

/// Result of one block sweep. completed == false means the waveform table
/// filled mid-sweep (or a baseline ref was missing): the arena state is
/// unusable and the caller must re-run the block's cases on the per-case
/// path, which re-derives the identical degradation records.
struct BatchBlockResult {
  bool completed = false;
  std::vector<BatchLaneStats> lanes;
};

/// Evaluates cases[first .. first+count) as lockstep lanes of one sweep.
/// `cones[first + l]` is lane l's affected cone and `snaps[l]` its (fresh)
/// snapshot; on success each snapshot holds exactly the lane's divergences
/// from the base fixpoint, ready for run_checks_scoped -- the same shape
/// the per-case runner leaves behind, so checking and reporting are shared
/// verbatim. `base_refs` is the baseline fixpoint's per-signal ref array
/// and `ctx` the run's shared intern context (both from the Evaluator).
BatchBlockResult run_case_block(const Netlist& nl, const VerifierOptions& opts,
                                const BatchSchedule& sched, InternContext& ctx,
                                const std::vector<WaveformRef>& base_refs,
                                const std::vector<CaseSpec>& cases,
                                std::size_t first, std::size_t count,
                                const std::vector<std::shared_ptr<const Cone>>& cones,
                                std::vector<EvalSnapshot>& snaps);

}  // namespace tv
