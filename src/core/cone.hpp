// Fanout-cone extraction for case analysis (thesis secs. 2.7, 3.3.2).
//
// A case specification pins a handful of control signals; the only parts of
// the circuit its evaluation can disturb are the pinned signals themselves,
// their drivers (which recompute under the case mapping), and everything
// downstream through the fanout call lists. The ConeIndex precomputes that
// transitive *affected cone* -- the signal set, the primitive set (checkers
// included, since their checks must be re-run), and O(1) slot maps that let
// a snapshot store per-cone evaluation state in dense cone-local arrays.
//
// Cones are memoized by pin set: the common case file pins the same control
// signals over and over with different values (CONTROL=0 / CONTROL=1), so
// one BFS serves every case on that pin set.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/netlist.hpp"

namespace tv {

/// The transitive affected cone of one pin set.
struct Cone {
  /// Affected signals, ascending. Includes the pinned signals.
  std::vector<SignalId> signals;
  /// Affected primitives, ascending: the pinned signals' drivers, every
  /// fanout primitive of every affected signal. Checkers appear here (their
  /// constraints must be re-examined) but are never enqueued for evaluation.
  std::vector<PrimId> prims;

  /// Dense cone-local slot of each signal/primitive, or -1 outside the cone.
  /// Sized to the full netlist so membership tests are a single load.
  std::vector<std::int32_t> signal_slot;
  std::vector<std::int32_t> prim_slot;

  bool contains_signal(SignalId id) const { return signal_slot[id] >= 0; }
  bool contains_prim(PrimId id) const { return prim_slot[id] >= 0; }
};

class ConeIndex {
 public:
  /// The netlist must be finalized (fanout call lists computed) and must
  /// outlive the index; structural edits invalidate it.
  explicit ConeIndex(const Netlist& nl);

  /// The affected cone of `pins` (order and duplicates irrelevant).
  /// Memoized: repeated pin sets share one Cone. Thread-safe.
  std::shared_ptr<const Cone> cone_of(std::vector<SignalId> pins) const;

  std::size_t cache_size() const;

  /// False once the netlist's fanout graph changed after construction (it
  /// was re-finalized, bumping structure_version(), or definalized by an
  /// edit). A stale index must be discarded -- its memoized cones describe
  /// the old graph and would silently skip retargeted connections.
  bool is_current() const {
    return nl_.finalized() && nl_.structure_version() == version_;
  }

 private:
  std::shared_ptr<const Cone> compute(const std::vector<SignalId>& pins) const;

  const Netlist& nl_;
  std::uint64_t version_ = 0;
  mutable std::mutex mu_;
  mutable std::map<std::vector<SignalId>, std::shared_ptr<const Cone>> cache_;
};

}  // namespace tv
