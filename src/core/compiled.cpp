// Compiled-design artifact serialization (see compiled.hpp for the format).
#include "core/compiled.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/wire_format.hpp"
#include "util/atomic_file.hpp"

namespace tv {
namespace {

using wire::ByteReader;
using wire::ByteWriter;
using wire::fnv1a;
using wire::kEndianTag;
using wire::kEndianTagSwapped;
using wire::kHeaderSize;
using wire::kSectionEntrySize;
using wire::Loader;
using wire::read_waveform;
using wire::write_waveform;

// Section ids (the table is written in this order).
enum : std::uint32_t {
  kSecMeta = 1,
  kSecSignals = 2,
  kSecPrims = 3,
  kSecCases = 4,
  kSecWaves = 5,
};
constexpr std::uint32_t kSectionIds[] = {kSecMeta, kSecSignals, kSecPrims, kSecCases,
                                         kSecWaves};
constexpr std::size_t kSectionCount = sizeof(kSectionIds) / sizeof(kSectionIds[0]);

// ---------------------------------------------------------------- writing

void write_assertion(ByteWriter& w, const Assertion& a) {
  w.u8(static_cast<std::uint8_t>(a.kind));
  w.u8(a.active_low ? 1 : 0);
  w.u8(a.skew_ns ? 1 : 0);
  if (a.skew_ns) {
    w.f64(a.skew_ns->first);
    w.f64(a.skew_ns->second);
  }
  w.u32(static_cast<std::uint32_t>(a.ranges.size()));
  for (const Assertion::Range& r : a.ranges) {
    w.f64(r.begin);
    w.f64(r.end);
    w.u8(r.width_ns ? 1 : 0);
    if (r.width_ns) w.f64(*r.width_ns);
  }
}

std::string build_meta(const CompiledDesign& d) {
  ByteWriter w;
  w.str(d.name);
  const VerifierOptions& o = d.options;
  w.i64(o.period);
  w.i64(o.units.ps_per_unit());
  w.i64(o.default_wire.dmin);
  w.i64(o.default_wire.dmax);
  w.f64(o.assertion_defaults.precision_skew_minus_ns);
  w.f64(o.assertion_defaults.precision_skew_plus_ns);
  w.f64(o.assertion_defaults.clock_skew_minus_ns);
  w.f64(o.assertion_defaults.clock_skew_plus_ns);
  w.u64(o.max_evals_per_prim);
  w.u64(o.max_segments_per_signal);
  w.u8(o.interning ? 1 : 0);
  w.u8(o.batch_eval ? 1 : 0);
  w.u32(o.batch_lanes);
  w.u64(d.summary.macro_instances);
  w.u64(d.summary.primitives);
  w.u64(d.summary.unique_signals);
  w.u64(d.summary.total_bits);
  w.u32(static_cast<std::uint32_t>(d.summary.prims_by_kind.size()));
  for (const auto& [kind, count] : d.summary.prims_by_kind) {  // std::map: sorted
    w.str(kind);
    w.u64(count);
  }
  return w.take();
}

std::string build_signals(const Netlist& nl) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(nl.num_signals()));
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    w.str(s.full_name);
    w.str(s.base_name);
    write_assertion(w, s.assertion);
    w.u8(static_cast<std::uint8_t>(s.scope));
    w.u32(static_cast<std::uint32_t>(s.width));
    w.u8(s.wire_delay ? 1 : 0);
    if (s.wire_delay) {
      w.i64(s.wire_delay->dmin);
      w.i64(s.wire_delay->dmax);
    }
  }
  return w.take();
}

std::string build_prims(const Netlist& nl) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(nl.num_prims()));
  for (PrimId id = 0; id < nl.num_prims(); ++id) {
    const Primitive& p = nl.prim(id);
    w.u8(static_cast<std::uint8_t>(p.kind));
    w.str(p.name);
    w.i64(p.dmin);
    w.i64(p.dmax);
    w.u8(p.rise_fall ? 1 : 0);
    if (p.rise_fall) {
      w.i64(p.rise_fall->rise_min);
      w.i64(p.rise_fall->rise_max);
      w.i64(p.rise_fall->fall_min);
      w.i64(p.rise_fall->fall_max);
    }
    w.i64(p.setup);
    w.i64(p.hold);
    w.i64(p.min_high);
    w.i64(p.min_low);
    w.u32(static_cast<std::uint32_t>(p.width));
    w.u32(p.output);
    w.u32(static_cast<std::uint32_t>(p.inputs.size()));
    for (const Pin& pin : p.inputs) {
      w.u32(pin.sig);
      w.u8(pin.invert ? 1 : 0);
      w.str(pin.directives);
    }
  }
  return w.take();
}

std::string build_cases(const std::vector<CaseSpec>& cases) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(cases.size()));
  for (const CaseSpec& c : cases) {
    w.str(c.name);
    w.u32(static_cast<std::uint32_t>(c.pins.size()));
    for (const auto& [sig, value] : c.pins) {
      w.u32(sig);
      w.u8(static_cast<std::uint8_t>(value));
    }
  }
  return w.take();
}

std::string build_waves(const CompiledDesign& d) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(d.seed_arena.size()));
  for (const Waveform& wave : d.seed_arena) write_waveform(w, wave);
  w.u32(static_cast<std::uint32_t>(d.seed_refs.size()));
  for (std::uint32_t ref : d.seed_refs) w.u32(ref);
  return w.take();
}

// ---------------------------------------------------------------- reading

bool read_assertion(ByteReader& r, Assertion& a, Loader& L) {
  std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Assertion::Kind::Stable))
    return L.fail(diag::kErrArtifactMalformed, "bad assertion kind");
  a.kind = static_cast<Assertion::Kind>(kind);
  a.active_low = r.u8() != 0;
  if (r.u8() != 0) {
    double minus = r.f64();
    double plus = r.f64();
    a.skew_ns = {minus, plus};
  }
  std::uint32_t nranges = r.u32();
  a.ranges.reserve(nranges);
  for (std::uint32_t i = 0; i < nranges && !r.truncated(); ++i) {
    Assertion::Range range;
    range.begin = r.f64();
    range.end = r.f64();
    if (r.u8() != 0) range.width_ns = r.f64();
    a.ranges.push_back(range);
  }
  return true;
}

bool read_meta(ByteReader& r, CompiledDesign& d, Loader& L) {
  d.name = r.str();
  d.options.period = r.i64();
  d.options.units = ClockUnits(r.i64());
  d.options.default_wire.dmin = r.i64();
  d.options.default_wire.dmax = r.i64();
  d.options.assertion_defaults.precision_skew_minus_ns = r.f64();
  d.options.assertion_defaults.precision_skew_plus_ns = r.f64();
  d.options.assertion_defaults.clock_skew_minus_ns = r.f64();
  d.options.assertion_defaults.clock_skew_plus_ns = r.f64();
  d.options.max_evals_per_prim = r.u64();
  d.options.max_segments_per_signal = r.u64();
  d.options.interning = r.u8() != 0;
  d.options.batch_eval = r.u8() != 0;
  d.options.batch_lanes = r.u32();
  d.summary.macro_instances = r.u64();
  d.summary.primitives = r.u64();
  d.summary.unique_signals = r.u64();
  d.summary.total_bits = r.u64();
  std::uint32_t nkinds = r.u32();
  for (std::uint32_t i = 0; i < nkinds && !r.truncated(); ++i) {
    std::string kind = r.str();
    std::uint64_t count = r.u64();
    d.summary.prims_by_kind[kind] = count;
  }
  if (!r.truncated() && d.options.period <= 0)
    return L.fail(diag::kErrArtifactMalformed, "non-positive clock period");
  return true;
}

bool read_signals(ByteReader& r, CompiledDesign& d, Loader& L) {
  std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.truncated(); ++i) {
    Signal s;
    s.full_name = r.str();
    s.base_name = r.str();
    if (!read_assertion(r, s.assertion, L)) return false;
    std::uint8_t scope = r.u8();
    if (!r.truncated() && scope > static_cast<std::uint8_t>(SignalScope::Parameter))
      return L.fail(diag::kErrArtifactMalformed, "bad signal scope");
    s.scope = static_cast<SignalScope>(scope);
    s.width = static_cast<int>(r.u32());
    if (r.u8() != 0) {
      WireDelay wd;
      wd.dmin = r.i64();
      wd.dmax = r.i64();
      s.wire_delay = wd;
    }
    if (r.truncated()) break;
    d.netlist.push_signal(std::move(s));
  }
  return true;
}

bool read_prims(ByteReader& r, CompiledDesign& d, Loader& L) {
  const std::uint32_t nsignals = static_cast<std::uint32_t>(d.netlist.num_signals());
  std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.truncated(); ++i) {
    Primitive p;
    std::uint8_t kind = r.u8();
    if (!r.truncated() && kind > static_cast<std::uint8_t>(PrimKind::MinPulseWidthChk))
      return L.fail(diag::kErrArtifactMalformed, "bad primitive kind");
    p.kind = static_cast<PrimKind>(kind);
    p.name = r.str();
    p.dmin = r.i64();
    p.dmax = r.i64();
    if (r.u8() != 0) {
      RiseFallDelay rf;
      rf.rise_min = r.i64();
      rf.rise_max = r.i64();
      rf.fall_min = r.i64();
      rf.fall_max = r.i64();
      p.rise_fall = rf;
    }
    p.setup = r.i64();
    p.hold = r.i64();
    p.min_high = r.i64();
    p.min_low = r.i64();
    p.width = static_cast<int>(r.u32());
    p.output = r.u32();
    if (!r.truncated() && p.output != kNoSignal && p.output >= nsignals)
      return L.fail(diag::kErrArtifactMalformed,
                    "primitive \"" + p.name + "\": output signal out of range");
    std::uint32_t ninputs = r.u32();
    for (std::uint32_t j = 0; j < ninputs && !r.truncated(); ++j) {
      Pin pin;
      pin.sig = r.u32();
      if (!r.truncated() && pin.sig >= nsignals)
        return L.fail(diag::kErrArtifactMalformed,
                      "primitive \"" + p.name + "\": input signal out of range");
      pin.invert = r.u8() != 0;
      pin.directives = r.str();
      p.inputs.push_back(std::move(pin));
    }
    if (r.truncated()) break;
    try {
      d.netlist.add_prim(std::move(p));
    } catch (const std::exception& e) {
      return L.fail(diag::kErrArtifactMalformed, e.what());
    }
  }
  return true;
}

bool read_cases(ByteReader& r, CompiledDesign& d, Loader& L) {
  const std::uint32_t nsignals = static_cast<std::uint32_t>(d.netlist.num_signals());
  std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && !r.truncated(); ++i) {
    CaseSpec c;
    c.name = r.str();
    std::uint32_t npins = r.u32();
    for (std::uint32_t j = 0; j < npins && !r.truncated(); ++j) {
      std::uint32_t sig = r.u32();
      std::uint8_t value = r.u8();
      if (r.truncated()) break;
      if (sig >= nsignals)
        return L.fail(diag::kErrArtifactMalformed,
                      "case \"" + c.name + "\": signal out of range");
      if (value >= kNumValues)
        return L.fail(diag::kErrArtifactMalformed, "case \"" + c.name + "\": bad value");
      c.pins.emplace_back(sig, static_cast<Value>(value));
    }
    if (r.truncated()) break;
    d.cases.push_back(std::move(c));
  }
  return true;
}

bool read_waves(ByteReader& r, CompiledDesign& d, Loader& L) {
  std::uint32_t arena = r.u32();
  for (std::uint32_t i = 0; i < arena && !r.truncated(); ++i) {
    Waveform w;
    if (!read_waveform(r, w, L)) return false;
    if (r.truncated()) break;
    d.seed_arena.push_back(std::move(w));
  }
  std::uint32_t nrefs = r.u32();
  for (std::uint32_t i = 0; i < nrefs && !r.truncated(); ++i) {
    std::uint32_t ref = r.u32();
    if (!r.truncated() && ref >= d.seed_arena.size())
      return L.fail(diag::kErrArtifactMalformed, "seed-waveform ref out of range");
    d.seed_refs.push_back(ref);
  }
  if (!r.truncated() && d.seed_refs.size() != d.netlist.num_signals())
    return L.fail(diag::kErrArtifactMalformed,
                  "seed-ref table does not match the signal count");
  return true;
}

}  // namespace

CompiledDesign compile_design(std::string name, const Netlist& netlist,
                              const VerifierOptions& options,
                              std::vector<CaseSpec> cases, CompiledSummary summary) {
  CompiledDesign d;
  d.name = std::move(name);
  d.netlist = netlist;
  d.options = options;
  d.cases = std::move(cases);
  d.summary = std::move(summary);

  // Deduplicated seed arena: every signal's initial waveform (materialized
  // assertion / always-STABLE / UNKNOWN), one unique canonical copy each.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  d.seed_refs.reserve(netlist.num_signals());
  for (SignalId id = 0; id < netlist.num_signals(); ++id) {
    Waveform w = seed_waveform(netlist.signal(id), options).canonical();
    std::uint64_t h = w.canonical_hash();
    std::uint32_t ref = kNoWaveform;
    for (std::uint32_t cand : buckets[h]) {
      if (d.seed_arena[cand].equivalent(w)) {
        ref = cand;
        break;
      }
    }
    if (ref == kNoWaveform) {
      ref = static_cast<std::uint32_t>(d.seed_arena.size());
      buckets[h].push_back(ref);
      d.seed_arena.push_back(std::move(w));
    }
    d.seed_refs.push_back(ref);
  }
  return d;
}

std::string serialize_compiled(CompiledDesign& design) {
  const std::string sections[kSectionCount] = {
      build_meta(design), build_signals(design.netlist), build_prims(design.netlist),
      build_cases(design.cases), build_waves(design)};

  // Section table + payload, then the header over them.
  ByteWriter body;
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    body.u32(kSectionIds[i]);
    body.u32(0);  // reserved
    body.u64(offset);
    body.u64(sections[i].size());
    offset += sections[i].size();
  }
  std::string out = body.take();
  for (const std::string& s : sections) out += s;

  design.content_hash = fnv1a(out.data(), out.size(), 14695981039346656037ull);

  ByteWriter header;
  for (char c : kCompiledMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kEndianTag);
  header.u32(kCompiledFormatVersion);
  header.u64(design.content_hash);
  header.u64(out.size());
  header.u32(static_cast<std::uint32_t>(kSectionCount));
  header.u32(0);  // reserved
  return header.take() + out;
}

std::optional<CompiledDesign> load_compiled(std::string_view bytes, std::string_view origin,
                                            diag::DiagnosticEngine& diags) {
  Loader L{diags, origin};
  if (bytes.size() < kHeaderSize) {
    L.fail(diag::kErrArtifactTruncated, "file too small to hold an artifact header");
    return std::nullopt;
  }
  ByteReader h(bytes.substr(0, kHeaderSize));
  char magic[8];
  for (char& c : magic) c = static_cast<char>(h.u8());
  if (std::memcmp(magic, kCompiledMagic, sizeof magic) != 0) {
    L.fail(diag::kErrArtifactMagic, "not a compiled design (bad magic)");
    return std::nullopt;
  }
  std::uint32_t endian = h.u32();
  if (endian != kEndianTag) {
    L.fail(endian == kEndianTagSwapped ? diag::kErrArtifactEndian : diag::kErrArtifactMalformed,
           endian == kEndianTagSwapped ? "artifact written with opposite byte order"
                                       : "bad endianness tag");
    return std::nullopt;
  }
  std::uint32_t version = h.u32();
  if (version != kCompiledFormatVersion) {
    L.fail(diag::kErrArtifactVersion,
           "format version " + std::to_string(version) + " (this build reads version " +
               std::to_string(kCompiledFormatVersion) + "); recompile with scaldtvc");
    return std::nullopt;
  }
  std::uint64_t stored_hash = h.u64();
  std::uint64_t payload_size = h.u64();
  std::uint32_t nsections = h.u32();
  if (payload_size != bytes.size() - kHeaderSize) {
    L.fail(diag::kErrArtifactTruncated,
           payload_size > bytes.size() - kHeaderSize ? "artifact is truncated"
                                                     : "trailing bytes after the payload");
    return std::nullopt;
  }
  std::string_view payload = bytes.substr(kHeaderSize);
  std::uint64_t hash = fnv1a(payload.data(), payload.size(), 14695981039346656037ull);
  if (hash != stored_hash) {
    L.fail(diag::kErrArtifactHash, "content hash mismatch (artifact is corrupted)");
    return std::nullopt;
  }
  if (nsections != kSectionCount || payload.size() < nsections * kSectionEntrySize) {
    L.fail(diag::kErrArtifactMalformed, "bad section table");
    return std::nullopt;
  }

  // Section table: ids in fixed order, ranges inside the payload.
  std::string_view sections[kSectionCount];
  {
    ByteReader t(payload.substr(0, kSectionCount * kSectionEntrySize));
    std::string_view data = payload.substr(kSectionCount * kSectionEntrySize);
    for (std::size_t i = 0; i < kSectionCount; ++i) {
      std::uint32_t id = t.u32();
      t.u32();  // reserved
      std::uint64_t off = t.u64();
      std::uint64_t size = t.u64();
      if (id != kSectionIds[i] || off > data.size() || size > data.size() - off) {
        L.fail(diag::kErrArtifactMalformed, "bad section table");
        return std::nullopt;
      }
      sections[i] = data.substr(off, size);
    }
  }

  CompiledDesign d;
  d.content_hash = stored_hash;
  ByteReader readers[kSectionCount] = {ByteReader(sections[0]), ByteReader(sections[1]),
                                       ByteReader(sections[2]), ByteReader(sections[3]),
                                       ByteReader(sections[4])};
  bool ok = read_meta(readers[0], d, L) && read_signals(readers[1], d, L) &&
            read_prims(readers[2], d, L) && read_cases(readers[3], d, L) &&
            read_waves(readers[4], d, L);
  if (ok) {
    for (std::size_t i = 0; i < kSectionCount; ++i) {
      if (readers[i].truncated()) {
        L.fail(diag::kErrArtifactTruncated, "section ends mid-record");
        break;
      }
      if (!readers[i].at_end()) {
        L.fail(diag::kErrArtifactMalformed, "unconsumed bytes at the end of a section");
        break;
      }
    }
  }
  if (!L.failed) {
    // Recompute fanout call lists and re-validate the structure exactly as
    // the front end did; a corrupt-but-well-formed artifact fails here.
    try {
      d.netlist.finalize();
    } catch (const std::exception& e) {
      L.fail(diag::kErrArtifactMalformed, e.what());
    }
  }
  if (L.failed) return std::nullopt;
  return d;
}

std::optional<CompiledDesign> load_compiled_file(const std::string& path,
                                                 diag::DiagnosticEngine& diags) {
  // Map the artifact read-only and parse straight out of the mapping; the
  // layout has been position-independent since PR 7, and load_compiled
  // copies everything it keeps, so the mapping is released before return.
  // Anything mmap can't serve (pipes, /proc, zero-length, exotic
  // filesystems) falls back to a plain buffered read.
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    diags.report(diag::Severity::Error, diag::kErrArtifactIo, diag::SourceLoc{},
                 path + ": cannot open compiled design");
    return std::nullopt;
  }
  struct stat st{};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    std::size_t len = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      auto result = load_compiled(
          std::string_view(static_cast<const char*>(map), len), path, diags);
      ::munmap(map, len);
      return result;
    }
  }
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    diags.report(diag::Severity::Error, diag::kErrArtifactIo, diag::SourceLoc{},
                 path + ": cannot open compiled design");
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    diags.report(diag::Severity::Error, diag::kErrArtifactIo, diag::SourceLoc{},
                 path + ": read error");
    return std::nullopt;
  }
  std::string bytes = buf.str();
  return load_compiled(bytes, path, diags);
}

bool write_compiled_file(CompiledDesign& design, const std::string& path, std::string* error) {
  std::string bytes = serialize_compiled(design);
  return util::atomic_write_file(path, bytes, error);
}

std::size_t preintern_seeds(const CompiledDesign& design, WaveformTable& table) {
  std::size_t n = 0;
  for (const Waveform& w : design.seed_arena) {
    if (table.intern(w) != kNoWaveform) ++n;
  }
  return n;
}

}  // namespace tv
