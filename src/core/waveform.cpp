#include "core/waveform.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <stdexcept>

namespace tv {

Waveform::Waveform(Time period, Value fill) : period_(period) {
  if (period <= 0) throw std::invalid_argument("waveform period must be positive");
  segs_.push_back(Segment{fill, period});
}

Value Waveform::at(Time t) const {
  t = floor_mod(t, period_);
  Time acc = 0;
  for (const Segment& s : segs_) {
    acc += s.width;
    if (t < acc) return s.value;
  }
  return segs_.back().value;  // unreachable when invariants hold
}

void Waveform::fill(Value v) {
  segs_.clear();
  segs_.push_back(Segment{v, period_});
  skew_ = 0;
}

void Waveform::normalize() {
  std::vector<Segment> out;
  for (const Segment& s : segs_) {
    if (s.width == 0) continue;
    if (!out.empty() && out.back().value == s.value) {
      out.back().width += s.width;
    } else {
      out.push_back(s);
    }
  }
  if (out.empty()) out.push_back(Segment{segs_.empty() ? Value::Unknown : segs_[0].value, period_});
  segs_ = std::move(out);
}

Waveform Waveform::from_segments(Time period, Time skew, std::vector<Segment> segs) {
  Waveform w;
  w.period_ = period;
  w.skew_ = skew;
  w.segs_ = std::move(segs);
  w.normalize();
  return w;
}

Waveform Waveform::from_points(Time period, std::vector<std::pair<Time, Value>> pts, Time skew) {
  Waveform w(period);
  if (pts.empty()) return w;
  std::stable_sort(pts.begin(), pts.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // Later points at the same time win.
  std::vector<std::pair<Time, Value>> uniq;
  for (const auto& p : pts) {
    if (!uniq.empty() && uniq.back().first == p.first) {
      uniq.back().second = p.second;
    } else {
      uniq.push_back(p);
    }
  }
  // Anchor at cycle time 0: if no explicit point there, the value wraps
  // around from the last change point of the previous cycle.
  if (uniq.front().first != 0) uniq.insert(uniq.begin(), {0, uniq.back().second});
  w.segs_.clear();
  for (std::size_t i = 0; i < uniq.size(); ++i) {
    Time end = (i + 1 < uniq.size()) ? uniq[i + 1].first : period;
    w.segs_.push_back(Segment{uniq[i].second, end - uniq[i].first});
  }
  w.skew_ = skew;
  w.normalize();
  return w;
}

void Waveform::set(Time begin, Time end, Value v) {
  Time width = end - begin;
  if (width <= 0) return;
  if (width >= period_) {
    Time sk = skew_;
    fill(v);
    skew_ = sk;
    return;
  }
  begin = floor_mod(begin, period_);
  end = begin + width;  // may exceed period_, meaning the interval wraps

  auto inside = [&](Time t) {
    // Circular membership of t in [begin, begin+width).
    Time rel = floor_mod(t - begin, period_);
    return rel < width;
  };

  std::vector<std::pair<Time, Value>> pts;
  Time acc = 0;
  for (const Segment& s : segs_) {
    pts.emplace_back(acc, s.value);
    acc += s.width;
  }
  // Critical times where the override interval begins/ends.
  Time b = floor_mod(begin, period_);
  Time e = floor_mod(end, period_);
  Value at_e = at(e);
  pts.emplace_back(b, v);
  pts.emplace_back(e, at_e);
  // Rewrite any original change points falling inside the interval.
  for (auto& p : pts) {
    if (inside(p.first)) p.second = v;
  }
  *this = from_points(period_, std::move(pts), skew_);
}

Waveform Waveform::delayed(Time dmin, Time dmax) const {
  assert(dmin >= 0 && dmax >= dmin);
  std::vector<std::pair<Time, Value>> pts;
  Time acc = 0;
  for (const Segment& s : segs_) {
    pts.emplace_back(floor_mod(acc + dmin, period_), s.value);
    acc += s.width;
  }
  return from_points(period_, std::move(pts), skew_ + (dmax - dmin));
}

std::vector<Waveform::Boundary> Waveform::boundaries() const {
  std::vector<Boundary> out;
  if (segs_.size() <= 1) return out;
  if (segs_.back().value != segs_.front().value) {
    out.push_back(Boundary{0, segs_.back().value, segs_.front().value});
  }
  Time acc = 0;
  for (std::size_t i = 0; i + 1 < segs_.size(); ++i) {
    acc += segs_[i].width;
    out.push_back(Boundary{acc, segs_[i].value, segs_[i + 1].value});
  }
  std::sort(out.begin(), out.end(),
            [](const Boundary& a, const Boundary& b) { return a.time < b.time; });
  return out;
}

std::uint8_t Waveform::value_mask(Time begin, Time end) const {
  Time width = end - begin;
  if (width <= 0) return 0;
  if (width > period_) width = period_;
  begin = floor_mod(begin, period_);
  std::uint8_t mask = 0;
  // Walk segments circularly starting from `begin` until `width` consumed.
  Time acc = 0;
  std::size_t i = 0;
  // Find the segment containing `begin`.
  while (acc + segs_[i].width <= begin) {
    acc += segs_[i].width;
    ++i;
  }
  Time pos = begin;
  Time remaining = width;
  Time seg_end = acc + segs_[i].width;
  while (remaining > 0) {
    mask |= static_cast<std::uint8_t>(1u << static_cast<int>(segs_[i].value));
    Time take = std::min(remaining, seg_end - pos);
    remaining -= take;
    pos += take;
    if (remaining > 0) {
      i = (i + 1) % segs_.size();
      if (i == 0) {
        pos = 0;
        seg_end = segs_[0].width;
      } else {
        seg_end += segs_[i].width;
      }
    }
  }
  return mask;
}

namespace {
constexpr std::uint8_t bit(Value v) { return static_cast<std::uint8_t>(1u << static_cast<int>(v)); }
constexpr std::uint8_t kSteadyMask =
    (1u << static_cast<int>(Value::Zero)) | (1u << static_cast<int>(Value::One)) |
    (1u << static_cast<int>(Value::Stable));
}  // namespace

bool Waveform::steady_over(Time begin, Time end) const {
  std::uint8_t m = value_mask(begin, end);
  return (m & ~kSteadyMask) == 0;
}

bool Waveform::has_activity() const {
  if (segs_.empty()) return false;  // default-constructed (period 0)
  if (segs_.size() > 1) return true;
  return is_changing(segs_[0].value);
}

std::uint64_t Waveform::canonical_hash() const {
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kBasis;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(period_));
  mix(static_cast<std::uint64_t>(has_activity() ? skew_ : 0));
  for (const Segment& s : segs_) {
    mix(static_cast<std::uint64_t>(s.value));
    mix(static_cast<std::uint64_t>(s.width));
  }
  return h;
}

bool Waveform::settles(Time from, Time until, Time& settle_time) const {
  Time span = until - from;
  if (span <= 0) return false;
  if (span > period_) span = period_;
  // Walk backwards from `until`, accumulating the steady run that ends there.
  Time covered = 0;
  Time t_end = floor_mod(until, period_);
  // Segment index and in-segment offset for the instant just before t_end.
  while (covered < span) {
    Time probe = floor_mod(t_end - covered - 1, period_);
    // Find the segment containing `probe` and how far into it probe is.
    Time acc = 0;
    std::size_t i = 0;
    while (acc + segs_[i].width <= probe) {
      acc += segs_[i].width;
      ++i;
    }
    if (!is_steady(segs_[i].value)) break;
    Time run_start = acc;                       // segment start
    Time usable = probe - run_start + 1;        // steady time ending at probe+1
    covered += usable;
  }
  if (covered == 0) return false;
  if (covered > span) covered = span;
  settle_time = floor_mod(until - covered, period_);
  return true;
}

Waveform Waveform::binary(const Waveform& a, const Waveform& b, Value (*op)(Value, Value)) {
  assert(a.period_ == b.period_);
  std::vector<Time> times;
  Time acc = 0;
  for (const Segment& s : a.segs_) {
    times.push_back(acc);
    acc += s.width;
  }
  acc = 0;
  for (const Segment& s : b.segs_) {
    times.push_back(acc);
    acc += s.width;
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  std::vector<std::pair<Time, Value>> pts;
  pts.reserve(times.size());
  for (Time t : times) pts.emplace_back(t, op(a.at(t), b.at(t)));
  return from_points(a.period_, std::move(pts), 0);
}

Waveform Waveform::ternary(const Waveform& a, const Waveform& b, const Waveform& c,
                           Value (*op)(Value, Value, Value)) {
  assert(a.period_ == b.period_ && b.period_ == c.period_);
  std::vector<Time> times;
  for (const Waveform* w : {&a, &b, &c}) {
    Time acc = 0;
    for (const Segment& s : w->segs_) {
      times.push_back(acc);
      acc += s.width;
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  std::vector<std::pair<Time, Value>> pts;
  pts.reserve(times.size());
  for (Time t : times) pts.emplace_back(t, op(a.at(t), b.at(t), c.at(t)));
  return from_points(a.period_, std::move(pts), 0);
}

Waveform Waveform::map(Value (*op)(Value)) const {
  Waveform w = *this;
  for (Segment& s : w.segs_) s.value = op(s.value);
  w.normalize();
  return w;
}

Waveform Waveform::replaced(Value from, Value to) const {
  Waveform w = *this;
  for (Segment& s : w.segs_) {
    if (s.value == from) s.value = to;
  }
  w.normalize();
  return w;
}

namespace {

// Edge value for a change a->b widened by skew (Fig 2-9): monotone movement
// within {0, R, 1} is a RISE, within {1, F, 0} a FALL, anything else CHANGE;
// UNKNOWN dominates.
Value edge_value(Value a, Value b) {
  if (a == Value::Unknown || b == Value::Unknown) return Value::Unknown;
  auto up = [](Value x) { return x == Value::Zero || x == Value::Rise; };
  auto up_to = [](Value x) { return x == Value::Rise || x == Value::One; };
  auto down = [](Value x) { return x == Value::One || x == Value::Fall; };
  auto down_to = [](Value x) { return x == Value::Fall || x == Value::Zero; };
  if (up(a) && up_to(b) && a != b) return Value::Rise;
  if (down(a) && down_to(b) && a != b) return Value::Fall;
  return Value::Change;
}

}  // namespace

Waveform Waveform::with_skew_incorporated() const {
  if (skew_ == 0) return *this;
  if (segs_.size() == 1) {
    Waveform w = *this;
    w.skew_ = 0;
    return w;
  }
  Time s = std::min(skew_, period_);
  std::vector<Boundary> bounds = boundaries();

  // Sweep event points: every edge-window start and end. The set of covering
  // edge windows is constant between consecutive events.
  std::vector<Time> events;
  for (const Boundary& b : bounds) {
    events.push_back(b.time);
    events.push_back(floor_mod(b.time + s, period_));
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  auto covered_by = [&](Time t, const Boundary& b) {
    // Is t inside the circular window [b.time, b.time + s)?
    Time rel = floor_mod(t - b.time, period_);
    return rel < s;
  };

  std::vector<std::pair<Time, Value>> pts;
  for (Time t : events) {
    bool any = false, all_r = true, all_f = true, any_u = false;
    for (const Boundary& b : bounds) {
      if (!covered_by(t, b)) continue;
      any = true;
      Value e = edge_value(b.from, b.to);
      if (e == Value::Unknown) any_u = true;
      if (e != Value::Rise) all_r = false;
      if (e != Value::Fall) all_f = false;
    }
    Value v;
    if (!any) {
      v = at(t);
    } else if (any_u) {
      v = Value::Unknown;
    } else if (all_r) {
      v = Value::Rise;
    } else if (all_f) {
      v = Value::Fall;
    } else {
      v = Value::Change;
    }
    pts.emplace_back(t, v);
  }
  return from_points(period_, std::move(pts), 0);
}

Waveform Waveform::delayed_rise_fall(Time rise_min, Time rise_max, Time fall_min,
                                     Time fall_max) const {
  // Per-edge delays cannot share the single skew field, so start from the
  // fully folded representation.
  Waveform base = with_skew_incorporated();
  if (base.segs_.size() == 1) return base;

  const Time umin = std::min(rise_min, fall_min);
  const Time umax = std::max(rise_max, fall_max);

  struct Win {
    Time at;       // original boundary time (sorted ascending)
    Time dmin, dmax;
    Value edge;    // value during the uncertainty window
    Value after;   // settled value
  };
  auto make_wins = [&](const std::vector<Boundary>& bs) {
    std::vector<Win> v;
    for (const Boundary& b : bs) {
      Value e = edge_value(b.from, b.to);
      Win w;
      w.at = b.time;
      w.edge = e;
      w.after = b.to;
      switch (e) {
        case Value::Rise: w.dmin = rise_min; w.dmax = rise_max; break;
        case Value::Fall: w.dmin = fall_min; w.dmax = fall_max; break;
        default: w.dmin = umin; w.dmax = umax; break;  // unknown polarity
      }
      v.push_back(w);
    }
    return v;
  };
  std::vector<Win> wins = make_wins(base.boundaries());

  // Tile the output from the windows in boundary order: the uncertainty
  // value over [lo, hi), then the settled value from hi to the next
  // window's start. A settled value deliberately never extends into a later
  // window's span -- time-sorted emission would let an early window's
  // settle override the uncertainty of a later one it overlaps (the gap is
  // then negative, and the cluster sweep below demotes the whole span).
  Waveform out(period_, Value::Stable);
  for (std::size_t k = 0; k < wins.size(); ++k) {
    const Win& w = wins[k];
    Time lo = w.at + w.dmin, hi = w.at + w.dmax;
    if (hi - lo >= period_) return Waveform(period_, w.edge);
    if (hi > lo) out.set(floor_mod(lo, period_), floor_mod(lo, period_) + (hi - lo), w.edge);
    const Win& nx = wins[(k + 1) % wins.size()];
    Time next_lo = nx.at + nx.dmin + (k + 1 == wins.size() ? period_ : 0);
    if (next_lo > hi) {
      out.set(floor_mod(hi, period_), floor_mod(hi, period_) + std::min(next_lo - hi, period_),
              w.after);
    }
  }

  // Boundaries whose shifted uncertainty windows [at+dmin, at+dmax] overlap
  // -- adjacent or not: asymmetric rise/fall delays reorder shifted windows
  // arbitrarily -- admit a delay realization in which a later-scheduled
  // event fires first and the earlier one lands after it, leaving a stale
  // value on the output. The stale value persists until the next event
  // *beyond* the overlapping cluster fires and settles (possibly across the
  // cycle wrap), so the span from the cluster's first possible event through
  // the following window's settle is demoted to CHANGE, or UNKNOWN when any
  // involved value is UNKNOWN.
  //
  // The sweep must run on the *unfolded* boundaries: skew shifts every
  // boundary by the same amount, so window overlap is shift-invariant, while
  // the folded form moves each region's exit to its latest position and can
  // hide an overlap that exists in every concrete shift. The stale span
  // found for shift 0 then exists shifted for every realization, so the
  // paint is widened by the skew.
  Waveform plain = *this;
  plain.skew_ = 0;
  const Time sk = std::max<Time>(0, std::min(skew_, period_));
  std::vector<Win> pwins = make_wins(plain.boundaries());

  struct Paint {
    Time start, end;
    Value v;
  };
  std::vector<Paint> paints;
  // Finds clusters of windows whose *event order* can differ from their
  // boundary order and records demotion paints. Walking windows in boundary
  // order, window k+1's event can fire at or before some event of the
  // running cluster whenever its lo does not clear the cluster's latest
  // possible event (cend) -- this covers plain overlap, touching windows
  // (simultaneous events resolve in an unspecified order), and windows
  // shifted wholly past their successors by asymmetric delays. Inside such
  // a cluster a stale value can end up on the output. With extend_follow,
  // the paint runs through the *following* window's settle, widened by
  // `widen` (the stale value persists until the first event certainly
  // beyond the cluster fires); otherwise it covers the cluster itself (a
  // settled value may not be claimed inside a colliding window's span).
  // Returns the constant the whole waveform degenerates to when a paint
  // wraps the full period, nullopt otherwise.
  auto sweep = [&](const std::vector<Win>& ws, Time widen,
                   bool extend_follow) -> std::optional<Value> {
    struct SWin {
      Time lo, hi;
      Value edge, after;
      bool orig;  // base copy (vs. the +period duplicate)
    };
    std::vector<SWin> sw;
    sw.reserve(ws.size() * 2);
    for (const Win& w : ws) {
      sw.push_back(SWin{w.at + w.dmin, w.at + w.dmax, w.edge, w.after, true});
    }
    // Unroll one extra period so clusters that wrap the cycle boundary are
    // seen contiguously; only clusters containing a base-copy window are
    // emitted (every wrap-spanning cluster has one, and its +period twin
    // has none).
    const std::size_t nw = sw.size();
    for (std::size_t k = 0; k < nw; ++k) {
      sw.push_back(SWin{sw[k].lo + period_, sw[k].hi + period_, sw[k].edge, sw[k].after, false});
    }

    std::size_t i = 0;
    while (i < sw.size()) {
      std::size_t j = i;
      Time clo = sw[i].lo, cend = sw[i].hi;
      bool has_u = sw[i].edge == Value::Unknown || sw[i].after == Value::Unknown;
      bool any_orig = sw[i].orig;
      while (j + 1 < sw.size() && sw[j + 1].lo <= cend) {
        ++j;
        clo = std::min(clo, sw[j].lo);
        cend = std::max(cend, sw[j].hi);
        has_u = has_u || sw[j].edge == Value::Unknown || sw[j].after == Value::Unknown;
        any_orig = any_orig || sw[j].orig;
      }
      if (j > i && any_orig) {
        Time end = cend;
        bool u = has_u;
        if (extend_follow) {
          if (j + 1 == sw.size()) {
            // The cluster swallowed every window including the wrapped
            // copies: no event ever certainly settles.
            return has_u ? Value::Unknown : Value::Change;
          }
          const SWin& follow = sw[j + 1];
          u = u || follow.edge == Value::Unknown || follow.after == Value::Unknown;
          end = follow.hi + widen;
        }
        if (end - clo >= period_) {
          return u ? Value::Unknown : Value::Change;
        }
        paints.push_back(Paint{clo, end, u ? Value::Unknown : Value::Change});
      }
      i = j + 1;
    }
    return std::nullopt;
  };
  if (auto v = sweep(pwins, sk, /*extend_follow=*/true)) return Waveform(period_, *v);
  if (auto v = sweep(wins, 0, /*extend_follow=*/false)) return Waveform(period_, *v);
  // UNKNOWN paints go last so they survive overlapping CHANGE paints.
  for (const Paint& p : paints) {
    if (p.v == Value::Change) {
      out.set(floor_mod(p.start, period_), floor_mod(p.start, period_) + (p.end - p.start), p.v);
    }
  }
  for (const Paint& p : paints) {
    if (p.v == Value::Unknown) {
      out.set(floor_mod(p.start, period_), floor_mod(p.start, period_) + (p.end - p.start), p.v);
    }
  }
  return out;
}

std::string Waveform::to_string(bool with_skew) const {
  std::string out;
  Time acc = 0;
  for (const Segment& s : segs_) {
    if (!out.empty()) out += ' ';
    out += format_ns(acc);
    out += ':';
    out += value_letter(s.value);
    acc += s.width;
  }
  if (with_skew && skew_ != 0) {
    out += " (skew ";
    out += format_ns(skew_);
    out += ")";
  }
  return out;
}

}  // namespace tv
