// Timing-constraint checking (thesis secs. 2.4.4, 2.4.5, 2.5.2, 2.6, 2.9).
//
// After evaluation reaches its fixpoint, every checker primitive and every
// "&A"/"&H" evaluation directive is examined against the computed signal
// values, and violations are reported in the style of Fig 3-11 (constraint,
// the data and clock waveforms as seen by the checker, and the amount by
// which the constraint was missed).
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/snapshot.hpp"

namespace tv {

struct Violation {
  enum class Type {
    Setup,                    // set-up interval before a rising clock edge
    Hold,                     // hold interval after a clock edge
    StableWhileHigh,          // SETUP RISE HOLD FALL: input moved while CK true
    MinPulseHigh,             // high pulse narrower than the minimum
    MinPulseLow,              // low pulse narrower than the minimum
    Hazard,                   // &A/&H: control signal unstable while clock asserted
    StableAssertionViolated,  // generated signal violates its .S assertion
    Unconverged               // evaluation did not reach a fixpoint
  };

  Type type = Type::Setup;
  PrimId prim = kNoPrim;       // the checker / gate reporting the error
  SignalId signal = kNoSignal; // the offending data/control signal
  Time missed_by = 0;          // amount the constraint was missed by
  std::string message;         // fully formatted, Fig 3-11 style
};

std::string violation_type_name(Violation::Type t);

/// Runs all constraint checks against an evaluation state (baseline, or a
/// case snapshot through its view). Includes checker primitives, hazard
/// directives, and stable-assertion verification of generated signals. The
/// state must be a propagated fixpoint.
///
/// The checker polls the run's shared wall-clock deadline
/// (VerifierOptions::deadline, armed by Verifier::verify from
/// --time-limit): once expired, remaining checks are skipped and a TV-W204
/// degradation is appended to `degradations` (when non-null) so a
/// pathological checker pass cannot run unbounded. Skipped checks make the
/// result *partial* -- callers must surface VerifyResult::partial / exit 3.
std::vector<Violation> run_checks(const EvalView& view,
                                  std::vector<Degradation>* degradations = nullptr);
/// Convenience overload over the evaluator's (baseline) state.
std::vector<Violation> run_checks(const Evaluator& ev,
                                  std::vector<Degradation>* degradations = nullptr);

/// Case-scoped checking: re-examines only the primitives and signals inside
/// `cone` (whose input waveforms a case can disturb) and reuses `base` --
/// the baseline run_checks output -- for everything outside, where the
/// waveforms are untouched by construction. Produces the exact violation
/// list a full run_checks(view) would, at cone-proportional cost. Polls the
/// shared deadline like run_checks (in-cone re-checks are skipped once it
/// expires; a TV-W204 degradation is recorded).
std::vector<Violation> run_checks_scoped(const EvalView& view, const Cone& cone,
                                         const std::vector<Violation>& base,
                                         std::vector<Degradation>* degradations = nullptr);

/// Lane-batched checking for a block of case snapshots (the batch engine's
/// companion to run_checks_scoped; docs/batch_eval.md). One walk over the
/// primitives and signals that can contribute findings -- checker
/// primitives, hazard-capable gates, stable-asserted signals, and anything
/// carrying baseline violations -- produces every lane's violation list at
/// once. Per (lane, primitive), the lane-skip rule applies to checking
/// exactly as it does to evaluation: a lane whose input cells (waveform
/// ref, eval string) all still equal the baseline fixpoint provably
/// reproduces the baseline findings, so they are copied instead of
/// recomputed; only genuinely diverged checker-lanes re-run. Every lane's
/// list is byte-identical to what run_checks_scoped(view_l, cone_l, base)
/// would return.
///
/// Preconditions (guaranteed by the batch engine's eligibility gate): all
/// snapshots share one netlist and interned baseline (`base_refs`), and no
/// wall-clock deadline is armed (deadline skips are order-dependent, which
/// lane-batching cannot mirror).
std::vector<std::vector<Violation>> run_checks_batch(
    const VerifierOptions& opts, const std::vector<const EvalSnapshot*>& snaps,
    const std::vector<const Cone*>& cones, const std::vector<char>& lane_converged,
    const std::vector<WaveformRef>& base_refs, const std::vector<Violation>& base);

/// Deterministic report order: sorts by (missed-by time, signal, violation
/// kind, primitive, message) so a case's report is byte-stable regardless
/// of the order its checks were evaluated in.
void sort_violations(std::vector<Violation>& violations);

/// Margin on one checker: how much earlier the data settles than required
/// (set-up) and how much longer it stays steady than required (hold).
/// Negative slack = violation. Supports the thesis' sec. 1.1 use case of
/// estimating the achievable cycle time while the design is still growing.
struct SlackEntry {
  PrimId checker = kNoPrim;
  SignalId data = kNoSignal;
  bool has_setup = false;
  bool has_hold = false;
  Time setup_slack = 0;  // min over all clock edges
  Time hold_slack = 0;
};

/// Computes set-up/hold slack for every SETUP HOLD CHK and SETUP RISE HOLD
/// FALL CHK primitive.
std::vector<SlackEntry> compute_slacks(const Evaluator& ev);

/// Renders the worst-N slack table and the cycle-time estimate: the clock
/// period could shrink by the smallest positive set-up slack (or must grow
/// by the worst violation).
std::string slack_report(const Netlist& nl, std::vector<SlackEntry> slacks, Time period,
                         std::size_t worst_n = 20);

}  // namespace tv
