// Evaluation semantics of the built-in primitive models
// (thesis secs. 2.4.2-2.4.5, 2.6, 2.8).
//
// Evaluating a primitive takes the *prepared* input waveforms -- complement
// applied, interconnection delay applied, evaluation directive resolved --
// and produces the output waveform plus the directive string to propagate.
// The skew discipline of sec. 2.8 is enforced here: a signal passing through
// a single delaying element keeps its skew in the separate field; as soon as
// two or more changing signals are combined, their skews are folded into the
// value lists (RISE/FALL/CHANGE) before combination.
#pragma once

#include <string>
#include <vector>

#include "core/netlist.hpp"
#include "core/waveform.hpp"

namespace tv {

/// One input after preparation by the evaluator.
struct PreparedInput {
  Waveform wave;            // complemented + wire-delayed signal value
  char directive = 'E';     // effective directive for this gate level
  std::string tail;         // rest of the directive string (next levels)
  bool has_directive_string = false;  // had a non-empty evaluation string
};

struct PrimEvalResult {
  Waveform wave;
  std::string eval_str;  // directive string propagated to the output signal
};

/// Evaluates a non-checker primitive. `ins` must match the pin order
/// documented on PrimKind. `period` is the circuit clock period.
PrimEvalResult evaluate_primitive(const Primitive& p, const std::vector<PreparedInput>& ins,
                                  Time period);

/// A window during which a clock may be performing a (rising or falling)
/// transition: the transition happens somewhere in [start, end]; before
/// `start` the clock surely holds the old level, at/after `end` the new one.
/// A clean instantaneous edge yields start == end. Windows may wrap the
/// cycle boundary, in which case `end` is numerically smaller than `start`;
/// widths must be computed circularly (floor_mod(end - start, period)).
struct EdgeWindow {
  Time start = 0;
  Time end = 0;
  bool operator==(const EdgeWindow&) const = default;
};

/// Extracts the possible rising (or falling) edge windows from a clock
/// waveform. The waveform must have its skew incorporated first. CHANGE
/// regions may hide edges of either polarity and qualify for both.
std::vector<EdgeWindow> edge_windows(const Waveform& w, bool rising);

/// Samples a data waveform across an edge window: returns Value::Zero/One
/// when the data holds that definite value across the whole window,
/// Value::Unknown if UNKNOWN is seen, Value::Stable otherwise (the register
/// model's "unless the DATA input is a true or false during the rising edge
/// ... set to STABLE").
Value sample_over(const Waveform& data, const EdgeWindow& win);

}  // namespace tv
