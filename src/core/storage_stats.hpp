// Storage accounting in the thesis' own record model (Table 3-3).
//
// The S-1 Mark I PASCAL compiler stored all fields as 4 bytes (chars and
// booleans 1 byte) and packed nothing; the thesis reports the resulting
// byte counts per data-structure category. We reproduce the same ledger for
// any netlist so Table 3-3's breakdown (circuit description 37.8 %, signal
// values, signal names 11.6 %, string space 10.6 %, call list array 6.9 %,
// miscellaneous 0.7 %) can be regenerated on a synthetic design of the same
// shape.
#pragma once

#include <cstddef>

#include "core/netlist.hpp"
#include "core/wave_table.hpp"
#include "util/stats.hpp"

namespace tv {

struct StorageBreakdown {
  std::size_t circuit_description = 0;  // primitive records + parameter lists
  std::size_t signal_values = 0;        // VALUE BASE + VALUE records
  std::size_t signal_names = 0;         // name records, def/use pointers
  std::size_t string_space = 0;         // text of all signal/primitive names
  std::size_t call_list = 0;            // CALL LIST ARRAY entries
  std::size_t misc = 0;                 // minor bookkeeping structures

  std::size_t total() const {
    return circuit_description + signal_values + signal_names + string_space + call_list +
           misc;
  }
  StorageLedger to_ledger() const;

  /// Mean VALUE records per signal (the thesis reports 2.97).
  double mean_value_records = 0;
  /// Mean bytes per signal value list (the thesis reports ~56).
  double mean_value_bytes = 0;
  /// Mean circuit-description bytes per primitive (the thesis reports ~260).
  double mean_prim_bytes = 0;

  /// True unique-waveform accounting (wave_table.hpp): how many distinct
  /// canonical waveforms the signal population actually holds, and what the
  /// Table 3-3 VALUE storage collapses to when every signal stores a 4-byte
  /// ref into the shared arena instead of an owned list. The thesis' sharing
  /// claim (sec. 2.8) is unique_waveforms << num_signals.
  std::size_t unique_waveforms = 0;
  std::size_t unique_value_bytes = 0;    // arena VALUE records, deduplicated
  std::size_t interned_value_bytes = 0;  // unique_value_bytes + 4 B ref/signal
  double signals_per_unique_waveform = 0;
};

/// Computes the Table 3-3 ledger for a netlist in its current evaluation
/// state (signal value lists reflect the last propagation). Unique-waveform
/// figures are computed with a throwaway interning pass, so they are
/// reported whether or not the run itself interned.
StorageBreakdown compute_storage(const Netlist& nl);

/// Renders the interning/memo counters (unique waveforms, intern lookups,
/// memo hit/miss + hit rate) as report lines matching the ledger style.
std::string intern_stats_report(const InternStats& st);

}  // namespace tv
