#include "core/snapshot.hpp"

#include <deque>
#include <stdexcept>

namespace tv {

EvalSnapshot::EvalSnapshot(const Netlist& nl, std::shared_ptr<const Cone> cone)
    : nl_(nl), cone_(std::move(cone)) {
  waves_.resize(cone_->signals.size());
  eval_strs_.resize(cone_->signals.size());
  written_.assign(cone_->signals.size(), 0);
}

void EvalSnapshot::set(SignalId id, Waveform w, std::string eval_str) {
  std::int32_t slot = cone_->signal_slot[id];
  if (slot < 0) throw std::logic_error("EvalSnapshot::set outside the cone");
  waves_[slot] = std::move(w);
  eval_strs_[slot] = std::move(eval_str);
  written_[slot] = 1;
}

namespace {

// The snapshot-local analogue of Evaluator::run_worklist: same seeding and
// event-driven propagation, state held in dense cone-slot arrays.
class CaseRunner {
 public:
  CaseRunner(EvalSnapshot& snap, const VerifierOptions& opts)
      : snap_(snap),
        nl_(snap.netlist()),
        cone_(snap.cone()),
        opts_(opts),
        in_worklist_(cone_.prims.size(), 0),
        eval_count_(cone_.prims.size(), 0),
        case_map_(cone_.signals.size(), -1) {}

  CaseRunStats run(const CaseSpec& c) {
    for (const auto& [sig, val] : c.pins) {
      if (val != Value::Zero && val != Value::One) {
        throw std::invalid_argument("case values must be 0 or 1");
      }
      std::int32_t slot = cone_.signal_slot[sig];
      if (slot < 0) throw std::logic_error("case pins a signal outside the snapshot cone");
      case_map_[slot] = static_cast<std::int8_t>(val);
    }
    for (const auto& [sig, val] : c.pins) {
      (void)val;
      const Signal& s = nl_.signal(sig);
      const Waveform& before = snap_.wave(sig);
      if (s.driver != kNoPrim) {
        enqueue(s.driver);  // driver recomputes; assign() applies the mapping
      } else {
        Waveform seeded = apply_case_map(sig, seed_waveform(s, opts_));
        if (!(seeded == before)) {
          snap_.set(sig, std::move(seeded), std::string());
          ++stats_.events;
          enqueue_fanout(sig);
        }
        continue;
      }
      if (!(snap_.wave(sig) == before)) {
        ++stats_.events;
        enqueue_fanout(sig);
      }
    }
    run_worklist();
    return stats_;
  }

 private:
  Waveform apply_case_map(SignalId id, Waveform w) const {
    std::int32_t slot = cone_.signal_slot[id];
    if (slot < 0 || case_map_[slot] < 0) return w;
    return w.replaced(Value::Stable, static_cast<Value>(case_map_[slot]));
  }

  void enqueue(PrimId pid) {
    std::int32_t slot = cone_.prim_slot[pid];
    if (slot < 0 || in_worklist_[slot]) return;
    in_worklist_[slot] = 1;
    worklist_.push_back(pid);
  }

  void enqueue_fanout(SignalId id) {
    for (PrimId pid : nl_.signal(id).fanout) {
      if (!prim_is_checker(nl_.prim(pid).kind)) enqueue(pid);
    }
  }

  void run_worklist() {
    while (!worklist_.empty()) {
      PrimId pid = worklist_.front();
      worklist_.pop_front();
      in_worklist_[cone_.prim_slot[pid]] = 0;
      const Primitive& p = nl_.prim(pid);

      if (++eval_count_[cone_.prim_slot[pid]] > opts_.max_evals_per_prim) {
        stats_.converged = false;
        continue;
      }
      ++stats_.evals;

      std::vector<PreparedInput> ins;
      ins.reserve(p.inputs.size());
      for (const Pin& pin : p.inputs) {
        ins.push_back(prepare_input(pin, nl_.signal(pin.sig), snap_.wave(pin.sig),
                                    snap_.eval_str(pin.sig), opts_));
      }
      PrimEvalResult r = evaluate_primitive(p, ins, opts_.period);
      Waveform w = apply_case_map(p.output, std::move(r.wave));
      if (!(w == snap_.wave(p.output)) || r.eval_str != snap_.eval_str(p.output)) {
        snap_.set(p.output, std::move(w), std::move(r.eval_str));
        ++stats_.events;
        enqueue_fanout(p.output);
      }
    }
  }

  EvalSnapshot& snap_;
  const Netlist& nl_;
  const Cone& cone_;
  const VerifierOptions& opts_;
  std::deque<PrimId> worklist_;
  std::vector<char> in_worklist_;           // per-snapshot, cone-slot indexed
  std::vector<std::size_t> eval_count_;     // per-snapshot oscillation guard
  std::vector<std::int8_t> case_map_;       // cone-slot indexed, -1 unmapped
  CaseRunStats stats_;
};

}  // namespace

CaseRunStats run_case_on_snapshot(EvalSnapshot& snap, const CaseSpec& c,
                                  const VerifierOptions& opts) {
  return CaseRunner(snap, opts).run(c);
}

}  // namespace tv
