#include "core/snapshot.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>

#include "util/fault.hpp"

namespace tv {

EvalSnapshot::EvalSnapshot(const Netlist& nl, std::shared_ptr<const Cone> cone)
    : EvalSnapshot(nl, std::move(cone), nullptr, nullptr) {}

EvalSnapshot::EvalSnapshot(const Netlist& nl, std::shared_ptr<const Cone> cone,
                           InternContext* ctx,
                           const std::vector<WaveformRef>* base_refs)
    : nl_(nl), cone_(std::move(cone)), intern_(ctx), base_refs_(base_refs) {
  waves_.resize(cone_->signals.size());
  eval_strs_.resize(cone_->signals.size());
  refs_.assign(cone_->signals.size(), kNoWaveform);
  written_.assign(cone_->signals.size(), 0);
}

void EvalSnapshot::set(SignalId id, Waveform w, std::string eval_str) {
  w.canonicalize();
  if (intern_) {
    WaveformRef ref = intern_->table.intern(w);
    if (ref != kNoWaveform) {
      set_ref(id, ref, std::move(eval_str));
      return;
    }
    // Table full: keep the uninterned copy in the overlay slot; wave_ref()
    // then reports kNoWaveform and the memo path turns itself off.
  }
  std::int32_t slot = cone_->signal_slot[id];
  if (slot < 0) throw std::logic_error("EvalSnapshot::set outside the cone");
  waves_[slot] = std::move(w);
  eval_strs_[slot] = std::move(eval_str);
  refs_[slot] = kNoWaveform;
  written_[slot] = 1;
}

std::size_t EvalSnapshot::disturbed_signals() const {
  std::size_t n = 0;
  for (std::size_t slot = 0; slot < cone_->signals.size(); ++slot) {
    if (!written_[slot]) continue;  // unwritten slots hold the baseline
    SignalId id = cone_->signals[slot];
    const Signal& s = nl_.signal(id);
    if (eval_strs_[slot] != s.eval_str) {
      ++n;
      continue;
    }
    WaveformRef base =
        base_refs_ && id < base_refs_->size() ? (*base_refs_)[id] : kNoWaveform;
    if (refs_[slot] != kNoWaveform && base != kNoWaveform) {
      if (refs_[slot] != base) ++n;  // interned: divergence is a ref compare
    } else if (!waves_[slot].equivalent(s.wave)) {
      ++n;
    }
  }
  return n;
}

void EvalSnapshot::set_ref(SignalId id, WaveformRef ref, std::string eval_str) {
  std::int32_t slot = cone_->signal_slot[id];
  if (slot < 0) throw std::logic_error("EvalSnapshot::set outside the cone");
  waves_[slot] = intern_->table.get(ref);
  eval_strs_[slot] = std::move(eval_str);
  refs_[slot] = ref;
  written_[slot] = 1;
}

namespace {

// The snapshot-local analogue of Evaluator::run_worklist: same seeding and
// event-driven propagation, state held in dense cone-slot arrays.
class CaseRunner {
 public:
  CaseRunner(EvalSnapshot& snap, const VerifierOptions& opts)
      : snap_(snap),
        nl_(snap.netlist()),
        cone_(snap.cone()),
        opts_(opts),
        in_worklist_(cone_.prims.size(), 0),
        eval_count_(cone_.prims.size(), 0),
        case_map_(cone_.signals.size(), -1),
        seg_degraded_(cone_.signals.size(), 0) {}

  CaseRunStats run(const CaseSpec& c) {
    fault::check("snapshot.case");
    for (const auto& [sig, val] : c.pins) {
      if (val != Value::Zero && val != Value::One) {
        throw std::invalid_argument("case values must be 0 or 1");
      }
      std::int32_t slot = cone_.signal_slot[sig];
      if (slot < 0) throw std::logic_error("case pins a signal outside the snapshot cone");
      case_map_[slot] = static_cast<std::int8_t>(val);
    }
    for (const auto& [sig, val] : c.pins) {
      (void)val;
      const Signal& s = nl_.signal(sig);
      const Waveform& before = snap_.wave(sig);
      if (s.driver != kNoPrim) {
        enqueue(s.driver);  // driver recomputes; assign() applies the mapping
      } else {
        Waveform seeded = apply_case_map(sig, seed_waveform(s, opts_));
        seeded.canonicalize();
        if (!seeded.equivalent(before)) {
          snap_.set(sig, std::move(seeded), std::string());
          ++stats_.events;
          enqueue_fanout(sig);
        }
        continue;
      }
      if (!(snap_.wave(sig) == before)) {
        ++stats_.events;
        enqueue_fanout(sig);
      }
    }
    run_worklist();
    return stats_;
  }

 private:
  void record_degradation(const char* code, std::string message) {
    stats_.degraded = true;
    stats_.degradations.push_back(Degradation{code, std::move(message)});
  }

  /// Segment cap (VerifierOptions::max_segments_per_signal), snapshot-local.
  void cap_segments(SignalId id, Waveform& w) {
    if (opts_.max_segments_per_signal == 0) return;
    if (w.segments().size() <= opts_.max_segments_per_signal) return;
    std::int32_t slot = cone_.signal_slot[id];
    if (slot >= 0 && !seg_degraded_[slot]) {
      seg_degraded_[slot] = 1;
      record_degradation(diag::kWarnSegmentCap,
                         "signal \"" + nl_.signal(id).full_name + "\" exceeded " +
                             std::to_string(opts_.max_segments_per_signal) +
                             " waveform segments; degraded to UNKNOWN");
    }
    w = Waveform(opts_.period, Value::Unknown);
    w.canonicalize();
  }

  /// Applies the case map, canonicalizes, and writes the output if it
  /// changed -- the change test is a ref compare when interning is on and
  /// the equivalent() deep compare otherwise (the same predicate).
  void commit(SignalId out, Waveform w, std::string eval_str) {
    w = apply_case_map(out, std::move(w));
    w.canonicalize();
    cap_segments(out, w);
    InternContext* ctx = snap_.intern_context();
    WaveformRef ref = ctx ? ctx->table.intern(w) : kNoWaveform;
    if (ctx && ref == kNoWaveform && !table_full_reported_) {
      table_full_reported_ = true;
      record_degradation(diag::kWarnTableFull,
                         "waveform table full; interning disabled for signal \"" +
                             nl_.signal(out).full_name + "\" and later waveforms");
    }
    if (ctx && ref != kNoWaveform) {
      if (ref != snap_.wave_ref(out) || eval_str != snap_.eval_str(out)) {
        snap_.set_ref(out, ref, std::move(eval_str));
        ++stats_.events;
        enqueue_fanout(out);
      }
    } else if (!w.equivalent(snap_.wave(out)) || eval_str != snap_.eval_str(out)) {
      snap_.set(out, std::move(w), std::move(eval_str));
      ++stats_.events;
      enqueue_fanout(out);
    }
  }

  Waveform apply_case_map(SignalId id, Waveform w) const {
    std::int32_t slot = cone_.signal_slot[id];
    if (slot < 0 || case_map_[slot] < 0) return w;
    return w.replaced(Value::Stable, static_cast<Value>(case_map_[slot]));
  }

  void enqueue(PrimId pid) {
    std::int32_t slot = cone_.prim_slot[pid];
    if (slot < 0 || in_worklist_[slot]) return;
    in_worklist_[slot] = 1;
    worklist_.push_back(pid);
  }

  void enqueue_fanout(SignalId id) {
    for (PrimId pid : nl_.signal(id).fanout) {
      if (!prim_is_checker(nl_.prim(pid).kind)) enqueue(pid);
    }
  }

  /// Time-limit trip: everything still reachable from the queued cone work
  /// degrades to UNKNOWN (conservative), then the run completes.
  void degrade_remaining() {
    Waveform unknown(opts_.period, Value::Unknown);
    unknown.canonicalize();
    std::vector<char> visited(cone_.prims.size(), 0);
    std::deque<PrimId> queue;
    for (PrimId pid : worklist_) {
      std::int32_t slot = cone_.prim_slot[pid];
      if (slot >= 0 && !visited[slot]) {
        visited[slot] = 1;
        queue.push_back(pid);
      }
    }
    worklist_.clear();
    std::fill(in_worklist_.begin(), in_worklist_.end(), 0);
    std::size_t degraded_signals = 0;
    while (!queue.empty()) {
      PrimId pid = queue.front();
      queue.pop_front();
      const Primitive& p = nl_.prim(pid);
      if (prim_is_checker(p.kind) || p.output == kNoSignal) continue;
      if (!snap_.wave(p.output).equivalent(unknown)) {
        snap_.set(p.output, unknown, std::string(snap_.eval_str(p.output)));
        ++degraded_signals;
      }
      for (PrimId consumer : nl_.signal(p.output).fanout) {
        std::int32_t slot = cone_.prim_slot[consumer];
        if (slot >= 0 && !visited[slot]) {
          visited[slot] = 1;
          queue.push_back(consumer);
        }
      }
    }
    record_degradation(diag::kWarnTimeLimit,
                       "time limit of " + std::to_string(opts_.time_limit_seconds) +
                           "s exceeded; " + std::to_string(degraded_signals) +
                           " signal(s) degraded to UNKNOWN");
  }

  void run_worklist() {
    // The verify()-wide deadline when armed (cases share one budget with
    // the base run and the checker); a standalone snapshot run arms its own.
    Deadline deadline = opts_.deadline;
    if (!deadline.armed() && opts_.time_limit_seconds > 0) {
      deadline = Deadline::after_seconds(opts_.time_limit_seconds);
    }
    const bool timed = deadline.armed();
    while (!worklist_.empty()) {
      if (timed && deadline.expired()) {
        degrade_remaining();
        break;
      }
      PrimId pid = worklist_.front();
      worklist_.pop_front();
      in_worklist_[cone_.prim_slot[pid]] = 0;
      const Primitive& p = nl_.prim(pid);

      if (++eval_count_[cone_.prim_slot[pid]] > opts_.max_evals_per_prim) {
        stats_.converged = false;
        continue;
      }
      ++stats_.evals;

      InternContext* ctx = snap_.intern_context();
      MemoKey key;
      bool keyed =
          ctx && build_memo_key(
                     p, nl_, opts_,
                     [this](SignalId id) { return snap_.wave_ref(id); },
                     [this](SignalId id) -> const std::string& {
                       return snap_.eval_str(id);
                     },
                     key);
      if (keyed) {
        if (std::optional<MemoResult> hit = ctx->memo.lookup(key)) {
          commit(p.output, ctx->table.get(hit->wave), hit->eval_str);
          continue;
        }
      }
      std::vector<PreparedInput> ins;
      ins.reserve(p.inputs.size());
      for (const Pin& pin : p.inputs) {
        ins.push_back(prepare_input(pin, nl_.signal(pin.sig), snap_.wave(pin.sig),
                                    snap_.eval_str(pin.sig), opts_));
      }
      PrimEvalResult r = evaluate_primitive(p, ins, opts_.period);
      if (keyed) {
        WaveformRef out = ctx->table.intern(r.wave);
        if (out != kNoWaveform) ctx->memo.store(key, MemoResult{out, r.eval_str});
      }
      commit(p.output, std::move(r.wave), std::move(r.eval_str));
    }
  }

  EvalSnapshot& snap_;
  const Netlist& nl_;
  const Cone& cone_;
  const VerifierOptions& opts_;
  std::deque<PrimId> worklist_;
  std::vector<char> in_worklist_;           // per-snapshot, cone-slot indexed
  std::vector<std::size_t> eval_count_;     // per-snapshot oscillation guard
  std::vector<std::int8_t> case_map_;       // cone-slot indexed, -1 unmapped
  std::vector<char> seg_degraded_;          // cone-slot: segment cap fired
  bool table_full_reported_ = false;
  CaseRunStats stats_;
};

}  // namespace

CaseRunStats run_case_on_snapshot(EvalSnapshot& snap, const CaseSpec& c,
                                  const VerifierOptions& opts) {
  return CaseRunner(snap, opts).run(c);
}

}  // namespace tv
