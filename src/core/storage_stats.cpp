#include "core/storage_stats.hpp"

#include <sstream>

namespace tv {

StorageLedger StorageBreakdown::to_ledger() const {
  StorageLedger ledger;
  ledger.add("CIRCUIT DESCRIPTION", circuit_description);
  ledger.add("SIGNAL VALUES", signal_values);
  ledger.add("SIGNAL NAMES", signal_names);
  ledger.add("STRING SPACE", string_space);
  ledger.add("CALL LIST ARRAY", call_list);
  ledger.add("MISCELLANEOUS", misc);
  return ledger;
}

StorageBreakdown compute_storage(const Netlist& nl) {
  StorageBreakdown b;

  // Circuit description: one record per primitive characterizing its kind,
  // delay/constraint parameters and instance bookkeeping (26 unpacked
  // 4-byte fields), plus a parameter entry per input pin (signal pointer,
  // complement flag word, directive pointer, next link, pin role -- 5 fields
  // + a back pointer structure at the signal: ~40 bytes). This reproduces
  // the thesis' ~260 bytes per primitive at its ~4 pins/primitive shape.
  std::size_t total_vrecs = 0;
  WaveformTable uniq;  // throwaway interning pass for the sharing figures
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    const Primitive& p = nl.prim(pid);
    b.circuit_description += 26 * 4 + 40 * p.inputs.size();
    b.string_space += p.name.size() + 1;
  }

  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    // Signal values: VALUE BASE (20 B: free-storage link, skew, eval-string
    // pointer, value pointer, width field) + 12 B per VALUE record.
    b.signal_values += s.wave.paper_storage_bytes();
    total_vrecs += s.wave.value_record_count();
    uniq.intern(s.wave);
    // Signal names: the name record points at the value definition for each
    // bit of the vector and records defining/using primitives.
    b.signal_names += 24 + 4 * static_cast<std::size_t>(s.width) + 8 * s.fanout.size();
    b.string_space += s.full_name.size() + 1;
    // Call list array: which primitives must be reevaluated when the signal
    // is updated: one 4-byte entry per fanout edge plus a 4-byte header.
    b.call_list += 4 + 4 * s.fanout.size();
  }

  // Miscellaneous minor structures (case tables, worklist, counters): a
  // small fixed pool plus a few words per primitive.
  b.misc = 2048 + 2 * nl.num_prims();

  if (nl.num_signals() > 0) {
    b.mean_value_records = static_cast<double>(total_vrecs) / nl.num_signals();
    b.mean_value_bytes = static_cast<double>(b.signal_values) / nl.num_signals();
  }
  if (nl.num_prims() > 0) {
    b.mean_prim_bytes = static_cast<double>(b.circuit_description) / nl.num_prims();
  }

  b.unique_waveforms = uniq.size();
  b.unique_value_bytes = uniq.unique_paper_bytes();
  b.interned_value_bytes = b.unique_value_bytes + 4 * nl.num_signals();
  if (b.unique_waveforms > 0) {
    b.signals_per_unique_waveform =
        static_cast<double>(nl.num_signals()) / b.unique_waveforms;
  }
  return b;
}

std::string intern_stats_report(const InternStats& st) {
  std::ostringstream os;
  os << "UNIQUE WAVEFORMS    " << st.unique_waveforms << " (" << st.intern_lookups
     << " intern lookups, " << st.arena_paper_bytes << " arena bytes)\n";
  os << "EVAL MEMO           " << st.memo_hits << " hits / " << st.memo_misses
     << " misses (" << st.memo_entries << " entries, hit rate ";
  os.precision(1);
  os << std::fixed << 100.0 * st.memo_hit_rate() << "%)\n";
  return os.str();
}

}  // namespace tv
