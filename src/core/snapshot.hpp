// Cone-scoped copy-on-write case evaluation (thesis secs. 2.7, 2.9).
//
// Verifier::verify used to run every case against the one shared netlist,
// mutating Signal::wave in place and undoing the damage afterwards. The
// thesis' own observation -- a case only disturbs the fanout cone of its
// pinned signals -- makes cases independent: an EvalSnapshot overlays just
// the cone's waveforms over the baseline fixpoint, reads fall through to the
// shared (immutable) baseline, and writes copy-on-write into dense
// cone-local arrays. Nothing shared is ever touched, so cases evaluate
// concurrently and "clear case" is simply dropping the snapshot.
//
// The EvalView is the read side: checkers and reports address waveforms by
// SignalId through the view, which resolves to the overlay inside the cone
// and to the baseline everywhere else.
#pragma once

#include <memory>

#include "core/cone.hpp"
#include "core/evaluator.hpp"

namespace tv {

/// Per-case overlay over the baseline fixpoint, scoped to one cone.
/// The netlist holds the baseline waves and must not be mutated while any
/// snapshot on it is alive (reads are lock-free const access).
class EvalSnapshot {
 public:
  EvalSnapshot(const Netlist& nl, std::shared_ptr<const Cone> cone);
  /// Interning-aware snapshot: `ctx` is the evaluator's shared arena + memo
  /// (shard-locked, so concurrent case workers may intern through it) and
  /// `base_refs` the baseline's per-signal refs. Interned storage is never
  /// mutated -- the snapshot only writes its own cone-local slots -- so
  /// copy-on-write semantics are preserved. Both pointers must outlive the
  /// snapshot; pass nullptr to run without interning.
  EvalSnapshot(const Netlist& nl, std::shared_ptr<const Cone> cone,
               InternContext* ctx, const std::vector<WaveformRef>* base_refs);

  const Netlist& netlist() const { return nl_; }
  const Cone& cone() const { return *cone_; }
  InternContext* intern_context() const { return intern_; }

  /// Overlay value inside the cone once written, baseline otherwise.
  const Waveform& wave(SignalId id) const {
    std::int32_t slot = cone_->signal_slot[id];
    if (slot >= 0 && written_[slot]) return waves_[slot];
    return nl_.signal(id).wave;
  }
  const std::string& eval_str(SignalId id) const {
    std::int32_t slot = cone_->signal_slot[id];
    if (slot >= 0 && written_[slot]) return eval_strs_[slot];
    return nl_.signal(id).eval_str;
  }

  /// Interned ref of the signal's current waveform: the overlay's ref once
  /// written, else the baseline ref. kNoWaveform when interning is off.
  WaveformRef wave_ref(SignalId id) const {
    std::int32_t slot = cone_->signal_slot[id];
    if (slot >= 0 && written_[slot]) return refs_[slot];
    if (base_refs_ && id < base_refs_->size()) return (*base_refs_)[id];
    return kNoWaveform;
  }

  /// Writes a cone signal's overlay slot (copy-on-write: the first write
  /// materializes the slot; the baseline is never modified). The signal
  /// must be inside the cone.
  void set(SignalId id, Waveform w, std::string eval_str);
  /// Interning write path: stores the ref and materializes the table's
  /// canonical copy into the overlay slot.
  void set_ref(SignalId id, WaveformRef ref, std::string eval_str);

  /// Number of cone signals whose final (waveform, evaluation string)
  /// differ from the baseline fixpoint -- the signals this case disturbs.
  /// A pure function of the final state, so the per-case worklist and the
  /// batch sweep (core/batch_eval.hpp) report identical counts; this is
  /// what VerifyResult::CaseResult::events carries.
  std::size_t disturbed_signals() const;

 private:
  const Netlist& nl_;
  std::shared_ptr<const Cone> cone_;
  InternContext* intern_ = nullptr;               // shared, shard-locked
  const std::vector<WaveformRef>* base_refs_ = nullptr;
  std::vector<Waveform> waves_;          // cone-local, slot-indexed
  std::vector<std::string> eval_strs_;   // cone-local, slot-indexed
  std::vector<WaveformRef> refs_;        // cone-local interned refs
  std::vector<char> written_;            // copy-on-write marks
};

/// Read-only view of an evaluation state for checking and reporting: the
/// baseline fixpoint, optionally overlaid by one case snapshot.
class EvalView {
 public:
  /// Baseline view (no case active).
  EvalView(const Netlist& nl, const VerifierOptions& opts, bool converged)
      : nl_(nl), opts_(opts), converged_(converged) {}
  /// Case view: reads resolve through the snapshot overlay.
  EvalView(const EvalSnapshot& snap, const VerifierOptions& opts, bool converged)
      : nl_(snap.netlist()), opts_(opts), converged_(converged), snap_(&snap) {}

  const Netlist& netlist() const { return nl_; }
  const VerifierOptions& options() const { return opts_; }
  bool converged() const { return converged_; }

  const Waveform& wave(SignalId id) const {
    return snap_ ? snap_->wave(id) : nl_.signal(id).wave;
  }
  const std::string& eval_str(SignalId id) const {
    return snap_ ? snap_->eval_str(id) : nl_.signal(id).eval_str;
  }
  PreparedInput prepare(const Pin& pin) const {
    return prepare_input(pin, nl_.signal(pin.sig), wave(pin.sig), eval_str(pin.sig), opts_);
  }

 private:
  const Netlist& nl_;
  const VerifierOptions& opts_;
  bool converged_ = true;
  const EvalSnapshot* snap_ = nullptr;
};

/// Cost and convergence of one snapshot case run.
struct CaseRunStats {
  std::size_t events = 0;  // incremental cost of this case (sec. 2.7)
  std::size_t evals = 0;
  bool converged = true;
  /// Resource guards (segment cap, time limit, full table) degraded part of
  /// this case's cone to UNKNOWN; see VerifierOptions. Conservative.
  bool degraded = false;
  std::vector<Degradation> degradations;
};

/// Evaluates one case inside the snapshot: reseeds the pinned signals with
/// their STABLE values mapped, then runs the event-driven worklist to the
/// fixpoint entirely within the cone. Worklist membership and oscillation
/// counts are snapshot-local (dense cone slots), so concurrent case runs
/// share nothing but the immutable baseline. Pin values must be 0/1.
CaseRunStats run_case_on_snapshot(EvalSnapshot& snap, const CaseSpec& c,
                                  const VerifierOptions& opts);

}  // namespace tv
