#include "core/batch_eval.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/scc.hpp"
#include "diag/diagnostic.hpp"
#include "util/fault.hpp"

namespace tv {

BatchSchedule build_batch_schedule(const Netlist& nl) {
  // Vertices are primitives; an edge P -> Q for every consumer Q on P's
  // output call list. Checkers drive nothing and are never evaluated, so
  // they contribute no edges and their singleton components are dropped.
  std::vector<std::vector<std::uint32_t>> adj(nl.num_prims());
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    const Primitive& p = nl.prim(pid);
    if (prim_is_checker(p.kind) || p.output == kNoSignal) continue;
    for (PrimId consumer : nl.signal(p.output).fanout) {
      if (!prim_is_checker(nl.prim(consumer).kind)) adj[pid].push_back(consumer);
    }
  }
  std::vector<std::vector<std::uint32_t>> comps = strongly_connected_components(adj);
  BatchSchedule sched;
  sched.components.reserve(comps.size());
  // Tarjan emits reverse topological order; the sweep wants sources first.
  for (auto it = comps.rbegin(); it != comps.rend(); ++it) {
    if (it->size() == 1) {
      const Primitive& p = nl.prim((*it)[0]);
      if (prim_is_checker(p.kind) || p.output == kNoSignal) continue;
    }
    BatchSchedule::Component comp;
    comp.prims.assign(it->begin(), it->end());
    std::sort(comp.prims.begin(), comp.prims.end());
    comp.cyclic = comp.prims.size() > 1;
    if (!comp.cyclic) {
      for (std::uint32_t succ : adj[comp.prims[0]]) {
        if (succ == comp.prims[0]) {
          comp.cyclic = true;
          break;
        }
      }
    }
    sched.components.push_back(std::move(comp));
  }
  return sched;
}

namespace {

/// One block's lockstep sweep. Scratch arrays are members so the per-prim
/// inner loops never allocate.
class BlockSweep {
 public:
  BlockSweep(const Netlist& nl, const VerifierOptions& opts, const BatchSchedule& sched,
             InternContext& ctx, const std::vector<WaveformRef>& base_refs,
             const std::vector<CaseSpec>& cases, std::size_t first, std::size_t count,
             const std::vector<std::shared_ptr<const Cone>>& cones,
             std::vector<EvalSnapshot>& snaps)
      : nl_(nl),
        opts_(opts),
        sched_(sched),
        ctx_(ctx),
        base_refs_(base_refs),
        cases_(cases),
        first_(first),
        lanes_(count),
        cones_(cones),
        snaps_(snaps) {}

  BatchBlockResult run() {
    res_.lanes.resize(lanes_);
    // Fault-site parity with the per-case runner: one injectable check per
    // case instance, so chaos runs exercise both engines alike.
    for (std::size_t l = 0; l < lanes_; ++l) fault::check("snapshot.case");
    // max_evals_per_prim == 0 makes the per-case guard trip before any
    // evaluation -- a degenerate configuration the sweep can't mirror, so
    // defer it to the reference path.
    if (opts_.max_evals_per_prim == 0) return std::move(res_);
    if (!build_rows()) return std::move(res_);
    if (!seed_lanes()) return std::move(res_);
    if (!sweep()) return std::move(res_);
    materialize();
    res_.completed = true;
    return std::move(res_);
  }

 private:
  /// Union of the block's cones as dense rows; arena filled with baseline.
  bool build_rows() {
    row_of_.assign(nl_.num_signals(), -1);
    prim_in_.assign(nl_.num_prims(), 0);
    for (std::size_t l = 0; l < lanes_; ++l) {
      const Cone& cone = *cones_[first_ + l];
      for (SignalId s : cone.signals) {
        if (row_of_[s] < 0) {
          row_of_[s] = static_cast<std::int32_t>(row_sig_.size());
          row_sig_.push_back(s);
        }
      }
      for (PrimId p : cone.prims) prim_in_[p] = 1;
    }
    const std::size_t rows = row_sig_.size();
    base_ref_.resize(rows);
    base_str_.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      SignalId s = row_sig_[r];
      WaveformRef br = s < base_refs_.size() ? base_refs_[s] : kNoWaveform;
      if (br == kNoWaveform) return false;  // uninterned baseline: defer
      base_ref_[r] = br;
      base_str_[r] = pool_.intern(nl_.signal(s).eval_str);
    }
    arena_ = std::make_unique<BatchArena>(rows, lanes_);
    for (std::size_t r = 0; r < rows; ++r) arena_->fill_row(r, base_ref_[r], base_str_[r]);
    seg_degraded_.assign(rows * lanes_, 0);
    dirty_.assign(lanes_, 0);
    lane_changed_.assign(lanes_, 0);
    return true;
  }

  /// Case maps per pinned signal, plus direct reseeding of pinned undriven
  /// signals (pinned driven signals recompute via their forced-dirty
  /// driver, exactly like the per-case enqueue).
  bool seed_lanes() {
    Waveform unknown(opts_.period, Value::Unknown);
    unknown.canonicalize();
    unknown_ref_ = ctx_.table.intern(std::move(unknown));
    if (unknown_ref_ == kNoWaveform) return false;
    for (std::size_t l = 0; l < lanes_; ++l) {
      for (const auto& [sig, val] : cases_[first_ + l].pins) {
        if (val != Value::Zero && val != Value::One) {
          throw std::invalid_argument("case values must be 0 or 1");
        }
        auto [it, fresh] = case_map_.try_emplace(sig);
        if (fresh) it->second.assign(lanes_, -1);
        it->second[l] = static_cast<std::int8_t>(val);
      }
    }
    for (auto& [sig, lane_vals] : case_map_) {
      const Signal& s = nl_.signal(sig);
      if (s.driver != kNoPrim) continue;
      std::int32_t row = row_of_[sig];  // pinned signals are cone members
      Waveform base_seed = seed_waveform(s, opts_);
      WaveformRef seeded[2] = {kNoWaveform, kNoWaveform};
      WaveformRef* rr = arena_->refs(static_cast<std::size_t>(row));
      for (std::size_t l = 0; l < lanes_; ++l) {
        std::int8_t v = lane_vals[l];
        if (v < 0) continue;
        if (seeded[v] == kNoWaveform) {
          Waveform w = base_seed.replaced(Value::Stable, static_cast<Value>(v));
          w.canonicalize();
          seeded[v] = ctx_.table.intern(std::move(w));
          if (seeded[v] == kNoWaveform) return false;
        }
        // A reseeded signal's evaluation string is empty, same as its
        // baseline seed: only the ref cell carries the divergence.
        rr[l] = seeded[v];
      }
    }
    return true;
  }

  /// Walks the schedule once; cyclic components iterate to an
  /// intra-component fixpoint under the oscillation guard.
  bool sweep() {
    for (const BatchSchedule::Component& comp : sched_.components) {
      if (!comp.cyclic) {
        if (prim_in_[comp.prims[0]]) {
          eval_prim(comp.prims[0]);
          if (abort_) return false;
        }
        continue;
      }
      bool member = false;
      for (PrimId pid : comp.prims) member = member || prim_in_[pid];
      if (!member) continue;
      for (std::size_t iter = 0; iter < opts_.max_evals_per_prim; ++iter) {
        std::fill(lane_changed_.begin(), lane_changed_.end(), 0);
        bool any = false;
        for (PrimId pid : comp.prims) {
          if (!prim_in_[pid]) continue;
          any = eval_prim(pid) || any;
          if (abort_) return false;
        }
        if (!any) break;
        if (iter + 1 == opts_.max_evals_per_prim) {
          // Still changing at the cap: those lanes oscillate, mirroring
          // the per-case eval-count guard.
          for (std::size_t l = 0; l < lanes_; ++l) {
            if (lane_changed_[l]) res_.lanes[l].converged = false;
          }
        }
      }
    }
    return true;
  }

  /// Evaluates one primitive across all dirty lanes. Returns true when any
  /// lane's output cell changed; sets abort_ when the table fills.
  bool eval_prim(PrimId pid) {
    const Primitive& p = nl_.prim(pid);
    if (prim_is_checker(p.kind) || p.output == kNoSignal) return false;
    std::int32_t out_row = row_of_[p.output];
    if (out_row < 0) return false;
    const std::size_t nin = p.inputs.size();
    const std::size_t L = lanes_;

    // Dirty mask: a lane evaluates here iff its output is case-mapped (the
    // per-case "reseed the pinned signal's driver" rule) or any input cell
    // diverged from the base fixpoint. Everything else provably still
    // holds the base value and is skipped. These loops are the hot path --
    // flat passes over adjacent u32 cells, no calls, no branches beyond
    // the accumulate.
    const std::vector<std::int8_t>* maps = nullptr;
    if (auto it = case_map_.find(p.output); it != case_map_.end()) maps = &it->second;
    if (maps) {
      const std::int8_t* mv = maps->data();
      for (std::size_t l = 0; l < L; ++l) {
        dirty_[l] = static_cast<std::uint8_t>(mv[l] >= 0);
      }
    } else {
      std::fill(dirty_.begin(), dirty_.end(), 0);
    }
    in_row_.clear();
    for (const Pin& pin : p.inputs) in_row_.push_back(row_of_[pin.sig]);
    for (std::size_t i = 0; i < nin; ++i) {
      std::int32_t row = in_row_[i];
      if (row < 0) continue;  // input outside every cone: at base in all lanes
      const WaveformRef* rr = arena_->refs(static_cast<std::size_t>(row));
      const std::uint32_t* ss = arena_->strs(static_cast<std::size_t>(row));
      const WaveformRef br = base_ref_[static_cast<std::size_t>(row)];
      const std::uint32_t bs = base_str_[static_cast<std::size_t>(row)];
      for (std::size_t l = 0; l < L; ++l) {
        dirty_[l] = static_cast<std::uint8_t>(dirty_[l] | (rr[l] != br) | (ss[l] != bs));
      }
    }

    // Most primitives in the block's cone union are dirty in only a few
    // lanes (often none once a lane's divergence converges back to the base
    // waveform); skip the key build and lane loop outright when the whole
    // mask is clean.
    bool any_dirty = false;
    for (std::size_t l = 0; l < L; ++l) any_dirty = any_dirty || dirty_[l];
    if (!any_dirty) {
      for (std::size_t l = 0; l < L; ++l) ++res_.lanes[l].lane_skips;
      return false;
    }

    // Memo-key skeleton built once from the baseline; dirty lanes patch
    // refs (and the rare diverged directive string) in place instead of
    // re-running key construction per evaluation.
    MemoKey key;
    if (!build_memo_key(
            p, nl_, opts_,
            [this](SignalId s) { return s < base_refs_.size() ? base_refs_[s] : kNoWaveform; },
            [this](SignalId s) -> const std::string& { return nl_.signal(s).eval_str; },
            key)) {
      abort_ = true;  // uninterned baseline input: defer to per-case
      return false;
    }
    in_base_ref_.clear();
    in_base_str_.clear();
    cur_str_.clear();
    for (std::size_t i = 0; i < nin; ++i) {
      std::int32_t row = in_row_[i];
      WaveformRef br = row >= 0 ? base_ref_[static_cast<std::size_t>(row)]
                                : base_refs_[p.inputs[i].sig];
      std::uint32_t bs = row >= 0 ? base_str_[static_cast<std::size_t>(row)]
                                  : pool_.intern(nl_.signal(p.inputs[i].sig).eval_str);
      in_base_ref_.push_back(br);
      in_base_str_.push_back(bs);
      cur_str_.push_back(bs);  // the key currently holds the base string
    }
    lane_ref_.assign(nin, kNoWaveform);
    lane_str_.assign(nin, 0);
    prev_ref_.assign(nin, kNoWaveform);
    prev_str_.assign(nin, 0);

    WaveformRef* out_r = arena_->refs(static_cast<std::size_t>(out_row));
    std::uint32_t* out_s = arena_->strs(static_cast<std::size_t>(out_row));
    bool any = false;
    bool have_prev = false;
    std::int8_t prev_map = -1;
    WaveformRef prev_final = kNoWaveform;
    std::uint32_t prev_final_str = 0;

    for (std::size_t l = 0; l < L; ++l) {
      if (!dirty_[l]) {
        ++res_.lanes[l].lane_skips;
        continue;
      }
      for (std::size_t i = 0; i < nin; ++i) {
        std::int32_t row = in_row_[i];
        lane_ref_[i] = row >= 0 ? arena_->refs(static_cast<std::size_t>(row))[l]
                                : in_base_ref_[i];
        lane_str_[i] = row >= 0 ? arena_->strs(static_cast<std::size_t>(row))[l]
                                : in_base_str_[i];
      }
      std::int8_t mv = maps ? (*maps)[l] : -1;
      ++res_.lanes[l].evals;
      // Adjacent lanes frequently present identical inputs (a sweep that
      // pins the same control both ways alternates only one pin); reuse the
      // previous lane's result outright when they match.
      if (!(have_prev && mv == prev_map && lane_ref_ == prev_ref_ &&
            lane_str_ == prev_str_)) {
        for (std::size_t i = 0; i < nin; ++i) {
          key.pins[i].wave = lane_ref_[i];
          if (p.inputs[i].directives.empty() && lane_str_[i] != cur_str_[i]) {
            key.pins[i].dirs = pool_.str(lane_str_[i]);
            cur_str_[i] = lane_str_[i];
          }
        }
        WaveformRef raw;
        std::uint32_t raw_str;
        if (std::optional<MemoResult> hit = ctx_.memo.lookup(key)) {
          raw = hit->wave;
          raw_str = pool_.intern(hit->eval_str);
        } else {
          ins_.clear();
          for (std::size_t i = 0; i < nin; ++i) {
            const Pin& pin = p.inputs[i];
            ins_.push_back(prepare_input(pin, nl_.signal(pin.sig),
                                         ctx_.table.get(lane_ref_[i]),
                                         pool_.str(lane_str_[i]), opts_));
          }
          PrimEvalResult r = evaluate_primitive(p, ins_, opts_.period);
          raw = ctx_.table.intern(std::move(r.wave));
          if (raw == kNoWaveform) {
            abort_ = true;
            return any;
          }
          ctx_.memo.store(key, MemoResult{raw, r.eval_str});
          raw_str = pool_.intern(r.eval_str);
        }
        // Case map and segment cap, mirroring the per-case commit().
        WaveformRef final_ref = raw;
        if (mv >= 0) {
          Waveform w = ctx_.table.get(raw).replaced(Value::Stable, static_cast<Value>(mv));
          w.canonicalize();
          final_ref = ctx_.table.intern(std::move(w));
          if (final_ref == kNoWaveform) {
            abort_ = true;
            return any;
          }
        }
        if (opts_.max_segments_per_signal != 0 &&
            ctx_.table.get(final_ref).segments().size() > opts_.max_segments_per_signal) {
          std::size_t cell = static_cast<std::size_t>(out_row) * L + l;
          if (!seg_degraded_[cell]) {
            seg_degraded_[cell] = 1;
            res_.lanes[l].degraded = true;
            res_.lanes[l].degradations.push_back(Degradation{
                diag::kWarnSegmentCap,
                "signal \"" + nl_.signal(p.output).full_name + "\" exceeded " +
                    std::to_string(opts_.max_segments_per_signal) +
                    " waveform segments; degraded to UNKNOWN"});
          }
          final_ref = unknown_ref_;
        }
        prev_final = final_ref;
        prev_final_str = raw_str;
        prev_map = mv;
        prev_ref_ = lane_ref_;
        prev_str_ = lane_str_;
        have_prev = true;
      }
      if (prev_final != out_r[l] || prev_final_str != out_s[l]) {
        out_r[l] = prev_final;
        out_s[l] = prev_final_str;
        lane_changed_[l] = 1;
        any = true;
      }
    }
    return any;
  }

  /// Writes each lane's divergences from base into its snapshot -- the same
  /// final shape the per-case runner leaves, so checking is shared.
  void materialize() {
    for (std::size_t l = 0; l < lanes_; ++l) {
      EvalSnapshot& snap = snaps_[l];
      const Cone& cone = *cones_[first_ + l];
      for (SignalId sig : cone.signals) {
        std::size_t r = static_cast<std::size_t>(row_of_[sig]);
        WaveformRef fr = arena_->refs(r)[l];
        std::uint32_t fs = arena_->strs(r)[l];
        if (fr == base_ref_[r] && fs == base_str_[r]) continue;
        snap.set_ref(sig, fr, pool_.str(fs));
      }
    }
  }

  const Netlist& nl_;
  const VerifierOptions& opts_;
  const BatchSchedule& sched_;
  InternContext& ctx_;
  const std::vector<WaveformRef>& base_refs_;
  const std::vector<CaseSpec>& cases_;
  const std::size_t first_;
  const std::size_t lanes_;
  const std::vector<std::shared_ptr<const Cone>>& cones_;
  std::vector<EvalSnapshot>& snaps_;

  BatchBlockResult res_;
  EvalStrPool pool_;
  std::unique_ptr<BatchArena> arena_;
  std::vector<std::int32_t> row_of_;   // SignalId -> arena row, -1 outside
  std::vector<SignalId> row_sig_;      // arena row -> SignalId
  std::vector<char> prim_in_;          // PrimId -> in some cone of the block
  std::vector<WaveformRef> base_ref_;  // per-row baseline ref
  std::vector<std::uint32_t> base_str_;
  std::unordered_map<SignalId, std::vector<std::int8_t>> case_map_;
  std::vector<char> seg_degraded_;  // [row][lane]: segment cap already fired
  WaveformRef unknown_ref_ = kNoWaveform;
  bool abort_ = false;

  // Per-primitive scratch (member so the sweep never allocates in steady
  // state).
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint8_t> lane_changed_;
  std::vector<std::int32_t> in_row_;
  std::vector<WaveformRef> in_base_ref_;
  std::vector<std::uint32_t> in_base_str_;
  std::vector<std::uint32_t> cur_str_;
  std::vector<WaveformRef> lane_ref_;
  std::vector<std::uint32_t> lane_str_;
  std::vector<WaveformRef> prev_ref_;
  std::vector<std::uint32_t> prev_str_;
  std::vector<PreparedInput> ins_;
};

}  // namespace

BatchBlockResult run_case_block(const Netlist& nl, const VerifierOptions& opts,
                                const BatchSchedule& sched, InternContext& ctx,
                                const std::vector<WaveformRef>& base_refs,
                                const std::vector<CaseSpec>& cases,
                                std::size_t first, std::size_t count,
                                const std::vector<std::shared_ptr<const Cone>>& cones,
                                std::vector<EvalSnapshot>& snaps) {
  return BlockSweep(nl, opts, sched, ctx, base_refs, cases, first, count, cones, snaps)
      .run();
}

}  // namespace tv
