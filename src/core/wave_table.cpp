#include "core/wave_table.hpp"

#include <stdexcept>

#include "util/fault.hpp"

namespace tv {

WaveformTable::WaveformTable(std::uint32_t max_per_shard)
    : max_per_shard_(max_per_shard) {}

WaveformTable::~WaveformTable() {
  for (Shard& sh : shards_) {
    for (auto& chunk : sh.chunks) {
      delete[] chunk.load(std::memory_order_relaxed);
    }
  }
}

WaveformRef WaveformTable::intern(Waveform w) {
  // Simulated allocation failure (docs/serving.md): `fail` throws
  // InjectedFault here, which drivers map to the transient exit code 5.
  fault::check("wave_table.intern");
  w.canonicalize();
  std::uint64_t h = w.canonical_hash();
  Shard& sh = shards_[h & kShardMask];
  std::lock_guard<std::mutex> lock(sh.mu);
  ++sh.lookups;
  std::vector<std::uint32_t>& bucket = sh.buckets[h];
  for (std::uint32_t slot : bucket) {
    const Waveform* chunk = sh.chunks[slot >> kChunkBits].load(std::memory_order_relaxed);
    if (chunk[slot & (kChunkSize - 1)] == w) {
      return (slot << kShardBits) | static_cast<WaveformRef>(h & kShardMask);
    }
  }
  std::uint32_t slot = sh.count;
  std::uint32_t cap = kMaxChunks * kChunkSize;
  if (max_per_shard_ != 0 && max_per_shard_ < cap) cap = max_per_shard_;
  if (slot >= cap) {
    // Shard exhausted: signal the caller instead of throwing so evaluation
    // can degrade the affected cone conservatively rather than crash.
    return kNoWaveform;
  }
  Waveform* chunk = sh.chunks[slot >> kChunkBits].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Waveform[kChunkSize];
    // Release pairs with the acquire in get(): a reader that learned of a
    // slot in this chunk (via a ref handed out after this point) sees the
    // chunk's construction.
    sh.chunks[slot >> kChunkBits].store(chunk, std::memory_order_release);
  }
  sh.paper_bytes += w.paper_storage_bytes();
  chunk[slot & (kChunkSize - 1)] = std::move(w);
  bucket.push_back(slot);
  ++sh.count;
  return (slot << kShardBits) | static_cast<WaveformRef>(h & kShardMask);
}

std::size_t WaveformTable::size() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    n += sh.count;
  }
  return n;
}

std::size_t WaveformTable::lookups() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    n += sh.lookups;
  }
  return n;
}

std::size_t WaveformTable::unique_paper_bytes() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    n += sh.paper_bytes;
  }
  return n;
}

std::size_t EvalMemo::KeyHash::operator()(const MemoKey& k) const {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kPrime;
    h ^= h >> 29;
  };
  mix(k.kind);
  mix(static_cast<std::uint64_t>(k.dmin));
  mix(static_cast<std::uint64_t>(k.dmax));
  mix(k.has_rise_fall);
  for (Time t : k.rise_fall) mix(static_cast<std::uint64_t>(t));
  for (const MemoPin& p : k.pins) {
    mix(p.wave);
    mix(p.invert);
    mix(static_cast<std::uint64_t>(p.wire_min));
    mix(static_cast<std::uint64_t>(p.wire_max));
    for (char c : p.dirs) mix(static_cast<unsigned char>(c));
    mix(0x9e3779b97f4a7c15ull);  // pin separator
  }
  return static_cast<std::size_t>(h);
}

std::size_t EvalMemo::shard_of(const MemoKey& key) {
  return KeyHash{}(key) % kShardCount;
}

std::optional<MemoResult> EvalMemo::lookup(const MemoKey& key) const {
  const Shard& sh = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.map.find(key);
  if (it == sh.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void EvalMemo::store(const MemoKey& key, MemoResult result) {
  Shard& sh = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.map.emplace(key, std::move(result));
}

std::size_t EvalMemo::entries() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    n += sh.map.size();
  }
  return n;
}

InternStats collect_intern_stats(const InternContext& ctx) {
  InternStats st;
  st.unique_waveforms = ctx.table.size();
  st.intern_lookups = ctx.table.lookups();
  st.arena_paper_bytes = ctx.table.unique_paper_bytes();
  st.memo_hits = ctx.memo.hits();
  st.memo_misses = ctx.memo.misses();
  st.memo_entries = ctx.memo.entries();
  return st;
}

}  // namespace tv
