// Machine-readable exports of verification results.
//
//  * VCD (Value Change Dump): one symbolic cycle of every signal, viewable
//    in any waveform viewer. The seven values map onto VCD's four-state
//    scalars: 0 and 1 directly; STABLE to 'z' (a defined but unknown
//    level); CHANGE/RISE/FALL/UNKNOWN to 'x' (may be in transition). The
//    cycle is emitted twice so periodic behaviour is visible.
//
//  * JSON: the violation list, slack table and run statistics in a stable
//    schema for CI pipelines (the modern form of the thesis' day-by-day
//    verification loop).
#pragma once

#include <string>

#include "core/checker.hpp"
#include "core/verifier.hpp"

namespace tv {

/// Renders one (doubled) symbolic cycle of every signal as a VCD document.
/// `timescale_ps` sets the VCD timescale (default 1 ps = the engine's
/// internal resolution).
std::string export_vcd(const Netlist& nl, Time period, const std::string& design_name = "tv");

/// Renders the netlist as a Graphviz DOT digraph: primitives as boxes
/// (checkers as double octagons), signals as edges; signals listed in
/// `highlight` (e.g. a critical chain from explain_chain) are drawn red.
std::string export_dot(const Netlist& nl, const std::vector<SignalId>& highlight = {},
                       const std::string& design_name = "tv");

/// Renders a verification result as JSON: {design, period_ns, converged,
/// events, violations: [...], cases: [...], slacks: [...]}.
std::string export_json(const Netlist& nl, const VerifyResult& result, Time period,
                        const std::vector<SlackEntry>& slacks = {},
                        const std::string& design_name = "tv");

}  // namespace tv
