#include "core/assertion.hpp"

#include <cctype>
#include <stdexcept>

#include "util/strings.hpp"

namespace tv {

namespace {

[[noreturn]] void fail(std::string_view text, const std::string& why) {
  throw std::invalid_argument("bad signal assertion in \"" + std::string(text) + "\": " + why);
}

// Cursor-based parser over the assertion spec with whitespace removed.
class SpecParser {
 public:
  SpecParser(std::string spec, std::string_view original)
      : spec_(std::move(spec)), original_(original) {}

  bool done() const { return pos_ >= spec_.size(); }
  char peek() const { return pos_ < spec_.size() ? spec_[pos_] : '\0'; }
  char take() { return spec_[pos_++]; }

  double number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < spec_.size() &&
           (std::isdigit(static_cast<unsigned char>(spec_[pos_])) || spec_[pos_] == '.')) {
      ++pos_;
    }
    double out;
    if (start == pos_ || !parse_double(std::string_view(spec_).substr(start, pos_ - start), out)) {
      fail(original_, "expected a number at \"" + spec_.substr(start) + "\"");
    }
    return out;
  }

 private:
  std::string spec_;
  std::string_view original_;
  size_t pos_ = 0;
};

Assertion parse_spec(Assertion::Kind kind, std::string_view spec_text, std::string_view original) {
  Assertion a;
  a.kind = kind;
  std::string spec;
  for (char c : spec_text) {
    if (!std::isspace(static_cast<unsigned char>(c))) spec += c;
  }
  SpecParser p(std::move(spec), original);

  // <value specification>: comma-separated time ranges.
  while (!p.done() && (std::isdigit(static_cast<unsigned char>(p.peek())) || p.peek() == '.')) {
    Assertion::Range r;
    r.begin = p.number();
    if (p.peek() == '-') {
      p.take();
      r.end = p.number();
    } else if (p.peek() == '+') {
      // "t+w": second number is a width in nanoseconds, not scaling with
      // the cycle time (sec. 2.5.1).
      p.take();
      r.width_ns = p.number();
      r.end = r.begin;
    } else {
      // Single time: an interval of one clock unit is assumed.
      r.end = r.begin + 1.0;
    }
    a.ranges.push_back(r);
    if (p.peek() == ',') {
      p.take();
      continue;
    }
    break;
  }
  if (a.ranges.empty()) fail(original, "assertion has no time ranges");

  // Optional <skew specification> "(minus, plus)".
  if (p.peek() == '(') {
    p.take();
    double minus = p.number();
    if (p.peek() != ',') fail(original, "expected ',' in skew specification");
    p.take();
    double plus = p.number();
    if (p.peek() != ')') fail(original, "expected ')' in skew specification");
    p.take();
    if (minus > 0 || plus < 0) fail(original, "skew must satisfy minus <= 0 <= plus");
    a.skew_ns = {minus, plus};
  }

  // Optional polarity assertion "L".
  if (p.peek() == 'L' || p.peek() == 'l') {
    p.take();
    a.active_low = true;
  }
  if (!p.done()) fail(original, "trailing characters in assertion");
  return a;
}

}  // namespace

ParsedSignal parse_signal_name(std::string_view text) {
  ParsedSignal out;
  out.full_name = std::string(trim(text));
  std::string_view rest = trim(text);

  // Leading "-": complement of the signal (Fig 3-5's "- WE").
  if (!rest.empty() && rest[0] == '-' &&
      (rest.size() == 1 || rest[1] == ' ' || std::isalpha(static_cast<unsigned char>(rest[1])))) {
    out.complemented = true;
    rest = trim(rest.substr(1));
    out.full_name = std::string(rest);
  }

  // Trailing "&..." evaluation directive string (sec. 2.6). The directive is
  // a separate token ("CLOCK &HZ"), so the '&' must begin one -- an embedded
  // '&' is part of the name proper (drawing systems allow "A&B").
  if (size_t amp = rest.rfind('&');
      amp != std::string_view::npos && (amp == 0 || rest[amp - 1] == ' ')) {
    std::string_view dir = trim(rest.substr(amp + 1));
    for (char c : dir) {
      char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (u != 'E' && u != 'W' && u != 'Z' && u != 'A' && u != 'H') {
        fail(text, std::string("unknown evaluation directive letter '") + c + "'");
      }
      out.directives += u;
    }
    rest = trim(rest.substr(0, amp));
    out.full_name = std::string(rest);
  }

  // Scope markers "/M" (macro-local) and "/P" (parameter), sec. 3.1. They
  // follow the name proper (and any directives have been stripped already).
  {
    std::string_view t = trim(rest);
    if (t.size() >= 2 && t[t.size() - 2] == '/') {
      char m = static_cast<char>(std::toupper(static_cast<unsigned char>(t.back())));
      if (m == 'M' || m == 'P') {
        out.scope = (m == 'M') ? SignalScope::Local : SignalScope::Parameter;
        rest = trim(t.substr(0, t.size() - 2));
        out.full_name = std::string(rest);
      }
    }
  }

  // Locate the assertion: a '.' at a word boundary followed by P/C/S and a
  // spec. Assertions are "given at the end of signal names" (sec. 2.5.1).
  size_t assert_pos = std::string_view::npos;
  char kind_letter = '\0';
  for (size_t i = 0; i + 1 < rest.size(); ++i) {
    if (rest[i] != '.') continue;
    if (i > 0 && rest[i - 1] != ' ') continue;  // must start a token
    char k = static_cast<char>(std::toupper(static_cast<unsigned char>(rest[i + 1])));
    if (k != 'P' && k != 'C' && k != 'S') continue;
    char next = (i + 2 < rest.size()) ? rest[i + 2] : ' ';
    if (next == ' ' || std::isdigit(static_cast<unsigned char>(next)) || next == '.') {
      assert_pos = i;
      kind_letter = k;
      break;
    }
  }

  if (assert_pos == std::string_view::npos) {
    out.base_name = std::string(trim(rest));
    return out;
  }

  out.base_name = std::string(trim(rest.substr(0, assert_pos)));
  std::string_view spec = rest.substr(assert_pos + 2);
  Assertion::Kind kind = kind_letter == 'P'   ? Assertion::Kind::PrecisionClock
                         : kind_letter == 'C' ? Assertion::Kind::Clock
                                              : Assertion::Kind::Stable;
  out.assertion = parse_spec(kind, spec, text);
  return out;
}

std::string assertion_to_text(const Assertion& a) {
  if (a.kind == Assertion::Kind::None) return "";
  std::string out = ".";
  out += a.kind == Assertion::Kind::PrecisionClock ? 'P'
         : a.kind == Assertion::Kind::Clock        ? 'C'
                                                   : 'S';
  char buf[64];
  bool first = true;
  for (const Assertion::Range& r : a.ranges) {
    if (!first) out += ',';
    first = false;
    if (r.width_ns) {
      std::snprintf(buf, sizeof buf, "%g+%g", r.begin, *r.width_ns);
    } else {
      std::snprintf(buf, sizeof buf, "%g-%g", r.begin, r.end);
    }
    out += buf;
  }
  if (a.skew_ns) {
    std::snprintf(buf, sizeof buf, "(%g,%g)", a.skew_ns->first, a.skew_ns->second);
    out += buf;
  }
  if (a.active_low) out += " L";
  return out;
}

Waveform assertion_waveform(const Assertion& a, Time period, const ClockUnits& units,
                            const AssertionDefaults& defaults) {
  if (a.kind == Assertion::Kind::None) return Waveform(period, Value::Unknown);

  bool stable = a.kind == Assertion::Kind::Stable;
  Waveform w(period, stable ? Value::Change : Value::Zero);
  for (const Assertion::Range& r : a.ranges) {
    Time begin = floor_mod(units.to_time(r.begin), period);
    Time width;
    if (r.width_ns) {
      width = from_ns(*r.width_ns);
    } else {
      width = floor_mod(units.to_time(r.end) - units.to_time(r.begin), period);
      // "0-8" in an 8-unit cycle means the whole period, not nothing.
      if (width == 0 && r.end != r.begin) width = period;
    }
    w.set(begin, begin + width, stable ? Value::Stable : Value::One);
  }

  if (stable) return w;  // polarity does not alter stable/changing windows

  if (a.active_low) w = w.map(value_not);

  double minus, plus;
  if (a.skew_ns) {
    minus = a.skew_ns->first;
    plus = a.skew_ns->second;
  } else if (a.kind == Assertion::Kind::PrecisionClock) {
    minus = defaults.precision_skew_minus_ns;
    plus = defaults.precision_skew_plus_ns;
  } else {
    minus = defaults.clock_skew_minus_ns;
    plus = defaults.clock_skew_plus_ns;
  }
  if (minus != 0 || plus != 0) {
    // Shift the nominal waveform to the earliest possible position and keep
    // the total uncertainty (plus - minus) in the skew field.
    Time shift = floor_mod(from_ns(minus), period);
    w = w.delayed(shift, shift);
    w.set_skew(from_ns(plus - minus));
  }
  return w;
}

}  // namespace tv
