// Event-driven circuit evaluation (thesis sec. 2.9).
//
// Step 1 initializes every signal: assertion waveforms are materialized,
// undefined signals without assertions become always-STABLE (and are listed
// on a cross-reference for the designer), everything else starts UNKNOWN.
// Step 2 repeatedly evaluates primitives whose inputs changed -- each output
// change is an *event* that enqueues the output's call list -- until all
// signals stop changing. Case analysis (sec. 2.7) then changes only the
// signals named in the case specification and incrementally reevaluates the
// affected cone.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "core/netlist.hpp"
#include "core/primitives.hpp"

namespace tv {

struct VerifierOptions {
  Time period = from_ns(50.0);
  ClockUnits units = ClockUnits::from_ns_per_unit(6.25);
  /// Default interconnection delay used when a signal carries no override
  /// (sec. 2.5.3; the Mark IIA rules used 0.0/2.0 ns).
  WireDelay default_wire{0, from_ns(2.0)};
  AssertionDefaults assertion_defaults;
  /// Oscillation guard: a primitive evaluated more than this many times in
  /// one fixpoint is reported as non-convergent (combinational loops).
  std::size_t max_evals_per_prim = 64;
  /// Worker threads for case analysis (Verifier::verify): each case runs on
  /// a cone-scoped copy-on-write snapshot of the baseline fixpoint, so cases
  /// are independent and results are identical for every job count.
  /// 0 = one thread per hardware core.
  unsigned jobs = 1;
};

/// One case for case analysis (sec. 2.7.1): each named signal has its
/// STABLE values mapped to the given 0/1 value.
struct CaseSpec {
  std::string name;
  std::vector<std::pair<SignalId, Value>> pins;
};

/// The waveform a signal is seeded with before any evaluation (sec. 2.9
/// step 1), case mapping *not* applied: the materialized assertion, an
/// always-STABLE constant for undefined unasserted signals, UNKNOWN
/// otherwise. Shared by the Evaluator and the case-snapshot engine.
Waveform seed_waveform(const Signal& s, const VerifierOptions& opts);

/// Prepares one input connection from an explicit driving waveform and
/// evaluation string (which may come from the shared netlist or from a
/// case snapshot overlay): complement applied, interconnection delay
/// applied (zeroed under a W/Z/H directive), directive letter resolved from
/// the pin's own "&" string or from the signal's propagated string.
PreparedInput prepare_input(const Pin& pin, const Signal& s, const Waveform& wave,
                            const std::string& eval_str, const VerifierOptions& opts);

class Evaluator {
 public:
  Evaluator(Netlist& nl, VerifierOptions opts);

  /// Seeds all signal waveforms and marks every primitive for evaluation
  /// (sec. 2.9 step 1). Resets event counters.
  void initialize();

  /// Runs evaluation to the fixpoint. Returns the number of events (output
  /// value changes) processed. Sets converged() false if the oscillation
  /// guard tripped.
  std::size_t propagate();

  /// Applies a case specification: reseeds the named signals with their
  /// STABLE values mapped, reevaluates affected primitives incrementally,
  /// and propagates. Returns events processed for this case.
  std::size_t apply_case(const CaseSpec& c);
  /// Removes any active case mapping and re-propagates.
  std::size_t clear_case();

  const Waveform& wave(SignalId id) const { return nl_.signal(id).wave; }
  bool converged() const { return converged_; }
  std::size_t events_processed() const { return events_; }
  std::size_t evals_performed() const { return evals_; }
  const VerifierOptions& options() const { return opts_; }
  Netlist& netlist() { return nl_; }
  const Netlist& netlist() const { return nl_; }

  /// Prepares one input connection for evaluation or checking: complement
  /// applied, interconnection delay applied (zeroed under a W/Z/H
  /// directive), directive letter resolved from the pin's own "&" string or
  /// from the driving signal's propagated evaluation string.
  PreparedInput prepare(const Pin& pin) const;

 private:
  void seed_signal(SignalId id);
  Waveform apply_case_map(SignalId id, Waveform w) const;
  void enqueue(PrimId pid);
  void enqueue_fanout(SignalId id);
  std::size_t run_worklist();
  void assign(SignalId id, Waveform w, std::string eval_str, bool& changed);

  Netlist& nl_;
  VerifierOptions opts_;
  std::deque<PrimId> worklist_;
  std::vector<char> in_worklist_;
  std::vector<std::size_t> eval_count_;
  /// Active case mapping, flat-indexed by SignalId: -1 = unmapped, else the
  /// Value the signal's STABLE regions map to. (A hash map here made
  /// clear_case iterate in hash order and cost a lookup per assign.)
  std::vector<std::int8_t> case_map_;
  std::vector<SignalId> case_pins_;  // mapped signals, for O(pins) clearing
  std::size_t events_ = 0;
  std::size_t evals_ = 0;
  bool converged_ = true;
};

}  // namespace tv
