// Event-driven circuit evaluation (thesis sec. 2.9).
//
// Step 1 initializes every signal: assertion waveforms are materialized,
// undefined signals without assertions become always-STABLE (and are listed
// on a cross-reference for the designer), everything else starts UNKNOWN.
// Step 2 repeatedly evaluates primitives whose inputs changed -- each output
// change is an *event* that enqueues the output's call list -- until all
// signals stop changing. Case analysis (sec. 2.7) then changes only the
// signals named in the case specification and incrementally reevaluates the
// affected cone.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "core/netlist.hpp"
#include "core/primitives.hpp"
#include "core/wave_table.hpp"

namespace tv {

struct VerifierOptions {
  Time period = from_ns(50.0);
  ClockUnits units = ClockUnits::from_ns_per_unit(6.25);
  /// Default interconnection delay used when a signal carries no override
  /// (sec. 2.5.3; the Mark IIA rules used 0.0/2.0 ns).
  WireDelay default_wire{0, from_ns(2.0)};
  AssertionDefaults assertion_defaults;
  /// Oscillation guard: a primitive evaluated more than this many times in
  /// one fixpoint is reported as non-convergent (combinational loops).
  std::size_t max_evals_per_prim = 64;
  /// Worker threads for case analysis (Verifier::verify): each case runs on
  /// a cone-scoped copy-on-write snapshot of the baseline fixpoint, so cases
  /// are independent and results are identical for every job count.
  /// 0 = one thread per hardware core.
  unsigned jobs = 1;
  /// Hash-consed waveform interning + evaluation memo-cache (wave_table.hpp).
  /// Reports are byte-identical either way (both modes evaluate canonical
  /// waveforms); off turns every intern/memo lookup into the legacy deep
  /// compare, which the golden suite and tvfuzz --memo-diff exploit.
  bool interning = true;
  /// Structure-of-arrays batch case evaluation (core/batch_eval.hpp): case
  /// instances advance in lockstep lanes through one topological sweep of
  /// the design instead of one event-driven pass per case. Reports are
  /// byte-identical to the per-case path (the golden suite and tvfuzz
  /// --batch-diff exploit the toggle); the engine silently defers to the
  /// per-case path when interning is off, a wall-clock budget is armed, or
  /// the base fixpoint is degraded or non-convergent.
  bool batch_eval = true;
  /// Lane-block size for batch case evaluation: cases are grouped into
  /// blocks of this many lanes and `jobs` workers split blocks. Results are
  /// identical for every value; 64 is the bench-chosen default (see
  /// bench_batch_eval and docs/batch_eval.md). Clamped to [1, 4096].
  unsigned batch_lanes = 64;
  /// Resource guard: a computed waveform with more than this many segments
  /// degrades its signal to all-UNKNOWN (conservative: UNKNOWN is the most
  /// pessimistic value) instead of growing without bound. 0 = unlimited.
  std::size_t max_segments_per_signal = 1 << 16;
  /// Resource guard: wall-clock budget for one fixpoint run in seconds.
  /// When exceeded, every signal still reachable from the dirty worklist is
  /// degraded to UNKNOWN and the run completes. 0 = unlimited.
  double time_limit_seconds = 0;
  /// The armed deadline shared by every phase of one Verifier::verify run:
  /// the base fixpoint, the constraint checker, and every case snapshot all
  /// poll this same point in time, so N cases cannot stretch the
  /// time_limit_seconds budget N-fold. verify() arms it from
  /// time_limit_seconds when unarmed; a phase run outside verify() (direct
  /// Evaluator::propagate) falls back to arming its own.
  Deadline deadline{};
  /// Resource guard: cap on unique waveforms per intern-table shard
  /// (16 shards). 0 = the table's built-in maximum (~2M per shard). Small
  /// values force the TV-W203 table-full degradation path; production runs
  /// leave this at 0.
  std::uint32_t max_waveforms_per_shard = 0;
};

/// One resource-guard degradation event: which guard fired and what it did.
/// `code` is the TV-W2xx diagnostic code (diag/diagnostic.hpp).
struct Degradation {
  const char* code = "";
  std::string message;
};

/// One case for case analysis (sec. 2.7.1): each named signal has its
/// STABLE values mapped to the given 0/1 value.
struct CaseSpec {
  std::string name;
  std::vector<std::pair<SignalId, Value>> pins;
};

/// The waveform a signal is seeded with before any evaluation (sec. 2.9
/// step 1), case mapping *not* applied: the materialized assertion, an
/// always-STABLE constant for undefined unasserted signals, UNKNOWN
/// otherwise. Shared by the Evaluator and the case-snapshot engine.
Waveform seed_waveform(const Signal& s, const VerifierOptions& opts);

/// Prepares one input connection from an explicit driving waveform and
/// evaluation string (which may come from the shared netlist or from a
/// case snapshot overlay): complement applied, interconnection delay
/// applied (zeroed under a W/Z/H directive), directive letter resolved from
/// the pin's own "&" string or from the signal's propagated string.
PreparedInput prepare_input(const Pin& pin, const Signal& s, const Waveform& wave,
                            const std::string& eval_str, const VerifierOptions& opts);

/// Builds the memo-cache key for one primitive evaluation. `ref_of(sig)`
/// yields the interned ref of the signal's current waveform (kNoWaveform if
/// it has none -- the call then returns false and the caller must evaluate
/// uncached); `str_of(sig)` yields its current evaluation string. The key
/// captures everything evaluate_primitive and prepare_input consume beyond
/// the fixed per-run options: kind, delay parameters, and per-pin (waveform
/// ref, inversion, wire delay, resolved directive string). Shared by the
/// Evaluator and the case-snapshot runner so both populate one cache.
template <class RefOf, class StrOf>
bool build_memo_key(const Primitive& p, const Netlist& nl,
                    const VerifierOptions& opts, RefOf&& ref_of, StrOf&& str_of,
                    MemoKey& key) {
  key.kind = static_cast<std::uint8_t>(p.kind);
  key.dmin = p.dmin;
  key.dmax = p.dmax;
  key.has_rise_fall = p.rise_fall.has_value();
  if (p.rise_fall) {
    key.rise_fall = {p.rise_fall->rise_min, p.rise_fall->rise_max,
                     p.rise_fall->fall_min, p.rise_fall->fall_max};
  } else {
    key.rise_fall = {};
  }
  key.pins.clear();
  key.pins.reserve(p.inputs.size());
  for (const Pin& pin : p.inputs) {
    WaveformRef r = ref_of(pin.sig);
    if (r == kNoWaveform) return false;
    const Signal& s = nl.signal(pin.sig);
    WireDelay wd = s.wire_delay.value_or(opts.default_wire);
    MemoPin mp;
    mp.wave = r;
    mp.invert = pin.invert;
    mp.wire_min = wd.dmin;
    mp.wire_max = wd.dmax;
    mp.dirs = !pin.directives.empty() ? pin.directives : str_of(pin.sig);
    key.pins.push_back(std::move(mp));
  }
  return true;
}

class Evaluator {
 public:
  Evaluator(Netlist& nl, VerifierOptions opts);

  /// Seeds all signal waveforms and marks every primitive for evaluation
  /// (sec. 2.9 step 1). Resets event counters.
  void initialize();

  /// Runs evaluation to the fixpoint. Returns the number of events (output
  /// value changes) processed. Sets converged() false if the oscillation
  /// guard tripped.
  std::size_t propagate();

  /// Applies a case specification: reseeds the named signals with their
  /// STABLE values mapped, reevaluates affected primitives incrementally,
  /// and propagates. Returns events processed for this case.
  std::size_t apply_case(const CaseSpec& c);
  /// Removes any active case mapping and re-propagates.
  std::size_t clear_case();

  /// Incremental re-propagation for netlist deltas (core/incremental.hpp),
  /// run against the current fixpoint: reseeds the listed signals (their
  /// seed function changed -- assertion edits), enqueues the listed
  /// primitives (parameter edits, consumers of wire-delay edits), and runs
  /// the event-driven worklist to the new fixpoint. Propagation stops
  /// wherever recomputed outputs equal their previous values, so a small
  /// edit touches only its true downstream support. Signals whose waveform
  /// or evaluation string changed along the way are recorded for
  /// touched_signals(). Returns events processed.
  std::size_t propagate_incremental(const std::vector<SignalId>& reseed,
                                    const std::vector<PrimId>& reeval);

  /// Signals changed by the last propagate_incremental run (unordered, no
  /// duplicates). Over-approximates "differs from the prior fixpoint": a
  /// signal that changed and changed back stays listed, which is safe for
  /// check-cone construction.
  const std::vector<SignalId>& touched_signals() const { return touched_; }

  /// Rebuilds the post-run fixpoint state from a restored snapshot
  /// (core/fixpoint.hpp) without evaluating anything: writes each signal's
  /// settled waveform and evaluation string back, re-interns every
  /// waveform so refs and the memo behave exactly as after a real run,
  /// and resets the worklist/oscillation/case state the way a completed
  /// propagate() leaves it. Effort counters restart at zero (reverify
  /// accounts in deltas, re-based on the restored report's cumulative
  /// counters). `waves`/`eval_strs` must be sized to the netlist.
  void restore_fixpoint(const std::vector<Waveform>& waves,
                        const std::vector<std::string>& eval_strs, bool converged,
                        bool degraded, std::vector<Degradation> degradations);

  const Waveform& wave(SignalId id) const { return nl_.signal(id).wave; }
  /// Interned ref of the signal's current waveform; kNoWaveform when
  /// interning is off or the signal was created after the last initialize().
  WaveformRef wave_ref(SignalId id) const {
    return id < wave_refs_.size() ? wave_refs_[id] : kNoWaveform;
  }
  /// The shared interning state (arena + memo); null when interning is off.
  /// Case snapshots borrow it, so it must outlive them -- the Evaluator
  /// keeps it alive for its own lifetime.
  const std::shared_ptr<InternContext>& intern_context() const { return intern_; }
  const std::vector<WaveformRef>& wave_refs() const { return wave_refs_; }
  bool converged() const { return converged_; }
  /// True when any resource guard (segment cap, time limit, full waveform
  /// table) degraded part of the result to UNKNOWN. Degraded results stay
  /// conservative -- UNKNOWN can only add violations, never hide one.
  bool degraded() const { return degraded_; }
  const std::vector<Degradation>& degradations() const { return degradations_; }
  /// After a non-convergent run: the actual unclocked feedback cycles, as
  /// ordered lists of driven signal names (A -> B -> ... -> A, the closing
  /// edge implied). Computed by SCC over the primitives whose oscillation
  /// guard tripped. Empty when converged.
  std::vector<std::vector<std::string>> feedback_cycles() const;
  std::size_t events_processed() const { return events_; }
  std::size_t evals_performed() const { return evals_; }
  const VerifierOptions& options() const { return opts_; }
  /// Arms the shared wall-clock deadline every phase of the run polls
  /// (called by Verifier::verify before the base fixpoint starts).
  void arm_deadline(const Deadline& d) { opts_.deadline = d; }
  /// Per-job runtime knobs a warm worker adjusts between verify() calls on
  /// one long-lived Verifier (design-level options are fixed at
  /// construction). Setting a time limit also disarms any leftover
  /// deadline so the next run gets a fresh budget.
  void set_time_limit(double seconds) {
    opts_.time_limit_seconds = seconds;
    opts_.deadline = Deadline{};
  }
  void set_jobs(unsigned jobs) { opts_.jobs = jobs; }
  Netlist& netlist() { return nl_; }
  const Netlist& netlist() const { return nl_; }

  /// Prepares one input connection for evaluation or checking: complement
  /// applied, interconnection delay applied (zeroed under a W/Z/H
  /// directive), directive letter resolved from the pin's own "&" string or
  /// from the driving signal's propagated evaluation string.
  PreparedInput prepare(const Pin& pin) const;

 private:
  void seed_signal(SignalId id);
  Waveform apply_case_map(SignalId id, Waveform w) const;
  void enqueue(PrimId pid);
  void enqueue_fanout(SignalId id);
  std::size_t run_worklist();
  void assign(SignalId id, Waveform w, std::string eval_str, bool& changed);
  bool build_memo_key(const Primitive& p, MemoKey& key) const;
  /// Applies the segment cap to a computed waveform; on trip replaces it
  /// with all-UNKNOWN and records the degradation (once per signal).
  void cap_segments(SignalId id, Waveform& w);
  /// Stores `w` into the signal, interning when enabled and falling back to
  /// an uninterned deep copy (ref = kNoWaveform) when the table is full.
  void store_wave(SignalId id, Waveform w);
  /// Time-limit trip: degrades every signal reachable from the remaining
  /// worklist to UNKNOWN and drains the worklist.
  void degrade_remaining();
  void record_degradation(const char* code, std::string message);
  /// Records a changed signal while propagate_incremental tracking is on.
  void note_touched(SignalId id);

  Netlist& nl_;
  VerifierOptions opts_;
  std::shared_ptr<InternContext> intern_;  // null when interning is off
  std::vector<WaveformRef> wave_refs_;     // per-signal interned wave
  std::deque<PrimId> worklist_;
  std::vector<char> in_worklist_;
  std::vector<std::size_t> eval_count_;
  /// Active case mapping, flat-indexed by SignalId: -1 = unmapped, else the
  /// Value the signal's STABLE regions map to. (A hash map here made
  /// clear_case iterate in hash order and cost a lookup per assign.)
  std::vector<std::int8_t> case_map_;
  std::vector<SignalId> case_pins_;  // mapped signals, for O(pins) clearing
  std::size_t events_ = 0;
  std::size_t evals_ = 0;
  bool converged_ = true;
  bool degraded_ = false;
  bool table_full_reported_ = false;
  std::vector<char> seg_degraded_;  // per-signal: segment cap already fired
  std::vector<Degradation> degradations_;
  bool track_touched_ = false;       // propagate_incremental tracking active
  std::vector<char> touched_mark_;   // per-signal: already in touched_
  std::vector<SignalId> touched_;
};

}  // namespace tv
