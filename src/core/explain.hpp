// Violation explanation: tracing the chain that makes a constraint fail.
//
// The Timing Verifier computes *when* signals settle but, unlike a
// path-searching tool, does not keep paths around. When a set-up check
// fails, the designer's next question is "through which gates?". This
// module reconstructs that chain after the fact: starting from the
// checker's data pin, walk backwards through drivers, at each primitive
// following the input whose settling (as computed by the evaluator) is the
// latest and therefore responsible for the output's late settling. The
// result is a critical-chain listing with per-stage settle times -- the
// diagnostic a designer needs to know which gate to speed up.
#pragma once

#include <string>
#include <vector>

#include "core/checker.hpp"

namespace tv {

struct ChainStage {
  SignalId signal = kNoSignal;
  PrimId driver = kNoPrim;   // kNoPrim at an asserted/undriven input
  Time settles_at = 0;       // when this signal's value stops changing
};

/// The critical chain ending at a violated checker's data input: stage 0
/// is the checked signal, the last stage is the asserted/undriven origin.
/// `window_end` bounds the settle search (usually the failing clock edge).
std::vector<ChainStage> explain_chain(const Evaluator& ev, const Violation& v);

/// Renders the chain, one stage per line, latest first:
///   SIGNAL  settles 47.5  via READ OR 10102
std::string explain_report(const Netlist& nl, const std::vector<ChainStage>& chain);

}  // namespace tv
