#include "core/verifier.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/batch_eval.hpp"
#include "core/cone.hpp"
#include "core/scc.hpp"
#include "core/snapshot.hpp"

namespace tv {

std::size_t VerifyResult::total_violations() const {
  std::size_t n = violations.size();
  for (const auto& c : cases) n += c.violations.size();
  return n;
}

namespace {

unsigned effective_jobs(unsigned requested, std::size_t num_units) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    requested = hw ? hw : 1;
  }
  if (requested > num_units) requested = static_cast<unsigned>(num_units);
  return requested ? requested : 1;
}

}  // namespace

VerifyResult Verifier::verify(const std::vector<CaseSpec>& cases) {
  // Any exception leaves no baseline: a half-evaluated netlist must not be
  // spliced against by a later reverify().
  has_baseline_ = false;
  VerifyResult r = verify_impl(cases);
  last_ = r;
  last_cases_ = cases;
  has_baseline_ = true;
  return r;
}

const ConeIndex& Verifier::cone_index() {
  if (!cone_index_ || !cone_index_->is_current()) {
    cone_index_ = std::make_shared<ConeIndex>(ev_.netlist());
  }
  return *cone_index_;
}

const std::vector<char>& Verifier::scc_mask() {
  const Netlist& nl = ev_.netlist();
  if (!scc_valid_ || scc_version_ != nl.structure_version()) {
    // Nontrivial SCCs of the non-checker fanout graph: inside an unclocked
    // feedback loop the fixpoint can depend on the order values arrived
    // (e.g. a combinational latch holding a transient), so incremental
    // propagation from the *final* upstream values is not provably
    // equivalent to a cold run -- reverify() falls back when its dirty cone
    // touches one of these primitives.
    std::vector<std::vector<std::uint32_t>> adj(nl.num_prims());
    for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
      const Primitive& p = nl.prim(pid);
      if (prim_is_checker(p.kind) || p.output == kNoSignal) continue;
      for (PrimId consumer : nl.signal(p.output).fanout) {
        if (!prim_is_checker(nl.prim(consumer).kind)) adj[pid].push_back(consumer);
      }
    }
    scc_mask_.assign(nl.num_prims(), 0);
    for (const auto& comp : strongly_connected_components(adj)) {
      bool self_loop = false;
      if (comp.size() == 1) {
        for (std::uint32_t succ : adj[comp[0]]) {
          if (succ == comp[0]) self_loop = true;
        }
      }
      if (comp.size() > 1 || self_loop) {
        for (std::uint32_t pid : comp) scc_mask_[pid] = 1;
      }
    }
    scc_version_ = nl.structure_version();
    scc_valid_ = true;
  }
  return scc_mask_;
}

VerifyResult Verifier::verify_impl(const std::vector<CaseSpec>& cases) {
  VerifyResult r;
  // Arm one wall-clock deadline for the entire run: the base fixpoint, the
  // constraint checker, and every case snapshot poll this same point in
  // time, so --time-limit bounds the whole verification, not each phase.
  // A deadline armed *here* is also disarmed on every exit path: a warm
  // worker reuses one Verifier across jobs, and without the reset the next
  // verify() would inherit this run's already-expired deadline and degrade
  // the entire result at t=0. An externally armed deadline is the caller's
  // to manage and is left untouched.
  struct DeadlineGuard {
    Evaluator& ev;
    bool armed_here = false;
    ~DeadlineGuard() {
      if (armed_here) ev.arm_deadline(Deadline{});
    }
  } deadline_guard{ev_};
  if (ev_.options().time_limit_seconds > 0 && !ev_.options().deadline.armed()) {
    ev_.arm_deadline(Deadline::after_seconds(ev_.options().time_limit_seconds));
    deadline_guard.armed_here = true;
  }
  ev_.initialize();
  r.base_events = ev_.propagate();
  r.base_evals = ev_.evals_performed();
  r.converged = ev_.converged();
  r.partial = ev_.degraded();
  r.degradations = ev_.degradations();
  std::vector<Degradation> check_degradations;
  r.violations = run_checks(ev_, &check_degradations);
  for (Degradation& d : check_degradations) {
    r.partial = true;
    r.degradations.push_back(std::move(d));
  }
  r.cross_reference = ev_.netlist().undefined_unasserted();
  if (cases.empty()) return r;

  // Validate every case up front (so no worker throws mid-flight) and
  // resolve each pin set to its affected cone. Cones are memoized: a case
  // file sweeping one control bus costs a single BFS.
  const Netlist& nl = ev_.netlist();
  const VerifierOptions& opts = ev_.options();
  const ConeIndex& cone_idx = cone_index();
  std::vector<std::shared_ptr<const Cone>> cones;
  cones.reserve(cases.size());
  for (const CaseSpec& c : cases) {
    std::vector<SignalId> pins;
    pins.reserve(c.pins.size());
    for (const auto& [sig, val] : c.pins) {
      if (val != Value::Zero && val != Value::One) {
        throw std::invalid_argument("case values must be 0 or 1");
      }
      pins.push_back(sig);
    }
    cones.push_back(cone_idx.cone_of(std::move(pins)));
  }

  // Each case evaluates on its own copy-on-write snapshot of the baseline
  // fixpoint: workers share only the immutable netlist, and results land in
  // their input slot, so the merge is deterministic by construction.
  r.cases.resize(cases.size());
  // Per-case degradation records land in their input slot and merge into the
  // result after the pool joins, so the aggregate order is deterministic.
  std::vector<std::vector<Degradation>> case_degradations(cases.size());

  // Checking and reporting are shared by both engines: a finished snapshot
  // (from the per-case worklist or materialized from a batch sweep) holds
  // exactly the case's divergences from the baseline, and everything below
  // is a pure function of that final state.
  auto finish_case = [&](std::size_t i, EvalSnapshot& snap, bool converged,
                         bool degraded, std::vector<Degradation> degs) {
    VerifyResult::CaseResult cr;
    cr.name = cases[i].name;
    cr.events = snap.disturbed_signals();
    cr.converged = r.converged && converged;
    cr.degraded = degraded;
    case_degradations[i] = std::move(degs);
    EvalView view(snap, opts, cr.converged);
    std::vector<Degradation> check_degs;
    cr.violations = run_checks_scoped(view, *cones[i], r.violations, &check_degs);
    for (Degradation& d : check_degs) {
      cr.degraded = true;
      case_degradations[i].push_back(std::move(d));
    }
    sort_violations(cr.violations);
    r.cases[i] = std::move(cr);
  };
  auto run_one = [&](std::size_t i) {
    // Workers share the evaluator's shard-locked arena + memo; the baseline
    // refs let the snapshot start from ref compares without re-interning.
    EvalSnapshot snap(nl, cones[i], ev_.intern_context().get(), &ev_.wave_refs());
    CaseRunStats stats = run_case_on_snapshot(snap, cases[i], opts);
    finish_case(i, snap, stats.converged, stats.degraded, std::move(stats.degradations));
  };
  auto merge_degradations = [&] {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (r.cases[i].degraded) r.partial = true;
      for (Degradation& d : case_degradations[i]) {
        r.degradations.push_back(std::move(d));
      }
    }
  };

  // Batch engine eligibility (docs/batch_eval.md): the lockstep sweep
  // needs an interned, converged, non-degraded baseline and no wall-clock
  // budget (deadline-degradation points are inherently order-dependent, so
  // those runs keep the reference path's exact behavior).
  InternContext* ctx = ev_.intern_context().get();
  const bool use_batch = opts.batch_eval && ctx != nullptr && !r.partial &&
                         r.converged && !opts.deadline.armed() &&
                         opts.time_limit_seconds <= 0 &&
                         opts.max_evals_per_prim > 0;
  if (use_batch) {
    const std::size_t lanes =
        std::clamp<std::size_t>(opts.batch_lanes ? opts.batch_lanes : 64, 1, 4096);
    const std::size_t num_blocks = (cases.size() + lanes - 1) / lanes;
    BatchSchedule sched = build_batch_schedule(nl);
    auto run_block = [&](std::size_t b) {
      const std::size_t first = b * lanes;
      const std::size_t count = std::min(lanes, cases.size() - first);
      std::vector<EvalSnapshot> snaps;
      snaps.reserve(count);
      for (std::size_t l = 0; l < count; ++l) {
        snaps.emplace_back(nl, cones[first + l], ctx, &ev_.wave_refs());
      }
      BatchBlockResult br = run_case_block(nl, opts, sched, *ctx, ev_.wave_refs(),
                                           cases, first, count, cones, snaps);
      if (!br.completed) {
        // The sweep aborted (waveform table filled mid-block): this block's
        // cases re-run on the per-case path, which re-derives the identical
        // degradation records.
        for (std::size_t l = 0; l < count; ++l) run_one(first + l);
        return;
      }
      // Lane-batched constraint checking: one walk over the check-capable
      // primitives covers the whole block, copying baseline findings for
      // clean lanes. Byte-identical to per-lane run_checks_scoped.
      std::vector<const EvalSnapshot*> snap_ptrs(count);
      std::vector<const Cone*> cone_ptrs(count);
      std::vector<char> conv(count);
      for (std::size_t l = 0; l < count; ++l) {
        snap_ptrs[l] = &snaps[l];
        cone_ptrs[l] = cones[first + l].get();
        conv[l] = static_cast<char>(r.converged && br.lanes[l].converged);
      }
      std::vector<std::vector<Violation>> lane_violations = run_checks_batch(
          opts, snap_ptrs, cone_ptrs, conv, ev_.wave_refs(), r.violations);
      for (std::size_t l = 0; l < count; ++l) {
        BatchLaneStats& ls = br.lanes[l];
        VerifyResult::CaseResult cr;
        cr.name = cases[first + l].name;
        cr.events = snaps[l].disturbed_signals();
        cr.converged = static_cast<bool>(conv[l]);
        cr.degraded = ls.degraded;
        case_degradations[first + l] = std::move(ls.degradations);
        cr.violations = std::move(lane_violations[l]);
        sort_violations(cr.violations);
        r.cases[first + l] = std::move(cr);
      }
    };
    unsigned jobs = effective_jobs(opts.jobs, num_blocks);
    if (jobs <= 1) {
      for (std::size_t b = 0; b < num_blocks; ++b) run_block(b);
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::exception_ptr> errors(jobs);
      std::vector<std::thread> pool;
      pool.reserve(jobs);
      for (unsigned t = 0; t < jobs; ++t) {
        pool.emplace_back([&, t] {
          try {
            for (std::size_t b = next.fetch_add(1); b < num_blocks;
                 b = next.fetch_add(1)) {
              run_block(b);
            }
          } catch (...) {
            errors[t] = std::current_exception();
            next.store(num_blocks);
          }
        });
      }
      for (std::thread& th : pool) th.join();
      for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }
    merge_degradations();
    return r;
  }

  unsigned jobs = effective_jobs(opts.jobs, cases.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < cases.size(); ++i) run_one(i);
    merge_degradations();
    return r;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(jobs);
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = next.fetch_add(1); i < cases.size(); i = next.fetch_add(1)) {
          run_one(i);
        }
      } catch (...) {
        errors[t] = std::current_exception();
        // Drain the queue so sibling workers stop picking up new cases.
        next.store(cases.size());
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  merge_degradations();
  return r;
}

std::string timing_summary(const Netlist& nl) {
  std::string out = "TIMING VERIFIER SIGNAL VALUE SUMMARY\n";
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    out += "  ";
    out += s.full_name;
    // Pad to a fixed column for readability of the listing.
    if (s.full_name.size() < 32) out.append(32 - s.full_name.size(), ' ');
    out += "  ";
    out += s.wave.to_string();
    out += "\n";
  }
  return out;
}

std::string violations_report(const std::vector<Violation>& violations) {
  if (violations.empty()) return "NO TIMING ERRORS DETECTED\n";
  std::string out = "SETUP, HOLD AND MINIMUM PULSE WIDTH ERRORS\n";
  for (const Violation& v : violations) {
    out += v.message;
    out += "\n";
  }
  return out;
}

std::string where_used_listing(const Netlist& nl) {
  std::string out = "SIGNAL CROSS REFERENCE (defined by / used by)\n";
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    out += "  " + s.full_name + "\n";
    if (s.driver != kNoPrim) {
      out += "    defined by " + nl.prim(s.driver).name + "\n";
    } else if (s.assertion.kind != Assertion::Kind::None) {
      out += "    defined by assertion\n";
    } else {
      out += "    UNDEFINED (assumed stable)\n";
    }
    for (PrimId pid : s.fanout) {
      out += "    used by    " + nl.prim(pid).name + "\n";
    }
  }
  return out;
}

std::string ascii_waveform(const Waveform& w, std::size_t columns) {
  std::string out;
  out.reserve(columns);
  for (std::size_t c = 0; c < columns; ++c) {
    Time t = static_cast<Time>(static_cast<__int128>(w.period()) * static_cast<Time>(c) /
                               static_cast<Time>(columns));
    switch (w.at(t)) {
      case Value::Zero: out += '_'; break;
      case Value::One: out += '#'; break;
      case Value::Stable: out += '='; break;
      case Value::Change: out += 'x'; break;
      case Value::Rise: out += '/'; break;
      case Value::Fall: out += '\\'; break;
      case Value::Unknown: out += '?'; break;
    }
  }
  return out;
}

std::string timing_summary_waves(const Netlist& nl, std::size_t columns) {
  std::string out = "TIMING VERIFIER SIGNAL WAVEFORMS (one cycle)\n";
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    out += "  ";
    out += s.full_name;
    if (s.full_name.size() < 32) out.append(32 - s.full_name.size(), ' ');
    out += " |";
    out += ascii_waveform(s.wave.with_skew_incorporated(), columns);
    out += "|\n";
  }
  return out;
}

std::string cross_reference_listing(const Netlist& nl, const std::vector<SignalId>& ids) {
  if (ids.empty()) return "";
  std::string out = "UNDEFINED SIGNALS (assumed always stable):\n";
  for (SignalId id : ids) {
    out += "  ";
    out += nl.signal(id).full_name;
    out += "\n";
  }
  return out;
}

}  // namespace tv
