#include "core/verifier.hpp"

namespace tv {

std::size_t VerifyResult::total_violations() const {
  std::size_t n = violations.size();
  for (const auto& c : cases) n += c.violations.size();
  return n;
}

VerifyResult Verifier::verify(const std::vector<CaseSpec>& cases) {
  VerifyResult r;
  ev_.initialize();
  r.base_events = ev_.propagate();
  r.base_evals = ev_.evals_performed();
  r.converged = ev_.converged();
  r.violations = run_checks(ev_);
  r.cross_reference = ev_.netlist().undefined_unasserted();

  for (const CaseSpec& c : cases) {
    VerifyResult::CaseResult cr;
    cr.name = c.name;
    cr.events = ev_.apply_case(c);
    cr.violations = run_checks(ev_);
    r.cases.push_back(std::move(cr));
  }
  if (!cases.empty()) ev_.clear_case();
  return r;
}

std::string timing_summary(const Netlist& nl) {
  std::string out = "TIMING VERIFIER SIGNAL VALUE SUMMARY\n";
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    out += "  ";
    out += s.full_name;
    // Pad to a fixed column for readability of the listing.
    if (s.full_name.size() < 32) out.append(32 - s.full_name.size(), ' ');
    out += "  ";
    out += s.wave.to_string();
    out += "\n";
  }
  return out;
}

std::string violations_report(const std::vector<Violation>& violations) {
  if (violations.empty()) return "NO TIMING ERRORS DETECTED\n";
  std::string out = "SETUP, HOLD AND MINIMUM PULSE WIDTH ERRORS\n";
  for (const Violation& v : violations) {
    out += v.message;
    out += "\n";
  }
  return out;
}

std::string where_used_listing(const Netlist& nl) {
  std::string out = "SIGNAL CROSS REFERENCE (defined by / used by)\n";
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    out += "  " + s.full_name + "\n";
    if (s.driver != kNoPrim) {
      out += "    defined by " + nl.prim(s.driver).name + "\n";
    } else if (s.assertion.kind != Assertion::Kind::None) {
      out += "    defined by assertion\n";
    } else {
      out += "    UNDEFINED (assumed stable)\n";
    }
    for (PrimId pid : s.fanout) {
      out += "    used by    " + nl.prim(pid).name + "\n";
    }
  }
  return out;
}

std::string ascii_waveform(const Waveform& w, std::size_t columns) {
  std::string out;
  out.reserve(columns);
  for (std::size_t c = 0; c < columns; ++c) {
    Time t = static_cast<Time>(static_cast<__int128>(w.period()) * static_cast<Time>(c) /
                               static_cast<Time>(columns));
    switch (w.at(t)) {
      case Value::Zero: out += '_'; break;
      case Value::One: out += '#'; break;
      case Value::Stable: out += '='; break;
      case Value::Change: out += 'x'; break;
      case Value::Rise: out += '/'; break;
      case Value::Fall: out += '\\'; break;
      case Value::Unknown: out += '?'; break;
    }
  }
  return out;
}

std::string timing_summary_waves(const Netlist& nl, std::size_t columns) {
  std::string out = "TIMING VERIFIER SIGNAL WAVEFORMS (one cycle)\n";
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    const Signal& s = nl.signal(id);
    out += "  ";
    out += s.full_name;
    if (s.full_name.size() < 32) out.append(32 - s.full_name.size(), ' ');
    out += " |";
    out += ascii_waveform(s.wave.with_skew_incorporated(), columns);
    out += "|\n";
  }
  return out;
}

std::string cross_reference_listing(const Netlist& nl, const std::vector<SignalId>& ids) {
  if (ids.empty()) return "";
  std::string out = "UNDEFINED SIGNALS (assumed always stable):\n";
  for (SignalId id : ids) {
    out += "  ";
    out += nl.signal(id).full_name;
    out += "\n";
  }
  return out;
}

}  // namespace tv
